"""Predicting optimization payoff from workload statistics.

§5 of the paper explains *why* the optimization operators help: batches of
CTDGs re-request the same (node, time) embeddings, popularity is skewed,
and time deltas repeat.  ``repro.data.analysis`` quantifies those levers.
This example profiles every bundled dataset and then *validates* the
prediction: the dataset with the highest dedup potential should see the
largest measured dedup speedup on TGAT.  Finally it profiles the *data
movement* side with the tiered feature store: bytes moved per tier and
the stall time the lookahead prefetcher recovers.

Run:  python examples/workload_profiling.py
"""

import time

import numpy as np

from repro import nn
from repro import tensor as T
import repro.core as tg
from repro.bench import train_epoch
from repro.data import NegativeSampler, available_datasets, get_dataset, profile_dataset
from repro.models import TGAT, OptFlags


def measure_dedup_speedup(dataset, stop_edges=1500) -> float:
    """Measured TGAT epoch-slice speedup of dedup over no-dedup."""
    times = {}
    for label, flags in (("plain", OptFlags.none()), ("dedup", OptFlags(dedup=True))):
        T.manual_seed(3)
        g = dataset.build_graph()
        ctx = tg.TContext(g)
        model = TGAT(ctx, dim_node=dataset.nfeat.shape[1],
                     dim_edge=dataset.efeat.shape[1], dim_time=16, dim_embed=16,
                     num_layers=2, num_nbrs=10, opt=flags)
        opt = nn.Adam(model.parameters(), lr=1e-3)
        neg = NegativeSampler.for_dataset(dataset)
        start = dataset.num_edges // 2
        seconds, _ = train_epoch(model, g, opt, neg, 300,
                                 start=start, stop=start + stop_edges)
        times[label] = seconds
    return times["plain"] / times["dedup"]


def profile_data_movement(dataset, stop_edges=1500) -> None:
    """Per-tier bytes moved and prefetch-recovered stall for one slice."""
    from repro.store import StoreConfig

    T.manual_seed(3)
    g = dataset.build_graph()
    ctx = tg.TContext(g, store=StoreConfig(prefetch_depth=1))
    model = TGAT(ctx, dim_node=dataset.nfeat.shape[1],
                 dim_edge=dataset.efeat.shape[1], dim_time=16, dim_embed=16,
                 num_layers=2, num_nbrs=10, opt=OptFlags.all())
    opt = nn.Adam(model.parameters(), lr=1e-3)
    neg = NegativeSampler.for_dataset(dataset)
    start = dataset.num_edges // 2
    train_epoch(model, g, opt, neg, 300, start=start,
                stop=start + stop_edges, ctx=ctx)
    st = ctx.stats().store
    print(f"  {'tier':8s} {'bytes in':>12s} {'bytes out':>12s} "
          f"{'hit rate':>9s} {'demotions':>10s}")
    for tier in ("hot", "staging", "cold"):
        t = st.tiers[tier]
        print(f"  {tier:8s} {t.bytes_in:>12d} {t.bytes_out:>12d} "
              f"{100 * t.hit_rate:>8.1f}% {t.demotions:>10d}")
    print(f"  total bytes moved between tiers: {st.bytes_moved}")
    print(f"  prefetch: {st.prefetch_hits}/{st.prefetch_issued} consumed "
          f"after their transfer completed; stall {st.stall_seconds:.4g}s "
          f"paid, {st.stall_saved_seconds:.4g}s recovered "
          f"({100 * st.stall_recovered_fraction:.1f}%)")


def main() -> None:
    names = ["wiki", "mooc", "reddit", "lastfm", "wikitalk"]
    print("workload profiles (optimization levers):\n")
    header = f"{'dataset':10s} {'E/V':>6s} {'repeat':>8s} {'gini':>6s} {'dedup pot.':>11s} {'dist. deltas':>13s}"
    print(header)
    print("-" * len(header))
    profiles = {}
    for name in names:
        p = profile_dataset(get_dataset(name), batch_size=300, max_batches=5)
        profiles[name] = p
        print(f"{name:10s} {p.edges_per_node:>6.1f} "
              f"{100 * p.repeat_pair_fraction:>7.1f}% {p.popularity_gini:>6.3f} "
              f"{100 * p.dedup_potential:>10.1f}% "
              f"{100 * p.delta_distinct_fraction:>12.1f}%")

    print("\nvalidating the prediction on TGAT (dedup on vs off):\n")
    candidates = ["wiki", "lastfm", "wikitalk"]
    speedups = {}
    for name in candidates:
        speedups[name] = measure_dedup_speedup(get_dataset(name))
        print(f"  {name:10s} measured dedup speedup: {speedups[name]:.2f}x "
              f"(dedup potential {100 * profiles[name].dedup_potential:.0f}%)")

    ranked_by_potential = sorted(candidates, key=lambda n: -profiles[n].dedup_potential)
    ranked_by_speedup = sorted(candidates, key=lambda n: -speedups[n])
    agree = ranked_by_potential[0] == ranked_by_speedup[0]
    print(f"\nhighest-potential dataset ({ranked_by_potential[0]}) "
          f"{'also shows' if agree else 'does not show'} the largest measured speedup.")

    print("\ndata movement through the tiered feature store (wiki slice):\n")
    profile_data_movement(get_dataset("wiki"))


if __name__ == "__main__":
    main()
