"""Time-aware recommendation: JODIE vs APAN on a listening stream.

Another motivating application from the paper's introduction: time-aware
recommendation.  The LastFM-like dataset is a dense user-artist listening
stream with heavy repeat behaviour.  Two memory-based models suit two
different serving constraints:

* JODIE — cheapest: no sampling at all, embeddings are time-projections of
  RNN memory; and
* APAN — attention over each user's mailbox, with mail pushed to
  neighbors *after* serving (asynchronous propagation), keeping the
  request path sampling-free.

This example trains both, compares epoch cost and ranking quality, and
then produces concrete top-k recommendations for the most active users.

Run:  python examples/recommendation_jodie_apan.py
"""

import numpy as np

from repro import nn
from repro import tensor as T
import repro.core as tg
from repro.bench import evaluate, train_epoch
from repro.data import NegativeSampler, get_dataset
from repro.models import APAN, JODIE, OptFlags


def build(name, dataset):
    graph = dataset.build_graph(feature_device="cuda")
    ctx = tg.TContext(graph, device="cuda")
    dim_mem = 32
    common = dict(
        dim_node=dataset.nfeat.shape[1],
        dim_edge=dataset.efeat.shape[1],
        dim_time=32,
        dim_embed=32,
        dim_mem=dim_mem,
    )
    if name == "jodie":
        graph.set_memory(dim_mem, device="cuda")
        graph.set_mailbox(
            JODIE.required_mailbox_dim(dim_mem, dataset.efeat.shape[1]), device="cuda"
        )
        model = JODIE(ctx, opt=OptFlags.preload_only(), **common)
    else:
        graph.set_memory(dim_mem, device="cuda")
        graph.set_mailbox(
            APAN.required_mailbox_dim(dim_mem, dataset.efeat.shape[1]),
            slots=10, device="cuda",
        )
        model = APAN(ctx, num_nbrs=10, mailbox_slots=10, opt=OptFlags.all(), **common)
    return graph, model.to("cuda")


def top_k_recommendations(model, graph, dataset, user, at_time, k=5):
    """Rank all items for one user at a given time via the edge predictor."""
    _, items = dataset.bipartite_partition()
    n = len(items)
    batch = tg.TBatch(graph, 0, 0)  # placeholder; we score embeddings directly
    model.eval()
    with T.no_grad():
        nodes = np.concatenate([[user], items])
        times = np.full(len(nodes), at_time)
        if isinstance(model, JODIE):
            mem, _ = model.update_memory(nodes)
            embeds = model.embed_linear(
                T.cat([mem, model.time_encoder(
                    T.tensor((times - graph.mem.time[nodes]).astype(np.float32),
                             device=model.ctx.device))], dim=1))
        else:
            embeds = model.attention(nodes, times)
        user_embed = embeds[np.zeros(n, dtype=np.int64)]
        scores = model.edge_predictor(user_embed, embeds[np.arange(1, n + 1)])
    order = np.argsort(-scores.numpy())
    return items[order[:k]], scores.numpy()[order[:k]]


def main() -> None:
    T.manual_seed(3)
    dataset = get_dataset("lastfm")
    train_end, val_end, test_end = dataset.splits()
    negatives = NegativeSampler.for_dataset(dataset)

    results = {}
    models = {}
    for name in ("jodie", "apan"):
        graph, model = build(name, dataset)
        optimizer = nn.Adam(model.parameters(), lr=1e-3)
        model.reset_state()
        seconds, loss = train_epoch(
            model, graph, optimizer, negatives, batch_size=300, stop=train_end
        )
        _, ap = evaluate(model, graph, negatives, batch_size=300,
                         start=train_end, stop=val_end)
        results[name] = (seconds, ap)
        models[name] = (graph, model)
        print(f"{name.upper():5s}  epoch {seconds:6.2f}s   ranking AP {ap:.4f}")

    # Concrete recommendations from the APAN model for the busiest user.
    graph, model = models["apan"]
    users, _ = dataset.bipartite_partition()
    counts = np.bincount(dataset.src, minlength=dataset.num_nodes)[users]
    busiest = users[np.argmax(counts)]
    items, scores = top_k_recommendations(model, graph, dataset, busiest, dataset.ts[-1])
    print(f"\ntop-5 artists for user {busiest} (listened {counts.max()} times):")
    for rank, (item, score) in enumerate(zip(items, scores), start=1):
        print(f"  {rank}. artist {item}  (score {score:+.3f})")

    faster = min(results, key=lambda k: results[k][0])
    print(f"\ncheapest epoch: {faster.upper()} "
          f"({results[faster][0]:.2f}s vs {results[max(results, key=lambda k: results[k][0])][0]:.2f}s)")


if __name__ == "__main__":
    main()
