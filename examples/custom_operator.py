"""Composability: writing new TBlock operators and a custom TGNN layer.

The point of TGLite's design (§3) is that TBlocks are a central
representation users can define *new* operators against.  This example
builds two operators that do not ship with the framework and composes them
with the built-in ones into a working model:

* ``recency_filter`` — a single-block operator dropping sampled neighbor
  rows older than a time horizon (a common trick for drifting streams);
* ``degree_norm`` — a hook-registering operator that rescales a block's
  computed output by 1/sqrt(deg), demonstrating user-level use of the
  hooks mechanism (the runtime applies it between layers automatically).

The custom ``MeanPoolLayer`` skips attention entirely: mean-pooled
neighbor features concatenated with time encodings — a layer the stock
framework does not provide, assembled purely from public operators.

Run:  python examples/custom_operator.py
"""

import numpy as np

from repro import nn
from repro import tensor as T
import repro.core as tg
from repro.bench import evaluate, train_epoch
from repro.core import op as tgop
from repro.data import NegativeSampler, get_dataset
from repro.models import EdgePredictor


# --------------------------------------------------------------------------
# custom single-block operator: drop neighbor rows older than `horizon`
# --------------------------------------------------------------------------
def recency_filter(block: tg.TBlock, horizon: float) -> tg.TBlock:
    """Keep only sampled neighbors within `horizon` of the query time."""
    if not block.has_nbrs:
        raise RuntimeError("recency_filter needs a sampled block")
    keep = block.time_deltas() <= horizon
    block.set_nbrs(
        block.srcnodes[keep], block.eids[keep],
        block.etimes[keep], block.dstindex[keep],
    )
    return block


# --------------------------------------------------------------------------
# custom optimization-style operator using the hooks mechanism
# --------------------------------------------------------------------------
def degree_norm(block: tg.TBlock) -> tg.TBlock:
    """Register a hook rescaling the block's output by 1/sqrt(1 + degree)."""

    def hook(blk: tg.TBlock, output: T.Tensor) -> T.Tensor:
        degrees = np.bincount(blk.dstindex, minlength=blk.num_dst) if blk.has_nbrs \
            else np.zeros(blk.num_dst)
        scale = (1.0 / np.sqrt(1.0 + degrees)).astype(np.float32)
        return output * T.Tensor(scale[:, None], device=output.device)

    block.register_hook(hook)
    return block


# --------------------------------------------------------------------------
# custom layer: mean-pool aggregation with time encoding (no attention)
# --------------------------------------------------------------------------
class MeanPoolLayer(nn.Module):
    def __init__(self, ctx, dim_node, dim_edge, dim_time, dim_out):
        super().__init__()
        self.ctx = ctx
        self.time_encoder = nn.TimeEncode(dim_time)
        self.fc_nbr = nn.Linear(dim_node + dim_edge + dim_time, dim_out)
        self.fc_out = nn.Linear(dim_node + dim_out, dim_out)

    def forward(self, blk: tg.TBlock) -> T.Tensor:
        h_dst = blk.dstdata["h"]
        if blk.num_src == 0:
            pooled = T.zeros(blk.num_dst, self.fc_nbr.out_features, device=h_dst.device)
        else:
            tfeat = self.time_encoder(
                T.tensor(blk.time_deltas().astype(np.float32), device=self.ctx.device)
            )
            z = T.cat([blk.srcdata["h"], blk.efeat(), tfeat], dim=1)
            # Built-in segmented reduction does the neighborhood pooling.
            pooled = tgop.edge_reduce(blk, self.fc_nbr(z).relu(), op="mean")
        return self.fc_out(T.cat([h_dst, pooled], dim=1)).relu()


class RecencyMeanModel(nn.Module):
    """Two-hop mean-pool model composed from custom + built-in operators."""

    def __init__(self, ctx, dim_node, dim_edge, dim_time=16, dim_embed=32,
                 num_nbrs=10, horizon=5e5):
        super().__init__()
        self.ctx = ctx
        self.horizon = horizon
        self.sampler = tg.TSampler(num_nbrs, "recent")
        self.layers = nn.ModuleList([
            MeanPoolLayer(ctx, dim_node, dim_edge, dim_time, dim_embed),
            MeanPoolLayer(ctx, dim_embed, dim_edge, dim_time, dim_embed),
        ])
        self.edge_predictor = EdgePredictor(dim_embed)

    def reset_state(self):
        pass

    def forward(self, batch: tg.TBatch):
        head = batch.block(self.ctx)
        tail = head
        for i in range(2):
            if i > 0:
                tail = tail.next_block()
            tail = tgop.dedup(tail)          # built-in optimization op
            tail = self.sampler.sample(tail)  # built-in sampling op
            tail = recency_filter(tail, self.horizon)  # custom op
            tail = degree_norm(tail)          # custom hook-based op
        tail.dstdata["h"] = tail.dstfeat()
        tail.srcdata["h"] = tail.srcfeat()
        # aggregate() runs our custom layers AND our registered hooks.
        embeds = tgop.aggregate(head, [self.layers[0], self.layers[1]], key="h")
        return self.edge_predictor.score_batch(embeds, len(batch))


def main() -> None:
    T.manual_seed(5)
    dataset = get_dataset("mooc")
    graph = dataset.build_graph(feature_device="cuda")
    ctx = tg.TContext(graph, device="cuda")
    model = RecencyMeanModel(
        ctx, dim_node=dataset.nfeat.shape[1], dim_edge=dataset.efeat.shape[1]
    ).to("cuda")
    optimizer = nn.Adam(model.parameters(), lr=1e-3)
    train_end, val_end, _ = dataset.splits()
    negatives = NegativeSampler.for_dataset(dataset)

    for epoch in range(2):
        seconds, loss = train_epoch(
            model, graph, optimizer, negatives, batch_size=300, stop=train_end
        )
        _, ap = evaluate(model, graph, negatives, batch_size=300,
                         start=train_end, stop=val_end)
        print(f"epoch {epoch}: {seconds:5.2f}s  loss={loss:.4f}  val AP={ap:.4f}")

    print("\ncustom operators composed cleanly with built-in dedup/sample/aggregate.")


if __name__ == "__main__":
    main()
