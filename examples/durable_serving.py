"""Durable serving: crash-consistent state with a write-ahead log.

`examples/online_serving.py` shows the serving runtime surviving bad
*inputs*; this example shows it surviving a bad *machine*.  With
``durable_dir`` set, `ServeRuntime` logs every committed `EventBatch` to
an append-only write-ahead log *before* applying it (WAL-then-apply),
so a crash at any byte offset — torn write, lost fsync, power cut —
recovers the exact committed prefix and nothing else:

1. a clean durable replay, showing the WAL ledger (appends, syncs,
   segment rotations) riding along with normal serving stats;
2. a simulated power failure mid-commit (`FaultInjector` tears a WAL
   write at an arbitrary byte offset), then recovery into a *fresh*
   process: the torn tail is discarded and the recovered state is
   bit-identical to a clean run over the acknowledged prefix;
3. periodic snapshots anchoring recovery: replay cost stops growing
   with log length, and sealed segments below the snapshot compact away.

Run with:  PYTHONPATH=src python examples/durable_serving.py
"""

import shutil
import tempfile

import numpy as np

from repro.core import Mailbox, Memory, TContext, TGraph, TSampler
from repro.resilience import FaultInjector, SimulatedDiskCrash
from repro.serve import ServeRuntime, build_stream, replay, split_batches

NUM_NODES = 120
NUM_EVENTS = 1200
DIM = 16


def make_runtime(topology, durable_dir=None, snapshot_every=None,
                 recover=False, injector=None):
    g = TGraph(topology.src, topology.dst, topology.ts, num_nodes=NUM_NODES)
    ctx = TContext(g)
    memory = Memory(NUM_NODES, DIM)
    mailbox = Mailbox(NUM_NODES, DIM)
    sampler = TSampler(10, seed=3)
    return ServeRuntime(
        g, ctx, memory, sampler, mailbox=mailbox, injector=injector,
        durable_dir=durable_dir, snapshot_every=snapshot_every,
        recover=recover,
    )


def show(title, runtime, prefix="durable"):
    print(f"\n== {title} ==")
    for key, value in runtime.stats().items():
        if key.startswith(prefix) and value:
            print(f"  {key}: {value}")


def main() -> None:
    clean = build_stream(NUM_NODES, NUM_EVENTS, payload_dim=DIM, seed=11)
    batches = split_batches(clean, 40)
    wal_dir = tempfile.mkdtemp(prefix="durable-serving-")
    try:
        # 1. Clean durable replay: every commit hits the log first.
        with make_runtime(clean, durable_dir=wal_dir) as rt:
            replay(rt, batches, load=1.0)
            reference = rt.memory.data.data.copy()
            show("clean durable replay", rt)

        # 2. Power failure mid-commit.  The injector tears the WAL write
        #    of the 6th batch at an arbitrary byte offset and kills the
        #    "process" with SimulatedDiskCrash — exactly what a power cut
        #    during a partially flushed append looks like.
        crash_dir = tempfile.mkdtemp(prefix="durable-crash-")
        injector = FaultInjector(seed=13, disk_torn_write_batches=[(0, 5)])
        rt2 = make_runtime(clean, durable_dir=crash_dir, injector=injector)
        survived = 0
        try:
            with injector:
                for batch in batches:
                    rt2.submit(batch)
                    rt2.drain()
                    survived += 1
        except SimulatedDiskCrash as crash:
            print(f"\n== crash: {crash} (after {survived} acknowledged "
                  "batches) ==")

        # Recovery in a fresh runtime: replay() of the log stops at the
        # torn record, truncates the invalid tail, and rebuilds state via
        # the same staging path live commits use.
        rt3 = make_runtime(clean, durable_dir=crash_dir, recover=True)
        show("recovered from torn write", rt3, prefix="durable:recovered")

        # The recovered state must equal a clean run over the prefix.
        rt4 = make_runtime(clean)
        replay(rt4, batches[:survived], load=1.0)
        same = np.array_equal(rt3.memory.data.data, rt4.memory.data.data)
        print(f"  recovered state vs clean {survived}-batch replay: "
              f"{'bit-identical' if same else 'DIVERGED'}")
        rt3.close()
        shutil.rmtree(crash_dir, ignore_errors=True)

        # 3. Snapshots bound recovery cost: with snapshot_every=10, the
        #    final image covers most of the log, recovery replays only
        #    the suffix, and compaction drops the sealed segments below.
        snap_dir = tempfile.mkdtemp(prefix="durable-snap-")
        with make_runtime(clean, durable_dir=snap_dir,
                          snapshot_every=10) as rt5:
            replay(rt5, batches, load=1.0)
        rt6 = make_runtime(clean, durable_dir=snap_dir, recover=True)
        show("recovery anchored by snapshot", rt6, prefix="durable:recovered")
        same = np.array_equal(rt6.memory.data.data, reference)
        print(f"  recovered state vs live run: "
              f"{'bit-identical' if same else 'DIVERGED'}")
        rt6.close()
        shutil.rmtree(snap_dir, ignore_errors=True)
    finally:
        shutil.rmtree(wal_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
