"""Real-time fraud detection with TGN on a transaction-like stream.

The paper's introduction motivates CTDGs with real-time fraud detection:
a financial network is a stream of timestamped transactions, and the task
is to score how plausible each new transaction is given each account's
history.  A memory-based model (TGN) fits this well — every account keeps
a memory vector updated by a GRU as transactions arrive.

This example uses the Reddit-like dataset as the transaction stream
(users x merchants bipartite graph), trains TGN, and then runs a streaming
"fraud scoring" pass over the test window: genuine interactions should
score higher than synthetic corruptions (a proxy for fraudulent activity).

Run:  python examples/fraud_detection_tgn.py
"""

import numpy as np

from repro import nn
from repro import tensor as T
import repro.core as tg
from repro.bench import train_epoch
from repro.bench.metrics import average_precision
from repro.data import NegativeSampler, get_dataset
from repro.models import TGN, OptFlags


def build_model(dataset, graph):
    ctx = tg.TContext(graph, device="cuda")
    dim_mem = 32
    graph.set_memory(dim_mem, device="cuda")
    graph.set_mailbox(
        TGN.required_mailbox_dim(dim_mem, dataset.efeat.shape[1]), device="cuda"
    )
    model = TGN(
        ctx,
        dim_node=dataset.nfeat.shape[1],
        dim_edge=dataset.efeat.shape[1],
        dim_time=32,
        dim_embed=32,
        dim_mem=dim_mem,
        num_layers=2,
        num_nbrs=10,
        opt=OptFlags.all(),
    ).to("cuda")
    return ctx, model


def streaming_fraud_scores(model, graph, dataset, start, stop, batch_size=300):
    """Score each incoming transaction against a corrupted counterpart.

    Corruption redirects each transaction to a random other merchant —
    the classic link-prediction framing of anomaly detection: a fraud
    score is low plausibility under the learned temporal model.
    """
    negatives = NegativeSampler.for_dataset(dataset, seed=123)
    genuine, corrupted = [], []
    model.eval()
    with T.no_grad():
        for batch in tg.iter_batches(graph, batch_size, start=start, stop=stop):
            batch.neg_nodes = negatives.sample(len(batch))
            pos, neg = model(batch)
            genuine.append(pos.numpy().copy())
            corrupted.append(neg.numpy().copy())
    return np.concatenate(genuine), np.concatenate(corrupted)


def main() -> None:
    T.manual_seed(7)
    dataset = get_dataset("reddit")
    graph = dataset.build_graph(feature_device="cuda")
    ctx, model = build_model(dataset, graph)
    optimizer = nn.Adam(model.parameters(), lr=1e-3)
    train_end, val_end, test_end = dataset.splits()
    negatives = NegativeSampler.for_dataset(dataset)

    print("training TGN on the transaction stream ...")
    for epoch in range(2):
        model.reset_state()
        seconds, loss = train_epoch(
            model, graph, optimizer, negatives, batch_size=300, stop=train_end
        )
        print(f"  epoch {epoch}: {seconds:.2f}s loss={loss:.4f}")

    # Streaming detection pass over the unseen test window.  Memory keeps
    # updating as transactions arrive, as it would in production.
    print("scoring the live test window ...")
    genuine, corrupted = streaming_fraud_scores(model, graph, dataset, val_end, test_end)

    labels = np.concatenate([np.ones_like(genuine), np.zeros_like(corrupted)])
    scores = np.concatenate([genuine, corrupted])
    ap = average_precision(labels, scores)
    sep = genuine.mean() - corrupted.mean()
    flagged = (corrupted > np.percentile(genuine, 10)).mean()
    print(f"detection AP: {ap:.4f}")
    print(f"mean score separation (genuine - corrupted): {sep:.3f}")
    print(f"corrupted transactions scoring above the 10th pct of genuine: {100 * flagged:.1f}%")


if __name__ == "__main__":
    main()
