"""Simulated multi-GPU data-parallel scaling study (§7 future work).

The paper leaves multi-GPU training as future work; the
``repro.distributed`` extension implements synchronous data-parallel
training over the simulated device model.  This example sweeps the
replica count for TGAT on the Reddit-like dataset and prints the classic
scaling table: simulated parallel epoch time, speedup over one device,
and parallel efficiency (communication is a ring all-reduce whose cost is
charged from the modeled interconnect bandwidth).

Run:  python examples/multi_gpu_scaling.py
"""

import numpy as np

from repro import nn
from repro import tensor as T
import repro.core as tg
from repro.data import NegativeSampler, get_dataset
from repro.distributed import SimulatedDataParallel
from repro.models import TGAT, OptFlags


def build(dataset):
    g = dataset.build_graph(feature_device="cuda")
    ctx = tg.TContext(g, device="cuda")
    model = TGAT(
        ctx, dim_node=dataset.nfeat.shape[1], dim_edge=dataset.efeat.shape[1],
        dim_time=32, dim_embed=32, num_layers=2, num_nbrs=10,
        opt=OptFlags.all(),
    ).to("cuda")
    return g, model


def main() -> None:
    T.manual_seed(9)
    dataset = get_dataset("reddit")
    train_end, _, _ = dataset.splits()
    stop = min(train_end, 6000)
    print(f"TGAT / {dataset.name}: scaling sweep over {stop} training edges, "
          f"global batch 1200\n")
    print(f"{'replicas':>8s} {'parallel (s)':>13s} {'speedup':>8s} {'efficiency':>11s} {'loss':>8s}")

    baseline = None
    for replicas in (1, 2, 4, 8):
        T.manual_seed(9)
        g, model = build(dataset)
        optimizer = nn.Adam(model.parameters(), lr=1e-3)
        dp = SimulatedDataParallel(model, optimizer, num_replicas=replicas,
                                   interconnect_bandwidth=1.0e9)
        negatives = NegativeSampler.for_dataset(dataset)
        serial, parallel, loss = dp.train_epoch(g, negatives, batch_size=1200, stop=stop)
        if baseline is None:
            baseline = parallel
        speedup = baseline / parallel
        efficiency = speedup / replicas
        print(f"{replicas:>8d} {parallel:>13.2f} {speedup:>7.2f}x {efficiency:>10.1%} {loss:>8.4f}")

    print("\nscaling flattens as the all-reduce term and shard imbalance grow —")
    print("the trade-off a real multi-GPU TGLite deployment would tune.")


if __name__ == "__main__":
    main()
