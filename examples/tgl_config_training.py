"""Training TGL-style: from a configuration file, not a program.

The paper contrasts TGLite's programming interface with TGL's workflow,
where "users interact with the framework via configuration files".  This
example *is* that workflow: it loads one of the bundled ``configs/*.json``
files (the structure of TGL's ``config/*.yml``), builds the model from it,
and runs the training settings the file prescribes — no model code in
sight, but also no way to express anything the config schema did not
anticipate (the JODIE entry needs its own special keys).

Contrast with ``examples/custom_operator.py``, where TGLite composes a
*new* model out of operators in ~60 lines.

Run:  python examples/tgl_config_training.py [tgat|tgn|jodie|apan]
"""

import sys

from repro import nn
from repro import tensor as T
from repro.bench import evaluate, train_epoch
from repro.data import NegativeSampler, get_dataset
from repro.tgl import build_from_config, default_config


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "tgn"
    T.manual_seed(4)

    dataset = get_dataset("wiki")
    graph = dataset.build_graph(feature_device="cpu")
    config = default_config(model_name)
    print(f"building {model_name.upper()} from configs/{model_name.upper()}.json:")
    for section in ("sampling", "memory", "gnn"):
        print(f"  {section}: {config[section][0]}")

    model, train_cfg = build_from_config(
        config, graph,
        dim_node=dataset.nfeat.shape[1],
        dim_edge=dataset.efeat.shape[1],
    )
    optimizer = nn.Adam(model.parameters(), lr=float(train_cfg["lr"]) * 10)
    negatives = NegativeSampler.for_dataset(dataset)
    train_end, val_end, _ = dataset.splits()
    batch_size = int(train_cfg["batch_size"])

    epochs = min(int(train_cfg.get("epoch", 3)), 3)  # cap for the demo
    for epoch in range(epochs):
        model.reset_state()
        seconds, loss = train_epoch(model, graph, optimizer, negatives,
                                    batch_size, stop=train_end)
        _, ap = evaluate(model, graph, negatives, batch_size,
                         start=train_end, stop=val_end)
        print(f"epoch {epoch}: {seconds:6.2f}s  loss={loss:.4f}  val AP={ap:.4f}")


if __name__ == "__main__":
    main()
