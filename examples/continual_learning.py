"""Continual learning: train on the serving log, hot-swap under drift.

`examples/durable_serving.py` ends with every committed batch durable in
a write-ahead log.  This example closes the loop: a `ContinualLearner`
*tails* that log while the server is running — with a prefix-consistent
`WALCursor`, so it only ever sees committed, non-aborted batches — and
fine-tunes the link model online, hot-swapping the updated embedding
table into the server between requests.

The workload is a `distribution_drift` scenario stream: halfway through,
every user group's item preferences shift by one block, so a model
frozen at pretraining time starts ranking yesterday's preferences.  The
script runs the same stream three ways and scores each against the
stream's ground-truth labels:

1. **frozen** — the pretrained model serves unchanged (the baseline the
   drift hurts);
2. **continual** — WAL tail → `ResilientTrainer.fine_tune` → model hot
   swap, gated by a *staleness budget* (max event-time lag between the
   server's committed watermark and the published model);
3. **oracle** — offline hindsight training over the whole stream before
   serving (the upper bound).

It then sweeps the staleness budget from 0 to infinity to show the
freshness/cost trade, and verifies the serve state digest is
bit-identical across all modes: hot swaps touch only the read path.

Run with:  PYTHONPATH=src python examples/continual_learning.py
"""

import tempfile

import numpy as np

from repro.bench.metrics import average_precision
from repro.scenarios import gap_recovered, make_stream, run_closed_loop

BUDGETS = [0.0, 500.0, 2000.0, float("inf")]


def post_drift_ap(stream, scores):
    """AP over the post-drift phase — where frozen and continual diverge."""
    mask = (stream.phase == 2) & np.isfinite(scores)
    return average_precision(stream.labels[mask], scores[mask])


def main():
    stream = make_stream(
        "distribution_drift",
        num_events=2400,
        seed=11,
        noise_frac=0.45,
        knobs={"mode": "abrupt", "drift_start": 0.5},
    )
    print(f"stream: {stream.spec.name}, {len(stream)} events, "
          f"digest {stream.digest()[:12]}…")

    runs = {}
    for mode in ("frozen", "continual", "oracle"):
        runs[mode] = run_closed_loop(
            stream, mode=mode, seed=3,
            workdir=tempfile.mkdtemp(prefix=f"continual-{mode}-"),
        )
        run = runs[mode]
        line = (f"  {mode:9s} overall AP {run['summary']['overall_ap']:.4f}  "
                f"post-drift AP {post_drift_ap(stream, run['scores']):.4f}")
        if run["learner"]:
            line += (f"  ({run['learner']['swaps']} hot swaps, "
                     f"{run['learner']['events_trained']} events trained)")
        print(line)

    frozen = post_drift_ap(stream, runs["frozen"]["scores"])
    cont = post_drift_ap(stream, runs["continual"]["scores"])
    oracle = post_drift_ap(stream, runs["oracle"]["scores"])
    print(f"\ngap recovered: {gap_recovered(frozen, cont, oracle):.0%} of the "
          f"frozen→oracle AP gap ({frozen:.3f} → {oracle:.3f})")

    digests = {run["state_digest"] for run in runs.values()}
    print(f"serve state digests across modes: "
          f"{'bit-identical' if len(digests) == 1 else 'DIVERGED'} "
          f"({next(iter(digests))[:12]}…)")

    print("\nstaleness budget sweep (freshness vs fine-tune cost):")
    print(f"  {'budget':>8s}  {'swaps':>5s}  {'overall AP':>10s}")
    for budget in BUDGETS:
        run = run_closed_loop(
            stream, mode="continual", seed=3, staleness_budget=budget,
            workdir=tempfile.mkdtemp(prefix="continual-sweep-"),
        )
        label = "inf" if np.isinf(budget) else f"{budget:g}"
        print(f"  {label:>8s}  {run['learner']['swaps']:>5d}  "
              f"{run['summary']['overall_ap']:>10.4f}")
    print("budget=inf never retrains: it reproduces the frozen baseline.")


if __name__ == "__main__":
    main()
