"""Quickstart: train TGAT on the Wiki-like dataset with TGLite.

Walks through the full public API path a new user takes:

1. load a continuous-time temporal graph dataset;
2. build a ``TGraph`` and a ``TContext``;
3. instantiate a TGNN model with optimization operators enabled;
4. train with chronological batches + negative sampling;
5. evaluate average precision on the held-out chronological splits.

Run:  python examples/quickstart.py
"""

from repro import nn
from repro import tensor as T
import repro.core as tg
from repro.bench import evaluate, train_epoch
from repro.data import NegativeSampler, get_dataset
from repro.models import TGAT, OptFlags


def main() -> None:
    T.manual_seed(2024)

    # 1. Load a dataset (a seeded synthetic analog of JODIE's Wiki graph).
    dataset = get_dataset("wiki")
    print(f"dataset: {dataset.name}  |V|={dataset.num_nodes}  |E|={dataset.num_edges}")

    # 2. Build the temporal graph and runtime context.  Features stay on
    #    the (simulated) host; computation happens on the device.
    graph = dataset.build_graph(feature_device="cpu")
    ctx = tg.TContext(graph, device="cuda")

    # 3. A 2-layer TGAT sampling 10 most-recent neighbors per hop, with
    #    all semantic-preserving optimization operators switched on.
    model = TGAT(
        ctx,
        dim_node=dataset.nfeat.shape[1],
        dim_edge=dataset.efeat.shape[1],
        dim_time=32,
        dim_embed=32,
        num_layers=2,
        num_nbrs=10,
        opt=OptFlags.all(),
    ).to("cuda")
    optimizer = nn.Adam(model.parameters(), lr=1e-3)

    # 4. Chronological 70/15/15 split and training loop.
    train_end, val_end, test_end = dataset.splits()
    negatives = NegativeSampler.for_dataset(dataset)

    for epoch in range(3):
        model.reset_state()
        seconds, loss = train_epoch(
            model, graph, optimizer, negatives, batch_size=300, stop=train_end
        )
        _, val_ap = evaluate(
            model, graph, negatives, batch_size=300, start=train_end, stop=val_end
        )
        print(f"epoch {epoch}: {seconds:5.2f}s  loss={loss:.4f}  val AP={val_ap:.4f}")

    # 5. Final test-set evaluation (the cache() operator is live here —
    #    ctx switches to inference mode via model.eval()).
    test_seconds, test_ap = evaluate(
        model, graph, negatives, batch_size=300, start=val_end, stop=test_end
    )
    stats = ctx.stats()
    hit_rates = {layer: round(c.hit_rate, 3) for layer, c in stats.cache.items()}
    print(f"test: {test_seconds:.2f}s  AP={test_ap:.4f}  cache hit rates={hit_rates}")
    kernel_ms = {name: round(sec * 1e3, 1) for name, sec in stats.kernel_seconds.items()}
    print(f"kernel time (ms): {kernel_ms}")


if __name__ == "__main__":
    main()
