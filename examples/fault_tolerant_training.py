"""Fault-tolerant training: injection, recovery, and bit-exact resume.

Production training jobs fail in ways a benchmark harness never sees:
a kernel throws once under memory pressure, a gradient turns NaN, a
data-parallel worker disappears, the process itself is killed between
checkpoints.  This example drives the resilience runtime
(``repro.resilience`` + ``repro.bench.ResilientTrainer``) through all of
them on a seeded TGN/wiki run and shows the recovered run is
**bit-identical** to a fault-free run of the same seed:

* a ``FaultInjector`` deterministically injects a transient sampling
  kernel fault (retried from an in-RAM snapshot), a NaN-gradient batch
  (rolled back to the last atomic checkpoint and replayed), and a
  crashed data-parallel replica (shard redistributed to the survivors,
  charged to the simulated clock);
* a second run is hard-killed mid-epoch (``SimulatedProcessKill``) and
  restarted with ``resume=True`` from the checkpoint's stream cursor —
  parameters, node memory, mailbox, optimizer moments, and every RNG
  stream land exactly where the uninterrupted run does;
* repeated faults from one kernel site degrade it to the bit-identical
  reference path (visible in ``ctx.stats().degraded``).

Run:  python examples/fault_tolerant_training.py
"""

import os
import tempfile

import numpy as np


def _fingerprint(exp):
    return (
        [p.data.copy() for p in exp.model.parameters()],
        exp.g.mem.data.data.copy(),
        exp.g.mailbox.mail.data.copy(),
    )


def _equal(a, b):
    return (
        all(np.array_equal(x, y) for x, y in zip(a[0], b[0]))
        and np.array_equal(a[1], b[1])
        and np.array_equal(a[2], b[2])
    )


def _build():
    from repro.bench.experiments import Experiment, ExperimentConfig

    cfg = ExperimentConfig(
        model="tgn", dataset="wiki", framework="tglite+opt", epochs=2,
        batch_size=300, dim_embed=8, dim_time=8, dim_mem=8, num_layers=1,
        seed=7,
    )
    return Experiment(cfg)


def _trainer(exp, ckdir, injector=None, num_replicas=1):
    from repro.bench import ResilientTrainer

    return ResilientTrainer(
        exp.model, exp.g, exp.optimizer, exp.neg_sampler, batch_size=300,
        checkpoint_dir=ckdir, checkpoint_every=2, injector=injector,
        num_replicas=num_replicas,
    )


def main():
    from repro.bench import ResilientTrainer  # noqa: F401 (import check)
    from repro.resilience import FaultInjector, SimulatedProcessKill

    workdir = tempfile.mkdtemp(prefix="resilience-demo-")
    train_end = 900

    # ---- reference: fault-free seeded run --------------------------------
    exp = _build()
    clean = _trainer(exp, os.path.join(workdir, "clean"), num_replicas=2)
    clean_result = clean.train(epochs=2, train_end=train_end)
    clean_fp = _fingerprint(exp)
    exp.close()
    print(f"fault-free run:   losses = "
          f"{[round(e.train_loss, 6) for e in clean_result.epochs]}")

    # ---- faulted run: kernel fault + NaN grads + worker crash ------------
    injector = FaultInjector(
        seed=11,
        kernel_fault_batches=[(0, 1)],   # transient sampling-kernel fault
        nan_grad_batches=[(0, 2)],       # poisons params -> rollback
        worker_crashes=[(1, 1, 0)],      # replica 0 dies -> redistribute
    )
    exp = _build()
    faulted = _trainer(exp, os.path.join(workdir, "faulted"),
                       injector=injector, num_replicas=2)
    faulted_result = faulted.train(epochs=2, train_end=train_end)
    faulted_fp = _fingerprint(exp)
    exp.close()
    print(f"faulted run:      losses = "
          f"{[round(e.train_loss, 6) for e in faulted_result.epochs]}")
    for ev in faulted_result.events:
        if ev.kind != "checkpoint":
            print(f"  [{ev.kind:>14s}] epoch {ev.epoch} batch {ev.batch}  {ev.detail}")
    print(f"recovered bit-identical to fault-free: "
          f"{_equal(clean_fp, faulted_fp)}")

    # ---- hard kill mid-epoch, then bit-exact resume ----------------------
    ckdir = os.path.join(workdir, "killed")
    exp = _build()
    killer = FaultInjector(seed=5, process_kill_at=(1, 1))
    try:
        _trainer(exp, ckdir, injector=killer, num_replicas=2).train(
            epochs=2, train_end=train_end
        )
    except SimulatedProcessKill as exc:
        print(f"\nprocess killed at (epoch {exc.epoch}, batch {exc.batch}); "
              f"restarting from checkpoint …")
    exp.close()

    exp = _build()  # a fresh "process"
    resumed_result = _trainer(exp, ckdir, num_replicas=2).train(
        epochs=2, train_end=train_end, resume=True
    )
    resumed_fp = _fingerprint(exp)
    exp.close()
    first = resumed_result.events[0]
    print(f"resumed from (epoch {first.epoch}, batch {first.batch}); "
          f"final state bit-identical: {_equal(clean_fp, resumed_fp)}")

    # ---- persistent kernel fault: graceful degradation -------------------
    exp = _build()
    stubborn = FaultInjector(seed=2, kernel_fault_batches=[(0, 0), (0, 1), (0, 2)])
    degraded_result = _trainer(
        exp, os.path.join(workdir, "degraded"), injector=stubborn
    ).train(epochs=1, train_end=train_end)
    stats = exp.g.ctx.stats()
    print(f"\nafter {stats.kernel_faults.get('kernel.sample', 0)} kernel faults: "
          f"degraded sites = {stats.degraded}")
    print(f"training still completed {len(degraded_result.epochs)} epoch(s) "
          f"on the reference path")
    exp.close()


if __name__ == "__main__":
    main()
