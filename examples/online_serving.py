"""Online serving: a hardened streaming front end over TGN-style state.

Training assumes clean, sorted, deduplicated datasets.  A deployed TGNN
sees the opposite: malformed events, at-least-once redelivery, bounded
out-of-order arrival, and load spikes far beyond provisioned capacity.
This example drives `repro.serve.ServeRuntime` through all of it:

1. a clean replay at 1x load (everything served at full quality);
2. a *poisoned* replay — junk events, duplicates, shuffled arrivals —
   showing the quarantine ledger and the bit-identical final state;
3. a 16x overload replay, where the deadline degradation ladder
   (full fanout -> reduced fanout -> embedding cache -> memory-only)
   and admission control keep the runtime available;
4. a chaos replay with `resilience.FaultInjector` armed over the
   serving fault sites, exercising snapshot-rollback commits.

Run with:  PYTHONPATH=src python examples/online_serving.py
"""

import numpy as np

from repro.core import Mailbox, Memory, TContext, TGraph, TSampler
from repro.resilience import FaultInjector, validate_state
from repro.serve import (
    ServeRuntime,
    build_stream,
    poison_stream,
    replay,
    split_batches,
)

NUM_NODES = 120
NUM_EVENTS = 1200
DIM = 16


def make_runtime(topology, lateness=0.0, deadline=1.0, max_queue=1 << 30,
                 injector=None):
    # The sampling topology comes from clean history; TGraph itself
    # rejects malformed edges, which is exactly why the serving path
    # quarantines junk *before* it ever reaches graph state.
    g = TGraph(topology.src, topology.dst, topology.ts, num_nodes=NUM_NODES)
    ctx = TContext(g)
    memory = Memory(NUM_NODES, DIM)
    mailbox = Mailbox(NUM_NODES, DIM)
    sampler = TSampler(10, seed=3)
    runtime = ServeRuntime(
        g, ctx, memory, sampler, mailbox=mailbox, deadline=deadline,
        lateness=lateness, max_queue=max_queue, injector=injector,
    )
    return runtime


def show(title, runtime, results):
    statuses = {s: sum(1 for r in results if r.status == s)
                for s in ("ok", "shed", "timeout")}
    lat = runtime.ctx.stats().latency
    print(f"\n== {title} ==")
    print(f"  responses: {statuses}")
    if lat is not None:
        print(f"  latency: p50={lat.p50:.4g}s  p99={lat.p99:.4g}s")
    interesting = {k: v for k, v in runtime.stats().items()
                   if not isinstance(v, (int, float)) or v}
    for key, value in interesting.items():
        print(f"  {key}: {value}")


def main() -> None:
    clean = build_stream(NUM_NODES, NUM_EVENTS, payload_dim=DIM, seed=11)
    batches = split_batches(clean, 40)

    # 1. clean stream, provisioned load: everything full quality.
    rt = make_runtime(clean)
    results = replay(rt, batches, load=1.0)
    show("clean stream @ 1x load", rt, results)

    # 2. poisoned stream: junk + duplicates + bounded shuffle.  The
    #    runtime quarantines every bad event (structured reasons) and the
    #    final state is bit-identical to the clean replay above.
    poisoned, lateness, injected = poison_stream(clean, NUM_NODES, seed=5)
    rt2 = make_runtime(clean, lateness=lateness)
    results = replay(rt2, split_batches(poisoned, 40), load=1.0)
    show(f"poisoned stream ({injected})", rt2, results)
    same = np.array_equal(rt.memory.data.data, rt2.memory.data.data) and \
        np.array_equal(rt.mailbox.mail.data, rt2.mailbox.mail.data)
    print(f"  final state vs clean replay: "
          f"{'bit-identical' if same else 'DIVERGED'}")

    # 3. 16x overload with tight deadlines: the ladder degrades responses
    #    (never state) and the bounded queue sheds what cannot be served.
    rt3 = make_runtime(clean, deadline=3e-3, max_queue=8)
    results = replay(rt3, batches, load=16.0)
    show("clean stream @ 16x load, 3ms deadlines", rt3, results)

    # 4. chaos: transient ingest/commit faults retry; a poison fault
    #    corrupts a staged batch, which validation catches and rolls back
    #    atomically -- memory never holds a partial or non-finite commit.
    injector = FaultInjector(seed=13, serve_ingest_fault_rate=0.1,
                             serve_commit_fault_rate=0.1,
                             serve_poison_batches=[(0, 6)])
    rt4 = make_runtime(clean, injector=injector)
    with injector:
        results = replay(rt4, batches, load=1.0)
    show("clean stream under fault injection", rt4, results)
    print(f"  faults fired: {[(e.site, e.batch) for e in injector.log]}")
    violations = validate_state(rt4.graph, rt4.ctx) + rt4.memory.validate()
    print(f"  post-chaos state validation: "
          f"{'clean' if not violations else violations}")


if __name__ == "__main__":
    main()
