"""Discrete-time (DTDG) modeling on the snapshot abstraction (§7).

The paper's future-work section proposes extending TGLite to discrete-time
models "as composable operators on a graph snapshot abstraction".  This
example exercises exactly that extension (``repro.core.snapshot``):

* the Wiki-like CTDG is chopped into evenly spaced snapshots (Figure 1b);
* a DySAT/EvolveGCN-flavoured model aggregates each snapshot's structure
  with the *existing* CTDG block operators (snapshot.block -> TSampler ->
  edge_reduce), then evolves per-node states across snapshots with a GRU;
* training predicts the next window's edges from the history so far.

Everything composes from public APIs — no new framework code was needed
beyond the snapshot abstraction itself.

Run:  python examples/discrete_time_snapshots.py
"""

import numpy as np

from repro import nn
from repro import tensor as T
import repro.core as tg
from repro.bench.metrics import average_precision
from repro.core import op as tgop
from repro.data import NegativeSampler, get_dataset
from repro.models import EdgePredictor


class SnapshotGNN(nn.Module):
    """One message-passing hop over a snapshot, via CTDG block operators."""

    def __init__(self, ctx, dim_in, dim_out, num_nbrs=10):
        super().__init__()
        self.ctx = ctx
        self.sampler = tg.TSampler(num_nbrs, "recent")
        self.fc_self = nn.Linear(dim_in, dim_out)
        self.fc_nbr = nn.Linear(dim_in, dim_out)

    def forward(self, snapshot, states: T.Tensor) -> T.Tensor:
        """Aggregate each node's within-horizon neighborhood."""
        nodes = np.arange(self.ctx.graph.num_nodes)
        blk = snapshot.block(self.ctx, nodes=nodes)
        self.sampler.sample(blk)
        h_self = self.fc_self(states)
        if blk.num_src == 0:
            return h_self.relu()
        nbr_states = states[blk.srcnodes]
        pooled = tgop.edge_reduce(blk, self.fc_nbr(nbr_states), op="mean")
        return (h_self + pooled).relu()


class EvolveModel(nn.Module):
    """Snapshot GNN + GRU state evolution + edge predictor."""

    def __init__(self, ctx, dim_node, dim_hidden=32):
        super().__init__()
        self.ctx = ctx
        self.gnn = SnapshotGNN(ctx, dim_hidden, dim_hidden)
        self.input_proj = nn.Linear(dim_node, dim_hidden)
        self.evolve = nn.GRUCell(dim_hidden, dim_hidden)
        self.edge_predictor = EdgePredictor(dim_hidden)
        self.dim_hidden = dim_hidden

    def init_states(self) -> T.Tensor:
        feats = self.ctx.graph.nfeat
        return self.input_proj(T.Tensor(feats.data, device=self.ctx.device)).tanh()

    def step(self, snapshot, states: T.Tensor) -> T.Tensor:
        """Consume one snapshot; return evolved per-node states."""
        aggregated = self.gnn(snapshot, states)
        return self.evolve(aggregated, states)

    def score_edges(self, states, src, dst):
        return self.edge_predictor(states[src], states[dst])


def main() -> None:
    T.manual_seed(1)
    dataset = get_dataset("wiki")
    graph = dataset.build_graph(feature_device="cpu")
    ctx = tg.TContext(graph, device="cpu")

    model = EvolveModel(ctx, dim_node=dataset.nfeat.shape[1])
    optimizer = nn.Adam(model.parameters(), lr=5e-3)
    negatives = NegativeSampler.for_dataset(dataset)
    loader = tg.SnapshotLoader(graph, num_snapshots=12)
    num_train_steps = 8  # first windows train; the rest evaluate

    print(f"{len(loader.snapshots)} snapshots, "
          f"{[s.num_edges for s in loader.snapshots]} edges per window")

    for epoch in range(4):
        states = model.init_states()
        losses, ap_scores = [], []
        negatives.reset()
        for step, (history, target) in enumerate(loader):
            states = model.step(history, states)
            src, dst = target.src, target.dst
            neg = negatives.sample(len(target))
            pos_logits = model.score_edges(states, src, dst)
            neg_logits = model.score_edges(states, src, neg)
            if step < num_train_steps:
                loss = nn.bce_with_logits(pos_logits, T.ones(len(target))) + \
                    nn.bce_with_logits(neg_logits, T.zeros(len(target)))
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                losses.append(loss.item())
                states = states.detach()  # truncated BPTT across snapshots
            else:
                labels = np.concatenate([np.ones(len(target)), np.zeros(len(target))])
                scores = np.concatenate([pos_logits.numpy(), neg_logits.numpy()])
                ap_scores.append(average_precision(labels, scores))
        print(f"epoch {epoch}: train loss {np.mean(losses):.4f}  "
              f"future-window AP {np.mean(ap_scores):.4f}")


if __name__ == "__main__":
    main()
