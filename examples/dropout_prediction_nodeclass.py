"""Dynamic node classification: predicting student dropout on MOOC.

The MOOC dataset in the paper's Table 3 carries rare dynamic labels
(students dropping out around bursts of activity).  The standard protocol:
train a TGNN on link prediction, then fit a small decoder on the frozen
time-aware embeddings to predict the per-interaction labels, scoring
ROC-AUC on the chronologically later portion.

Two readings of this example:

1. **The pipeline** — `collect_source_embeddings` + `train_node_classifier`
   turn any TGLite model into a streaming event detector.
2. **An honest caveat about synthetic labels** — our scaled-down analog
   concentrates bursts on a few hyper-active users, so *static identity*
   features also predict the labels, a shortcut the real datasets offer
   far less of (the closing note in the output explains).

Run:  python examples/dropout_prediction_nodeclass.py
"""

import numpy as np

from repro import nn
from repro import tensor as T
import repro.core as tg
from repro.bench import (
    collect_source_embeddings,
    train_epoch,
    train_node_classifier,
)
from repro.data import NegativeSampler, get_dataset
from repro.models import JODIE, OptFlags


def current_gaps(dataset) -> np.ndarray:
    """Per-interaction gap since the source user's previous interaction."""
    last = {}
    gaps = np.full(dataset.num_edges, np.inf)
    for i in range(dataset.num_edges):
        u = int(dataset.src[i])
        if u in last:
            gaps[i] = dataset.ts[i] - last[u]
        last[u] = dataset.ts[i]
    return gaps


def main() -> None:
    T.manual_seed(11)
    dataset = get_dataset("mooc")
    positives = int(dataset.edge_labels.sum())
    print(f"MOOC-like stream: {dataset.num_edges} interactions, "
          f"{positives} dropout events ({100 * positives / dataset.num_edges:.2f}%)")

    graph = dataset.build_graph(feature_device="cuda")
    ctx = tg.TContext(graph, device="cuda")
    dim_mem = 32
    graph.set_memory(dim_mem, device="cuda")
    graph.set_mailbox(JODIE.required_mailbox_dim(dim_mem, dataset.efeat.shape[1]),
                      device="cuda")
    model = JODIE(
        ctx, dim_node=dataset.nfeat.shape[1], dim_edge=dataset.efeat.shape[1],
        dim_time=32, dim_embed=32, dim_mem=dim_mem, opt=OptFlags.preload_only(),
    ).to("cuda")

    # Stage 1: self-supervised link-prediction training.
    optimizer = nn.Adam(model.parameters(), lr=1e-3)
    negatives = NegativeSampler.for_dataset(dataset)
    train_end, _, _ = dataset.splits()
    print("stage 1: link-prediction pre-training ...")
    for epoch in range(2):
        model.reset_state()
        seconds, loss = train_epoch(model, graph, optimizer, negatives,
                                    batch_size=300, stop=train_end)
        print(f"  epoch {epoch}: {seconds:.2f}s loss={loss:.4f}")

    # Stage 2: harvest streaming embeddings + fit the dropout decoder.
    print("stage 2: decoding dropout events ...")
    model.reset_state()
    embeds, labels = collect_source_embeddings(model, graph, dataset, batch_size=300)
    raw = dataset.nfeat[dataset.src]
    _, auc_temporal = train_node_classifier(embeds, labels, epochs=30)
    _, auc_static = train_node_classifier(raw, labels, epochs=30)
    print(f"  dropout ROC-AUC, temporal embeddings: {auc_temporal:.4f}")
    print(f"  dropout ROC-AUC, static features:     {auc_static:.4f}"
          "   (identity shortcut of the scaled-down analog; see docstring)")

    print(
        "\nnote: in this scaled-down synthetic analog, bursts concentrate on a\n"
        "few hyper-active users, so static identity features are a competitive\n"
        "shortcut; on the real JODIE datasets (where state changes are spread\n"
        "across thousands of users) temporal models dominate -- see the TGAT/\n"
        "TGN/JODIE papers' node-classification tables."
    )


if __name__ == "__main__":
    main()
