#!/usr/bin/env python
"""Splice the latest benchmarks/results/ tables into EXPERIMENTS.md.

EXPERIMENTS.md contains marker pairs::

    <!-- BEGIN RESULTS:fig5_train_gpu.txt -->
    ```
    ... (replaced verbatim with the file's contents) ...
    ```
    <!-- END RESULTS -->

Run after ``pytest benchmarks/ --benchmark-only`` so the document always
quotes the most recent measurement.
"""

import os
import re
import sys

ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
DOC = os.path.join(ROOT, "EXPERIMENTS.md")
RESULTS = os.path.join(ROOT, "benchmarks", "results")

PATTERN = re.compile(
    r"(<!-- BEGIN RESULTS:(?P<name>[\w.]+) -->\n```\n)(?P<body>.*?)(\n```\n<!-- END RESULTS -->)",
    re.DOTALL,
)


def main() -> int:
    with open(DOC) as fh:
        text = fh.read()

    missing = []

    def replace(match: re.Match) -> str:
        name = match.group("name")
        path = os.path.join(RESULTS, name)
        if not os.path.exists(path):
            missing.append(name)
            return match.group(0)
        with open(path) as fh:
            body = fh.read().rstrip()
        return f"{match.group(1)}{body}{match.group(4)}"

    updated, count = PATTERN.subn(replace, text)
    with open(DOC, "w") as fh:
        fh.write(updated)
    print(f"updated {count - len(missing)} result blocks in EXPERIMENTS.md")
    if missing:
        print(f"missing results files (left untouched): {missing}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
