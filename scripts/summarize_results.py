#!/usr/bin/env python
"""Print every reproduced table/figure collected under benchmarks/results/.

Usage:  python scripts/summarize_results.py [results_dir]

Run after ``pytest benchmarks/ --benchmark-only`` to get a single
consolidated report of the paper reproduction.
"""

import os
import sys

ORDER = [
    "table3_datasets.txt",
    "fig5_train_gpu.txt",
    "fig6_train_cpu2gpu.txt",
    "table4_train_ap.txt",
    "fig7_breakdown.txt",
    "table5_inference.txt",
    "table6_opt_ablation.txt",
    "table7_large_scale.txt",
    "table7_oom.txt",
    "table8_large_ap.txt",
    "ablation_tblock_vs_mfg.txt",
    "ablation_hooks.txt",
    "transfer_accounting.txt",
]


def main() -> int:
    default = os.path.join(os.path.dirname(__file__), "..", "benchmarks", "results")
    results_dir = sys.argv[1] if len(sys.argv) > 1 else default
    if not os.path.isdir(results_dir):
        print(f"no results directory at {results_dir}; "
              "run `pytest benchmarks/ --benchmark-only` first", file=sys.stderr)
        return 1
    present = set(os.listdir(results_dir))
    shown = 0
    for name in ORDER + sorted(present - set(ORDER)):
        path = os.path.join(results_dir, name)
        if not os.path.exists(path):
            continue
        with open(path) as fh:
            print(fh.read().rstrip())
        print()
        shown += 1
    if not shown:
        print("results directory is empty", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
