"""Figure 5: training time per epoch-slice, all-on-GPU case.

Paper shape to reproduce: TGLite (preload-only) on par with TGL; TGLite+opt
1.06-1.81x faster, with the biggest wins for TGAT/TGN on repeat-heavy
datasets; JODIE's TGLite+opt setting is skipped (same as TGLite).
"""

import pytest

from conftest import report_table
from helpers import (
    FRAMEWORK_ORDER,
    MODEL_ORDER,
    STANDARD_DATASETS,
    make_config,
    measure_training,
    skip_tglite_opt_for_jodie,
    speedup,
)


def test_fig5_training_all_on_gpu(benchmark):
    def run_grid():
        results = {}
        for dataset in STANDARD_DATASETS:
            for model in MODEL_ORDER:
                for framework in FRAMEWORK_ORDER:
                    if skip_tglite_opt_for_jodie(model, framework):
                        continue
                    cfg = make_config(dataset, model, framework, "gpu")
                    results[(dataset, model, framework)] = measure_training(cfg)["seconds"]
        return results

    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    rows = []
    for dataset in STANDARD_DATASETS:
        for model in MODEL_ORDER:
            tgl = results[(dataset, model, "tgl")]
            lite = results[(dataset, model, "tglite")]
            opt = results.get((dataset, model, "tglite+opt"))
            rows.append([
                dataset, model, f"{tgl:.2f}",
                f"{lite:.2f} ({speedup(tgl, lite)})",
                f"{opt:.2f} ({speedup(tgl, opt)})" if opt is not None else "= tglite",
            ])
    report_table(
        "Figure 5: training time per epoch-slice (seconds), all-on-GPU",
        ["dataset", "model", "TGL", "TGLite", "TGLite+opt"],
        rows,
        filename="fig5_train_gpu.txt",
    )

    # Shape assertions (not absolute numbers): optimization operators must
    # win for the sampling-heavy models on every dataset.
    for dataset in STANDARD_DATASETS:
        for model in ("tgat", "tgn"):
            assert results[(dataset, model, "tglite+opt")] < results[(dataset, model, "tgl")], (
                f"TGLite+opt should beat TGL for {model}/{dataset}"
            )
