"""Tiered-store prefetch effectiveness: stall time paid vs recovered.

Not a paper table — this bench characterizes the `repro.store` subsystem
the way §5.2.2 characterizes data movement: how much simulated stall
time the training loop spends blocked on feature transfers, and how much
of it the one-batch sampler-lookahead prefetcher hides behind batch
compute.  Three settings over the identical batch stream:

* ``no-prefetch``       — demand gathers only (``prefetch_depth=0``).
* ``prefetch``          — one batch of lookahead, ample hot tier.
* ``prefetch+tiny-hot`` — lookahead under hot-tier pressure (0.05 MiB),
  so rows churn through the demotion chain every batch.  Feature spaces
  are source-backed, so displaced rows fall back to the authority rather
  than a spill file (the cold spill path is exercised by the embedding
  spaces in ``tests/test_store.py``).

``compute_seconds_per_row`` is calibrated up from the default (2e-6 ->
2e-5) to model a compute-bound regime where the overlap window is
meaningful; the default transfer-bound regime bounds recovery at the
compute time available, which is the point the table makes.

Expected shape: prefetch recovers a measurable fraction of the
no-prefetch stall (``saved > 0`` and total stall strictly lower), and
the constrained arm reports nonzero staging/cold byte flow.
"""

import numpy as np

from repro.core import TGraph, iter_batches
from repro.store import StoreConfig, TieredFeatureStore
from repro.store.prefetch import BatchPipeline, attach_graph_sources

from conftest import report_table

NUM_NODES = 2000
NUM_EDGES = 20000
DIM = 64
BATCH = 300
#: modeled compute per consumed row (see module docstring).
COMPUTE_PER_ROW = 2.0e-5

ARMS = {
    "no-prefetch": dict(prefetch_depth=0),
    "prefetch": dict(prefetch_depth=1),
    "prefetch+tiny-hot": dict(prefetch_depth=1, hot_mb=0.05, staging_rows=512),
}


def make_graph(seed=7) -> TGraph:
    rng = np.random.default_rng(seed)
    src = rng.integers(0, NUM_NODES, size=NUM_EDGES)
    dst = rng.integers(0, NUM_NODES, size=NUM_EDGES)
    ts = np.sort(rng.uniform(0, 1000, size=NUM_EDGES))
    g = TGraph(src, dst, ts, num_nodes=NUM_NODES)
    g.set_nfeat(rng.standard_normal((NUM_NODES, DIM)).astype(np.float32))
    g.set_memory(DIM)
    return g


def _measure(arm: str) -> dict:
    cfg = StoreConfig(compute_seconds_per_row=COMPUTE_PER_ROW, **ARMS[arm])
    store = TieredFeatureStore(cfg)
    g = make_graph()
    attach_graph_sources(store, g)
    pipeline = BatchPipeline(store, g)
    for _ in pipeline.batches(iter_batches(g, BATCH)):
        pass  # the store models the data movement; no training compute here
    st = store.stats()
    return {
        "stall": st.stall_seconds,
        "saved": st.stall_saved_seconds,
        "recovered": st.stall_recovered_fraction,
        "issued": st.prefetch_issued,
        "hits": st.prefetch_hits,
        "late": st.prefetch_late,
        "tiers": {name: t.as_dict() for name, t in st.tiers.items()},
        "bytes_moved": st.bytes_moved,
    }


def test_store_prefetch_effectiveness(benchmark):
    def run():
        return {arm: _measure(arm) for arm in ARMS}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [arm,
         f"{r['stall']:.4f}",
         f"{r['saved']:.4f}",
         f"{100 * r['recovered']:.1f}%",
         r["issued"], r["hits"], r["late"]]
        for arm, r in results.items()
    ]
    report_table(
        "Tiered-store prefetch: simulated stall seconds paid vs recovered "
        f"({NUM_EDGES} synthetic edges, dim {DIM})",
        ["setting", "stall (s)", "saved (s)", "recovered", "issued",
         "hits", "late"],
        rows,
        filename="store_prefetch.txt",
    )

    byte_rows = []
    for arm, r in results.items():
        for tier in ("hot", "staging", "cold"):
            t = r["tiers"][tier]
            byte_rows.append([
                arm, tier, t["bytes_in"], t["bytes_out"],
                t["evictions"], t["demotions"],
            ])
        byte_rows.append([arm, "total", r["bytes_moved"], "-", "-", "-"])
    report_table(
        "Tiered-store bytes moved per tier (same runs)",
        ["setting", "tier", "bytes in", "bytes out", "evictions",
         "demotions"],
        byte_rows,
        filename="store_bytes_moved.txt",
    )

    base = results["no-prefetch"]
    pf = results["prefetch"]
    tiny = results["prefetch+tiny-hot"]
    # No lookahead -> nothing issued, nothing recovered.
    assert base["issued"] == 0 and base["saved"] == 0.0
    assert base["stall"] > 0.0
    # Prefetch recovers measurable stall on the identical stream.
    assert pf["saved"] > 0.0
    assert pf["stall"] < base["stall"]
    assert pf["recovered"] > 0.05
    # The constrained arm actually exercises the demotion chain.
    assert tiny["tiers"]["staging"]["demotions"] > 0
    assert tiny["tiers"]["hot"]["evictions"] > 0
    assert tiny["saved"] > 0.0
