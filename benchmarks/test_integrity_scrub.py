"""Anti-entropy scrub overhead and detection latency, by replication factor.

Replays one synthetic event stream through `repro.cluster.ServeCluster`
with the background integrity scrubber at its default interval, at
replication factor 1 / 2 / 3, and reports per factor: completed scrub
cycles, chunks hashed, divergences found on the clean run (must be 0 —
the zero-false-positive bar), wall-clock seconds spent scrubbing versus
serving, and the scrub overhead as a share of serve time.  A second pass
per factor injects a single out-of-band memory bit flip after the replay
and reports the detect-and-repair outcome (rows repaired, final state
bit-identical to a clean single-runtime replay).

The acceptance gate is scrub overhead <= 10% of serve wall time at the
default interval, with every injected flip detected and repaired.

Written to ``benchmarks/results/integrity_scrub.txt``.
"""

import time

from repro.cluster import ClusterConfig, ServeCluster
from repro.core import Mailbox, Memory, TContext, TGraph, TSampler
from repro.serve import ServeRuntime, build_stream, replay, split_batches

from conftest import report_table

NUM_NODES = 500
NUM_EVENTS = 6000
DIM = 16
BATCH = 50
LOAD = 16.0
SHARDS = 4
FACTORS = (1, 2, 3)
OVERHEAD_BUDGET = 0.10


def _single_digests(stream, batches):
    g = TGraph(stream.src, stream.dst, stream.ts, num_nodes=NUM_NODES)
    ctx = TContext(g)
    mem = Memory(NUM_NODES, DIM)
    mailbox = Mailbox(NUM_NODES, DIM)
    runtime = ServeRuntime(g, ctx, mem, TSampler(10, seed=3),
                           mailbox=mailbox, deadline=1.0, max_queue=1 << 30)
    replay(runtime, batches, load=LOAD)
    return mem.state_digest(), mailbox.state_digest()


def run_at_factor(stream, factor, flip):
    g = TGraph(stream.src, stream.dst, stream.ts, num_nodes=NUM_NODES)
    ctx = TContext(g)
    cluster = ServeCluster(
        g, ctx, TSampler(10, seed=3), DIM,
        config=ClusterConfig(num_shards=SHARDS, replication_factor=factor),
        deadline=1.0, max_queue=1 << 30, stream=stream,
    )
    with cluster:
        t0 = time.perf_counter()
        results = replay(cluster, split_batches(stream, BATCH), load=LOAD)
        serve_seconds = time.perf_counter() - t0
        if flip:
            group = cluster.groups[1]
            assert cluster._apply_bitflip(
                group, factor - 1, ("flip", "memory", 104729, 3))
            cluster.drain()
        stats = cluster.stats()
        data, times = cluster.memory_image()
        from repro.integrity import array_digest
        mem_digest = array_digest(data, times)
    assert all(r.status == "ok" for r in results)
    return stats, serve_seconds, mem_digest


def test_integrity_scrub_overhead():
    stream = build_stream(NUM_NODES, NUM_EVENTS, payload_dim=DIM, seed=31)
    batches = split_batches(stream, BATCH)
    clean_mem_digest, _ = _single_digests(stream, batches)
    rows = []

    for factor in FACTORS:
        stats, serve_seconds, mem_digest = run_at_factor(
            stream, factor, flip=False)
        scrub_seconds = float(stats["integrity:scrub_seconds"])
        overhead = scrub_seconds / serve_seconds
        # clean run: the scrubber worked and stayed silent
        assert stats["integrity:cycles"] >= 1
        assert stats["integrity:chunks_scrubbed"] > 0
        assert stats["integrity:divergences"] == 0
        assert mem_digest == clean_mem_digest
        # the acceptance gate: scrubbing costs <= 10% of serve time
        assert overhead <= OVERHEAD_BUDGET, (
            f"factor {factor}: scrub overhead {overhead:.2%} exceeds "
            f"{OVERHEAD_BUDGET:.0%} of serve wall time"
        )

        fstats, _, fdigest = run_at_factor(stream, factor, flip=True)
        # the injected flip was detected within one cycle and repaired
        # back to bit-identical state
        assert fstats["integrity:divergences"] >= 1
        assert fstats["integrity:rows_repaired"] >= 1
        assert fdigest == clean_mem_digest

        rows.append([
            factor,
            int(stats["integrity:cycles"]),
            int(stats["integrity:chunks_scrubbed"]),
            int(stats["integrity:divergences"]),
            f"{scrub_seconds * 1e3:.2f}",
            f"{serve_seconds * 1e3:.2f}",
            f"{overhead:.2%}",
            f"{int(fstats['integrity:divergences'])}/"
            f"{int(fstats['integrity:rows_repaired'])} repaired",
        ])

    report_table(
        "Integrity scrub: overhead and flip repair at the default interval "
        f"({SHARDS} shards, {LOAD:g}x load, budget {OVERHEAD_BUDGET:.0%})",
        ["factor", "cycles", "chunks", "false_pos", "scrub_ms",
         "serve_ms", "overhead", "flip_outcome"],
        rows,
        filename="integrity_scrub.txt",
    )
