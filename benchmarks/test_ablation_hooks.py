"""§5.4 ablation: the hooks mechanism.

The paper removes hooks from TGLite and has users run the post-processing
callables themselves (re-implementing aggregate's scheduling): no
noticeable performance regression, but ~49 extra lines of user-level code
per application.  This benchmark implements exactly that user-side version
of TGAT-with-dedup — manual unique/inverse bookkeeping and a hand-rolled
multi-hop aggregation loop — and checks both the performance parity and
the output equivalence against the hooks-based framework path.
"""

import time

import numpy as np
import pytest

import repro.core as tg
from repro import tensor as T
from repro.core import op as tgop
from repro.core.op.dedup import unique_node_times
from repro.models import TGAT, OptFlags

from conftest import report_table
from helpers import make_config
from repro.bench.experiments import Experiment


class ManualPostprocTGAT(TGAT):
    """TGAT applying dedup + aggregation without the hooks mechanism.

    This is the user-level code the hooks feature makes unnecessary: the
    inverse mappings are tracked by hand and the per-layer delivery of
    outputs (aggregate's job) is re-implemented inline.
    """

    def compute_embeddings(self, batch: tg.TBatch) -> T.Tensor:
        head = batch.block(self.ctx)
        blocks, inverses = [], []
        tail = head
        for i in range(self.num_layers):
            if i > 0:
                tail = tail.next_block()
            # Manual dedup: filter and remember the inverse ourselves.
            un, ut, inv = unique_node_times(tail.dstnodes, tail.dsttimes)
            if len(un) < tail.num_dst:
                tail.set_dst(un, ut)
                inverses.append(inv)
            else:
                inverses.append(None)
            tail = self.sampler.sample(tail)
            blocks.append(tail)
        tgop.preload(head, use_pin=self.opt.pin_memory)
        tail.dstdata["h"] = tail.dstfeat()
        tail.srcdata["h"] = tail.srcfeat()
        # Manual multi-hop aggregation (what aggregate() schedules for us).
        output = None
        for depth in range(self.num_layers - 1, -1, -1):
            blk = blocks[depth]
            output = self.attn_layers[self.num_layers - 1 - depth](blk)
            if inverses[depth] is not None:
                output = output[inverses[depth]]  # manual post-processing
            if blk.prev is not None:
                prev = blk.prev
                prev.dstdata["h"] = output[: prev.num_dst]
                prev.srcdata["h"] = output[prev.num_dst :]
        return output


def test_ablation_hooks_mechanism(benchmark):
    def run():
        cfg = make_config("wiki", "tgat", "tglite", "gpu",
                          opt_flags=OptFlags(preload=True, dedup=True), dropout=0.0)
        results = {}

        # Hooks-based framework path.
        T.manual_seed(cfg.seed)
        exp = Experiment(cfg)
        t0 = time.perf_counter()
        from repro.bench.trainer import train_epoch
        train_epoch(exp.model, exp.g, exp.optimizer, exp.neg_sampler,
                    cfg.batch_size, stop=2200)
        results["hooks"] = time.perf_counter() - t0
        exp.close()

        # Manual user-level path: identical weights, same batches.
        T.manual_seed(cfg.seed)
        exp = Experiment(cfg)
        manual = ManualPostprocTGAT(
            exp.ctx, dim_node=exp.dataset.nfeat.shape[1],
            dim_edge=exp.dataset.efeat.shape[1], dim_time=cfg.dim_time,
            dim_embed=cfg.dim_embed, num_layers=cfg.num_layers,
            num_heads=cfg.num_heads, num_nbrs=cfg.num_nbrs,
            dropout=0.0, opt=OptFlags(preload=True, dedup=False),
        ).to("cuda")
        manual.load_state_dict(exp.model.state_dict())

        # Output equivalence on one batch before timing.
        batch = tg.TBatch(exp.g, 0, cfg.batch_size)
        batch.neg_nodes = exp.neg_sampler.sample(len(batch))
        exp.model.eval(); manual.eval(); exp.ctx.eval()
        with T.no_grad():
            a = exp.model.compute_embeddings(batch)
            # run head hooks manually since we bypass aggregate here
            b = manual.compute_embeddings(batch)
        results["max_output_diff"] = float(np.abs(a.numpy() - b.numpy()).max())

        exp.model.train(); manual.train()
        from repro import nn
        opt2 = nn.Adam(manual.parameters(), lr=cfg.lr)
        from repro.bench.trainer import train_epoch as tep
        exp.neg_sampler.reset()
        t0 = time.perf_counter()
        tep(manual, exp.g, opt2, exp.neg_sampler, cfg.batch_size, stop=2200)
        results["manual"] = time.perf_counter() - t0
        exp.close()
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    ratio = results["manual"] / results["hooks"]
    report_table(
        "Ablation (5.4): hooks mechanism vs manual user-level post-processing (TGAT+dedup/wiki)",
        ["path", "epoch-slice (s)", "notes"],
        [
            ["with hooks (framework)", f"{results['hooks']:.2f}", "dedup inversion scheduled by TGLite"],
            ["manual (user code)", f"{results['manual']:.2f}",
             f"{ratio:.2f}x of hooks; ~45 extra user-level lines"],
        ],
        filename="ablation_hooks.txt",
    )

    # Emulation is possible without noticeable regression and produces
    # identical outputs.
    assert results["max_output_diff"] < 1e-4
    assert 0.5 < ratio < 1.5
