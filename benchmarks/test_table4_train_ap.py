"""Table 4: training evaluation AP scores, all-on-GPU.

Paper claim: TGLite implementations reach similar accuracy to TGL, and the
optimization operators are semantic-preserving (TGLite+opt matches TGLite
up to training stochasticity).
"""

import pytest

from conftest import report_table
from helpers import (
    FRAMEWORK_ORDER,
    MODEL_ORDER,
    STANDARD_DATASETS,
    make_config,
    measure_training_with_ap,
    skip_tglite_opt_for_jodie,
)

#: Table 4 is about accuracy, not time: two epochs on two datasets keeps
#: the suite tractable while exercising every model x framework pair.
DATASETS = ("wiki", "mooc")


def test_table4_training_ap(benchmark):
    def run_grid():
        results = {}
        for dataset in DATASETS:
            for model in MODEL_ORDER:
                for framework in FRAMEWORK_ORDER:
                    if skip_tglite_opt_for_jodie(model, framework):
                        continue
                    cfg = make_config(dataset, model, framework, "gpu")
                    results[(dataset, model, framework)] = measure_training_with_ap(
                        cfg, epochs=2
                    )["ap"]
        return results

    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    rows = []
    for dataset in DATASETS:
        for model in MODEL_ORDER:
            opt = results.get((dataset, model, "tglite+opt"))
            rows.append([
                dataset, model,
                f"{100 * results[(dataset, model, 'tgl')]:.2f}",
                f"{100 * results[(dataset, model, 'tglite')]:.2f}",
                f"{100 * opt:.2f}" if opt is not None else "-",
            ])
    report_table(
        "Table 4: training evaluation AP (best epoch, all-on-GPU)",
        ["dataset", "model", "TGL", "TGLite", "TGLite+opt"],
        rows,
        filename="table4_train_ap.txt",
    )

    # Shape assertions: every setting must be well above chance, and the
    # TGLite/TGLite+opt pair must agree closely (semantic preservation;
    # residual gaps are training stochasticity as in the paper).
    for key, ap in results.items():
        assert ap > 0.55, f"AP at chance level for {key}"
    for dataset in DATASETS:
        for model in ("tgat", "tgn", "apan"):
            lite = results[(dataset, model, "tglite")]
            opt = results[(dataset, model, "tglite+opt")]
            assert abs(lite - opt) < 0.12
