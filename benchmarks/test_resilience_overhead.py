"""Fault-free overhead of the resilient runtime (robustness note).

The fault-tolerant trainer buys recovery with three standing costs paid
even when nothing fails: a per-batch in-RAM snapshot (RNG states +
memory/mailbox copies), periodic atomic checkpoints with CRC + state
validation, and the divergence guard's finiteness sweep after each step.
This benchmark measures that overhead directly: the plain §5 training
loop vs ``ResilientTrainer`` on identical seeded TGN/wiki runs (the
trajectories are bit-identical, so the delta is pure runtime cost),
at two checkpoint cadences.
"""

import gc
import tempfile
import time

import pytest

from conftest import report_table
from repro.bench import ResilientTrainer, train
from repro.bench.experiments import Experiment, ExperimentConfig

EPOCHS = 2
TRAIN_END = 3000
BATCH = 300


def _config():
    return ExperimentConfig(
        model="tgn", dataset="wiki", framework="tglite+opt", epochs=EPOCHS,
        batch_size=BATCH, dim_embed=8, dim_time=8, dim_mem=8, num_layers=1,
        seed=7,
    )


def _plain_seconds():
    """End-to-end wall seconds per epoch for the plain §5 loop."""
    exp = Experiment(_config())
    try:
        t0 = time.perf_counter()
        result = train(
            exp.model, exp.g, exp.optimizer, exp.neg_sampler,
            batch_size=BATCH, epochs=EPOCHS, train_end=TRAIN_END,
        )
        elapsed = time.perf_counter() - t0
        return elapsed / EPOCHS, [e.train_loss for e in result.epochs]
    finally:
        exp.close()


def _resilient_seconds(checkpoint_every):
    """End-to-end wall seconds per epoch including snapshot + checkpoint
    + validation costs (the trainer's own epoch timer excludes the
    checkpoint path, so the comparison times the whole call)."""
    exp = Experiment(_config())
    try:
        trainer = ResilientTrainer(
            exp.model, exp.g, exp.optimizer, exp.neg_sampler,
            batch_size=BATCH, checkpoint_dir=tempfile.mkdtemp(),
            checkpoint_every=checkpoint_every,
        )
        t0 = time.perf_counter()
        result = trainer.train(epochs=EPOCHS, train_end=TRAIN_END)
        elapsed = time.perf_counter() - t0
        return elapsed / EPOCHS, [e.train_loss for e in result.epochs]
    finally:
        exp.close()


def test_fault_free_overhead():
    _plain_seconds()  # warm-up: page in data + numpy code paths
    gc.collect()
    plain_s, plain_losses = _plain_seconds()
    rows = [["plain train()", f"{plain_s:.2f}", "-", "-"]]
    for every in (10, 2):
        gc.collect()
        res_s, res_losses = _resilient_seconds(every)
        assert res_losses == pytest.approx(plain_losses, rel=0, abs=0), (
            "resilient trajectory must be bit-identical to plain training"
        )
        overhead = (res_s / plain_s - 1.0) * 100.0 if plain_s > 0 else 0.0
        rows.append([
            f"resilient (ckpt every {every})",
            f"{res_s:.2f}",
            f"{overhead:+.1f}%",
            "bit-identical",
        ])
        # Snapshots + checkpoints + guards must not dominate training.
        assert res_s < plain_s * 3.0

    report_table(
        "Resilience overhead: fault-free TGN/wiki epoch time",
        ["configuration", "epoch seconds", "overhead", "trajectory"],
        rows,
        filename="resilience_overhead.txt",
    )
