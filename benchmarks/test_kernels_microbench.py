"""Microbenchmark: vectorized kernels vs their per-row loop references.

Times each kernel pair on a synthetic temporal graph (~100k edges) with
10k destination pairs per call and reports the speedup table under
``benchmarks/results/kernel_microbench.txt``.  The acceptance bar is a
>= 5x sampling speedup over the loop reference — the per-pair Python
loops are the analog of the paper's single-threaded sampler baseline,
the vectorized kernels of its 32/64-thread C++ sampler.
"""

import time

import numpy as np

from repro.core.kernels import (
    NodeTimeCache,
    _reference_sample_arrays,
    _reference_unique_node_times,
    _ReferenceNodeTimeCache,
    sample_recent,
    sample_uniform,
    unique_node_times,
)

from conftest import report_table

NUM_NODES = 5000
NUM_EDGES = 100_000
NUM_QUERIES = 10_000
K = 10


def build_graph(seed=0):
    rng = np.random.default_rng(seed)
    endpoints = rng.integers(0, NUM_NODES, size=NUM_EDGES)
    order = np.lexsort((rng.random(NUM_EDGES), endpoints))
    endpoints = endpoints[order]
    indptr = np.searchsorted(endpoints, np.arange(NUM_NODES + 1)).astype(np.int64)
    indices = rng.integers(0, NUM_NODES, size=NUM_EDGES).astype(np.int64)
    eids = rng.permutation(NUM_EDGES).astype(np.int64)
    etimes = np.empty(NUM_EDGES, dtype=np.float64)
    for node in range(NUM_NODES):
        seg = slice(indptr[node], indptr[node + 1])
        etimes[seg] = np.sort(rng.random(indptr[node + 1] - indptr[node]) * 1e4)
    nodes = rng.integers(0, NUM_NODES, size=NUM_QUERIES).astype(np.int64)
    times = (rng.random(NUM_QUERIES) * 1.2e4).astype(np.float64)
    return indptr, indices, eids, etimes, nodes, times


def timeit(fn, repeat=3):
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_kernel_microbench():
    indptr, indices, eids, etimes, nodes, times = build_graph()
    rows = []
    speedups = {}

    def record(name, ref_seconds, vec_seconds):
        speedups[name] = ref_seconds / vec_seconds
        rows.append([name, f"{ref_seconds * 1e3:.1f}", f"{vec_seconds * 1e3:.1f}",
                     f"{speedups[name]:.1f}x"])

    # -- sampling ----------------------------------------------------------
    ref = timeit(lambda: _reference_sample_arrays(
        indptr, indices, eids, etimes, nodes, times, K, "recent"))
    vec = timeit(lambda: sample_recent(indptr, indices, eids, etimes, nodes, times, K))
    record("sample_recent", ref, vec)

    ref = timeit(lambda: _reference_sample_arrays(
        indptr, indices, eids, etimes, nodes, times, K, "uniform",
        rng=np.random.default_rng(7)))
    vec = timeit(lambda: sample_uniform(
        indptr, indices, eids, etimes, nodes, times, K, np.random.default_rng(7)))
    record("sample_uniform", ref, vec)

    # -- dedup -------------------------------------------------------------
    dn = np.random.default_rng(1).integers(0, 2000, size=NUM_QUERIES).astype(np.int64)
    dt = np.random.default_rng(2).integers(0, 50, size=NUM_QUERIES).astype(np.float64)
    ref = timeit(lambda: _reference_unique_node_times(dn, dt))
    vec = timeit(lambda: unique_node_times(dn, dt))
    record("unique_node_times", ref, vec)

    # -- cache -------------------------------------------------------------
    capacity = 20_000
    values = np.random.default_rng(3).random((NUM_QUERIES, 32)).astype(np.float32)

    def run_cache(cls):
        cache = cls(capacity)
        cache.store(dn, dt, values)
        cache.lookup(dn, dt)
        return cache

    fast = run_cache(NodeTimeCache)
    slow = run_cache(_ReferenceNodeTimeCache)
    assert fast.hits == slow.hits  # same contract while we are at it
    ref = timeit(lambda: run_cache(_ReferenceNodeTimeCache).lookup(dn, dt))
    vec = timeit(lambda: run_cache(NodeTimeCache).lookup(dn, dt))
    record("cache_store+lookup", ref, vec)

    report_table(
        f"Kernel microbenchmark: loop reference vs vectorized "
        f"({NUM_EDGES // 1000}k edges, {NUM_QUERIES // 1000}k queries, k={K})",
        ["kernel", "reference (ms)", "vectorized (ms)", "speedup"],
        rows,
        filename="kernel_microbench.txt",
    )

    # Acceptance bar: >= 5x on the sampling hot path.
    assert speedups["sample_recent"] >= 5.0
    assert speedups["sample_uniform"] >= 5.0
