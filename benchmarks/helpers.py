"""Shared measurement harness for the benchmark suite.

The paper reports whole-epoch times on a GPU testbed; this numpy substrate
is orders of magnitude slower per FLOP, so every benchmark times a fixed
chronological *slice* of each split instead of a full epoch.  Relative
comparisons (who wins, by what factor) are preserved because every
framework setting processes the identical slice with identical negatives.
"""

from __future__ import annotations

import gc
import time
from typing import Dict, Optional, Tuple

from repro.bench.experiments import Experiment, ExperimentConfig
from repro.bench.trainer import evaluate, train_epoch, warm_replay

#: Edges timed per training measurement (standard benchmarks).
TRAIN_SLICE = 4000
#: Edges timed per inference measurement.
TEST_SLICE = 2500
#: Edges replayed to warm up state before timing inference.
WARM_SLICE = 3000

STANDARD_DATASETS = ("wiki", "mooc", "reddit", "lastfm")
LARGE_DATASETS = ("wikitalk", "gdelt")
MODEL_ORDER = ("jodie", "apan", "tgat", "tgn")
FRAMEWORK_ORDER = ("tgl", "tglite", "tglite+opt")


def make_config(dataset: str, model: str, framework: str, placement: str, **overrides) -> ExperimentConfig:
    """The shared hyperparameter setting for all benchmarks (§5.1 scaled).

    Paper: batch 600, 2 layers, 10 recent neighbors, mailbox 10 for APAN.
    Scaled: batch 300 (edge counts are ~50x smaller), dims 32 (from 100).
    """
    defaults = dict(
        batch_size=300,
        num_layers=2,
        num_nbrs=10,
        num_heads=2,
        dim_time=32,
        dim_embed=32,
        dim_mem=32,
        mailbox_slots=10,
        sampling="recent",
        epochs=1,
    )
    defaults.update(overrides)
    return ExperimentConfig(dataset=dataset, model=model, framework=framework,
                            placement=placement, **defaults)


def skip_tglite_opt_for_jodie(model: str, framework: str) -> bool:
    """The paper skips TGLite+opt for JODIE (no further operators apply)."""
    return model == "jodie" and framework == "tglite+opt"


def measure_training(cfg: ExperimentConfig, slice_edges: int = TRAIN_SLICE) -> Dict[str, float]:
    """Train one timed slice; returns seconds, loss, and validation AP."""
    gc.collect()  # keep generational GC pauses out of the timed region
    exp = Experiment(cfg)
    try:
        stop = min(exp.train_end, slice_edges)
        seconds, loss = train_epoch(
            exp.model, exp.g, exp.optimizer, exp.neg_sampler, cfg.batch_size, stop=stop
        )
        return {"seconds": seconds, "loss": loss}
    finally:
        exp.close()


def measure_training_with_ap(cfg: ExperimentConfig, epochs: int = 2,
                             slice_edges: int = TRAIN_SLICE,
                             eval_edges: int = TEST_SLICE) -> Dict[str, float]:
    """Multi-epoch training, evaluating the validation slice each epoch."""
    gc.collect()
    exp = Experiment(cfg)
    try:
        stop = min(exp.train_end, slice_edges)
        # Evaluate on the edges immediately following the trained slice so
        # memory-based models see a contiguous stream (sliced equivalent of
        # the paper's train/validation protocol).
        val_stop = min(exp.val_end, stop + eval_edges)
        best_ap, total_seconds = 0.0, 0.0
        for _ in range(epochs):
            exp.model.reset_state()
            seconds, _ = train_epoch(
                exp.model, exp.g, exp.optimizer, exp.neg_sampler, cfg.batch_size, stop=stop
            )
            total_seconds += seconds
            _, ap = evaluate(exp.model, exp.g, exp.neg_sampler, cfg.batch_size,
                             start=stop, stop=val_stop)
            best_ap = max(best_ap, ap)
        return {"seconds": total_seconds / epochs, "ap": best_ap}
    finally:
        exp.close()


def measure_inference(cfg: ExperimentConfig, train_edges: int = TRAIN_SLICE,
                      test_edges: int = TEST_SLICE,
                      warm_edges: int = WARM_SLICE) -> Dict[str, float]:
    """Briefly train, warm state, then time test-slice inference."""
    gc.collect()
    exp = Experiment(cfg)
    try:
        stop = min(exp.train_end, train_edges)
        if stop > 0:
            train_epoch(exp.model, exp.g, exp.optimizer, exp.neg_sampler, cfg.batch_size, stop=stop)
        exp.model.reset_state()
        warm_start = max(0, exp.val_end - min(warm_edges, exp.val_end))
        exp.model.eval()
        from repro.tensor import no_grad
        from repro.core import iter_batches

        exp.neg_sampler.reset()
        with no_grad():
            for batch in iter_batches(exp.g, cfg.batch_size, start=warm_start, stop=exp.val_end):
                batch.neg_nodes = exp.neg_sampler.sample(len(batch))
                exp.model(batch)
        test_stop = min(exp.test_end, exp.val_end + test_edges)
        seconds, ap = evaluate(exp.model, exp.g, exp.neg_sampler, cfg.batch_size,
                               start=exp.val_end, stop=test_stop)
        return {"seconds": seconds, "ap": ap}
    finally:
        exp.close()


def speedup(base_seconds: float, other_seconds: float) -> str:
    if other_seconds <= 0:
        return "-"
    return f"{base_seconds / other_seconds:.2f}x"
