"""Sharded-cluster serving: throughput scaling and time-to-recover.

Replays one synthetic event stream through `repro.cluster.ServeCluster`
at 1/2/4/8/16 shards on the shared simulated clock and reports, per
shard count: achieved events/sec, the speedup over the single-shard
baseline, the p50/p99 response latency, and — with a shard
deterministically killed mid-stream — the measured failover
time-to-recover plus the count of deferred applies redelivered after the
WAL takeover.  The acceptance bar is the scaling target: >= 3x
throughput at 4 shards over 1.

Written to ``benchmarks/results/cluster_scaling.txt``.
"""

import numpy as np

from repro.cluster import ClusterConfig, ServeCluster
from repro.core import TContext, TGraph, TSampler
from repro.resilience import FaultInjector
from repro.serve import build_stream, replay, split_batches

from conftest import report_table

NUM_NODES = 500
NUM_EVENTS = 6000
DIM = 16
BATCH = 50
LOAD = 16.0
SHARDS = (1, 2, 4, 8, 16)


def run_at_shards(stream, num_shards, kill=False):
    g = TGraph(stream.src, stream.dst, stream.ts, num_nodes=NUM_NODES)
    ctx = TContext(g)
    injector = None
    if kill:
        # deterministically kill shard 0 one third into the replay
        n_batches = -(-NUM_EVENTS // BATCH)
        injector = FaultInjector(seed=5, shard_crashes={(0, n_batches // 3, 0)})
    cluster = ServeCluster(
        g, ctx, TSampler(10, seed=3), DIM,
        config=ClusterConfig(num_shards=num_shards),
        deadline=1.0, max_queue=1 << 30,
        injector=injector, stream=stream,
    )
    with cluster:
        start = cluster.clock.now()
        if injector is not None:
            with injector:
                results = replay(cluster, split_batches(stream, BATCH),
                                 load=LOAD)
        else:
            results = replay(cluster, split_batches(stream, BATCH), load=LOAD)
        elapsed = cluster.clock.now() - start
        stats = cluster.stats()
    lat = ctx.stats().latency
    return results, stats, elapsed, lat


def test_cluster_scaling():
    stream = build_stream(NUM_NODES, NUM_EVENTS, payload_dim=DIM, seed=31)
    rows = []
    throughput = {}

    for shards in SHARDS:
        results, stats, elapsed, lat = run_at_shards(stream, shards)
        assert all(r.status == "ok" for r in results)
        eps = NUM_EVENTS / elapsed if elapsed > 0 else float("inf")
        throughput[shards] = eps

        _, kstats, _, _ = run_at_shards(stream, shards, kill=shards > 1)
        if shards > 1:
            assert kstats["cluster:failovers"] >= 1
            assert kstats["cluster:recoveries"] >= 1
            assert kstats["cluster:pending_applies"] == 0
            ttr = f"{kstats['cluster:mean_time_to_recover'] * 1e3:.2f}"
            redelivered = str(kstats["cluster:redelivered"])
        else:
            ttr, redelivered = "-", "-"

        rows.append([
            str(shards),
            f"{eps:,.0f}",
            f"{eps / throughput[1]:.2f}x",
            f"{lat.p50 * 1e3:.2f}" if lat else "-",
            f"{lat.p99 * 1e3:.2f}" if lat else "-",
            ttr,
            redelivered,
        ])

    report_table(
        f"Cluster scaling: {NUM_EVENTS} events, {BATCH}/request, "
        f"{LOAD:g}x load, shard 0 killed mid-stream for recovery runs",
        ["shards", "events/sec", "speedup", "p50 (ms)", "p99 (ms)",
         "recover (ms)", "redelivered"],
        rows,
        filename="cluster_scaling.txt",
    )

    # the scaling target: >= 3x throughput at 4 shards over 1
    assert throughput[4] >= 3.0 * throughput[1]
    # more shards never lose throughput on this fan-out-bound workload
    assert throughput[16] >= throughput[4]
