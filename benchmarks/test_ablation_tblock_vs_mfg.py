"""§5.4 ablation: TBlock vs MFG.

The paper swaps TBlocks for MFG-style standalone blocks inside TGLite and
measures a ~3-9% training slowdown plus ~200 lines of extra user-level
code (re-implemented multi-hop plumbing, eager all-on-device data).  Here
the MFG-style path is the TGL TGAT pipeline running the *same* math with
standalone blocks, eager loading, and manual inter-layer bookkeeping; the
TBlock path is plain TGLite (no optimization operators other than preload,
isolating the abstraction difference).
"""

import pytest

from repro.models import OptFlags

from conftest import report_table
from helpers import make_config, measure_training, speedup


def test_ablation_tblock_vs_mfg(benchmark):
    def run():
        results = {}
        for placement in ("gpu", "cpu2gpu"):
            tb = make_config("wiki", "tgat", "tglite", placement,
                             opt_flags=OptFlags.preload_only())
            results[(placement, "tblock")] = measure_training(tb, slice_edges=2200)["seconds"]
            mfg = make_config("wiki", "tgat", "tgl", placement)
            results[(placement, "mfg")] = measure_training(mfg, slice_edges=2200)["seconds"]
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for placement, label in (("gpu", "all-on-GPU"), ("cpu2gpu", "CPU-to-GPU")):
        tb = results[(placement, "tblock")]
        mfg = results[(placement, "mfg")]
        rows.append([
            label, f"{tb:.2f}", f"{mfg:.2f}",
            f"{(mfg / tb - 1) * 100:.1f}%",
        ])
    report_table(
        "Ablation (5.4): TBlock vs MFG-style blocks, TGAT/wiki training",
        ["case", "TBlock (s)", "MFG-style (s)", "MFG slowdown"],
        rows,
        filename="ablation_tblock_vs_mfg.txt",
    )

    # The MFG-style pipeline must not be faster than the TBlock pipeline
    # in the data-movement-bound case (eager loads, no pinning).
    assert results[("cpu2gpu", "mfg")] > results[("cpu2gpu", "tblock")]
