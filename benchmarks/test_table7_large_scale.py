"""Table 7: large-scale benchmarks (WikiTalk/GDELT analogs), CPU-to-GPU.

Paper shape: TGLite+opt wins on every model (at least ~1.15x), with the
largest amplification for TGAT/TGN on GDELT (heaviest repetition, largest
features); and under a V100-sized device-memory cap, TGL runs out of
simulated GPU memory for TGAT/TGN on GDELT while TGLite+opt completes.

The dataset grid is split across two tests so each stays within a modest
wall-clock budget; the OOM phenomenon is its own test.
"""

import pytest

from repro.models import OptFlags
from repro.tensor import DeviceOutOfMemoryError

from conftest import report_table
from helpers import make_config, measure_inference, measure_training, speedup

MODELS = ("jodie", "apan", "tgat", "tgn")
TRAIN_SLICE = 2000
TEST_SLICE = 1000
WARM_SLICE = 1000

#: simulated "V100" capacity for the OOM demonstration; sits between the
#: measured TGLite+opt peak (~0.8 GB) and the TGL peak (~3.3 GB) for the
#: GDELT TGAT workload at this scale.
V100_CAPACITY = 1536 * 1024 * 1024

_RESULTS = {}


def _cfg(dataset, model, framework, **kw):
    flags = kw.pop("opt_flags", None)
    if framework != "tgl" and model == "jodie" and flags is None:
        flags = OptFlags.preload_only()  # paper: no further ops for JODIE
    return make_config(
        dataset, model, framework, "cpu2gpu",
        batch_size=1000,  # paper uses 4000 at full (unscaled) size
        opt_flags=flags if framework != "tgl" else None,
        **kw,
    )


def _run_dataset(dataset):
    results = {}
    for model in MODELS:
        for framework in ("tgl", "tglite+opt"):
            cfg = _cfg(dataset, model, framework)
            train_s = measure_training(cfg, slice_edges=TRAIN_SLICE)["seconds"]
            cfg = _cfg(dataset, model, framework)
            test_s = measure_inference(
                cfg, train_edges=0, test_edges=TEST_SLICE, warm_edges=WARM_SLICE
            )["seconds"]
            results[(model, framework)] = (train_s, test_s)
    return results


def _report_rows(dataset, results):
    rows = []
    for model in MODELS:
        tgl_tr, tgl_te = results[(model, "tgl")]
        opt_tr, opt_te = results[(model, "tglite+opt")]
        rows.append([
            dataset, model, f"{tgl_tr:.2f}", f"{tgl_te:.2f}",
            f"{opt_tr:.2f} ({speedup(tgl_tr, opt_tr)})",
            f"{opt_te:.2f} ({speedup(tgl_te, opt_te)})",
        ])
    return rows


@pytest.mark.parametrize("dataset", ["wikitalk", "gdelt"])
def test_table7_large_scale_times(benchmark, dataset):
    results = benchmark.pedantic(lambda: _run_dataset(dataset), rounds=1, iterations=1)
    _RESULTS[dataset] = results
    rows = []
    for name in ("wikitalk", "gdelt"):
        if name in _RESULTS:
            rows.extend(_report_rows(name, _RESULTS[name]))
    report_table(
        "Table 7: large-scale train/test times (seconds), CPU-to-GPU",
        ["dataset", "model", "TGL train", "TGL test", "TGLite+opt train", "TGLite+opt test"],
        rows,
        filename="table7_large_scale.txt",
    )
    # Shape: TGLite+opt wins for the attention-sampling models at scale.
    for model in ("tgat", "tgn"):
        tgl_tr, _ = results[(model, "tgl")]
        opt_tr, _ = results[(model, "tglite+opt")]
        assert opt_tr < tgl_tr


def test_table7_oom_demonstration(benchmark):
    """TGL exhausts the capped device on GDELT/TGAT; TGLite+opt finishes."""

    def run():
        import repro.core as tg
        from repro import nn, tensor as T
        from repro.bench.experiments import Experiment

        outcome = {}
        for framework in ("tgl", "tglite+opt"):
            # The capacity was calibrated on a mid-stream batch (long
            # histories -> peak subgraph sizes): TGL ~3.3 GB, +opt ~0.8 GB.
            cfg = make_config(
                "gdelt", "tgat", framework, "cpu2gpu",
                batch_size=2000, num_nbrs=8, dim_time=16, dim_embed=16,
                device_capacity=V100_CAPACITY,
            )
            exp = Experiment(cfg)
            try:
                batch = tg.TBatch(exp.g, 20000, 22000)
                batch.neg_nodes = exp.neg_sampler.sample(2000)
                pos, _ = exp.model(batch)
                loss = nn.bce_with_logits(pos, T.ones(len(batch), device=pos.device))
                loss.backward()
                outcome[framework] = "ok"
            except DeviceOutOfMemoryError:
                outcome[framework] = "OOM"
            finally:
                exp.close()
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    report_table(
        "Table 7 (OOM): GDELT/TGAT under a V100-sized simulated capacity",
        ["framework", "outcome"],
        [[k, v] for k, v in outcome.items()],
        filename="table7_oom.txt",
    )
    assert outcome["tgl"] == "OOM"
    assert outcome["tglite+opt"] == "ok"
