"""Durability cost of the write-ahead log on the serving commit path.

WAL-then-apply makes every committed batch durable *before* it touches
memory/mailbox, so the price of crash consistency is paid on the commit
hot path.  This benchmark measures that price directly: the same
committed batch stream through ``StateCommitter`` with no store, and
with a :class:`DurableStateStore` under each fsync policy — plus the
other half of the durability trade, recovery time as a function of log
length (with and without a snapshot anchoring the replay).

The default policy is ``batch`` (group commit): per-commit overhead must
stay within 15% of the bare commit path, which is what makes durable
serving on by default a reasonable choice.
"""

import shutil
import tempfile
import time

import numpy as np
import pytest

from conftest import report_table
from repro.core import Mailbox, Memory
from repro.durable import DurableStateStore
from repro.serve import StateCommitter, build_stream, recover_serve_state, split_batches

NUM_NODES = 2000
DIM = 16
BATCH_EVENTS = 50
N_COMMITS = 400
REPEATS = 3


def _batches(n_commits):
    stream = build_stream(NUM_NODES, n_commits * BATCH_EVENTS,
                          payload_dim=DIM, seed=11)
    return split_batches(stream, BATCH_EVENTS)


def _one_pass(batches, store_factory):
    """Wall seconds for a single commit pass over *batches*."""
    memory = Memory(NUM_NODES, DIM)
    mailbox = Mailbox(NUM_NODES, DIM)
    store, cleanup = store_factory()
    committer = StateCommitter(memory, mailbox=mailbox, store=store)
    t0 = time.perf_counter()
    for batch in batches:
        committer.commit(batch)
    if store is not None:
        store.sync()
    elapsed = time.perf_counter() - t0
    if store is not None:
        store.close()
    cleanup()
    return elapsed


def _commit_seconds(batches, factories):
    """Best-of-REPEATS seconds per config, measured round-robin.

    Interleaving the configs (rather than timing each one's repeats
    back to back) spreads machine-load drift evenly across them; the
    first round is a warmup and is discarded.
    """
    best = {name: float("inf") for name in factories}
    for rep in range(REPEATS + 1):
        for name, factory in factories.items():
            elapsed = _one_pass(batches, factory)
            if rep > 0:
                best[name] = min(best[name], elapsed)
    return best


def _none_factory():
    return None, lambda: None


def _store_factory(fsync):
    def make():
        d = tempfile.mkdtemp(prefix="walbench-")
        return (DurableStateStore(d, fsync=fsync),
                lambda: shutil.rmtree(d, ignore_errors=True))
    return make


def _recovery_seconds(n_commits, snapshot):
    d = tempfile.mkdtemp(prefix="walrec-")
    try:
        memory = Memory(NUM_NODES, DIM)
        mailbox = Mailbox(NUM_NODES, DIM)
        store = DurableStateStore(d, fsync="never")
        committer = StateCommitter(
            memory, mailbox=mailbox, store=store,
            snapshot_every=(3 * n_commits) // 4 if snapshot else None,
        )
        for batch in _batches(n_commits):
            committer.commit(batch)
        store.close()

        mem2 = Memory(NUM_NODES, DIM)
        mail2 = Mailbox(NUM_NODES, DIM)
        store2 = DurableStateStore(d, fsync="never")
        t0 = time.perf_counter()
        info = recover_serve_state(store2, mem2, mail2)
        elapsed = time.perf_counter() - t0
        store2.close()
        np.testing.assert_array_equal(mem2.data.data, memory.data.data)
        return elapsed, info["batches_replayed"]
    finally:
        shutil.rmtree(d, ignore_errors=True)


def test_wal_commit_overhead_and_recovery():
    batches = _batches(N_COMMITS)
    timings = _commit_seconds(batches, {
        "(no WAL)": _none_factory,
        "never": _store_factory("never"),
        "batch": _store_factory("batch"),
        "always": _store_factory("always"),
    })
    base = timings.pop("(no WAL)")
    rows = [["(no WAL)", f"{base / N_COMMITS * 1e6:.1f}", "-", "-"]]
    overheads = {}
    for fsync, secs in timings.items():
        overheads[fsync] = (secs - base) / base * 100.0
        rows.append([
            fsync,
            f"{secs / N_COMMITS * 1e6:.1f}",
            f"{(secs - base) / N_COMMITS * 1e6:+.1f}",
            f"{overheads[fsync]:+.1f}%",
        ])

    rec_rows = []
    for n_commits in (100, 400, 1600):
        plain, replayed = _recovery_seconds(n_commits, snapshot=False)
        snapped, snap_replayed = _recovery_seconds(n_commits, snapshot=True)
        rec_rows.append([
            n_commits, f"{plain * 1e3:.1f}", replayed,
            f"{snapped * 1e3:.1f}", snap_replayed,
        ])

    report_table(
        "WAL overhead: serve-path commit cost per fsync policy "
        f"({BATCH_EVENTS} events/commit, {N_COMMITS} commits)",
        ["fsync", "us/commit", "delta us", "overhead"],
        rows,
        filename="wal_overhead.txt",
    )
    report_table(
        "WAL recovery: time vs log length (snapshot anchors the replay)",
        ["commits", "replay ms", "batches replayed", "with snapshot ms",
         "replayed after snapshot"],
        rec_rows,
        filename="wal_recovery.txt",
    )

    # The acceptance bar: durable serving at the default policy costs
    # no more than 15% per commit.
    assert overheads["batch"] <= 15.0, (
        f"WAL 'batch' fsync policy costs {overheads['batch']:.1f}% per "
        "commit (budget: 15%)"
    )
