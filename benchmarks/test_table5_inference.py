"""Table 5: test-set inference times and AP, all-on-GPU case.

Paper shape: TGLite roughly on par with TGL (0.85-1.61x), TGLite+opt
1.09-1.54x faster, with cache() giving TGAT a larger edge than TGN (whose
memory updates invalidate cached embeddings, so it skips cache()).
"""

import pytest

from conftest import report_table
from helpers import (
    FRAMEWORK_ORDER,
    MODEL_ORDER,
    STANDARD_DATASETS,
    make_config,
    measure_inference,
    skip_tglite_opt_for_jodie,
    speedup,
)

DATASETS = STANDARD_DATASETS


def test_table5_inference_all_on_gpu(benchmark):
    def run_grid():
        results = {}
        for dataset in DATASETS:
            for model in MODEL_ORDER:
                for framework in FRAMEWORK_ORDER:
                    if skip_tglite_opt_for_jodie(model, framework):
                        continue
                    cfg = make_config(dataset, model, framework, "gpu")
                    results[(dataset, model, framework)] = measure_inference(cfg)
        return results

    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    rows = []
    for dataset in DATASETS:
        for model in MODEL_ORDER:
            tgl = results[(dataset, model, "tgl")]
            lite = results[(dataset, model, "tglite")]
            opt = results.get((dataset, model, "tglite+opt"))
            rows.append([
                dataset, model,
                f"{tgl['seconds']:.2f}", f"{100 * tgl['ap']:.2f}",
                f"{lite['seconds']:.2f} ({speedup(tgl['seconds'], lite['seconds'])})",
                f"{100 * lite['ap']:.2f}",
                f"{opt['seconds']:.2f} ({speedup(tgl['seconds'], opt['seconds'])})" if opt else "-",
                f"{100 * opt['ap']:.2f}" if opt else "-",
            ])
    report_table(
        "Table 5: test inference time (s) and AP, all-on-GPU",
        ["dataset", "model", "TGL", "AP", "TGLite", "AP", "TGLite+opt", "AP"],
        rows,
        filename="table5_inference.txt",
    )

    # Shape assertions: the fully optimized setting must beat TGL for the
    # attention-sampling models, where dedup/cache/time-precompute apply.
    for dataset in DATASETS:
        for model in ("tgat", "tgn"):
            assert (
                results[(dataset, model, "tglite+opt")]["seconds"]
                < results[(dataset, model, "tgl")]["seconds"]
            )
