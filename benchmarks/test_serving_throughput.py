"""Serving-runtime throughput under increasing offered load.

Replays the same synthetic event stream through `repro.serve.ServeRuntime`
at 1x, 4x, and 16x the full-quality service rate and reports, per load
level: achieved events/sec on the simulated clock, the shed ratio, the
degradation-rung mix, and p50/p99 response latency.  The acceptance bar
is *availability*: at 16x load with tight deadlines, every offered
request must still be answered (served or explicitly shed — never hung),
the ingestion ledger must balance, and state must validate cleanly.

Written to ``benchmarks/results/serving_throughput.txt``.
"""

import numpy as np

from repro.core import Mailbox, Memory, TContext, TGraph, TSampler
from repro.serve import ServeRuntime, build_stream, replay, split_batches

from conftest import report_table

NUM_NODES = 500
NUM_EVENTS = 8000
DIM = 16
BATCH = 50
DEADLINE = 8e-3
MAX_QUEUE = 16
LOADS = (1.0, 4.0, 16.0)


def run_at_load(stream, load):
    g = TGraph(stream.src, stream.dst, stream.ts, num_nodes=NUM_NODES)
    ctx = TContext(g)
    memory = Memory(NUM_NODES, DIM)
    mailbox = Mailbox(NUM_NODES, DIM)
    runtime = ServeRuntime(
        g, ctx, memory, TSampler(10, seed=3), mailbox=mailbox,
        deadline=DEADLINE, max_queue=MAX_QUEUE,
    )
    start = runtime.clock.now()
    results = replay(runtime, split_batches(stream, BATCH), load=load)
    elapsed = runtime.clock.now() - start
    return runtime, results, elapsed


def test_serving_throughput():
    stream = build_stream(NUM_NODES, NUM_EVENTS, payload_dim=DIM, seed=21)
    offered_requests = -(-NUM_EVENTS // BATCH)
    rows = []
    by_load = {}

    for load in LOADS:
        runtime, results, elapsed = run_at_load(stream, load)
        adm = runtime.admission.stats
        applied = runtime.committer.stats.events_applied
        events_per_sec = applied / elapsed if elapsed > 0 else float("inf")
        shed_ratio = adm.shed_total / adm.offered
        lat = runtime.ctx.stats().latency
        rung_mix = "/".join(
            f"{rung}:{count}" for rung, count in
            sorted(runtime.ladder.decisions.items())
        )
        rows.append([
            f"{load:g}x",
            f"{applied}",
            f"{events_per_sec:,.0f}",
            f"{shed_ratio:.2f}",
            rung_mix,
            f"{lat.p50 * 1e3:.2f}" if lat else "-",
            f"{lat.p99 * 1e3:.2f}" if lat else "-",
        ])
        by_load[load] = (runtime, results)

    report_table(
        f"Serving throughput: {NUM_EVENTS} events, {BATCH}/request, "
        f"{DEADLINE * 1e3:g}ms deadlines, queue={MAX_QUEUE}",
        ["load", "applied", "events/sec", "shed ratio", "rung mix",
         "p50 (ms)", "p99 (ms)"],
        rows,
        filename="serving_throughput.txt",
    )

    # -- acceptance: availability and consistency at every load level ------
    for load, (runtime, results) in by_load.items():
        assert len(results) == offered_requests, (
            f"{load}x: {len(results)} responses for {offered_requests} requests"
        )
        st = runtime.ingest.stats
        assert st.pushed == st.accepted + st.duplicates + st.quarantined_total
        assert runtime.committer.stats.events_applied == st.released
        assert not runtime.memory.validate()
        assert not runtime.mailbox.validate()
        lat = runtime.ctx.stats().latency
        # deadline discipline: p99 within budget plus one full-rung service
        assert lat.p99 <= DEADLINE + runtime.ladder.cost_model.estimate(
            "full", BATCH)

    # 1x keeps full quality; 16x must shed and/or degrade, not collapse.
    rt1 = by_load[1.0][0]
    assert set(rt1.ladder.decisions) == {"full"}
    assert rt1.admission.stats.shed_total == 0
    rt16 = by_load[16.0][0]
    assert rt16.admission.stats.shed_total > 0 or rt16.ladder.degraded_serves > 0
