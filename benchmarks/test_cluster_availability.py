"""Read availability through the kill→promote window, by replication factor.

Replays one synthetic event stream through `repro.cluster.ServeCluster`
with a shard's primary deterministically killed mid-stream, at
replication factor 1 / 2 / 3, and reports per factor: the fraction of
requests answered with every row authoritative (no zero-filled state —
the *read availability* through the failover window), the number of
zero-filled endpoint rows, promotions and follower reads, the p50/p99
response latency, and the measured time-to-recover of the killed member.

Factor 1 is the recorded baseline: its only copy of the shard dies, so
requests touching it are served from zeros until the WAL respawn and
availability drops below 1.  At factor >= 2 reads fail over to a
follower immediately and the promotion installs a new primary, so the
acceptance bar is availability >= 99% at factor 3 (in practice 100%:
no read is ever zero-filled while a member survives).

Written to ``benchmarks/results/cluster_availability.txt``.
"""

import numpy as np

from repro.cluster import ClusterConfig, ServeCluster
from repro.core import TContext, TGraph, TSampler
from repro.resilience import FaultInjector
from repro.serve import build_stream, replay, split_batches

from conftest import report_table

NUM_NODES = 500
NUM_EVENTS = 6000
DIM = 16
BATCH = 50
LOAD = 16.0
SHARDS = 4
FACTORS = (1, 2, 3)
KILLED_SHARD = 1


def run_at_factor(stream, factor):
    g = TGraph(stream.src, stream.dst, stream.ts, num_nodes=NUM_NODES)
    ctx = TContext(g)
    n_batches = -(-NUM_EVENTS // BATCH)
    # kill shard 1's primary (member 0 keeps the legacy extra == shard id)
    injector = FaultInjector(
        seed=5, shard_crashes={(0, n_batches // 3, KILLED_SHARD)}
    )
    cluster = ServeCluster(
        g, ctx, TSampler(10, seed=3), DIM,
        config=ClusterConfig(num_shards=SHARDS, replication_factor=factor),
        deadline=1.0, max_queue=1 << 30,
        injector=injector, stream=stream,
    )
    with cluster, injector:
        results = replay(cluster, split_batches(stream, BATCH), load=LOAD)
        stats = cluster.stats()
    lat = ctx.stats().latency
    served_ok = [r for r in results if r.status == "ok"]
    fully_valid = sum(
        1 for r in served_ok if r.valid is None or bool(r.valid.all())
    )
    availability = fully_valid / max(1, len(results))
    return results, stats, lat, availability


def test_cluster_availability():
    stream = build_stream(NUM_NODES, NUM_EVENTS, payload_dim=DIM, seed=31)
    rows = []
    availability = {}

    for factor in FACTORS:
        results, stats, lat, avail = run_at_factor(stream, factor)
        availability[factor] = avail
        assert all(r.status == "ok" for r in results)
        assert stats["cluster:injected_crashes"] >= 1
        assert stats["cluster:pending_applies"] == 0
        if factor >= 2:
            # the follower bridged the window: nothing ever zero-filled
            assert stats["cluster:promotions"] >= 1
            assert stats["cluster:zero_rows"] == 0
        else:
            # the baseline really has an unavailability window to beat
            assert stats["cluster:zero_rows"] > 0
        rows.append([
            factor,
            f"{avail:.4f}",
            stats["cluster:zero_rows"],
            stats["cluster:promotions"],
            stats["cluster:follower_reads"],
            f"{lat.p50 * 1e3:.2f}",
            f"{lat.p99 * 1e3:.2f}",
            f"{stats['cluster:mean_time_to_recover'] * 1e3:.2f}",
        ])

    # the acceptance bar: factor 3 serves >= 99% fully-valid reads
    # through the same kill the factor-1 baseline degrades under
    assert availability[3] >= 0.99
    assert availability[3] > availability[1]
    assert availability[2] >= 0.99

    report_table(
        "Cluster availability: read availability through a primary kill "
        f"({SHARDS} shards, shard {KILLED_SHARD} killed 1/3 in, "
        f"{LOAD:g}x load)",
        ["factor", "availability", "zero_rows", "promotions",
         "follower_reads", "p50_ms", "p99_ms", "ttr_ms"],
        rows,
        filename="cluster_availability.txt",
    )
