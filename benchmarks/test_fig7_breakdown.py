"""Figure 7: per-operation breakdown of a TGAT training epoch (LastFM).

Paper shape: TGL has no separate time-delta step (fused into sampling);
attention dominates the TGLite settings; TGLite+opt pays a little extra
for the precomputed-time operators but shrinks everything downstream of
dedup (sampling, data loading, attention, backward).
"""

import pytest

from repro.bench.breakdown import run_tgat_breakdown

from conftest import report_table
from helpers import make_config

STAGES = [
    "batch_prep", "sample", "data_load", "time_zero", "time_nbrs",
    "attention", "pred_loss", "backward", "opt_step",
]


def test_fig7_tgat_lastfm_breakdown(benchmark):
    def run_grid():
        results = {}
        for framework in ("tgl", "tglite", "tglite+opt"):
            cfg = make_config("lastfm", "tgat", framework, "gpu")
            results[framework] = run_tgat_breakdown(cfg, slice_edges=4000)
        return results

    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    rows = []
    for stage in STAGES:
        rows.append([
            stage,
            *(f"{results[fw].get(stage, 0.0):.3f}" for fw in ("tgl", "tglite", "tglite+opt")),
        ])
    rows.append([
        "total",
        *(
            f"{sum(v for k, v in results[fw].items() if not k.startswith('kernel:')):.3f}"
            for fw in ("tgl", "tglite", "tglite+opt")
        ),
    ])
    # Kernel-level timings are nested inside the coarse stages above, so
    # they are listed after the total rather than added to it.
    kernel_stages = sorted({k for fw in results for k in results[fw] if k.startswith("kernel:")})
    for stage in kernel_stages:
        rows.append([
            stage,
            *(f"{results[fw].get(stage, 0.0):.3f}" for fw in ("tgl", "tglite", "tglite+opt")),
        ])
    report_table(
        "Figure 7: TGAT epoch-slice breakdown (seconds), LastFM, all-on-GPU",
        ["stage", "TGL", "TGLite", "TGLite+opt"],
        rows,
        filename="fig7_breakdown.txt",
    )

    # Shape assertions reproducing §5.2.3's observations.
    # 1. TGL has no separate neighbor-delta time step (fused into sample).
    assert "time_nbrs" not in results["tgl"]
    # 2. TGLite pays a separate time-encoding step.
    assert results["tglite"]["time_nbrs"] > 0
    # 3. Attention is a dominant stage for plain TGLite (it outweighs the
    #    sampling and data-loading stages).
    assert results["tglite"]["attention"] > results["tglite"]["sample"]
    assert results["tglite"]["attention"] > results["tglite"]["data_load"]
    # 4. dedup shrinks the attention stage.
    assert results["tglite+opt"]["attention"] < results["tglite"]["attention"]
