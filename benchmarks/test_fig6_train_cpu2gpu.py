"""Figure 6: training time per epoch-slice, CPU-to-GPU case.

Paper shape: data movement dominates — TGL roughly 3-4x its all-on-GPU
time; TGLite beats TGL via pinned-memory preload (1.29-1.62x in the paper);
TGLite+opt wins the most (1.41-3.43x).
"""

import pytest

from conftest import report_table
from helpers import (
    FRAMEWORK_ORDER,
    MODEL_ORDER,
    STANDARD_DATASETS,
    make_config,
    measure_training,
    skip_tglite_opt_for_jodie,
    speedup,
)

#: smaller slice than Figure 5: the simulated transfer cost makes each
#: batch substantially more expensive, as in the real experiment.
SLICE = 2400


def test_fig6_training_cpu_to_gpu(benchmark):
    def run_grid():
        results = {}
        for dataset in STANDARD_DATASETS:
            for model in MODEL_ORDER:
                for framework in FRAMEWORK_ORDER:
                    if skip_tglite_opt_for_jodie(model, framework):
                        continue
                    cfg = make_config(dataset, model, framework, "cpu2gpu")
                    results[(dataset, model, framework)] = measure_training(
                        cfg, slice_edges=SLICE
                    )["seconds"]
        return results

    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    rows = []
    for dataset in STANDARD_DATASETS:
        for model in MODEL_ORDER:
            tgl = results[(dataset, model, "tgl")]
            lite = results[(dataset, model, "tglite")]
            opt = results.get((dataset, model, "tglite+opt"))
            rows.append([
                dataset, model, f"{tgl:.2f}",
                f"{lite:.2f} ({speedup(tgl, lite)})",
                f"{opt:.2f} ({speedup(tgl, opt)})" if opt is not None else "= tglite",
            ])
    report_table(
        "Figure 6: training time per epoch-slice (seconds), CPU-to-GPU",
        ["dataset", "model", "TGL", "TGLite", "TGLite+opt"],
        rows,
        filename="fig6_train_cpu2gpu.txt",
    )

    # Shape assertions: pinned preload alone must already beat TGL when
    # transfers dominate, for every model and dataset.
    for dataset in STANDARD_DATASETS:
        for model in MODEL_ORDER:
            assert results[(dataset, model, "tglite")] < results[(dataset, model, "tgl")], (
                f"TGLite (preload) should beat TGL in CPU-to-GPU for {model}/{dataset}"
            )
