"""Table 6: single-optimization ablation, TGAT on LastFM inference.

Paper: enabling one optimization at a time over plain TGLite, reporting
inference speedup vs TGL for the CPU-to-GPU and all-on-GPU cases.  Shape:
each optimization individually improves on plain TGLite, with dedup and
cache contributing the most.
"""

import pytest

from repro.models import OptFlags

from conftest import report_table
from helpers import make_config, measure_inference, speedup

SETTINGS = [
    ("TGLite", OptFlags.preload_only()),
    ("+dedup", OptFlags(preload=True, dedup=True)),
    ("+cache", OptFlags(preload=True, cache=True)),
    ("+time", OptFlags(preload=True, time_precompute=True)),
]


def test_table6_single_optimization_ablation(benchmark):
    def run_grid():
        results = {}
        for placement in ("cpu2gpu", "gpu"):
            cfg = make_config("lastfm", "tgat", "tgl", placement)
            results[(placement, "TGL")] = measure_inference(cfg)["seconds"]
            for label, flags in SETTINGS:
                cfg = make_config("lastfm", "tgat", "tglite", placement, opt_flags=flags)
                results[(placement, label)] = measure_inference(cfg)["seconds"]
        return results

    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    rows = []
    for placement, title in (("cpu2gpu", "CPU-to-GPU"), ("gpu", "all-on-GPU")):
        tgl = results[(placement, "TGL")]
        rows.append([
            title,
            *(speedup(tgl, results[(placement, label)]) for label, _ in SETTINGS),
        ])
    report_table(
        "Table 6: inference speedup vs TGL (TGAT/LastFM), one optimization at a time",
        ["case", "TGLite", "+dedup", "+cache", "+time"],
        rows,
        filename="table6_opt_ablation.txt",
    )

    # Shape assertions: each optimization alone must improve over plain
    # TGLite in the transfer-bound case.
    for label in ("+dedup", "+cache"):
        assert results[("cpu2gpu", label)] < results[("cpu2gpu", "TGLite")]
