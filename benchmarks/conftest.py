"""Benchmark-suite plumbing: paper-style table reporting.

Each benchmark regenerates one table or figure from the paper's evaluation
(§5).  Cells are measured by the harness in ``helpers.py``; the assembled
rows are registered here and printed in the terminal summary (so they are
visible even though pytest captures stdout), as well as written under
``benchmarks/results/``.
"""

from __future__ import annotations

import os
from typing import List, Sequence

_TABLES: List[str] = []

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def format_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def report_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]], filename: str = None) -> str:
    """Register a finished table for terminal-summary printing + disk."""
    text = format_table(title, headers, rows)
    _TABLES.append(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    if filename is None:
        filename = title.split(":")[0].strip().lower().replace(" ", "_") + ".txt"
    with open(os.path.join(RESULTS_DIR, filename), "w") as fh:
        fh.write(text + "\n")
    return text


def pytest_terminal_summary(terminalreporter):
    if not _TABLES:
        return
    terminalreporter.write_sep("=", "reproduced tables & figures")
    for text in _TABLES:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
    _TABLES.clear()
