"""Table 3: benchmark dataset statistics (plus our scale factors)."""

from repro.data import available_datasets, get_dataset

from conftest import report_table


def test_table3_dataset_statistics(benchmark):
    def build():
        rows = []
        for name in available_datasets():
            stats = get_dataset(name).stats()
            rows.append([
                stats["dataset"], stats["|V|"], stats["|E|"], stats["d_v"],
                stats["d_e"], f"{stats['max(t)']:.1e}",
                stats["paper |V|"], stats["paper |E|"],
                stats["node scale"], stats["edge scale"],
            ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    report_table(
        "Table 3: benchmark datasets (synthetic analogs; paper-scale columns for reference)",
        ["dataset", "|V|", "|E|", "d_v", "d_e", "max(t)",
         "paper |V|", "paper |E|", "V scale", "E scale"],
        rows,
        filename="table3_datasets.txt",
    )
    assert len(rows) == 6
