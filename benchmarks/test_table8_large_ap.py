"""Table 8: large-scale AP scores — TGLite+opt matches TGL on accuracy."""

import pytest

from repro.models import OptFlags

from conftest import report_table
from helpers import make_config, measure_training_with_ap

MODELS = ("jodie", "apan", "tgat", "tgn")


def test_table8_large_scale_ap(benchmark):
    def run_grid():
        results = {}
        for dataset in ("wikitalk", "gdelt"):
            for model in MODELS:
                for framework in ("tgl", "tglite+opt"):
                    flags = None
                    if framework != "tgl" and model == "jodie":
                        flags = OptFlags.preload_only()
                    cfg = make_config(dataset, model, framework, "cpu2gpu",
                                      batch_size=1000, opt_flags=flags)
                    results[(dataset, model, framework)] = measure_training_with_ap(
                        cfg, epochs=1, slice_edges=2000, eval_edges=1000
                    )["ap"]
        return results

    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    rows = []
    for dataset in ("wikitalk", "gdelt"):
        for model in MODELS:
            rows.append([
                dataset, model,
                f"{100 * results[(dataset, model, 'tgl')]:.2f}",
                f"{100 * results[(dataset, model, 'tglite+opt')]:.2f}",
            ])
    report_table(
        "Table 8: large-scale training AP (1 epoch-slice), CPU-to-GPU",
        ["dataset", "model", "TGL", "TGLite+opt"],
        rows,
        filename="table8_large_ap.txt",
    )

    for (dataset, model, fw), ap in results.items():
        assert ap > 0.45, f"AP collapsed for {dataset}/{model}/{fw}"
