"""Accuracy under drift: frozen vs WAL-tailing continual vs oracle.

The closed loop (``repro.scenarios``) pretrains a link model on the
warmup prefix of a scenario stream, serves the rest through the durable
:class:`~repro.serve.ServeRuntime`, and — in continual mode — tails the
serving WAL with a prefix-consistent cursor, fine-tuning and hot-swapping
the model between requests.  Two curves are recorded:

* **accuracy under drift** — overall / post-shift / worst-window AP per
  mode across three scenarios, plus the share of the frozen→oracle AP
  gap that continual learning recovers;
* **staleness vs quality** — sweeping the staleness budget from 0 (swap
  on every committed batch) to ∞ (frozen) trades model freshness against
  fine-tune count, and quality must degrade monotonically-ish toward the
  frozen endpoint.

Everything is deterministic per seed, so the recorded tables are
reproducible bit-for-bit.
"""

import tempfile

import numpy as np

from conftest import report_table
from repro.bench.metrics import average_precision
from repro.scenarios import gap_recovered, make_stream, run_closed_loop

LOOP_SEED = 3
STREAM_KW = dict(num_events=2400, seed=11, noise_frac=0.45)

SCENARIOS = [
    ("drift/abrupt", "distribution_drift",
     {"mode": "abrupt", "drift_start": 0.5}),
    ("drift/gradual", "distribution_drift",
     {"mode": "gradual", "drift_start": 0.4, "drift_end": 0.7}),
    ("node_churn", "node_churn", {}),
]

#: budgets swept for the staleness-vs-quality curve (event-time units;
#: the drift streams span t_max = 10_000).
BUDGETS = [0.0, 500.0, 2000.0, 5000.0, float("inf")]


def _post_shift_ap(stream, scores):
    """AP over the stream's final phase(s) — after the behavior changed."""
    p = stream.phase.max()
    mask = (stream.phase >= p - 1) & np.isfinite(scores)
    return average_precision(stream.labels[mask], scores[mask])


def _run(stream, mode, **kw):
    return run_closed_loop(
        stream, mode=mode, seed=LOOP_SEED,
        workdir=tempfile.mkdtemp(prefix=f"drift-{mode}-"), **kw,
    )


def test_accuracy_under_drift_and_staleness_curves():
    rows = []
    drift_stream = None
    for label, name, knobs in SCENARIOS:
        stream = make_stream(name, knobs=knobs, **STREAM_KW)
        if label == "drift/abrupt":
            drift_stream = stream
        runs = {m: _run(stream, m) for m in ("frozen", "continual", "oracle")}
        post = {m: _post_shift_ap(stream, r["scores"]) for m, r in runs.items()}
        recovered = gap_recovered(post["frozen"], post["continual"],
                                  post["oracle"])
        for m in ("frozen", "continual", "oracle"):
            summary = runs[m]["summary"]
            rows.append([
                label, m,
                f"{summary['overall_ap']:.4f}",
                f"{post[m]:.4f}",
                f"{summary['min_window_ap']:.4f}",
                f"{recovered:.2f}" if m == "continual" else "-",
            ])
        # hot swaps never touch the commit path
        digests = {r["state_digest"] for r in runs.values()}
        assert len(digests) == 1, f"{label}: serve state diverged across modes"
        if label.startswith("drift/"):
            assert recovered >= 0.5, (
                f"{label}: continual recovered only {recovered:.2f} of the "
                f"frozen→oracle gap"
            )

    report_table(
        "scenario drift: accuracy under drift (frozen vs continual vs oracle, "
        f"{STREAM_KW['num_events']} events, noise {STREAM_KW['noise_frac']})",
        ["scenario", "mode", "overall AP", "post-shift AP", "min window AP",
         "gap recovered"],
        rows,
        filename="scenario_drift.txt",
    )

    # ---- staleness vs quality on the abrupt-drift stream ----
    sweep_rows = []
    overall = []
    for budget in BUDGETS:
        run = _run(drift_stream, "continual", staleness_budget=budget)
        summary = run["summary"]
        learner = run["learner"]
        overall.append(summary["overall_ap"])
        sweep_rows.append([
            "inf" if np.isinf(budget) else f"{budget:g}",
            learner["swaps"],
            f"{summary['overall_ap']:.4f}",
            f"{_post_shift_ap(drift_stream, run['scores']):.4f}",
            f"{learner['staleness']:.0f}",
        ])
    # tighter budget -> more swaps; the inf endpoint never swaps
    swaps = [r[1] for r in sweep_rows]
    assert swaps == sorted(swaps, reverse=True)
    assert swaps[-1] == 0
    # freshness buys quality: the tightest budget beats the frozen endpoint
    assert overall[0] > overall[-1]

    report_table(
        "scenario staleness: budget vs quality (distribution_drift/abrupt, "
        "budget in event-time units of t_max=10000)",
        ["budget", "swaps", "overall AP", "post-shift AP", "final staleness"],
        sweep_rows,
        filename="scenario_staleness.txt",
    )
