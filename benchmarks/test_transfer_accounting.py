"""Data-movement accounting: the mechanism behind Figure 6.

Not a table in the paper, but the paper's §5.2.2 analysis attributes the
CPU-to-GPU results to transfer volume and pinned bandwidth.  This bench
measures exactly that: bytes moved per training slice, and what fraction
travelled through the pinned path, for each framework setting.  The cost
model is disabled so the numbers are pure accounting.

Expected shape: TGL moves the most bytes (eager per-hop MFG loads) and
pins none; TGLite moves less and pins nearly everything; TGLite+opt moves
the least (dedup shrinks every gather downstream).
"""

import pytest

from repro.bench.experiments import Experiment
from repro.bench.trainer import train_epoch
from repro.tensor.device import runtime

from conftest import report_table
from helpers import make_config


def _measure(framework: str, model: str) -> dict:
    cfg = make_config("wiki", model, framework, "cpu2gpu")
    exp = Experiment(cfg)
    try:
        runtime.simulate_transfer_cost = False  # accounting only
        runtime.transfer_stats.reset()
        train_epoch(exp.model, exp.g, exp.optimizer, exp.neg_sampler,
                    cfg.batch_size, stop=1500)
        stats = runtime.transfer_stats
        return {
            "mb": stats.bytes / 1e6,
            "pinned_fraction": stats.pinned_bytes / stats.bytes if stats.bytes else 0.0,
            "transfers": stats.count,
        }
    finally:
        exp.close()


def test_transfer_accounting(benchmark):
    def run():
        results = {}
        for model in ("tgat", "tgn"):
            for framework in ("tgl", "tglite", "tglite+opt"):
                results[(model, framework)] = _measure(framework, model)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for model in ("tgat", "tgn"):
        for framework in ("tgl", "tglite", "tglite+opt"):
            r = results[(model, framework)]
            rows.append([
                model, framework, f"{r['mb']:.1f}",
                f"{100 * r['pinned_fraction']:.0f}%", r["transfers"],
            ])
    report_table(
        "Data movement per training slice (wiki, CPU-to-GPU): the Figure 6 mechanism",
        ["model", "framework", "MB moved", "pinned", "transfers"],
        rows,
        filename="transfer_accounting.txt",
    )

    for model in ("tgat", "tgn"):
        tgl = results[(model, "tgl")]
        lite = results[(model, "tglite")]
        opt = results[(model, "tglite+opt")]
        # TGL never pins; TGLite pins the bulk of its traffic.
        assert tgl["pinned_fraction"] == 0.0
        assert lite["pinned_fraction"] > 0.6
        # dedup shrinks total volume below the unoptimized settings.
        assert opt["mb"] < lite["mb"] <= tgl["mb"] * 1.05
