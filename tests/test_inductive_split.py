"""Tests for the inductive (unseen-node) evaluation split."""

import numpy as np
import pytest

from repro.data import InductiveSplit, get_dataset, inductive_split


@pytest.fixture(scope="module")
def split():
    return inductive_split(get_dataset("wiki"), unseen_fraction=0.1, seed=1)


class TestConstruction:
    def test_masks_partition_eval_window(self, split):
        ds = get_dataset("wiki")
        boundary = int(ds.num_edges * 0.70)
        eval_count = ds.num_edges - boundary
        total = split.test_transductive_mask.sum() + split.test_inductive_mask.sum()
        assert total == eval_count
        assert not (split.test_transductive_mask & split.test_inductive_mask).any()

    def test_train_edges_avoid_unseen_nodes(self, split):
        ds = get_dataset("wiki")
        idx = np.flatnonzero(split.train_mask)
        unseen = set(split.unseen_nodes.tolist())
        for e in idx:
            assert int(ds.src[e]) not in unseen
            assert int(ds.dst[e]) not in unseen

    def test_inductive_edges_touch_unseen(self, split):
        ds = get_dataset("wiki")
        unseen = set(split.unseen_nodes.tolist())
        for e in np.flatnonzero(split.test_inductive_mask):
            assert int(ds.src[e]) in unseen or int(ds.dst[e]) in unseen

    def test_train_mask_inside_train_window(self, split):
        ds = get_dataset("wiki")
        boundary = int(ds.num_edges * 0.70)
        assert not split.train_mask[boundary:].any()

    def test_deterministic_per_seed(self):
        ds = get_dataset("wiki")
        a = inductive_split(ds, seed=3)
        b = inductive_split(ds, seed=3)
        np.testing.assert_array_equal(a.unseen_nodes, b.unseen_nodes)
        c = inductive_split(ds, seed=4)
        assert not np.array_equal(a.unseen_nodes, c.unseen_nodes)

    def test_fraction_validation(self):
        ds = get_dataset("wiki")
        with pytest.raises(ValueError):
            inductive_split(ds, unseen_fraction=0.0)
        with pytest.raises(ValueError):
            inductive_split(ds, unseen_fraction=1.0)

    def test_summary_keys(self, split):
        s = split.summary()
        assert s["train edges"] == split.num_train_edges
        assert s["test inductive"] > 0
