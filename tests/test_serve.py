"""Tests for the online serving runtime (`repro.serve`).

Covers the hardened-ingestion contract (validation, quarantine reasons,
idempotent dedup, watermark reordering), admission control and load
shedding, the deadline degradation ladder, atomic snapshot-rollback
commits, the poisoned-stream equivalence guarantee, and chaos runs under
`resilience.FaultInjector`.
"""

import numpy as np
import pytest

import repro.core as tg
from repro.core import Mailbox, Memory, TGraph, TSampler
from repro.resilience import FaultInjector, TransientKernelError, validate_state
from repro.serve import (
    AdmissionController,
    CostModel,
    DegradationLadder,
    EventBatch,
    IngestPipeline,
    RejectReason,
    ServeRuntime,
    SimClock,
    StateCommitter,
    TokenBucket,
    build_stream,
    poison_stream,
    replay,
    split_batches,
    validate_events,
)

N = 60
DIM = 8


def _batch(eids, src, dst, ts, payload=None):
    return EventBatch(np.asarray(eids), np.asarray(src), np.asarray(dst),
                      np.asarray(ts), payload)


def _runtime(stream, num_nodes=N, **kw):
    g = TGraph(stream.src, stream.dst, stream.ts, num_nodes=num_nodes)
    ctx = tg.TContext(g)
    mem = Memory(num_nodes, DIM)
    mb = Mailbox(num_nodes, DIM)
    sampler = TSampler(10, seed=3)
    kw.setdefault("deadline", 1.0)
    kw.setdefault("max_queue", 1 << 30)
    return ServeRuntime(g, ctx, mem, sampler, mailbox=mb, **kw)


class TestValidation:
    def test_clean_batch_all_ok(self):
        b = _batch([0, 1], [1, 2], [3, 4], [1.0, 2.0])
        ok, reasons = validate_events(b, N)
        assert ok.all() and reasons == {}

    def test_each_reject_reason(self):
        payload = np.zeros((6, 2), dtype=np.float32)
        payload[5, 1] = np.inf
        b = _batch(
            [0, 1, 2, 3, 4, 5],
            [1, 1, -2, N + 5, 1, 1],
            [2, 2, 3, 2, 2, 2],
            [np.nan, -1.0, 1.0, 1.0, 1.0, 1.0],
            payload,
        )
        ok, reasons = validate_events(b, N)
        assert list(np.flatnonzero(~ok)) == [0, 1, 2, 3, 5]
        assert reasons[0] == RejectReason.NON_FINITE_TIME
        assert reasons[1] == RejectReason.NEGATIVE_TIME
        assert reasons[2] == RejectReason.NEGATIVE_NODE
        assert reasons[3] == RejectReason.NODE_OUT_OF_RANGE
        assert reasons[5] == RejectReason.NON_FINITE_PAYLOAD

    def test_first_failed_check_wins(self):
        b = _batch([0], [-1], [2], [np.nan])
        _, reasons = validate_events(b, N)
        assert reasons[0] == RejectReason.NON_FINITE_TIME


class TestIngestPipeline:
    def test_quarantines_with_structured_reasons(self):
        p = IngestPipeline(N)
        out = p.push(_batch([0, 1, 2], [1, -1, 2], [2, 2, N + 9], [1.0, 1.0, 1.0]))
        assert len(out) == 1
        assert p.stats.quarantined == {
            RejectReason.NEGATIVE_NODE: 1,
            RejectReason.NODE_OUT_OF_RANGE: 1,
        }
        reasons = {q.reason for q in p.quarantine}
        assert reasons == {RejectReason.NEGATIVE_NODE,
                           RejectReason.NODE_OUT_OF_RANGE}

    def test_idempotent_replay_dedup(self):
        p = IngestPipeline(N)
        first = p.push(_batch([7, 8], [1, 2], [3, 4], [1.0, 2.0]))
        again = p.push(_batch([7, 8], [1, 2], [3, 4], [1.0, 2.0]))
        assert len(first) == 2 and len(again) == 0
        assert p.stats.duplicates == 2
        # duplicates are normal redelivery, not quarantine material
        assert p.stats.quarantined_total == 0

    def test_watermark_holds_back_recent_events(self):
        p = IngestPipeline(N, lateness=5.0)
        out = p.push(_batch([0, 1, 2], [1, 1, 1], [2, 2, 2], [1.0, 4.0, 10.0]))
        # watermark = 10 - 5 = 5: only ts <= 5 released
        assert list(out.ts) == [1.0, 4.0]
        assert p.stats.buffered == 1
        assert len(p.flush()) == 1

    def test_out_of_order_within_lateness_released_in_order(self):
        p = IngestPipeline(N, lateness=10.0)
        p.push(_batch([0], [1], [2], [7.0]))
        p.push(_batch([1], [1], [2], [3.0]))  # late but within bound
        out = p.flush()
        assert list(out.ts) == [3.0, 7.0]
        assert p.stats.quarantined_total == 0

    def test_event_below_watermark_quarantined_late(self):
        p = IngestPipeline(N, lateness=1.0)
        p.push(_batch([0], [1], [2], [100.0]))  # watermark -> 99
        p.push(_batch([1], [1], [2], [5.0]))
        assert p.stats.quarantined == {RejectReason.LATE_EVENT: 1}

    def test_release_order_is_canonical_ts_eid(self):
        p = IngestPipeline(N, lateness=100.0)
        p.push(_batch([5, 2], [1, 1], [2, 2], [4.0, 4.0]))
        p.push(_batch([1], [1], [2], [4.0]))
        out = p.flush()
        assert list(out.eids) == [1, 2, 5]

    def test_buffer_overflow_forces_watermark_advance(self):
        p = IngestPipeline(N, lateness=1e9, max_buffer=3)
        out = p.push(_batch(np.arange(5), np.ones(5, int), np.full(5, 2),
                            np.arange(5, dtype=float)))
        # lateness would buffer everything; the bound forces 2 releases
        assert len(out) == 2
        assert p.stats.forced_releases == 2
        assert p.stats.buffered == 3

    def test_ledger_always_balances(self):
        p = IngestPipeline(N, lateness=2.0)
        p.push(_batch([0, 1, 0], [1, -1, 1], [2, 2, 2], [1.0, 1.0, 1.0]))
        p.push(_batch([3], [1], [2], [np.nan]))
        s = p.stats
        assert s.pushed == s.accepted + s.duplicates + s.quarantined_total

    def test_ingest_fault_retry_is_idempotent(self):
        p = IngestPipeline(N)
        inj = FaultInjector(seed=1, serve_ingest_fault_batches=[(0, 0)])
        b = _batch([0, 1], [1, 2], [3, 4], [1.0, 2.0])
        with inj:
            inj.advance(0, 0)
            with pytest.raises(TransientKernelError):
                p.push(b)
            out = p.push(b)  # transient: second attempt succeeds
        assert len(out) == 2
        assert p.stats.pushed == 2 and p.stats.duplicates == 0


class TestAdmission:
    def test_token_bucket_rate_limits_on_sim_clock(self):
        clock = SimClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.5)  # refills one token
        assert bucket.try_acquire()

    def test_reject_new_sheds_arrivals_when_full(self):
        ac = AdmissionController(SimClock(), max_queue=2)
        assert ac.offer("a") and ac.offer("b")
        assert not ac.offer("c")
        assert ac.stats.shed_queue_full == 1
        assert ac.drain_shed() == ["c"]
        assert ac.poll() == "a"

    def test_drop_oldest_evicts_queue_head(self):
        ac = AdmissionController(SimClock(), max_queue=2, policy="drop-oldest")
        ac.offer("a"), ac.offer("b")
        assert ac.offer("c")  # admitted; evicts "a"
        assert ac.drain_shed() == ["a"]
        assert ac.poll() == "b" and ac.poll() == "c"

    def test_offered_equals_admitted_plus_shed(self):
        clock = SimClock()
        ac = AdmissionController(clock, max_queue=3, rate=1.0, burst=2.0)
        for _ in range(8):
            ac.offer(object())
            clock.advance(0.1)
        s = ac.stats
        assert s.offered == s.admitted + s.shed_total == 8

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="shed policy"):
            AdmissionController(SimClock(), policy="coin-flip")


class TestDegradationLadder:
    def test_generous_budget_serves_full(self):
        ladder = DegradationLadder(full_fanout=10)
        d = ladder.decide(1.0, 100)
        assert d.level == "full" and d.fanout == 10

    def test_ladder_descends_with_budget(self):
        ladder = DegradationLadder(full_fanout=10, reduced_fanout=2)
        cm = ladder.cost_model
        levels = [
            ladder.decide(cm.estimate(lv, 100) * 1.001, 100).level
            for lv in ("full", "reduced", "cache", "memory")
        ]
        assert levels == ["full", "reduced", "cache", "memory"]

    def test_timeout_when_nothing_affordable(self):
        ladder = DegradationLadder()
        d = ladder.decide(0.0, 100)
        assert d.level == "timeout" and ladder.decisions["timeout"] == 1

    def test_cache_rung_skipped_when_cache_degraded(self):
        g = TGraph([0], [1], [1.0])
        ctx = tg.TContext(g)
        ctx.degrade_threshold = 1
        ctx.record_kernel_fault("kernel.cache")
        assert ctx.is_degraded("kernel.cache")
        ladder = DegradationLadder()
        budget = ladder.cost_model.estimate("cache", 100) * 1.001
        assert ladder.decide(budget, 100, ctx).level == "memory"

    def test_degraded_sampler_inflates_sampling_cost(self):
        g = TGraph([0], [1], [1.0])
        ctx = tg.TContext(g)
        ctx.degrade_threshold = 1
        ctx.record_kernel_fault("kernel.sample")
        cm = CostModel()
        assert cm.estimate("full", 50, ctx) == pytest.approx(
            cm.estimate("full", 50) * cm.reference_penalty)
        assert cm.estimate("memory", 50, ctx) == cm.estimate("memory", 50)


class TestStateCommitter:
    def test_commit_applies_and_advances_watermark(self):
        mem, mb = Memory(N, DIM), Mailbox(N, DIM)
        c = StateCommitter(mem, mailbox=mb)
        r = c.commit(_batch([0, 1], [1, 2], [3, 4], [1.0, 2.0]))
        assert r.applied and c.committed_watermark == 2.0
        assert mem.time[1] == 1.0 and mem.time[4] == 2.0
        assert (mem.data.data[3] != 0).any()

    def test_poisoned_batch_rolls_back_bit_identical(self):
        mem, mb = Memory(N, DIM), Mailbox(N, DIM)
        c = StateCommitter(mem, mailbox=mb)
        c.commit(_batch([0], [1], [2], [1.0]))
        before = (mem.state_digest(), mb.state_digest())
        quarantined = []
        c.quarantine = lambda b, d: quarantined.append((len(b), d))
        inj = FaultInjector(seed=2, serve_poison_batches=[(0, 0)])
        with inj:
            inj.advance(0, 0)
            r = c.commit(_batch([5, 6], [7, 8], [9, 10], [2.0, 3.0]))
        assert not r.applied and r.violations
        assert quarantined and quarantined[0][0] == 2
        assert (mem.state_digest(), mb.state_digest()) == before
        assert c.committed_watermark == 1.0  # never advanced past the rollback

    def test_transient_commit_fault_retries(self):
        mem = Memory(N, DIM)
        c = StateCommitter(mem)
        inj = FaultInjector(seed=3, serve_commit_fault_batches=[(0, 0)])
        with inj:
            inj.advance(0, 0)
            r = c.commit(_batch([0], [1], [2], [1.0]))
        assert r.applied and r.retries == 1
        assert mem.time[1] == 1.0

    def test_commit_is_order_invariant(self):
        b = _batch([0, 1, 2], [1, 1, 5], [2, 3, 1], [1.0, 3.0, 2.0],
                   np.arange(24, dtype=np.float32).reshape(3, 8))
        states = []
        for perm in ([0, 1, 2], [2, 0, 1], [1, 2, 0]):
            mem = Memory(N, DIM)
            StateCommitter(mem).commit(b.take(np.array(perm)))
            states.append(mem.state_digest())
        assert all(d == states[0] for d in states[1:])


class TestServeRuntime:
    def test_clean_stream_full_quality(self):
        stream = build_stream(N, 200, payload_dim=DIM, seed=1)
        rt = _runtime(stream)
        results = replay(rt, split_batches(stream, 25), load=1.0)
        assert all(r.status == "ok" and r.level == "full" for r in results)
        assert rt.committer.stats.events_applied == 200
        assert rt.ctx.counters["serve:admitted"] == 8
        lat = rt.ctx.stats().latency
        assert lat is not None and lat.count == 8 and lat.p99 >= lat.p50 > 0

    def test_scores_are_probabilities_and_junk_is_nan(self):
        stream = build_stream(N, 50, payload_dim=DIM, seed=2)
        rt = _runtime(stream)
        bad = _batch([900], [N + 4], [1], [1.0],
                     np.zeros((1, DIM), dtype=np.float32))
        mixed = EventBatch.concat([stream.take(np.arange(10)), bad])
        rt.submit(mixed)
        r = rt.step()
        assert r.status == "ok"
        assert np.isnan(r.scores[-1])
        good = r.scores[:-1]
        assert np.isfinite(good).all() and (good > 0).all() and (good < 1).all()

    def test_shed_under_load_with_bounded_queue(self):
        stream = build_stream(N, 400, payload_dim=DIM, seed=3)
        rt = _runtime(stream, deadline=3e-3, max_queue=4)
        results = replay(rt, split_batches(stream, 20), load=16.0)
        statuses = {r.status for r in results}
        assert "shed" in statuses
        s = rt.admission.stats
        assert s.offered == s.admitted + s.shed_total == 20
        assert rt.ctx.counters["serve:shed"] == s.shed_total
        # every offered request got an answer
        assert len(results) == 20

    def test_deadline_pressure_walks_down_ladder(self):
        stream = build_stream(N, 400, payload_dim=DIM, seed=4)
        rt = _runtime(stream, deadline=3e-3, max_queue=64)
        replay(rt, split_batches(stream, 20), load=16.0)
        rungs = set(rt.ladder.decisions)
        assert rungs - {"full"}, f"no degradation under 16x load: {rungs}"
        degraded = [k for k in rt.ctx.counters if k.startswith("serve:degraded:")]
        assert degraded

    def test_degraded_responses_never_degrade_state(self):
        # Same stream served under brutal deadlines vs none: final state
        # must match exactly (the ladder degrades responses, not commits),
        # as long as nothing is shed.
        stream = build_stream(N, 300, payload_dim=DIM, seed=5)
        batches = split_batches(stream, 30)
        rt_fast = _runtime(stream, deadline=2e-4)
        replay(rt_fast, batches, load=16.0)
        assert rt_fast.ladder.degraded_serves > 0
        rt_slow = _runtime(stream)
        replay(rt_slow, batches, load=1.0)
        assert rt_fast.memory.state_digest() == rt_slow.memory.state_digest()
        assert rt_fast.mailbox.state_digest() == rt_slow.mailbox.state_digest()

    def test_sixteen_x_load_stays_available_with_consistent_stats(self):
        stream = build_stream(N, 600, payload_dim=DIM, seed=6)
        rt = _runtime(stream, deadline=3e-3, max_queue=8)
        results = replay(rt, split_batches(stream, 20), load=16.0)
        assert len(results) == 30  # every request answered: available
        st = rt.ingest.stats
        assert st.pushed == st.accepted + st.duplicates + st.quarantined_total
        assert rt.committer.stats.events_applied == st.released
        stats = rt.ctx.stats()
        assert stats.latency.count == sum(
            1 for r in results if r.status != "shed")
        assert not rt.memory.validate() and not rt.mailbox.validate()


class TestPoisonedStreamEquivalence:
    def _final_state(self, clean, served, lateness, batch_size):
        rt = _runtime(clean, lateness=lateness)
        for b in split_batches(served, batch_size):
            rt.submit(b)
            rt.step()
        rt.drain()
        return rt

    def test_bit_identical_state_and_full_accounting(self):
        clean = build_stream(N, 300, payload_dim=DIM, seed=7)
        poisoned, lateness, injected = poison_stream(clean, N, seed=8)
        rt_c = self._final_state(clean, clean, 0.0, 17)
        rt_p = self._final_state(clean, poisoned, lateness, 23)

        assert rt_c.memory.state_digest() == rt_p.memory.state_digest()
        assert rt_c.mailbox.state_digest() == rt_p.mailbox.state_digest()

        st = rt_p.ingest.stats
        n_junk = sum(v for k, v in injected.items() if k != "redelivered")
        assert st.quarantined_total == n_junk
        assert st.duplicates == injected["redelivered"]
        assert st.pushed == st.accepted + st.duplicates + st.quarantined_total
        # every quarantined event carries a structured reason
        assert all(q.reason for q in rt_p.ingest.quarantine)

    def test_equivalence_with_multislot_mailbox(self):
        clean = build_stream(N, 200, payload_dim=DIM, seed=9)
        poisoned, lateness, _ = poison_stream(clean, N, seed=10,
                                              shuffle_window=4)

        def run(events, lateness):
            g = TGraph(clean.src, clean.dst, clean.ts, num_nodes=N)
            ctx = tg.TContext(g)
            mem, mb = Memory(N, DIM), Mailbox(N, DIM, slots=3)
            rt = ServeRuntime(g, ctx, mem, TSampler(10, seed=3), mailbox=mb,
                              deadline=1.0, max_queue=1 << 30,
                              lateness=lateness)
            for b in split_batches(events, 13):
                rt.submit(b)
                rt.step()
            rt.drain()
            return mem, mb

        mem_c, mb_c = run(clean, 0.0)
        mem_p, mb_p = run(poisoned, lateness)
        # digests cover mail, times, and the ring cursor in one identity
        assert mem_c.state_digest() == mem_p.state_digest()
        assert mb_c.state_digest() == mb_p.state_digest()


class TestChaos:
    def test_chaos_run_stays_valid_and_accounted(self):
        stream = build_stream(N, 400, payload_dim=DIM, seed=11)
        inj = FaultInjector(
            seed=12,
            serve_ingest_fault_rate=0.2,
            serve_commit_fault_rate=0.2,
            serve_poison_batches=[(0, 3), (0, 9)],
        )
        rt = _runtime(stream, injector=inj)
        with inj:
            results = replay(rt, split_batches(stream, 20), load=1.0)
        assert len(results) == 20
        sites = {e.site for e in inj.log}
        assert {"serve.ingest", "serve.commit", "serve.poison"} <= sites
        assert rt.committer.stats.rollbacks >= 1
        assert rt.committer.stats.retries >= 1
        # poisoned batches are fully accounted as quarantined events
        q = rt.ingest.stats.quarantined.get(RejectReason.POISONED_BATCH, 0)
        assert q == rt.committer.stats.events_rolled_back
        assert rt.ctx.counters["serve:quarantined"] == q
        assert validate_state(rt.graph, rt.ctx) == []
        assert not rt.memory.validate() and not rt.mailbox.validate()
        assert np.isfinite(rt.memory.data.data).all()

    def test_chaos_at_16x_overload(self):
        stream = build_stream(N, 400, payload_dim=DIM, seed=13)
        inj = FaultInjector(seed=14, serve_ingest_fault_rate=0.1,
                            serve_commit_fault_rate=0.1)
        rt = _runtime(stream, deadline=3e-3, max_queue=8, injector=inj)
        with inj:
            results = replay(rt, split_batches(stream, 20), load=16.0)
        assert len(results) == 20  # available under chaos + overload
        st = rt.ingest.stats
        assert st.pushed == st.accepted + st.duplicates + st.quarantined_total
        assert validate_state(rt.graph, rt.ctx) == []


class TestModelSwapStoreInvalidation:
    def test_swap_invalidates_in_flight_prefetch(self):
        """A prefetch staged under model version k must never satisfy a
        post-swap (version k+1) gather, even when its transfer lands
        after the swap's eviction ran."""
        stream = build_stream(N, 100, payload_dim=DIM, seed=21)
        rt = _runtime(stream, feature_store=True)
        old = np.full((N, DIM), 1.0, dtype=np.float32)
        new = np.full((N, DIM), 2.0, dtype=np.float32)
        rt.swap_model(old)
        nodes = np.arange(5, dtype=np.int64)
        stale_times = rt._store_times(len(nodes))
        # an in-flight prefetch staged under the old version...
        rt.feature_store.prefetch(nodes, times=stale_times,
                                  space="serve:model")
        rt.swap_model(new)  # evicts while the transfer is in flight
        rt.clock.advance(10.0)
        # ...simulate the worst case: the stale rows land *after* the
        # eviction, still keyed by the old version
        rt.feature_store.put(nodes, stale_times, old[nodes],
                             space="serve:model")
        # post-swap gathers carry the new version in their key: the stale
        # rows are structurally unreachable, so the rows resolve through
        # the (new) authority instead
        np.testing.assert_array_equal(rt._gather_rows(nodes), new[nodes])
        # ...even though the stale rows really are resident in the hot
        # tier under the old version's key
        before = rt.feature_store.stats().tiers["hot"].hits
        _, stale_rows = rt.feature_store.lookup(nodes, stale_times,
                                                space="serve:model")
        assert rt.feature_store.stats().tiers["hot"].hits - before >= len(nodes)
        np.testing.assert_array_equal(stale_rows, old[nodes])

    def test_swap_mid_stream_serves_new_table_through_store(self):
        stream = build_stream(N, 200, payload_dim=DIM, seed=22)
        batches = split_batches(stream, 25)
        rt = _runtime(stream, feature_store=True)
        replay(rt, batches[:4], load=1.0)
        table = np.full((N, DIM), 3.0, dtype=np.float32)
        version = rt.swap_model(table)
        assert version == 1
        results = replay(rt, batches[4:], load=1.0)
        assert all(r.status == "ok" for r in results[-4:])
        nodes = np.arange(8, dtype=np.int64)
        np.testing.assert_array_equal(rt._gather_rows(nodes), table[nodes])


class TestRuntimeLifecycle:
    def test_close_is_idempotent(self, tmp_path):
        stream = build_stream(N, 60, payload_dim=DIM, seed=23)
        rt = _runtime(stream, durable_dir=str(tmp_path / "wal"))
        replay(rt, split_batches(stream, 20), load=1.0)
        rt.close()
        rt.close()  # cluster teardown double-closes: must be a no-op

    def test_close_without_durable_store_is_safe(self):
        stream = build_stream(N, 60, payload_dim=DIM, seed=23)
        rt = _runtime(stream)
        rt.close()
        rt.close()
