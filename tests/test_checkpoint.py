"""Tests for full-training-state checkpointing."""

import numpy as np
import pytest

import repro.core as tg
from repro import nn
from repro import tensor as T
from repro.bench import evaluate, train_epoch
from repro.bench.checkpoint import checkpoint_arrays, load_checkpoint, save_checkpoint
from repro.data import NegativeSampler, get_dataset
from repro.models import TGN, OptFlags


@pytest.fixture
def trained_setup(tmp_path):
    ds = get_dataset("wiki")
    g = ds.build_graph()
    ctx = tg.TContext(g)
    g.set_memory(8)
    g.set_mailbox(TGN.required_mailbox_dim(8, 172))
    model = TGN(ctx, dim_node=172, dim_edge=172, dim_time=8, dim_embed=8,
                dim_mem=8, num_layers=1, num_nbrs=3, dropout=0.0,
                opt=OptFlags.none())
    optimizer = nn.Adam(model.parameters(), lr=1e-3)
    neg = NegativeSampler.for_dataset(ds)
    train_epoch(model, g, optimizer, neg, 300, stop=600)
    return ds, g, model, optimizer, neg, tmp_path


class TestRoundTrip:
    def test_model_parameters_restored(self, trained_setup):
        ds, g, model, optimizer, neg, tmp = trained_setup
        path = str(tmp / "ckpt.npz")
        save_checkpoint(path, model, graph=g, optimizer=optimizer)
        snapshot = {n: p.data.copy() for n, p in model.named_parameters()}
        for p in model.parameters():
            p.data[...] = 0.0
        load_checkpoint(path, model, graph=g, optimizer=optimizer)
        for name, p in model.named_parameters():
            np.testing.assert_array_equal(p.data, snapshot[name])

    def test_memory_and_mailbox_restored(self, trained_setup):
        ds, g, model, optimizer, neg, tmp = trained_setup
        path = str(tmp / "ckpt.npz")
        save_checkpoint(path, model, graph=g, optimizer=optimizer)
        mem_snapshot = g.mem.data.data.copy()
        mail_snapshot = g.mailbox.mail.data.copy()
        g.reset_state()
        load_checkpoint(path, model, graph=g, optimizer=optimizer)
        np.testing.assert_array_equal(g.mem.data.data, mem_snapshot)
        np.testing.assert_array_equal(g.mailbox.mail.data, mail_snapshot)

    def test_optimizer_moments_restored(self, trained_setup):
        ds, g, model, optimizer, neg, tmp = trained_setup
        path = str(tmp / "ckpt.npz")
        save_checkpoint(path, model, graph=g, optimizer=optimizer)
        fresh_opt = nn.Adam(model.parameters(), lr=1e-3)
        load_checkpoint(path, model, graph=g, optimizer=fresh_opt)
        assert fresh_opt._t == optimizer._t
        for p in model.parameters():
            if id(p) in optimizer._m:
                np.testing.assert_array_equal(fresh_opt._m[id(p)], optimizer._m[id(p)])

    def test_resume_produces_identical_continuation(self, trained_setup):
        """Save mid-stream, continue; reload and continue again: identical."""
        ds, g, model, optimizer, neg, tmp = trained_setup
        path = str(tmp / "ckpt.npz")
        save_checkpoint(path, model, graph=g, optimizer=optimizer)

        neg.reset()
        _, ap_first = evaluate(model, g, neg, 300, start=600, stop=1200)

        load_checkpoint(path, model, graph=g, optimizer=optimizer)
        neg.reset()
        _, ap_second = evaluate(model, g, neg, 300, start=600, stop=1200)
        assert ap_first == pytest.approx(ap_second, abs=1e-9)

    def test_multislot_mailbox_cursor_restored(self, tmp_path):
        from repro.models import APAN
        ds = get_dataset("wiki")
        g = ds.build_graph()
        ctx = tg.TContext(g)
        g.set_memory(8)
        g.set_mailbox(APAN.required_mailbox_dim(8, 172), slots=3)
        model = APAN(ctx, dim_node=172, dim_edge=172, dim_time=8, dim_embed=8,
                     dim_mem=8, num_nbrs=3, mailbox_slots=3)
        batch = tg.TBatch(g, 0, 100)
        batch.neg_nodes = np.zeros(100, dtype=np.int64)
        model(batch)
        path = str(tmp_path / "apan.npz")
        save_checkpoint(path, model, graph=g)
        cursors = g.mailbox._next_slot.copy()
        g.reset_state()
        load_checkpoint(path, model, graph=g)
        np.testing.assert_array_equal(g.mailbox._next_slot, cursors)


class TestValidation:
    def test_wrong_model_rejected(self, trained_setup):
        ds, g, model, optimizer, neg, tmp = trained_setup
        path = str(tmp / "ckpt.npz")
        save_checkpoint(path, model)
        other = nn.Linear(3, 2)
        with pytest.raises(KeyError):
            load_checkpoint(path, other)

    def test_missing_memory_rejected(self, trained_setup, tmp_path):
        ds, g, model, optimizer, neg, tmp = trained_setup
        path = str(tmp / "no_mem.npz")
        save_checkpoint(path, model)  # no graph passed -> no memory saved
        with pytest.raises(KeyError):
            load_checkpoint(path, model, graph=g)

    def test_format_version_checked(self, trained_setup):
        ds, g, model, optimizer, neg, tmp = trained_setup
        path = str(tmp / "bad.npz")
        arrays = checkpoint_arrays(model)
        arrays["meta/format_version"] = np.array([99])
        np.savez(path, **arrays)
        # np.savez drops the save_checkpoint CRC too, so the unverified-
        # archive warning fires before the version check rejects it.
        with pytest.raises(ValueError), \
                pytest.warns(RuntimeWarning, match="no stored CRC32"):
            load_checkpoint(path, model)

    def test_checkpoint_arrays_contents(self, trained_setup):
        ds, g, model, optimizer, neg, tmp = trained_setup
        arrays = checkpoint_arrays(model, graph=g, optimizer=optimizer)
        assert any(k.startswith("model/") for k in arrays)
        assert "memory/data" in arrays and "mailbox/mail" in arrays
        assert "optim/t" in arrays
