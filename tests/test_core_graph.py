"""Tests for TGraph storage, sorting, and temporal CSR construction."""

import numpy as np
import pytest

import repro.core as tg
from repro import tensor as T


class TestConstruction:
    def test_edges_sorted_by_time(self):
        g = tg.TGraph([0, 1, 2], [1, 2, 0], [3.0, 1.0, 2.0])
        np.testing.assert_allclose(g.ts, [1, 2, 3])
        np.testing.assert_array_equal(g.src, [1, 2, 0])
        np.testing.assert_array_equal(g.dst, [2, 0, 1])

    def test_sort_is_stable_for_ties(self):
        g = tg.TGraph([0, 1, 2], [3, 3, 3], [1.0, 1.0, 1.0], num_nodes=4)
        np.testing.assert_array_equal(g.src, [0, 1, 2])

    def test_num_nodes_inferred(self):
        g = tg.TGraph([0, 5], [1, 2], [1.0, 2.0])
        assert g.num_nodes == 6

    def test_num_nodes_too_small_rejected(self):
        with pytest.raises(ValueError):
            tg.TGraph([0, 5], [1, 2], [1.0, 2.0], num_nodes=3)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            tg.TGraph([0, 1], [1], [1.0, 2.0])

    def test_basic_stats(self):
        g = tg.TGraph([0, 1], [1, 0], [1.0, 5.0])
        assert g.num_edges == 2
        assert g.max_time == 5.0
        src, dst, ts = g.edges()
        assert len(src) == len(dst) == len(ts) == 2

    def test_from_edges_helper(self):
        g = tg.from_edges([0], [1], [1.0])
        assert isinstance(g, tg.TGraph)

    def test_empty_graph(self):
        g = tg.TGraph([], [], [], num_nodes=3)
        assert g.num_edges == 0
        assert g.max_time == 0.0
        csr = g.csr()
        assert csr.num_nodes == 3


class TestCSR:
    def test_neighbors_time_sorted_per_node(self):
        g = tg.TGraph([0, 0, 0, 1], [1, 2, 3, 0], [3.0, 1.0, 2.0, 4.0])
        csr = g.csr()
        for v in range(g.num_nodes):
            lo, hi = csr.indptr[v], csr.indptr[v + 1]
            ets = csr.etimes[lo:hi]
            assert np.all(np.diff(ets) >= 0)

    def test_reverse_edges_included_by_default(self):
        g = tg.TGraph([0], [1], [1.0])
        csr = g.csr()
        # Node 1 should see node 0 as a neighbor.
        nbr, eid, ets = csr.neighbors_before(1, 2.0)
        np.testing.assert_array_equal(nbr, [0])
        np.testing.assert_array_equal(eid, [0])

    def test_directed_mode(self):
        g = tg.TGraph([0], [1], [1.0], add_reverse=False)
        nbr, _, _ = g.csr().neighbors_before(1, 2.0)
        assert len(nbr) == 0
        nbr, _, _ = g.csr().neighbors_before(0, 2.0)
        np.testing.assert_array_equal(nbr, [1])

    def test_neighbors_before_is_strict(self):
        g = tg.TGraph([0, 0], [1, 2], [1.0, 2.0])
        nbr, _, ets = g.csr().neighbors_before(0, 2.0)
        np.testing.assert_array_equal(nbr, [1])
        np.testing.assert_allclose(ets, [1.0])

    def test_degree(self):
        g = tg.TGraph([0, 0, 1], [1, 2, 2], [1.0, 2.0, 3.0])
        csr = g.csr()
        assert csr.degree(0) == 2
        assert csr.degree(2) == 2

    def test_csr_cached(self):
        g = tg.TGraph([0], [1], [1.0])
        assert g.csr() is g.csr()

    def test_eids_match_coo_rows(self):
        src = np.array([3, 1, 0, 2])
        dst = np.array([0, 2, 1, 3])
        ts = np.array([4.0, 2.0, 1.0, 3.0])
        g = tg.TGraph(src, dst, ts)
        csr = g.csr()
        # Every CSR entry's eid must point back to a COO edge between
        # the node and the listed neighbor at the listed time.
        for v in range(g.num_nodes):
            lo, hi = csr.indptr[v], csr.indptr[v + 1]
            for pos in range(lo, hi):
                e = csr.eids[pos]
                pair = {g.src[e], g.dst[e]}
                assert v in pair and csr.indices[pos] in pair
                assert csr.etimes[pos] == g.ts[e]


class TestFeatures:
    def test_set_and_read_features(self):
        g = tg.TGraph([0], [1], [1.0])
        g.set_nfeat(np.ones((2, 4), dtype=np.float32))
        g.set_efeat(np.ones((1, 3), dtype=np.float32))
        assert g.nfeat_dim == 4
        assert g.efeat_dim == 3

    def test_feature_shape_validation(self):
        g = tg.TGraph([0], [1], [1.0])
        with pytest.raises(ValueError):
            g.set_nfeat(np.ones((5, 4), dtype=np.float32))
        with pytest.raises(ValueError):
            g.set_efeat(np.ones((2, 3), dtype=np.float32))

    def test_feature_dims_zero_when_unset(self):
        g = tg.TGraph([0], [1], [1.0])
        assert g.nfeat_dim == 0 and g.efeat_dim == 0


class TestMemoryAttachment:
    def test_set_memory_and_mailbox(self):
        g = tg.TGraph([0], [1], [1.0])
        mem = g.set_memory(8)
        mb = g.set_mailbox(16, slots=3)
        assert g.mem is mem and g.mailbox is mb
        assert mem.dim == 8 and mb.slots == 3

    def test_reset_state(self):
        g = tg.TGraph([0], [1], [1.0])
        g.set_memory(4)
        g.set_mailbox(4)
        g.mem.data.data[...] = 1.0
        g.mailbox.mail.data[...] = 1.0
        g.reset_state()
        assert g.mem.data.data.sum() == 0
        assert g.mailbox.mail.data.sum() == 0

    def test_reset_state_without_components_is_noop(self):
        tg.TGraph([0], [1], [1.0]).reset_state()


class TestNetworkxExport:
    def test_roundtrip_counts(self):
        import networkx as nx
        from repro.core import to_networkx

        g = tg.TGraph([0, 1, 0], [1, 2, 1], [1.0, 2.0, 3.0])
        nxg = to_networkx(g)
        assert nxg.number_of_nodes() == g.num_nodes
        assert nxg.number_of_edges() == g.num_edges
        # Parallel temporal edges survive (0-1 twice).
        assert nxg.number_of_edges(0, 1) == 2

    def test_time_prefix_filter(self):
        from repro.core import to_networkx

        g = tg.TGraph([0, 1, 0], [1, 2, 1], [1.0, 2.0, 3.0])
        nxg = to_networkx(g, max_time=2.5)
        assert nxg.number_of_edges() == 2

    def test_edge_attributes(self):
        from repro.core import to_networkx

        g = tg.TGraph([0], [1], [7.0])
        nxg = to_networkx(g)
        data = list(nxg.get_edge_data(0, 1).values())[0]
        assert data["time"] == 7.0 and data["eid"] == 0
