"""Tests for the benchmark harness: metrics, timing, trainer, experiments."""

import numpy as np
import pytest

from repro.bench import (
    Breakdown,
    Timer,
    accuracy,
    average_precision,
    evaluate,
    train,
    train_epoch,
    warm_replay,
)
from repro.bench.experiments import Experiment, ExperimentConfig
from repro.data import NegativeSampler, get_dataset
from repro import nn
import repro.core as tg
from repro.models import TGAT, OptFlags


def brute_force_ap(labels, scores):
    """Reference AP: precision@k averaged at every positive hit."""
    order = np.argsort(-np.asarray(scores), kind="stable")
    labels = np.asarray(labels)[order]
    hits = 0
    total = 0.0
    for k, lab in enumerate(labels, start=1):
        if lab:
            hits += 1
            total += hits / k
    return total / max(labels.sum(), 1)


class TestAveragePrecision:
    def test_perfect_ranking(self):
        labels = np.array([1, 1, 0, 0])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert average_precision(labels, scores) == pytest.approx(1.0)

    def test_worst_ranking(self):
        labels = np.array([0, 0, 1])
        scores = np.array([0.9, 0.8, 0.1])
        assert average_precision(labels, scores) == pytest.approx(1 / 3)

    def test_matches_brute_force_random(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            n = rng.integers(5, 60)
            labels = rng.integers(0, 2, size=n)
            if labels.sum() == 0:
                labels[0] = 1
            scores = rng.standard_normal(n)
            assert average_precision(labels, scores) == pytest.approx(
                brute_force_ap(labels, scores), abs=1e-9
            )

    def test_ties_are_grouped(self):
        # Two tied scores, one pos one neg: precision at that threshold 0.5.
        labels = np.array([1, 0])
        scores = np.array([0.5, 0.5])
        assert average_precision(labels, scores) == pytest.approx(0.5)

    def test_no_positives(self):
        assert average_precision(np.zeros(3), np.ones(3)) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            average_precision(np.ones(2), np.ones(3))

    def test_accuracy(self):
        assert accuracy(np.array([1, 0, 1]), np.array([2.0, -1.0, -2.0])) == pytest.approx(2 / 3)
        assert accuracy(np.array([]), np.array([])) == 0.0


class TestTiming:
    def test_timer_accumulates(self):
        t = Timer()
        t.start(); t.stop()
        t.start(); t.stop()
        assert t.elapsed > 0
        t.reset()
        assert t.elapsed == 0.0

    def test_timer_stop_without_start(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_breakdown_sections(self):
        bd = Breakdown()
        with bd.section("a"):
            pass
        with bd.section("a"):
            pass
        bd.add("b", 1.5)
        totals = bd.totals()
        assert set(totals) == {"a", "b"}
        assert totals["b"] == 1.5
        assert bd.total() == pytest.approx(totals["a"] + 1.5)
        table = bd.format_table("title")
        assert "title" in table and "total" in table
        bd.reset()
        assert bd.totals() == {}


class TestTrainer:
    @pytest.fixture(scope="class")
    def setup(self):
        ds = get_dataset("wiki")
        g = ds.build_graph()
        ctx = tg.TContext(g)
        model = TGAT(ctx, dim_node=172, dim_edge=172, dim_time=8, dim_embed=8,
                     num_layers=1, num_nbrs=3, opt=OptFlags.none())
        opt = nn.Adam(model.parameters(), lr=1e-3)
        neg = NegativeSampler.for_dataset(ds)
        return ds, g, model, opt, neg

    def test_train_epoch_returns_time_and_loss(self, setup):
        ds, g, model, opt, neg = setup
        elapsed, loss = train_epoch(model, g, opt, neg, 300, stop=900)
        assert elapsed > 0 and np.isfinite(loss)

    def test_evaluate_returns_ap_in_range(self, setup):
        ds, g, model, opt, neg = setup
        elapsed, ap = evaluate(model, g, neg, 300, start=900, stop=1500)
        assert 0.0 <= ap <= 1.0

    def test_train_runs_requested_epochs(self, setup):
        ds, g, model, opt, neg = setup
        res = train(model, g, opt, neg, batch_size=300, epochs=2,
                    train_end=600, eval_end=900)
        assert len(res.epochs) == 2
        assert res.best_ap >= max(e.eval_ap for e in res.epochs) - 1e-12
        assert res.mean_epoch_seconds > 0
        assert res.last_epoch_seconds == res.epochs[-1].train_seconds

    def test_warm_replay_restores_memory_state(self):
        ds = get_dataset("wiki")
        g = ds.build_graph()
        ctx = tg.TContext(g)
        from repro.models import TGN
        g.set_memory(8)
        g.set_mailbox(TGN.required_mailbox_dim(8, 172))
        model = TGN(ctx, dim_node=172, dim_edge=172, dim_time=8, dim_embed=8,
                    dim_mem=8, num_layers=1, num_nbrs=3)
        neg = NegativeSampler.for_dataset(ds)
        warm_replay(model, g, neg, 300, stop=600)
        assert np.abs(g.mem.data.data).sum() > 0


class TestExperimentRunner:
    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            Experiment(ExperimentConfig(framework="dgl"))
        with pytest.raises(ValueError):
            Experiment(ExperimentConfig(model="gat"))
        with pytest.raises(ValueError):
            Experiment(ExperimentConfig(placement="tpu"))

    @pytest.mark.parametrize("framework", ["tgl", "tglite", "tglite+opt"])
    def test_builds_and_trains_every_framework(self, framework):
        cfg = ExperimentConfig(
            dataset="wiki", model="jodie", framework=framework,
            placement="gpu", epochs=1, batch_size=400,
            dim_time=8, dim_embed=8, dim_mem=8,
        )
        exp = Experiment(cfg)
        try:
            res = exp.run_training()
            assert len(res.epochs) == 1
            assert res.epochs[0].train_seconds > 0
        finally:
            exp.close()

    def test_inference_path(self):
        cfg = ExperimentConfig(dataset="wiki", model="jodie", framework="tglite",
                               placement="gpu", epochs=1, batch_size=400,
                               dim_time=8, dim_embed=8, dim_mem=8)
        exp = Experiment(cfg)
        try:
            seconds, ap = exp.run_test_inference()
            assert seconds > 0 and 0 <= ap <= 1
        finally:
            exp.close()

    def test_label(self):
        cfg = ExperimentConfig(dataset="wiki", model="tgat", framework="tgl", placement="gpu")
        assert cfg.label() == "tgat/wiki/tgl/gpu"
