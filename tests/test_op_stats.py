"""Tests for operator-effectiveness counters on TContext."""

import numpy as np
import pytest

import repro.core as tg
from repro import tensor as T
from repro.core import op as tgop
from repro.data import NegativeSampler, get_dataset
from repro.models import TGAT, OptFlags


class TestCounters:
    def test_count_accumulates(self, tiny_ctx):
        tiny_ctx.count("x", 3)
        tiny_ctx.count("x", 4)
        assert tiny_ctx.counters["x"] == 7

    def test_dedup_updates_counters(self, tiny_ctx):
        blk = tg.TBlock(tiny_ctx, 0, np.array([0, 0, 1]), np.ones(3))
        tgop.dedup(blk)
        stats = tiny_ctx.op_stats()
        assert stats["dedup_rows_in"] == 3
        assert stats["dedup_rows_out"] == 2
        assert stats["dedup_reduction"] == pytest.approx(1 / 3)

    def test_dedup_counts_even_when_noop(self, tiny_ctx):
        blk = tg.TBlock(tiny_ctx, 0, np.array([0, 1]), np.array([1.0, 2.0]))
        tgop.dedup(blk)
        assert tiny_ctx.op_stats()["dedup_reduction"] == 0.0

    def test_cache_hit_rate_in_stats(self, tiny_ctx):
        tiny_ctx.eval()
        blk = tg.TBlock(tiny_ctx, 0, np.array([0]), np.array([1.0]))
        tgop.cache(tiny_ctx, blk)
        blk.run_hooks(T.tensor([[1.0]]))
        blk2 = tg.TBlock(tiny_ctx, 0, np.array([0]), np.array([1.0]))
        tgop.cache(tiny_ctx, blk2)
        assert tiny_ctx.op_stats()["cache_hit_rate"] == 0.5

    def test_reset_counters(self, tiny_ctx):
        tiny_ctx.count("x", 1)
        tiny_ctx.reset_counters()
        assert tiny_ctx.counters == {}

    def test_no_division_by_zero_without_activity(self, tiny_ctx):
        stats = tiny_ctx.op_stats()
        assert "dedup_reduction" not in stats
        assert "cache_hit_rate" not in stats


class TestEndToEndStats:
    def test_tgat_epoch_reports_meaningful_reduction(self):
        ds = get_dataset("wiki")
        g = ds.build_graph()
        ctx = tg.TContext(g)
        model = TGAT(ctx, dim_node=172, dim_edge=172, dim_time=8, dim_embed=8,
                     num_layers=2, num_nbrs=5, opt=OptFlags(dedup=True))
        batch = tg.TBatch(g, 1500, 1800)
        batch.neg_nodes = NegativeSampler.for_dataset(ds).sample(300)
        model(batch)
        stats = ctx.op_stats()
        # The scaled wiki graph has heavy duplication mid-stream.
        assert stats["dedup_reduction"] > 0.3
        assert stats["dedup_rows_in"] > stats["dedup_rows_out"] > 0
