"""Tests for the unified TContext instrumentation (``ctx.stats()``)."""

import numpy as np
import pytest

import repro.core as tg
from repro import tensor as T
from repro.core import op as tgop
from repro.core.stats import CacheLayerStats, ContextStats
from repro.data import NegativeSampler, get_dataset
from repro.models import TGAT, OptFlags


class TestCounters:
    def test_count_accumulates(self, tiny_ctx):
        tiny_ctx.count("x", 3)
        tiny_ctx.count("x", 4)
        assert tiny_ctx.counters["x"] == 7
        assert tiny_ctx.stats().counters["x"] == 7

    def test_dedup_updates_counters(self, tiny_ctx):
        blk = tg.TBlock(tiny_ctx, 0, np.array([0, 0, 1]), np.ones(3))
        tgop.dedup(blk)
        stats = tiny_ctx.stats()
        assert stats.counters["dedup_rows_in"] == 3
        assert stats.counters["dedup_rows_out"] == 2
        assert stats.dedup_reduction == pytest.approx(1 / 3)

    def test_dedup_counts_even_when_noop(self, tiny_ctx):
        blk = tg.TBlock(tiny_ctx, 0, np.array([0, 1]), np.array([1.0, 2.0]))
        tgop.dedup(blk)
        assert tiny_ctx.stats().dedup_reduction == 0.0

    def test_cache_hit_rate_in_stats(self, tiny_ctx):
        tiny_ctx.eval()
        blk = tg.TBlock(tiny_ctx, 0, np.array([0]), np.array([1.0]))
        tgop.cache(tiny_ctx, blk)
        blk.run_hooks(T.tensor([[1.0]]))
        blk2 = tg.TBlock(tiny_ctx, 0, np.array([0]), np.array([1.0]))
        tgop.cache(tiny_ctx, blk2)
        stats = tiny_ctx.stats()
        assert stats.cache_hit_rate == 0.5
        assert stats.cache[0] == CacheLayerStats(hits=1, lookups=2, entries=1)

    def test_reset_stats(self, tiny_ctx):
        tiny_ctx.count("x", 1)
        tiny_ctx.add_kernel_time("sample", 0.5)
        tiny_ctx.reset_stats()
        assert tiny_ctx.counters == {}
        assert tiny_ctx.stats().kernel_seconds == {}

    def test_reset_stats_keeps_cache_contents(self, tiny_ctx):
        tiny_ctx.eval()
        cache = tiny_ctx.embed_cache(0)
        cache.store(np.array([1]), np.array([1.0]), np.ones((1, 2), dtype=np.float32))
        cache.lookup(np.array([1]), np.array([1.0]))
        tiny_ctx.reset_stats()
        stats = tiny_ctx.stats()
        assert stats.cache[0].lookups == 0
        assert stats.cache[0].entries == 1  # contents survive a stats reset
        hit, _ = cache.lookup(np.array([1]), np.array([1.0]))
        assert hit.all()

    def test_no_division_by_zero_without_activity(self, tiny_ctx):
        stats = tiny_ctx.stats()
        assert stats.dedup_reduction is None
        assert stats.cache_hit_rate is None
        flat = stats.as_dict()
        assert "dedup_reduction" not in flat
        assert "cache_hit_rate" not in flat

    def test_snapshot_is_frozen_copy(self, tiny_ctx):
        tiny_ctx.count("x", 1)
        before = tiny_ctx.stats()
        tiny_ctx.count("x", 1)
        assert before.counters["x"] == 1
        with pytest.raises(Exception):
            before.counters = {}


class TestKernelTimes:
    def test_add_kernel_time_accumulates(self, tiny_ctx):
        tiny_ctx.add_kernel_time("sample", 0.25)
        tiny_ctx.add_kernel_time("sample", 0.25)
        assert tiny_ctx.stats().kernel_seconds["sample"] == pytest.approx(0.5)

    def test_sampling_records_kernel_time(self, tiny_ctx, tiny_graph):
        blk = tg.TBatch(tiny_graph, 0, 4).block(tiny_ctx)
        tg.TSampler(2).sample(blk)
        assert tiny_ctx.stats().kernel_seconds["sample"] >= 0

    def test_dedup_records_kernel_time(self, tiny_ctx):
        blk = tg.TBlock(tiny_ctx, 0, np.array([0, 0, 1]), np.ones(3))
        tgop.dedup(blk)
        assert "dedup" in tiny_ctx.stats().kernel_seconds

    def test_cache_records_kernel_time(self, tiny_ctx):
        tiny_ctx.eval()
        blk = tg.TBlock(tiny_ctx, 0, np.array([0]), np.array([1.0]))
        tgop.cache(tiny_ctx, blk)
        blk.run_hooks(T.tensor([[1.0]]))
        kernels = tiny_ctx.stats().kernel_seconds
        assert "cache_lookup" in kernels
        assert "cache_store" in kernels


class TestDeprecatedShims:
    def test_op_stats_warns_and_matches(self, tiny_ctx):
        blk = tg.TBlock(tiny_ctx, 0, np.array([0, 0, 1]), np.ones(3))
        tgop.dedup(blk)
        with pytest.warns(DeprecationWarning):
            flat = tiny_ctx.op_stats()
        assert flat == tiny_ctx.stats().as_dict()
        assert flat["dedup_reduction"] == pytest.approx(1 / 3)

    def test_cache_stats_warns_and_matches(self, tiny_ctx):
        tiny_ctx.eval()
        blk = tg.TBlock(tiny_ctx, 0, np.array([0]), np.array([1.0]))
        tgop.cache(tiny_ctx, blk)
        blk.run_hooks(T.tensor([[1.0]]))
        blk2 = tg.TBlock(tiny_ctx, 0, np.array([0]), np.array([1.0]))
        tgop.cache(tiny_ctx, blk2)
        with pytest.warns(DeprecationWarning):
            rates = tiny_ctx.cache_stats()
        assert rates == {0: 0.5}

    def test_reset_counters_warns_and_resets(self, tiny_ctx):
        tiny_ctx.count("x", 1)
        with pytest.warns(DeprecationWarning):
            tiny_ctx.reset_counters()
        assert tiny_ctx.counters == {}


class TestEndToEndStats:
    def test_tgat_epoch_reports_meaningful_reduction(self):
        ds = get_dataset("wiki")
        g = ds.build_graph()
        ctx = tg.TContext(g)
        model = TGAT(ctx, dim_node=172, dim_edge=172, dim_time=8, dim_embed=8,
                     num_layers=2, num_nbrs=5, opt=OptFlags(dedup=True))
        batch = tg.TBatch(g, 1500, 1800)
        batch.neg_nodes = NegativeSampler.for_dataset(ds).sample(300)
        model(batch)
        stats = ctx.stats()
        # The scaled wiki graph has heavy duplication mid-stream.
        assert stats.dedup_reduction > 0.3
        assert stats.counters["dedup_rows_in"] > stats.counters["dedup_rows_out"] > 0
        # The sampling kernel ran and its time was attributed.
        assert stats.kernel_seconds["sample"] > 0
