"""Additional tensor-backend coverage: helpers and corner cases."""

import numpy as np
import pytest

from repro import tensor as T
from repro.tensor import Tensor
from repro.tensor.functional import dropout_mask, sort_by


class TestSortBy:
    def test_sorts_all_arrays_together(self):
        key = np.array([3.0, 1.0, 2.0])
        a = np.array([30, 10, 20])
        b = np.array(["c", "a", "b"])
        skey, sa, sb = sort_by(key, a, b)
        np.testing.assert_allclose(skey, [1, 2, 3])
        np.testing.assert_array_equal(sa, [10, 20, 30])
        np.testing.assert_array_equal(sb, ["a", "b", "c"])

    def test_stable_for_ties(self):
        key = np.array([1.0, 1.0, 0.0])
        payload = np.array([0, 1, 2])
        _, sorted_payload = sort_by(key, payload)
        np.testing.assert_array_equal(sorted_payload, [2, 0, 1])

    def test_key_only(self):
        (skey,) = sort_by(np.array([2.0, 1.0]))
        np.testing.assert_allclose(skey, [1, 2])


class TestDropoutMask:
    def test_scaling_preserves_expectation(self):
        T.manual_seed(0)
        mask = dropout_mask((200, 200), 0.3)
        assert abs(mask.numpy().mean() - 1.0) < 0.05

    def test_zero_prob_keeps_everything(self):
        mask = dropout_mask((10,), 0.0)
        np.testing.assert_allclose(mask.numpy(), np.ones(10))

    def test_device_placement(self):
        assert dropout_mask((4,), 0.5, device="cuda").device.is_cuda


class TestTensorCorners:
    def test_scalar_tensor_operations(self):
        s = T.tensor(3.0)
        assert s.shape == ()
        assert (s * 2).item() == 6.0
        assert s.numel() == 1

    def test_empty_tensor_ops(self):
        e = T.zeros(0, 4)
        assert (e * 2).shape == (0, 4)
        assert e.sum().item() == 0.0
        assert T.cat([e, T.ones(2, 4)]).shape == (2, 4)

    def test_bool_of_multielement_raises(self):
        with pytest.raises(ValueError):
            bool(T.tensor([1.0, 2.0]))

    def test_chained_views_backward(self):
        x = T.randn(2, 3, requires_grad=True)
        y = x.reshape(6).unsqueeze(0).squeeze(0).reshape(3, 2).transpose(0, 1)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_grad_through_repeated_cat(self):
        x = T.tensor([1.0], requires_grad=True)
        out = T.cat([x, x, x])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [3.0])

    def test_expand_negative_keeps_dim(self):
        x = T.randn(1, 5)
        assert x.expand(-1, 5).shape == (1, 5)

    def test_norm_rejects_p1(self):
        with pytest.raises(NotImplementedError):
            T.tensor([1.0]).norm(p=1)

    def test_copy_inplace(self):
        a = T.zeros(3)
        a.copy_(T.tensor([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(a.numpy(), [1, 2, 3])

    def test_max_tie_gradient_splits(self):
        x = T.tensor([2.0, 2.0], requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad.sum(), 1.0)

    def test_softmax_on_single_element_rows(self):
        out = T.randn(4, 1).softmax(dim=1)
        np.testing.assert_allclose(out.numpy(), np.ones((4, 1)), rtol=1e-6)

    def test_getitem_bool_mask(self):
        a = T.tensor([1.0, 2.0, 3.0], requires_grad=True)
        picked = a[np.array([True, False, True])]
        np.testing.assert_allclose(picked.numpy(), [1, 3])
        picked.sum().backward()
        np.testing.assert_allclose(a.grad, [1, 0, 1])

    def test_getitem_tuple_index(self):
        a = T.tensor(np.arange(12, dtype=np.float32).reshape(3, 4), requires_grad=True)
        out = a[np.array([0, 2]), np.array([1, 3])]
        np.testing.assert_allclose(out.numpy(), [1, 11])
        out.sum().backward()
        assert a.grad[0, 1] == 1 and a.grad[2, 3] == 1

    def test_stack_dim1(self):
        a, b = T.ones(3), T.zeros(3)
        out = T.stack([a, b], dim=1)
        assert out.shape == (3, 2)
        np.testing.assert_allclose(out.numpy()[:, 0], np.ones(3))

    def test_where_scalar_broadcast(self):
        out = T.where(np.array([True, False]), T.tensor([1.0, 1.0]), T.zeros(2))
        np.testing.assert_allclose(out.numpy(), [1, 0])

    def test_tensor_index_into_tensor(self):
        a = T.tensor([5.0, 6.0, 7.0])
        idx = T.tensor([0, 2], dtype=np.int64)
        np.testing.assert_allclose(a[idx].numpy(), [5, 7])
