"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

import repro.core as tg
from repro import tensor as T
from repro.bench.metrics import average_precision
from repro.core import op as tgop
from repro.core.op.dedup import unique_node_times
from repro.tensor.segment import segment_mean, segment_softmax, segment_sum

finite_f32 = st.floats(-10, 10, allow_nan=False, width=32)


@st.composite
def array_pairs_broadcastable(draw):
    """Two float arrays whose shapes broadcast together."""
    base = draw(st.lists(st.integers(1, 4), min_size=1, max_size=3))
    variant = [draw(st.sampled_from([d, 1])) for d in base]
    a = draw(hnp.arrays(np.float32, tuple(base), elements=finite_f32))
    b = draw(hnp.arrays(np.float32, tuple(variant), elements=finite_f32))
    return a, b


@settings(max_examples=40, deadline=None)
@given(array_pairs_broadcastable())
def test_add_grad_shapes_match_inputs(pair):
    a_np, b_np = pair
    a = T.Tensor(a_np, requires_grad=True)
    b = T.Tensor(b_np, requires_grad=True)
    (a + b).sum().backward()
    assert a.grad.shape == a_np.shape
    assert b.grad.shape == b_np.shape
    # Broadcasting conserves total gradient mass for addition.
    assert a.grad.sum() == np.prod(np.broadcast_shapes(a_np.shape, b_np.shape))


@settings(max_examples=40, deadline=None)
@given(array_pairs_broadcastable())
def test_mul_forward_matches_numpy(pair):
    a_np, b_np = pair
    out = (T.Tensor(a_np) * T.Tensor(b_np)).numpy()
    np.testing.assert_allclose(out, a_np * b_np, rtol=1e-5)


@settings(max_examples=30, deadline=None)
@given(
    hnp.arrays(np.float32, st.tuples(st.integers(1, 30)), elements=finite_f32),
    st.integers(1, 6),
    st.randoms(),
)
def test_segment_softmax_is_partition_of_unity(scores, num_segments, rnd):
    ids = np.array([rnd.randrange(num_segments) for _ in range(len(scores))], dtype=np.int64)
    out = segment_softmax(T.Tensor(scores), ids, num_segments).numpy()
    for seg in range(num_segments):
        mask = ids == seg
        if mask.any():
            assert abs(out[mask].sum() - 1.0) < 1e-4
    assert np.all(out >= 0)


@settings(max_examples=30, deadline=None)
@given(
    hnp.arrays(np.float32, st.tuples(st.integers(1, 25), st.integers(1, 4)), elements=finite_f32),
    st.integers(1, 5),
    st.randoms(),
)
def test_segment_sum_conserves_mass(values, num_segments, rnd):
    ids = np.array([rnd.randrange(num_segments) for _ in range(values.shape[0])], dtype=np.int64)
    out = segment_sum(T.Tensor(values), ids, num_segments).numpy()
    np.testing.assert_allclose(out.sum(axis=0), values.sum(axis=0), atol=1e-3)


@settings(max_examples=30, deadline=None)
@given(
    hnp.arrays(np.float32, st.tuples(st.integers(1, 25), st.integers(1, 3)), elements=finite_f32),
    st.randoms(),
)
def test_segment_mean_bounded_by_extremes(values, rnd):
    ids = np.array([rnd.randrange(3) for _ in range(values.shape[0])], dtype=np.int64)
    out = segment_mean(T.Tensor(values), ids, 3).numpy()
    for seg in range(3):
        mask = ids == seg
        if mask.any():
            assert np.all(out[seg] <= values[mask].max(axis=0) + 1e-4)
            assert np.all(out[seg] >= values[mask].min(axis=0) - 1e-4)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 10), st.integers(0, 5)), min_size=1, max_size=40)
)
def test_dedup_inverse_is_exact(pairs):
    nodes = np.array([p[0] for p in pairs], dtype=np.int64)
    times = np.array([float(p[1]) for p in pairs])
    un, ut, inv = unique_node_times(nodes, times)
    # Round trip: unique pairs expand back to the originals.
    np.testing.assert_array_equal(un[inv], nodes)
    np.testing.assert_allclose(ut[inv], times)
    # Uniqueness: no duplicate (node, time) pair remains.
    combined = un * 1000 + ut.astype(np.int64)
    assert len(np.unique(combined)) == len(un)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(0, 1e6, allow_nan=False), min_size=2, max_size=50), st.randoms())
def test_sampler_never_sees_future(times, rnd):
    """Temporal constraint: sampled edges are strictly earlier than queries."""
    m = len(times)
    src = np.array([rnd.randrange(5) for _ in range(m)], dtype=np.int64)
    dst = np.array([(s + 1 + rnd.randrange(4)) % 5 for s in src], dtype=np.int64)
    g = tg.TGraph(src, dst, np.array(times), num_nodes=5)
    ctx = tg.TContext(g)
    query_t = float(np.median(times))
    blk = tg.TBlock(ctx, 0, np.arange(5), np.full(5, query_t))
    tg.TSampler(4, "recent").sample(blk)
    assert np.all(blk.etimes < query_t)
    # dstindex refers to valid destinations.
    if blk.num_src:
        assert blk.dstindex.max() < blk.num_dst


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(0, 1), min_size=1, max_size=50),
    st.randoms(),
)
def test_average_precision_in_unit_interval(labels, rnd):
    labels = np.array(labels)
    scores = np.array([rnd.random() for _ in labels])
    ap = average_precision(labels, scores)
    assert 0.0 <= ap <= 1.0


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 30), st.randoms())
def test_average_precision_perfect_and_monotone(n, rnd):
    labels = np.array([rnd.randrange(2) for _ in range(n)])
    if labels.sum() == 0:
        labels[0] = 1
    perfect = average_precision(labels, labels.astype(float))
    assert perfect == 1.0


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 6), st.integers(0, 6), st.integers(1, 100)),
             min_size=1, max_size=40)
)
def test_graph_csr_roundtrip(edges):
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    ts = np.array([float(e[2]) for e in edges])
    g = tg.TGraph(src, dst, ts, num_nodes=7)
    csr = g.csr()
    # Every undirected incidence appears exactly once per endpoint.
    assert len(csr.indices) == 2 * g.num_edges
    for v in range(7):
        lo, hi = csr.indptr[v], csr.indptr[v + 1]
        assert np.all(np.diff(csr.etimes[lo:hi]) >= 0)
        for pos in range(lo, hi):
            e = csr.eids[pos]
            assert v in (g.src[e], g.dst[e])


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 4), st.floats(0, 100, allow_nan=False)),
             min_size=1, max_size=30)
)
def test_coalesce_keeps_latest_per_node(rows):
    dstnodes = np.array([r[0] for r in rows], dtype=np.int64)
    etimes = np.array([r[1] for r in rows])
    g = tg.TGraph([0], [1], [1.0], num_nodes=5)
    ctx = tg.TContext(g)
    blk = tg.TBlock(ctx, 0, dstnodes, etimes)
    blk.set_nbrs(
        (dstnodes + 1) % 5,
        np.zeros(len(rows), dtype=np.int64),
        etimes,
        np.arange(len(rows), dtype=np.int64),
    )
    tgop.coalesce(blk, by="latest")
    assert len(np.unique(blk.dstnodes)) == blk.num_dst
    for node in np.unique(dstnodes):
        expected = etimes[dstnodes == node].max()
        got = blk.etimes[blk.dstnodes == node]
        assert got.shape == (1,)
        assert got[0] == expected


@settings(max_examples=20, deadline=None)
@given(
    hnp.arrays(np.float32, st.tuples(st.integers(1, 10), st.integers(1, 4)),
               elements=finite_f32),
    st.randoms(),
)
def test_index_put_then_read_roundtrip(values, rnd):
    n = values.shape[0] + 3
    base = T.zeros(n, values.shape[1])
    idx = np.array(rnd.sample(range(n), values.shape[0]), dtype=np.int64)
    out = T.index_put(base, idx, T.Tensor(values)).numpy()
    np.testing.assert_allclose(out[idx], values)
    untouched = np.setdiff1d(np.arange(n), idx)
    assert np.all(out[untouched] == 0)
