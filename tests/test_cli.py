"""Tests for the command-line experiment runner."""

import pytest

from repro.bench.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.model == "tgat"
        assert args.dataset == "wiki"
        assert args.framework == "tglite+opt"
        assert args.placement == "gpu"

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--model", "gcn"])

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--dataset", "citeseer"])

    def test_capacity_flag(self):
        args = build_parser().parse_args(["--capacity-mb", "512"])
        assert args.capacity_mb == 512


class TestMain:
    def test_list_datasets(self, capsys):
        assert main(["--list-datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("wiki", "mooc", "reddit", "lastfm", "wikitalk", "gdelt"):
            assert name in out

    def test_small_training_run(self, capsys):
        rc = main([
            "--model", "jodie", "--dataset", "wiki", "--framework", "tglite",
            "--epochs", "1", "--batch-size", "500",
            "--dim-embed", "8", "--dim-time", "8", "--dim-mem", "8",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "epoch 0" in out
        assert "best val AP" in out

    def test_inference_flag(self, capsys):
        rc = main([
            "--model", "jodie", "--dataset", "wiki", "--framework", "tglite",
            "--epochs", "1", "--batch-size", "500", "--inference",
            "--dim-embed", "8", "--dim-time", "8", "--dim-mem", "8",
        ])
        assert rc == 0
        assert "test inference" in capsys.readouterr().out
