"""Tests for the discrete-time snapshot extension (paper §7 future work)."""

import numpy as np
import pytest

import repro.core as tg
from repro.core.snapshot import SnapshotLoader, TSnapshot, snapshots


@pytest.fixture
def line_graph():
    # 12 edges at times 1..12 over 6 nodes.
    src = np.arange(12) % 6
    dst = (np.arange(12) + 1) % 6
    ts = np.arange(1.0, 13.0)
    return tg.TGraph(src, dst, ts, num_nodes=6)


class TestSnapshots:
    def test_even_partition_covers_all_edges(self, line_graph):
        snaps = snapshots(line_graph, num_snapshots=4)
        assert len(snaps) == 4
        assert sum(s.num_edges for s in snaps) == 12
        assert snaps[0].start_eid == 0
        assert snaps[-1].stop_eid == 12

    def test_windows_are_contiguous(self, line_graph):
        snaps = snapshots(line_graph, num_snapshots=3)
        for a, b in zip(snaps[:-1], snaps[1:]):
            assert a.stop_eid == b.start_eid
            assert a.t_end == b.t_start

    def test_edges_fall_inside_windows(self, line_graph):
        for snap in snapshots(line_graph, num_snapshots=5):
            _, _, ts = snap.edges()
            if len(ts):
                assert ts.min() >= snap.t_start
                assert ts.max() < snap.t_end

    def test_custom_boundaries(self, line_graph):
        snaps = snapshots(line_graph, boundaries=[5.0, 9.0, 13.0])
        assert [s.num_edges for s in snaps] == [4, 4, 4]

    def test_boundary_validation(self, line_graph):
        with pytest.raises(ValueError):
            snapshots(line_graph, num_snapshots=3, boundaries=[1.0])
        with pytest.raises(ValueError):
            snapshots(line_graph)
        with pytest.raises(ValueError):
            snapshots(line_graph, boundaries=[5.0, 4.0, 13.0])
        with pytest.raises(ValueError):
            snapshots(line_graph, boundaries=[5.0, 9.0])  # doesn't cover max t
        with pytest.raises(ValueError):
            snapshots(line_graph, num_snapshots=0)

    def test_nodes_and_adjacency(self, line_graph):
        snap = snapshots(line_graph, num_snapshots=4)[0]
        nodes = snap.nodes()
        assert len(nodes) > 0
        rows, cols = snap.adjacency()
        assert len(rows) == 2 * snap.num_edges

    def test_batch_view(self, line_graph):
        snap = snapshots(line_graph, num_snapshots=4)[1]
        batch = snap.batch()
        assert batch.start == snap.start_eid
        assert batch.stop == snap.stop_eid

    def test_block_seeds_at_window_end(self, line_graph):
        ctx = tg.TContext(line_graph)
        snap = snapshots(line_graph, num_snapshots=3)[1]
        blk = snap.block(ctx)
        assert np.all(blk.dsttimes == snap.t_end)
        # Existing CTDG operators compose: temporal sampling respects the
        # snapshot horizon.
        tg.TSampler(4, "recent").sample(blk)
        assert np.all(blk.etimes < snap.t_end)

    def test_block_with_explicit_nodes(self, line_graph):
        ctx = tg.TContext(line_graph)
        snap = snapshots(line_graph, num_snapshots=2)[0]
        blk = snap.block(ctx, nodes=np.array([0, 1]))
        assert blk.num_dst == 2

    def test_repr(self, line_graph):
        assert "TSnapshot" in repr(snapshots(line_graph, num_snapshots=2)[0])


class TestSnapshotLoader:
    def test_yields_history_target_pairs(self, line_graph):
        loader = SnapshotLoader(line_graph, num_snapshots=4)
        pairs = list(loader)
        assert len(pairs) == len(loader) == 3
        for history, target in pairs:
            assert isinstance(history, TSnapshot)
            assert target.start == history.stop_eid

    def test_targets_cover_everything_after_first_window(self, line_graph):
        loader = SnapshotLoader(line_graph, num_snapshots=3)
        covered = sum(len(t) for _, t in loader)
        first = loader.snapshots[0].num_edges
        assert covered == line_graph.num_edges - first
