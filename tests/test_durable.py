"""Crash-consistent durable state layer tests.

The tentpole guarantee: for a crash injected at **any byte offset** of
the write-ahead log — torn write, truncation, bit flip, duplicated tail
record, lost fsync — recovery yields state bit-identical to a clean
replay of the committed prefix, no committed record is lost or applied
twice, and re-opening the store is idempotent.
"""

import os
import shutil
import warnings

import numpy as np
import pytest

from repro import nn
from repro.core import Mailbox, Memory, TContext, TGraph, TSampler
from repro.durable import (
    KIND_BATCH,
    KIND_DELTA,
    KIND_MARKER,
    CodecError,
    CursorInvalidated,
    DurableStateStore,
    WALCursor,
    WriteAheadLog,
    decode_payload,
    encode_payload,
    fsync_dir,
    list_snapshots,
    load_latest,
    prune_snapshots,
    write_snapshot,
)
from repro.durable.wal import _HEADER_SIZE
from repro.resilience import DECISIONS, SITES, FaultInjector, SimulatedDiskCrash
from repro.serve import (
    ServeRuntime,
    build_stream,
    recover_serve_state,
    split_batches,
)


# ---- codec ------------------------------------------------------------------------


class TestCodec:
    def test_roundtrip(self):
        arrays = {
            "a": np.arange(12, dtype=np.int64).reshape(3, 4),
            "b": np.linspace(0, 1, 5, dtype=np.float32),
            "empty": np.empty((0, 7), dtype=np.float64),
            "scalar": np.array(3.5),
            "flags": np.array([True, False]),
        }
        buf = encode_payload(KIND_BATCH, {"watermark": 1.5, "n": 3}, arrays)
        kind, meta, out = decode_payload(buf)
        assert kind == KIND_BATCH
        assert meta == {"watermark": 1.5, "n": 3}
        assert set(out) == set(arrays)
        for key in arrays:
            assert out[key].dtype == arrays[key].dtype
            assert out[key].shape == arrays[key].shape
            np.testing.assert_array_equal(out[key], arrays[key])

    def test_garbage_rejected(self):
        with pytest.raises(CodecError):
            decode_payload(b"")
        with pytest.raises(CodecError):
            decode_payload(b"\xff" * 40)

    def test_truncation_rejected(self):
        buf = encode_payload(KIND_DELTA, {}, {"x": np.arange(100.0)})
        for cut in (1, len(buf) // 2, len(buf) - 1):
            with pytest.raises(CodecError):
                decode_payload(buf[:cut])


# ---- WAL basics -------------------------------------------------------------------


def _payloads(n, scale=9):
    return [bytes([i & 0xFF]) * (5 + (i * scale) % 23) for i in range(n)]


class TestWriteAheadLog:
    def test_append_replay_roundtrip(self, tmp_path):
        payloads = _payloads(8)
        with WriteAheadLog(str(tmp_path / "wal"), fsync="never") as wal:
            lsns = [wal.append(p) for p in payloads]
            assert lsns == list(range(1, 9))
            assert [(l, p) for l, p in wal.replay()] == list(zip(lsns, payloads))

    def test_reopen_continues_lsn_sequence(self, tmp_path):
        d = str(tmp_path / "wal")
        with WriteAheadLog(d, fsync="never") as wal:
            wal.append(b"one")
        with WriteAheadLog(d, fsync="never") as wal:
            assert wal.last_lsn == 1
            assert wal.append(b"two") == 2
            assert [p for _, p in wal.replay()] == [b"one", b"two"]

    def test_rotation_and_compaction(self, tmp_path):
        d = str(tmp_path / "wal")
        with WriteAheadLog(d, segment_bytes=128, fsync="never") as wal:
            for p in _payloads(20):
                wal.append(p)
            assert wal.num_segments > 2
            assert [l for l, _ in wal.replay()] == list(range(1, 21))
            sealed_last = wal._segments[-2].last_lsn
            removed = wal.compact_below(sealed_last + 1)
            assert removed >= 1
            # everything at/above the cut is still replayable
            assert [l for l, _ in wal.replay()][-1] == 20

    def test_bad_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(str(tmp_path / "wal"), fsync="sometimes")

    def test_lsn_hole_stops_replay(self, tmp_path):
        """Splice a middle record out of the file: the tail after the hole
        is not a committed prefix and must not be replayed."""
        d = str(tmp_path / "wal")
        ends = []
        with WriteAheadLog(d, fsync="never") as wal:
            for p in _payloads(5):
                wal.append(p)
                ends.append(os.path.getsize(wal._segments[-1].path)
                            if False else wal._size)
        seg = os.path.join(d, "wal-00000001.log")
        raw = open(seg, "rb").read()
        # remove record 3 (bytes ends[1]..ends[2]), keeping 4 and 5 intact
        open(seg, "wb").write(raw[: ends[1]] + raw[ends[2]:])
        with WriteAheadLog(d, fsync="never") as wal:
            assert [l for l, _ in wal.replay()] == [1, 2]
        # idempotent: the torn tail was physically truncated
        with WriteAheadLog(d, fsync="never") as wal:
            assert [l for l, _ in wal.replay()] == [1, 2]


# ---- the crash-point sweep (tentpole property test) -------------------------------


def _build_reference_wal(directory):
    """A small single-segment WAL; returns (payloads, per-record end offsets)."""
    payloads = _payloads(6, scale=7)
    ends = []
    with WriteAheadLog(directory, fsync="never") as wal:
        for p in payloads:
            wal.append(p)
            ends.append(wal._size)
    return payloads, ends


def _committed_prefix(payloads, ends, boundary):
    """Records wholly durable below byte offset *boundary*."""
    return [p for p, end in zip(payloads, ends) if end <= boundary]


def _recovered(directory):
    with WriteAheadLog(directory, fsync="never") as wal:
        return [p for _, p in wal.replay()]


class TestCrashPointSweep:
    """Corrupt the log at EVERY byte offset; recovery must equal a clean
    replay of the committed prefix, bit-exactly, and be idempotent."""

    @pytest.fixture()
    def reference(self, tmp_path):
        ref_dir = str(tmp_path / "ref")
        payloads, ends = _build_reference_wal(ref_dir)
        seg = os.path.join(ref_dir, "wal-00000001.log")
        raw = open(seg, "rb").read()
        assert len(raw) == ends[-1]
        return payloads, ends, raw, tmp_path

    def _write_case(self, tmp_path, blob):
        case = str(tmp_path / "case")
        if os.path.isdir(case):
            shutil.rmtree(case)
        os.makedirs(case)
        with open(os.path.join(case, "wal-00000001.log"), "wb") as fh:
            fh.write(blob)
        return case

    def test_truncation_at_every_byte_offset(self, reference):
        payloads, ends, raw, tmp_path = reference
        for cut in range(len(raw) + 1):
            case = self._write_case(tmp_path, raw[:cut])
            expected = (
                [] if cut < _HEADER_SIZE else _committed_prefix(payloads, ends, cut)
            )
            assert _recovered(case) == expected, f"truncation at byte {cut}"
            # re-opening after repair is idempotent
            assert _recovered(case) == expected, f"re-open after cut {cut}"

    def test_bit_flip_at_every_byte_offset(self, reference):
        payloads, ends, raw, tmp_path = reference
        for pos in range(len(raw)):
            blob = bytearray(raw)
            blob[pos] ^= 1 << (pos % 8)
            case = self._write_case(tmp_path, bytes(blob))
            if pos < _HEADER_SIZE:
                expected = []  # header invalid: no committed records
            else:
                # the record containing the flipped byte — and everything
                # after it — is no longer a committed prefix
                start = _HEADER_SIZE
                expected = []
                for p, end in zip(payloads, ends):
                    if start <= pos < end:
                        break
                    expected.append(p)
                    start = end
            assert _recovered(case) == expected, f"bit flip at byte {pos}"
            assert _recovered(case) == expected, f"re-open after flip {pos}"

    def test_duplicated_tail_record(self, reference):
        """A duplicated record (retried write) is skipped exactly once —
        nothing lost, nothing applied twice."""
        payloads, ends, raw, tmp_path = reference
        last = raw[ends[-2]:]
        case = self._write_case(tmp_path, raw + last)
        assert _recovered(case) == payloads
        assert _recovered(case) == payloads


# ---- injected disk faults ---------------------------------------------------------


class TestInjectedDiskFaults:
    def test_torn_write_crashes_then_recovers_prefix(self, tmp_path):
        d = str(tmp_path / "wal")
        inj = FaultInjector(seed=3, disk_torn_write_batches=[(0, 2)])
        with inj:
            wal = WriteAheadLog(d, fsync="never")
            inj.advance(0, 0)
            wal.append(b"record-one")
            inj.advance(0, 1)
            wal.append(b"record-two")
            inj.advance(0, 2)
            with pytest.raises(SimulatedDiskCrash):
                wal.append(b"record-three")
            # the crashed log refuses further use
            with pytest.raises(RuntimeError):
                wal.append(b"record-four")
            wal.close()
        with WriteAheadLog(d, fsync="never") as wal:
            assert [p for _, p in wal.replay()] == [b"record-one", b"record-two"]
            assert wal.stats.repaired_bytes > 0
            assert wal.append(b"record-three") == 3

    def test_silent_write_flip_caught_by_crc(self, tmp_path):
        d = str(tmp_path / "wal")
        inj = FaultInjector(seed=5, disk_flip_write_batches=[(0, 1)])
        with inj:
            wal = WriteAheadLog(d, fsync="never")
            for b in range(4):
                inj.advance(0, b)
                wal.append(bytes([65 + b]) * 12)
            wal.close()
        with WriteAheadLog(d, fsync="never") as wal:
            # flipped record 2 ends the committed prefix; 3 and 4 follow
            # a corrupt record and are discarded with it
            assert [p for _, p in wal.replay()] == [b"A" * 12]

    def test_duplicated_write_deduplicated_on_replay(self, tmp_path):
        d = str(tmp_path / "wal")
        inj = FaultInjector(seed=7, disk_dup_write_batches=[(0, 1)])
        with inj:
            wal = WriteAheadLog(d, fsync="never")
            for b in range(3):
                inj.advance(0, b)
                wal.append(bytes([97 + b]) * 8)
            assert [(l, p) for l, p in wal.replay()] == [
                (1, b"a" * 8), (2, b"b" * 8), (3, b"c" * 8)
            ]
            wal.close()
        with WriteAheadLog(d, fsync="never") as wal:
            assert [l for l, _ in wal.replay()] == [1, 2, 3]

    def test_lost_fsync_drops_unsynced_window(self, tmp_path):
        d = str(tmp_path / "wal")
        inj = FaultInjector(seed=9, disk_lost_fsync_batches=[(0, 5)])
        with inj:
            wal = WriteAheadLog(d, fsync="batch", fsync_interval=3)
            for b in range(6):
                inj.advance(0, b)
                if b < 5:
                    wal.append(bytes([48 + b]) * 6)
                else:
                    with pytest.raises(SimulatedDiskCrash):
                        wal.append(bytes([48 + b]) * 6)
            wal.close()
        with WriteAheadLog(d, fsync="never") as wal:
            # records 1-3 were group-committed; 4-6 died with the fsync
            assert [l for l, _ in wal.replay()] == [1, 2, 3]

    def test_read_flip_is_transient_media_corruption(self, tmp_path):
        d = str(tmp_path / "wal")
        with WriteAheadLog(d, fsync="never") as wal:
            for b in range(3):
                wal.append(bytes([120]) * 10)
        inj = FaultInjector(seed=11, disk_flip_read_batches=[(0, 0)])
        with inj:
            inj.advance(0, 0)
            with WriteAheadLog(d, fsync="never") as wal:
                flipped = [l for l, _ in wal.replay()]
        assert len(flipped) < 3  # corrupted read shortened the prefix
        with WriteAheadLog(d, fsync="never") as wal:
            assert [l for l, _ in wal.replay()] == [1, 2, 3]  # media was fine


# ---- snapshots --------------------------------------------------------------------


class TestSnapshots:
    def test_roundtrip_and_prune(self, tmp_path):
        d = str(tmp_path)
        for lsn in (3, 7, 11):
            write_snapshot(d, lsn, {"k": lsn}, {"x": np.full(4, float(lsn))})
        assert [lsn for lsn, _ in list_snapshots(d)] == [3, 7, 11]
        lsn, meta, arrays = load_latest(d)
        assert (lsn, meta) == (11, {"k": 11})
        np.testing.assert_array_equal(arrays["x"], np.full(4, 11.0))
        assert prune_snapshots(d, keep=1) == 2
        assert [lsn for lsn, _ in list_snapshots(d)] == [11]

    def test_corrupt_newest_falls_back(self, tmp_path):
        d = str(tmp_path)
        write_snapshot(d, 5, {}, {"x": np.arange(3.0)})
        newest = write_snapshot(d, 9, {}, {"x": np.arange(5.0)})
        raw = bytearray(open(newest, "rb").read())
        raw[len(raw) // 2] ^= 0x10
        open(newest, "wb").write(bytes(raw))
        lsn, _, arrays = load_latest(d)
        assert lsn == 5
        assert len(arrays["x"]) == 3


# ---- the durable store ------------------------------------------------------------


class TestDurableStateStore:
    def test_abort_filters_rolled_back_records(self, tmp_path):
        with DurableStateStore(str(tmp_path / "s"), fsync="never") as store:
            keep = store.log_batch({"x": np.arange(3)}, {"tag": "keep"})
            bad = store.log_batch({"x": np.arange(9)}, {"tag": "bad"})
            store.log_abort(bad, "validation failed")
            store.log_marker("note", {"why": "test"})
            state = store.recover()
        assert [r.meta.get("tag") for r in state.records if r.kind == KIND_BATCH] \
            == ["keep"]
        assert state.aborted == 1
        assert any(r.kind == KIND_MARKER for r in state.records)
        assert state.records[0].lsn == keep

    def test_snapshot_anchors_recovery_and_compacts(self, tmp_path):
        d = str(tmp_path / "s")
        with DurableStateStore(d, fsync="never", segment_bytes=256) as store:
            for i in range(12):
                store.log_delta({"x": np.full(8, float(i))}, {"i": i})
            store.snapshot({"state": np.arange(10.0)}, {"upto": 12})
            after = [store.log_delta({"x": np.full(8, -1.0)}, {"i": 99})]
            state = store.recover()
            assert state.snapshot_meta == {"upto": 12}
            np.testing.assert_array_equal(
                state.snapshot_arrays["state"], np.arange(10.0)
            )
            # only the post-snapshot suffix replays
            assert [r.meta["i"] for r in state.records] == [99]
            assert state.records[0].lsn == after[0]
            assert store.compacted_segments >= 1

    def test_recover_is_idempotent(self, tmp_path):
        d = str(tmp_path / "s")
        with DurableStateStore(d, fsync="never") as store:
            store.log_batch({"x": np.arange(4)}, {})
        with DurableStateStore(d, fsync="never") as s1:
            a = s1.recover()
        with DurableStateStore(d, fsync="never") as s2:
            b = s2.recover()
        assert a.snapshot_lsn == b.snapshot_lsn
        assert len(a.records) == len(b.records) == 1
        np.testing.assert_array_equal(a.records[0].arrays["x"],
                                      b.records[0].arrays["x"])


# ---- serve-path durability --------------------------------------------------------


N_NODES = 60
DIM = 8


def _serve_graph(seed=0):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, N_NODES, 300)
    dst = rng.integers(0, N_NODES, 300)
    ts = np.sort(rng.uniform(0, 100, 300))
    return TGraph(src, dst, ts, num_nodes=N_NODES)


def _serve_runtime(g, durable_dir, recover=False, injector=None,
                   snapshot_every=None, fsync="batch"):
    ctx = TContext(g)
    mem = Memory(N_NODES, DIM)
    mailbox = Mailbox(N_NODES, DIM)
    rt = ServeRuntime(
        g, ctx, mem, TSampler(5, seed=3), mailbox=mailbox, deadline=1.0,
        injector=injector, durable_dir=durable_dir, durable_fsync=fsync,
        snapshot_every=snapshot_every, recover=recover,
    )
    return rt, mem, mailbox


def _serve_state(mem, mailbox):
    return (mem.data.data.copy(), mem.time.copy(),
            mailbox.mail.data.copy(), mailbox.time.copy())


def _assert_states_equal(a, b):
    for xa, xb in zip(a, b):
        np.testing.assert_array_equal(xa, xb)


class TestServeDurability:
    def test_recovery_matches_live_state(self, tmp_path):
        g = _serve_graph()
        stream = build_stream(N_NODES, 240, payload_dim=DIM, seed=1)
        d = str(tmp_path / "dur")
        rt, mem, mailbox = _serve_runtime(g, d, snapshot_every=4)
        for b in split_batches(stream, 24):
            rt.submit(b)
        rt.drain()
        rt.close()
        live = _serve_state(mem, mailbox)
        rt2, mem2, mailbox2 = _serve_runtime(g, d, recover=True)
        _assert_states_equal(live, _serve_state(mem2, mailbox2))
        assert rt2.committer.committed_watermark == rt.committer.committed_watermark
        rt2.close()

    def test_crash_mid_commit_loses_only_unacknowledged_batch(self, tmp_path):
        """WAL-then-apply: a torn write during request 3's log append
        kills the process; recovery equals a clean run of requests 0-2."""
        g = _serve_graph()
        stream = build_stream(N_NODES, 150, payload_dim=DIM, seed=2)
        batches = split_batches(stream, 30)
        crashed_dir = str(tmp_path / "crashed")
        inj = FaultInjector(seed=4, disk_torn_write_batches=[(0, 3)])
        rt, mem, mailbox = _serve_runtime(g, crashed_dir, injector=inj,
                                          fsync="always")
        with inj:
            with pytest.raises(SimulatedDiskCrash):
                for b in batches:
                    rt.submit(b)
                    rt.step()
        # clean reference: only the requests that committed before the crash
        clean_dir = str(tmp_path / "clean")
        rt_ref, mem_ref, mailbox_ref = _serve_runtime(g, clean_dir)
        for b in batches[:3]:
            rt_ref.submit(b)
            rt_ref.step()
        rt_ref.close()
        rt2, mem2, mailbox2 = _serve_runtime(g, crashed_dir, recover=True)
        _assert_states_equal(_serve_state(mem_ref, mailbox_ref),
                             _serve_state(mem2, mailbox2))
        assert rt2._recovery["batches_replayed"] == 3
        rt2.close()

    def test_poisoned_batch_aborted_not_reapplied(self, tmp_path):
        """A batch rolled back by validation gets an abort record, so
        recovery skips it: recovered state equals the live state."""
        g = _serve_graph()
        stream = build_stream(N_NODES, 150, payload_dim=DIM, seed=3)
        d = str(tmp_path / "dur")
        inj = FaultInjector(seed=6, serve_poison_batches=[(0, 1)])
        rt, mem, mailbox = _serve_runtime(g, d, injector=inj)
        with inj:
            for b in split_batches(stream, 30):
                rt.submit(b)
                rt.step()
        rt.close()
        assert rt.committer.stats.rollbacks == 1
        live = _serve_state(mem, mailbox)
        rt2, mem2, mailbox2 = _serve_runtime(g, d, recover=True)
        _assert_states_equal(live, _serve_state(mem2, mailbox2))
        assert rt2._recovery["aborted_skipped"] == 1
        rt2.close()

    def test_recovery_is_idempotent(self, tmp_path):
        g = _serve_graph()
        stream = build_stream(N_NODES, 120, payload_dim=DIM, seed=4)
        d = str(tmp_path / "dur")
        rt, mem, mailbox = _serve_runtime(g, d)
        for b in split_batches(stream, 40):
            rt.submit(b)
        rt.drain()
        rt.close()
        rt_a, mem_a, mb_a = _serve_runtime(g, d, recover=True)
        rt_a.close()
        rt_b, mem_b, mb_b = _serve_runtime(g, d, recover=True)
        rt_b.close()
        _assert_states_equal(_serve_state(mem_a, mb_a), _serve_state(mem_b, mb_b))


# ---- prefix-consistent WAL tailing (the serve→train transport) --------------------


def _marker_payload(i):
    return encode_payload(KIND_MARKER, {"i": i}, {})


class TestWALCursorTailing:
    def test_live_tail_is_monotonic_gap_free_with_holdback(self, tmp_path):
        d = str(tmp_path / "wal")
        with WriteAheadLog(d, fsync="never") as wal:
            cursor = WALCursor(d, name="tail")
            seen = []
            for i in range(6):
                wal.append(_marker_payload(i))
                seen.extend(r.lsn for r in cursor.poll())
                # the newest committed record is held back for abort lag
                assert seen == list(range(1, i + 1))
            seen.extend(r.lsn for r in cursor.poll(final=True))
        assert seen == [1, 2, 3, 4, 5, 6]
        assert cursor.poll(final=True) == []  # exactly once, ever

    def test_aborted_batch_is_never_delivered(self, tmp_path):
        d = str(tmp_path / "s")
        with DurableStateStore(d, fsync="never") as store:
            cursor = WALCursor(d, name="learner")
            store.log_batch({"x": np.arange(3)}, {"tag": "keep"})
            bad = store.log_batch({"x": np.arange(9)}, {"tag": "poisoned"})
            store.log_abort(bad, "validation failed")
            # the abort is itself the newest (held-back) record, yet it
            # still vetoes its now-deliverable target
            out = cursor.poll()
            assert [r.meta.get("tag") for r in out] == ["keep"]
            store.log_marker("epoch", {})
            out = cursor.poll(final=True)
            assert [r.kind for r in out] == [KIND_MARKER]

    def test_restarted_cursor_resumes_without_redelivery(self, tmp_path):
        d = str(tmp_path / "wal")
        with WriteAheadLog(d, fsync="never") as wal:
            for i in range(5):
                wal.append(_marker_payload(i))
        c1 = WALCursor(d, name="tail")
        assert [r.lsn for r in c1.poll()] == [1, 2, 3, 4]  # lsn 5 held back
        c2 = WALCursor(d, name="tail")  # reader process restart
        assert [r.lsn for r in c2.poll(final=True)] == [5]
        assert WALCursor(d, name="tail").poll(final=True) == []

    def test_torn_cursor_state_only_costs_redelivery(self, tmp_path):
        d = str(tmp_path / "wal")
        with WriteAheadLog(d, fsync="never") as wal:
            for i in range(3):
                wal.append(_marker_payload(i))
        c1 = WALCursor(d, name="tail")
        c1.poll(final=True)
        with open(c1.state_path, "w") as fh:
            fh.write("{torn")
        c2 = WALCursor(d, name="tail")
        assert [r.lsn for r in c2.poll(final=True)] == [1, 2, 3]

    def test_flipped_write_stops_the_tail_at_the_damage(self, tmp_path):
        d = str(tmp_path / "wal")
        inj = FaultInjector(seed=21, disk_flip_write_batches=[(0, 2)])
        delivered = []
        with inj:
            wal = WriteAheadLog(d, fsync="never")
            cursor = WALCursor(d, name="tail")
            for b in range(5):
                inj.advance(0, b)
                wal.append(_marker_payload(b))
                delivered.extend(cursor.poll())
            delivered.extend(cursor.poll(final=True))
            wal.close()
        # record 3 was silently flipped on write; 4-5 sit past the
        # corruption.  The tail is exactly the committed prefix: never a
        # torn, out-of-order, or duplicate record.
        assert [r.lsn for r in delivered] == [1, 2]
        assert [r.meta["i"] for r in delivered] == [0, 1]

    def test_torn_write_then_repair_keeps_cursor_valid(self, tmp_path):
        d = str(tmp_path / "wal")
        inj = FaultInjector(seed=23, disk_torn_write_batches=[(0, 2)])
        cursor = WALCursor(d, name="tail")
        with inj:
            wal = WriteAheadLog(d, fsync="never")
            for b in range(2):
                inj.advance(0, b)
                wal.append(_marker_payload(b))
            inj.advance(0, 2)
            with pytest.raises(SimulatedDiskCrash):
                wal.append(_marker_payload(2))
            # torn bytes are on disk; the tail must not observe them
            assert [r.lsn for r in cursor.poll(final=True)] == [1, 2]
            wal.close()
        # the restarted writer truncates the torn tail and reuses lsn 3;
        # the cursor's delivered history (1-2) is untouched, so it keeps
        # tailing seamlessly
        with WriteAheadLog(d, fsync="never") as wal:
            wal.append(_marker_payload(99))
        out = cursor.poll(final=True)
        assert [(r.lsn, r.meta["i"]) for r in out] == [(3, 99)]

    def test_transient_read_corruption_defers_never_corrupts(self, tmp_path):
        d = str(tmp_path / "wal")
        with WriteAheadLog(d, fsync="never") as wal:
            for i in range(3):
                wal.append(_marker_payload(i))
        cursor = WALCursor(d, name="tail")
        inj = FaultInjector(seed=25, disk_flip_read_batches=[(0, 0)])
        with inj:
            inj.advance(0, 0)
            first = cursor.poll(final=True)  # corrupted read: short prefix
        later = cursor.poll(final=True)  # media was fine: the rest arrives
        assert [r.lsn for r in first + later] == [1, 2, 3]
        assert [r.meta["i"] for r in first + later] == [0, 1, 2]

    def test_lost_fsync_timeline_change_raises(self, tmp_path):
        d = str(tmp_path / "wal")
        wal = WriteAheadLog(d, fsync="never")
        wal.append(_marker_payload(0))
        durable_end = wal._size
        wal.append(_marker_payload(1))
        wal.close()
        cursor = WALCursor(d, name="tail")
        assert [r.lsn for r in cursor.poll(final=True)] == [1, 2]
        # lost-fsync crash: record 2's bytes never reached the platter...
        seg = os.path.join(d, "wal-00000001.log")
        with open(seg, "r+b") as fh:
            fh.truncate(durable_end)
        # ...and the restarted writer reissues lsn 2 with different content
        with WriteAheadLog(d, fsync="never") as wal2:
            assert wal2.append(_marker_payload(7)) == 2
        with pytest.raises(CursorInvalidated, match="divergent timeline"):
            cursor.poll()
        # reset redelivers the surviving history; the caller owns dedup
        cursor.reset()
        out = cursor.poll(final=True)
        assert [(r.lsn, r.meta["i"]) for r in out] == [(1, 0), (2, 7)]

    def test_vanished_record_raises(self, tmp_path):
        d = str(tmp_path / "wal")
        wal = WriteAheadLog(d, fsync="never")
        wal.append(_marker_payload(0))
        durable_end = wal._size
        wal.append(_marker_payload(1))
        wal.close()
        cursor = WALCursor(d, name="tail")
        assert [r.lsn for r in cursor.poll(final=True)] == [1, 2]
        with open(os.path.join(d, "wal-00000001.log"), "r+b") as fh:
            fh.truncate(durable_end)
        with pytest.raises(CursorInvalidated, match="no longer exists"):
            cursor.poll()

    def test_compaction_past_cursor_raises(self, tmp_path):
        d = str(tmp_path / "wal")
        with WriteAheadLog(d, segment_bytes=64, fsync="never") as wal:
            for i in range(3):
                wal.append(_marker_payload(i))
            cursor = WALCursor(d, name="slow")
            assert [r.lsn for r in cursor.poll()] == [1, 2]
            for i in range(3, 12):
                wal.append(_marker_payload(i))
            sealed_last = wal._segments[-2].last_lsn
            assert sealed_last > 2
            assert wal.compact_below(sealed_last + 1) >= 1
            with pytest.raises(CursorInvalidated, match="compacted past"):
                cursor.poll()


# ---- training-path delta log ------------------------------------------------------


class TestTrainerDeltaLog:
    def test_delta_resume_is_bit_exact(self, tmp_path):
        from repro.bench import ResilientTrainer
        from repro.bench.experiments import Experiment, ExperimentConfig
        from repro.resilience import SimulatedProcessKill

        def experiment():
            return Experiment(ExperimentConfig(
                model="tgn", dataset="wiki", framework="tglite+opt", epochs=2,
                batch_size=300, dim_embed=8, dim_time=8, dim_mem=8,
                num_layers=1, seed=7,
            ))

        def fingerprint(exp):
            return ([p.data.copy() for p in exp.model.parameters()],
                    exp.g.mem.data.data.copy(), exp.g.mem.time.copy(),
                    exp.g.mailbox.mail.data.copy(), exp.g.mailbox.time.copy())

        def run(subdir, injector=None, resume=False):
            exp = experiment()
            trainer = ResilientTrainer(
                exp.model, exp.g, exp.optimizer, exp.neg_sampler,
                batch_size=300, checkpoint_dir=str(tmp_path / subdir),
                checkpoint_every=2, injector=injector, delta_log=True,
            )
            try:
                result = trainer.train(epochs=2, train_end=900, resume=resume)
            finally:
                trainer.close()
                exp.close()
            return result, fingerprint(exp)

        _, fp_clean = run("clean")
        inj = FaultInjector(seed=5, process_kill_at=(1, 1))
        with pytest.raises(SimulatedProcessKill):
            run("killed", injector=inj)
        resumed, fp_resumed = run("killed", resume=True)
        assert resumed.events[0].kind == "resume"
        # the delta log fast-forwarded past the last full checkpoint
        assert "logged deltas" in resumed.events[0].detail
        for pa, pb in zip(fp_clean[0], fp_resumed[0]):
            np.testing.assert_array_equal(pa, pb)
        for xa, xb in zip(fp_clean[1:], fp_resumed[1:]):
            np.testing.assert_array_equal(xa, xb)


# ---- fault-injector registry ------------------------------------------------------


class TestFaultRegistry:
    def test_unknown_decision_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown fault decision"):
            FaultInjector(rates={"disk.write.melt": 0.5})
        with pytest.raises(ValueError, match="unknown fault decision"):
            FaultInjector(schedules={"bogus.site": [(0, 0)]})

    def test_every_decision_maps_to_a_registered_site(self):
        for decision, site in DECISIONS.items():
            assert site in SITES, f"{decision} -> {site} missing from SITES"

    def test_disk_sites_registered(self):
        for site in ("disk.write", "disk.fsync", "disk.read"):
            assert site in SITES


# ---- checkpoint satellites --------------------------------------------------------


class _TinyModel(nn.Module):
    def __init__(self):
        super().__init__()
        self.lin = nn.Linear(4, 2)


class TestCheckpointIntegritySurfacing:
    def test_v2_checkpoint_reports_verified(self, tmp_path):
        from repro.bench.checkpoint import load_checkpoint, save_checkpoint

        model = _TinyModel()
        path = str(tmp_path / "ck.npz")
        save_checkpoint(path, model)
        meta = load_checkpoint(path, model)
        assert meta["verified"] is True

    def test_missing_crc_warns_and_reports_unverified(self, tmp_path):
        from repro.bench.checkpoint import load_checkpoint, save_checkpoint

        model = _TinyModel()
        path = str(tmp_path / "ck.npz")
        save_checkpoint(path, model)
        # strip the CRC section, as a version-1 archive would lack it
        with np.load(path) as archive:
            arrays = {k: archive[k] for k in archive.files if k != "meta/crc32"}
        with open(path, "wb") as fh:
            np.savez(fh, **arrays)
        with pytest.warns(RuntimeWarning, match="no stored CRC32"):
            meta = load_checkpoint(path, model)
        assert meta["verified"] is False

    def test_fsync_dir_tolerates_bad_path(self):
        assert fsync_dir("/definitely/not/a/real/directory") is False
