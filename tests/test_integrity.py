"""Tests for `repro.integrity`: digests, anti-entropy scrubbing, repair.

Covers the digest primitives (canonical encoding, chunked maintained
digests, merkle rollup/descent), the cluster scrub lifecycle — a single
injected bit flip in any tier (memory, mailbox, WAL, cold) is detected
within one scrub cycle and repaired back to bit-identical state — the
arbitration regimes (peer/quorum at factor >= 2, WAL-suffix resync at
factor 1), the ``scrub.skip`` suspect window with read-repair, the
zero-false-positive guarantee on clean chaos runs, and the
:class:`IntegrityUnrepairable` refusal paths when every repair source is
degraded.
"""

import os

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ServeCluster
from repro.core import Mailbox, Memory, TContext, TGraph, TSampler
from repro.integrity import (
    ChunkedDigest,
    IntegrityUnrepairable,
    Scrubber,
    array_digest,
    canonical_bytes,
    merkle_diff,
    merkle_root,
)
from repro.resilience import FaultInjector
from repro.serve import ServeRuntime, SimClock, build_stream, replay, split_batches
from repro.store import ColdTier

N = 60
DIM = 8


def _stream(events=400, seed=1):
    return build_stream(N, events, payload_dim=DIM, seed=seed)


def _cluster(stream, factor=1, injector=None, **cfg_kw):
    g = TGraph(stream.src, stream.dst, stream.ts, num_nodes=N)
    ctx = TContext(g)
    config = ClusterConfig(
        num_shards=4, replication_factor=factor, **cfg_kw
    )
    cluster = ServeCluster(
        g, ctx, TSampler(10, seed=3), DIM, config=config,
        injector=injector, stream=stream, deadline=1.0, max_queue=1 << 30,
    )
    return ctx, cluster


def _single_digests(stream, batches, load=16.0):
    """(memory, mailbox) digests of a clean single-runtime replay."""
    g = TGraph(stream.src, stream.dst, stream.ts, num_nodes=N)
    ctx = TContext(g)
    mem = Memory(N, DIM)
    mailbox = Mailbox(N, DIM)
    runtime = ServeRuntime(g, ctx, mem, TSampler(10, seed=3),
                           mailbox=mailbox, deadline=1.0, max_queue=1 << 30)
    replay(runtime, batches, load=load)
    return mem.state_digest(), mailbox.state_digest()


def _cluster_digests(cluster):
    """(memory, mailbox) digests of the assembled cluster images."""
    data, times = cluster.memory_image()
    mail, mtime, cursor = cluster.mailbox_image()
    mail_d = (array_digest(mail, mtime) if cursor is None
              else array_digest(mail, mtime, cursor))
    return array_digest(data, times), mail_d


# ---------------------------------------------------------------------------
# Digest primitives
# ---------------------------------------------------------------------------

class TestDigestPrimitives:
    def test_canonical_bytes_pins_dtype_and_shape(self):
        a = np.arange(6, dtype=np.float32).reshape(2, 3)
        assert canonical_bytes(a) == canonical_bytes(a.copy())
        # same bytes, different shape / dtype must not collide
        assert canonical_bytes(a) != canonical_bytes(a.reshape(3, 2))
        assert canonical_bytes(a) != canonical_bytes(a.view(np.int32))
        # non-contiguous views hash as their logical content
        b = np.arange(12, dtype=np.float32).reshape(3, 4)
        assert canonical_bytes(b[:, ::2]) == canonical_bytes(
            np.ascontiguousarray(b[:, ::2]))

    def test_array_digest_detects_single_bit_flip(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(16, DIM)).astype(np.float32)
        times = rng.uniform(size=16)
        before = array_digest(data, times)
        flat = data.view(np.uint8).reshape(-1)
        flat[137] ^= np.uint8(1 << 5)
        assert array_digest(data, times) != before
        flat[137] ^= np.uint8(1 << 5)
        assert array_digest(data, times) == before
        # argument order matters (memory vs mailbox can't alias)
        assert array_digest(data, times) != array_digest(times, data)

    def test_merkle_root_and_diff_localize(self):
        leaves = [array_digest(np.array([i])) for i in range(9)]
        assert merkle_root(leaves) == merkle_root(list(leaves))
        assert merkle_diff(leaves, list(leaves)) == []
        changed = list(leaves)
        changed[3] = array_digest(np.array([99]))
        changed[7] = array_digest(np.array([98]))
        assert merkle_diff(leaves, changed) == [3, 7]
        assert merkle_root(changed) != merkle_root(leaves)
        # empty and length-mismatched summaries degrade safely
        assert merkle_diff([], []) == []
        assert merkle_root([]) == merkle_root([])
        assert merkle_diff(leaves, leaves[:4]) == [0, 1, 2, 3]

    def test_chunked_digest_incremental_matches_recompute(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(70, DIM)).astype(np.float32)
        times = rng.uniform(size=70)
        cd = ChunkedDigest(lambda lo, hi: (data[lo:hi], times[lo:hi]),
                           70, chunk_rows=16)
        assert cd.num_chunks == 5
        for _ in range(5):
            rows = rng.integers(0, 70, size=8)
            data[rows] = rng.normal(size=(8, DIM)).astype(np.float32)
            times[rows] = rng.uniform(size=8)
            cd.record_rows(rows)
        # O(dirty-rows) maintenance equals a from-scratch rehash
        assert cd.digests == cd.compute()
        assert cd.diverged() == []
        assert cd.root() == merkle_root(cd.compute())

    def test_chunked_digest_is_tamper_evident(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(64, DIM)).astype(np.float32)
        cd = ChunkedDigest(lambda lo, hi: (data[lo:hi],), 64, chunk_rows=16)
        # out-of-band mutation (no record_rows) localizes to its chunk
        data.view(np.uint8).reshape(-1)[40 * DIM * 4] ^= np.uint8(1)
        assert cd.diverged() == [2]
        # a legitimate write through record_rows re-adopts the state
        cd.record_rows(np.array([40]))
        assert cd.diverged() == []


# ---------------------------------------------------------------------------
# Scrub lifecycle: detect -> localize -> arbitrate -> repair -> verify
# ---------------------------------------------------------------------------

def _flip_and_drain(cluster, tier, factor):
    """Flip one bit of shard 1's last member after the final write."""
    group = cluster.groups[1]
    member = factor - 1
    assert cluster._apply_bitflip(group, member, ("flip", tier, 12345, 3))
    cluster.drain()  # terminal anti-entropy pass runs scrub_now()
    return group, member


@pytest.mark.parametrize("tier", ["memory", "mailbox"])
@pytest.mark.parametrize("factor", [1, 2, 3])
def test_flip_detected_and_repaired_bit_identical(tier, factor):
    stream = _stream(400)
    batches = split_batches(stream, 40)
    ctx, cluster = _cluster(stream, factor=factor)
    with cluster:
        replay(cluster, batches, load=16.0)
        group, member = _flip_and_drain(cluster, tier, factor)
        stats = cluster.stats()
        # detected within one cycle and repaired in place
        assert stats["integrity:divergences"] >= 1
        assert stats["integrity:rows_repaired"] >= 1
        if factor == 1:
            # no peer: the member's own durable evidence repairs it
            assert stats["integrity:wal_resyncs"] >= 1
        else:
            assert stats["integrity:peer_repairs"] >= 1
        if factor >= 3:
            assert stats["integrity:quorum_repairs"] >= 1
        # repaired member agrees with its peers, bit for bit
        for rep in group.members:
            for comp, cd in rep.digests.components():
                assert cd.diverged() == []
        digests = _cluster_digests(cluster)
    assert digests == _single_digests(stream, batches)


@pytest.mark.parametrize("factor", [1, 2])
def test_wal_flip_reanchors_log_on_verified_state(factor):
    stream = _stream(400)
    batches = split_batches(stream, 40)
    ctx, cluster = _cluster(stream, factor=factor)
    with cluster:
        replay(cluster, batches, load=16.0)
        group, member = _flip_and_drain(cluster, "wal", factor)
        stats = cluster.stats()
        assert stats["integrity:divergences"] >= 1
        assert stats["integrity:wal_segment_repairs"] >= 1
        assert stats["integrity:wal_segments_dropped"] >= 1
        rep = group.members[member]
        # the log parses clean again and still arbitrates recovery
        assert rep.verify_wal() == []
        assert rep.shadow_state() is not None
        digests = _cluster_digests(cluster)
    assert digests == _single_digests(stream, batches)


def test_scheduled_mem_flip_via_fault_site():
    """The ``mem.flip`` chaos site injects a deterministic silent flip
    that the next scrub detects and repairs to bit-identical state."""
    stream = _stream(400)
    batches = split_batches(stream, 40)
    inj = FaultInjector(seed=5, mem_flips=[(1, 0, 1)], mem_flip_tier="memory")
    ctx, cluster = _cluster(stream, factor=2, injector=inj)
    with cluster, inj:
        replay(cluster, batches, load=16.0)
        # fire the scheduled flip after the last write so no later
        # legitimate overwrite can heal it before the scrubber looks
        inj.advance(1, 0)
        cluster._chaos()
        cluster.drain()
        stats = cluster.stats()
        assert stats["cluster:injected_flips"] == 1
        assert ctx.counters.get("integrity:injected_flips", 0) == 1
        assert stats["integrity:divergences"] >= 1
        assert stats["integrity:rows_repaired"] >= 1
        assert any(e.site == "mem.flip" for e in inj.log)
        digests = _cluster_digests(cluster)
    assert digests == _single_digests(stream, batches)


def test_scrub_skip_counts_cycles_and_stays_clean():
    stream = _stream(400)
    batches = split_batches(stream, 40)
    inj = FaultInjector(seed=3, scrub_skips=[0])
    # interval far below the simulated replay span so periodic cycles
    # actually come due (the default 0.25 s outlives this short stream)
    ctx, cluster = _cluster(stream, factor=1, injector=inj,
                            scrub_interval=1e-3)
    with cluster, inj:
        replay(cluster, batches, load=16.0)
        cluster.drain()
        stats = cluster.stats()
        assert stats["integrity:skipped_cycles"] >= 1
        assert stats["integrity:cycles"] >= 1
        # a completed cycle closed the suspect window again
        assert not cluster.scrubber.suspect_window
        # skipping detection on a clean run must not invent divergence
        assert stats["integrity:divergences"] == 0
        assert any(e.site == "scrub.skip" for e in inj.log)
        digests = _cluster_digests(cluster)
    assert digests == _single_digests(stream, batches)


def test_guard_read_repairs_touched_chunks_in_suspect_window():
    stream = _stream(400)
    batches = split_batches(stream, 40)
    ctx, cluster = _cluster(stream, factor=1)
    with cluster:
        replay(cluster, batches, load=16.0)
        group = cluster.groups[1]
        rep = group.members[0]
        assert cluster._apply_bitflip(group, 0, ("flip", "memory", 999, 2))
        scrubber = cluster.scrubber
        # outside a suspect window reads trust the periodic scrubber
        scrubber.guard_read(1, group, 0, rep.owned)
        assert scrubber.counters["read_repairs"] == 0
        # inside one (a skipped cycle) the read verifies its rows first
        scrubber.suspect_window = True
        scrubber.guard_read(1, group, 0, rep.owned)
        assert scrubber.counters["read_repairs"] == 1
        assert scrubber.counters["divergences"] >= 1
        for comp, cd in rep.digests.components():
            assert cd.diverged() == []
        digests = _cluster_digests(cluster)
    assert digests == _single_digests(stream, batches)


def test_clean_chaos_run_has_zero_false_positives():
    """Crashes, promotions, and lossy RPC are not corruption: the
    scrubber must stay silent across a full chaos schedule."""
    stream = _stream(600)
    batches = split_batches(stream, 40)
    inj = FaultInjector(
        seed=7,
        shard_crashes={(0, 5, 1)},  # shard 1's primary
        heartbeat_drop_rate=0.02,
        rpc_send_drop_rate=0.05,
    )
    ctx, cluster = _cluster(stream, factor=2, injector=inj)
    with cluster, inj:
        results = replay(cluster, batches, load=16.0)
        stats = cluster.stats()
        digests = _cluster_digests(cluster)
    assert stats["cluster:injected_crashes"] >= 1
    assert all(r.status == "ok" for r in results)
    assert stats["integrity:cycles"] >= 1
    assert stats["integrity:chunks_scrubbed"] > 0
    assert stats["integrity:divergences"] == 0
    assert stats["integrity:rows_repaired"] == 0
    assert digests == _single_digests(stream, batches)


def test_member_integrity_summaries_agree_after_clean_replay():
    stream = _stream(400)
    batches = split_batches(stream, 40)
    ctx, cluster = _cluster(stream, factor=2)
    with cluster:
        replay(cluster, batches, load=16.0)
        for group in cluster.groups:
            roots = [m.integrity_summary()["components"] for m in group.members]
            for other in roots[1:]:
                assert other["memory"] == roots[0]["memory"]
                assert other["mailbox"] == roots[0]["mailbox"]


def test_unrepairable_when_no_peer_and_evidence_damaged():
    """Corrupt primary, crashed follower, damaged WAL evidence: the
    scrubber must refuse (raise) rather than silently serve bad rows."""
    stream = _stream(400)
    batches = split_batches(stream, 40)
    ctx, cluster = _cluster(stream, factor=2)
    with cluster:
        replay(cluster, batches, load=16.0)
        group = cluster.groups[1]
        group.members[1].crash()  # the only possible donor
        rep = group.members[0]
        assert cluster._apply_bitflip(group, 0, ("flip", "memory", 777, 1))
        # damage the durable evidence: break the newest WAL record so a
        # shadow replay falls short of the applied sequence
        path = max(rep.store.wal.segment_paths(), key=os.path.getsize)
        with open(path, "r+b") as fh:
            fh.seek(os.path.getsize(path) - 8)
            byte = fh.read(1)
            fh.seek(-1, os.SEEK_CUR)
            fh.write(bytes([byte[0] ^ 0xFF]))
        assert rep.shadow_state() is None
        with pytest.raises(IntegrityUnrepairable) as err:
            cluster.scrubber.scrub_now()
        assert err.value.component == "memory"
        assert err.value.shard == 1 and err.value.member == 0


# ---------------------------------------------------------------------------
# Cold-tier scrubbing (satellite: degraded source must raise, not serve)
# ---------------------------------------------------------------------------

def _cold_with_rows(rng, directory=None, rows=12):
    ct = ColdTier(DIM, directory=directory)
    nodes = np.arange(rows, dtype=np.int64)
    times = np.linspace(1.0, 2.0, rows)
    data = rng.normal(size=(rows, DIM)).astype(np.float32)
    ct.write(nodes, times, data)
    return ct, nodes, times, data


def _rot_backing(ct, slot=0):
    """Corrupt the backing rows themselves (not just one read)."""
    np.asarray(ct._rows)[slot] += 1.0


def test_cold_read_raises_when_backing_degraded(tmp_path):
    ct, nodes, times, _ = _cold_with_rows(
        np.random.default_rng(0), directory=str(tmp_path))
    _rot_backing(ct, slot=3)
    # the clean re-read returns the same rotted bytes: refuse to serve
    with pytest.raises(IntegrityUnrepairable) as err:
        ct.read(nodes, times)
    assert err.value.component == "cold"
    assert err.value.rows >= 1


def test_cold_scrub_repairs_from_source(tmp_path):
    rng = np.random.default_rng(1)
    ct, nodes, times, data = _cold_with_rows(rng, directory=str(tmp_path))
    _rot_backing(ct, slot=5)

    def source(ns, ts):
        return data[np.asarray(ns, dtype=np.int64)]

    res = ct.scrub(source=source)
    assert res["corrupt"] == 1 and res["repaired"] == 1
    assert np.array_equal(ct.read(nodes, times), data)
    # a second pass finds nothing: the repair stuck
    assert ct.scrub(source=source)["corrupt"] == 0


def test_cold_scrub_drops_cache_rows_without_source():
    ct, nodes, times, _ = _cold_with_rows(np.random.default_rng(2))
    _rot_backing(ct, slot=2)
    res = ct.scrub()
    assert res["corrupt"] == 1 and res["dropped"] == 1
    # the dropped key faults through (absent), instead of serving garbage
    assert not ct.contains(nodes, times)[2]
    with pytest.raises(KeyError):
        ct.read(nodes[2:3], times[2:3])
    # and it does not re-flag forever
    assert ct.scrub()["corrupt"] == 0


def test_cold_scrub_authority_rows_raise_without_source():
    ct, _, _, _ = _cold_with_rows(np.random.default_rng(3))
    _rot_backing(ct, slot=1)
    with pytest.raises(IntegrityUnrepairable):
        ct.scrub(authority=True)


def test_scrubber_scrubs_registered_cold_tiers():
    rng = np.random.default_rng(4)
    ct, nodes, times, data = _cold_with_rows(rng)
    scrubber = Scrubber([], SimClock(), interval=None)
    scrubber.add_cold_tier(ct, source=lambda ns, ts: data[np.asarray(ns)])
    assert scrubber.scrub_now()["divergences"] == 0
    _rot_backing(ct, slot=7)
    delta = scrubber.scrub_now()
    assert delta["divergences"] == 1 and delta["rows_repaired"] == 1
    stats = scrubber.stats()
    assert stats["integrity:cold_rows_checked"] == 2 * len(nodes)
    assert stats["integrity:cold_rows_repaired"] == 1
    assert np.array_equal(ct.read(nodes, times), data)
