"""Smoke checks that every example script is importable and well-formed.

Running the examples end-to-end takes minutes each; these tests verify the
cheap invariants instead: each script parses, imports only available
modules, defines a ``main`` entry point, and guards it behind
``__main__``.  (The examples themselves are executed as part of the
documented workflow; see README.)
"""

import ast
import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
SCRIPTS = sorted(f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py"))


@pytest.mark.parametrize("script", SCRIPTS)
class TestExampleScripts:
    def _source(self, script):
        with open(os.path.join(EXAMPLES_DIR, script)) as fh:
            return fh.read()

    def test_parses_and_has_docstring(self, script):
        tree = ast.parse(self._source(script))
        assert ast.get_docstring(tree), f"{script} needs a module docstring"

    def test_defines_main_with_guard(self, script):
        tree = ast.parse(self._source(script))
        has_main = any(
            isinstance(node, ast.FunctionDef) and node.name == "main"
            for node in tree.body
        )
        assert has_main, f"{script} must define main()"
        guard = any(
            isinstance(node, ast.If)
            and isinstance(node.test, ast.Compare)
            and getattr(node.test.left, "id", "") == "__name__"
            for node in tree.body
        )
        assert guard, f"{script} must guard main() behind __main__"

    def test_imports_resolve(self, script):
        """Importing the module (without running main) must succeed."""
        path = os.path.join(EXAMPLES_DIR, script)
        name = f"example_{script[:-3]}"
        spec = importlib.util.spec_from_file_location(name, path)
        module = importlib.util.module_from_spec(spec)
        old_argv = sys.argv
        sys.argv = [path]  # scripts reading argv get a clean slate
        try:
            spec.loader.exec_module(module)
        finally:
            sys.argv = old_argv
        assert callable(module.main)


def test_expected_example_set_present():
    names = set(SCRIPTS)
    assert {
        "quickstart.py",
        "fraud_detection_tgn.py",
        "recommendation_jodie_apan.py",
        "custom_operator.py",
        "discrete_time_snapshots.py",
        "multi_gpu_scaling.py",
        "dropout_prediction_nodeclass.py",
        "workload_profiling.py",
        "tgl_config_training.py",
    } <= names
