"""Tests for the sharded serving cluster (`repro.cluster`).

Covers both partitioning policies (determinism, stability between
rebalance boundaries, balance bounds — property-based via hypothesis),
the simulated RPC layer (retry/backoff, hedged sends, drop sites), the
per-shard WAL failover path (crash -> prefix-consistent respawn,
duplicate-apply idempotence), supervisor failure detection and hot-spot
rebalancing, and the headline guarantee: under chaos at 16x load with a
shard killed mid-stream, the cluster keeps serving and its final
assembled Memory/Mailbox state is bit-identical to a clean
single-replica replay.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import (
    ClusterConfig,
    ReplicaDown,
    RpcTimeout,
    ServeCluster,
    ShardReplica,
    ShardRouter,
    SimRpc,
    hash_shard,
)
from repro.core import Mailbox, Memory, TContext, TGraph, TSampler
from repro.integrity import array_digest
from repro.resilience import FaultInjector
from repro.resilience import hooks
from repro.serve import (
    EventBatch,
    ServeRuntime,
    SimClock,
    build_stream,
    replay,
    split_batches,
)

N = 60
DIM = 8


def _stream(events=600, num_nodes=N, seed=1):
    return build_stream(num_nodes, events, payload_dim=DIM, seed=seed)


def _cluster(stream, num_nodes=N, config=None, injector=None, **kw):
    g = TGraph(stream.src, stream.dst, stream.ts, num_nodes=num_nodes)
    ctx = TContext(g)
    kw.setdefault("deadline", 1.0)
    kw.setdefault("max_queue", 1 << 30)
    cluster = ServeCluster(
        g, ctx, TSampler(10, seed=3), DIM,
        config=config or ClusterConfig(num_shards=4),
        injector=injector, stream=stream, **kw,
    )
    return ctx, cluster


def _single_images(stream, batches, num_nodes=N, load=16.0):
    """Final Memory/Mailbox state of a clean single-runtime replay."""
    g = TGraph(stream.src, stream.dst, stream.ts, num_nodes=num_nodes)
    ctx = TContext(g)
    mem = Memory(num_nodes, DIM)
    mailbox = Mailbox(num_nodes, DIM)
    runtime = ServeRuntime(g, ctx, mem, TSampler(10, seed=3), mailbox=mailbox,
                           deadline=1.0, max_queue=1 << 30)
    replay(runtime, batches, load=load)
    return mem, mailbox


def _cluster_digests(cluster):
    """(memory, mailbox) state digests of the assembled cluster images."""
    data, times = cluster.memory_image()
    mem_d = array_digest(data, times)
    img = cluster.mailbox_image()
    if img is None:
        return mem_d, None
    mail, mtime, cursor = img
    mail_d = (array_digest(mail, mtime) if cursor is None
              else array_digest(mail, mtime, cursor))
    return mem_d, mail_d


def _single_digests(stream, batches, num_nodes=N, load=16.0):
    """(memory, mailbox) state digests of a clean single-runtime replay."""
    mem, mailbox = _single_images(stream, batches, num_nodes, load)
    return mem.state_digest(), mailbox.state_digest()


def _replica(tmp_path, owned, name="shard", **kw):
    return ShardReplica(0, np.asarray(owned), N, DIM,
                        str(tmp_path / name), **kw)


def _payload_batch(eids, src, dst, ts, seed=0):
    rng = np.random.default_rng(seed)
    return EventBatch(np.asarray(eids), np.asarray(src), np.asarray(dst),
                      np.asarray(ts, dtype=np.float64),
                      rng.normal(size=(len(eids), DIM)).astype(np.float32))


# ---------------------------------------------------------------------------
# Partitioning (satellite: property-based policy tests)
# ---------------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(st.integers(1, 500), st.integers(1, 8), st.integers(0, 2**32))
def test_hash_partition_deterministic_and_in_range(num_nodes, shards, seed):
    a = ShardRouter.hash(num_nodes, shards, seed=seed)
    b = ShardRouter.hash(num_nodes, shards, seed=seed)
    assert np.array_equal(a.assign, b.assign)
    assert a.assign.min() >= 0 and a.assign.max() < shards
    # and a pure function of the node id: subsetting agrees with the table
    nodes = np.arange(num_nodes)
    assert np.array_equal(hash_shard(nodes, shards, seed=seed), a.assign)


@st.composite
def zipf_streams(draw):
    """Heavily skewed (zipf-like) event streams over a small node set."""
    num_nodes = draw(st.integers(4, 80))
    num_events = draw(st.integers(1, 400))
    shards = draw(st.integers(1, min(6, num_nodes)))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    # zipf ranks clipped into the node range: a few nodes get most events
    src = np.minimum(rng.zipf(1.5, size=num_events) - 1, num_nodes - 1)
    dst = np.minimum(rng.zipf(1.5, size=num_events) - 1, num_nodes - 1)
    ts = np.sort(rng.uniform(0, 1e3, size=num_events))
    return num_nodes, shards, src.astype(np.int64), dst.astype(np.int64), ts


@settings(max_examples=30, deadline=None)
@given(zipf_streams())
def test_temporal_partition_deterministic_and_balanced(case):
    num_nodes, shards, src, dst, ts = case
    a = ShardRouter.temporal(src, dst, ts, num_nodes, shards)
    b = ShardRouter.temporal(src, dst, ts, num_nodes, shards)
    # deterministic across runs
    assert np.array_equal(a.assign, b.assign)
    assert (a.counts() > 0).all()
    # balance: no shard's event weight exceeds total/N + w_max, i.e. it is
    # within 2x of the makespan lower bound max(total/N, w_max) even on
    # zipf-skewed streams.
    weight = np.zeros(num_nodes)
    for ends in (src, dst):
        np.add.at(weight, ends, 1.0)
    shard_w = np.bincount(a.assign, weights=weight, minlength=shards)
    total, w_max = weight.sum(), weight.max()
    assert shard_w.max() <= total / shards + w_max + 1e-9
    assert shard_w.max() <= 2 * max(total / shards, w_max) + 1e-9


@settings(max_examples=20, deadline=None)
@given(st.integers(8, 200), st.integers(2, 6), st.integers(0, 2**16))
def test_assignment_stable_except_at_move_boundaries(num_nodes, shards, seed):
    router = ShardRouter.hash(num_nodes, shards, seed=seed)
    before = router.assign.copy()
    # queries never mutate the table
    router.shard_of(np.arange(num_nodes))
    router.counts()
    router.owned_nodes(0)
    assert router.version == 0
    assert np.array_equal(router.assign, before)
    # a move changes exactly the moved nodes and bumps the version
    rng = np.random.default_rng(seed)
    moved = rng.choice(num_nodes, size=min(3, num_nodes), replace=False)
    dst = (int(before[moved[0]]) + 1) % shards
    router.move(moved, dst)
    assert router.version == 1
    untouched = np.setdiff1d(np.arange(num_nodes), moved)
    assert np.array_equal(router.assign[untouched], before[untouched])
    assert (router.assign[moved] == dst).all()


def test_split_batch_covers_every_event_once_per_owner():
    stream = _stream(200)
    router = ShardRouter.hash(N, 4, seed=0)
    batch = split_batches(stream, 50)[0]
    subs = router.split_batch(batch)
    # every event lands in the sub-batch of each shard owning an endpoint
    for shard, sub in subs.items():
        owners = set(router.owned_nodes(shard).tolist())
        assert all(int(s) in owners or int(d) in owners
                   for s, d in zip(sub.src, sub.dst))
    covered = set()
    for sub in subs.values():
        covered.update(sub.eids.tolist())
    assert covered == set(batch.eids.tolist())


# ---------------------------------------------------------------------------
# RPC: timeouts, retries, hedging
# ---------------------------------------------------------------------------

def test_rpc_dead_host_exhausts_retries_and_raises():
    rpc = SimRpc(SimClock(), retries=2)
    with pytest.raises(RpcTimeout):
        rpc.call(0, alive=False)
    assert rpc.stats.retries == 2
    assert rpc.stats.timeouts == 3
    assert rpc.stats.failures == 1


def test_rpc_hedge_wins_when_primary_leg_is_lost():
    class DropPrimary:
        """Drop exactly the first attempt's request leg, not the hedge."""
        def poke(self, site, **info):
            if site == "rpc.send" and info.get("extra") == 7:
                return ("drop",)
            return None

    stub = DropPrimary()
    hooks.install(stub)
    try:
        rpc = SimRpc(SimClock(), retries=0)
        elapsed = rpc.call(3, extra=7)
    finally:
        hooks.uninstall(stub)
    assert rpc.stats.hedges == 1
    assert rpc.stats.hedge_wins == 1
    assert rpc.stats.dropped_sends == 1
    assert rpc.stats.failures == 0
    assert elapsed == pytest.approx(rpc.hedge_delay + rpc.service)


def test_rpc_delivers_exactly_once_per_successful_leg():
    deliveries = []
    rpc = SimRpc(SimClock(), hedge_delay=None)
    rpc.call(0, on_deliver=lambda: deliveries.append(1))
    assert len(deliveries) == 1


# ---------------------------------------------------------------------------
# Replica: WAL failover and idempotence
# ---------------------------------------------------------------------------

def test_replica_crash_respawn_is_bit_identical(tmp_path):
    owned = np.arange(0, N, 2)
    rep = _replica(tmp_path, owned, snapshot_every=3)
    for seq in range(7):
        batch = _payload_batch([seq], [2 * seq % N], [(2 * seq + 1) % N],
                               [float(seq)], seed=seq)
        assert rep.apply(batch, seq)
    digests_before = (rep.memory.state_digest(), rep.mailbox.state_digest())

    rep.crash()
    assert not rep.alive
    with pytest.raises(ReplicaDown):
        rep.gather(owned[:1])
    info = rep.respawn()
    assert rep.alive and rep.last_seq == 6
    # snapshot_every=3 means the WAL suffix past the last snapshot replays
    assert info["replayed"] == rep._since_snapshot
    assert (rep.memory.state_digest(), rep.mailbox.state_digest()) \
        == digests_before


def test_replica_duplicate_apply_is_a_noop(tmp_path):
    rep = _replica(tmp_path, np.arange(N))
    batch = _payload_batch([0], [1], [2], [1.0])
    assert rep.apply(batch, 0)
    snap = rep.memory.state_digest()
    # redelivery (hedge double-delivery, retry after lost ack): no-op
    assert not rep.apply(batch, 0)
    assert rep.duplicate_batches == 1
    assert rep.memory.state_digest() == snap
    assert rep.applied_batches == 1


def test_replica_release_adopt_preserves_rows(tmp_path):
    a = _replica(tmp_path, np.arange(0, 30), name="a")
    b = _replica(tmp_path, np.arange(30, N), name="b")
    batch = _payload_batch([0, 1], [3, 7], [5, 9], [1.0, 2.0])
    a.apply(batch, 0)
    moved = np.array([3, 5])
    rows_before = a.gather(moved).copy()
    state = a.release(moved)
    b.adopt(state)
    assert np.array_equal(b.gather(moved), rows_before)
    with pytest.raises(KeyError):
        a.gather(moved)


# ---------------------------------------------------------------------------
# Cluster: clean-path equivalence and scoring
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("partition", ["hash", "temporal"])
def test_cluster_matches_single_runtime_clean(partition):
    stream = _stream(400)
    batches = split_batches(stream, 40)
    config = ClusterConfig(num_shards=4, partition=partition)
    ctx, cluster = _cluster(stream, config=config)
    with cluster:
        results = replay(cluster, batches, load=16.0)
        assert all(r.status == "ok" for r in results)
        digests = _cluster_digests(cluster)
    assert digests == _single_digests(stream, batches)


def test_cluster_chaos_equivalence_with_shard_kill():
    """The headline guarantee: 16x load, a shard killed mid-stream, RPC
    drops, a stall window and heartbeat loss — the cluster keeps serving
    and converges to the exact single-replica state."""
    stream = _stream(600)
    batches = split_batches(stream, 40)
    injector = FaultInjector(
        seed=7,
        shard_crashes={(0, 5, 1)},
        shard_stalls={(0, 8, 2)},
        rpc_send_drop_rate=0.05,
        rpc_recv_drop_rate=0.05,
        heartbeat_drop_rate=0.02,
    )
    ctx, cluster = _cluster(stream, injector=injector)
    with cluster, injector:
        results = replay(cluster, batches, load=16.0)
        stats = cluster.stats()
        digests = _cluster_digests(cluster)
    # the kill really happened, failover really ran
    assert stats["cluster:injected_crashes"] >= 1
    assert stats["cluster:failovers"] >= 1
    assert stats["cluster:recoveries"] >= 1
    assert stats["cluster:pending_applies"] == 0
    # service continued: every request completed (degraded, not dropped)
    assert all(r.status == "ok" for r in results)
    assert stats["cluster:partial_results"] > 0
    assert digests == _single_digests(stream, batches)


def test_cluster_partial_results_while_shard_down():
    stream = _stream(300)
    batches = split_batches(stream, 30)
    ctx, cluster = _cluster(stream)
    with cluster:
        # kill a shard out-of-band and serve one request before the
        # supervisor can possibly have respawned it
        cluster.replicas[2].crash()
        cluster.submit(batches[0])
        result = cluster.step()
        assert result is not None and result.status == "ok"
        assert cluster.partial_results > 0
        assert cluster.pending_applies() > 0 or cluster.deferred_applies > 0
        # drain settles every recovery and redelivers deferred applies
        replay(cluster, batches[1:], load=16.0)
        assert cluster.pending_applies() == 0
        assert all(rep.alive for rep in cluster.replicas)
        assert cluster.redelivered > 0


def test_cluster_rebalance_moves_hot_nodes_and_preserves_state():
    stream = _stream(200)
    config = ClusterConfig(
        num_shards=4,
        rebalance_window=1e-3,
        rebalance_patience=1,
        rebalance_factor=1.5,
    )
    ctx, cluster = _cluster(stream, config=config)
    with cluster:
        hot = int(np.argmax(cluster.router.counts()))
        hot_nodes = cluster.router.owned_nodes(hot)
        # apply one real batch so moved rows carry non-zero state
        batch = _payload_batch([0, 1], hot_nodes[:2], hot_nodes[2:4], [1.0, 2.0])
        cluster.replicas[hot].apply(batch, 0)
        rows_before = cluster.replicas[hot].gather(hot_nodes[:2]).copy()
        # fake a sustained hot spot on that shard, tick across windows
        for _ in range(4):
            cluster.supervisor.note_load(hot, 1000, nodes=hot_nodes[:8])
            cluster.clock.advance(2e-3)
            cluster.supervisor.tick()
        stats = cluster.supervisor.stats
        assert stats.rebalances >= 1
        assert stats.nodes_moved > 0
        assert cluster.router.version >= 1
        # moved rows are still served, from whichever shard owns them now
        for i, node in enumerate(hot_nodes[:2]):
            owner = int(cluster.router.shard_of(np.array([node]))[0])
            row = cluster.replicas[owner].gather(np.array([node]))[0]
            assert np.array_equal(row, rows_before[i])


def test_sharded_cost_model_divides_by_live_shards():
    stream = _stream(100)
    ctx, cluster = _cluster(stream, config=ClusterConfig(num_shards=4))
    with cluster:
        model = cluster.ladder.cost_model
        c4 = model.estimate("full", 128)
        cluster.replicas[0].crash()
        cluster.replicas[1].crash()
        c2 = model.estimate("full", 128)
    assert c2 > c4  # fewer live shards -> less parallelism -> costlier


def test_cluster_close_is_idempotent():
    stream = _stream(100)
    ctx, cluster = _cluster(stream)
    replay(cluster, split_batches(stream, 50), load=4.0)
    cluster.close()
    cluster.close()  # second close must be a no-op
    assert all(rep.store is None for rep in cluster.replicas)


# ---------------------------------------------------------------------------
# replication: lease-fenced primary/follower groups
# ---------------------------------------------------------------------------

from repro.cluster import ReplicaGroup, StaleLeaseError, place_group_hosts
from repro.durable import read_batch_suffix


def _replicated(stream, factor, num_shards=4, injector=None, **cfg_kw):
    config = ClusterConfig(
        num_shards=num_shards, replication_factor=factor, **cfg_kw
    )
    return _cluster(stream, config=config, injector=injector)


def _assert_members_identical(cluster):
    """Every group member holds the same committed state, bit for bit."""
    for group in cluster.groups:
        first = group.members[0]
        for member in group.members[1:]:
            assert first.memory.state_digest() == \
                member.memory.state_digest(), (
                    f"group {group.shard_id}: member {member.member_id} "
                    "diverged"
                )
            if first.mailbox is not None:
                assert first.mailbox.state_digest() == \
                    member.mailbox.state_digest()
            assert first.last_seq == member.last_seq


def test_place_group_hosts_anti_affinity():
    placement = place_group_hosts(4, 3)
    assert len(placement) == 4
    for group in placement:
        assert len(set(group)) == 3  # no two members share a host
    # member 0 of shard i stays on host i (legacy single-replica layout)
    assert [g[0] for g in placement] == [0, 1, 2, 3]
    with pytest.raises(ValueError):
        place_group_hosts(4, 3, num_hosts=2)


def test_read_batch_suffix_orders_and_filters(tmp_path):
    rep = _replica(tmp_path, np.arange(N))
    for s in range(5):
        rep.apply(_payload_batch([s], [s], [s + 1], [float(s + 1)]), s)
    records = read_batch_suffix(rep.durable_dir, after_seq=2)
    assert [int(r.meta["seq"]) for r in records] == [3, 4]
    batch = EventBatch.from_arrays(records[0].arrays)
    assert batch.src[0] == 3 and batch.dst[0] == 4
    rep.close()


def test_stale_epoch_write_rejected_before_wal_append(tmp_path):
    """A zombie ex-primary writing under a fenced lease is rejected at
    the replica, before its WAL append — split-brain cannot diverge."""
    rep = _replica(tmp_path, np.arange(N))
    rep.apply(_payload_batch([0], [1], [2], [1.0]), 0, epoch=0)
    appends_before = rep.stats()["wal_last_lsn"]
    rep.lease_epoch = 2  # fenced by a promotion elsewhere
    with pytest.raises(StaleLeaseError):
        rep.apply(_payload_batch([1], [3], [4], [2.0]), 1, epoch=1)
    assert rep.stale_rejects == 1
    assert rep.last_seq == 0  # neither applied ...
    assert rep.stats()["wal_last_lsn"] == appends_before  # ... nor logged
    rep.close()


@pytest.mark.parametrize("factor", [2, 3])
def test_replicated_clean_replay_members_bit_identical(factor):
    stream = _stream(400)
    batches = split_batches(stream, 40)
    ctx, cluster = _replicated(stream, factor)
    with cluster:
        results = replay(cluster, batches, load=16.0)
        assert all(r.status == "ok" for r in results)
        _assert_members_identical(cluster)
        mem_digest, _ = _cluster_digests(cluster)
        stats = cluster.stats()
    # every commit reached quorum on a clean network
    for i in range(4):
        assert stats[f"group:{i}:quorum_commits"] == stats[f"group:{i}:ships"]
        assert stats[f"group:{i}:under_quorum"] == 0
    assert stats["cluster:zero_rows"] == 0
    mem, _ = _single_images(stream, batches)
    assert mem.state_digest() == mem_digest


def test_primary_kill_promotes_follower_and_never_zero_fills():
    """The tentpole guarantee: killing a primary at factor 2 promotes the
    follower, reads fail over immediately (no zero-filled rows anywhere),
    and the final state is bit-identical to a clean single replay."""
    stream = _stream(600)
    batches = split_batches(stream, 40)
    injector = FaultInjector(
        seed=7,
        shard_crashes={(0, 5, 1)},  # shard 1's primary (member 0)
        heartbeat_drop_rate=0.02,
    )
    ctx, cluster = _replicated(stream, 2, injector=injector)
    with cluster, injector:
        results = replay(cluster, batches, load=16.0)
        stats = cluster.stats()
        _assert_members_identical(cluster)
        digests = _cluster_digests(cluster)
    assert stats["cluster:injected_crashes"] >= 1
    assert stats["cluster:promotions"] >= 1
    assert stats["group:1:epoch"] >= 1
    assert all(r.status == "ok" for r in results)
    # no request ever saw a zero-filled row: reads failed over
    assert stats["cluster:zero_rows"] == 0
    assert ctx.counters.get("serve:zero_rows", 0) == 0
    assert all(r.valid is None or bool(r.valid.all()) for r in results)
    assert stats["cluster:follower_reads"] >= 1
    assert digests == _single_digests(stream, batches)


def test_cascading_failover_promoted_primary_killed():
    """Kill the primary, then kill the freshly promoted member while the
    first is still respawning — a second promotion must carry on from
    the highest acked LSN with no lost or zero-filled reads."""
    stream = _stream(600)
    batches = split_batches(stream, 40)
    injector = FaultInjector(
        seed=7,
        shard_crashes={
            (0, 5, 1),       # shard 1 member 0 (the primary)
            (0, 8, 1 + 4),   # shard 1 member 1 (promoted meanwhile)
        },
    )
    ctx, cluster = _replicated(stream, 3, injector=injector)
    with cluster, injector:
        results = replay(cluster, batches, load=16.0)
        stats = cluster.stats()
        _assert_members_identical(cluster)
        mem_digest, _ = _cluster_digests(cluster)
    assert stats["cluster:injected_crashes"] >= 2
    assert stats["group:1:promotions"] >= 2
    assert stats["group:1:epoch"] >= 2
    assert all(r.status == "ok" for r in results)
    assert stats["cluster:zero_rows"] == 0
    assert stats["cluster:pending_applies"] == 0
    mem, _ = _single_images(stream, batches)
    assert mem.state_digest() == mem_digest


def test_ack_drop_below_quorum_is_counted_not_aborted():
    """Dropping every ack of one request's ships pushes those commits
    under quorum; the commit is never aborted (the cluster sequenced
    it), members converge with no sequence gaps."""
    stream = _stream(400)
    batches = split_batches(stream, 40)
    injector = FaultInjector(seed=7, repl_ack_drops={(0, 3)})
    ctx, cluster = _replicated(stream, 3, injector=injector)
    with cluster, injector:
        replay(cluster, batches, load=16.0)
        stats = cluster.stats()
        _assert_members_identical(cluster)
        mem_digest, _ = _cluster_digests(cluster)
        # no LSN gaps: every member applied the full committed sequence
        for group in cluster.groups:
            for member in group.members:
                assert member.last_seq == group.committed_seq
    under = sum(stats[f"group:{i}:under_quorum"] for i in range(4))
    acks_lost = sum(stats[f"group:{i}:acks_lost"] for i in range(4))
    assert under >= 1        # factor 3 needs 2 acks; only the primary's
    assert acks_lost >= 2    # both follower acks of that request died
    for i in range(4):
        assert (stats[f"group:{i}:quorum_commits"]
                + stats[f"group:{i}:under_quorum"]) == stats[f"group:{i}:ships"]
    mem, _ = _single_images(stream, batches)
    assert mem.state_digest() == mem_digest


def test_ack_drop_at_quorum_still_commits():
    """factor 2 with ack_quorum=1: losing the follower ack leaves the
    primary's own append at quorum — the commit counts as quorum-acked."""
    stream = _stream(200)
    batches = split_batches(stream, 40)
    injector = FaultInjector(seed=7, repl_ack_drops={(0, 2)})
    ctx, cluster = _replicated(stream, 2, injector=injector, ack_quorum=1)
    with cluster, injector:
        replay(cluster, batches, load=16.0)
        stats = cluster.stats()
        _assert_members_identical(cluster)
    assert sum(stats[f"group:{i}:acks_lost"] for i in range(4)) >= 1
    for i in range(4):
        assert stats[f"group:{i}:under_quorum"] == 0
        assert stats[f"group:{i}:quorum_commits"] == stats[f"group:{i}:ships"]


def test_ship_drop_parks_in_order_and_redelivers():
    stream = _stream(400)
    batches = split_batches(stream, 40)
    injector = FaultInjector(seed=7, repl_ship_drops={(0, 4)})
    ctx, cluster = _replicated(stream, 2, injector=injector)
    with cluster, injector:
        replay(cluster, batches, load=16.0)
        stats = cluster.stats()
        _assert_members_identical(cluster)
        mem_digest, _ = _cluster_digests(cluster)
    dropped = stats["rpc:dropped_ships"]
    assert dropped >= 1
    assert stats["cluster:deferred_applies"] >= dropped
    assert stats["cluster:redelivered"] >= dropped
    assert stats["cluster:pending_applies"] == 0
    mem, _ = _single_images(stream, batches)
    assert mem.state_digest() == mem_digest


def test_strict_staleness_promotes_before_reading():
    stream = _stream(300)
    batches = split_batches(stream, 30)
    ctx, cluster = _replicated(stream, 2, staleness_bound="strict")
    with cluster:
        cluster.groups[1].members[0].crash()  # primary down, out-of-band
        cluster.submit(batches[0])
        result = cluster.step()
        assert result is not None and result.status == "ok"
        # the gather refused the follower read and forced the promotion
        assert cluster.strict_fallbacks >= 1
        assert cluster.groups[1].epoch >= 1
        assert cluster.groups[1].primary_idx == 1
        assert cluster.zero_rows == 0
        replay(cluster, batches[1:], load=16.0)
        _assert_members_identical(cluster)


def test_bounded_staleness_serves_follower_without_promotion():
    stream = _stream(300)
    batches = split_batches(stream, 30)
    ctx, cluster = _replicated(stream, 2, staleness_bound="bounded")
    with cluster:
        cluster.groups[1].members[0].crash()
        cluster.submit(batches[0])
        result = cluster.step()
        assert result is not None and result.status == "ok"
        assert cluster.zero_rows == 0
        # the follower answered directly; promotion happened only for the
        # *commit* path (a write still needs a leased primary)
        assert cluster.follower_reads >= 1
        replay(cluster, batches[1:], load=16.0)
        _assert_members_identical(cluster)


def test_whole_group_down_marks_valid_mask():
    """Only when every member of a group is gone do rows zero-fill —
    and then the result carries a per-row validity mask."""
    stream = _stream(300)
    batches = split_batches(stream, 30)
    ctx, cluster = _cluster(stream)  # factor 1: one member per group
    with cluster:
        cluster.replicas[2].crash()
        cluster.submit(batches[0])
        result = cluster.step()
        assert result is not None and result.status == "ok"
        assert result.valid is not None
        assert not result.valid.all()  # dead-shard rows are marked
        assert result.valid.any()      # live-shard rows still authoritative
        assert ctx.counters.get("serve:zero_rows", 0) > 0
        assert cluster.zero_rows > 0


def test_legacy_partials_disable_valid_mask():
    stream = _stream(300)
    batches = split_batches(stream, 30)
    config = ClusterConfig(num_shards=4, strict_partials=False)
    ctx, cluster = _cluster(stream, config=config)
    with cluster:
        cluster.replicas[2].crash()
        cluster.submit(batches[0])
        result = cluster.step()
        assert result is not None and result.status == "ok"
        assert result.valid is None  # legacy unmarked zero-fill
        assert cluster.zero_rows > 0  # ... but the counter still records it


def test_quiesced_member_accrues_no_phi():
    """Satellite regression: a member quiesced for a planned hand-off
    must never be declared dead for beats it was told not to send."""
    stream = _stream(100)
    ctx, cluster = _replicated(stream, 2)
    with cluster:
        sup = cluster.supervisor
        sup.quiesce(0, 0)
        # way past dead_phi * heartbeat_interval with no beats from (0,0)
        for _ in range(10):
            cluster.clock.advance(5e-3)
            sup.tick()
        assert sup.stats.failovers == 0
        assert cluster.groups[0].members[0].alive
        sup.resume(0, 0)
        for _ in range(3):
            cluster.clock.advance(5e-3)
            sup.tick()
        # the quiesce window did not read as missed intervals after resume
        assert sup.stats.failovers == 0
        assert sup.member_states()[0][0] == "ok"


def test_rebalance_with_replication_moves_all_members():
    stream = _stream(200)
    config = ClusterConfig(
        num_shards=4,
        replication_factor=2,
        rebalance_window=1e-3,
        rebalance_patience=1,
        rebalance_factor=1.5,
        rebalance_handoff_seconds=0.1,  # >> dead_phi * heartbeat_interval
    )
    ctx, cluster = _cluster(stream, config=config)
    with cluster:
        hot = int(np.argmax(cluster.router.counts()))
        hot_nodes = cluster.router.owned_nodes(hot)
        batch = _payload_batch([0, 1], hot_nodes[:2], hot_nodes[2:4], [1.0, 2.0])
        cluster.groups[hot].ship(batch, 0, cluster.rpc, 0.0, extra=0)
        rows_before = cluster.replicas[hot].gather(hot_nodes[:2]).copy()
        for _ in range(4):
            cluster.supervisor.note_load(hot, 1000, nodes=hot_nodes[:8])
            cluster.clock.advance(2e-3)
            cluster.supervisor.tick()
        stats = cluster.supervisor.stats
        assert stats.rebalances >= 1
        # the long quiesced hand-off window triggered no spurious failover
        assert stats.failovers == 0
        # moved rows are served identically by *both* members of the new
        # owner group
        for i, node in enumerate(hot_nodes[:2]):
            owner = int(cluster.router.shard_of(np.array([node]))[0])
            for member in cluster.groups[owner].members:
                row = member.gather(np.array([node]))[0]
                assert np.array_equal(row, rows_before[i])


def test_promote_delay_is_bounded_and_retried():
    """A repl.promote delay stalls the hand-off one tick; reads keep
    failing over to the follower meanwhile and the promotion lands."""
    stream = _stream(600)
    batches = split_batches(stream, 40)
    injector = FaultInjector(
        seed=7,
        shard_crashes={(0, 5, 1)},
        repl_promote_delay_rate=1.0,  # every attempt delayed (capped)
    )
    ctx, cluster = _replicated(stream, 2, injector=injector)
    with cluster, injector:
        results = replay(cluster, batches, load=16.0)
        stats = cluster.stats()
        _assert_members_identical(cluster)
        mem_digest, _ = _cluster_digests(cluster)
    assert stats["cluster:promote_delays"] >= 1
    assert stats["cluster:promotions"] >= 1  # the cap forced it through
    assert all(r.status == "ok" for r in results)
    assert stats["cluster:zero_rows"] == 0
    mem, _ = _single_images(stream, batches)
    assert mem.state_digest() == mem_digest
