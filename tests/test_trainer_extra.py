"""Additional trainer-harness edge cases."""

import numpy as np
import pytest

import repro.core as tg
from repro import nn
from repro.bench import TrainResult, evaluate, train, train_epoch, warm_replay
from repro.bench.trainer import EpochResult
from repro.data import NegativeSampler, get_dataset
from repro.models import TGAT, OptFlags


@pytest.fixture(scope="module")
def setup():
    ds = get_dataset("wiki")
    g = ds.build_graph()
    ctx = tg.TContext(g)
    model = TGAT(ctx, dim_node=172, dim_edge=172, dim_time=8, dim_embed=8,
                 num_layers=1, num_nbrs=3, opt=OptFlags.none())
    opt = nn.Adam(model.parameters(), lr=1e-3)
    neg = NegativeSampler.for_dataset(ds)
    return ds, g, model, opt, neg


class TestTrainResult:
    def test_empty_result_defaults(self):
        result = TrainResult()
        assert result.best_ap == 0.0
        assert result.mean_epoch_seconds == 0.0
        assert result.last_epoch_seconds == 0.0

    def test_best_ap_is_max(self):
        result = TrainResult(epochs=[
            EpochResult(0, 1.0, 0.5, 0.1, 0.7),
            EpochResult(1, 1.0, 0.4, 0.1, 0.9),
            EpochResult(2, 1.0, 0.3, 0.1, 0.8),
        ])
        assert result.best_ap == 0.9
        assert result.mean_epoch_seconds == 1.0


class TestEdgeRanges:
    def test_evaluate_empty_range(self, setup):
        ds, g, model, opt, neg = setup
        seconds, ap = evaluate(model, g, neg, 300, start=500, stop=500)
        assert ap == 0.0
        assert seconds >= 0.0

    def test_train_epoch_empty_range(self, setup):
        ds, g, model, opt, neg = setup
        seconds, loss = train_epoch(model, g, opt, neg, 300, start=100, stop=100)
        assert loss == 0.0

    def test_train_without_eval(self, setup):
        ds, g, model, opt, neg = setup
        result = train(model, g, opt, neg, batch_size=300, epochs=1, train_end=600)
        assert result.epochs[0].eval_ap == 0.0
        assert result.epochs[0].train_seconds > 0

    def test_warm_replay_on_stateless_model(self, setup):
        ds, g, model, opt, neg = setup
        warm_replay(model, g, neg, 300, stop=600)  # no-op state, must not raise
        assert model.training is False  # left in eval mode

    def test_negative_stream_identical_across_frameworks(self, setup):
        """The comparability guarantee: evaluate() resets the negative
        stream, so two models are scored on identical negatives."""
        ds, g, model, opt, neg = setup
        neg.reset()
        first = [neg.sample(5).copy() for _ in range(3)]
        neg.reset()
        second = [neg.sample(5).copy() for _ in range(3)]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)
