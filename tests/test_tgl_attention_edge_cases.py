"""Edge-case tests for the TGL attention layer and model plumbing."""

import numpy as np
import pytest

from repro import tensor as T
from repro.core.graph import TGraph
from repro.tgl import TGLAttnLayer, TGLSampler
from repro.tgl.mfg import MFG


def neighborless_mfg(n=3, dim=6):
    empty_i = np.empty(0, dtype=np.int64)
    mfg = MFG(T.CPU, np.arange(n), np.ones(n), empty_i, empty_i,
              np.empty(0), empty_i)
    mfg.srcdata["h"] = T.randn(n, dim)
    return mfg


class TestTGLAttnLayer:
    def test_neighborless_input(self):
        layer = TGLAttnLayer(2, dim_node=6, dim_edge=0, dim_time=4, dim_out=8)
        out = layer(neighborless_mfg())
        assert out.shape == (3, 8)

    def test_heads_divisibility(self):
        with pytest.raises(ValueError):
            TGLAttnLayer(3, dim_node=4, dim_edge=0, dim_time=4, dim_out=8)

    def test_with_and_without_edge_features(self):
        g = TGraph([0, 1, 2, 0], [1, 2, 0, 2], [1.0, 2.0, 3.0, 4.0])
        g.set_nfeat(np.random.default_rng(0).standard_normal((3, 6)).astype(np.float32))
        g.set_efeat(np.random.default_rng(1).standard_normal((4, 5)).astype(np.float32))
        sampler = TGLSampler(g, 2)
        mfg = sampler.sample_hop(T.CPU, np.array([0, 1]), np.array([5.0, 5.0]))
        mfg.load("h", g.nfeat, which="all")
        mfg.load_edges("f", g.efeat)
        with_ef = TGLAttnLayer(2, dim_node=6, dim_edge=5, dim_time=4, dim_out=8)
        assert with_ef(mfg).shape == (2, 8)

        mfg2 = sampler.sample_hop(T.CPU, np.array([0, 1]), np.array([5.0, 5.0]))
        mfg2.load("h", g.nfeat, which="all")
        without_ef = TGLAttnLayer(2, dim_node=6, dim_edge=0, dim_time=4, dim_out=8)
        assert without_ef(mfg2).shape == (2, 8)

    def test_gradients_reach_time_encoder(self):
        g = TGraph([0, 1, 2, 0], [1, 2, 0, 2], [1.0, 2.0, 3.0, 4.0])
        g.set_nfeat(np.random.default_rng(0).standard_normal((3, 6)).astype(np.float32))
        sampler = TGLSampler(g, 2)
        mfg = sampler.sample_hop(T.CPU, np.array([0, 1]), np.array([5.0, 5.0]))
        mfg.load("h", g.nfeat, which="all")
        layer = TGLAttnLayer(2, dim_node=6, dim_edge=0, dim_time=4, dim_out=8)
        layer(mfg).sum().backward()
        assert layer.time_encoder.weight.grad is not None
        assert layer.w_q.weight.grad is not None
