"""Unit and gradient tests for the segmented kernels."""

import numpy as np
import pytest

from repro import tensor as T
from repro.tensor.segment import (
    segment_argmax_by_key,
    segment_count,
    segment_max,
    segment_mean,
    segment_softmax,
    segment_sum,
)

from conftest import check_grad

IDS = np.array([0, 0, 1, 2, 2, 2])


class TestForward:
    def test_segment_count(self):
        np.testing.assert_array_equal(segment_count(IDS, 4), [2, 1, 3, 0])

    def test_segment_sum(self):
        data = T.tensor(np.arange(6, dtype=np.float32).reshape(6, 1))
        out = segment_sum(data, IDS, 4)
        np.testing.assert_allclose(out.numpy(), [[1], [2], [12], [0]])

    def test_segment_mean(self):
        data = T.tensor(np.arange(6, dtype=np.float32).reshape(6, 1))
        out = segment_mean(data, IDS, 4)
        np.testing.assert_allclose(out.numpy(), [[0.5], [2], [4], [0]])

    def test_segment_max(self):
        data = T.tensor(np.array([3.0, 1.0, 7.0, 2.0, 9.0, 4.0]))
        out = segment_max(data, IDS, 4)
        np.testing.assert_allclose(out.numpy(), [3, 7, 9, 0])

    def test_segment_max_empty_segment_is_zero(self):
        out = segment_max(T.tensor([-5.0]), np.array([1]), 3)
        np.testing.assert_allclose(out.numpy(), [0, -5, 0])

    def test_segment_softmax_sums_to_one(self):
        scores = T.randn(6)
        out = segment_softmax(scores, IDS, 3).numpy()
        assert abs(out[:2].sum() - 1) < 1e-5
        assert abs(out[2] - 1) < 1e-5
        assert abs(out[3:].sum() - 1) < 1e-5

    def test_segment_softmax_multihead(self):
        scores = T.randn(6, 4)
        out = segment_softmax(scores, IDS, 3).numpy()
        np.testing.assert_allclose(out[:2].sum(axis=0), np.ones(4), rtol=1e-5)
        np.testing.assert_allclose(out[3:].sum(axis=0), np.ones(4), rtol=1e-5)

    def test_segment_softmax_extreme_scores_stable(self):
        scores = T.tensor([1000.0, -1000.0, 500.0])
        out = segment_softmax(scores, np.array([0, 0, 1]), 2).numpy()
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [1, 0, 1], atol=1e-6)

    def test_segment_ids_accept_tensor(self):
        out = segment_sum(T.ones(3, 2), T.tensor([0, 0, 1], dtype=np.int64), 2)
        np.testing.assert_allclose(out.numpy(), [[2, 2], [1, 1]])


class TestGradients:
    def test_segment_sum_grad(self):
        check_grad(lambda d: segment_sum(d, IDS, 4).exp(), (6, 2))

    def test_segment_mean_grad(self):
        check_grad(lambda d: segment_mean(d, IDS, 4).exp(), (6, 2))

    def test_segment_max_grad(self):
        check_grad(lambda d: segment_max(d, IDS, 4) * 2.0, (6,))

    def test_segment_softmax_grad(self):
        weights = T.tensor(np.arange(6, dtype=np.float32))
        check_grad(lambda s: segment_softmax(s, IDS, 3) * weights, (6,))

    def test_segment_softmax_multihead_grad(self):
        weights = T.tensor(np.arange(12, dtype=np.float32).reshape(6, 2))
        check_grad(lambda s: segment_softmax(s, IDS, 3) * weights, (6, 2))


class TestArgmaxByKey:
    def test_latest_per_segment(self):
        keys = np.array([1.0, 5.0, 2.0, 9.0, 3.0])
        ids = np.array([0, 0, 1, 1, 1])
        out = segment_argmax_by_key(keys, ids, 3)
        np.testing.assert_array_equal(out, [1, 3, -1])

    def test_tie_picks_last_row(self):
        keys = np.array([5.0, 5.0])
        out = segment_argmax_by_key(keys, np.array([0, 0]), 1)
        assert out[0] == 1

    def test_empty_segments_marked(self):
        out = segment_argmax_by_key(np.array([]), np.array([], dtype=np.int64), 2)
        np.testing.assert_array_equal(out, [-1, -1])
