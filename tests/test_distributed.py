"""Tests for the simulated data-parallel trainer."""

import numpy as np
import pytest

import repro.core as tg
from repro import nn
from repro import tensor as T
from repro.data import NegativeSampler, get_dataset
from repro.distributed import SimulatedDataParallel, StepResult, ShardResult
from repro.models import TGAT, OptFlags


@pytest.fixture(scope="module")
def wiki():
    return get_dataset("wiki")


def build_tgat(wiki, seed=33):
    T.manual_seed(seed)
    g = wiki.build_graph()
    ctx = tg.TContext(g)
    model = TGAT(ctx, dim_node=172, dim_edge=172, dim_time=8, dim_embed=8,
                 num_layers=1, num_nbrs=3, dropout=0.0, opt=OptFlags.none())
    return g, model


class TestSharding:
    def test_shards_cover_batch(self, wiki):
        g, model = build_tgat(wiki)
        opt = nn.Adam(model.parameters(), lr=1e-3)
        dp = SimulatedDataParallel(model, opt, num_replicas=3)
        batch = tg.TBatch(g, 100, 400)
        ranges = dp._shard_ranges(batch)
        assert ranges[0][0] == 100 and ranges[-1][1] == 400
        for (a, b), (c, d) in zip(ranges[:-1], ranges[1:]):
            assert b == c
        assert sum(b - a for a, b in ranges) == 300

    def test_more_replicas_than_edges(self, wiki):
        g, model = build_tgat(wiki)
        opt = nn.Adam(model.parameters(), lr=1e-3)
        dp = SimulatedDataParallel(model, opt, num_replicas=8)
        batch = tg.TBatch(g, 0, 3)
        ranges = dp._shard_ranges(batch)
        assert sum(b - a for a, b in ranges) == 3

    def test_invalid_replicas(self, wiki):
        g, model = build_tgat(wiki)
        opt = nn.Adam(model.parameters(), lr=1e-3)
        with pytest.raises(ValueError):
            SimulatedDataParallel(model, opt, num_replicas=0)


class TestCostModel:
    def test_allreduce_zero_for_single_replica(self, wiki):
        g, model = build_tgat(wiki)
        opt = nn.SGD(model.parameters(), lr=0.1)
        dp = SimulatedDataParallel(model, opt, num_replicas=1)
        assert dp.allreduce_seconds() == 0.0

    def test_allreduce_grows_with_replicas(self, wiki):
        g, model = build_tgat(wiki)
        opt = nn.SGD(model.parameters(), lr=0.1)
        costs = [
            SimulatedDataParallel(model, opt, num_replicas=n).allreduce_seconds()
            for n in (2, 4, 8)
        ]
        assert costs[0] < costs[1] < costs[2]
        # Ring all-reduce volume is bounded by 2x the parameter bytes.
        param_bytes = sum(p.data.nbytes for p in model.parameters())
        assert costs[-1] < 2 * param_bytes / 1.0e9 + 1e-12

    def test_step_result_aggregation(self):
        step = StepResult(
            shards=[ShardResult(0, 10, 1.0, 2.0), ShardResult(1, 30, 3.0, 4.0)],
            allreduce_seconds=0.5,
        )
        assert step.serial_seconds == 4.0
        assert step.simulated_parallel_seconds == 3.5
        assert step.loss == pytest.approx((2.0 * 10 + 4.0 * 30) / 40)


class TestTraining:
    def test_gradients_match_single_replica(self, wiki):
        """N-replica synchronous SGD equals one big batch exactly."""
        grads = {}
        for replicas in (1, 3):
            g, model = build_tgat(wiki, seed=44)
            opt = nn.SGD(model.parameters(), lr=0.1)
            dp = SimulatedDataParallel(model, opt, num_replicas=replicas)
            batch = tg.TBatch(g, 300, 600)
            neg = NegativeSampler.for_dataset(wiki, seed=5)
            # Use identical negatives across shardings: pre-draw per edge.
            fixed_negs = neg.sample(300)

            class FixedSampler:
                def __init__(self):
                    self.cursor = 0

                def sample(self, n):
                    out = fixed_negs[self.cursor : self.cursor + n]
                    self.cursor += n
                    return out

                def reset(self):
                    self.cursor = 0

            self_opt_grads = {}
            dp.train_step(batch, FixedSampler())
            # capture post-step... instead capture gradients pre-step:
            # re-run to collect raw grads
            grads[replicas] = {
                name: p.data.copy() for name, p in model.named_parameters()
            }
        for key in grads[1]:
            np.testing.assert_allclose(
                grads[1][key], grads[3][key], atol=1e-4,
                err_msg=f"parameter divergence for {key}",
            )

    def test_epoch_returns_times_and_loss(self, wiki):
        g, model = build_tgat(wiki)
        opt = nn.Adam(model.parameters(), lr=1e-3)
        dp = SimulatedDataParallel(model, opt, num_replicas=2)
        neg = NegativeSampler.for_dataset(wiki)
        serial, parallel, loss = dp.train_epoch(g, neg, batch_size=300, stop=900)
        assert serial > parallel > 0
        assert np.isfinite(loss)

    def test_scaling_efficiency_bounds(self, wiki):
        g, model = build_tgat(wiki)
        opt = nn.Adam(model.parameters(), lr=1e-3)
        dp = SimulatedDataParallel(model, opt, num_replicas=2)
        neg = NegativeSampler.for_dataset(wiki)
        batch = tg.TBatch(g, 100, 400)
        step = dp.train_step(batch, neg)
        eff = dp.scaling_efficiency(step)
        assert 0.0 < eff <= 1.0 + 1e-9
