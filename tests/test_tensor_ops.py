"""Unit tests for forward tensor semantics (no autograd)."""

import numpy as np
import pytest

from repro import tensor as T
from repro.tensor import Tensor


class TestCreation:
    def test_tensor_from_list_is_float32(self):
        t = T.tensor([1.0, 2.0, 3.0])
        assert t.dtype == np.float32
        assert t.shape == (3,)

    def test_tensor_preserves_int_dtype(self):
        t = T.tensor([1, 2, 3], dtype=np.int64)
        assert t.dtype == np.int64

    def test_zeros_ones_full(self):
        assert T.zeros(2, 3).numpy().sum() == 0
        assert T.ones(2, 3).numpy().sum() == 6
        assert np.all(T.full((2, 2), 7.0).numpy() == 7.0)

    def test_zeros_accepts_shape_tuple(self):
        assert T.zeros((4, 5)).shape == (4, 5)

    def test_arange_and_eye(self):
        assert T.arange(5).tolist() == [0, 1, 2, 3, 4]
        assert np.allclose(T.eye(3).numpy(), np.eye(3))

    def test_randn_seeded_reproducible(self):
        T.manual_seed(5)
        a = T.randn(4).numpy().copy()
        T.manual_seed(5)
        b = T.randn(4).numpy()
        np.testing.assert_array_equal(a, b)

    def test_randint_range(self):
        vals = T.randint(3, 9, (100,)).numpy()
        assert vals.min() >= 3 and vals.max() < 9

    def test_as_tensor_passthrough(self):
        t = T.tensor([1.0])
        assert T.as_tensor(t) is t

    def test_float64_input_downcast(self):
        t = T.tensor(np.array([1.0, 2.0], dtype=np.float64))
        assert t.dtype == np.float32


class TestArithmetic:
    def test_add_broadcast(self):
        a = T.tensor([[1.0, 2.0], [3.0, 4.0]])
        b = T.tensor([10.0, 20.0])
        np.testing.assert_allclose((a + b).numpy(), [[11, 22], [13, 24]])

    def test_scalar_ops(self):
        a = T.tensor([2.0, 4.0])
        np.testing.assert_allclose((a * 3).numpy(), [6, 12])
        np.testing.assert_allclose((a - 1).numpy(), [1, 3])
        np.testing.assert_allclose((1 - a).numpy(), [-1, -3])
        np.testing.assert_allclose((a / 2).numpy(), [1, 2])
        np.testing.assert_allclose((8 / a).numpy(), [4, 2])
        np.testing.assert_allclose((-a).numpy(), [-2, -4])

    def test_pow(self):
        a = T.tensor([2.0, 3.0])
        np.testing.assert_allclose((a**2).numpy(), [4, 9])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            T.tensor([2.0]) ** T.tensor([2.0])

    def test_device_mismatch_raises(self):
        a = T.tensor([1.0])
        b = T.tensor([1.0], device="cuda")
        with pytest.raises(RuntimeError, match="device mismatch"):
            a + b

    def test_matmul_2d(self):
        a = T.tensor(np.arange(6, dtype=np.float32).reshape(2, 3))
        b = T.tensor(np.arange(12, dtype=np.float32).reshape(3, 4))
        np.testing.assert_allclose((a @ b).numpy(), a.numpy() @ b.numpy())

    def test_bmm(self):
        a = T.randn(4, 2, 3)
        b = T.randn(4, 3, 5)
        np.testing.assert_allclose(a.bmm(b).numpy(), np.matmul(a.numpy(), b.numpy()), rtol=1e-5)

    def test_bmm_requires_3d(self):
        with pytest.raises(RuntimeError):
            T.randn(2, 3).bmm(T.randn(3, 2))


class TestElementwise:
    def test_exp_log_roundtrip(self):
        a = T.tensor([0.5, 1.0, 2.0])
        np.testing.assert_allclose(a.exp().log().numpy(), a.numpy(), rtol=1e-5)

    def test_trig(self):
        a = T.tensor([0.0, np.pi / 2])
        np.testing.assert_allclose(a.cos().numpy(), [1.0, 0.0], atol=1e-6)
        np.testing.assert_allclose(a.sin().numpy(), [0.0, 1.0], atol=1e-6)

    def test_sigmoid_tanh_relu(self):
        a = T.tensor([-1.0, 0.0, 1.0])
        np.testing.assert_allclose(a.sigmoid().numpy(), 1 / (1 + np.exp([1.0, 0.0, -1.0])), rtol=1e-5)
        np.testing.assert_allclose(a.tanh().numpy(), np.tanh([-1, 0, 1]), rtol=1e-5)
        np.testing.assert_allclose(a.relu().numpy(), [0, 0, 1])

    def test_leaky_relu(self):
        a = T.tensor([-2.0, 3.0])
        np.testing.assert_allclose(a.leaky_relu(0.1).numpy(), [-0.2, 3.0], rtol=1e-6)

    def test_clamp(self):
        a = T.tensor([-2.0, 0.5, 3.0])
        np.testing.assert_allclose(a.clamp(min=0.0, max=1.0).numpy(), [0, 0.5, 1.0])

    def test_abs_sqrt(self):
        np.testing.assert_allclose(T.tensor([-3.0, 4.0]).abs().numpy(), [3, 4])
        np.testing.assert_allclose(T.tensor([4.0, 9.0]).sqrt().numpy(), [2, 3])


class TestReductions:
    def test_sum_all_and_dim(self):
        a = T.tensor([[1.0, 2.0], [3.0, 4.0]])
        assert a.sum().item() == 10.0
        np.testing.assert_allclose(a.sum(dim=0).numpy(), [4, 6])
        np.testing.assert_allclose(a.sum(dim=1, keepdim=True).numpy(), [[3], [7]])

    def test_mean_var(self):
        a = T.tensor([[1.0, 3.0], [2.0, 6.0]])
        np.testing.assert_allclose(a.mean(dim=1).numpy(), [2, 4])
        np.testing.assert_allclose(a.var(dim=1).numpy(), [1, 4])

    def test_max_with_dim_returns_indices(self):
        a = T.tensor([[1.0, 5.0, 3.0], [9.0, 2.0, 4.0]])
        values, idx = a.max(dim=1)
        np.testing.assert_allclose(values.numpy(), [5, 9])
        np.testing.assert_array_equal(idx.numpy(), [1, 0])

    def test_min(self):
        a = T.tensor([[1.0, 5.0], [9.0, 2.0]])
        values, _ = a.min(dim=1)
        np.testing.assert_allclose(values.numpy(), [1, 2])
        assert a.min().item() == 1.0

    def test_norm(self):
        assert abs(T.tensor([3.0, 4.0]).norm().item() - 5.0) < 1e-6


class TestShapes:
    def test_reshape_view(self):
        a = T.arange(6).float()
        assert a.reshape(2, 3).shape == (2, 3)
        assert a.view(3, 2).shape == (3, 2)

    def test_transpose_permute(self):
        a = T.randn(2, 3, 4)
        assert a.transpose(0, 2).shape == (4, 3, 2)
        assert a.permute(2, 0, 1).shape == (4, 2, 3)

    def test_T_property(self):
        a = T.randn(2, 5)
        assert a.T.shape == (5, 2)
        with pytest.raises(RuntimeError):
            T.randn(2, 3, 4).T

    def test_squeeze_unsqueeze(self):
        a = T.randn(2, 1, 3)
        assert a.squeeze(1).shape == (2, 3)
        assert a.squeeze().shape == (2, 3)
        assert a.unsqueeze(0).shape == (1, 2, 1, 3)
        assert a.unsqueeze(-1).shape == (2, 1, 3, 1)

    def test_expand(self):
        a = T.randn(1, 3)
        assert a.expand(4, 3).shape == (4, 3)
        assert a.expand(4, -1).shape == (4, 3)

    def test_repeat_interleave(self):
        a = T.tensor([[1.0], [2.0]])
        np.testing.assert_allclose(a.repeat_interleave(2, dim=0).numpy(), [[1], [1], [2], [2]])

    def test_cat_and_stack(self):
        a, b = T.ones(2, 3), T.zeros(2, 3)
        assert T.cat([a, b], dim=0).shape == (4, 3)
        assert T.cat([a, b], dim=1).shape == (2, 6)
        assert T.stack([a, b], dim=0).shape == (2, 2, 3)

    def test_cat_empty_raises(self):
        with pytest.raises(ValueError):
            T.cat([])


class TestIndexing:
    def test_getitem_rows(self):
        a = T.tensor([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        out = a[np.array([2, 0])]
        np.testing.assert_allclose(out.numpy(), [[5, 6], [1, 2]])

    def test_getitem_with_tensor_index(self):
        a = T.tensor([10.0, 20.0, 30.0])
        idx = T.tensor([2, 1], dtype=np.int64)
        np.testing.assert_allclose(a[idx].numpy(), [30, 20])

    def test_index_select(self):
        a = T.randn(4, 5)
        out = a.index_select(1, np.array([4, 0]))
        np.testing.assert_allclose(out.numpy(), a.numpy()[:, [4, 0]])

    def test_setitem_on_leaf(self):
        a = T.zeros(3)
        a[np.array([1])] = T.tensor([5.0])
        np.testing.assert_allclose(a.numpy(), [0, 5, 0])

    def test_setitem_on_nonleaf_raises(self):
        a = T.randn(3, requires_grad=True)
        b = a * 2
        with pytest.raises(RuntimeError, match="in-place"):
            b[0] = 1.0

    def test_masked_fill(self):
        a = T.tensor([1.0, 2.0, 3.0])
        out = a.masked_fill(np.array([True, False, True]), -1.0)
        np.testing.assert_allclose(out.numpy(), [-1, 2, -1])

    def test_index_put(self):
        base = T.zeros(4, 2)
        out = T.index_put(base, np.array([1, 3]), T.ones(2, 2))
        np.testing.assert_allclose(out.numpy(), [[0, 0], [1, 1], [0, 0], [1, 1]])

    def test_scatter_rows_accumulates(self):
        vals = T.tensor([[1.0], [2.0], [3.0]])
        out = T.scatter_rows(2, np.array([0, 1, 0]), vals)
        np.testing.assert_allclose(out.numpy(), [[4], [2]])

    def test_where(self):
        out = T.where(np.array([True, False]), T.tensor([1.0, 1.0]), T.tensor([2.0, 2.0]))
        np.testing.assert_allclose(out.numpy(), [1, 2])

    def test_one_hot(self):
        out = T.one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(out.numpy(), [[1, 0, 0], [0, 0, 1]])

    def test_unique(self):
        vals, inv = T.unique(T.tensor([3, 1, 3, 2], dtype=np.int64), return_inverse=True)
        np.testing.assert_array_equal(vals.numpy(), [1, 2, 3])
        np.testing.assert_array_equal(vals.numpy()[inv.numpy()], [3, 1, 3, 2])


class TestSoftmaxAndComparisons:
    def test_softmax_rows_sum_to_one(self):
        a = T.randn(5, 7)
        s = a.softmax(dim=1).numpy()
        np.testing.assert_allclose(s.sum(axis=1), np.ones(5), rtol=1e-5)

    def test_softmax_shift_invariant(self):
        a = T.tensor([1.0, 2.0, 3.0])
        np.testing.assert_allclose(a.softmax().numpy(), (a + 100.0).softmax().numpy(), rtol=1e-5)

    def test_log_softmax_consistency(self):
        a = T.randn(3, 4)
        np.testing.assert_allclose(
            a.log_softmax(dim=1).numpy(), np.log(a.softmax(dim=1).numpy()), atol=1e-5
        )

    def test_comparisons_return_bool_tensors(self):
        a = T.tensor([1.0, 2.0, 3.0])
        assert (a > 2.0).numpy().tolist() == [False, False, True]
        assert (a >= 2.0).numpy().tolist() == [False, True, True]
        assert (a < 2.0).numpy().tolist() == [True, False, False]
        assert (a <= 2.0).numpy().tolist() == [True, True, False]
        assert (a == 2.0).numpy().tolist() == [False, True, False]
        assert (a != 2.0).numpy().tolist() == [True, False, True]

    def test_maximum_minimum(self):
        a, b = T.tensor([1.0, 5.0]), T.tensor([3.0, 2.0])
        np.testing.assert_allclose(T.maximum(a, b).numpy(), [3, 5])
        np.testing.assert_allclose(T.minimum(a, b).numpy(), [1, 2])


class TestMisc:
    def test_item_and_len(self):
        assert T.tensor([7.0]).item() == 7.0
        assert len(T.zeros(4, 2)) == 4

    def test_numel_size_dim(self):
        a = T.zeros(3, 4)
        assert a.numel() == 12
        assert a.size() == (3, 4)
        assert a.size(1) == 4
        assert a.dim() == 2

    def test_clone_is_independent(self):
        a = T.tensor([1.0, 2.0])
        b = a.clone()
        b.data[0] = 99.0
        assert a.numpy()[0] == 1.0

    def test_detach_shares_data(self):
        a = T.tensor([1.0], requires_grad=True)
        d = a.detach()
        assert not d.requires_grad
        d.data[0] = 5.0
        assert a.numpy()[0] == 5.0

    def test_astype_conversions(self):
        a = T.tensor([1.5, 2.5])
        assert a.long().dtype == np.int64
        assert a.bool().dtype == np.bool_
        assert a.long().float().dtype == np.float32

    def test_requires_grad_rejects_ints(self):
        with pytest.raises(TypeError):
            Tensor(np.array([1, 2]), requires_grad=True)

    def test_repr_mentions_grad_and_device(self):
        r = repr(T.tensor([1.0], requires_grad=True, device="cuda"))
        assert "requires_grad=True" in r and "cuda" in r
