"""Tests for dynamic labels, ROC-AUC, and the node-classification pipeline."""

import numpy as np
import pytest

import repro.core as tg
from repro import tensor as T
from repro.bench import (
    NodeClassifier,
    collect_source_embeddings,
    roc_auc,
    train_node_classifier,
)
from repro.data import get_dataset
from repro.data.synthetic import DATASETS, generate_edges, generate_labels
from repro.models import JODIE, OptFlags


class TestRocAuc:
    def test_perfect_and_inverted(self):
        labels = np.array([0, 0, 1, 1])
        assert roc_auc(labels, np.array([0.1, 0.2, 0.8, 0.9])) == 1.0
        assert roc_auc(labels, np.array([0.9, 0.8, 0.2, 0.1])) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=4000)
        scores = rng.random(4000)
        assert abs(roc_auc(labels, scores) - 0.5) < 0.05

    def test_ties_handled_with_average_ranks(self):
        labels = np.array([1, 0])
        assert roc_auc(labels, np.array([0.5, 0.5])) == 0.5

    def test_degenerate_single_class(self):
        assert roc_auc(np.zeros(5), np.random.default_rng(0).random(5)) == 0.5
        assert roc_auc(np.ones(5), np.random.default_rng(0).random(5)) == 0.5

    def test_matches_brute_force_pair_count(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            labels = rng.integers(0, 2, size=30)
            if labels.sum() in (0, 30):
                labels[0] = 1 - labels[0]
            scores = rng.random(30)
            pos = scores[labels == 1]
            neg = scores[labels == 0]
            wins = sum((p > q) + 0.5 * (p == q) for p in pos for q in neg)
            expected = wins / (len(pos) * len(neg))
            assert roc_auc(labels, scores) == pytest.approx(expected)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            roc_auc(np.ones(2), np.ones(3))


class TestLabelGenerator:
    def test_labels_for_every_edge(self):
        spec = DATASETS["mooc"]
        src, _, ts = generate_edges(spec)
        labels = generate_labels(spec, src, ts)
        assert labels.shape == (spec.num_edges,)
        assert set(np.unique(labels)) <= {0, 1}

    def test_imbalanced_positive_rate(self):
        spec = DATASETS["mooc"]
        src, _, ts = generate_edges(spec)
        labels = generate_labels(spec, src, ts)
        rate = labels.mean()
        assert 0.005 < rate < 0.08  # tail events, well below balance

    def test_positive_rate_parameter(self):
        spec = DATASETS["mooc"]
        src, _, ts = generate_edges(spec)
        low = generate_labels(spec, src, ts, positive_rate=0.01).mean()
        high = generate_labels(spec, src, ts, positive_rate=0.10).mean()
        assert low < high

    def test_deterministic(self):
        spec = DATASETS["wiki"]
        src, _, ts = generate_edges(spec)
        np.testing.assert_array_equal(
            generate_labels(spec, src, ts), generate_labels(spec, src, ts)
        )

    def test_positives_concentrate_on_bursts(self):
        """The planted signal: positive interactions have smaller gaps
        since the user's previous interaction than negatives do."""
        spec = DATASETS["mooc"]
        src, _, ts = generate_edges(spec)
        labels = generate_labels(spec, src, ts)
        last = {}
        gaps = np.full(len(src), np.inf)
        for i in range(len(src)):
            u = int(src[i])
            if u in last:
                gaps[i] = ts[i] - last[u]
            last[u] = ts[i]
        pos_gaps = gaps[(labels == 1) & np.isfinite(gaps)]
        neg_gaps = gaps[(labels == 0) & np.isfinite(gaps)]
        assert np.median(pos_gaps) < np.median(neg_gaps)

    def test_datasets_expose_labels(self):
        ds = get_dataset("mooc")
        assert ds.edge_labels is not None
        assert len(ds.edge_labels) == ds.num_edges


class TestDecoderPipeline:
    def test_classifier_shapes(self):
        clf = NodeClassifier(16)
        out = clf(T.randn(8, 16))
        assert out.shape == (8,)

    def test_decoder_learns_separable_data(self):
        rng = np.random.default_rng(0)
        n = 2000
        labels = (rng.random(n) < 0.1).astype(np.int64)
        embeds = rng.standard_normal((n, 8)).astype(np.float32)
        embeds[labels == 1, 0] += 3.0  # plant a separable direction
        _, auc = train_node_classifier(embeds, labels, epochs=20, seed=1)
        assert auc > 0.9

    def test_decoder_at_chance_on_noise(self):
        rng = np.random.default_rng(0)
        labels = (rng.random(1500) < 0.1).astype(np.int64)
        embeds = rng.standard_normal((1500, 8)).astype(np.float32)
        _, auc = train_node_classifier(embeds, labels, epochs=10, seed=1)
        assert 0.3 < auc < 0.7

    def test_collect_source_embeddings(self):
        ds = get_dataset("wiki")
        g = ds.build_graph()
        ctx = tg.TContext(g)
        g.set_memory(8)
        g.set_mailbox(JODIE.required_mailbox_dim(8, ds.efeat.shape[1]))
        model = JODIE(ctx, dim_node=ds.nfeat.shape[1], dim_edge=ds.efeat.shape[1],
                      dim_time=8, dim_embed=8, dim_mem=8, opt=OptFlags.none())
        embeds, labels = collect_source_embeddings(model, g, ds, batch_size=500, stop=1500)
        assert embeds.shape == (1500, 8)
        assert labels.shape == (1500,)
        np.testing.assert_array_equal(labels, ds.edge_labels[:1500])

    def test_collect_requires_labels(self):
        ds = get_dataset("wiki")
        g = ds.build_graph()
        ctx = tg.TContext(g)
        g.set_memory(8)
        g.set_mailbox(JODIE.required_mailbox_dim(8, ds.efeat.shape[1]))
        model = JODIE(ctx, dim_node=ds.nfeat.shape[1], dim_edge=ds.efeat.shape[1],
                      dim_time=8, dim_embed=8, dim_mem=8)
        import dataclasses
        unlabeled = dataclasses.replace(ds, edge_labels=None)
        with pytest.raises(ValueError):
            collect_source_embeddings(model, g, unlabeled, batch_size=500)
