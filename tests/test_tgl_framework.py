"""Tests for the TGL baseline framework: MFG, sampler, memory, models."""

import numpy as np
import pytest

import repro.core as tg
from repro import nn
from repro import tensor as T
from repro.core import TSampler
from repro.data import NegativeSampler, get_dataset
from repro.tensor.device import CUDA, runtime
from repro.tgl import (
    MFG,
    GRUMemoryUpdater,
    TGLAPAN,
    TGLJODIE,
    TGLMailBox,
    TGLSampler,
    TGLTGAT,
    TGLTGN,
    latest_unique_messages,
)
from repro.bench import train_epoch


@pytest.fixture(scope="module")
def wiki():
    return get_dataset("wiki")


def make_batch(g, size=40, start=100):
    batch = tg.TBatch(g, start, start + size)
    batch.neg_nodes = np.random.default_rng(0).integers(0, g.num_nodes, size=size)
    return batch


class TestMFG:
    def _mfg(self, g):
        sampler = TGLSampler(g, 5)
        return sampler.sample_hop(
            T.CPU, np.array([0, 1, 2]), np.array([2000.0, 2000.0, 2000.0])
        )

    def test_fused_deltas(self, wiki):
        g = wiki.build_graph()
        mfg = self._mfg(g)
        np.testing.assert_allclose(
            mfg.deltas, mfg.dsttimes[mfg.dstindex] - mfg.etimes
        )
        assert np.all(mfg.deltas >= 0)

    def test_allnodes_layout(self, wiki):
        g = wiki.build_graph()
        mfg = self._mfg(g)
        nodes = mfg.allnodes()
        np.testing.assert_array_equal(nodes[: mfg.num_dst], mfg.dstnodes)
        np.testing.assert_array_equal(nodes[mfg.num_dst :], mfg.srcnodes)

    def test_load_targets(self, wiki):
        g = wiki.build_graph()
        mfg = self._mfg(g)
        assert mfg.load("x", g.nfeat, which="dst").shape == (mfg.num_dst, 172)
        assert mfg.load("x", g.nfeat, which="src").shape == (mfg.num_src, 172)
        assert mfg.load("x", g.nfeat, which="all").shape == (mfg.num_dst + mfg.num_src, 172)
        assert mfg.load_edges("f", g.efeat).shape == (mfg.num_src, 172)
        with pytest.raises(ValueError):
            mfg.load("x", g.nfeat, which="bogus")

    def test_eager_load_is_pageable_transfer(self, wiki):
        g = wiki.build_graph()  # features on host
        sampler = TGLSampler(g, 5)
        mfg = sampler.sample_hop(CUDA, np.array([0, 1]), np.array([2000.0, 2000.0]))
        mfg.load("h", g.nfeat, which="all")
        assert runtime.transfer_stats.bytes > 0
        assert runtime.transfer_stats.pinned_bytes == 0  # TGL never pins


class TestTGLSampler:
    def test_kernel_parity_with_tglite(self, wiki):
        """Both frameworks must sample identical temporal neighborhoods."""
        g = wiki.build_graph()
        nodes = np.array([0, 5, 9])
        times = np.array([1e6, 1e6, 1e6])
        mfg = TGLSampler(g, 7).sample_hop(T.CPU, nodes, times)
        ctx = tg.TContext(g)
        blk = tg.TBlock(ctx, 0, nodes, times)
        TSampler(7, "recent").sample(blk)
        np.testing.assert_array_equal(mfg.srcnodes, blk.srcnodes)
        np.testing.assert_array_equal(mfg.eids, blk.eids)
        np.testing.assert_array_equal(mfg.dstindex, blk.dstindex)

    def test_multihop_returns_innermost_first(self, wiki):
        g = wiki.build_graph()
        mfgs = TGLSampler(g, 3).sample(T.CPU, np.array([0, 1]), np.array([2e6, 2e6]), 2)
        assert len(mfgs) == 2
        outer = mfgs[1]
        inner = mfgs[0]
        assert outer.num_dst == 2
        assert inner.num_dst == outer.num_dst + outer.num_src
        np.testing.assert_array_equal(inner.dstnodes, outer.allnodes())


class TestTGLMailBox:
    def test_latest_unique_messages(self):
        nids = np.array([3, 1, 3, 2])
        mail = T.tensor(np.arange(8, dtype=np.float32).reshape(4, 2))
        ts = np.array([1.0, 2.0, 3.0, 4.0])
        uniq, rows, tss = latest_unique_messages(nids, mail, ts)
        np.testing.assert_array_equal(uniq, [1, 2, 3])
        np.testing.assert_allclose(rows.numpy(), [[2, 3], [6, 7], [4, 5]])
        np.testing.assert_allclose(tss, [2, 4, 3])

    def test_update_mailbox_keeps_latest(self):
        mb = TGLMailBox(4, 2, 3)
        mail = T.tensor(np.arange(6, dtype=np.float32).reshape(2, 3))
        mb.update_mailbox(np.array([1, 1]), mail, np.array([1.0, 2.0]))
        np.testing.assert_allclose(mb.mailbox.data[1], [3, 4, 5])
        assert mb.mailbox_ts[1] == 2.0

    def test_multislot_ring(self):
        mb = TGLMailBox(2, 2, 1, slots=2)
        for v in range(3):
            mb.update_mailbox(np.array([0]), T.full((1, 1), float(v)), np.array([float(v)]))
        np.testing.assert_allclose(mb.mailbox.data[0].reshape(-1), [2, 1])

    def test_prep_input_mails(self, wiki):
        g = wiki.build_graph()
        mb = TGLMailBox(g.num_nodes, 4, 6)
        mfg = TGLSampler(g, 3).sample_hop(T.CPU, np.array([0, 1]), np.array([2e6, 2e6]))
        mb.prep_input_mails(mfg)
        n = mfg.num_dst + mfg.num_src
        assert mfg.srcdata["mem"].shape == (n, 4)
        assert mfg.srcdata["mail"].shape == (n, 6)
        assert mfg.srcdata["mem_ts"].shape == (n,)

    def test_update_memory_and_reset(self):
        mb = TGLMailBox(3, 2, 2)
        mb.update_memory(np.array([1]), T.ones(1, 2), np.array([5.0]))
        assert mb.node_memory.data[1].sum() == 2.0
        mb.reset()
        assert mb.node_memory.data.sum() == 0


class TestGRUMemoryUpdater:
    def test_records_last_updated(self, wiki):
        g = wiki.build_graph()
        mb = TGLMailBox(g.num_nodes, 8, 10)
        updater = GRUMemoryUpdater(dim_mail=10, dim_time=4, dim_mem=8, dim_node=172)
        mfg = TGLSampler(g, 2).sample_hop(T.CPU, np.array([0, 1]), np.array([2e6, 2e6]))
        mb.prep_input_mails(mfg)
        mfg.load("feat", g.nfeat, which="all")
        out = updater(mfg)
        n = mfg.num_dst + mfg.num_src
        assert out.shape == (n, 8)
        assert updater.last_updated_nids.shape == (n,)
        assert updater.last_updated_mem.shape == (n, 8)
        assert "h" in mfg.srcdata


@pytest.mark.parametrize("name", ["tgat", "tgn", "jodie", "apan"])
class TestTGLModels:
    def _build(self, name, g, ds):
        dn, de, dm = 172, 172, 16
        common = dict(dim_node=dn, dim_edge=de, dim_time=16, dim_embed=16)
        if name == "tgat":
            return TGLTGAT(g, num_layers=2, num_nbrs=5, **common)
        if name == "tgn":
            mb = TGLMailBox(g.num_nodes, dm, 2 * dm + de)
            return TGLTGN(g, mb, dim_mem=dm, num_layers=2, num_nbrs=5, **common)
        if name == "jodie":
            mb = TGLMailBox(g.num_nodes, dm, dm + de)
            return TGLJODIE(g, mb, dim_mem=dm, **common)
        mb = TGLMailBox(g.num_nodes, dm, 2 * dm + de, slots=4)
        return TGLAPAN(g, mb, dim_mem=dm, num_nbrs=5, **common)

    def test_forward_shapes(self, name, wiki):
        g = wiki.build_graph()
        model = self._build(name, g, wiki)
        pos, neg = model(make_batch(g))
        assert pos.shape == (40,) and neg.shape == (40,)

    def test_training_reduces_loss(self, name, wiki):
        g = wiki.build_graph()
        model = self._build(name, g, wiki)
        opt = nn.Adam(model.parameters(), lr=1e-2)
        neg = NegativeSampler.for_dataset(wiki)
        _, loss0 = train_epoch(model, g, opt, neg, 200, stop=800)
        model.reset_state()
        _, loss1 = train_epoch(model, g, opt, neg, 200, stop=800)
        assert loss1 < loss0

    def test_reset_state(self, name, wiki):
        g = wiki.build_graph()
        model = self._build(name, g, wiki)
        model(make_batch(g))
        model.reset_state()
        if hasattr(model, "mailbox"):
            assert model.mailbox.node_memory.data.sum() == 0
