"""Data-movement policy tests for the model layer (pinned vs pageable)."""

import numpy as np
import pytest

import repro.core as tg
from repro import tensor as T
from repro.data import get_dataset
from repro.models import APAN, JODIE, TGN, OptFlags
from repro.tensor.device import runtime


@pytest.fixture
def cuda_ctx_host_data():
    ds = get_dataset("wiki")
    g = ds.build_graph(feature_device="cpu")
    ctx = tg.TContext(g, device="cuda")
    return ds, g, ctx


def make_batch(g, size=60, start=200):
    batch = tg.TBatch(g, start, start + size)
    batch.neg_nodes = np.random.default_rng(0).integers(0, g.num_nodes, size=size)
    return batch


def build(name, ds, g, ctx, opt):
    dn, de, dm = ds.nfeat.shape[1], ds.efeat.shape[1], 8
    common = dict(dim_node=dn, dim_edge=de, dim_time=8, dim_embed=8,
                  dim_mem=dm, opt=opt)
    if name == "tgn":
        g.set_memory(dm, device="cpu")
        g.set_mailbox(TGN.required_mailbox_dim(dm, de), device="cpu")
        return TGN(ctx, num_layers=1, num_nbrs=3, **common).to("cuda")
    if name == "jodie":
        g.set_memory(dm, device="cpu")
        g.set_mailbox(JODIE.required_mailbox_dim(dm, de), device="cpu")
        return JODIE(ctx, **common).to("cuda")
    g.set_memory(dm, device="cpu")
    g.set_mailbox(APAN.required_mailbox_dim(dm, de), slots=3, device="cpu")
    return APAN(ctx, num_nbrs=3, mailbox_slots=3, **common).to("cuda")


@pytest.mark.parametrize("name", ["tgn", "jodie", "apan"])
class TestPinnedPolicy:
    def test_preload_routes_through_pinned(self, name, cuda_ctx_host_data):
        ds, g, ctx = cuda_ctx_host_data
        model = build(name, ds, g, ctx, OptFlags.preload_only())
        runtime.transfer_stats.reset()
        model(make_batch(g))
        stats = runtime.transfer_stats
        assert stats.pinned_bytes > 0
        # The bulk of the traffic (gathers + write-backs) is pinned.
        assert stats.pinned_bytes / stats.bytes > 0.5

    def test_no_preload_stays_pageable(self, name, cuda_ctx_host_data):
        ds, g, ctx = cuda_ctx_host_data
        model = build(name, ds, g, ctx, OptFlags.none())
        runtime.transfer_stats.reset()
        model(make_batch(g))
        stats = runtime.transfer_stats
        assert stats.bytes > 0
        assert stats.pinned_bytes == 0


class TestFetchHelpers:
    def test_fetch_rows_pins_only_host_to_device(self, cuda_ctx_host_data):
        ds, g, ctx = cuda_ctx_host_data
        model = build("jodie", ds, g, ctx, OptFlags.preload_only())
        runtime.transfer_stats.reset()
        out = model.fetch_rows(g.nfeat, np.array([0, 1, 2]))
        assert out.device.is_cuda
        assert runtime.transfer_stats.pinned_bytes == runtime.transfer_stats.bytes > 0

    def test_fetch_rows_same_device_is_free(self):
        ds = get_dataset("wiki")
        g = ds.build_graph(feature_device="cuda")
        ctx = tg.TContext(g, device="cuda")
        model = build("jodie", ds, g, ctx, OptFlags.preload_only())
        # memory/mailbox were placed on cpu by build(); move for this test.
        g.mem.to("cuda")
        g.mailbox.to("cuda")
        runtime.transfer_stats.reset()
        model.fetch_rows(g.nfeat, np.array([0, 1]))
        assert runtime.transfer_stats.bytes == 0

    def test_to_storage_charges_pinned_rate(self, cuda_ctx_host_data):
        ds, g, ctx = cuda_ctx_host_data
        model = build("jodie", ds, g, ctx, OptFlags.preload_only())
        runtime.transfer_stats.reset()
        dev_tensor = T.ones(4, 8, device="cuda")
        back = model.to_storage(dev_tensor, "cpu")
        assert back.device.is_cpu
        assert runtime.transfer_stats.pinned_bytes == dev_tensor.data.nbytes

    def test_storage_writes_pay_transfer(self, cuda_ctx_host_data):
        ds, g, ctx = cuda_ctx_host_data
        build("jodie", ds, g, ctx, OptFlags.none())
        runtime.transfer_stats.reset()
        g.mem.update(np.array([0]), T.ones(1, 8, device="cuda"), np.array([1.0]))
        assert runtime.transfer_stats.bytes == 1 * 8 * 4
        g.mailbox.store(np.array([0]),
                        T.ones(1, g.mailbox.dim, device="cuda"), np.array([1.0]))
        assert runtime.transfer_stats.bytes > 1 * 8 * 4
