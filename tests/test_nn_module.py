"""Tests for the Module system: registration, state, modes, movement."""

import numpy as np
import pytest

from repro import nn
from repro import tensor as T
from repro.tensor import CUDA


class Net(nn.Module):
    def __init__(self):
        super().__init__()
        self.fc1 = nn.Linear(4, 3)
        self.fc2 = nn.Linear(3, 2)
        self.scale = nn.Parameter(np.ones(1, dtype=np.float32))
        self.register_buffer("running", T.zeros(2))

    def forward(self, x):
        return self.fc2(self.fc1(x).relu()) * self.scale


class TestRegistration:
    def test_parameters_discovered_recursively(self):
        net = Net()
        names = dict(net.named_parameters())
        assert set(names) == {
            "scale", "fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias",
        }

    def test_modules_traversal(self):
        net = Net()
        kinds = [type(m).__name__ for m in net.modules()]
        assert kinds == ["Net", "Linear", "Linear"]

    def test_children(self):
        net = Net()
        assert len(list(net.children())) == 2

    def test_reassignment_replaces(self):
        net = Net()
        net.fc1 = nn.Linear(4, 3)
        assert len(list(net.parameters())) == 5

    def test_buffers(self):
        net = Net()
        assert dict(net.named_buffers()).keys() == {"running"}

    def test_module_list(self):
        ml = nn.ModuleList([nn.Linear(2, 2), nn.Linear(2, 2)])
        assert len(ml) == 2
        assert len(list(nn.Sequential(nn.Linear(2, 2)).parameters())) == 2
        params = list(ml.parameters())
        assert len(params) == 4

    def test_sequential_forward(self):
        seq = nn.Sequential(nn.Linear(3, 3), nn.ReLU(), nn.Linear(3, 1))
        out = seq(T.randn(5, 3))
        assert out.shape == (5, 1)
        assert isinstance(seq[1], nn.ReLU)


class TestModes:
    def test_train_eval_propagates(self):
        net = Net()
        assert net.training
        net.eval()
        assert not net.training and not net.fc1.training
        net.train()
        assert net.fc2.training

    def test_zero_grad(self):
        net = Net()
        out = net(T.randn(2, 4))
        out.sum().backward()
        assert net.fc1.weight.grad is not None
        net.zero_grad()
        assert net.fc1.weight.grad is None


class TestState:
    def test_state_dict_roundtrip(self):
        net1, net2 = Net(), Net()
        net2.load_state_dict(net1.state_dict())
        for (n1, p1), (n2, p2) in zip(net1.named_parameters(), net2.named_parameters()):
            assert n1 == n2
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_state_dict_includes_buffers(self):
        assert "running" in Net().state_dict()

    def test_load_missing_key_raises(self):
        net = Net()
        state = net.state_dict()
        state.pop("fc1.weight")
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_load_shape_mismatch_raises(self):
        net = Net()
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((1, 1), dtype=np.float32)
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_state_dict_is_a_copy(self):
        net = Net()
        state = net.state_dict()
        state["fc1.weight"][...] = 99.0
        assert not np.all(net.fc1.weight.data == 99.0)


class TestDeviceMovement:
    def test_to_moves_params_and_buffers(self):
        net = Net().to("cuda")
        for p in net.parameters():
            assert p.device is CUDA
        assert net.running.device is CUDA

    def test_forward_on_device(self):
        net = Net().to("cuda")
        out = net(T.randn(2, 4, device="cuda"))
        assert out.device is CUDA


class TestInit:
    def test_xavier_uniform_bounds(self):
        t = T.zeros(50, 50, requires_grad=True)
        nn.init.xavier_uniform_(t)
        bound = np.sqrt(6.0 / 100)
        assert np.abs(t.data).max() <= bound

    def test_xavier_normal_std(self):
        t = T.zeros(200, 200)
        nn.init.xavier_normal_(t)
        assert abs(t.data.std() - np.sqrt(2.0 / 400)) < 2e-3

    def test_constant_and_zeros_ones(self):
        t = T.zeros(3)
        nn.init.constant_(t, 4.0)
        assert np.all(t.data == 4.0)
        nn.init.ones_(t)
        assert np.all(t.data == 1.0)
        nn.init.zeros_(t)
        assert np.all(t.data == 0.0)

    def test_kaiming_nonzero(self):
        t = T.zeros(10, 10)
        nn.init.kaiming_uniform_(t)
        assert np.abs(t.data).sum() > 0
