"""Tests for TContext: modes, pinned pool, caches, scratch space."""

import numpy as np
import pytest

import repro.core as tg
from repro.core.context import _EmbedCache, _PinnedPool
from repro.tensor.device import runtime


class TestModes:
    def test_defaults(self, tiny_graph):
        ctx = tg.TContext(tiny_graph)
        assert ctx.training
        assert ctx.device.is_cpu
        assert tiny_graph.ctx is ctx

    def test_train_eval_roundtrip(self, tiny_ctx):
        tiny_ctx.eval()
        assert not tiny_ctx.training
        tiny_ctx.train()
        assert tiny_ctx.training

    def test_entering_training_clears_embed_caches(self, tiny_ctx):
        tiny_ctx.eval()
        cache = tiny_ctx.embed_cache(0)
        cache.store(np.array([1]), np.array([1.0]), np.ones((1, 4), dtype=np.float32))
        tiny_ctx.train(True)
        hit, _ = tiny_ctx.embed_cache(0).lookup(np.array([1]), np.array([1.0]))
        assert not hit.any()

    def test_repr(self, tiny_ctx):
        assert "TContext" in repr(tiny_ctx)

    def test_reset_clears_scratch(self, tiny_ctx):
        tiny_ctx.embed_cache(0)
        tiny_ctx.time_table(123)
        tiny_ctx.reset()
        assert tiny_ctx.stats().cache == {}
        assert tiny_ctx.time_table(123)["version"] is None


class TestPinnedPool:
    def test_staged_tensor_is_pinned_copy(self):
        pool = _PinnedPool()
        rows = np.arange(12, dtype=np.float32).reshape(3, 4)
        staged = pool.stage(rows)
        assert staged.pinned
        np.testing.assert_array_equal(staged.numpy(), rows)

    def test_buffer_reuse_by_shape(self):
        pool = _PinnedPool()
        pool.stage(np.zeros((5, 4), dtype=np.float32))
        pool.stage(np.zeros((3, 4), dtype=np.float32))  # fits existing buffer
        assert pool.hits == 1
        assert pool.misses == 1

    def test_buffer_grows_when_needed(self):
        pool = _PinnedPool()
        pool.stage(np.zeros((2, 4), dtype=np.float32))
        pool.stage(np.zeros((10, 4), dtype=np.float32))
        assert pool.misses == 2

    def test_different_dtypes_use_separate_buffers(self):
        pool = _PinnedPool()
        pool.stage(np.zeros((2, 4), dtype=np.float32))
        pool.stage(np.zeros((2, 4), dtype=np.float64))
        assert pool.misses == 2

    def test_staged_values_survive_overwrite_until_transfer(self):
        # The pool reuses buffers: transferring before the next stage() is
        # the contract (preload transfers immediately).
        pool = _PinnedPool()
        first = pool.stage(np.ones((2, 2), dtype=np.float32))
        moved = first.to("cuda")
        pool.stage(np.zeros((2, 2), dtype=np.float32))
        np.testing.assert_array_equal(moved.numpy(), np.ones((2, 2)))

    def test_clear(self):
        pool = _PinnedPool()
        pool.stage(np.zeros((2, 2), dtype=np.float32))
        pool.clear()
        pool.stage(np.zeros((2, 2), dtype=np.float32))
        assert pool.misses == 2


class TestEmbedCache:
    def test_lookup_before_any_store(self):
        cache = _EmbedCache(4)
        hit, rows = cache.lookup(np.array([1, 2]), np.array([1.0, 2.0]))
        assert not hit.any()
        assert rows is None

    def test_store_and_lookup(self):
        cache = _EmbedCache(4)
        cache.store(np.array([1, 2]), np.array([1.0, 2.0]),
                    np.array([[1.0, 1.0], [2.0, 2.0]], dtype=np.float32))
        hit, rows = cache.lookup(np.array([2, 3]), np.array([2.0, 3.0]))
        np.testing.assert_array_equal(hit, [True, False])
        np.testing.assert_allclose(rows[0], [2.0, 2.0])

    def test_time_distinguishes_entries(self):
        cache = _EmbedCache(4)
        cache.store(np.array([1]), np.array([1.0]), np.ones((1, 2), dtype=np.float32))
        hit, _ = cache.lookup(np.array([1]), np.array([2.0]))
        assert not hit.any()

    def test_fifo_eviction(self):
        cache = _EmbedCache(2)
        for i in range(3):
            cache.store(np.array([i]), np.array([0.0]),
                        np.full((1, 2), float(i), dtype=np.float32))
        hit0, _ = cache.lookup(np.array([0]), np.array([0.0]))
        hit2, _ = cache.lookup(np.array([2]), np.array([0.0]))
        assert not hit0.any() and hit2.all()

    def test_overwrite_same_key_updates_value(self):
        cache = _EmbedCache(4)
        cache.store(np.array([1]), np.array([0.0]), np.ones((1, 2), dtype=np.float32))
        cache.store(np.array([1]), np.array([0.0]), np.full((1, 2), 9.0, dtype=np.float32))
        _, rows = cache.lookup(np.array([1]), np.array([0.0]))
        np.testing.assert_allclose(rows[0], [9.0, 9.0])

    def test_hit_rate(self):
        cache = _EmbedCache(4)
        cache.store(np.array([1]), np.array([0.0]), np.ones((1, 2), dtype=np.float32))
        cache.lookup(np.array([1, 2]), np.array([0.0, 0.0]))
        assert cache.hit_rate == 0.5
        cache.clear()
        assert cache.hit_rate == 0.0

    def test_empty_query(self):
        cache = _EmbedCache(4)
        hit, rows = cache.lookup(np.empty(0, dtype=np.int64), np.empty(0))
        assert hit.shape == (0,)


class TestTimeTables:
    def test_time_table_lazily_created(self, tiny_ctx):
        table = tiny_ctx.time_table(42)
        assert table["version"] is None
        assert tiny_ctx.time_table(42) is table

    def test_clear_time_tables(self, tiny_ctx):
        tiny_ctx.time_table(42)["version"] = 7
        tiny_ctx.set_time_zero_slot(42, 1, np.zeros(3))
        tiny_ctx.clear_time_tables()
        assert tiny_ctx.time_table(42)["version"] is None
        assert tiny_ctx.time_zero_slot(42) is None
