"""Property-based tests for the NN substrate and trainer invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro import nn
from repro import tensor as T

finite = st.floats(-5, 5, allow_nan=False, width=32)


@settings(max_examples=25, deadline=None)
@given(hnp.arrays(np.float32, st.tuples(st.integers(1, 8), st.integers(1, 6)), elements=finite))
def test_gru_output_always_bounded(x):
    gru = nn.GRUCell(x.shape[1], 5)
    h = gru(T.Tensor(x), T.zeros(x.shape[0], 5))
    assert np.all(np.abs(h.numpy()) <= 1.0 + 1e-5)


@settings(max_examples=25, deadline=None)
@given(hnp.arrays(np.float32, st.tuples(st.integers(1, 8), st.integers(2, 6)), elements=finite))
def test_layernorm_rows_standardized(x):
    ln = nn.LayerNorm(x.shape[1], elementwise_affine=False)
    out = ln(T.Tensor(x)).numpy()
    np.testing.assert_allclose(out.mean(axis=1), 0.0, atol=1e-4)


@settings(max_examples=25, deadline=None)
@given(
    hnp.arrays(np.float32, st.tuples(st.integers(1, 12)), elements=finite),
    hnp.arrays(np.float32, st.tuples(st.integers(1, 12)), elements=st.floats(0, 1, width=32)),
)
def test_bce_nonnegative_and_zero_at_perfect(logits, _):
    n = len(logits)
    targets = (logits > 0).astype(np.float32)
    loss = nn.bce_with_logits(T.Tensor(logits * 50), T.Tensor(targets)).item()
    assert loss >= -1e-6
    # Confident-correct logits give near-zero loss.
    assert loss < 0.05 or np.any(np.abs(logits) < 0.1)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_adam_is_deterministic_given_seed(seed):
    def run():
        T.manual_seed(seed)
        lin = nn.Linear(4, 3)
        opt = nn.Adam(lin.parameters(), lr=1e-2)
        x = T.Tensor(np.random.default_rng(seed).standard_normal((5, 4)).astype(np.float32))
        for _ in range(3):
            opt.zero_grad()
            lin(x).sum().backward()
            opt.step()
        return lin.weight.data.copy()

    np.testing.assert_array_equal(run(), run())


@settings(max_examples=20, deadline=None)
@given(hnp.arrays(np.float32, st.tuples(st.integers(2, 10)), elements=finite))
def test_sgd_step_descends_quadratic(grad_seed):
    x = nn.Parameter(grad_seed.copy())
    opt = nn.SGD([x], lr=0.01)
    before = float((x.data ** 2).sum())
    loss = (T.Tensor(x.data) * 0).sum()  # build no graph; set grad directly
    x.grad = 2 * x.data
    opt.step()
    after = float((x.data ** 2).sum())
    assert after <= before + 1e-6


@settings(max_examples=25, deadline=None)
@given(hnp.arrays(np.float32, st.tuples(st.integers(1, 30)), elements=finite))
def test_time_encode_bounded_and_deterministic(deltas):
    enc = nn.TimeEncode(6)
    a = enc(T.Tensor(deltas)).numpy()
    b = enc.encode_raw(deltas)
    assert np.all(np.abs(a) <= 1 + 1e-6)
    np.testing.assert_allclose(a, b, rtol=1e-5)
