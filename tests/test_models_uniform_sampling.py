"""End-to-end coverage of the uniform sampling strategy inside models."""

import numpy as np
import pytest

import repro.core as tg
from repro import nn
from repro.data import NegativeSampler, get_dataset
from repro.models import TGAT, OptFlags
from repro.bench import train_epoch
from repro.tgl import TGLTGAT


@pytest.fixture(scope="module")
def wiki():
    return get_dataset("wiki")


class TestUniformSampling:
    def test_tgat_trains_with_uniform(self, wiki):
        g = wiki.build_graph()
        ctx = tg.TContext(g)
        model = TGAT(ctx, dim_node=172, dim_edge=172, dim_time=8, dim_embed=8,
                     num_layers=2, num_nbrs=5, sampling="uniform",
                     opt=OptFlags.none())
        opt = nn.Adam(model.parameters(), lr=1e-3)
        neg = NegativeSampler.for_dataset(wiki)
        _, loss = train_epoch(model, g, opt, neg, 300, stop=900)
        assert np.isfinite(loss)

    def test_tgl_tgat_trains_with_uniform(self, wiki):
        g = wiki.build_graph()
        model = TGLTGAT(g, dim_node=172, dim_edge=172, dim_time=8, dim_embed=8,
                        num_layers=2, num_nbrs=5, sampling="uniform")
        opt = nn.Adam(model.parameters(), lr=1e-3)
        neg = NegativeSampler.for_dataset(wiki)
        _, loss = train_epoch(model, g, opt, neg, 300, stop=900)
        assert np.isfinite(loss)

    def test_uniform_differs_from_recent(self, wiki):
        g = wiki.build_graph()
        ctx = tg.TContext(g)
        batch = tg.TBatch(g, 2000, 2100)
        blk_r = batch.block(ctx)
        tg.TSampler(5, "recent").sample(blk_r)
        blk_u = batch.block(ctx)
        tg.TSampler(5, "uniform", seed=9).sample(blk_u)
        # Same temporal constraint...
        assert np.all(blk_u.etimes < blk_u.dsttimes[blk_u.dstindex])
        # ...but different picks somewhere (the stream is long enough that
        # at least one node has more history than the fan-out).
        assert not (
            len(blk_r.eids) == len(blk_u.eids) and np.array_equal(blk_r.eids, blk_u.eids)
        )
