"""Tests for the TGLite-based model implementations."""

import numpy as np
import pytest

import repro.core as tg
from repro import nn
from repro import tensor as T
from repro.data import NegativeSampler, get_dataset
from repro.models import APAN, JODIE, TGAT, TGN, EdgePredictor, OptFlags, TemporalAttnLayer
from repro.bench import train_epoch, evaluate


@pytest.fixture(scope="module")
def wiki():
    return get_dataset("wiki")


def make_graph(ds):
    return ds.build_graph()


def make_batch(g, size=50, start=100):
    batch = tg.TBatch(g, start, start + size)
    rng = np.random.default_rng(0)
    batch.neg_nodes = rng.integers(0, g.num_nodes, size=size)
    return batch


class TestOptFlags:
    def test_presets(self):
        none = OptFlags.none()
        assert not (none.dedup or none.cache or none.preload or none.time_precompute)
        pre = OptFlags.preload_only()
        assert pre.preload and not pre.dedup
        full = OptFlags.all()
        assert full.dedup and full.cache and full.time_precompute and full.preload


class TestEdgePredictor:
    def test_forward_shape(self):
        pred = EdgePredictor(8)
        out = pred(T.randn(5, 8), T.randn(5, 8))
        assert out.shape == (5,)

    def test_score_batch_split(self):
        pred = EdgePredictor(4)
        embeds = T.randn(9, 4)
        pos, neg = pred.score_batch(embeds, 3)
        assert pos.shape == (3,) and neg.shape == (3,)
        # pos scores pair rows [0:3] with [3:6]; negatives with [6:9].
        manual_pos = pred(embeds[:3], embeds[3:6])
        np.testing.assert_allclose(pos.numpy(), manual_pos.numpy(), rtol=1e-5)


class TestTemporalAttnLayer:
    def _block_with_h(self, ctx, g):
        blk = tg.TBatch(g, 100, 120).block(ctx)
        tg.TSampler(5).sample(blk)
        blk.dstdata["h"] = blk.dstfeat()
        blk.srcdata["h"] = blk.srcfeat()
        return blk

    def test_output_shape(self, wiki):
        g = make_graph(wiki)
        ctx = tg.TContext(g)
        layer = TemporalAttnLayer(ctx, 2, dim_node=172, dim_edge=172, dim_time=16, dim_out=16)
        blk = self._block_with_h(ctx, g)
        assert layer(blk).shape == (blk.num_dst, 16)

    def test_gradients_reach_all_weights(self, wiki):
        g = make_graph(wiki)
        ctx = tg.TContext(g)
        layer = TemporalAttnLayer(ctx, 2, dim_node=172, dim_edge=172, dim_time=16, dim_out=16)
        blk = self._block_with_h(ctx, g)
        layer(blk).sum().backward()
        for name, p in layer.named_parameters():
            assert p.grad is not None, name

    def test_neighborless_block_still_works(self, wiki):
        g = make_graph(wiki)
        ctx = tg.TContext(g)
        layer = TemporalAttnLayer(ctx, 2, dim_node=172, dim_edge=172, dim_time=16, dim_out=16)
        blk = tg.TBlock(ctx, 0, np.array([0, 1]), np.array([0.0, 0.0]))
        blk.set_nbrs(np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0), np.empty(0, np.int64))
        blk.dstdata["h"] = blk.dstfeat()
        assert layer(blk).shape == (2, 16)

    def test_dim_head_divisibility_check(self, wiki):
        g = make_graph(wiki)
        ctx = tg.TContext(g)
        with pytest.raises(ValueError):
            TemporalAttnLayer(ctx, 3, dim_node=4, dim_edge=4, dim_time=4, dim_out=16)


def build_model(name, ctx, g, ds, opt=None, **kw):
    opt = opt if opt is not None else OptFlags.none()
    dn, de, dm = ds.nfeat.shape[1], ds.efeat.shape[1], 16
    common = dict(dim_node=dn, dim_edge=de, dim_time=16, dim_embed=16, opt=opt)
    if name == "tgat":
        return TGAT(ctx, num_layers=2, num_nbrs=5, **common, **kw)
    if name == "tgn":
        g.set_memory(dm)
        g.set_mailbox(TGN.required_mailbox_dim(dm, de))
        return TGN(ctx, dim_mem=dm, num_layers=2, num_nbrs=5, **common, **kw)
    if name == "jodie":
        g.set_memory(dm)
        g.set_mailbox(JODIE.required_mailbox_dim(dm, de))
        return JODIE(ctx, dim_mem=dm, **common, **kw)
    g.set_memory(dm)
    g.set_mailbox(APAN.required_mailbox_dim(dm, de), slots=4)
    return APAN(ctx, dim_mem=dm, num_nbrs=5, mailbox_slots=4, **common, **kw)


@pytest.mark.parametrize("name", ["tgat", "tgn", "jodie", "apan"])
class TestAllModels:
    def test_forward_shapes(self, name, wiki):
        g = make_graph(wiki)
        ctx = tg.TContext(g)
        model = build_model(name, ctx, g, wiki)
        pos, neg = model(make_batch(g))
        assert pos.shape == (50,) and neg.shape == (50,)

    def test_forward_requires_negatives(self, name, wiki):
        g = make_graph(wiki)
        ctx = tg.TContext(g)
        model = build_model(name, ctx, g, wiki)
        with pytest.raises(ValueError):
            model(tg.TBatch(g, 0, 10))

    def test_training_reduces_loss(self, name, wiki):
        g = make_graph(wiki)
        ctx = tg.TContext(g)
        model = build_model(name, ctx, g, wiki)
        opt = nn.Adam(model.parameters(), lr=1e-2)
        neg = NegativeSampler.for_dataset(wiki)
        _, loss0 = train_epoch(model, g, opt, neg, 200, stop=1000)
        model.reset_state()
        _, loss1 = train_epoch(model, g, opt, neg, 200, stop=1000)
        assert loss1 < loss0

    def test_eval_mode_does_not_build_grads(self, name, wiki):
        g = make_graph(wiki)
        ctx = tg.TContext(g)
        model = build_model(name, ctx, g, wiki)
        model.eval()
        with T.no_grad():
            pos, _ = model(make_batch(g))
        assert pos.is_leaf

    def test_reset_state_clears_everything(self, name, wiki):
        g = make_graph(wiki)
        ctx = tg.TContext(g)
        model = build_model(name, ctx, g, wiki)
        model(make_batch(g))
        model.reset_state()
        if g.mem is not None:
            assert g.mem.data.data.sum() == 0
        if g.mailbox is not None:
            assert g.mailbox.mail.data.sum() == 0


class TestOptimizationEquivalence:
    """The paper's central semantic claim: optimization operators are
    semantic-preserving transformations (identical outputs in eval mode)."""

    @pytest.mark.parametrize("name", ["tgat", "tgn"])
    def test_opt_flags_do_not_change_eval_outputs(self, name, wiki):
        outputs = {}
        for label, flags in [("plain", OptFlags.none()), ("opt", OptFlags.all())]:
            T.manual_seed(99)
            g = make_graph(wiki)
            ctx = tg.TContext(g)
            model = build_model(name, ctx, g, wiki, opt=flags, dropout=0.0) \
                if name in ("tgat", "tgn") else None
            model.eval()
            with T.no_grad():
                scores = []
                for start in (100, 100, 150):  # repeat to exercise the cache
                    pos, neg = model(make_batch(g, size=40, start=start))
                    scores.append(np.concatenate([pos.numpy(), neg.numpy()]))
            outputs[label] = np.concatenate(scores)
        np.testing.assert_allclose(outputs["plain"], outputs["opt"], atol=1e-4)

    def test_dedup_training_equivalence_tgat(self, wiki):
        # One optimizer step with and without dedup must produce the same
        # parameter updates (gradients are re-expanded exactly).
        grads = {}
        for label, flags in [("plain", OptFlags.none()), ("dedup", OptFlags(dedup=True))]:
            T.manual_seed(11)
            g = make_graph(wiki)
            ctx = tg.TContext(g)
            model = build_model("tgat", ctx, g, wiki, opt=flags, dropout=0.0)
            pos, neg = model(make_batch(g, size=40))
            (pos.sum() + neg.sum()).backward()
            grads[label] = {n: p.grad.copy() for n, p in model.named_parameters()}
        for key in grads["plain"]:
            a, b = grads["plain"][key], grads["dedup"][key]
            # Relative comparison: time-encoder frequency gradients scale
            # with time deltas (~1e6), so accumulation-order float32 noise
            # is proportionally large in absolute terms.
            scale = max(np.abs(a).max(), 1.0)
            assert np.abs(a - b).max() / scale < 1e-3, f"gradient mismatch for {key}"


class TestModelSpecifics:
    def test_tgat_chain_length_matches_layers(self, wiki):
        g = make_graph(wiki)
        ctx = tg.TContext(g)
        model = build_model("tgat", ctx, g, wiki)
        assert len(model.attn_layers) == 2

    def test_tgn_mailbox_dim_helper(self):
        assert TGN.required_mailbox_dim(100, 172) == 372
        assert JODIE.required_mailbox_dim(100, 172) == 272
        assert APAN.required_mailbox_dim(100, 172) == 372

    def test_tgn_memory_updates_after_batch(self, wiki):
        g = make_graph(wiki)
        ctx = tg.TContext(g)
        model = build_model("tgn", ctx, g, wiki)
        batch = make_batch(g)
        model(batch)
        # Mailbox must now hold messages for the batch's endpoints.
        endpoints = np.unique(np.concatenate([batch.src, batch.dst]))
        assert np.abs(g.mailbox.mail.data[endpoints]).sum() > 0

    def test_jodie_memory_freshness_guard(self, wiki):
        g = make_graph(wiki)
        ctx = tg.TContext(g)
        model = build_model("jodie", ctx, g, wiki)
        batch = make_batch(g)
        # First pass delivers mail; second pass consumes it (memory moves).
        model(batch)
        model(batch)
        snapshot = g.mem.data.data.copy()
        # Third pass: every node's mail_ts <= mem_ts now, so the freshness
        # guard must prevent re-applying the same messages.
        model(batch)
        np.testing.assert_allclose(g.mem.data.data, snapshot, atol=1e-6)

    def test_apan_delivers_mail_to_neighbors(self, wiki):
        g = make_graph(wiki)
        ctx = tg.TContext(g)
        model = build_model("apan", ctx, g, wiki)
        batch = make_batch(g)
        model(batch)
        assert np.abs(g.mailbox.mail.data).sum() > 0

    def test_ap_improves_over_random(self, wiki):
        g = make_graph(wiki)
        ctx = tg.TContext(g)
        model = build_model("tgat", ctx, g, wiki)
        opt = nn.Adam(model.parameters(), lr=1e-3)
        neg = NegativeSampler.for_dataset(wiki)
        train_end, val_end, _ = wiki.splits()
        for _ in range(2):
            model.reset_state()
            train_epoch(model, g, opt, neg, 300, stop=train_end)
        _, ap = evaluate(model, g, neg, 300, start=train_end, stop=val_end)
        assert ap > 0.6  # random scores ~0.5
