"""Numeric gradient checks and autograd-engine behaviour tests."""

import numpy as np
import pytest

from repro import tensor as T
from repro.tensor import Tensor, no_grad, enable_grad, is_grad_enabled

from conftest import check_grad


class TestNumericGradients:
    """Each op's analytic gradient must match central differences."""

    def test_add(self):
        check_grad(lambda a, b: a + b, (3, 4), (3, 4))

    def test_add_broadcast(self):
        check_grad(lambda a, b: a + b, (3, 4), (4,))

    def test_sub(self):
        check_grad(lambda a, b: a - b, (2, 3), (2, 3))

    def test_mul_broadcast(self):
        check_grad(lambda a, b: a * b, (2, 3), (1, 3))

    def test_div(self):
        check_grad(lambda a, b: a / b, (4,), (4,), positive=True)

    def test_neg(self):
        check_grad(lambda a: -a, (5,))

    def test_pow(self):
        check_grad(lambda a: a**3, (4,), positive=True)

    def test_matmul(self):
        check_grad(lambda a, b: a @ b, (3, 4), (4, 2))

    def test_matmul_batched(self):
        check_grad(lambda a, b: a @ b, (2, 3, 4), (2, 4, 2))

    def test_matmul_nd_with_2d(self):
        # The shared-weight fast path in backward.
        check_grad(lambda a, b: a @ b, (2, 3, 4), (4, 5))

    def test_matvec(self):
        check_grad(lambda a, b: a @ b, (3, 4), (4,))

    def test_exp(self):
        check_grad(lambda a: a.exp(), (4,))

    def test_log(self):
        check_grad(lambda a: a.log(), (4,), positive=True)

    def test_sqrt(self):
        check_grad(lambda a: a.sqrt(), (4,), positive=True)

    def test_cos_sin(self):
        check_grad(lambda a: a.cos(), (5,))
        check_grad(lambda a: a.sin(), (5,))

    def test_tanh_sigmoid(self):
        check_grad(lambda a: a.tanh(), (5,))
        check_grad(lambda a: a.sigmoid(), (5,))

    def test_relu(self):
        check_grad(lambda a: a.relu(), (6,), positive=True)

    def test_leaky_relu(self):
        check_grad(lambda a: a.leaky_relu(0.1), (6,), positive=True)

    def test_abs(self):
        check_grad(lambda a: a.abs(), (5,), positive=True)

    def test_clamp(self):
        check_grad(lambda a: a.clamp(min=0.6, max=1.4) * 2.0, (6,), positive=True, atol=5e-2)

    def test_sum_dims(self):
        check_grad(lambda a: a.sum(dim=1), (3, 4))
        check_grad(lambda a: a.sum(dim=0, keepdim=True), (3, 4))

    def test_mean_var(self):
        check_grad(lambda a: a.mean(dim=1), (3, 4))
        check_grad(lambda a: a.var(dim=1), (3, 4))

    def test_max_global_and_dim(self):
        check_grad(lambda a: a.max(), (7,))
        check_grad(lambda a: a.max(dim=1)[0], (3, 4))

    def test_reshape_transpose_permute(self):
        check_grad(lambda a: a.reshape(6) * T.tensor(np.arange(6, dtype=np.float32)), (2, 3))
        check_grad(lambda a: a.transpose(0, 1) @ a, (3, 4))
        check_grad(lambda a: a.permute(1, 0).exp(), (2, 3))

    def test_squeeze_unsqueeze_expand(self):
        check_grad(lambda a: a.unsqueeze(1).expand(3, 4, 2).sin(), (3, 2))

    def test_repeat_interleave(self):
        check_grad(lambda a: a.repeat_interleave(3, dim=0).tanh(), (2, 2))

    def test_cat(self):
        check_grad(lambda a, b: T.cat([a, b], dim=0).sigmoid(), (2, 3), (4, 3))

    def test_stack(self):
        check_grad(lambda a, b: T.stack([a, b], dim=1).exp(), (3, 2), (3, 2))

    def test_where(self):
        mask = np.array([True, False, True, False])
        check_grad(lambda a, b: T.where(mask, a, b) ** 2, (4,), (4,))

    def test_maximum_minimum(self):
        check_grad(lambda a, b: T.maximum(a, b) * 2.0, (5,), (5,))
        check_grad(lambda a, b: T.minimum(a, b) * 2.0, (5,), (5,))

    def test_getitem(self):
        idx = np.array([2, 0, 2])
        check_grad(lambda a: a[idx].exp(), (4, 2))

    def test_index_select(self):
        check_grad(lambda a: a.index_select(1, np.array([1, 1, 0])).tanh(), (2, 3))

    def test_index_put(self):
        idx = np.array([0, 2])
        check_grad(lambda a, b: T.index_put(a, idx, b).sigmoid(), (4, 2), (2, 2))

    def test_scatter_rows(self):
        idx = np.array([0, 1, 0, 1])
        check_grad(lambda v: T.scatter_rows(2, idx, v).exp(), (4, 3))

    def test_masked_fill(self):
        mask = np.array([False, True, False])
        check_grad(lambda a: a.masked_fill(mask, 5.0).exp(), (3,))

    def test_softmax(self):
        check_grad(lambda a: a.softmax(dim=1) * T.tensor(np.arange(8, dtype=np.float32).reshape(2, 4)), (2, 4))

    def test_log_softmax(self):
        check_grad(lambda a: a.log_softmax(dim=1) * T.tensor(np.arange(8, dtype=np.float32).reshape(2, 4)), (2, 4))

    def test_composite_expression(self):
        check_grad(
            lambda a, b: ((a @ b).relu().softmax(dim=1) * (a @ b).sigmoid()).mean(dim=0),
            (4, 3),
            (3, 5),
        )


class TestEngineBehaviour:
    def test_backward_accumulates_on_leaves(self):
        a = T.tensor([1.0, 2.0], requires_grad=True)
        (a * 2).sum().backward()
        (a * 3).sum().backward()
        np.testing.assert_allclose(a.grad, [5, 5])

    def test_zero_grad(self):
        a = T.tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_diamond_graph(self):
        # y = x*x + x*x must give dy/dx = 4x through shared subexpressions.
        x = T.tensor([3.0], requires_grad=True)
        sq = x * x
        y = sq + sq
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [12.0])

    def test_reused_tensor_many_paths(self):
        x = T.tensor([2.0], requires_grad=True)
        y = x * x * x  # x^3, dy/dx = 3x^2 = 12
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [12.0])

    def test_backward_requires_scalar_or_seed(self):
        a = T.randn(3, requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()
        (a * 2).backward(np.ones(3, dtype=np.float32))
        np.testing.assert_allclose(a.grad, [2, 2, 2])

    def test_backward_on_no_grad_tensor_raises(self):
        a = T.tensor([1.0])
        with pytest.raises(RuntimeError):
            a.backward()

    def test_seed_shape_mismatch_raises(self):
        a = T.randn(3, requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward(np.ones(4, dtype=np.float32))

    def test_no_grad_blocks_graph(self):
        a = T.tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2
        assert not out.requires_grad
        assert out.is_leaf

    def test_no_grad_nesting_and_flag(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with enable_grad():
                assert is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_detach_cuts_graph(self):
        a = T.tensor([1.0], requires_grad=True)
        out = (a * 2).detach() * 3
        assert not out.requires_grad

    def test_clone_keeps_graph(self):
        a = T.tensor([2.0], requires_grad=True)
        a.clone().sum().backward()
        np.testing.assert_allclose(a.grad, [1.0])

    def test_to_device_keeps_graph(self):
        a = T.tensor([2.0], requires_grad=True)
        b = a.to("cuda") * 3
        b.sum().backward()
        np.testing.assert_allclose(a.grad, [3.0])

    def test_intermediate_grads_not_retained(self):
        a = T.tensor([1.0], requires_grad=True)
        mid = a * 2
        out = mid * 3
        out.sum().backward()
        assert mid.grad is None
        assert a.grad is not None

    def test_astype_float_keeps_graph(self):
        a = T.tensor([1.0], requires_grad=True)
        a.astype(np.float64).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0])

    def test_grad_dtype_matches_leaf(self):
        a = T.tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        assert a.grad.dtype == np.float32
