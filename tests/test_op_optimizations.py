"""Tests for the optimization operators: dedup, cache, preload, precompute."""

import numpy as np
import pytest

import repro.core as tg
from repro.core import op as tgop
from repro.core.op.dedup import unique_node_times
from repro import nn
from repro import tensor as T
from repro.tensor.device import runtime


class TestDedup:
    def test_unique_node_times_inverse(self):
        nodes = np.array([3, 1, 3, 1, 2])
        times = np.array([1.0, 2.0, 1.0, 2.0, 3.0])
        un, ut, inv = unique_node_times(nodes, times)
        np.testing.assert_array_equal(un[inv], nodes)
        np.testing.assert_allclose(ut[inv], times)
        assert len(un) == 3

    def test_same_node_different_times_not_merged(self):
        un, _, _ = unique_node_times(np.array([1, 1]), np.array([1.0, 2.0]))
        assert len(un) == 2

    def test_dedup_shrinks_and_restores(self, tiny_ctx):
        nodes = np.array([0, 1, 0, 1, 2])
        times = np.array([5.0, 5.0, 5.0, 5.0, 5.0])
        blk = tg.TBlock(tiny_ctx, 0, nodes, times)
        tgop.dedup(blk)
        assert blk.num_dst == 3
        out = blk.run_hooks(T.tensor(np.arange(3, dtype=np.float32).reshape(3, 1)))
        assert out.shape == (5, 1)
        # Rows for identical (node, time) pairs are identical.
        np.testing.assert_allclose(out.numpy()[0], out.numpy()[2])
        np.testing.assert_allclose(out.numpy()[1], out.numpy()[3])

    def test_dedup_noop_when_all_unique(self, tiny_ctx):
        blk = tg.TBlock(tiny_ctx, 0, np.array([0, 1]), np.array([1.0, 2.0]))
        tgop.dedup(blk)
        assert blk.num_dst == 2
        assert blk.hooks == ()

    def test_dedup_after_sampling_rejected(self, tiny_ctx, tiny_graph):
        blk = tg.TBatch(tiny_graph, 0, 3).block(tiny_ctx)
        tg.TSampler(2).sample(blk)
        with pytest.raises(RuntimeError):
            tgop.dedup(blk)

    def test_dedup_gradient_flows_through_inverse(self, tiny_ctx):
        blk = tg.TBlock(tiny_ctx, 0, np.array([0, 0, 1]), np.ones(3))
        tgop.dedup(blk)
        computed = T.randn(2, 2, requires_grad=True)
        out = blk.run_hooks(computed)
        out.sum().backward()
        # Node 0's row feeds two output rows -> gradient 2.
        np.testing.assert_allclose(computed.grad, [[2, 2], [1, 1]])


class TestCache:
    def test_noop_in_training_mode(self, tiny_ctx):
        tiny_ctx.train(True)
        blk = tg.TBlock(tiny_ctx, 0, np.array([0, 1]), np.ones(2))
        tgop.cache(tiny_ctx, blk)
        assert blk.hooks == ()

    def test_miss_then_hit(self, tiny_ctx):
        tiny_ctx.eval()
        nodes, times = np.array([0, 1]), np.ones(2)
        blk1 = tg.TBlock(tiny_ctx, 0, nodes, times)
        tgop.cache(tiny_ctx, blk1)
        assert blk1.num_dst == 2  # all misses on first sight
        first = T.tensor([[1.0, 2.0], [3.0, 4.0]])
        blk1.run_hooks(first)

        blk2 = tg.TBlock(tiny_ctx, 0, nodes, times)
        tgop.cache(tiny_ctx, blk2)
        assert blk2.num_dst == 0  # everything cached
        out = blk2.run_hooks(T.zeros(0, 2))
        np.testing.assert_allclose(out.numpy(), first.numpy())

    def test_partial_hit_merges(self, tiny_ctx):
        tiny_ctx.eval()
        blk1 = tg.TBlock(tiny_ctx, 0, np.array([0]), np.array([1.0]))
        tgop.cache(tiny_ctx, blk1)
        blk1.run_hooks(T.tensor([[7.0]]))

        blk2 = tg.TBlock(tiny_ctx, 0, np.array([0, 5]), np.array([1.0, 2.0]))
        tgop.cache(tiny_ctx, blk2)
        assert blk2.num_dst == 1
        np.testing.assert_array_equal(blk2.dstnodes, [5])
        out = blk2.run_hooks(T.tensor([[9.0]]))
        np.testing.assert_allclose(out.numpy(), [[7.0], [9.0]])

    def test_caches_are_per_layer(self, tiny_ctx):
        tiny_ctx.eval()
        blk = tg.TBlock(tiny_ctx, 0, np.array([0]), np.array([1.0]))
        tgop.cache(tiny_ctx, blk)
        blk.run_hooks(T.tensor([[1.0]]))
        other_layer = tg.TBlock(tiny_ctx, 1, np.array([0]), np.array([1.0]))
        tgop.cache(tiny_ctx, other_layer)
        assert other_layer.num_dst == 1  # layer-1 cache knows nothing

    def test_training_switch_clears_cache(self, tiny_ctx):
        tiny_ctx.eval()
        blk = tg.TBlock(tiny_ctx, 0, np.array([0]), np.array([1.0]))
        tgop.cache(tiny_ctx, blk)
        blk.run_hooks(T.tensor([[1.0]]))
        tiny_ctx.train(True)
        tiny_ctx.eval()
        blk2 = tg.TBlock(tiny_ctx, 0, np.array([0]), np.array([1.0]))
        tgop.cache(tiny_ctx, blk2)
        assert blk2.num_dst == 1

    def test_eviction_when_over_capacity(self, tiny_graph):
        ctx = tg.TContext(tiny_graph, cache_limit=2)
        ctx.eval()
        for node in range(3):
            blk = tg.TBlock(ctx, 0, np.array([node]), np.array([1.0]))
            tgop.cache(ctx, blk)
            blk.run_hooks(T.tensor([[float(node)]]))
        # Node 0 was evicted by node 2 (FIFO ring of 2 slots).
        blk = tg.TBlock(ctx, 0, np.array([0]), np.array([1.0]))
        tgop.cache(ctx, blk)
        assert blk.num_dst == 1

    def test_hit_rate_stat(self, tiny_ctx):
        tiny_ctx.eval()
        blk = tg.TBlock(tiny_ctx, 0, np.array([0]), np.array([1.0]))
        tgop.cache(tiny_ctx, blk)
        blk.run_hooks(T.tensor([[1.0]]))
        blk = tg.TBlock(tiny_ctx, 0, np.array([0]), np.array([1.0]))
        tgop.cache(tiny_ctx, blk)
        assert tiny_ctx.stats().cache[0].hit_rate == 0.5

    def test_cache_after_sampling_rejected(self, tiny_ctx, tiny_graph):
        tiny_ctx.eval()
        blk = tg.TBatch(tiny_graph, 0, 3).block(tiny_ctx)
        tg.TSampler(2).sample(blk)
        with pytest.raises(RuntimeError):
            tgop.cache(tiny_ctx, blk)


class TestPreload:
    def test_preload_fills_caches(self, tiny_graph):
        ctx = tg.TContext(tiny_graph, device="cuda")
        tiny_graph.set_memory(4)
        tiny_graph.set_mailbox(4)
        head = tg.TBatch(tiny_graph, 4, 8).block(ctx)
        tg.TSampler(2).sample(head)
        tail = head.next_block()
        tg.TSampler(2).sample(tail)
        tgop.preload(head, use_pin=True)
        before = runtime.transfer_stats.bytes
        # Everything the computation touches is free afterwards: edge
        # features on every hop, raw features/memory/mail on the tail.
        head.efeat(); tail.efeat()
        tail.dstfeat(); tail.srcfeat(); tail.nfeat()
        tail.mem_data(); tail.mail()
        assert runtime.transfer_stats.bytes == before

    def test_preload_skips_inner_node_features(self, tiny_graph):
        """Inner blocks receive computed embeddings, so preload must not
        waste transfers gathering their raw node features."""
        ctx = tg.TContext(tiny_graph, device="cuda")
        head = tg.TBatch(tiny_graph, 4, 8).block(ctx)
        tg.TSampler(2).sample(head)
        tail = head.next_block()
        tg.TSampler(2).sample(tail)
        tgop.preload(head, use_pin=True)
        before = runtime.transfer_stats.bytes
        head.dstfeat()  # not preloaded -> lazily fetched now
        assert runtime.transfer_stats.bytes > before

    def test_preload_uses_pinned_path(self, tiny_graph):
        ctx = tg.TContext(tiny_graph, device="cuda")
        head = tg.TBatch(tiny_graph, 4, 8).block(ctx)
        tg.TSampler(2).sample(head)
        tgop.preload(head, use_pin=True)
        assert runtime.transfer_stats.pinned_bytes > 0
        assert runtime.transfer_stats.pinned_bytes == runtime.transfer_stats.bytes

    def test_preload_without_pin(self, tiny_graph):
        ctx = tg.TContext(tiny_graph, device="cuda")
        head = tg.TBatch(tiny_graph, 4, 8).block(ctx)
        tg.TSampler(2).sample(head)
        tgop.preload(head, use_pin=False)
        assert runtime.transfer_stats.pinned_bytes == 0
        assert runtime.transfer_stats.bytes > 0

    def test_pinned_pool_reuses_buffers(self, tiny_graph):
        ctx = tg.TContext(tiny_graph, device="cuda")
        for _ in range(3):
            head = tg.TBatch(tiny_graph, 4, 8).block(ctx)
            tg.TSampler(2).sample(head)
            tgop.preload(head, use_pin=True)
        assert ctx.pinned_pool.hits > 0


class TestPrecompute:
    def test_zeros_matches_encoder(self, tiny_ctx):
        tiny_ctx.eval()
        enc = nn.TimeEncode(6)
        out = tgop.precomputed_zeros(tiny_ctx, enc, 4)
        expected = enc(T.zeros(4)).numpy()
        np.testing.assert_allclose(out.numpy(), expected, rtol=1e-5)

    def test_times_matches_encoder(self, tiny_ctx):
        tiny_ctx.eval()
        enc = nn.TimeEncode(6)
        deltas = np.array([0.0, 5.0, 5.0, 2.5], dtype=np.float32)
        out = tgop.precomputed_times(tiny_ctx, enc, deltas)
        expected = enc(T.tensor(deltas)).numpy()
        np.testing.assert_allclose(out.numpy(), expected, rtol=1e-5)

    def test_training_mode_is_differentiable(self, tiny_ctx):
        tiny_ctx.train(True)
        enc = nn.TimeEncode(4)
        out = tgop.precomputed_times(tiny_ctx, enc, np.array([1.0, 2.0]))
        out.sum().backward()
        assert enc.weight.grad is not None

    def test_eval_mode_reuses_table(self, tiny_ctx):
        tiny_ctx.eval()
        enc = nn.TimeEncode(4)
        tgop.precomputed_times(tiny_ctx, enc, np.array([1.0, 2.0]))
        table = tiny_ctx.time_table(id(enc))
        assert len(table["map"]) == 2
        tgop.precomputed_times(tiny_ctx, enc, np.array([2.0, 1.0, 2.0]))
        assert len(table["map"]) == 2  # no new entries

    def test_version_bump_invalidates(self, tiny_ctx):
        tiny_ctx.eval()
        enc = nn.TimeEncode(4)
        tgop.precomputed_times(tiny_ctx, enc, np.array([1.0]))
        enc.weight.data[...] *= 2.0
        enc.mark_updated()
        out = tgop.precomputed_times(tiny_ctx, enc, np.array([1.0]))
        np.testing.assert_allclose(out.numpy(), enc.encode_raw(np.array([1.0])), rtol=1e-5)

    def test_time_window_quantizes(self, tiny_graph):
        ctx = tg.TContext(tiny_graph, time_window=1.0)
        ctx.eval()
        enc = nn.TimeEncode(4)
        tgop.precomputed_times(ctx, enc, np.array([1.1, 0.9, 1.4]))
        assert len(ctx.time_table(id(enc))["map"]) == 1

    def test_zero_slot_reused_until_version_change(self, tiny_ctx):
        tiny_ctx.eval()
        enc = nn.TimeEncode(4)
        tgop.precomputed_zeros(tiny_ctx, enc, 2)
        slot = tiny_ctx.time_zero_slot(id(enc))
        tgop.precomputed_zeros(tiny_ctx, enc, 3)
        assert tiny_ctx.time_zero_slot(id(enc)) is slot
        enc.mark_updated()
        tgop.precomputed_zeros(tiny_ctx, enc, 1)
        assert tiny_ctx.time_zero_slot(id(enc)) is not slot
