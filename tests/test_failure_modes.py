"""Failure-injection tests: clean errors on misuse and degenerate inputs."""

import numpy as np
import pytest

import repro.core as tg
from repro import nn
from repro import tensor as T
from repro.core import op as tgop
from repro.data import NegativeSampler, get_dataset
from repro.models import TGAT, TGN, OptFlags


class TestGraphMisuse:
    def test_featureless_graph_fails_cleanly_in_tgat(self):
        g = tg.TGraph([0, 1, 2], [1, 2, 0], [1.0, 2.0, 3.0])
        ctx = tg.TContext(g)
        model = TGAT(ctx, dim_node=4, dim_edge=4, dim_time=4, dim_embed=4,
                     num_layers=1, num_nbrs=2)
        batch = tg.TBatch(g, 0, 2, neg_nodes=np.array([2, 2]))
        with pytest.raises(RuntimeError, match="node features"):
            model(batch)

    def test_tgn_without_memory_component(self):
        ds = get_dataset("wiki")
        g = ds.build_graph()  # no memory/mailbox attached
        ctx = tg.TContext(g)
        model = TGN(ctx, dim_node=172, dim_edge=172, dim_time=4, dim_embed=4,
                    dim_mem=4, num_layers=1, num_nbrs=2)
        batch = tg.TBatch(g, 0, 10, neg_nodes=np.zeros(10, dtype=np.int64))
        with pytest.raises(RuntimeError, match="mailbox|memory"):
            model(batch)

    def test_sampling_on_out_of_range_node_fails(self):
        g = tg.TGraph([0], [1], [1.0])
        ctx = tg.TContext(g)
        blk = tg.TBlock(ctx, 0, np.array([99]), np.array([1.0]))
        with pytest.raises(IndexError):
            tg.TSampler(2).sample(blk)


class TestDegenerateStreams:
    def test_all_edges_same_timestamp(self):
        g = tg.TGraph([0, 1, 2], [1, 2, 0], [5.0, 5.0, 5.0])
        ctx = tg.TContext(g)
        blk = tg.TBlock(ctx, 0, np.array([0, 1]), np.array([5.0, 5.0]))
        tg.TSampler(3).sample(blk)
        # Strictly-earlier rule: nothing visible at t == 5.
        assert blk.num_src == 0

    def test_single_edge_graph_trains(self):
        g = tg.TGraph([0], [1], [1.0], num_nodes=3)
        g.set_nfeat(np.ones((3, 4), dtype=np.float32))
        g.set_efeat(np.ones((1, 2), dtype=np.float32))
        ctx = tg.TContext(g)
        model = TGAT(ctx, dim_node=4, dim_edge=2, dim_time=4, dim_embed=4,
                     num_layers=1, num_nbrs=2)
        batch = tg.TBatch(g, 0, 1, neg_nodes=np.array([2]))
        pos, neg = model(batch)
        loss = nn.bce_with_logits(pos, T.ones(1)) + nn.bce_with_logits(neg, T.zeros(1))
        loss.backward()
        assert np.isfinite(loss.item())

    def test_batch_of_one_edge(self):
        ds = get_dataset("wiki")
        g = ds.build_graph()
        ctx = tg.TContext(g)
        model = TGAT(ctx, dim_node=172, dim_edge=172, dim_time=4, dim_embed=4,
                     num_layers=2, num_nbrs=3, opt=OptFlags.all())
        batch = tg.TBatch(g, 1000, 1001, neg_nodes=np.array([5]))
        pos, neg = model(batch)
        assert pos.shape == (1,) and neg.shape == (1,)

    def test_first_batch_has_no_history(self):
        """The very first chronological batch sees empty neighborhoods."""
        ds = get_dataset("wiki")
        g = ds.build_graph()
        ctx = tg.TContext(g)
        model = TGAT(ctx, dim_node=172, dim_edge=172, dim_time=4, dim_embed=4,
                     num_layers=2, num_nbrs=3)
        batch = tg.TBatch(g, 0, 5, neg_nodes=np.arange(5))
        pos, neg = model(batch)
        assert np.all(np.isfinite(pos.numpy()))


class TestEmptyGraphSampling:
    def test_kernel_sampling_on_edgeless_graph(self):
        """An edgeless CSR yields zero rows from the kernel, no crash."""
        from repro.core.kernels import temporal_sample

        indptr = np.zeros(6, dtype=np.int64)  # 5 nodes, no edges
        empty_i = np.empty(0, dtype=np.int64)
        empty_t = np.empty(0, dtype=np.float64)
        res = temporal_sample(indptr, empty_i, empty_i, empty_t,
                              np.array([0, 3, 4]), np.array([1.0, 2.0, 3.0]), k=4)
        assert res.num_rows == 0
        assert res.dstindex.dtype == np.int64

    def test_kernel_sampling_with_no_queries(self):
        from repro.core.kernels import temporal_sample

        ds = get_dataset("wiki")
        g = ds.build_graph()
        csr = g.csr()
        res = temporal_sample(csr.indptr, csr.indices, csr.eids, csr.etimes,
                              np.empty(0, dtype=np.int64),
                              np.empty(0, dtype=np.float64), k=4)
        assert res.num_rows == 0

    def test_sampler_on_edgeless_graph(self):
        g = tg.TGraph(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
                      np.empty(0, dtype=np.float64), num_nodes=4)
        ctx = tg.TContext(g)
        blk = tg.TBlock(ctx, 0, np.array([0, 2]), np.array([5.0, 6.0]))
        tg.TSampler(3).sample(blk)
        assert blk.num_src == 0


class TestCacheCapacityEdge:
    def test_cache_at_exact_capacity(self):
        """Filling a NodeTimeCache to exactly its capacity keeps every
        entry resident and the table self-consistent."""
        from repro.core.kernels import NodeTimeCache

        cap = 8
        cache = NodeTimeCache(capacity=cap, dim=4)
        nodes = np.arange(cap, dtype=np.int64)
        times = np.arange(cap, dtype=np.float64)
        values = np.arange(cap * 4, dtype=np.float32).reshape(cap, 4)
        cache.store(nodes, times, values)
        assert cache.num_entries == cap
        assert cache.validate() == []
        hit, out = cache.lookup(nodes, times)
        assert hit.all()
        np.testing.assert_array_equal(out[hit], values)

    def test_store_past_capacity_evicts_fifo(self):
        from repro.core.kernels import NodeTimeCache

        cap = 8
        cache = NodeTimeCache(capacity=cap, dim=4)
        nodes = np.arange(cap, dtype=np.int64)
        times = np.arange(cap, dtype=np.float64)
        cache.store(nodes, times, np.ones((cap, 4), dtype=np.float32))
        # One more entry evicts the oldest resident (FIFO ring).
        cache.store(np.array([100]), np.array([9.0]),
                    np.full((1, 4), 2.0, dtype=np.float32))
        assert cache.num_entries == cap
        assert cache.validate() == []
        hit, _ = cache.lookup(np.array([100]), np.array([9.0]))
        assert hit.all()
        hits, _ = cache.lookup(nodes, times)
        assert hits.sum() == cap - 1  # exactly one victim


class TestMailboxWraparound:
    def test_cursor_wraps_and_survives_checkpoint(self, tmp_path):
        """Multi-slot ring cursors wrap, checkpoint-restore bit-exactly,
        and subsequent stores land in the same slots as an uninterrupted
        mailbox."""
        from repro import nn as rnn
        from repro.bench import load_checkpoint, save_checkpoint

        class Tiny(rnn.Module):
            def __init__(self):
                super().__init__()
                self.lin = rnn.Linear(2, 2)

        def fill(mb, rounds):
            for r in range(rounds):
                mb.store(np.array([0, 1]),
                         np.full((2, 4), float(r), dtype=np.float32),
                         np.array([float(r), float(r)]))

        g = tg.TGraph([0, 1], [1, 0], [1.0, 2.0])
        g.set_mailbox(4, slots=3)
        fill(g.mailbox, 4)  # cursor wraps past the ring once
        assert g.mailbox._next_slot[0] == 4 % 3
        assert g.mailbox.validate() == []

        model = Tiny()
        path = str(tmp_path / "mb.npz")
        save_checkpoint(path, model, graph=g)

        g2 = tg.TGraph([0, 1], [1, 0], [1.0, 2.0])
        g2.set_mailbox(4, slots=3)
        load_checkpoint(path, model, graph=g2)
        np.testing.assert_array_equal(g2.mailbox.mail.data, g.mailbox.mail.data)
        np.testing.assert_array_equal(g2.mailbox._next_slot, g.mailbox._next_slot)

        # Continued stores behave identically to the uninterrupted mailbox.
        fill(g.mailbox, 2)
        fill(g2.mailbox, 2)
        np.testing.assert_array_equal(g2.mailbox.mail.data, g.mailbox.mail.data)
        np.testing.assert_array_equal(g2.mailbox.time, g.mailbox.time)
        assert g2.mailbox.validate() == []


class TestNumericalRobustness:
    def test_extreme_time_deltas_stay_finite(self):
        enc = nn.TimeEncode(8)
        out = enc(T.tensor(np.array([0.0, 1e12, 1e-12], dtype=np.float32)))
        assert np.all(np.isfinite(out.numpy()))

    def test_training_on_huge_timestamps(self):
        src = np.array([0, 1, 0, 1] * 20)
        dst = np.array([1, 0, 1, 0] * 20)
        ts = np.linspace(1e9, 1.2e9, 80)
        g = tg.TGraph(src, dst, ts)
        g.set_nfeat(np.random.default_rng(0).standard_normal((2, 4)).astype(np.float32))
        g.set_efeat(np.random.default_rng(1).standard_normal((80, 2)).astype(np.float32))
        ctx = tg.TContext(g)
        model = TGAT(ctx, dim_node=4, dim_edge=2, dim_time=4, dim_embed=4,
                     num_layers=1, num_nbrs=3)
        opt = nn.Adam(model.parameters(), lr=1e-3)
        from repro.bench import train_epoch
        sampler = NegativeSampler(np.array([0, 1]))
        _, loss = train_epoch(model, g, opt, sampler, 20, stop=60)
        assert np.isfinite(loss)

    def test_segment_softmax_all_equal_scores(self):
        scores = T.zeros(4)
        out = T.segment_softmax(scores, np.array([0, 0, 0, 0]), 1)
        np.testing.assert_allclose(out.numpy(), np.full(4, 0.25), rtol=1e-6)
