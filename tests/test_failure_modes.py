"""Failure-injection tests: clean errors on misuse and degenerate inputs."""

import numpy as np
import pytest

import repro.core as tg
from repro import nn
from repro import tensor as T
from repro.core import op as tgop
from repro.data import NegativeSampler, get_dataset
from repro.models import TGAT, TGN, OptFlags


class TestGraphMisuse:
    def test_featureless_graph_fails_cleanly_in_tgat(self):
        g = tg.TGraph([0, 1, 2], [1, 2, 0], [1.0, 2.0, 3.0])
        ctx = tg.TContext(g)
        model = TGAT(ctx, dim_node=4, dim_edge=4, dim_time=4, dim_embed=4,
                     num_layers=1, num_nbrs=2)
        batch = tg.TBatch(g, 0, 2, neg_nodes=np.array([2, 2]))
        with pytest.raises(RuntimeError, match="node features"):
            model(batch)

    def test_tgn_without_memory_component(self):
        ds = get_dataset("wiki")
        g = ds.build_graph()  # no memory/mailbox attached
        ctx = tg.TContext(g)
        model = TGN(ctx, dim_node=172, dim_edge=172, dim_time=4, dim_embed=4,
                    dim_mem=4, num_layers=1, num_nbrs=2)
        batch = tg.TBatch(g, 0, 10, neg_nodes=np.zeros(10, dtype=np.int64))
        with pytest.raises(RuntimeError, match="mailbox|memory"):
            model(batch)

    def test_sampling_on_out_of_range_node_fails(self):
        g = tg.TGraph([0], [1], [1.0])
        ctx = tg.TContext(g)
        blk = tg.TBlock(ctx, 0, np.array([99]), np.array([1.0]))
        with pytest.raises(IndexError):
            tg.TSampler(2).sample(blk)


class TestDegenerateStreams:
    def test_all_edges_same_timestamp(self):
        g = tg.TGraph([0, 1, 2], [1, 2, 0], [5.0, 5.0, 5.0])
        ctx = tg.TContext(g)
        blk = tg.TBlock(ctx, 0, np.array([0, 1]), np.array([5.0, 5.0]))
        tg.TSampler(3).sample(blk)
        # Strictly-earlier rule: nothing visible at t == 5.
        assert blk.num_src == 0

    def test_single_edge_graph_trains(self):
        g = tg.TGraph([0], [1], [1.0], num_nodes=3)
        g.set_nfeat(np.ones((3, 4), dtype=np.float32))
        g.set_efeat(np.ones((1, 2), dtype=np.float32))
        ctx = tg.TContext(g)
        model = TGAT(ctx, dim_node=4, dim_edge=2, dim_time=4, dim_embed=4,
                     num_layers=1, num_nbrs=2)
        batch = tg.TBatch(g, 0, 1, neg_nodes=np.array([2]))
        pos, neg = model(batch)
        loss = nn.bce_with_logits(pos, T.ones(1)) + nn.bce_with_logits(neg, T.zeros(1))
        loss.backward()
        assert np.isfinite(loss.item())

    def test_batch_of_one_edge(self):
        ds = get_dataset("wiki")
        g = ds.build_graph()
        ctx = tg.TContext(g)
        model = TGAT(ctx, dim_node=172, dim_edge=172, dim_time=4, dim_embed=4,
                     num_layers=2, num_nbrs=3, opt=OptFlags.all())
        batch = tg.TBatch(g, 1000, 1001, neg_nodes=np.array([5]))
        pos, neg = model(batch)
        assert pos.shape == (1,) and neg.shape == (1,)

    def test_first_batch_has_no_history(self):
        """The very first chronological batch sees empty neighborhoods."""
        ds = get_dataset("wiki")
        g = ds.build_graph()
        ctx = tg.TContext(g)
        model = TGAT(ctx, dim_node=172, dim_edge=172, dim_time=4, dim_embed=4,
                     num_layers=2, num_nbrs=3)
        batch = tg.TBatch(g, 0, 5, neg_nodes=np.arange(5))
        pos, neg = model(batch)
        assert np.all(np.isfinite(pos.numpy()))


class TestEmptyGraphSampling:
    def test_kernel_sampling_on_edgeless_graph(self):
        """An edgeless CSR yields zero rows from the kernel, no crash."""
        from repro.core.kernels import temporal_sample

        indptr = np.zeros(6, dtype=np.int64)  # 5 nodes, no edges
        empty_i = np.empty(0, dtype=np.int64)
        empty_t = np.empty(0, dtype=np.float64)
        res = temporal_sample(indptr, empty_i, empty_i, empty_t,
                              np.array([0, 3, 4]), np.array([1.0, 2.0, 3.0]), k=4)
        assert res.num_rows == 0
        assert res.dstindex.dtype == np.int64

    def test_kernel_sampling_with_no_queries(self):
        from repro.core.kernels import temporal_sample

        ds = get_dataset("wiki")
        g = ds.build_graph()
        csr = g.csr()
        res = temporal_sample(csr.indptr, csr.indices, csr.eids, csr.etimes,
                              np.empty(0, dtype=np.int64),
                              np.empty(0, dtype=np.float64), k=4)
        assert res.num_rows == 0

    def test_sampler_on_edgeless_graph(self):
        g = tg.TGraph(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
                      np.empty(0, dtype=np.float64), num_nodes=4)
        ctx = tg.TContext(g)
        blk = tg.TBlock(ctx, 0, np.array([0, 2]), np.array([5.0, 6.0]))
        tg.TSampler(3).sample(blk)
        assert blk.num_src == 0


class TestCacheCapacityEdge:
    def test_cache_at_exact_capacity(self):
        """Filling a NodeTimeCache to exactly its capacity keeps every
        entry resident and the table self-consistent."""
        from repro.core.kernels import NodeTimeCache

        cap = 8
        cache = NodeTimeCache(capacity=cap, dim=4)
        nodes = np.arange(cap, dtype=np.int64)
        times = np.arange(cap, dtype=np.float64)
        values = np.arange(cap * 4, dtype=np.float32).reshape(cap, 4)
        cache.store(nodes, times, values)
        assert cache.num_entries == cap
        assert cache.validate() == []
        hit, out = cache.lookup(nodes, times)
        assert hit.all()
        np.testing.assert_array_equal(out[hit], values)

    def test_store_past_capacity_evicts_fifo(self):
        from repro.core.kernels import NodeTimeCache

        cap = 8
        cache = NodeTimeCache(capacity=cap, dim=4)
        nodes = np.arange(cap, dtype=np.int64)
        times = np.arange(cap, dtype=np.float64)
        cache.store(nodes, times, np.ones((cap, 4), dtype=np.float32))
        # One more entry evicts the oldest resident (FIFO ring).
        cache.store(np.array([100]), np.array([9.0]),
                    np.full((1, 4), 2.0, dtype=np.float32))
        assert cache.num_entries == cap
        assert cache.validate() == []
        hit, _ = cache.lookup(np.array([100]), np.array([9.0]))
        assert hit.all()
        hits, _ = cache.lookup(nodes, times)
        assert hits.sum() == cap - 1  # exactly one victim


class TestMailboxWraparound:
    def test_cursor_wraps_and_survives_checkpoint(self, tmp_path):
        """Multi-slot ring cursors wrap, checkpoint-restore bit-exactly,
        and subsequent stores land in the same slots as an uninterrupted
        mailbox."""
        from repro import nn as rnn
        from repro.bench import load_checkpoint, save_checkpoint

        class Tiny(rnn.Module):
            def __init__(self):
                super().__init__()
                self.lin = rnn.Linear(2, 2)

        def fill(mb, rounds):
            for r in range(rounds):
                mb.store(np.array([0, 1]),
                         np.full((2, 4), float(r), dtype=np.float32),
                         np.array([float(r), float(r)]))

        g = tg.TGraph([0, 1], [1, 0], [1.0, 2.0])
        g.set_mailbox(4, slots=3)
        fill(g.mailbox, 4)  # cursor wraps past the ring once
        assert g.mailbox._next_slot[0] == 4 % 3
        assert g.mailbox.validate() == []

        model = Tiny()
        path = str(tmp_path / "mb.npz")
        save_checkpoint(path, model, graph=g)

        g2 = tg.TGraph([0, 1], [1, 0], [1.0, 2.0])
        g2.set_mailbox(4, slots=3)
        load_checkpoint(path, model, graph=g2)
        np.testing.assert_array_equal(g2.mailbox.mail.data, g.mailbox.mail.data)
        np.testing.assert_array_equal(g2.mailbox._next_slot, g.mailbox._next_slot)

        # Continued stores behave identically to the uninterrupted mailbox.
        fill(g.mailbox, 2)
        fill(g2.mailbox, 2)
        np.testing.assert_array_equal(g2.mailbox.mail.data, g.mailbox.mail.data)
        np.testing.assert_array_equal(g2.mailbox.time, g.mailbox.time)
        assert g2.mailbox.validate() == []


class TestNumericalRobustness:
    def test_extreme_time_deltas_stay_finite(self):
        enc = nn.TimeEncode(8)
        out = enc(T.tensor(np.array([0.0, 1e12, 1e-12], dtype=np.float32)))
        assert np.all(np.isfinite(out.numpy()))

    def test_training_on_huge_timestamps(self):
        src = np.array([0, 1, 0, 1] * 20)
        dst = np.array([1, 0, 1, 0] * 20)
        ts = np.linspace(1e9, 1.2e9, 80)
        g = tg.TGraph(src, dst, ts)
        g.set_nfeat(np.random.default_rng(0).standard_normal((2, 4)).astype(np.float32))
        g.set_efeat(np.random.default_rng(1).standard_normal((80, 2)).astype(np.float32))
        ctx = tg.TContext(g)
        model = TGAT(ctx, dim_node=4, dim_edge=2, dim_time=4, dim_embed=4,
                     num_layers=1, num_nbrs=3)
        opt = nn.Adam(model.parameters(), lr=1e-3)
        from repro.bench import train_epoch
        sampler = NegativeSampler(np.array([0, 1]))
        _, loss = train_epoch(model, g, opt, sampler, 20, stop=60)
        assert np.isfinite(loss)

    def test_segment_softmax_all_equal_scores(self):
        scores = T.zeros(4)
        out = T.segment_softmax(scores, np.array([0, 0, 0, 0]), 1)
        np.testing.assert_allclose(out.numpy(), np.full(4, 0.25), rtol=1e-6)


class TestGraphInputHardening:
    def test_non_finite_timestamp_rejected_with_index(self):
        with pytest.raises(ValueError, match="non-finite edge timestamp.*index 1"):
            tg.TGraph([0, 1, 2], [1, 2, 0], [1.0, np.nan, 3.0])

    def test_infinite_timestamp_rejected(self):
        with pytest.raises(ValueError, match="non-finite edge timestamp"):
            tg.TGraph([0, 1], [1, 0], [1.0, np.inf])

    def test_negative_timestamp_rejected_with_index(self):
        with pytest.raises(ValueError, match="negative edge timestamp.*index 0"):
            tg.TGraph([0, 1], [1, 0], [-2.0, 3.0])

    def test_negative_src_node_rejected_with_index(self):
        with pytest.raises(ValueError, match="negative src node id -3 at index 1"):
            tg.TGraph([0, -3], [1, 0], [1.0, 2.0])

    def test_negative_dst_node_rejected_with_index(self):
        with pytest.raises(ValueError, match="negative dst node id -1 at index 0"):
            tg.TGraph([0, 1], [-1, 0], [1.0, 2.0])

    def test_clean_graph_still_builds(self):
        g = tg.TGraph([0, 1], [1, 0], [0.0, 1.0])
        assert g.num_edges == 2


class TestOutOfOrderAndDuplicateDelivery:
    """Memory/Mailbox must absorb raw streaming batches: duplicated nodes
    and permuted delivery order, with deterministic last-event-wins state."""

    def _mem_after(self, order):
        mem = tg.Memory(5, 3)
        nodes = np.array([1, 2, 1, 2])[order]
        times = np.array([1.0, 2.0, 5.0, 4.0])[order]
        vals = np.arange(12, dtype=np.float32).reshape(4, 3)[order]
        mem.update(nodes, T.tensor(vals), times)
        return mem

    def test_memory_duplicate_nodes_last_event_wins(self):
        mem = self._mem_after(np.arange(4))
        assert mem.time[1] == 5.0 and mem.time[2] == 4.0
        np.testing.assert_array_equal(mem.data.data[1], [6.0, 7.0, 8.0])
        np.testing.assert_array_equal(mem.data.data[2], [9.0, 10.0, 11.0])

    def test_memory_update_is_order_invariant(self):
        base = self._mem_after(np.arange(4))
        for order in ([3, 2, 1, 0], [2, 0, 3, 1]):
            permuted = self._mem_after(np.array(order))
            np.testing.assert_array_equal(permuted.data.data, base.data.data)
            np.testing.assert_array_equal(permuted.time, base.time)
        assert not base.validate()

    def test_memory_timestamp_tie_broken_by_content_not_position(self):
        vals = np.array([[1.0, 0.0], [2.0, 0.0]], dtype=np.float32)
        winners = []
        for order in ([0, 1], [1, 0]):
            mem = tg.Memory(3, 2)
            mem.update(np.array([1, 1])[order], T.tensor(vals[order]),
                       np.array([7.0, 7.0])[order])
            winners.append(mem.data.data[1].copy())
        np.testing.assert_array_equal(winners[0], winners[1])

    def test_mailbox_single_slot_duplicates_last_event_wins(self):
        mb = tg.Mailbox(4, 2, slots=1)
        mb.store(np.array([2, 2, 2]),
                 T.tensor(np.array([[1.0, 1], [2, 2], [3, 3]], dtype=np.float32)),
                 np.array([3.0, 9.0, 6.0]))
        np.testing.assert_array_equal(mb.mail.data[2], [2.0, 2.0])
        assert mb.time[2] == 9.0

    def test_mailbox_ring_duplicates_fill_consecutive_slots_canonically(self):
        deliveries = (np.array([1, 1, 1]),
                      np.array([[1.0, 0], [2, 0], [3, 0]], dtype=np.float32),
                      np.array([5.0, 3.0, 4.0]))
        states = []
        for order in ([0, 1, 2], [2, 1, 0], [1, 2, 0]):
            mb = tg.Mailbox(4, 2, slots=3)
            idx = np.array(order)
            mb.store(deliveries[0][idx], T.tensor(deliveries[1][idx]),
                     deliveries[2][idx])
            states.append((mb.mail.data.copy(), mb.time.copy(),
                           mb._next_slot.copy()))
            assert not mb.validate()
        for mail, times, cursor in states[1:]:
            np.testing.assert_array_equal(mail, states[0][0])
            np.testing.assert_array_equal(times, states[0][1])
            np.testing.assert_array_equal(cursor, states[0][2])
        # ascending time order within the ring: 3.0, 4.0, 5.0
        np.testing.assert_array_equal(states[0][1][1], [3.0, 4.0, 5.0])

    def test_mailbox_backup_restore_roundtrip(self):
        mb = tg.Mailbox(3, 2, slots=2)
        mb.store(np.array([0, 1]),
                 T.tensor(np.ones((2, 2), dtype=np.float32)),
                 np.array([1.0, 2.0]))
        mb.backup()
        snapshot = (mb.mail.data.copy(), mb.time.copy(), mb._next_slot.copy())
        mb.store(np.array([0, 2]),
                 T.tensor(np.full((2, 2), 9.0, dtype=np.float32)),
                 np.array([5.0, 6.0]))
        mb.restore()
        np.testing.assert_array_equal(mb.mail.data, snapshot[0])
        np.testing.assert_array_equal(mb.time, snapshot[1])
        np.testing.assert_array_equal(mb._next_slot, snapshot[2])
