"""Equivalence tests: vectorized kernels vs their per-row loop references.

The kernel layer (:mod:`repro.core.kernels`) replaces the original per-pair
Python loops; these tests pin the replacement to be *bit-identical* — same
selections, same ordering, same RNG stream consumption — across shapes,
empty neighborhoods, repeated keys, and cache eviction wraparound.
"""

import numpy as np
import pytest

import repro.core as tg
from repro import tensor as T
from repro.core import op as tgop
from repro.core.kernels import (
    NodeTimeCache,
    SampleResult,
    _reference_sample_arrays,
    _reference_unique_node_times,
    _ReferenceNodeTimeCache,
    sample_recent,
    sample_uniform,
    segment_searchsorted,
    temporal_sample,
    unique_node_times,
)


def make_csr(num_nodes=40, num_edges=400, seed=0, empty_frac=0.25):
    """A synthetic temporal CSR with some nodes left edge-less."""
    rng = np.random.default_rng(seed)
    active = rng.random(num_nodes) >= empty_frac
    active_nodes = np.flatnonzero(active)
    if len(active_nodes) == 0:
        active_nodes = np.array([0])
    endpoints = rng.choice(active_nodes, size=num_edges)
    order = np.lexsort((rng.random(num_edges), endpoints))
    endpoints = endpoints[order]
    indptr = np.searchsorted(endpoints, np.arange(num_nodes + 1)).astype(np.int64)
    indices = rng.integers(0, num_nodes, size=num_edges).astype(np.int64)
    eids = rng.permutation(num_edges).astype(np.int64)
    # Ascending times within each node's segment; duplicates included.
    etimes = np.empty(num_edges, dtype=np.float64)
    for node in range(num_nodes):
        seg = slice(indptr[node], indptr[node + 1])
        etimes[seg] = np.sort(rng.integers(0, 50, size=indptr[node + 1] - indptr[node]))
    return indptr, indices, eids, etimes


def make_queries(num_nodes, n, seed=1):
    rng = np.random.default_rng(seed)
    nodes = rng.integers(0, num_nodes, size=n).astype(np.int64)
    times = rng.integers(0, 60, size=n).astype(np.float64)
    return nodes, times


def assert_results_equal(a: SampleResult, b: SampleResult):
    np.testing.assert_array_equal(a.srcnodes, b.srcnodes)
    np.testing.assert_array_equal(a.eids, b.eids)
    np.testing.assert_array_equal(a.etimes, b.etimes)
    np.testing.assert_array_equal(a.dstindex, b.dstindex)


class TestSegmentSearchsorted:
    def test_matches_per_segment_searchsorted(self):
        indptr, _, _, etimes = make_csr(seed=3)
        nodes, times = make_queries(40, 100, seed=4)
        lo, hi = indptr[nodes], indptr[nodes + 1]
        got = segment_searchsorted(etimes, lo, hi, times)
        want = np.array([
            lo[i] + np.searchsorted(etimes[lo[i]:hi[i]], times[i], side="left")
            for i in range(len(nodes))
        ])
        np.testing.assert_array_equal(got, want)

    def test_empty_segments(self):
        values = np.array([1.0, 2.0])
        out = segment_searchsorted(values, np.array([1, 0]), np.array([1, 0]), np.array([5.0, 5.0]))
        np.testing.assert_array_equal(out, [1, 0])


class TestSamplerEquivalence:
    @pytest.mark.parametrize("k", [1, 3, 7, 20])
    def test_recent_bit_identical(self, k):
        indptr, indices, eids, etimes = make_csr(seed=k)
        nodes, times = make_queries(40, 200, seed=k + 1)
        got = sample_recent(indptr, indices, eids, etimes, nodes, times, k)
        want = _reference_sample_arrays(indptr, indices, eids, etimes, nodes, times, k, "recent")
        assert_results_equal(got, want)

    @pytest.mark.parametrize("k", [1, 3, 7, 20])
    def test_uniform_bit_identical(self, k):
        indptr, indices, eids, etimes = make_csr(seed=10 + k)
        nodes, times = make_queries(40, 200, seed=k)
        got = sample_uniform(indptr, indices, eids, etimes, nodes, times, k,
                             np.random.default_rng(77))
        want = _reference_sample_arrays(indptr, indices, eids, etimes, nodes, times, k,
                                        "uniform", rng=np.random.default_rng(77))
        assert_results_equal(got, want)

    def test_uniform_seeded_determinism(self):
        indptr, indices, eids, etimes = make_csr(seed=5)
        nodes, times = make_queries(40, 150, seed=6)
        a = sample_uniform(indptr, indices, eids, etimes, nodes, times, 5,
                           np.random.default_rng(123))
        b = sample_uniform(indptr, indices, eids, etimes, nodes, times, 5,
                           np.random.default_rng(123))
        assert_results_equal(a, b)

    def test_empty_query_set(self):
        indptr, indices, eids, etimes = make_csr(seed=7)
        empty = np.empty(0, dtype=np.int64)
        for strategy in ("recent", "uniform"):
            res = temporal_sample(indptr, indices, eids, etimes, empty,
                                  empty.astype(np.float64), 5,
                                  strategy=strategy, rng=np.random.default_rng(0))
            assert res.num_rows == 0

    def test_all_empty_neighborhoods(self):
        indptr, indices, eids, etimes = make_csr(seed=8)
        nodes, _ = make_queries(40, 50, seed=9)
        times = np.zeros(len(nodes))  # nothing is strictly earlier than t=0
        for strategy in ("recent", "uniform"):
            got = temporal_sample(indptr, indices, eids, etimes, nodes, times, 5,
                                  strategy=strategy, rng=np.random.default_rng(1))
            want = _reference_sample_arrays(indptr, indices, eids, etimes, nodes, times, 5,
                                            strategy, rng=np.random.default_rng(1))
            assert got.num_rows == 0
            assert_results_equal(got, want)

    def test_strict_time_bound(self):
        # Edges at exactly the query time are excluded (N(i, t) of Eq. 2).
        indptr, indices, eids, etimes = make_csr(seed=11)
        nodes, times = make_queries(40, 100, seed=12)
        res = sample_recent(indptr, indices, eids, etimes, nodes, times, 50)
        assert (res.etimes < times[res.dstindex]).all()

    def test_tsampler_front_end_uses_kernel(self, tiny_ctx, tiny_graph):
        blk = tg.TBatch(tiny_graph, 0, 6).block(tiny_ctx)
        res = tg.TSampler(3).sample_arrays(tiny_graph.csr(), blk.dstnodes, blk.dsttimes)
        assert isinstance(res, SampleResult)
        csr = tiny_graph.csr()
        want = _reference_sample_arrays(csr.indptr, csr.indices, csr.eids, csr.etimes,
                                        blk.dstnodes, blk.dsttimes, 3, "recent")
        assert_results_equal(res, want)


class TestSampleResult:
    def test_unpacks_as_four_tuple(self):
        res = SampleResult(np.array([1]), np.array([2]), np.array([3.0]), np.array([0]))
        srcnodes, eids, etimes, dstindex = res
        assert srcnodes[0] == 1 and eids[0] == 2
        assert res.num_rows == 1
        assert res.srcnodes is srcnodes and res.dstindex is dstindex


class TestDedupEquivalence:
    def test_matches_reference(self):
        rng = np.random.default_rng(0)
        nodes = rng.integers(0, 20, size=300).astype(np.int64)
        times = rng.integers(0, 10, size=300).astype(np.float64)
        un, ut, inv = unique_node_times(nodes, times)
        rn, rt, rinv = _reference_unique_node_times(nodes, times)
        np.testing.assert_array_equal(un, rn)
        np.testing.assert_array_equal(ut, rt)
        np.testing.assert_array_equal(inv, rinv)
        np.testing.assert_array_equal(un[inv], nodes)
        np.testing.assert_array_equal(ut[inv], times)

    def test_repeated_keys_collapse(self):
        nodes = np.array([5, 5, 5, 5])
        times = np.array([1.0, 1.0, 1.0, 1.0])
        un, ut, inv = unique_node_times(nodes, times)
        assert len(un) == 1
        np.testing.assert_array_equal(inv, [0, 0, 0, 0])

    def test_empty(self):
        un, ut, inv = unique_node_times(np.empty(0, dtype=np.int64), np.empty(0))
        assert len(un) == len(ut) == len(inv) == 0

    def test_all_unique_is_identity_permutation(self):
        nodes = np.array([3, 1, 2])
        times = np.array([0.0, 0.0, 0.0])
        un, ut, inv = unique_node_times(nodes, times)
        np.testing.assert_array_equal(un, [1, 2, 3])
        np.testing.assert_array_equal(un[inv], nodes)


class TestCacheEquivalence:
    @pytest.mark.parametrize("capacity", [1, 2, 7, 64])
    def test_fuzz_against_reference(self, capacity):
        rng = np.random.default_rng(capacity)
        fast = NodeTimeCache(capacity)
        ref = _ReferenceNodeTimeCache(capacity)
        for _ in range(200):
            n = int(rng.integers(1, 12))
            nodes = rng.integers(0, 15, size=n).astype(np.int64)
            times = rng.integers(0, 4, size=n).astype(np.float64)
            if rng.random() < 0.5:
                values = rng.random((n, 3)).astype(np.float32)
                fast.store(nodes, times, values)
                ref.store(nodes, times, values)
            else:
                fh, frows = fast.lookup(nodes, times)
                rh, rrows = ref.lookup(nodes, times)
                np.testing.assert_array_equal(fh, rh)
                if frows is None or rrows is None:
                    assert frows is None and rrows is None
                else:
                    np.testing.assert_array_equal(frows[fh], rrows[rh])
        assert fast.hits == ref.hits
        assert fast.lookups == ref.lookups
        assert fast.num_entries == ref.num_entries

    def test_in_batch_duplicates_take_last_value(self):
        for cache in (NodeTimeCache(4), _ReferenceNodeTimeCache(4)):
            cache.store(np.array([1, 1]), np.array([0.0, 0.0]),
                        np.array([[1.0], [2.0]], dtype=np.float32))
            _, rows = cache.lookup(np.array([1]), np.array([0.0]))
            np.testing.assert_allclose(rows[0], [2.0])

    def test_oversized_batch_wraparound(self):
        # A single store larger than capacity keeps only the last rows,
        # exactly as sequential FIFO insertion would.
        for cache in (NodeTimeCache(3), _ReferenceNodeTimeCache(3)):
            nodes = np.arange(8, dtype=np.int64)
            times = np.zeros(8)
            values = np.arange(8, dtype=np.float32).reshape(8, 1)
            cache.store(nodes, times, values)
            hit, rows = cache.lookup(nodes, times)
            np.testing.assert_array_equal(hit, [False] * 5 + [True] * 3)
            np.testing.assert_allclose(rows[5:].ravel(), [5.0, 6.0, 7.0])

    def test_negative_zero_time_is_positive_zero(self):
        cache = NodeTimeCache(4)
        cache.store(np.array([1]), np.array([-0.0]), np.ones((1, 2), dtype=np.float32))
        hit, _ = cache.lookup(np.array([1]), np.array([0.0]))
        assert hit.all()


class TestMissStorm:
    """Regression: a miss storm on a 100%-occupied ring let tombstones
    pile up toward the global rebuild bound, degrading every probe into a
    long tombstone walk.  The table must now rebuild as soon as dead
    buckets outnumber live ones, and every displaced entry must be
    surfaced through the eviction counter/callback."""

    @pytest.mark.parametrize("policy", ["fifo", "reuse"])
    def test_tombstones_stay_bounded_at_full_occupancy(self, policy):
        cap = 32
        evicted = []
        cache = NodeTimeCache(
            cap, policy=policy,
            on_evict=lambda n, t, r: evicted.append(n.copy()),
        )
        zeros = np.zeros(cap)
        cache.store(np.arange(cap, dtype=np.int64), zeros,
                    np.ones((cap, 2), dtype=np.float32))
        assert cache.num_entries == cap  # 100% occupancy
        # Storm: 40 batches of entirely fresh keys, every store evicts.
        for wave in range(40):
            fresh = np.arange(1000 + cap * wave, 1000 + cap * (wave + 1),
                              dtype=np.int64)
            cache.store(fresh, zeros, np.ones((cap, 2), dtype=np.float32))
            assert cache._tombs <= max(cache._used, 1)
            assert cache.validate() == []
        assert cache.num_entries == cap
        assert cache.evictions == 40 * cap
        assert sum(len(n) for n in evicted) == 40 * cap
        # The final wave's keys are resident and resolvable.
        hit, _ = cache.lookup(np.arange(1000 + cap * 39, 1000 + cap * 40,
                                        dtype=np.int64), zeros)
        assert hit.all()

    def test_eviction_counter_matches_displacements(self):
        cache = NodeTimeCache(4)
        zeros = np.zeros(4)
        cache.store(np.arange(4, dtype=np.int64), zeros,
                    np.ones((4, 1), dtype=np.float32))
        assert cache.evictions == 0  # filling empty slots displaces nothing
        cache.store(np.arange(4, 8, dtype=np.int64), zeros,
                    np.ones((4, 1), dtype=np.float32))
        assert cache.evictions == 4


class TestCacheDisabled:
    """Regression: TContext(cache_limit=0) crashed with ZeroDivisionError."""

    @pytest.mark.parametrize("capacity", [0, -1])
    def test_store_and_lookup_are_noops(self, capacity):
        cache = NodeTimeCache(capacity)
        assert not cache.enabled
        cache.store(np.array([1]), np.array([0.0]), np.ones((1, 2), dtype=np.float32))
        hit, rows = cache.lookup(np.array([1]), np.array([0.0]))
        assert not hit.any()
        assert rows is None

    def test_context_with_zero_cache_limit_end_to_end(self, tiny_graph):
        ctx = tg.TContext(tiny_graph, cache_limit=0)
        ctx.eval()
        blk = tg.TBlock(ctx, 0, np.array([0]), np.array([1.0]))
        tgop.cache(ctx, blk)
        blk.run_hooks(T.tensor([[1.0]]))  # historically raised ZeroDivisionError
        blk2 = tg.TBlock(ctx, 0, np.array([0]), np.array([1.0]))
        tgop.cache(ctx, blk2)
        assert blk2.num_dst == 1  # nothing was cached, so nothing filtered
