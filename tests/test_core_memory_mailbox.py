"""Tests for the Memory and Mailbox storage components."""

import numpy as np
import pytest

from repro.core import Mailbox, Memory
from repro import tensor as T
from repro.tensor.device import runtime


class TestMemory:
    def test_initial_state_zero(self):
        mem = Memory(5, 3)
        assert mem.data.data.sum() == 0
        assert mem.time.sum() == 0

    def test_update_and_get(self):
        mem = Memory(5, 2)
        nodes = np.array([1, 3])
        mem.update(nodes, T.ones(2, 2), np.array([4.0, 5.0]))
        np.testing.assert_allclose(mem.get(nodes).numpy(), np.ones((2, 2)))
        np.testing.assert_allclose(mem.get_time(nodes), [4, 5])
        # Untouched nodes stay zero.
        assert mem.get(np.array([0])).numpy().sum() == 0

    def test_get_is_detached_copy(self):
        mem = Memory(3, 2)
        rows = mem.get(np.array([0]))
        rows.data[...] = 9.0
        assert mem.data.data[0].sum() == 0

    def test_update_accepts_numpy(self):
        mem = Memory(3, 2)
        mem.update(np.array([0]), np.full((1, 2), 2.0, dtype=np.float32), np.array([1.0]))
        assert mem.data.data[0, 0] == 2.0

    def test_reset(self):
        mem = Memory(3, 2)
        mem.update(np.array([0]), T.ones(1, 2), np.array([1.0]))
        mem.reset()
        assert mem.data.data.sum() == 0 and mem.time.sum() == 0

    def test_backup_restore(self):
        mem = Memory(3, 2)
        mem.update(np.array([0]), T.ones(1, 2), np.array([1.0]))
        mem.backup()
        mem.update(np.array([0]), T.zeros(1, 2), np.array([2.0]))
        mem.restore()
        assert mem.data.data[0].sum() == 2.0
        assert mem.time[0] == 1.0

    def test_restore_without_backup_raises(self):
        with pytest.raises(RuntimeError):
            Memory(2, 2).restore()

    def test_to_device_moves_storage(self):
        mem = Memory(4, 2).to("cuda")
        assert mem.device.is_cuda
        assert mem.data.device.is_cuda
        assert runtime.transfer_stats.bytes > 0

    def test_nbytes(self):
        mem = Memory(4, 2)
        assert mem.nbytes() == 4 * 2 * 4 + 4 * 8


class TestMailboxSingleSlot:
    def test_store_and_get(self):
        mb = Mailbox(4, 3)
        mb.store(np.array([1, 2]), T.ones(2, 3), np.array([5.0, 6.0]))
        np.testing.assert_allclose(mb.get(np.array([1])).numpy(), np.ones((1, 3)))
        np.testing.assert_allclose(mb.get_time(np.array([1, 2])), [5, 6])

    def test_store_overwrites(self):
        mb = Mailbox(4, 2)
        mb.store(np.array([0]), T.ones(1, 2), np.array([1.0]))
        mb.store(np.array([0]), T.zeros(1, 2), np.array([2.0]))
        assert mb.mail.data[0].sum() == 0
        assert mb.time[0] == 2.0

    def test_duplicate_nodes_coalesce_last_event_wins(self):
        mb = Mailbox(4, 2)
        mail = np.array([[1.0, 1.0], [2.0, 2.0]], dtype=np.float32)
        mb.store(np.array([1, 1]), T.tensor(mail), np.array([1.0, 3.0]))
        np.testing.assert_allclose(mb.mail.data[1], [2.0, 2.0])
        assert mb.time[1] == 3.0

    def test_reset(self):
        mb = Mailbox(3, 2)
        mb.store(np.array([0]), T.ones(1, 2), np.array([1.0]))
        mb.reset()
        assert mb.mail.data.sum() == 0 and mb.time.sum() == 0


class TestMailboxMultiSlot:
    def test_ring_buffer_rotation(self):
        mb = Mailbox(2, 1, slots=3)
        for i in range(4):
            mb.store(np.array([0]), T.full((1, 1), float(i)), np.array([float(i)]))
        # Slot layout after 4 writes into 3 slots: [3, 1, 2].
        np.testing.assert_allclose(mb.mail.data[0].reshape(-1), [3, 1, 2])
        np.testing.assert_allclose(mb.time[0], [3, 1, 2])

    def test_independent_cursors_per_node(self):
        mb = Mailbox(3, 1, slots=2)
        mb.store(np.array([0]), T.ones(1, 1), np.array([1.0]))
        mb.store(np.array([1]), T.ones(1, 1), np.array([1.0]))
        mb.store(np.array([0]), T.full((1, 1), 2.0), np.array([2.0]))
        np.testing.assert_allclose(mb.mail.data[0].reshape(-1), [1, 2])
        np.testing.assert_allclose(mb.mail.data[1].reshape(-1), [1, 0])

    def test_get_shape(self):
        mb = Mailbox(4, 5, slots=3)
        assert mb.get(np.array([0, 1])).shape == (2, 3, 5)

    def test_reset_clears_cursors(self):
        mb = Mailbox(2, 1, slots=2)
        mb.store(np.array([0]), T.ones(1, 1), np.array([1.0]))
        mb.reset()
        mb.store(np.array([0]), T.full((1, 1), 5.0), np.array([1.0]))
        np.testing.assert_allclose(mb.mail.data[0].reshape(-1), [5, 0])

    def test_slots_validation(self):
        with pytest.raises(ValueError):
            Mailbox(2, 2, slots=0)

    def test_to_device(self):
        mb = Mailbox(2, 2, slots=2).to("cuda")
        assert mb.mail.device.is_cuda

    def test_nbytes_counts_slots(self):
        mb = Mailbox(2, 3, slots=4)
        assert mb.nbytes() == 2 * 4 * 3 * 4 + 2 * 4 * 8
