"""Tests for computation operators: coalesce, edge ops, aggregate, propagate."""

import numpy as np
import pytest

import repro.core as tg
from repro.core import op as tgop
from repro import tensor as T

from conftest import check_grad


def make_adj_block(ctx, dstnodes, srcnodes, etimes):
    """Build a block with explicit neighbor rows (one dst per row)."""
    dstnodes = np.asarray(dstnodes)
    blk = tg.TBlock(ctx, 0, dstnodes, np.asarray(etimes, dtype=np.float64))
    blk.set_nbrs(
        np.asarray(srcnodes),
        np.arange(len(srcnodes), dtype=np.int64),
        np.asarray(etimes, dtype=np.float64),
        np.arange(len(dstnodes), dtype=np.int64),
    )
    return blk


class TestCoalesce:
    def test_latest_keeps_max_time_row(self, tiny_ctx):
        blk = make_adj_block(tiny_ctx, [2, 1, 2, 1], [5, 4, 3, 0], [1.0, 2.0, 9.0, 4.0])
        tgop.coalesce(blk, by="latest")
        np.testing.assert_array_equal(blk.dstnodes, [1, 2])
        np.testing.assert_array_equal(blk.srcnodes, [0, 3])
        np.testing.assert_allclose(blk.etimes, [4.0, 9.0])
        np.testing.assert_allclose(blk.dsttimes, [4.0, 9.0])
        np.testing.assert_array_equal(blk.dstindex, [0, 1])

    def test_earliest(self, tiny_ctx):
        blk = make_adj_block(tiny_ctx, [1, 1], [7, 8], [5.0, 3.0])
        tgop.coalesce(blk, by="earliest")
        np.testing.assert_array_equal(blk.srcnodes, [8])
        np.testing.assert_allclose(blk.etimes, [3.0])

    def test_tie_resolves_to_later_row(self, tiny_ctx):
        blk = make_adj_block(tiny_ctx, [1, 1], [7, 8], [5.0, 5.0])
        tgop.coalesce(blk, by="latest")
        np.testing.assert_array_equal(blk.srcnodes, [8])

    def test_from_block_adj(self, tiny_ctx, tiny_graph):
        batch = tg.TBatch(tiny_graph, 0, 4)
        blk = tgop.coalesce(batch.block_adj(tiny_ctx), by="latest")
        # Unique endpoints, one row each.
        assert len(np.unique(blk.dstnodes)) == blk.num_dst
        assert blk.num_src == blk.num_dst
        # Each kept row is the latest interaction of that endpoint in batch.
        for i, node in enumerate(blk.dstnodes):
            in_batch = [t for s, d, t in zip(batch.src, batch.dst, batch.ts) if node in (s, d)]
            assert blk.etimes[i] == max(in_batch)

    def test_requires_neighbors(self, tiny_ctx):
        blk = tg.TBlock(tiny_ctx, 0, np.array([0]), np.array([1.0]))
        with pytest.raises(RuntimeError):
            tgop.coalesce(blk)

    def test_bad_mode(self, tiny_ctx):
        blk = make_adj_block(tiny_ctx, [1], [2], [1.0])
        with pytest.raises(ValueError):
            tgop.coalesce(blk, by="middle")


class TestEdgeOps:
    def _block(self, ctx):
        blk = tg.TBlock(ctx, 0, np.array([0, 1, 2]), np.array([9.0, 9.0, 9.0]))
        blk.set_nbrs(
            np.array([4, 5, 4, 5, 5]),
            np.arange(5, dtype=np.int64),
            np.full(5, 1.0),
            np.array([0, 0, 1, 1, 1]),
        )
        return blk

    def test_edge_softmax_segments_sum_to_one(self, tiny_ctx):
        blk = self._block(tiny_ctx)
        out = tgop.edge_softmax(blk, T.randn(5)).numpy()
        assert abs(out[:2].sum() - 1) < 1e-5
        assert abs(out[2:].sum() - 1) < 1e-5

    def test_edge_softmax_multihead(self, tiny_ctx):
        blk = self._block(tiny_ctx)
        out = tgop.edge_softmax(blk, T.randn(5, 3)).numpy()
        np.testing.assert_allclose(out[:2].sum(axis=0), np.ones(3), rtol=1e-5)

    def test_edge_reduce_sum_mean_max(self, tiny_ctx):
        blk = self._block(tiny_ctx)
        vals = T.tensor(np.arange(5, dtype=np.float32).reshape(5, 1))
        np.testing.assert_allclose(tgop.edge_reduce(blk, vals, "sum").numpy(), [[1], [9], [0]])
        np.testing.assert_allclose(tgop.edge_reduce(blk, vals, "mean").numpy(), [[0.5], [3], [0]])
        np.testing.assert_allclose(tgop.edge_reduce(blk, vals, "max").numpy(), [[1], [4], [0]])

    def test_edge_reduce_empty_dst_gets_zero(self, tiny_ctx):
        blk = self._block(tiny_ctx)
        out = tgop.edge_reduce(blk, T.ones(5, 2), "sum")
        np.testing.assert_allclose(out.numpy()[2], [0, 0])

    def test_src_scatter_mean(self, tiny_ctx):
        blk = self._block(tiny_ctx)
        vals = T.tensor(np.array([[1.0], [2.0], [3.0], [4.0], [6.0]]))
        out = tgop.src_scatter(blk, vals, op="mean")
        uniq, _ = blk.uniq_src()
        np.testing.assert_array_equal(uniq, [4, 5])
        np.testing.assert_allclose(out.numpy(), [[2.0], [4.0]])

    def test_src_scatter_sum(self, tiny_ctx):
        blk = self._block(tiny_ctx)
        out = tgop.src_scatter(blk, T.ones(5, 1), op="sum")
        np.testing.assert_allclose(out.numpy(), [[2], [3]])

    def test_shape_validation(self, tiny_ctx):
        blk = self._block(tiny_ctx)
        with pytest.raises(ValueError):
            tgop.edge_softmax(blk, T.randn(4))
        with pytest.raises(ValueError):
            tgop.edge_reduce(blk, T.randn(4, 2))
        with pytest.raises(ValueError):
            tgop.src_scatter(blk, T.randn(4, 2))
        with pytest.raises(ValueError):
            tgop.edge_reduce(blk, T.randn(5, 2), op="median")

    def test_unsampled_block_rejected(self, tiny_ctx):
        blk = tg.TBlock(tiny_ctx, 0, np.array([0]), np.array([1.0]))
        for fn in (lambda: tgop.edge_softmax(blk, T.randn(1)),
                   lambda: tgop.edge_reduce(blk, T.randn(1)),
                   lambda: tgop.src_scatter(blk, T.randn(1))):
            with pytest.raises(RuntimeError):
                fn()

    def test_gradients(self, tiny_ctx):
        blk = self._block(tiny_ctx)
        weights = T.tensor(np.arange(5, dtype=np.float32))
        check_grad(lambda s: tgop.edge_softmax(blk, s) * weights, (5,))
        check_grad(lambda v: tgop.edge_reduce(blk, v, "sum").exp(), (5, 2))
        check_grad(lambda v: tgop.src_scatter(blk, v, "mean").exp(), (5, 2))


class TestAggregate:
    def _chain(self, ctx, g, hops=2, batch=(4, 8)):
        head = tg.TBatch(g, *batch).block(ctx)
        sampler = tg.TSampler(2, "recent")
        tail = head
        for i in range(hops):
            if i > 0:
                tail = tail.next_block()
            sampler.sample(tail)
        return head, tail

    def test_single_callable_applied_per_block(self, tiny_ctx, tiny_graph):
        head, tail = self._chain(tiny_ctx, tiny_graph)
        calls = []

        def fn(blk):
            calls.append(blk.layer_id)
            return T.zeros(blk.num_dst, 2)

        out = tgop.aggregate(head, fn, key="h")
        assert calls == [1, 0]  # tail first, then head
        assert out.shape == (head.num_dst, 2)

    def test_layer_list_indexed_from_tail(self, tiny_ctx, tiny_graph):
        head, tail = self._chain(tiny_ctx, tiny_graph)
        seen = {}

        def make(tag):
            def fn(blk):
                seen[tag] = blk.layer_id
                return T.zeros(blk.num_dst, 2)
            return fn

        tgop.aggregate(head, [make("input_side"), make("output_side")], key="h")
        assert seen == {"input_side": 1, "output_side": 0}

    def test_wrong_layer_count_rejected(self, tiny_ctx, tiny_graph):
        head, _ = self._chain(tiny_ctx, tiny_graph)
        with pytest.raises(ValueError):
            tgop.aggregate(head, [lambda blk: T.zeros(1, 1)], key="h")

    def test_data_delivery_between_blocks(self, tiny_ctx, tiny_graph):
        head, tail = self._chain(tiny_ctx, tiny_graph)

        def fn(blk):
            return T.tensor(
                np.arange(blk.num_dst, dtype=np.float32).reshape(blk.num_dst, 1)
            )

        tgop.aggregate(head, fn, key="h")
        np.testing.assert_allclose(
            head.dstdata["h"].numpy().reshape(-1), np.arange(head.num_dst)
        )
        np.testing.assert_allclose(
            head.srcdata["h"].numpy().reshape(-1),
            np.arange(head.num_dst, head.num_dst + head.num_src),
        )

    def test_hooks_run_during_aggregate(self, tiny_ctx, tiny_graph):
        head, tail = self._chain(tiny_ctx, tiny_graph)
        tail_hook_ran = []
        tail.register_hook(lambda blk, out: (tail_hook_ran.append(True), out + 1)[1])

        def fn(blk):
            return T.zeros(blk.num_dst, 1)

        tgop.aggregate(head, fn, key="h")
        assert tail_hook_ran == [True]
        np.testing.assert_allclose(head.dstdata["h"].numpy(), np.ones((head.num_dst, 1)))

    def test_mismatched_rows_detected(self, tiny_ctx, tiny_graph):
        head, tail = self._chain(tiny_ctx, tiny_graph)

        def bad_fn(blk):
            return T.zeros(blk.num_dst - 1, 1) if blk is tail else T.zeros(blk.num_dst, 1)

        with pytest.raises(RuntimeError, match="do not match"):
            tgop.aggregate(head, bad_fn, key="h")

    def test_single_block_chain(self, tiny_ctx, tiny_graph):
        head = tg.TBatch(tiny_graph, 4, 8).block(tiny_ctx)
        tg.TSampler(2).sample(head)
        out = tgop.aggregate(head, lambda blk: T.ones(blk.num_dst, 3), key="h")
        assert out.shape == (head.num_dst, 3)


class TestPropagate:
    def test_visits_from_block_to_tail(self, tiny_ctx, tiny_graph):
        head = tg.TBatch(tiny_graph, 4, 8).block(tiny_ctx)
        tg.TSampler(2).sample(head)
        mid = head.next_block()
        tg.TSampler(2).sample(mid)
        visited = []
        tgop.propagate(head, lambda blk: visited.append(blk.layer_id))
        assert visited == [0, 1]
        visited.clear()
        tgop.propagate(mid, lambda blk: visited.append(blk.layer_id))
        assert visited == [1]
