"""Streaming scenario suite + continual-learning closed loop tests.

Three layers:

* generator contracts — every registered scenario is deterministic per
  seed (byte-identical digests) and exhibits the statistical shape it
  advertises (burst density, spam concentration, cold-start activation,
  drift direction, churn overlap);
* scoring — windowed AP, per-phase AP, and the gap-recovery metric;
* the closed loop (tentpole acceptance) — a WAL-tailing
  :class:`~repro.scenarios.ContinualLearner` on an abrupt-drift stream
  recovers at least half the frozen→oracle AP gap, deterministically,
  while leaving serve state bit-identical to a swap-free replay.
"""

import numpy as np
import pytest

from repro.bench.metrics import average_precision
from repro.scenarios import (
    ScenarioSpec,
    accuracy_under_drift,
    available_scenarios,
    build_world,
    gap_recovered,
    get_scenario,
    make_stream,
    phase_ap,
    register,
    run_closed_loop,
    windowed_ap,
)

ALL_SCENARIOS = [
    "cold_start",
    "distribution_drift",
    "flash_crowd",
    "node_churn",
    "spam_flood",
]


# ---- registry ---------------------------------------------------------------------


class TestRegistry:
    def test_builtins_registered_with_descriptions(self):
        catalog = available_scenarios()
        assert sorted(catalog) == ALL_SCENARIOS
        assert all(desc for desc in catalog.values())

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("meteor_strike")
        with pytest.raises(KeyError, match="available"):
            make_stream("meteor_strike")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register("flash_crowd", "imposter")(lambda spec: None)

    def test_make_stream_retargets_explicit_spec(self):
        spec = ScenarioSpec(name="flash_crowd", num_events=300, seed=5)
        stream = make_stream("spam_flood", spec=spec)
        assert stream.spec.name == "spam_flood"
        assert len(stream) == 300


# ---- determinism + stream invariants ----------------------------------------------


class TestDeterminism:
    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_same_seed_byte_identical(self, name):
        a = make_stream(name, num_events=600, seed=23, payload_dim=4)
        b = make_stream(name, num_events=600, seed=23, payload_dim=4)
        assert a.digest() == b.digest()

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_different_seed_different_stream(self, name):
        a = make_stream(name, num_events=600, seed=23)
        b = make_stream(name, num_events=600, seed=24)
        assert a.digest() != b.digest()


class TestStreamInvariants:
    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_shape_and_ordering(self, name):
        stream = make_stream(name, num_events=800, seed=7)
        ev = stream.events
        assert len(stream) == 800
        np.testing.assert_array_equal(ev.eids, np.arange(800))
        assert (np.diff(ev.ts) >= 0).all()
        assert set(np.unique(stream.labels)) <= {0, 1}
        assert (np.diff(stream.phase) >= 0).all()
        # bipartite world: sources are users, destinations are items
        num_users = stream.meta["num_users"]
        items_lo = stream.meta["items_lo"]
        assert (ev.src < num_users).all() and (ev.src >= 0).all()
        assert (ev.dst >= items_lo).all()
        assert (ev.dst < stream.spec.num_nodes).all()

    def test_phase_bounds_partition_the_stream(self):
        stream = make_stream("node_churn", num_events=800, seed=7)
        bounds = stream.phase_bounds()
        assert bounds[0][1] == 0 and bounds[-1][2] == len(stream)
        for (_, _, stop), (_, start, _) in zip(bounds, bounds[1:]):
            assert stop == start


# ---- per-generator statistical shape ----------------------------------------------


class TestFlashCrowd:
    def test_burst_density_and_hot_concentration(self):
        stream = make_stream("flash_crowd", num_events=2400, seed=13)
        ev = stream.events
        start, end = stream.meta["burst"]
        hot = stream.meta["hot"]

        burst_span = ev.ts[end - 1] - ev.ts[start]
        outside_span = stream.spec.t_max - burst_span
        burst_density = (end - start) / burst_span
        outside_density = (len(stream) - (end - start)) / outside_span
        # amplitude is 6x; allow sampling slack but demand a real spike
        assert burst_density / outside_density > 3.0

        in_hot = np.isin(ev.dst, hot)
        burst_hot = in_hot[start:end].mean()
        outside_hot = np.concatenate([in_hot[:start], in_hot[end:]]).mean()
        assert burst_hot > 0.7  # hot_share=0.8 of burst traffic
        assert outside_hot < 0.3
        # a flash crowd is genuine demand: nearly all hot-item burst
        # events are label 1 (the rare exception: a noise event whose
        # uniform destination lands on a hot item by chance)
        hot_labels = stream.labels[np.flatnonzero(in_hot[start:end]) + start]
        assert hot_labels.mean() > 0.95


class TestSpamFlood:
    def test_spam_concentrated_in_flood_window(self):
        stream = make_stream("spam_flood", num_events=2400, seed=13)
        start, end = stream.meta["flood"]
        spam = stream.labels == 0
        assert spam[start:end].mean() > 0.5  # spam_frac=0.6 inside
        outside = np.concatenate([spam[:start], spam[end:]])
        assert outside.mean() < 0.2  # only background noise outside

    def test_spam_comes_from_spammer_accounts(self):
        stream = make_stream("spam_flood", num_events=2400, seed=13)
        start, end = stream.meta["flood"]
        spammers = stream.meta["spammers"]
        in_flood_spam = (stream.labels[start:end] == 0)
        from_spammer = np.isin(stream.events.src[start:end], spammers)
        # most label-0 flood events are the spammers (rest is noise)
        assert (in_flood_spam & from_spammer).sum() / in_flood_spam.sum() > 0.7


class TestColdStart:
    def test_no_wave_speaks_before_activation(self):
        stream = make_stream("cold_start", num_events=2000, seed=13)
        wave_of = stream.meta["wave_of"]
        activation = stream.meta["activation"]
        num_waves = stream.meta["num_waves"]
        wave_of_src = wave_of[stream.events.src]
        for w in range(1, num_waves):
            assert (wave_of_src[: activation[w]] < w).all(), f"wave {w} early"
        # by the end every wave has spoken
        assert set(np.unique(wave_of_src)) == set(range(num_waves))
        assert stream.phase.max() == num_waves - 1


class TestDistributionDrift:
    def test_abrupt_flip_is_instant(self):
        stream = make_stream(
            "distribution_drift", num_events=1200, seed=13,
            knobs={"mode": "abrupt", "drift_start": 0.5},
        )
        start, end = stream.meta["drift"]
        assert start == end  # no transition window
        shift = stream.meta["shift"]
        assert not shift[:start].any()
        assert shift[start:].all()

    def test_gradual_ramp_is_monotone_in_expectation(self):
        stream = make_stream(
            "distribution_drift", num_events=2400, seed=13,
            knobs={"mode": "gradual", "drift_start": 0.4, "drift_end": 0.8},
        )
        start, end = stream.meta["drift"]
        shift = stream.meta["shift"]
        assert shift[:start].mean() == 0.0
        assert shift[end:].mean() == 1.0
        mid = shift[start:end]
        assert 0.2 < mid.mean() < 0.8
        # first transition half less shifted than second
        assert mid[: len(mid) // 2].mean() < mid[len(mid) // 2 :].mean()

    def test_genuine_events_track_the_shifted_preference(self):
        stream = make_stream(
            "distribution_drift", num_events=1200, seed=13,
            knobs={"mode": "abrupt", "drift_start": 0.5},
        )
        world = build_world(stream.spec)
        shift = stream.meta["shift"]
        genuine = stream.labels == 1
        src = stream.events.src[genuine]
        dst = stream.events.dst[genuine]
        block = np.searchsorted(world.block_start, dst, side="right") - 1
        expected = world.preferred_block(src, shift[genuine])
        np.testing.assert_array_equal(block, expected)


class TestNodeChurn:
    def test_consecutive_active_sets_overlap_by_churn_rate(self):
        stream = make_stream("node_churn", num_events=2400, seed=13)
        sets = stream.meta["active_sets"]
        r = stream.meta["churn_rate"]
        expected = (1 - r) / (1 + r)  # Jaccard after rotating r of each set
        for a, b in zip(sets, sets[1:]):
            inter = len(np.intersect1d(a, b))
            union = len(np.union1d(a, b))
            j = inter / union
            assert abs(j - expected) < 0.15, f"jaccard {j} vs {expected}"
            assert j < 1.0  # churn actually happened

    def test_genuine_traffic_targets_active_items_only(self):
        stream = make_stream("node_churn", num_events=2400, seed=13)
        sets = stream.meta["active_sets"]
        genuine = stream.labels == 1
        for k, (pid, start, stop) in enumerate(stream.phase_bounds()):
            sel = genuine[start:stop]
            dst = stream.events.dst[start:stop][sel]
            assert np.isin(dst, sets[pid]).all(), f"interval {k}"


# ---- scoring ----------------------------------------------------------------------


class TestScoring:
    def _stream(self, labels, phase=None):
        n = len(labels)
        ev_stream = make_stream("spam_flood", num_events=n, seed=3)
        out = ev_stream
        out.labels = np.asarray(labels, dtype=np.int64)
        if phase is not None:
            out.phase = np.asarray(phase, dtype=np.int64)
        return out

    def test_perfect_scores_ap_one_per_window(self):
        labels = np.tile([1, 0], 200)
        windows = windowed_ap(labels, labels.astype(float), num_windows=5)
        assert len(windows) == 5
        assert all(w["ap"] == 1.0 for w in windows)
        assert all(w["positives"] == 40 for w in windows)

    def test_single_class_window_is_nan(self):
        windows = windowed_ap(np.ones(40, dtype=int), np.zeros(40), num_windows=2)
        assert all(np.isnan(w["ap"]) for w in windows)

    def test_non_finite_scores_dropped_before_windowing(self):
        labels = np.tile([1, 0], 100)
        scores = labels.astype(float).copy()
        scores[:100] = np.nan  # unserved warmup prefix
        windows = windowed_ap(labels, scores, num_windows=4)
        assert sum(w["stop"] - w["start"] for w in windows) == 100

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="must align"):
            windowed_ap(np.ones(5, dtype=int), np.zeros(4))

    def test_phase_ap_reports_nan_for_unserved_phase(self):
        stream = self._stream(
            np.tile([1, 0], 50), phase=np.repeat([0, 1], 50)
        )
        scores = np.full(100, np.nan)
        scores[50:] = stream.labels[50:].astype(float)
        by_phase = phase_ap(stream, scores)
        assert np.isnan(by_phase[0])
        assert by_phase[1] == 1.0

    def test_accuracy_under_drift_summary_keys(self):
        stream = self._stream(np.tile([1, 0], 100))
        summary = accuracy_under_drift(
            stream, stream.labels.astype(float), num_windows=4
        )
        assert summary["scenario"] == "spam_flood"
        assert summary["overall_ap"] == 1.0
        assert len(summary["windows"]) == 4
        assert np.isfinite(summary["min_window_ap"])

    def test_gap_recovered_arithmetic(self):
        assert gap_recovered(0.5, 0.75, 1.0) == pytest.approx(0.5)
        assert gap_recovered(0.5, 1.0, 0.75) == pytest.approx(2.0)
        assert gap_recovered(0.5, 0.25, 1.0) == pytest.approx(-0.5)
        # degenerate oracle: nothing to recover
        assert gap_recovered(0.5, 0.5, 0.5) == 1.0
        assert gap_recovered(0.5, 0.4, 0.5) == 0.0


# ---- the closed loop (tentpole acceptance) ----------------------------------------


DRIFT_KW = dict(
    num_events=2400,
    seed=11,
    noise_frac=0.45,
    knobs={"mode": "abrupt", "drift_start": 0.5},
)


def _post_drift_ap(stream, scores):
    """AP restricted to the served post-drift phase."""
    mask = (stream.phase == 2) & np.isfinite(scores)
    return average_precision(stream.labels[mask], scores[mask])


@pytest.fixture(scope="module")
def drift_stream():
    return make_stream("distribution_drift", **DRIFT_KW)


@pytest.fixture(scope="module")
def closed_loop(drift_stream, tmp_path_factory):
    """One frozen / continual / oracle run each over the same stream."""
    runs = {}
    for mode in ("frozen", "continual", "oracle"):
        workdir = str(tmp_path_factory.mktemp(f"loop-{mode}"))
        runs[mode] = run_closed_loop(
            drift_stream, mode=mode, seed=3, workdir=workdir
        )
    return runs


class TestClosedLoop:
    def test_invalid_mode_rejected(self, drift_stream):
        with pytest.raises(ValueError, match="frozen|continual|oracle"):
            run_closed_loop(drift_stream, mode="psychic")

    def test_drift_hurts_the_frozen_model(self, drift_stream, closed_loop):
        post = _post_drift_ap(drift_stream, closed_loop["frozen"]["scores"])
        assert np.isfinite(post)
        oracle_post = _post_drift_ap(drift_stream, closed_loop["oracle"]["scores"])
        assert oracle_post > post + 0.05, (
            f"oracle {oracle_post:.3f} should beat frozen {post:.3f} post-drift"
        )

    def test_continual_recovers_at_least_half_the_gap(
        self, drift_stream, closed_loop
    ):
        frozen = _post_drift_ap(drift_stream, closed_loop["frozen"]["scores"])
        cont = _post_drift_ap(drift_stream, closed_loop["continual"]["scores"])
        oracle = _post_drift_ap(drift_stream, closed_loop["oracle"]["scores"])
        recovered = gap_recovered(frozen, cont, oracle)
        assert recovered >= 0.5, (
            f"gap recovered {recovered:.2f} "
            f"(frozen={frozen:.3f} continual={cont:.3f} oracle={oracle:.3f})"
        )

    def test_learner_actually_tailed_and_swapped(self, closed_loop):
        learner = closed_loop["continual"]["learner"]
        assert learner["swaps"] >= 1
        assert learner["events_trained"] == learner["events_seen"] > 0
        assert learner["cursor"]["delivered"] > 0
        assert closed_loop["continual"]["stats"]["model:version"] >= 2
        # frozen/oracle runs have no learner
        assert closed_loop["frozen"]["learner"] is None

    def test_hot_swaps_leave_serve_state_bit_identical(self, closed_loop):
        digests = {m: r["state_digest"] for m, r in closed_loop.items()}
        assert digests["frozen"] == digests["continual"] == digests["oracle"], (
            "model hot-swaps must not perturb the commit path"
        )

    def test_closed_loop_deterministic(
        self, drift_stream, closed_loop, tmp_path_factory
    ):
        workdir = str(tmp_path_factory.mktemp("loop-again"))
        again = run_closed_loop(
            drift_stream, mode="continual", seed=3, workdir=workdir
        )
        np.testing.assert_array_equal(
            again["scores"], closed_loop["continual"]["scores"]
        )
        assert again["state_digest"] == closed_loop["continual"]["state_digest"]
        assert again["learner"]["swaps"] == closed_loop["continual"]["learner"]["swaps"]

    def test_infinite_staleness_budget_is_frozen(
        self, drift_stream, closed_loop, tmp_path_factory
    ):
        workdir = str(tmp_path_factory.mktemp("loop-inf"))
        run = run_closed_loop(
            drift_stream, mode="continual", seed=3, workdir=workdir,
            staleness_budget=float("inf"),
        )
        assert run["learner"]["swaps"] == 0
        np.testing.assert_array_equal(
            run["scores"], closed_loop["frozen"]["scores"]
        )
