"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

import repro.core as tg
from repro import tensor as T
from repro.tensor.device import runtime


@pytest.fixture(autouse=True)
def _reset_runtime():
    """Keep the global device runtime pristine across tests."""
    runtime.reset()
    yield
    runtime.reset()


@pytest.fixture(autouse=True)
def _seed():
    T.manual_seed(1234)
    yield


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference numeric gradient of a scalar-valued fn at x."""
    x = x.astype(np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = fn(x.astype(np.float32))
        flat[i] = orig - eps
        minus = fn(x.astype(np.float32))
        flat[i] = orig
        gflat[i] = (plus - minus) / (2 * eps)
    return grad


def check_grad(op, *shapes, seed=0, atol=2e-2, rtol=2e-2, positive=False):
    """Compare autograd to numeric gradients for ``op(*tensors).sum()``.

    Args:
        op: function of Tensors returning a Tensor.
        shapes: one shape per input tensor.
        positive: draw inputs from (0.5, 1.5) to avoid non-smooth regions.
    """
    rng = np.random.default_rng(seed)
    arrays = []
    for shape in shapes:
        if positive:
            arrays.append(rng.uniform(0.5, 1.5, size=shape).astype(np.float32))
        else:
            arrays.append(rng.standard_normal(shape).astype(np.float32))

    tensors = [T.Tensor(a.copy(), requires_grad=True) for a in arrays]
    out = op(*tensors)
    out.sum().backward()

    for i, arr in enumerate(arrays):
        def scalar_fn(x, i=i):
            inputs = [T.Tensor(a.copy()) for a in arrays]
            inputs[i] = T.Tensor(x)
            return float(op(*inputs).sum().item())

        expected = numeric_grad(scalar_fn, arr.copy())
        actual = tensors[i].grad
        assert actual is not None, f"input {i} got no gradient"
        np.testing.assert_allclose(actual, expected, atol=atol, rtol=rtol)


@pytest.fixture
def tiny_graph():
    """A 6-node, 10-edge temporal graph with features."""
    src = np.array([0, 1, 2, 0, 3, 1, 4, 2, 5, 0])
    dst = np.array([1, 2, 3, 2, 0, 0, 1, 5, 3, 4])
    ts = np.arange(1.0, 11.0)
    g = tg.TGraph(src, dst, ts, num_nodes=6)
    rng = np.random.default_rng(0)
    g.set_nfeat(rng.standard_normal((6, 4)).astype(np.float32))
    g.set_efeat(rng.standard_normal((10, 3)).astype(np.float32))
    return g


@pytest.fixture
def tiny_ctx(tiny_graph):
    return tg.TContext(tiny_graph)
