"""Tests for synthetic datasets, splits, and negative sampling."""

import numpy as np
import pytest

from repro.data import (
    DATASETS,
    NegativeSampler,
    available_datasets,
    generate_edges,
    generate_features,
    get_dataset,
)


class TestGenerators:
    def test_registry_has_all_paper_datasets(self):
        assert set(available_datasets()) == {
            "wiki", "mooc", "reddit", "lastfm", "wikitalk", "gdelt",
        }

    def test_counts_match_spec(self):
        for name, spec in DATASETS.items():
            src, dst, ts = generate_edges(spec)
            assert len(src) == spec.num_edges, name
            assert max(src.max(), dst.max()) < spec.num_nodes, name

    def test_timestamps_sorted_and_span(self):
        spec = DATASETS["wiki"]
        _, _, ts = generate_edges(spec)
        assert np.all(np.diff(ts) >= 0)
        assert abs(ts[-1] - spec.t_max) < 1e-6
        assert ts[0] > 0

    def test_deterministic_per_seed(self):
        spec = DATASETS["mooc"]
        a = generate_edges(spec)
        b = generate_edges(spec)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_bipartite_partition_respected(self):
        for name in ("wiki", "mooc", "reddit", "lastfm"):
            spec = DATASETS[name]
            src, dst, _ = generate_edges(spec)
            num_users = int(round(spec.num_nodes * spec.user_fraction))
            assert src.max() < num_users, name
            assert dst.min() >= num_users, name

    def test_non_bipartite_no_self_loops(self):
        spec = DATASETS["wikitalk"]
        src, dst, _ = generate_edges(spec)
        assert np.all(src != dst)

    def test_repeat_interactions_present(self):
        # The repeat-or-explore process must produce revisits (pairs seen
        # more than once), which drive the dedup/cache benefits.
        spec = DATASETS["lastfm"]
        src, dst, _ = generate_edges(spec)
        pairs = src.astype(np.int64) * spec.num_nodes + dst
        _, counts = np.unique(pairs, return_counts=True)
        assert (counts > 1).mean() > 0.3

    def test_popularity_skew(self):
        spec = DATASETS["wiki"]
        _, dst, _ = generate_edges(spec)
        _, counts = np.unique(dst, return_counts=True)
        # Power-law-ish: the top item should dominate the median.
        assert counts.max() > 10 * np.median(counts)

    def test_feature_shapes_and_determinism(self):
        spec = DATASETS["wiki"]
        n1, e1 = generate_features(spec)
        n2, e2 = generate_features(spec)
        assert n1.shape == (spec.num_nodes, spec.dim_node)
        assert e1.shape == (spec.num_edges, spec.dim_edge)
        np.testing.assert_array_equal(n1, n2)
        np.testing.assert_array_equal(e1, e2)
        assert n1.dtype == np.float32


class TestDataset:
    def test_get_dataset_cached(self):
        assert get_dataset("wiki") is get_dataset("wiki")

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_dataset("nope")

    def test_splits_chronological_70_15_15(self):
        ds = get_dataset("wiki")
        tr, va, te = ds.splits()
        assert tr == int(ds.num_edges * 0.70)
        assert va == int(ds.num_edges * 0.85)
        assert te == ds.num_edges
        assert np.all(ds.ts[:tr].max() <= ds.ts[tr:va].min())

    def test_stats_row(self):
        row = get_dataset("mooc").stats()
        assert row["dataset"] == "mooc"
        assert row["|E|"] == row["paper |E|"] // row["edge scale"] or row["|E|"] > 0
        assert set(row) >= {"|V|", "|E|", "d_v", "d_e", "max(t)"}

    def test_build_graph_places_features(self):
        ds = get_dataset("wiki")
        g = ds.build_graph(feature_device="cuda")
        assert g.nfeat.device.is_cuda and g.efeat.device.is_cuda
        g = ds.build_graph()
        assert g.nfeat.device.is_cpu

    def test_bipartite_partition_accessor(self):
        ds = get_dataset("wiki")
        users, items = ds.bipartite_partition()
        assert users[-1] + 1 == items[0]
        assert len(users) + len(items) == ds.num_nodes
        assert get_dataset("wikitalk").bipartite_partition() is None

    def test_all_datasets_buildable(self):
        for name in available_datasets():
            ds = get_dataset(name)
            g = ds.build_graph()
            assert g.num_edges == ds.num_edges
            assert g.csr().num_nodes == ds.num_nodes


class TestNegativeSampler:
    def test_samples_from_candidates(self):
        sampler = NegativeSampler(np.array([7, 8, 9]), seed=1)
        out = sampler.sample(100)
        assert set(np.unique(out)) <= {7, 8, 9}

    def test_deterministic_stream_and_reset(self):
        s = NegativeSampler(np.arange(10), seed=3)
        a = s.sample(5)
        s.reset()
        b = s.sample(5)
        np.testing.assert_array_equal(a, b)

    def test_for_dataset_bipartite_uses_items(self):
        ds = get_dataset("wiki")
        sampler = NegativeSampler.for_dataset(ds)
        _, items = ds.bipartite_partition()
        out = sampler.sample(200)
        assert out.min() >= items[0]

    def test_for_dataset_general_uses_all_nodes(self):
        ds = get_dataset("wikitalk")
        sampler = NegativeSampler.for_dataset(ds)
        assert len(sampler.candidates) == ds.num_nodes

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            NegativeSampler(np.array([]))
