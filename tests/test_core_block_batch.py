"""Tests for TBatch and TBlock: batching, linking, caches, hooks."""

import numpy as np
import pytest

import repro.core as tg
from repro import tensor as T
from repro.tensor.device import runtime


class TestBatching:
    def test_iter_batches_covers_all_edges(self, tiny_graph):
        batches = list(tg.iter_batches(tiny_graph, 4))
        assert [len(b) for b in batches] == [4, 4, 2]
        assert batches[0].start == 0 and batches[-1].stop == 10

    def test_iter_batches_range(self, tiny_graph):
        batches = list(tg.iter_batches(tiny_graph, 3, start=2, stop=8))
        assert [(b.start, b.stop) for b in batches] == [(2, 5), (5, 8)]

    def test_bad_batch_size(self, tiny_graph):
        with pytest.raises(ValueError):
            list(tg.iter_batches(tiny_graph, 0))

    def test_batch_views_are_lazy_slices(self, tiny_graph):
        b = tg.TBatch(tiny_graph, 2, 5)
        np.testing.assert_array_equal(b.src, tiny_graph.src[2:5])
        np.testing.assert_array_equal(b.eids, [2, 3, 4])
        assert b.size == 3

    def test_invalid_range_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            tg.TBatch(tiny_graph, 5, 99)

    def test_nodes_and_times_without_negatives(self, tiny_graph):
        b = tg.TBatch(tiny_graph, 0, 2)
        assert len(b.nodes()) == 4
        np.testing.assert_allclose(b.times(), np.tile(b.ts, 2))

    def test_nodes_with_negatives(self, tiny_graph):
        b = tg.TBatch(tiny_graph, 0, 2, neg_nodes=np.array([5, 5]))
        nodes = b.nodes()
        assert len(nodes) == 6
        np.testing.assert_array_equal(nodes[-2:], [5, 5])
        assert len(b.times()) == 6

    def test_block_head_layout(self, tiny_ctx, tiny_graph):
        b = tg.TBatch(tiny_graph, 0, 3, neg_nodes=np.array([4, 4, 4]))
        head = b.block(tiny_ctx)
        assert head.num_dst == 9
        assert head.layer_id == 0
        assert not head.has_nbrs

    def test_block_adj_two_rows_per_edge(self, tiny_ctx, tiny_graph):
        b = tg.TBatch(tiny_graph, 0, 3)
        blk = b.block_adj(tiny_ctx)
        assert blk.num_dst == 6
        assert blk.num_src == 6
        # Each source row's node is the opposite endpoint of its dst row.
        for i in range(6):
            e = blk.eids[i]
            pair = {tiny_graph.src[e], tiny_graph.dst[e]}
            assert {blk.dstnodes[i], blk.srcnodes[i]} <= pair


class TestBlockStructure:
    def _sampled_block(self, ctx, g):
        b = tg.TBatch(g, 4, 8)
        head = b.block(ctx)
        return tg.TSampler(3, "recent").sample(head)

    def test_linking_via_next_block(self, tiny_ctx, tiny_graph):
        head = self._sampled_block(tiny_ctx, tiny_graph)
        nxt = head.next_block()
        assert head.next is nxt and nxt.prev is head
        assert nxt.layer_id == 1
        assert nxt.num_dst == head.num_dst + head.num_src
        assert head.tail() is nxt and nxt.head() is head
        assert head.chain_length() == 2

    def test_next_block_without_dst(self, tiny_ctx, tiny_graph):
        head = self._sampled_block(tiny_ctx, tiny_graph)
        nxt = head.next_block(include_dst=False)
        assert nxt.num_dst == head.num_src

    def test_next_block_requires_sampling(self, tiny_ctx, tiny_graph):
        head = tg.TBatch(tiny_graph, 0, 2).block(tiny_ctx)
        with pytest.raises(RuntimeError):
            head.next_block()

    def test_allnodes_layout(self, tiny_ctx, tiny_graph):
        blk = self._sampled_block(tiny_ctx, tiny_graph)
        nodes = blk.allnodes()
        np.testing.assert_array_equal(nodes[: blk.num_dst], blk.dstnodes)
        np.testing.assert_array_equal(nodes[blk.num_dst :], blk.srcnodes)
        times = blk.alltimes()
        np.testing.assert_allclose(times[: blk.num_dst], blk.dsttimes)

    def test_time_deltas_nonnegative(self, tiny_ctx, tiny_graph):
        blk = self._sampled_block(tiny_ctx, tiny_graph)
        assert np.all(blk.time_deltas() >= 0)

    def test_uniq_src_inverse(self, tiny_ctx, tiny_graph):
        blk = self._sampled_block(tiny_ctx, tiny_graph)
        uniq, inv = blk.uniq_src()
        np.testing.assert_array_equal(uniq[inv], blk.srcnodes)

    def test_set_dst_after_sampling_rejected(self, tiny_ctx, tiny_graph):
        blk = self._sampled_block(tiny_ctx, tiny_graph)
        with pytest.raises(RuntimeError):
            blk.set_dst(np.array([0]), np.array([1.0]))

    def test_set_nbrs_validates_lengths(self, tiny_ctx, tiny_graph):
        blk = tg.TBatch(tiny_graph, 0, 2).block(tiny_ctx)
        with pytest.raises(ValueError):
            blk.set_nbrs(np.array([0, 1]), np.array([0]), np.array([1.0]), np.array([0]))

    def test_mismatched_dst_lengths_rejected(self, tiny_ctx):
        with pytest.raises(ValueError):
            tg.TBlock(tiny_ctx, 0, np.array([0, 1]), np.array([1.0]))


class TestBlockDataAccess:
    def test_feature_accessors_shapes(self, tiny_ctx, tiny_graph):
        blk = tg.TSampler(2, "recent").sample(tg.TBatch(tiny_graph, 5, 9).block(tiny_ctx))
        assert blk.dstfeat().shape == (blk.num_dst, 4)
        assert blk.srcfeat().shape == (blk.num_src, 4)
        assert blk.efeat().shape == (blk.num_src, 3)
        assert blk.nfeat().shape == (blk.num_dst + blk.num_src, 4)

    def test_feature_values_match_graph(self, tiny_ctx, tiny_graph):
        blk = tg.TSampler(2, "recent").sample(tg.TBatch(tiny_graph, 5, 9).block(tiny_ctx))
        np.testing.assert_allclose(blk.dstfeat().numpy(), tiny_graph.nfeat.data[blk.dstnodes])
        np.testing.assert_allclose(blk.efeat().numpy(), tiny_graph.efeat.data[blk.eids])

    def test_accessors_cached(self, tiny_ctx, tiny_graph):
        blk = tg.TBatch(tiny_graph, 0, 2).block(tiny_ctx)
        assert blk.dstfeat() is blk.dstfeat()
        blk.clear_cache()
        # After a flush the data reloads gracefully.
        assert blk.dstfeat().shape == (blk.num_dst, 4)

    def test_missing_components_raise(self, tiny_ctx, tiny_graph):
        blk = tg.TBatch(tiny_graph, 0, 2).block(tiny_ctx)
        with pytest.raises(RuntimeError):
            blk.mem_data()
        with pytest.raises(RuntimeError):
            blk.mail()
        with pytest.raises(RuntimeError):
            blk.srcfeat()  # not sampled yet

    def test_memory_accessors(self, tiny_ctx, tiny_graph):
        tiny_graph.set_memory(6)
        tiny_graph.set_mailbox(5)
        blk = tg.TBatch(tiny_graph, 0, 2).block(tiny_ctx)
        assert blk.mem_data().shape == (blk.num_dst, 6)
        assert blk.mail().shape == (blk.num_dst, 5)
        assert blk.mem_ts().shape == (blk.num_dst,)
        assert blk.mail_ts().shape == (blk.num_dst,)

    def test_gather_transfers_when_host_resident(self, tiny_graph):
        ctx = tg.TContext(tiny_graph, device="cuda")
        blk = tg.TBatch(tiny_graph, 0, 2).block(ctx)
        before = runtime.transfer_stats.bytes
        feat = blk.dstfeat()
        assert feat.device.is_cuda
        assert runtime.transfer_stats.bytes > before


class TestHooks:
    def test_hooks_run_lifo_and_clear(self, tiny_ctx, tiny_graph):
        blk = tg.TBatch(tiny_graph, 0, 2).block(tiny_ctx)
        order = []

        def hook_a(b, out):
            order.append("a")
            return out + 1

        def hook_b(b, out):
            order.append("b")
            return out * 2

        blk.register_hook(hook_a)
        blk.register_hook(hook_b)
        out = blk.run_hooks(T.tensor([1.0]))
        assert order == ["b", "a"]
        # LIFO: (1*2)+1 = 3.
        np.testing.assert_allclose(out.numpy(), [3.0])
        assert blk.hooks == ()

    def test_run_hooks_empty_is_identity(self, tiny_ctx, tiny_graph):
        blk = tg.TBatch(tiny_graph, 0, 2).block(tiny_ctx)
        x = T.tensor([1.0])
        assert blk.run_hooks(x) is x
