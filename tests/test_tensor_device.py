"""Tests for the simulated device model: placement, transfers, capacity."""

import numpy as np
import pytest

from repro import tensor as T
from repro.tensor import CPU, CUDA, Device, DeviceOutOfMemoryError, Tensor
from repro.tensor.device import get_device, runtime


class TestDeviceIdentity:
    def test_interning(self):
        assert Device("cpu") is Device("cpu")
        assert Device("cuda") is Device("cuda")
        assert Device("cpu") is not Device("cuda")

    def test_from_device(self):
        assert Device(CPU) is CPU

    def test_unknown_device_rejected(self):
        with pytest.raises(ValueError):
            Device("tpu")

    def test_string_equality(self):
        assert CPU == "cpu"
        assert CUDA == "cuda"
        assert CUDA != "cpu"

    def test_immutability(self):
        with pytest.raises(AttributeError):
            CPU.type = "cuda"

    def test_get_device_none_is_cpu(self):
        assert get_device(None) is CPU

    def test_flags(self):
        assert CPU.is_cpu and not CPU.is_cuda
        assert CUDA.is_cuda and not CUDA.is_cpu


class TestPlacementAndTransfers:
    def test_default_placement_is_cpu(self):
        assert T.tensor([1.0]).device is CPU

    def test_to_same_device_is_noop(self):
        a = T.tensor([1.0])
        assert a.to("cpu") is a

    def test_to_cuda_records_transfer(self):
        a = T.tensor(np.zeros(1000, dtype=np.float32))
        before = runtime.transfer_stats.bytes
        b = a.cuda()
        assert b.device is CUDA
        assert runtime.transfer_stats.bytes - before == 4000

    def test_round_trip_preserves_values(self):
        a = T.tensor([1.0, 2.0, 3.0])
        np.testing.assert_allclose(a.cuda().cpu().numpy(), a.numpy())

    def test_pinned_transfer_counted_separately(self):
        a = T.tensor(np.zeros(10, dtype=np.float32)).pin_memory()
        assert a.pinned
        a.cuda()
        assert runtime.transfer_stats.pinned_bytes == 40

    def test_pin_memory_idempotent_and_cuda_noop(self):
        a = T.tensor([1.0]).pin_memory()
        assert a.pin_memory() is a
        c = T.tensor([1.0], device="cuda")
        assert c.pin_memory() is c

    def test_simulated_seconds_use_bandwidths(self):
        runtime.pageable_bandwidth = 1e6
        runtime.pinned_bandwidth = 4e6
        data = np.zeros(250_000, dtype=np.float32)  # 1 MB
        T.tensor(data).cuda()
        assert abs(runtime.transfer_stats.simulated_seconds - 1.0) < 1e-6
        T.tensor(data).pin_memory().cuda()
        assert abs(runtime.transfer_stats.simulated_seconds - 1.25) < 1e-6

    def test_cost_spin_waits_when_enabled(self):
        import time

        runtime.simulate_transfer_cost = True
        runtime.pageable_bandwidth = 1e6  # 1 MB/s
        data = np.zeros(25_000, dtype=np.float32)  # 100 KB -> 0.1 s
        t0 = time.perf_counter()
        T.tensor(data).cuda()
        assert time.perf_counter() - t0 >= 0.09

    def test_stats_reset(self):
        T.tensor([1.0]).cuda()
        runtime.reset()
        assert runtime.transfer_stats.bytes == 0


class TestCapacityAccounting:
    def test_no_tracking_by_default(self):
        assert not runtime.tracking(CUDA)
        T.tensor(np.zeros(1000, dtype=np.float32), device="cuda")
        assert runtime.used_bytes["cuda"] == 0

    def test_allocation_tracked_under_capacity(self):
        runtime.set_capacity("cuda", 10_000)
        keep = T.tensor(np.zeros(1000, dtype=np.float32), device="cuda")
        assert runtime.used_bytes["cuda"] == 4000
        assert keep.device is CUDA

    def test_oom_raised_when_over_capacity(self):
        runtime.set_capacity("cuda", 1000)
        with pytest.raises(DeviceOutOfMemoryError):
            T.tensor(np.zeros(1000, dtype=np.float32), device="cuda")

    def test_gc_frees_tracked_bytes(self):
        import gc

        runtime.set_capacity("cuda", 100_000)
        t = T.tensor(np.zeros(1000, dtype=np.float32), device="cuda")
        assert runtime.used_bytes["cuda"] == 4000
        del t
        gc.collect()
        assert runtime.used_bytes["cuda"] == 0

    def test_freed_memory_reusable(self):
        import gc

        runtime.set_capacity("cuda", 4096)
        for _ in range(5):
            t = T.tensor(np.zeros(1000, dtype=np.float32), device="cuda")
            del t
            gc.collect()

    def test_set_capacity_none_disables(self):
        runtime.set_capacity("cuda", 100)
        runtime.set_capacity("cuda", None)
        T.tensor(np.zeros(1000, dtype=np.float32), device="cuda")


class TestOpsOnDevice:
    def test_op_result_stays_on_device(self):
        a = T.tensor([1.0, 2.0], device="cuda")
        assert (a + a).device is CUDA
        assert (a * 2).device is CUDA
        assert a.relu().device is CUDA
        assert a.softmax().device is CUDA

    def test_cat_requires_same_device(self):
        a = T.tensor([1.0])
        b = T.tensor([1.0], device="cuda")
        with pytest.raises(RuntimeError):
            T.cat([a, b])

    def test_backward_through_device_tensor(self):
        a = T.tensor([2.0], requires_grad=True, device="cuda")
        (a * a).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0])
