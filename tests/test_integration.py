"""Cross-module integration tests: full pipelines, placement modes, OOM."""

import numpy as np
import pytest

import repro.core as tg
from repro import nn
from repro import tensor as T
from repro.bench import evaluate, train, train_epoch
from repro.bench.experiments import Experiment, ExperimentConfig
from repro.data import NegativeSampler, get_dataset
from repro.models import TGAT, TGN, OptFlags
from repro.tensor import DeviceOutOfMemoryError
from repro.tensor.device import runtime


class TestEndToEndPipelines:
    @pytest.mark.parametrize("model", ["tgat", "tgn", "jodie", "apan"])
    @pytest.mark.parametrize("framework", ["tgl", "tglite+opt"])
    def test_full_train_and_inference(self, model, framework):
        cfg = ExperimentConfig(
            dataset="wiki", model=model, framework=framework, placement="gpu",
            epochs=1, batch_size=500, num_nbrs=3,
            dim_time=8, dim_embed=8, dim_mem=8, mailbox_slots=3,
        )
        exp = Experiment(cfg)
        try:
            res = exp.run_training()
            assert np.isfinite(res.epochs[0].train_loss)
            seconds, ap = exp.run_test_inference()
            assert 0 <= ap <= 1
        finally:
            exp.close()

    def test_cpu2gpu_transfers_happen_and_gpu_mode_does_not(self):
        for placement, expect_transfers in (("cpu2gpu", True), ("gpu", False)):
            cfg = ExperimentConfig(
                dataset="wiki", model="tgat", framework="tglite",
                placement=placement, epochs=1, batch_size=1000, num_nbrs=3,
                dim_time=8, dim_embed=8,
            )
            exp = Experiment(cfg)
            try:
                runtime.transfer_stats.reset()
                train_epoch(exp.model, exp.g, exp.optimizer, exp.neg_sampler,
                            cfg.batch_size, stop=1000)
                moved = runtime.transfer_stats.bytes
                if expect_transfers:
                    assert moved > 0
                else:
                    assert moved == 0
            finally:
                exp.close()

    def test_tglite_uses_pinned_path_tgl_does_not(self):
        for framework, expect_pinned in (("tglite", True), ("tgl", False)):
            cfg = ExperimentConfig(
                dataset="wiki", model="tgat", framework=framework,
                placement="cpu2gpu", epochs=1, batch_size=1000, num_nbrs=3,
                dim_time=8, dim_embed=8,
            )
            exp = Experiment(cfg)
            try:
                runtime.transfer_stats.reset()
                train_epoch(exp.model, exp.g, exp.optimizer, exp.neg_sampler,
                            cfg.batch_size, stop=1000)
                pinned = runtime.transfer_stats.pinned_bytes
                assert (pinned > 0) == expect_pinned
            finally:
                exp.close()

    def test_dedup_reduces_computed_rows(self):
        """The optimization operators must actually shrink the work."""
        ds = get_dataset("lastfm")  # heaviest repetition
        rows = {}
        for label, flags in (("plain", OptFlags.none()), ("opt", OptFlags(dedup=True))):
            g = ds.build_graph()
            ctx = tg.TContext(g)
            model = TGAT(ctx, dim_node=128, dim_edge=128, dim_time=8, dim_embed=8,
                         num_layers=2, num_nbrs=5, opt=flags)
            batch = tg.TBatch(g, 2000, 2400)
            batch.neg_nodes = NegativeSampler.for_dataset(ds).sample(400)
            counted = []
            original = model.sampler.sample

            def counting_sample(blk, _orig=original, _counted=counted):
                _counted.append(blk.num_dst)
                return _orig(blk)

            model.sampler.sample = counting_sample
            model(batch)
            rows[label] = sum(counted)
        assert rows["opt"] < rows["plain"] * 0.7


class TestOOMScenario:
    """Reproduces the Table 7 phenomenon: under a device-memory cap, the
    eager TGL pipeline exhausts simulated GPU memory while TGLite+opt
    completes the same workload."""

    def _run(self, framework, capacity):
        cfg = ExperimentConfig(
            dataset="gdelt", model="tgat", framework=framework,
            placement="cpu2gpu", epochs=1, batch_size=2000, num_nbrs=8,
            dim_time=16, dim_embed=16, device_capacity=capacity,
        )
        exp = Experiment(cfg)
        try:
            batch = tg.TBatch(exp.g, 20000, 22000)
            batch.neg_nodes = exp.neg_sampler.sample(2000)
            pos, neg = exp.model(batch)
            loss = nn.bce_with_logits(
                pos, T.ones(len(batch), device=pos.device)
            )
            loss.backward()
        finally:
            exp.close()

    def test_tgl_ooms_where_tglite_fits(self):
        # Measured peaks for this workload: TGL ~3.3 GB, TGLite+opt ~0.8 GB.
        capacity = 1536 * 1024 * 1024
        with pytest.raises(DeviceOutOfMemoryError):
            self._run("tgl", capacity)
        self._run("tglite+opt", capacity)  # must not raise


class TestAccuracyParity:
    def test_frameworks_reach_similar_ap(self):
        """§5.2: TGLite implementations achieve similar accuracy to TGL."""
        aps = {}
        for framework in ("tgl", "tglite+opt"):
            cfg = ExperimentConfig(
                dataset="wiki", model="tgat", framework=framework,
                placement="gpu", epochs=2, batch_size=300,
                dim_time=16, dim_embed=16, num_nbrs=5,
            )
            exp = Experiment(cfg)
            try:
                res = exp.run_training()
                aps[framework] = res.best_ap
            finally:
                exp.close()
        assert abs(aps["tgl"] - aps["tglite+opt"]) < 0.10
        assert min(aps.values()) > 0.6
