"""Tests for the Figure-7 breakdown runner and experiment flag overrides."""

import numpy as np
import pytest

from repro.bench.breakdown import run_tgat_breakdown
from repro.bench.experiments import Experiment, ExperimentConfig
from repro.models import OptFlags


def small_cfg(framework, **kw):
    return ExperimentConfig(
        dataset="wiki", model="tgat", framework=framework, placement="gpu",
        batch_size=400, num_nbrs=3, dim_time=8, dim_embed=8, **kw,
    )


class TestBreakdownRunner:
    def test_tglite_stages_present(self):
        totals = run_tgat_breakdown(small_cfg("tglite"), slice_edges=800)
        for stage in ("batch_prep", "sample", "data_load", "time_zero",
                      "time_nbrs", "attention", "pred_loss", "backward", "opt_step"):
            assert stage in totals, stage
            assert totals[stage] >= 0

    def test_tgl_has_no_separate_time_stage(self):
        totals = run_tgat_breakdown(small_cfg("tgl"), slice_edges=800)
        assert "time_nbrs" not in totals
        assert "time_zero" not in totals
        assert totals["attention"] > 0

    def test_attention_reported_exclusive_of_time_encoding(self):
        totals = run_tgat_breakdown(small_cfg("tglite"), slice_edges=800)
        # attention was reduced by nested time sections; all must be finite
        # and non-negative after the subtraction.
        assert totals["attention"] >= 0

    def test_rejects_non_tgat_models(self):
        cfg = ExperimentConfig(dataset="wiki", model="tgn", framework="tglite")
        with pytest.raises(ValueError):
            run_tgat_breakdown(cfg)

    def test_patching_is_restored_after_run(self):
        from repro.models.attention import TemporalAttnLayer

        before = TemporalAttnLayer._zero_time
        run_tgat_breakdown(small_cfg("tglite"), slice_edges=400)
        assert TemporalAttnLayer._zero_time is before


class TestOptFlagOverride:
    def test_explicit_flags_override_framework_preset(self):
        flags = OptFlags(dedup=True, cache=False, time_precompute=False, preload=False)
        cfg = small_cfg("tglite", opt_flags=flags)
        exp = Experiment(cfg)
        try:
            assert exp.model.opt is flags
        finally:
            exp.close()

    def test_presets_used_without_override(self):
        exp = Experiment(small_cfg("tglite+opt"))
        try:
            assert exp.model.opt.dedup and exp.model.opt.cache
        finally:
            exp.close()
        exp = Experiment(small_cfg("tglite"))
        try:
            assert exp.model.opt.preload and not exp.model.opt.dedup
        finally:
            exp.close()
