"""Tests for the Listing-1 manual TGAT and its equivalence to the framework."""

import numpy as np
import pytest

import repro.core as tg
from repro import nn
from repro import tensor as T
from repro.bench import train_epoch
from repro.data import NegativeSampler, get_dataset
from repro.manual import ManualOptimizer, ManualTGAT, NeighborFinder
from repro.models import TGAT, OptFlags


@pytest.fixture(scope="module")
def wiki():
    return get_dataset("wiki")


class TestNeighborFinder:
    def test_matches_framework_sampler(self, wiki):
        """The ad-hoc finder and TSampler must pick identical neighbors."""
        g = wiki.build_graph()
        finder = NeighborFinder(wiki.src, wiki.dst, wiki.ts, wiki.num_nodes)
        nodes = np.array([0, 3, 7])
        times = np.array([1e6, 1e6, 1e6])
        nbrs, eids, nbr_ts, mask = finder.sample_recent(5, nodes, times)

        ctx = tg.TContext(g)
        blk = tg.TBlock(ctx, 0, nodes, times)
        tg.TSampler(5, "recent").sample(blk)
        # Flatten padded rows and compare the real entries.
        flat_eids = eids[mask]
        np.testing.assert_array_equal(np.sort(flat_eids), np.sort(blk.eids))

    def test_padding_masked(self, wiki):
        finder = NeighborFinder(wiki.src, wiki.dst, wiki.ts, wiki.num_nodes)
        nbrs, eids, nbr_ts, mask = finder.sample_recent(
            4, np.array([0]), np.array([0.5])
        )
        assert not mask.any()
        assert (nbrs == 0).all()


class TestManualOptimizer:
    def test_dedup_filter_invert_roundtrip(self):
        opt = ManualOptimizer()
        nids = np.array([1, 2, 1])
        times = np.array([1.0, 1.0, 1.0])
        un, ut, inv = opt.dedup_filter(nids, times)
        assert len(un) == 2
        embs = T.tensor(np.array([[1.0], [2.0]]))
        out = ManualOptimizer.dedup_invert(embs, inv)
        np.testing.assert_allclose(out.numpy().reshape(-1)[0], out.numpy().reshape(-1)[2])

    def test_cache_roundtrip_and_eviction(self):
        opt = ManualOptimizer(cache_capacity=2)
        for i in range(3):
            opt.cache_store(1, np.ones((1, 4)) * i, np.array([i]), np.array([0.0]))
        hit, _ = opt.cache_lookup(1, np.array([0]), np.array([0.0]))
        assert not hit.any()  # evicted
        hit, rows = opt.cache_lookup(1, np.array([2]), np.array([0.0]))
        assert hit.all()
        np.testing.assert_allclose(rows[0], np.full(4, 2.0))

    def test_time_table_reuse_and_invalidation(self):
        opt = ManualOptimizer()
        enc = nn.TimeEncode(4)
        first = opt.time_embs(enc, np.array([1.0, 2.0]))
        np.testing.assert_allclose(first, enc.encode_raw(np.array([1.0, 2.0])), rtol=1e-6)
        assert len(opt._time_tables[id(enc)]) == 2
        opt.invalidate_time_tables()
        assert opt._time_tables == {}

    def test_disabled_flags_passthrough(self):
        opt = ManualOptimizer()
        opt.enabled_dedup = False
        nids, times = np.array([1, 1]), np.array([0.0, 0.0])
        out_n, out_t, inv = opt.dedup_filter(nids, times)
        assert inv is None and len(out_n) == 2
        opt.enabled_cache = False
        hit, rows = opt.cache_lookup(0, nids, times)
        assert not hit.any() and rows is None


class TestManualTGAT:
    def _manual(self, wiki, **kw):
        return ManualTGAT(
            wiki.src, wiki.dst, wiki.ts, wiki.nfeat, wiki.efeat, wiki.num_nodes,
            dim_time=16, dim_embed=16, num_layers=2, num_heads=2, num_nbrs=5,
            dropout=0.0, **kw,
        )

    def test_forward_shapes(self, wiki):
        model = self._manual(wiki)
        g = wiki.build_graph()
        batch = tg.TBatch(g, 100, 140)
        batch.neg_nodes = np.random.default_rng(0).integers(0, g.num_nodes, 40)
        pos, neg = model(batch)
        assert pos.shape == (40,) and neg.shape == (40,)

    def test_trains(self, wiki):
        model = self._manual(wiki)
        g = wiki.build_graph()
        opt = nn.Adam(model.parameters(), lr=1e-2)
        neg = NegativeSampler.for_dataset(wiki)
        _, loss0 = train_epoch(model, g, opt, neg, 300, stop=900)
        _, loss1 = train_epoch(model, g, opt, neg, 300, stop=900)
        assert loss1 < loss0

    def test_equivalent_to_framework_tgat(self, wiki):
        """Same weights, same inputs -> same embeddings as repro.models.TGAT."""
        T.manual_seed(21)
        g = wiki.build_graph()
        ctx = tg.TContext(g)
        framework = TGAT(ctx, dim_node=172, dim_edge=172, dim_time=16,
                         dim_embed=16, num_layers=2, num_heads=2, num_nbrs=5,
                         dropout=0.0, opt=OptFlags.none())
        manual = self._manual(wiki)

        # Transplant weights: framework attn_layers.i.* -> manual layers.i.*
        state = framework.state_dict()
        renamed = {}
        for key, value in state.items():
            renamed[key.replace("attn_layers.", "layers.")] = value
        manual.load_state_dict(renamed)

        batch = tg.TBatch(g, 200, 240)
        batch.neg_nodes = np.random.default_rng(1).integers(0, g.num_nodes, 40)
        framework.eval(); manual.eval()
        with T.no_grad():
            f_pos, f_neg = framework(batch)
            m_pos, m_neg = manual(batch)
        np.testing.assert_allclose(f_pos.numpy(), m_pos.numpy(), atol=2e-3)
        np.testing.assert_allclose(f_neg.numpy(), m_neg.numpy(), atol=2e-3)

    def test_cache_engages_only_in_eval(self, wiki):
        model = self._manual(wiki)
        g = wiki.build_graph()
        batch = tg.TBatch(g, 100, 130)
        batch.neg_nodes = np.zeros(30, dtype=np.int64) + 400
        model.train()
        model(batch)
        assert model.opt._cache == {}
        model.eval()
        with T.no_grad():
            model(batch)
        assert len(model.opt._cache) > 0

    def test_reset_state_clears_bookkeeping(self, wiki):
        model = self._manual(wiki)
        g = wiki.build_graph()
        batch = tg.TBatch(g, 100, 130)
        batch.neg_nodes = np.zeros(30, dtype=np.int64) + 400
        model.eval()
        with T.no_grad():
            model(batch)
        model.reset_state()
        assert model.opt._cache == {}
        assert model.opt._time_tables == {}
