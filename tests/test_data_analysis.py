"""Tests for the workload-profiling analytics."""

import numpy as np
import pytest

import repro.core as tg
from repro.data import batch_duplication_ratio, get_dataset, profile_dataset
from repro.data.analysis import _gini


class TestGini:
    def test_uniform_is_zero(self):
        assert _gini(np.full(10, 5)) == pytest.approx(0.0, abs=1e-9)

    def test_extreme_concentration_near_one(self):
        counts = np.zeros(1000)
        counts[0] = 1e6
        assert _gini(counts) > 0.99

    def test_empty_and_zero(self):
        assert _gini(np.array([])) == 0.0
        assert _gini(np.zeros(5)) == 0.0

    def test_monotone_in_skew(self):
        mild = _gini(np.array([1, 2, 3, 4], dtype=float))
        harsh = _gini(np.array([1, 1, 1, 100], dtype=float))
        assert harsh > mild > 0


class TestDuplicationRatio:
    def test_star_graph_high_duplication(self):
        # Every edge touches node 0 at identical batch times -> 2-hop
        # frontiers are massively duplicated.
        m = 400
        src = np.zeros(m, dtype=np.int64)
        dst = 1 + (np.arange(m) % 5)
        ts = np.arange(1.0, m + 1.0)
        g = tg.TGraph(src, dst, ts, num_nodes=6)
        ratio = batch_duplication_ratio(g, batch_size=50, num_nbrs=5, max_batches=3)
        assert ratio > 0.4

    def test_ratio_in_unit_interval(self):
        ds = get_dataset("wiki")
        ratio = batch_duplication_ratio(ds.build_graph(), 200, max_batches=3)
        assert 0.0 <= ratio <= 1.0


class TestProfileDataset:
    def test_profile_fields(self):
        profile = profile_dataset(get_dataset("wiki"), batch_size=200, max_batches=3)
        assert profile.num_edges == 3149
        assert 0 <= profile.repeat_pair_fraction <= 1
        assert 0 <= profile.popularity_gini <= 1
        assert 0 <= profile.dedup_potential <= 1
        assert 0 < profile.delta_distinct_fraction <= 1
        assert profile.median_gap > 0
        assert profile.p99_gap >= profile.median_gap

    def test_as_row_keys(self):
        row = profile_dataset(get_dataset("wiki"), batch_size=200, max_batches=2).as_row()
        assert {"dataset", "|V|", "|E|", "dedup potential"} <= set(row)

    def test_lastfm_more_redundant_than_wikitalk(self):
        """The repeat-heavy dense graph must profile as more optimizable —
        the property behind the paper's per-dataset speedup ordering."""
        lastfm = profile_dataset(get_dataset("lastfm"), batch_size=200, max_batches=3)
        wikitalk = profile_dataset(get_dataset("wikitalk"), batch_size=200, max_batches=3)
        assert lastfm.dedup_potential > wikitalk.dedup_potential
        assert lastfm.edges_per_node > wikitalk.edges_per_node
