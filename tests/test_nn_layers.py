"""Tests for layers, cells, losses, optimizers, and TimeEncode."""

import numpy as np
import pytest

from repro import nn
from repro import tensor as T

from conftest import check_grad


class TestLinear:
    def test_output_shape_and_value(self):
        lin = nn.Linear(3, 2)
        x = T.randn(5, 3)
        out = lin(x)
        assert out.shape == (5, 2)
        expected = x.numpy() @ lin.weight.data.T + lin.bias.data
        np.testing.assert_allclose(out.numpy(), expected, rtol=1e-5)

    def test_no_bias(self):
        lin = nn.Linear(3, 2, bias=False)
        assert lin.bias is None
        assert len(list(lin.parameters())) == 1

    def test_3d_input(self):
        lin = nn.Linear(3, 4)
        out = lin(T.randn(2, 5, 3))
        assert out.shape == (2, 5, 4)

    def test_gradients_flow(self):
        lin = nn.Linear(3, 2)
        lin(T.randn(4, 3)).sum().backward()
        assert lin.weight.grad.shape == (2, 3)
        assert lin.bias.grad.shape == (2,)

    def test_3d_weight_grad_matches_2d(self):
        # The flattened fast-path in matmul backward must agree with
        # looping over the batch dimension.
        lin = nn.Linear(3, 2)
        x3 = T.randn(4, 5, 3)
        lin(x3).sum().backward()
        g3 = lin.weight.grad.copy()
        lin.zero_grad()
        lin(x3.reshape(20, 3)).sum().backward()
        np.testing.assert_allclose(g3, lin.weight.grad, rtol=1e-4)


class TestLayerNorm:
    def test_normalizes_rows(self):
        ln = nn.LayerNorm(8, elementwise_affine=False)
        out = ln(T.randn(10, 8) * 5 + 3).numpy()
        np.testing.assert_allclose(out.mean(axis=1), np.zeros(10), atol=1e-5)
        np.testing.assert_allclose(out.std(axis=1), np.ones(10), atol=1e-2)

    def test_affine_params(self):
        ln = nn.LayerNorm(4)
        assert len(list(ln.parameters())) == 2

    def test_grad(self):
        ln = nn.LayerNorm(4, elementwise_affine=False)
        check_grad(lambda x: ln(x), (3, 4), atol=5e-2)


class TestDropout:
    def test_identity_in_eval(self):
        d = nn.Dropout(0.5).eval()
        x = T.randn(10, 10)
        assert d(x) is x

    def test_scales_in_train(self):
        T.manual_seed(0)
        d = nn.Dropout(0.5)
        x = T.ones(100, 100)
        out = d(x).numpy()
        # Kept entries are scaled by 1/(1-p) = 2.
        kept = out[out > 0]
        np.testing.assert_allclose(kept, 2.0)
        assert abs(out.mean() - 1.0) < 0.1

    def test_p_zero_is_identity(self):
        d = nn.Dropout(0.0)
        x = T.randn(4)
        assert d(x) is x

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)


class TestActivationsAndMLP:
    def test_activation_modules(self):
        x = T.tensor([-1.0, 2.0])
        np.testing.assert_allclose(nn.ReLU()(x).numpy(), [0, 2])
        np.testing.assert_allclose(nn.Tanh()(x).numpy(), np.tanh([-1, 2]), rtol=1e-5)
        assert nn.Identity()(x) is x
        np.testing.assert_allclose(nn.LeakyReLU(0.5)(x).numpy(), [-0.5, 2])
        np.testing.assert_allclose(nn.Sigmoid()(x).numpy(), 1 / (1 + np.exp([1.0, -2.0])), rtol=1e-5)

    def test_mlp_shape(self):
        mlp = nn.MLP(6, 12, 3)
        assert mlp(T.randn(4, 6)).shape == (4, 3)


class TestRNNCells:
    def test_gru_shapes_and_range(self):
        gru = nn.GRUCell(4, 6)
        h = gru(T.randn(3, 4), T.zeros(3, 6))
        assert h.shape == (3, 6)
        assert np.all(np.abs(h.numpy()) <= 1.0)

    def test_gru_matches_manual_reference(self):
        gru = nn.GRUCell(2, 3)
        x = np.random.default_rng(0).standard_normal((1, 2)).astype(np.float32)
        h = np.random.default_rng(1).standard_normal((1, 3)).astype(np.float32)
        out = gru(T.tensor(x), T.tensor(h)).numpy()

        def sig(v):
            return 1 / (1 + np.exp(-v))

        gi = x @ gru.weight_ih.data.T + gru.bias_ih.data
        gh = h @ gru.weight_hh.data.T + gru.bias_hh.data
        r = sig(gi[:, :3] + gh[:, :3])
        z = sig(gi[:, 3:6] + gh[:, 3:6])
        n = np.tanh(gi[:, 6:] + r * gh[:, 6:])
        expected = (1 - z) * n + z * h
        np.testing.assert_allclose(out, expected, rtol=1e-5)

    def test_rnn_matches_reference(self):
        cell = nn.RNNCell(2, 3)
        x = np.ones((1, 2), dtype=np.float32)
        h = np.zeros((1, 3), dtype=np.float32)
        out = cell(T.tensor(x), T.tensor(h)).numpy()
        expected = np.tanh(x @ cell.weight_ih.data.T + h @ cell.weight_hh.data.T + cell.bias.data)
        np.testing.assert_allclose(out, expected, rtol=1e-5)

    def test_cells_without_bias(self):
        assert nn.GRUCell(2, 3, bias=False).bias_ih is None
        assert nn.RNNCell(2, 3, bias=False).bias is None

    def test_gru_gradient_flows_to_both_inputs(self):
        gru = nn.GRUCell(2, 3)
        x = T.randn(2, 2, requires_grad=True)
        h = T.randn(2, 3, requires_grad=True)
        gru(x, h).sum().backward()
        assert x.grad is not None and h.grad is not None


class TestLosses:
    def test_bce_matches_reference(self):
        logits = np.array([-2.0, 0.0, 3.0], dtype=np.float32)
        targets = np.array([0.0, 1.0, 1.0], dtype=np.float32)
        out = nn.bce_with_logits(T.tensor(logits), T.tensor(targets)).item()
        p = 1 / (1 + np.exp(-logits))
        expected = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
        assert abs(out - expected) < 1e-5

    def test_bce_reductions(self):
        logits, targets = T.zeros(4), T.ones(4)
        total = nn.bce_with_logits(logits, targets, reduction="sum").item()
        mean = nn.bce_with_logits(logits, targets, reduction="mean").item()
        none = nn.bce_with_logits(logits, targets, reduction="none")
        assert abs(total - 4 * mean) < 1e-5
        assert none.shape == (4,)
        with pytest.raises(ValueError):
            nn.bce_with_logits(logits, targets, reduction="bogus")

    def test_bce_stable_for_large_logits(self):
        out = nn.bce_with_logits(T.tensor([100.0, -100.0]), T.tensor([1.0, 0.0])).item()
        assert np.isfinite(out) and out < 1e-4

    def test_bce_grad(self):
        targets = T.tensor([1.0, 0.0, 1.0])
        check_grad(lambda x: nn.bce_with_logits(x, targets, reduction="none"), (3,))

    def test_mse(self):
        loss = nn.MSELoss()(T.tensor([1.0, 3.0]), T.tensor([0.0, 0.0]))
        assert abs(loss.item() - 5.0) < 1e-6


class TestOptimizers:
    def _quadratic_descent(self, optim_factory, steps=150):
        x = nn.Parameter(np.array([5.0, -3.0], dtype=np.float32))
        opt = optim_factory([x])
        for _ in range(steps):
            opt.zero_grad()
            loss = (x * x).sum()
            loss.backward()
            opt.step()
        return np.abs(x.data).max()

    def test_sgd_converges(self):
        assert self._quadratic_descent(lambda p: nn.SGD(p, lr=0.1)) < 1e-3

    def test_sgd_momentum_converges(self):
        assert self._quadratic_descent(lambda p: nn.SGD(p, lr=0.05, momentum=0.9)) < 1e-3

    def test_adam_converges(self):
        assert self._quadratic_descent(lambda p: nn.Adam(p, lr=0.2)) < 1e-2

    def test_weight_decay_shrinks(self):
        x = nn.Parameter(np.array([1.0], dtype=np.float32))
        opt = nn.SGD([x], lr=0.1, weight_decay=1.0)
        # Zero loss gradient: only decay acts.
        x.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        assert x.data[0] < 1.0

    def test_skips_params_without_grad(self):
        x = nn.Parameter(np.array([1.0], dtype=np.float32))
        nn.Adam([x], lr=0.1).step()
        assert x.data[0] == 1.0

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            nn.Adam([], lr=0.1)

    def test_bad_lr_rejected(self):
        with pytest.raises(ValueError):
            nn.SGD([nn.Parameter(np.ones(1, dtype=np.float32))], lr=0.0)


class TestTimeEncode:
    def test_zero_delta_gives_cos_bias(self):
        te = nn.TimeEncode(8)
        out = te(T.zeros(3)).numpy()
        np.testing.assert_allclose(out, np.cos(np.zeros((3, 8)) + te.bias.data), rtol=1e-5)

    def test_output_bounded(self):
        te = nn.TimeEncode(16)
        out = te(T.tensor(np.linspace(0, 1e6, 50, dtype=np.float32))).numpy()
        assert np.all(np.abs(out) <= 1.0 + 1e-6)

    def test_encode_raw_matches_forward(self):
        te = nn.TimeEncode(8)
        deltas = np.array([0.0, 1.0, 100.0], dtype=np.float32)
        np.testing.assert_allclose(te.encode_raw(deltas), te(T.tensor(deltas)).numpy(), rtol=1e-5)

    def test_version_counter(self):
        te = nn.TimeEncode(4)
        v = te.version
        te.mark_updated()
        assert te.version == v + 1

    def test_trainable_flag(self):
        te = nn.TimeEncode(4, trainable=False)
        assert not te.weight.requires_grad
        te = nn.TimeEncode(4, trainable=True)
        out = te(T.tensor([1.0, 2.0]))
        out.sum().backward()
        assert te.weight.grad is not None

    def test_2d_input_accepted(self):
        te = nn.TimeEncode(4)
        assert te(T.zeros(5, 1)).shape == (5, 4)
