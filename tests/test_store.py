"""Tests for the tiered feature store (`repro.store`).

Covers the tier hierarchy end to end — hot -> staging -> cold demotion,
promotion back up, prefetch hit/miss/stall accounting on the simulated
clock, eviction determinism, the ``disk.read`` fault-injection path of
the cold spill tier — plus the legacy front-end shims (``cache_limit``,
``op.cache`` / ``op.preload``) that must stay bit-identical through the
store.
"""

import os
import warnings

import numpy as np
import pytest

import repro.core as tg
from repro.core import iter_batches
from repro.core.kernels.cache import NodeTimeCache, _ReferenceNodeTimeCache
from repro.core import op as tgop
from repro.resilience import FaultInjector
from repro.serve.deadline import CostModel, DegradationLadder
from repro.store import StoreConfig, StoreStats, TieredFeatureStore
from repro.store.api import FeatureStore, StoreClock
from repro.store.prefetch import BatchPipeline, attach_graph_sources
from repro.store.tiers import ColdTier, SourceTier


def rows_for(nodes, dim=4):
    """Deterministic distinct float32 rows keyed by node id."""
    nodes = np.asarray(nodes, dtype=np.int64)
    base = np.arange(dim, dtype=np.float32)
    return (nodes[:, None].astype(np.float32) * 10.0 + base).astype(np.float32)


def flat_store(**overrides):
    """A store shaped like the legacy flat FIFO cache (no tiers below hot)."""
    cfg = StoreConfig(hot_policy="fifo", staging_rows=0, prefetch_depth=0,
                      **overrides)
    return TieredFeatureStore(cfg)


class TestProtocol:
    def test_tiered_store_satisfies_protocol(self):
        assert isinstance(TieredFeatureStore(), FeatureStore)

    def test_store_clock_monotone(self):
        clock = StoreClock()
        assert clock.now() == 0.0
        clock.advance(1.5)
        assert clock.now() == 1.5
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_config_mb_budgets_resolve_to_rows(self):
        cfg = StoreConfig(hot_mb=1.0)
        # 1 MiB of dim-64 float32 rows = 4096 rows.
        assert cfg.hot_rows(64) == 4096
        assert cfg.hot_rows(None) == cfg.hot_capacity
        assert cfg.with_overrides(hot_mb=None).hot_mb == 1.0
        assert cfg.with_overrides(hot_mb=2.0).hot_mb == 2.0


class TestDemotionChain:
    """Hot -> staging -> cold, with promotion back up on lookup."""

    def make_store(self, tmp_path, hot=4, staging=4):
        cfg = StoreConfig(hot_capacity=hot, hot_policy="fifo",
                          staging_rows=staging, cold_dir=str(tmp_path),
                          prefetch_depth=1)
        return TieredFeatureStore(cfg)

    def fill(self, store, n, space="embed:0"):
        for node in range(n):
            store.put(np.array([node]), None, rows_for([node]), space=space)

    def test_rows_cascade_down_the_tiers(self, tmp_path):
        store = self.make_store(tmp_path)
        self.fill(store, 12)
        st = store.stats()
        # 12 puts through a 4-row hot ring displace 8 into staging; the
        # 4-row staging ring spills its own overflow into the cold tier.
        assert st.tiers["hot"].evictions == 8
        assert st.tiers["staging"].demotions == 8
        assert st.tiers["staging"].evictions == 4
        assert st.tiers["cold"].demotions == 4
        sp = store.space("embed:0")
        assert isinstance(sp.cold, ColdTier)
        assert sp.cold.num_entries == 4

    def test_every_row_survives_the_cascade_bit_identical(self, tmp_path):
        store = self.make_store(tmp_path)
        self.fill(store, 12)
        nodes = np.arange(12, dtype=np.int64)
        found, got = store.lookup(nodes, None, space="embed:0")
        assert found.all()
        np.testing.assert_array_equal(got, rows_for(nodes))

    def test_cold_lookup_promotes_back_into_hot(self, tmp_path):
        store = self.make_store(tmp_path)
        self.fill(store, 12)
        sp = store.space("embed:0")
        assert not sp.hot.contains(np.array([0]), np.array([0.0]))[0]
        store.lookup(np.array([0]), None, space="embed:0")
        assert sp.hot.contains(np.array([0]), np.array([0.0]))[0]
        st = store.stats()
        assert st.tiers["cold"].hits >= 1
        assert st.tiers["cold"].bytes_out > 0

    def test_cold_tier_is_a_real_mmap_file(self, tmp_path):
        store = self.make_store(tmp_path)
        self.fill(store, 12)
        path = store.space("embed:0").cold.path
        assert path is not None and os.path.exists(path)
        assert os.path.getsize(path) > 0
        assert path.startswith(str(tmp_path))

    def test_without_cold_dir_spilled_rows_drop(self):
        cfg = StoreConfig(hot_capacity=2, hot_policy="fifo", staging_rows=2,
                          cold_dir=None, prefetch_depth=0)
        store = TieredFeatureStore(cfg)
        for node in range(6):
            store.put(np.array([node]), None, rows_for([node]), space="embed:0")
        found, _ = store.lookup(np.arange(6), None, space="embed:0")
        # Hot keeps {4,5}, staging {2,3}; {0,1} are gone (recomputable).
        assert found.sum() == 4
        assert not found[:2].any()
        with pytest.raises(KeyError):
            store.get(np.arange(6), None, space="embed:0")

    def test_bytes_moved_sums_tier_inflow(self, tmp_path):
        store = self.make_store(tmp_path)
        self.fill(store, 12)
        st = store.stats()
        assert st.bytes_moved == sum(t.bytes_in for t in st.tiers.values())
        assert st.bytes_moved > 0

    def test_source_backed_space_never_spills(self, tmp_path):
        store = self.make_store(tmp_path, hot=2, staging=2)
        table = rows_for(np.arange(20))
        store.register_source("nfeat", table)
        for node in range(8):
            store.get(np.array([node]), None, space="nfeat")
        sp = store.space("nfeat")
        # The authority already holds every row: demotions out of staging
        # must not create a spill file.
        assert isinstance(sp.cold, SourceTier)
        assert store.stats().tiers["cold"].demotions == 0


class TestPrefetchAccounting:
    def make_store(self):
        cfg = StoreConfig(hot_capacity=64, staging_rows=64, prefetch_depth=1)
        store = TieredFeatureStore(cfg)
        store.register_source("nfeat", rows_for(np.arange(50)))
        return store

    def test_issued_counts_fresh_keys_only(self):
        store = self.make_store()
        nodes = np.array([1, 2, 3], dtype=np.int64)
        assert store.prefetch(nodes, None, space="nfeat") == 3
        # Already in flight / staged: nothing new to issue.
        assert store.prefetch(nodes, None, space="nfeat") == 0
        assert store.stats().prefetch_issued == 3

    def test_consumed_after_ready_is_a_hit_and_saves_stall(self):
        store = self.make_store()
        nodes = np.array([1, 2, 3], dtype=np.int64)
        store.prefetch(nodes, None, space="nfeat")
        store.clock.advance(10.0)  # transfers long complete
        found, got = store.lookup(nodes, None, space="nfeat")
        assert found.all()
        np.testing.assert_array_equal(got, rows_for(nodes))
        st = store.stats()
        assert st.prefetch_hits == 3
        assert st.prefetch_late == 0
        assert st.stall_saved_seconds > 0.0
        assert 0.0 < st.stall_recovered_fraction <= 1.0

    def test_consumed_before_ready_is_late(self):
        store = self.make_store()
        nodes = np.array([4, 5], dtype=np.int64)
        store.prefetch(nodes, None, space="nfeat")
        found, _ = store.lookup(nodes, None, space="nfeat")  # clock unmoved
        assert found.all()
        st = store.stats()
        assert st.prefetch_late == 2
        assert st.prefetch_hits == 0

    def test_demand_read_stalls_prefetched_read_does_not(self):
        cold = self.make_store()
        cold.get(np.array([7]), None, space="nfeat")
        demand_stall = cold.stats().stall_seconds
        warm = self.make_store()
        warm.prefetch(np.array([7]), None, space="nfeat")
        warm.clock.advance(10.0)
        warm.get(np.array([7]), None, space="nfeat")
        warm_stall = warm.stats().stall_seconds
        assert demand_stall > warm_stall > 0.0

    def test_prefetch_depth_zero_disables(self):
        cfg = StoreConfig(prefetch_depth=0)
        store = TieredFeatureStore(cfg)
        store.register_source("nfeat", rows_for(np.arange(10)))
        assert store.prefetch(np.array([1, 2]), None, space="nfeat") == 0
        assert store.stats().prefetch_issued == 0

    def test_evicting_inflight_rows_counts_unused(self):
        store = self.make_store()
        store.prefetch(np.array([1, 2, 3]), None, space="nfeat")
        store.evict("nfeat")
        assert store.stats().prefetch_unused == 3

    def test_estimate_fetch_seconds_is_side_effect_free(self):
        store = self.make_store()
        store.get(np.array([1]), None, space="nfeat")
        before = store.stats().as_dict()
        nodes = np.array([1, 2, 3], dtype=np.int64)
        est1 = store.estimate_fetch_seconds(nodes, space="nfeat")
        est2 = store.estimate_fetch_seconds(nodes, space="nfeat")
        assert est1 == est2 > 0.0  # two cold keys -> nonzero stall
        assert store.stats().as_dict() == before
        # All-hot working sets cost nothing.
        assert store.estimate_fetch_seconds(np.array([1]), space="nfeat") == 0.0


class TestRefreshAndRebind:
    def test_refresh_overwrites_resident_rows(self):
        table = rows_for(np.arange(10)).copy()
        store = TieredFeatureStore(StoreConfig(prefetch_depth=0))
        store.register_source("mem", table)
        nodes = np.array([2, 3], dtype=np.int64)
        store.get(nodes, None, space="mem")  # now hot
        table[2] = 99.0
        assert store.refresh(nodes, "mem") >= 1
        got = store.get(np.array([2]), None, space="mem")
        np.testing.assert_array_equal(got[0], np.full(4, 99.0, np.float32))

    def test_rebind_source_drops_cached_tiers(self):
        store = TieredFeatureStore(StoreConfig(prefetch_depth=0))
        store.register_source("mem", rows_for(np.arange(10)))
        store.get(np.array([1]), None, space="mem")
        fresh = rows_for(np.arange(10)) + 1.0
        store.rebind_source("mem", fresh)
        got = store.get(np.array([1]), None, space="mem")
        np.testing.assert_array_equal(got, fresh[1:2])

    def test_rebind_non_source_space_rejected(self):
        store = TieredFeatureStore()
        store.put(np.array([0]), None, rows_for([0]), space="embed:0")
        with pytest.raises(ValueError):
            store.rebind_source("embed:0", rows_for(np.arange(4)))


class TestEvictionDeterminism:
    """The reuse-distance policy must replay identically for a fixed seed."""

    def run_workload(self, seed):
        evicted = []
        cache = NodeTimeCache(
            16, policy="reuse",
            on_evict=lambda n, t, r: evicted.append((n.copy(), t.copy(), r.copy())),
        )
        rng = np.random.default_rng(seed)
        for _ in range(40):
            nodes = rng.integers(0, 64, size=8)
            times = np.zeros(8)
            if rng.random() < 0.5:
                cache.store(nodes, times, rows_for(nodes))
            else:
                cache.lookup(nodes, times)
        return cache, evicted

    def test_same_seed_same_eviction_sequence(self):
        c1, ev1 = self.run_workload(seed=7)
        c2, ev2 = self.run_workload(seed=7)
        assert len(ev1) == len(ev2) > 0
        for (n1, t1, r1), (n2, t2, r2) in zip(ev1, ev2):
            np.testing.assert_array_equal(n1, n2)
            np.testing.assert_array_equal(t1, t2)
            np.testing.assert_array_equal(r1, r2)
        assert c1.evictions == c2.evictions
        assert c1.validate() == [] and c2.validate() == []

    def test_reuse_policy_keeps_hot_keys_over_scanned_ones(self):
        cache = NodeTimeCache(8, policy="reuse")
        hot = np.arange(4, dtype=np.int64)
        zeros = np.zeros(4)
        cache.store(hot, zeros, rows_for(hot))
        for _ in range(6):  # short, stable reuse gap
            cache.lookup(hot, zeros)
        for wave in range(10):  # one-touch scan traffic
            scan = np.arange(100 + 4 * wave, 104 + 4 * wave, dtype=np.int64)
            cache.store(scan, np.zeros(4), rows_for(scan))
        assert cache.contains(hot, zeros).all()


class TestColdTierFaults:
    """The ``disk.read`` injection site: corruption detected and repaired."""

    def write_rows(self, tmp_path, n=6):
        ct = ColdTier(4, directory=str(tmp_path), space="t")
        nodes = np.arange(n, dtype=np.int64)
        times = np.zeros(n)
        ct.write(nodes, times, rows_for(nodes))
        return ct, nodes, times

    def test_injected_flip_repaired_and_counted(self, tmp_path):
        ct, nodes, times = self.write_rows(tmp_path)
        inj = FaultInjector(seed=11, disk_flip_read_batches=[(0, 0)])
        with inj:
            inj.advance(0, 0)
            got = ct.read(nodes, times)
        np.testing.assert_array_equal(got, rows_for(nodes))
        assert ct.faults == 1

    def test_clean_read_counts_no_faults(self, tmp_path):
        ct, nodes, times = self.write_rows(tmp_path)
        np.testing.assert_array_equal(ct.read(nodes, times), rows_for(nodes))
        assert ct.faults == 0

    def test_absent_keys_raise(self, tmp_path):
        ct, _, _ = self.write_rows(tmp_path, n=2)
        with pytest.raises(KeyError):
            ct.read(np.array([99]), np.zeros(1))

    def test_store_surfaces_cold_faults_in_stats(self, tmp_path):
        cfg = StoreConfig(hot_capacity=2, hot_policy="fifo", staging_rows=2,
                          cold_dir=str(tmp_path), prefetch_depth=0)
        store = TieredFeatureStore(cfg)
        for node in range(6):
            store.put(np.array([node]), None, rows_for([node]), space="embed:0")
        inj = FaultInjector(seed=11, disk_flip_read_batches=[(0, 0)])
        with inj:
            inj.advance(0, 0)
            found, got = store.lookup(np.array([0]), None, space="embed:0")
        assert found.all()
        np.testing.assert_array_equal(got, rows_for([0]))
        assert store.stats().tiers["cold"].faults == 1


class TestLegacyShims:
    """Deprecated front-ends warn and stay bit-identical through the store."""

    def test_cache_limit_warns_and_pins_flat_fifo(self, tiny_graph):
        with pytest.warns(DeprecationWarning, match="cache_limit"):
            ctx = tg.TContext(tiny_graph, cache_limit=8)
        assert ctx.cache_limit == 8
        cfg = ctx.store.config
        assert (cfg.hot_policy, cfg.staging_rows, cfg.prefetch_depth) == ("fifo", 0, 0)

    def test_cache_limit_and_store_are_exclusive(self, tiny_graph):
        with pytest.raises(ValueError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                tg.TContext(tiny_graph, cache_limit=8, store=StoreConfig())

    def test_op_cache_shim_warns(self, tiny_graph):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            ctx = tg.TContext(tiny_graph, cache_limit=8)
        ctx.train(False)
        blk = tg.TBlock(ctx, 0, np.array([0, 1]), np.ones(2))
        with pytest.warns(DeprecationWarning, match="memoize"):
            tgop.cache(ctx, blk)

    def test_flat_store_matches_reference_cache_bit_for_bit(self):
        """The legacy entry points' store shape == the loop reference."""
        store = flat_store(hot_capacity=8)
        ref = _ReferenceNodeTimeCache(8)
        rng = np.random.default_rng(3)
        for _ in range(30):
            nodes = rng.integers(0, 24, size=6)
            times = rng.integers(0, 4, size=6).astype(np.float64)
            if rng.random() < 0.5:
                vals = rows_for(nodes) + times[:, None].astype(np.float32)
                store.put(nodes, times, vals, space="embed:0")
                ref.store(nodes, times, vals)
            else:
                got_hit, got_rows = store.lookup(nodes, times, space="embed:0")
                want_hit, want_rows = ref.lookup(nodes, times)
                np.testing.assert_array_equal(got_hit, want_hit)
                if want_rows is not None:
                    np.testing.assert_array_equal(
                        got_rows[want_hit], want_rows[want_hit])


class TestServeFetchPenalty:
    """The ladder prices prefetch misses into the sampling rungs only."""

    def test_only_sampling_rungs_pay_the_fetch(self):
        cm = CostModel()
        for level in ("full", "reduced"):
            base = cm.estimate(level, 100)
            assert cm.estimate(level, 100, fetch_seconds=0.5) == base + 0.5
        for level in ("cache", "memory"):
            base = cm.estimate(level, 100)
            assert cm.estimate(level, 100, fetch_seconds=0.5) == base

    def test_fetch_penalty_pushes_decision_down_to_cache_rung(self):
        ladder = DegradationLadder()
        without = ladder.decide(0.02, 100)
        assert without.level == "full"
        with_fetch = ladder.decide(0.02, 100, fetch_seconds=0.05)
        assert with_fetch.level == "cache"


class TestBatchPipeline:
    def make_graph(self, num_nodes=30, num_edges=120, dim=8, seed=5):
        rng = np.random.default_rng(seed)
        src = rng.integers(0, num_nodes, size=num_edges)
        dst = rng.integers(0, num_nodes, size=num_edges)
        ts = np.sort(rng.uniform(0, 100, size=num_edges))
        g = tg.TGraph(src, dst, ts, num_nodes=num_nodes)
        g.set_nfeat(rng.standard_normal((num_nodes, dim)).astype(np.float32))
        return g

    def make_pipeline(self, g, **overrides):
        kwargs = dict(prefetch_depth=1, compute_seconds_per_row=1e-3)
        kwargs.update(overrides)
        cfg = StoreConfig(**kwargs)
        store = TieredFeatureStore(cfg)
        spaces = attach_graph_sources(store, g)
        assert spaces == ("nfeat",)
        return store, BatchPipeline(store, g)

    def test_yields_the_same_batches(self):
        g = self.make_graph()
        store, pipeline = self.make_pipeline(g)
        plain = list(iter_batches(g, 32))
        piped = list(pipeline.batches(iter_batches(g, 32)))
        assert len(piped) == len(plain)
        for a, b in zip(piped, plain):
            np.testing.assert_array_equal(a.src, b.src)
            np.testing.assert_array_equal(a.dst, b.dst)
            np.testing.assert_array_equal(a.ts, b.ts)

    def test_lookahead_recovers_stall(self):
        g = self.make_graph()
        store, pipeline = self.make_pipeline(g)
        for _ in pipeline.batches(iter_batches(g, 32)):
            pass
        st = store.stats()
        assert st.prefetch_issued > 0
        assert st.prefetch_hits > 0
        # Batch N's modeled compute hides batch N+1's transfers.
        assert st.stall_saved_seconds > 0.0
        assert st.stall_recovered_fraction > 0.0

    def test_depth_zero_still_consumes_but_never_prefetches(self):
        g = self.make_graph()
        store, pipeline = self.make_pipeline(g, prefetch_depth=0)
        n = len(list(pipeline.batches(iter_batches(g, 32))))
        assert n == len(list(iter_batches(g, 32)))
        st = store.stats()
        assert st.prefetch_issued == 0
        assert st.stall_saved_seconds == 0.0
        assert st.stall_seconds > 0.0  # demand gathers still modeled

    def test_attach_graph_sources_registers_memory(self):
        g = self.make_graph()
        g.set_memory(6)
        store = TieredFeatureStore()
        assert attach_graph_sources(store, g) == ("nfeat", "mem")


class TestStatsSurface:
    def test_stats_snapshot_is_detached(self):
        store = TieredFeatureStore(StoreConfig(prefetch_depth=0))
        store.register_source("nfeat", rows_for(np.arange(8)))
        store.get(np.arange(4), None, space="nfeat")
        snap = store.stats()
        store.get(np.arange(4, 8), None, space="nfeat")
        assert store.stats().tiers["hot"].misses > snap.tiers["hot"].misses

    def test_reset_stats_zeroes_counters_keeps_rows(self):
        store = TieredFeatureStore(StoreConfig(prefetch_depth=0))
        store.register_source("nfeat", rows_for(np.arange(8)))
        store.get(np.arange(4), None, space="nfeat")
        store.reset_stats()
        st = store.stats()
        assert st.bytes_moved == 0 and st.stall_seconds == 0.0
        found, _ = store.lookup(np.arange(4), None, space="nfeat")
        assert found.all()  # rows survived the counter reset

    def test_context_stats_carry_the_store_block(self, tiny_graph):
        ctx = tg.TContext(tiny_graph)
        assert isinstance(ctx.stats().store, StoreStats)
        flat = ctx.stats().store.as_dict()
        for key in ("hot:bytes_in", "staging:bytes_in", "cold:bytes_in",
                    "prefetch_issued", "stall_seconds", "stall_saved_seconds"):
            assert key in flat


class TestPrefetchDepthGuard:
    """`prefetch_depth > 1` must fail loudly, not silently behave as 1."""

    def test_depth_above_one_rejected_at_construction(self):
        with pytest.raises(ValueError, match="prefetch_depth=2"):
            StoreConfig(prefetch_depth=2)

    def test_with_overrides_revalidates(self):
        cfg = StoreConfig(prefetch_depth=1)
        with pytest.raises(ValueError, match="prefetch_depth=3"):
            cfg.with_overrides(prefetch_depth=3)

    def test_supported_depths_accepted(self):
        assert StoreConfig(prefetch_depth=0).prefetch_depth == 0
        assert StoreConfig(prefetch_depth=1).prefetch_depth == 1
