"""Tests for TGL's config-file interface."""

import json

import numpy as np
import pytest

from repro.data import get_dataset
from repro.tgl import TGLAPAN, TGLJODIE, TGLTGAT, TGLTGN
from repro.tgl.config import build_from_config, default_config, load_config


@pytest.fixture(scope="module")
def graph():
    return get_dataset("wiki").build_graph()


class TestBundledConfigs:
    @pytest.mark.parametrize("name,cls", [
        ("tgat", TGLTGAT), ("tgn", TGLTGN), ("jodie", TGLJODIE), ("apan", TGLAPAN),
    ])
    def test_builds_each_model(self, name, cls, graph):
        model, train = build_from_config(default_config(name), graph, 172, 172)
        assert isinstance(model, cls)
        assert train["batch_size"] > 0

    def test_unknown_bundle(self):
        with pytest.raises(FileNotFoundError):
            default_config("dysat")

    def test_jodie_config_is_special_cased(self):
        """The paper's point: JODIE needs settings no other model exposes."""
        cfg = default_config("jodie")
        assert cfg["gnn"][0]["arch"] == "identity"
        assert cfg["sampling"][0].get("no_sample") is True
        for other in ("tgat", "tgn", "apan"):
            assert default_config(other)["gnn"][0]["arch"] != "identity"

    def test_apan_delivers_to_neighbors(self):
        assert default_config("apan")["memory"][0]["deliver_to"] == "neighbors"
        assert default_config("apan")["memory"][0]["mailbox_size"] == 10


class TestBuilderValidation:
    def test_identity_arch_requires_rnn(self, graph):
        cfg = default_config("jodie")
        cfg["memory"][0]["type"] = "gru"
        with pytest.raises(ValueError):
            build_from_config(cfg, graph, 172, 172)

    def test_unknown_arch(self, graph):
        cfg = default_config("tgat")
        cfg["gnn"][0]["arch"] = "gcn"
        with pytest.raises(ValueError):
            build_from_config(cfg, graph, 172, 172)

    def test_unknown_memory(self, graph):
        cfg = default_config("tgn")
        cfg["memory"][0]["type"] = "lstm"
        with pytest.raises(ValueError):
            build_from_config(cfg, graph, 172, 172)

    def test_config_dims_respected(self, graph):
        cfg = default_config("tgat")
        cfg["gnn"][0]["dim_out"] = 16
        cfg["gnn"][0]["layer"] = 1
        model, _ = build_from_config(cfg, graph, 172, 172)
        assert len(model.layers) == 1
        assert model.layers[0].dim_out == 16

    def test_load_config_roundtrip(self, tmp_path):
        cfg = default_config("tgat")
        path = tmp_path / "custom.json"
        path.write_text(json.dumps(cfg))
        assert load_config(str(path)) == cfg


class TestConfigModelRuns:
    def test_config_built_model_trains(self, graph):
        from repro import nn
        from repro.bench import train_epoch
        from repro.data import NegativeSampler, get_dataset

        cfg = default_config("tgn")
        cfg["gnn"][0].update({"dim_time": 8, "dim_out": 8, "layer": 1})
        cfg["memory"][0]["dim_memory"] = 8
        cfg["sampling"][0]["neighbor"] = [3]
        model, train_cfg = build_from_config(cfg, graph, 172, 172)
        opt = nn.Adam(model.parameters(), lr=train_cfg["lr"])
        neg = NegativeSampler.for_dataset(get_dataset("wiki"))
        _, loss = train_epoch(model, graph, opt, neg, train_cfg["batch_size"], stop=600)
        assert np.isfinite(loss)
