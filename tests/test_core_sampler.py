"""Tests for temporal neighborhood sampling (TSampler)."""

import numpy as np
import pytest

import repro.core as tg


def build_star_graph(num_edges=20):
    """Node 0 interacts with nodes 1..n at times 1..n."""
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.arange(1, num_edges + 1, dtype=np.int64)
    ts = np.arange(1.0, num_edges + 1.0)
    return tg.TGraph(src, dst, ts)


class TestRecentSampling:
    def test_takes_most_recent_k(self):
        g = build_star_graph(20)
        ctx = tg.TContext(g)
        blk = tg.TBlock(ctx, 0, np.array([0]), np.array([100.0]))
        tg.TSampler(5, "recent").sample(blk)
        # Most recent 5 edges of node 0 before t=100 are times 16..20.
        np.testing.assert_allclose(np.sort(blk.etimes), [16, 17, 18, 19, 20])

    def test_strict_time_cutoff(self):
        g = build_star_graph(10)
        ctx = tg.TContext(g)
        blk = tg.TBlock(ctx, 0, np.array([0]), np.array([5.0]))
        tg.TSampler(10, "recent").sample(blk)
        assert np.all(blk.etimes < 5.0)
        np.testing.assert_allclose(np.sort(blk.etimes), [1, 2, 3, 4])

    def test_node_with_no_history_gets_no_rows(self):
        g = build_star_graph(5)
        ctx = tg.TContext(g)
        blk = tg.TBlock(ctx, 0, np.array([3]), np.array([0.5]))
        tg.TSampler(4, "recent").sample(blk)
        assert blk.num_src == 0
        assert blk.has_nbrs  # sampled, but empty

    def test_dstindex_aligns_rows(self):
        g = build_star_graph(10)
        ctx = tg.TContext(g)
        blk = tg.TBlock(ctx, 0, np.array([0, 1, 0]), np.array([4.0, 100.0, 8.0]))
        tg.TSampler(3, "recent").sample(blk)
        for row in range(blk.num_src):
            d = blk.dstindex[row]
            assert blk.etimes[row] < blk.dsttimes[d]

    def test_eids_consistent_with_graph(self):
        g = build_star_graph(10)
        ctx = tg.TContext(g)
        blk = tg.TBlock(ctx, 0, np.array([0]), np.array([11.0]))
        tg.TSampler(3, "recent").sample(blk)
        for row in range(blk.num_src):
            e = blk.eids[row]
            assert g.ts[e] == blk.etimes[row]
            assert blk.srcnodes[row] in (g.src[e], g.dst[e])

    def test_deterministic(self):
        g = build_star_graph(10)
        ctx = tg.TContext(g)
        results = []
        for _ in range(2):
            blk = tg.TBlock(ctx, 0, np.array([0, 2]), np.array([9.0, 9.0]))
            tg.TSampler(3, "recent").sample(blk)
            results.append((blk.srcnodes.copy(), blk.eids.copy()))
        np.testing.assert_array_equal(results[0][0], results[1][0])
        np.testing.assert_array_equal(results[0][1], results[1][1])


class TestUniformSampling:
    def test_respects_time_and_count(self):
        g = build_star_graph(20)
        ctx = tg.TContext(g)
        blk = tg.TBlock(ctx, 0, np.array([0]), np.array([15.0]))
        tg.TSampler(5, "uniform", seed=3).sample(blk)
        assert blk.num_src == 5
        assert np.all(blk.etimes < 15.0)

    def test_no_duplicate_rows_per_dst(self):
        g = build_star_graph(20)
        ctx = tg.TContext(g)
        blk = tg.TBlock(ctx, 0, np.array([0]), np.array([21.0]))
        tg.TSampler(8, "uniform", seed=1).sample(blk)
        assert len(np.unique(blk.eids)) == 8

    def test_takes_all_when_history_small(self):
        g = build_star_graph(3)
        ctx = tg.TContext(g)
        blk = tg.TBlock(ctx, 0, np.array([0]), np.array([10.0]))
        tg.TSampler(10, "uniform", seed=0).sample(blk)
        assert blk.num_src == 3

    def test_seeded_reproducibility(self):
        g = build_star_graph(20)
        ctx = tg.TContext(g)
        picks = []
        for _ in range(2):
            blk = tg.TBlock(ctx, 0, np.array([0]), np.array([21.0]))
            tg.TSampler(5, "uniform", seed=7).sample(blk)
            picks.append(blk.eids.copy())
        np.testing.assert_array_equal(picks[0], picks[1])


class TestValidation:
    def test_bad_strategy(self):
        with pytest.raises(ValueError):
            tg.TSampler(5, "newest")

    def test_bad_num_nbrs(self):
        with pytest.raises(ValueError):
            tg.TSampler(0)

    def test_repr(self):
        assert "recent" in repr(tg.TSampler(5, "recent"))
