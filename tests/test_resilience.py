"""Fault-tolerant runtime tests: injection determinism, recovery
equivalence, checkpoint atomicity/integrity, and degradation."""

import os

import numpy as np
import pytest

import repro.core as tg
from repro.bench import ResilientTrainer, load_checkpoint, save_checkpoint
from repro.bench.experiments import Experiment, ExperimentConfig
from repro.core.kernels import NodeTimeCache
from repro.resilience import (
    CheckpointWriteAborted,
    FaultInjector,
    SimulatedProcessKill,
    StateValidationError,
    TransientKernelError,
    assert_valid_state,
    validate_state,
)
from repro.resilience import hooks


def _experiment(seed=7):
    cfg = ExperimentConfig(
        model="tgn", dataset="wiki", framework="tglite+opt", epochs=2,
        batch_size=300, dim_embed=8, dim_time=8, dim_mem=8,
        num_layers=1, seed=seed,
    )
    return Experiment(cfg)


def _fingerprint(exp):
    return (
        [p.data.copy() for p in exp.model.parameters()],
        exp.g.mem.data.data.copy(),
        exp.g.mem.time.copy(),
        exp.g.mailbox.mail.data.copy(),
        exp.g.mailbox.time.copy(),
    )


def _assert_fingerprints_equal(a, b):
    for pa, pb in zip(a[0], b[0]):
        np.testing.assert_array_equal(pa, pb)
    for xa, xb in zip(a[1:], b[1:]):
        np.testing.assert_array_equal(xa, xb)


def _run(tmp_path, injector=None, num_replicas=1, epochs=2, train_end=900,
         checkpoint_every=2, resume=False, seed=7, subdir="ck"):
    exp = _experiment(seed=seed)
    trainer = ResilientTrainer(
        exp.model, exp.g, exp.optimizer, exp.neg_sampler,
        batch_size=300, checkpoint_dir=str(tmp_path / subdir),
        checkpoint_every=checkpoint_every, injector=injector,
        num_replicas=num_replicas,
    )
    try:
        result = trainer.train(epochs=epochs, train_end=train_end, resume=resume)
    finally:
        exp.close()
    return result, _fingerprint(exp)


class TestInjectorDeterminism:
    def test_same_seed_same_pattern(self):
        a = FaultInjector(seed=3, kernel_fault_rate=0.2)
        b = FaultInjector(seed=3, kernel_fault_rate=0.2)
        pattern_a = [a.would_fire("kernel.sample", e, i) for e in range(3) for i in range(50)]
        pattern_b = [b.would_fire("kernel.sample", e, i) for e in range(3) for i in range(50)]
        assert pattern_a == pattern_b
        assert any(pattern_a) and not all(pattern_a)

    def test_different_seed_different_pattern(self):
        a = FaultInjector(seed=3, kernel_fault_rate=0.2)
        b = FaultInjector(seed=4, kernel_fault_rate=0.2)
        pattern_a = [a.would_fire("kernel.sample", 0, i) for i in range(200)]
        pattern_b = [b.would_fire("kernel.sample", 0, i) for i in range(200)]
        assert pattern_a != pattern_b

    def test_decisions_consume_no_rng(self):
        """Fault decisions must not perturb any numpy RNG stream."""
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state
        inj = FaultInjector(seed=1, kernel_fault_rate=0.5)
        for i in range(100):
            inj.would_fire("kernel.sample", 0, i)
        assert rng.bit_generator.state == before

    def test_transient_faults_fire_once_per_position(self):
        inj = FaultInjector(seed=0, kernel_fault_batches=[(0, 0)])
        with inj:
            inj.advance(0, 0)
            with pytest.raises(TransientKernelError):
                hooks.poke("kernel.sample")
            # Retry at the same position succeeds.
            hooks.poke("kernel.sample")
        assert len(inj.log) == 1

    def test_install_is_exclusive(self):
        a = FaultInjector(seed=0)
        b = FaultInjector(seed=1)
        with a:
            with pytest.raises(RuntimeError):
                hooks.install(b)
        assert hooks.active() is None


class TestRecoveryEquivalence:
    def test_faulted_run_matches_fault_free(self, tmp_path):
        """Transient kernel fault + NaN gradients + worker crash: the run
        completes via retry/rollback/redistribution and ends bit-identical
        to the fault-free seeded run."""
        base, fp0 = _run(tmp_path, num_replicas=2, subdir="clean")
        injector = FaultInjector(
            seed=11,
            kernel_fault_batches=[(0, 1), (1, 2)],
            nan_grad_batches=[(0, 2)],
            worker_crashes=[(1, 1, 0)],
        )
        faulted, fp1 = _run(tmp_path, injector=injector, num_replicas=2,
                            subdir="faulted")
        assert faulted.retries >= 1
        assert faulted.rollbacks >= 1
        assert faulted.redistributions == 1
        _assert_fingerprints_equal(fp0, fp1)
        assert [e.train_loss for e in base.epochs] == [
            e.train_loss for e in faulted.epochs
        ]

    def test_resume_after_process_kill_is_bit_exact(self, tmp_path):
        uninterrupted, fp0 = _run(tmp_path, subdir="full")
        injector = FaultInjector(seed=5, process_kill_at=(1, 1))
        exp = _experiment()
        trainer = ResilientTrainer(
            exp.model, exp.g, exp.optimizer, exp.neg_sampler, batch_size=300,
            checkpoint_dir=str(tmp_path / "killed"), checkpoint_every=2,
            injector=injector,
        )
        with pytest.raises(SimulatedProcessKill):
            trainer.train(epochs=2, train_end=900)
        exp.close()
        assert hooks.active() is None  # injector uninstalled despite the kill
        resumed, fp1 = _run(tmp_path, resume=True, subdir="killed")
        assert resumed.events[0].kind == "resume"
        _assert_fingerprints_equal(fp0, fp1)

    def test_persistent_fault_degrades_instead_of_dying(self, tmp_path):
        """A *persistent* kernel fault trips degradation before the retry
        budget runs out, and training completes on the reference path."""
        injector = FaultInjector(seed=0, kernel_fault_batches=[(0, 0)],
                                 transient=False)
        result, _ = _run(tmp_path, injector=injector, epochs=1, train_end=600)
        assert any(e.kind == "degraded" for e in result.events)
        assert len(result.epochs) == 1

    def test_retry_exhaustion_reraises(self, tmp_path):
        """With degradation disabled (threshold above the retry budget), a
        persistent fault exhausts its retries and surfaces."""
        injector = FaultInjector(seed=0, kernel_fault_batches=[(0, 0)],
                                 transient=False)
        exp = _experiment()
        exp.g.ctx.degrade_threshold = 100
        trainer = ResilientTrainer(
            exp.model, exp.g, exp.optimizer, exp.neg_sampler, batch_size=300,
            checkpoint_dir=str(tmp_path / "exhaust"), checkpoint_every=2,
            injector=injector,
        )
        with pytest.raises(TransientKernelError):
            trainer.train(epochs=1, train_end=600)
        assert hooks.active() is None
        exp.close()


class TestShardRedistribution:
    def test_crash_changes_clock_not_numerics(self, tmp_path):
        base, fp0 = _run(tmp_path, num_replicas=2, epochs=1, subdir="a")
        injector = FaultInjector(seed=5, worker_crashes=[(0, 1, 0)])
        crashed, fp1 = _run(tmp_path, injector=injector, num_replicas=2,
                            epochs=1, subdir="b")
        _assert_fingerprints_equal(fp0, fp1)
        assert crashed.redistributions == 1
        event = [e for e in crashed.events if e.kind == "redistribution"][0]
        assert (event.epoch, event.batch) == (0, 1)
        assert "replica 0" in event.detail

    def test_redistribution_seconds_charged(self):
        from repro.distributed.data_parallel import ShardResult, StepResult

        step = StepResult(shards=[
            ShardResult(0, 10, 2.0, 0.5, redistributed=True),
            ShardResult(1, 10, 1.0, 0.5),
            ShardResult(2, 10, 1.5, 0.5),
        ])
        assert step.crashed_replicas == [0]
        assert step.redistribution_seconds == pytest.approx(1.0)  # 2.0 / 2
        assert step.simulated_parallel_seconds == pytest.approx(1.5 + 1.0)


class TestCheckpointIntegrity:
    def test_kill_mid_write_preserves_previous_checkpoint(self, tmp_path):
        exp = _experiment()
        path = str(tmp_path / "ck.npz")
        save_checkpoint(path, exp.model, graph=exp.g, optimizer=exp.optimizer,
                        stream=(0, 0))
        injector = FaultInjector(seed=0, checkpoint_kill_batches=[(0, 5)])
        with injector:
            injector.advance(0, 5)
            with pytest.raises(CheckpointWriteAborted):
                save_checkpoint(path, exp.model, graph=exp.g,
                                optimizer=exp.optimizer, stream=(0, 5))
        assert not os.path.exists(path + ".tmp")
        meta = load_checkpoint(path, exp.model, graph=exp.g,
                               optimizer=exp.optimizer)
        assert meta["stream"] == (0, 0)
        exp.close()

    def test_truncated_file_raises_value_error_naming_file(self, tmp_path):
        exp = _experiment()
        path = str(tmp_path / "ck.npz")
        save_checkpoint(path, exp.model)
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) // 3)
        with pytest.raises(ValueError, match="ck.npz"):
            load_checkpoint(path, exp.model)
        exp.close()

    def test_bit_corruption_raises_value_error(self, tmp_path):
        exp = _experiment()
        path = str(tmp_path / "ck.npz")
        save_checkpoint(path, exp.model)
        data = bytearray(open(path, "rb").read())
        data[len(data) // 2] ^= 0xFF
        open(path, "wb").write(bytes(data))
        with pytest.raises(ValueError, match="ck.npz"):
            load_checkpoint(path, exp.model)
        exp.close()

    def test_memory_state_without_target_memory_raises(self, tmp_path):
        exp = _experiment()  # TGN: graph has memory + mailbox
        path = str(tmp_path / "ck.npz")
        save_checkpoint(path, exp.model, graph=exp.g)
        bare = tg.TGraph(exp.g.src, exp.g.dst, exp.g.ts,
                         num_nodes=exp.g.num_nodes)
        with pytest.raises(ValueError, match="no Memory attached"):
            load_checkpoint(path, exp.model, graph=bare)
        exp.close()

    def test_rng_roundtrip_is_bit_exact(self, tmp_path):
        from repro.nn import Adam, Linear, Module
        from repro.tensor import random as trandom

        class M(Module):
            def __init__(self):
                super().__init__()
                self.lin = Linear(4, 4)

        model = M()
        optimizer = Adam(model.parameters(), lr=1e-3)
        trandom.manual_seed(123)
        gen = trandom.default_generator()
        gen.standard_normal(7)
        path = str(tmp_path / "ck.npz")
        save_checkpoint(path, model, optimizer=optimizer,
                        generators={"global": gen}, stream=(1, 4))
        expected = gen.standard_normal(5)
        gen.standard_normal(1000)  # wander off
        meta = load_checkpoint(path, model, optimizer=optimizer,
                               generators={"global": gen})
        assert meta["stream"] == (1, 4)
        np.testing.assert_array_equal(gen.standard_normal(5), expected)


class TestStateValidation:
    def test_healthy_graph_validates_clean(self):
        exp = _experiment()
        assert validate_state(exp.g) == []
        assert_valid_state(exp.g)
        exp.close()

    def test_nan_memory_detected(self):
        exp = _experiment()
        exp.g.mem.data.data[3, 0] = np.nan
        violations = validate_state(exp.g)
        assert any("memory" in v for v in violations)
        with pytest.raises(StateValidationError):
            assert_valid_state(exp.g)
        exp.close()

    def test_mailbox_cursor_out_of_range_detected(self):
        g = tg.TGraph([0, 1], [1, 0], [1.0, 2.0])
        g.set_mailbox(4, slots=3)
        g.mailbox._next_slot[0] = 7
        assert any("mailbox" in v for v in validate_state(g))

    def test_injected_cache_corruption_detected(self):
        cache = NodeTimeCache(capacity=8, dim=4)
        cache.store(np.array([1, 2]), np.array([1.0, 2.0]),
                    np.ones((2, 4), dtype=np.float32))
        assert cache.validate() == []
        injector = FaultInjector(seed=0, cache_corrupt_batches=[(0, 0)])
        with injector:
            injector.advance(0, 0)
            hooks.poke("cache.corrupt", cache=cache)
        assert any("finite" in v or "non-finite" in v for v in cache.validate())

    def test_validation_failure_rolls_back(self, tmp_path):
        """Silently corrupted node memory is caught by validation at the
        next checkpoint boundary (before any batch consumes it), rolled
        back, and the run still ends bit-identical to the clean one."""
        base, fp0 = _run(tmp_path, epochs=1, subdir="clean")
        exp = _experiment()
        trainer = ResilientTrainer(
            exp.model, exp.g, exp.optimizer, exp.neg_sampler, batch_size=300,
            checkpoint_dir=str(tmp_path / "v"), checkpoint_every=2,
        )
        done = {"armed": False}

        class Corruptor:
            def advance(self, e, b):
                pass

            def poke(self, site, **info):
                # Flip memory to NaN exactly at the (0, 2) checkpoint
                # boundary, as a silent DMA corruption would.
                if (site == "trainer.batch" and not done["armed"]
                        and (info["epoch"], info["batch"]) == (0, 2)):
                    done["armed"] = True
                    exp.g.mem.data.data[5, 0] = np.nan

        corruptor = Corruptor()
        hooks.install(corruptor)
        try:
            result = trainer.train(epochs=1, train_end=900)
        finally:
            hooks.uninstall(corruptor)
        kinds = [e.kind for e in result.events]
        assert "validation" in kinds and "rollback" in kinds
        assert validate_state(exp.g) == []
        _assert_fingerprints_equal(fp0, _fingerprint(exp))
        exp.close()


class TestDegradation:
    def test_repeated_kernel_faults_degrade_to_reference_path(self, tmp_path):
        injector = FaultInjector(
            seed=2, kernel_fault_batches=[(0, 0), (0, 1), (0, 2)]
        )
        exp = _experiment()
        trainer = ResilientTrainer(
            exp.model, exp.g, exp.optimizer, exp.neg_sampler, batch_size=300,
            checkpoint_dir=str(tmp_path / "d"), checkpoint_every=2,
            injector=injector,
        )
        result = trainer.train(epochs=1, train_end=900)
        stats = exp.g.ctx.stats()
        assert stats.degraded.get("kernel.sample")
        assert stats.kernel_faults.get("kernel.sample") == 3
        assert "degraded:kernel.sample" in stats.as_dict()
        assert any(e.kind == "degraded" for e in result.events)
        assert result.retries == 3
        assert len(result.epochs) == 1  # training completed
        exp.close()

    def test_degraded_sampling_is_bit_identical(self, tmp_path):
        base, fp0 = _run(tmp_path, epochs=1, subdir="x")
        injector = FaultInjector(
            seed=2, kernel_fault_batches=[(0, 0), (0, 1), (0, 2)]
        )
        degraded, fp1 = _run(tmp_path, injector=injector, epochs=1, subdir="y")
        _assert_fingerprints_equal(fp0, fp1)
        assert [e.train_loss for e in base.epochs] == [
            e.train_loss for e in degraded.epochs
        ]


KINDS = ("kernel-fault", "nan-grad", "worker-crash")
_KIND_FILTER = os.environ.get("RESILIENCE_FAULT_KIND")


@pytest.mark.parametrize(
    "kind", [k for k in KINDS if _KIND_FILTER in (None, k)]
)
def test_fault_matrix_completes_and_matches(kind, tmp_path):
    """CI fault matrix: each fault class alone, seeded, must recover to
    the fault-free trajectory."""
    base, fp0 = _run(tmp_path, num_replicas=2, epochs=1, subdir="base")
    injector = FaultInjector(
        seed=13,
        kernel_fault_batches=[(0, 1)] if kind == "kernel-fault" else (),
        nan_grad_batches=[(0, 1)] if kind == "nan-grad" else (),
        worker_crashes=[(0, 1, 1)] if kind == "worker-crash" else (),
    )
    faulted, fp1 = _run(tmp_path, injector=injector, num_replicas=2,
                        epochs=1, subdir=kind)
    assert len(injector.log) >= 1
    _assert_fingerprints_equal(fp0, fp1)
