"""The online serving runtime: requests in, predictions + state commits out.

:class:`ServeRuntime` glues the serving subsystems into one loop driven
by the simulated clock:

* :meth:`submit` runs each arriving request through admission control —
  a shed request is answered immediately with a ``shed`` status and its
  events are dropped (load shedding sheds *work*, not just responses);
* :meth:`step` serves one queued request: the degradation ladder picks
  the best rung affordable within the request's remaining deadline
  budget, the link-prediction scores are computed at that rung, and the
  request's events are pushed through the ingestion pipeline and
  committed to memory/mailbox under snapshot-rollback.

Scoring happens *before* the request's own events are applied (the
standard temporal link-prediction protocol: predict the interaction from
state strictly before it), and ingestion/commit is deliberately decoupled
from scoring quality — a request degraded all the way to ``memory`` still
commits its events at full fidelity, so state never degrades even when
responses do.

Everything observable lands in the shared :class:`TContext`:
``serve:*`` counters (admitted/shed/quarantined/degraded), per-request
latencies (p50/p99 via ``ctx.stats().latency``), and kernel degradation
interplay via ``ctx.record_kernel_fault``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..resilience.errors import TransientKernelError
from .admission import AdmissionController
from .clock import SimClock
from .commit import StateCommitter, recover_serve_state
from .deadline import DegradationLadder
from .events import EventBatch, RejectReason, validate_events
from .ingest import IngestPipeline

__all__ = ["Request", "RequestResult", "ServeRuntime"]


@dataclass
class Request:
    """One serving request: score these events, then apply them."""

    rid: int
    batch: EventBatch
    arrival: float
    deadline: float


@dataclass(frozen=True)
class RequestResult:
    """The runtime's answer to one request."""

    rid: int
    status: str  # 'ok' | 'shed' | 'timeout'
    level: str  # ladder rung served at ('' when shed)
    scores: Optional[np.ndarray]
    latency: float
    detail: str = ""
    #: per-row validity mask (cluster serving): False marks scores whose
    #: endpoint state was unavailable (zero-filled) when computed.  None
    #: means every row is authoritative (single runtime, shed/timeout,
    #: or ``strict_partials=False``).
    valid: Optional[np.ndarray] = None


class ServeRuntime:
    """Hardened online inference over a temporal graph's evolving state.

    Args:
        graph: the :class:`~repro.core.graph.TGraph` (static topology used
            for neighborhood sampling).
        ctx: shared :class:`~repro.core.context.TContext` (stats, caches,
            degradation state).
        memory: node :class:`~repro.core.memory.Memory` committed into.
        sampler: :class:`~repro.core.sampler.TSampler` for the sampling
            rungs of the ladder.
        mailbox: optional :class:`~repro.core.mailbox.Mailbox` also
            receiving each event's message.
        clock: simulated clock (a fresh one by default).
        deadline: default per-request budget in simulated seconds.
        ladder: degradation ladder (default built from the sampler fanout).
        lateness / max_buffer: ingestion reordering bounds (see
            :class:`~repro.serve.ingest.IngestPipeline`).
        max_queue / shed_policy / rate / burst: admission-control knobs
            (see :class:`~repro.serve.admission.AdmissionController`).
        injector: optional :class:`~repro.resilience.FaultInjector` whose
            stream cursor the runtime advances to ``(0, request id)`` per
            step (it must also be installed, e.g. via ``with injector:``).
        durable_dir: optional directory for a
            :class:`~repro.durable.store.DurableStateStore`; when set,
            every committed batch is write-ahead logged before it is
            applied, so a crash at any byte offset recovers to the
            committed prefix.
        durable_fsync: WAL durability policy (``'always'`` / ``'batch'``
            / ``'never'``).
        snapshot_every: commits between full state snapshots (which also
            compact the log); ``None`` disables periodic snapshots.
        recover: replay ``durable_dir`` into memory/mailbox before
            serving (resuming a crashed runtime); recovery details land
            in :meth:`stats` under ``durable:recovered:*``.
        feature_store: route the scoring-table gathers of the sampling
            rungs through the context's tiered
            :class:`~repro.store.tiered.TieredFeatureStore` — the
            ladder then charges each request the store's modeled
            feature-fetch stall (so un-prefetched requests degrade to
            the embedding-cache rung instead of missing deadlines), the
            head of the admission queue is prefetched while the current
            request is served, and commits refresh any cached rows they
            invalidated.  Off by default: the raw gather path is kept
            bit-identical for runtimes that do not opt in.
    """

    def __init__(
        self,
        graph,
        ctx,
        memory,
        sampler,
        mailbox=None,
        clock: Optional[SimClock] = None,
        deadline: float = 1.0e-2,
        ladder: Optional[DegradationLadder] = None,
        lateness: float = 0.0,
        max_buffer: int = 10000,
        max_queue: int = 64,
        shed_policy: str = "reject-new",
        rate: Optional[float] = None,
        burst: Optional[float] = None,
        injector=None,
        durable_dir: Optional[str] = None,
        durable_fsync: str = "batch",
        snapshot_every: Optional[int] = 256,
        recover: bool = False,
        feature_store: bool = False,
    ):
        self.graph = graph
        self.ctx = ctx
        self.memory = memory
        self.mailbox = mailbox
        self.sampler = sampler
        self.clock = clock or SimClock()
        self.deadline = float(deadline)
        self.injector = injector
        self.ladder = ladder or DegradationLadder(full_fanout=sampler.num_nbrs)
        self.ingest = IngestPipeline(
            graph.num_nodes, lateness=lateness, max_buffer=max_buffer
        )
        self.admission = AdmissionController(
            self.clock, max_queue=max_queue, policy=shed_policy,
            rate=rate, burst=burst,
        )
        self.store = None
        self._recovery: Dict[str, object] = {}
        if durable_dir is not None:
            from ..durable.store import DurableStateStore

            self.store = DurableStateStore(durable_dir, fsync=durable_fsync)
            if recover:
                self._recovery = recover_serve_state(self.store, memory, mailbox)
        self.committer = StateCommitter(
            memory,
            mailbox=mailbox,
            quarantine=self.ingest.quarantine_batch,
            store=self.store,
            snapshot_every=snapshot_every if self.store is not None else None,
        )
        if self._recovery:
            self.committer.committed_watermark = float(self._recovery["watermark"])
            self.ingest.watermark = max(
                self.ingest.watermark, self.committer.committed_watermark
            )
        self.feature_store = None
        if feature_store:
            self.feature_store = ctx.store
            # One timeline: prefetch ready-times are measured against the
            # same simulated clock the ladder advances.
            self.feature_store.clock = self.clock
            # The source closure reads through _embed_rows(), so a model
            # hot-swap automatically rebinds the authority; swap_model
            # still evicts the cached tiers (their rows are stale).
            self.feature_store.register_source(
                "serve:model",
                lambda nodes: self._embed_rows()[nodes],
                dim=int(memory.data.data.shape[1]),
            )
        self.results: List[RequestResult] = []
        self._next_rid = 0
        self._closed = False
        #: hot-swappable scoring table (None = score from raw memory rows).
        self._model_table: Optional[np.ndarray] = None
        self.model_version = 0
        self.model_watermark = float("-inf")

    # ---- model hot swap ----------------------------------------------------------

    def swap_model(
        self,
        table: np.ndarray,
        version: Optional[int] = None,
        watermark: Optional[float] = None,
    ) -> int:
        """Atomically install a new scoring table; returns its version.

        The table is a ``(num_nodes, d)`` float32 embedding matrix used
        by every ladder rung *in place of* raw memory rows when scoring.
        Swapping touches only the read path: ingestion, commit, memory,
        mailbox, and the durable log are untouched, so serve state stays
        bit-identical to a swap-free replay (tested).  The layer-0
        embedding cache is cleared because its entries were computed
        under the previous model.

        Args:
            table: the new embedding table (copied defensively).
            version: caller's version stamp (defaults to an increment).
            watermark: newest event time the model was trained on; the
                gap to ``committed_watermark`` is the model's staleness,
                reported by :meth:`stats`.
        """
        table = np.asarray(table, dtype=np.float32)
        if table.ndim != 2 or table.shape[0] != self.graph.num_nodes:
            raise ValueError(
                f"model table must be (num_nodes={self.graph.num_nodes}, d), "
                f"got {table.shape}"
            )
        self._model_table = table.copy()
        self.model_version = (
            self.model_version + 1 if version is None else int(version)
        )
        if watermark is not None:
            self.model_watermark = float(watermark)
        cache = self.ctx.embed_cache(0)
        if cache.enabled:
            cache.clear()
        if self.feature_store is not None:
            # Store keys carry the model version as their time coordinate
            # (see _store_times), so rows staged by an in-flight prefetch
            # under the old version are unreachable the moment the
            # version bumps — even if they land *after* this eviction.
            # The evict then just reclaims their slots.
            self.feature_store.evict("serve:model")
        self.ctx.count("serve:model_swaps", 1)
        return self.model_version

    # ---- submission --------------------------------------------------------------

    def submit(
        self,
        batch: EventBatch,
        deadline: Optional[float] = None,
        arrival: Optional[float] = None,
    ) -> bool:
        """Offer one request; returns False when it was shed on arrival.

        ``arrival`` backdates the request (a replay harness delivering a
        request the server was too busy to pick up on time); the deadline
        budget runs from the arrival, so queueing delay consumes it.
        """
        now = self.clock.now() if arrival is None else float(arrival)
        req = Request(
            rid=self._next_rid,
            batch=batch,
            arrival=now,
            deadline=now + (self.deadline if deadline is None else float(deadline)),
        )
        self._next_rid += 1
        admitted = self.admission.offer(req)
        for shed in self.admission.drain_shed():
            self.ctx.count("serve:shed", 1)
            self.results.append(
                RequestResult(
                    shed.rid, "shed", "", None,
                    self.clock.now() - shed.arrival, "admission control",
                )
            )
        if admitted:
            self.ctx.count("serve:admitted", 1)
        return admitted

    # ---- serving -----------------------------------------------------------------

    def step(self) -> Optional[RequestResult]:
        """Serve the next queued request (None when the queue is idle)."""
        req = self.admission.poll()
        if req is None:
            return None
        if self.injector is not None:
            self.injector.advance(0, req.rid)

        remaining = req.deadline - self.clock.now()
        fetch_seconds = self._estimate_fetch(req.batch)
        decision = self.ladder.decide(
            remaining, len(req.batch), self.ctx, fetch_seconds=fetch_seconds
        )
        self.clock.advance(decision.estimated_cost)
        # Overlap the next request's feature fetch with this one's
        # service: by the time it is polled the rows are (often) staged.
        self._prefetch_next()

        if decision.level == "timeout":
            scores, status, detail = None, "timeout", RejectReason.DEADLINE
        else:
            try:
                scores = self._score(req.batch, decision)
                status, detail = "ok", decision.reason
            except TransientKernelError as err:
                # A faulting kernel mid-score falls back to the always-
                # available memory rung; repeated faults trip the context
                # circuit breaker so later ladder decisions route around
                # the bad kernel entirely.
                self.ctx.record_kernel_fault(err.site)
                decision = decision.__class__(
                    "memory", 0, decision.estimated_cost,
                    f"kernel fault at {err.site}",
                )
                scores = self._score(req.batch, decision)
                status, detail = "ok", decision.reason
            if decision.level != "full":
                self.ctx.count(f"serve:degraded:{decision.level}", 1)

        # State commits are decoupled from scoring quality: even a
        # timed-out response applies its events, so the stream's state
        # stays complete and a later replay cannot diverge.
        self._ingest_and_commit(req.batch)

        latency = self.clock.now() - req.arrival
        self.ctx.record_latency(latency)
        result = RequestResult(
            req.rid, status, decision.level, scores, latency, detail
        )
        self.results.append(result)
        return result

    def drain(self) -> List[RequestResult]:
        """Serve every queued request, then flush the reordering buffer."""
        while self.step() is not None:
            pass
        tail = self.ingest.flush()
        if len(tail):
            self._commit(tail)
        return self.results

    # ---- internals ---------------------------------------------------------------

    def _ingest_and_commit(self, batch: EventBatch) -> None:
        for attempt in range(3):
            try:
                released = self.ingest.push(batch)
                break
            except TransientKernelError as err:
                # push mutates nothing before its fault site — safe retry.
                self.ctx.record_kernel_fault(err.site)
                if attempt == 2:
                    raise
        self._commit(released)

    def _commit(self, released: EventBatch) -> None:
        if not len(released):
            return
        before = self.ingest.stats.quarantined_total
        self.committer.commit(released)
        poisoned = self.ingest.stats.quarantined_total - before
        if poisoned:
            self.ctx.count("serve:quarantined", poisoned)
        if self.feature_store is not None:
            # The commit rewrote these nodes' memory rows; any copies
            # cached in the store's tiers are stale now.
            nodes = self._valid_nodes(released)
            if len(nodes):
                self.feature_store.refresh(
                    nodes, "serve:model", times=self._store_times(len(nodes))
                )

    # ---- tiered feature store ----------------------------------------------------

    def _store_times(self, n: int) -> np.ndarray:
        """The ``serve:model`` space's time coordinate: the model version.

        Keying cached rows by version makes a hot swap *structurally*
        invalidate them — rows prefetched under version k can never
        satisfy a version k+1 lookup, closing the window where a prefetch
        staged before the swap lands after the swap's eviction.
        """
        return np.full(n, float(self.model_version), dtype=np.float64)

    def _valid_nodes(self, batch: EventBatch) -> np.ndarray:
        """Deduplicated in-range node ids of *batch* (junk-safe)."""
        if not len(batch):
            return np.empty(0, dtype=np.int64)
        nodes = np.concatenate([batch.src, batch.dst])
        nodes = nodes[(nodes >= 0) & (nodes < self.graph.num_nodes)]
        return np.unique(nodes).astype(np.int64, copy=False)

    def _estimate_fetch(self, batch: EventBatch) -> float:
        """Modeled stall to gather this request's scoring rows (0 opted out)."""
        if self.feature_store is None:
            return 0.0
        nodes = self._valid_nodes(batch)
        if not len(nodes):
            return 0.0
        return self.feature_store.estimate_fetch_seconds(
            nodes, times=self._store_times(len(nodes)), space="serve:model"
        )

    def _prefetch_next(self) -> None:
        """Stage the queue head's scoring rows behind the current request."""
        if self.feature_store is None:
            return
        nxt = self.admission.peek()
        if nxt is None:
            return
        nodes = self._valid_nodes(nxt.batch)
        if len(nodes):
            self.feature_store.prefetch(
                nodes, times=self._store_times(len(nodes)), space="serve:model"
            )

    def _gather_rows(self, nodes: np.ndarray) -> np.ndarray:
        """Scoring-table rows, through the tiered store when opted in."""
        if self.feature_store is not None:
            nodes = np.asarray(nodes, dtype=np.int64)
            return self.feature_store.get(
                nodes, times=self._store_times(len(nodes)), space="serve:model"
            )
        return self._embed_rows()[nodes]

    def _score(self, batch: EventBatch, decision) -> np.ndarray:
        """Link-prediction scores for *batch* at the decided ladder rung.

        Malformed events (the same checks ingestion applies) are
        unscorable: their score is NaN and they are skipped, so a junk
        event crashes neither the sampler nor the cache probe.  The
        events themselves are still quarantined later by ingestion.
        """
        if not len(batch):
            return np.empty(0, dtype=np.float32)
        ok, _ = validate_events(batch, self.graph.num_nodes)
        if not ok.all():
            scores = np.full(len(batch), np.nan, dtype=np.float32)
            if ok.any():
                scores[ok] = self._score(batch.take(ok), decision)
            return scores
        nodes = np.concatenate([batch.src, batch.dst])
        times = np.concatenate([batch.ts, batch.ts])
        if decision.level in ("full", "reduced"):
            emb = self._embed_sampled(nodes, times, decision.fanout)
        elif decision.level == "cache":
            emb = self._embed_cached(nodes, times)
        else:  # 'memory'
            emb = self._embed_memory(nodes)
        n = len(batch)
        logits = np.sum(emb[:n] * emb[n:], axis=1)
        return (1.0 / (1.0 + np.exp(-logits))).astype(np.float32)

    def _embed_rows(self) -> np.ndarray:
        """The per-node scoring table: swapped-in model, else raw memory."""
        if self._model_table is not None:
            return self._model_table
        return self.memory.data.data

    def _embed_memory(self, nodes: np.ndarray) -> np.ndarray:
        return self._embed_rows()[nodes]

    def _embed_sampled(self, nodes, times, fanout: int) -> np.ndarray:
        """Memory rows enriched with the mean of sampled temporal neighbors."""
        res = self.sampler.sample_arrays(
            self.graph.csr(), nodes, times, ctx=self.ctx, num_nbrs=fanout
        )
        emb = self._gather_rows(nodes).astype(np.float32).copy()
        if len(res.srcnodes):
            agg = np.zeros_like(emb)
            counts = np.zeros(len(nodes), dtype=np.float32)
            np.add.at(agg, res.dstindex, self._gather_rows(res.srcnodes))
            np.add.at(counts, res.dstindex, 1.0)
            hot = counts > 0
            emb[hot] = 0.5 * (emb[hot] + agg[hot] / counts[hot, None])
        # Warm the layer-0 embedding cache so the 'cache' rung has
        # something recent to serve from under deeper degradation.
        cache = self.ctx.embed_cache(0)
        if cache.enabled:
            cache.store(nodes, times, emb)
        return emb

    def _embed_cached(self, nodes, times) -> np.ndarray:
        """Cache-first embeddings; misses fall back to raw memory rows."""
        cache = self.ctx.embed_cache(0)
        emb = self._embed_memory(nodes).astype(np.float32).copy()
        hits, values = cache.lookup(nodes, times)
        if values is not None and hits.any():
            emb[hits] = values[hits]
        return emb

    # ---- reporting ---------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """One flat dict across admission, ingestion, commit, and ladder."""
        out: Dict[str, object] = {}
        out.update({f"admission:{k}": v for k, v in self.admission.stats.as_dict().items()})
        out.update({f"ingest:{k}": v for k, v in self.ingest.stats.as_dict().items()})
        out.update({f"commit:{k}": v for k, v in self.committer.stats.as_dict().items()})
        out.update({f"ladder:{k}": v for k, v in sorted(self.ladder.decisions.items())})
        out["watermark"] = self.ingest.watermark
        out["committed_watermark"] = self.committer.committed_watermark
        out["model:version"] = self.model_version
        if self._model_table is not None and np.isfinite(self.model_watermark):
            out["model:staleness"] = max(
                0.0, self.committer.committed_watermark - self.model_watermark
            )
        if self.store is not None:
            out.update({f"durable:{k}": v for k, v in self.store.stats().items()})
        if self.feature_store is not None:
            out.update({
                f"store:{k}": v
                for k, v in self.feature_store.stats().as_dict().items()
            })
        for k, v in self._recovery.items():
            out[f"durable:recovered:{k}"] = v
        return out

    def close(self) -> None:
        """Flush and close the durable store; idempotent.

        Cluster teardown closes every replica — including ones already
        closed by a simulated crash — so double-close must not re-run
        WAL finalization.
        """
        if self._closed:
            return
        self._closed = True
        if self.store is not None:
            self.store.close()

    def __enter__(self) -> "ServeRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ServeRuntime(served={len(self.results)}, "
            f"queue={self.admission.depth}, clock={self.clock.now():.6g})"
        )
