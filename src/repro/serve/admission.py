"""Admission control and backpressure for the serving runtime.

Under 16x offered load a runtime that admits everything dies of queueing
delay: every request waits behind an unbounded backlog and *all* of them
miss their deadlines.  Shedding is what keeps the served fraction inside
its SLO.  Three mechanisms compose here, all driven by the simulated
clock:

* a **token bucket** capping the smoothed admission rate (burst-tolerant);
* a **bounded request queue** — the backpressure signal;
* a configurable **shed policy** once the queue is full: ``reject-new``
  (protect queued work, favouring older requests that are closer to
  completion) or ``drop-oldest`` (favour fresh requests, whose deadlines
  are still winnable).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from .clock import SimClock

__all__ = ["TokenBucket", "AdmissionStats", "AdmissionController"]

SHED_POLICIES = ("reject-new", "drop-oldest")


class TokenBucket:
    """Token-bucket rate limiter on the simulated clock.

    Args:
        rate: sustained tokens/second refill rate.
        burst: bucket capacity (momentary burst allowance).
        clock: the shared :class:`~repro.serve.clock.SimClock`.
    """

    def __init__(self, rate: float, burst: float, clock: SimClock):
        if rate <= 0 or burst <= 0:
            raise ValueError("token bucket rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self.clock = clock
        self.tokens = float(burst)
        self._last = clock.now()

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take *n* tokens if available; False means rate-limited."""
        now = self.clock.now()
        if now > self._last:
            self.tokens = min(self.burst, self.tokens + (now - self._last) * self.rate)
            self._last = now
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False


@dataclass
class AdmissionStats:
    """Running admission counters; ``offered == admitted + shed_total``."""

    offered: int = 0
    admitted: int = 0
    shed_rate_limited: int = 0
    shed_queue_full: int = 0
    shed_dropped_oldest: int = 0

    @property
    def shed_total(self) -> int:
        return self.shed_rate_limited + self.shed_queue_full + self.shed_dropped_oldest

    def as_dict(self) -> Dict[str, int]:
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "shed_rate_limited": self.shed_rate_limited,
            "shed_queue_full": self.shed_queue_full,
            "shed_dropped_oldest": self.shed_dropped_oldest,
        }


class AdmissionController:
    """Bounded request queue with rate limiting and load shedding.

    Args:
        clock: the shared simulated clock.
        max_queue: queue depth bound (the backpressure threshold).
        policy: ``'reject-new'`` sheds the arriving request when full;
            ``'drop-oldest'`` evicts the head of the queue instead.
        rate: optional token-bucket sustained admission rate
            (requests/second); None disables rate limiting.
        burst: token-bucket burst capacity (defaults to ``max_queue``).
    """

    def __init__(
        self,
        clock: SimClock,
        max_queue: int = 64,
        policy: str = "reject-new",
        rate: Optional[float] = None,
        burst: Optional[float] = None,
    ):
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if policy not in SHED_POLICIES:
            raise ValueError(f"unknown shed policy: {policy!r} (expected {SHED_POLICIES})")
        self.clock = clock
        self.max_queue = int(max_queue)
        self.policy = policy
        self.bucket = (
            TokenBucket(rate, burst if burst is not None else float(max_queue), clock)
            if rate is not None
            else None
        )
        self.stats = AdmissionStats()
        self._queue: Deque = deque()
        #: requests shed on arrival or evicted from the queue this call —
        #: drained by the runtime so it can answer them with a shed status.
        self.shed: List = []

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def depth(self) -> int:
        return len(self._queue)

    def offer(self, request) -> bool:
        """Try to admit *request*; returns False when it was shed.

        With ``drop-oldest``, the arriving request is admitted and the
        evicted head is appended to :attr:`shed` for the caller to fail
        gracefully (a shed response, not an exception).
        """
        self.stats.offered += 1
        if self.bucket is not None and not self.bucket.try_acquire():
            self.stats.shed_rate_limited += 1
            self.shed.append(request)
            return False
        if len(self._queue) >= self.max_queue:
            if self.policy == "reject-new":
                self.stats.shed_queue_full += 1
                self.shed.append(request)
                return False
            oldest = self._queue.popleft()
            self.stats.shed_dropped_oldest += 1
            self.shed.append(oldest)
        self._queue.append(request)
        self.stats.admitted += 1
        return True

    def poll(self):
        """Dequeue the next admitted request (None when idle)."""
        return self._queue.popleft() if self._queue else None

    def peek(self):
        """The next request :meth:`poll` would return, without dequeuing.

        Lets the runtime issue feature prefetches for the head of the
        queue while the current request is still being served.
        """
        return self._queue[0] if self._queue else None

    def drain_shed(self) -> List:
        """Hand back and clear the requests shed since the last drain."""
        out, self.shed = self.shed, []
        return out

    def __repr__(self) -> str:
        return (
            f"AdmissionController(depth={len(self._queue)}/{self.max_queue}, "
            f"policy='{self.policy}')"
        )
