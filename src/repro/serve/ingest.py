"""Hardened streaming ingestion: validate, quarantine, dedup, reorder.

A live event stream is everything the offline datasets are not: events
arrive out of order (bounded by network skew), duplicated (at-least-once
delivery), and malformed (clock bugs, failed joins).  The pipeline turns
that stream back into the clean, totally-ordered sequence the state
committer requires:

1. **Validation** — each pushed batch runs through
   :func:`~repro.serve.events.validate_events`; failures land in a
   quarantine queue carrying a structured
   :class:`~repro.serve.events.RejectReason` plus the offending event.
2. **Idempotent replay dedup** — an event id seen before (released,
   buffered, or quarantined as a duplicate) is dropped, so at-least-once
   redelivery and replayed stream segments cannot double-apply.
3. **Bounded reordering with watermark semantics** — accepted events wait
   in a buffer; the watermark trails the maximum accepted timestamp by
   the configured ``lateness`` bound, and only events at or below the
   watermark are released, in canonical ``(ts, eid)`` order.  An event
   arriving *below* the already-passed watermark is too late to reorder
   and is quarantined as ``LATE_EVENT``.  The buffer is bounded: overflow
   force-advances the watermark over the oldest buffered events so memory
   stays capped under pathological skew.

Released sequences are therefore identical for any arrival order whose
skew stays within the lateness bound — the foundation of the
poisoned-stream equivalence guarantee tested in ``tests/test_serve.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

import numpy as np

from ..resilience.hooks import poke as _poke
from .events import EventBatch, RejectReason, validate_events

__all__ = ["QuarantinedEvent", "IngestStats", "IngestPipeline"]


@dataclass(frozen=True)
class QuarantinedEvent:
    """One rejected event with its structured reject reason."""

    eid: int
    src: int
    dst: int
    ts: float
    reason: str
    detail: str = ""


@dataclass
class IngestStats:
    """Running ingestion counters (every pushed event lands in exactly
    one of accepted/duplicate/quarantined, so the ledger always balances:
    ``pushed == accepted + duplicates + quarantined_total``)."""

    pushed: int = 0
    accepted: int = 0
    released: int = 0
    duplicates: int = 0
    quarantined: Dict[str, int] = field(default_factory=dict)
    forced_releases: int = 0

    @property
    def quarantined_total(self) -> int:
        return sum(self.quarantined.values())

    @property
    def buffered(self) -> int:
        return self.accepted - self.released

    def as_dict(self) -> Dict[str, int]:
        flat = {
            "pushed": self.pushed,
            "accepted": self.accepted,
            "released": self.released,
            "buffered": self.buffered,
            "duplicates": self.duplicates,
            "forced_releases": self.forced_releases,
        }
        for reason, count in sorted(self.quarantined.items()):
            flat[f"quarantined:{reason}"] = count
        return flat


class IngestPipeline:
    """Validating, deduplicating, reordering front door for event streams.

    Args:
        num_nodes: node-id validity bound for incoming events.
        lateness: reordering slack in stream-time units; the watermark is
            ``max_accepted_ts - lateness``.  0 admits only a pre-sorted
            stream (anything out of order is late).
        max_buffer: reordering-buffer capacity in events; overflow
            force-releases the oldest buffered events (watermark advance),
            trading reordering slack for bounded memory.
        quarantine_capacity: quarantined events retained for inspection
            (counters are exact regardless; the queue keeps the most
            recent entries).
    """

    def __init__(
        self,
        num_nodes: int,
        lateness: float = 0.0,
        max_buffer: int = 10000,
        quarantine_capacity: int = 10000,
    ):
        if lateness < 0:
            raise ValueError("lateness must be >= 0")
        if max_buffer < 1:
            raise ValueError("max_buffer must be >= 1")
        self.num_nodes = int(num_nodes)
        self.lateness = float(lateness)
        self.max_buffer = int(max_buffer)
        self.quarantine_capacity = int(quarantine_capacity)
        self.stats = IngestStats()
        #: most recent quarantined events (bounded FIFO).
        self.quarantine: List[QuarantinedEvent] = []
        self.watermark = -np.inf
        self._max_accepted = -np.inf
        self._buffer: List[EventBatch] = []
        self._buffered = 0
        self._seen_eids: Set[int] = set()

    # ---- quarantine --------------------------------------------------------------

    def _quarantine(self, batch: EventBatch, idx: int, reason: str,
                    detail: str = "") -> None:
        self.stats.quarantined[reason] = self.stats.quarantined.get(reason, 0) + 1
        self.quarantine.append(
            QuarantinedEvent(
                int(batch.eids[idx]), int(batch.src[idx]), int(batch.dst[idx]),
                float(batch.ts[idx]), reason, detail,
            )
        )
        if len(self.quarantine) > self.quarantine_capacity:
            del self.quarantine[: -self.quarantine_capacity]

    def quarantine_batch(self, batch: EventBatch, detail: str = "") -> None:
        """Quarantine every event of an already-released batch.

        Used by the state committer when a poisoned batch fails
        validation after application and is rolled back: the events are
        accounted for as ``POISONED_BATCH`` rejects rather than silently
        vanishing from the ledger.
        """
        for i in range(len(batch)):
            self._quarantine(batch, i, RejectReason.POISONED_BATCH, detail)

    # ---- ingestion ---------------------------------------------------------------

    def push(self, batch: EventBatch) -> EventBatch:
        """Ingest one arriving batch; returns the events newly released.

        Release order is canonical ``(ts, eid)`` and never regresses
        across calls.  May raise a transient fault from the
        ``serve.ingest`` injection site; the pipeline mutates no state
        before that point, so a retried push is idempotent.
        """
        _poke("serve.ingest")  # fault-injection site (no-op unless armed)
        self.stats.pushed += len(batch)

        ok, reasons = validate_events(batch, self.num_nodes)
        for idx, reason in reasons.items():
            self._quarantine(batch, idx, reason)

        # Idempotent replay dedup on event id: already-seen ids are
        # dropped (counted, not quarantined — redelivery is normal
        # at-least-once behaviour, not a malformed event).  Duplicates
        # *within* the batch keep their first occurrence.
        keep = np.flatnonzero(ok)
        fresh: List[int] = []
        for i in keep:
            eid = int(batch.eids[i])
            if eid in self._seen_eids:
                self.stats.duplicates += 1
            else:
                self._seen_eids.add(eid)
                fresh.append(int(i))
        accepted = batch.take(np.asarray(fresh, dtype=np.int64))

        # Late events: below the watermark the reordering window has
        # already closed, so they cannot be merged back into order.
        if len(accepted) and np.isfinite(self.watermark):
            late = accepted.ts < self.watermark
            if late.any():
                for i in np.flatnonzero(late):
                    self._quarantine(
                        accepted, int(i), RejectReason.LATE_EVENT,
                        f"watermark {self.watermark:g}",
                    )
                accepted = accepted.take(~late)

        if len(accepted):
            self.stats.accepted += len(accepted)
            self._buffer.append(accepted)
            self._buffered += len(accepted)
            self._max_accepted = max(self._max_accepted, float(accepted.ts.max()))
            self.watermark = max(self.watermark, self._max_accepted - self.lateness)

        return self._release()

    def flush(self) -> EventBatch:
        """Release every buffered event (end of stream)."""
        self.watermark = np.inf
        out = self._release()
        self.watermark = self._max_accepted
        return out

    # ---- release -----------------------------------------------------------------

    def _release(self) -> EventBatch:
        if not self._buffered:
            return EventBatch.empty()
        pending = EventBatch.concat(self._buffer).sorted_by_time()
        cut = int(np.searchsorted(pending.ts, self.watermark, side="right"))
        overflow = self._buffered - self.max_buffer
        if overflow > cut:
            # Bounded buffer: force the watermark over the oldest events.
            cut = overflow
            self.watermark = float(pending.ts[cut - 1])
            self.stats.forced_releases += overflow
        released = pending.take(np.arange(cut))
        remainder = pending.take(np.arange(cut, len(pending)))
        self._buffer = [remainder] if len(remainder) else []
        self._buffered = len(remainder)
        self.stats.released += len(released)
        return released

    def __repr__(self) -> str:
        return (
            f"IngestPipeline(watermark={self.watermark:g}, "
            f"buffered={self._buffered}, quarantined={self.stats.quarantined_total})"
        )
