"""Watermarked state commits with snapshot-rollback atomicity.

Releasing events from ingestion is only half the story — they still have
to be applied to the node :class:`~repro.core.memory.Memory` and
:class:`~repro.core.mailbox.Mailbox`, and a poisoned batch (NaN payload
slipping past validation, a transient kernel fault mid-write) must never
leave state *partially* updated.  :class:`StateCommitter` makes each
batch apply-all-or-nothing:

1. snapshot memory + mailbox (``backup()``);
2. stage the endpoint updates (pure function of event content, so any
   permutation of the same events stages the same rows);
3. apply through ``Memory.update`` / ``Mailbox.store`` (whose
   last-event-wins duplicate semantics keep the result order-invariant);
4. re-validate the stores; violations roll the snapshot back and send
   the whole batch to quarantine as ``POISONED_BATCH``.

Transient faults from the ``serve.commit`` injection site are retried
after rollback; the committed watermark only advances past batches that
were applied and validated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..resilience.errors import TransientKernelError
from ..resilience.hooks import poke as _poke
from .events import EventBatch

__all__ = ["CommitResult", "CommitStats", "StateCommitter"]


@dataclass(frozen=True)
class CommitResult:
    """Outcome of one batch commit."""

    applied: bool
    events: int
    retries: int = 0
    violations: tuple = ()


@dataclass
class CommitStats:
    """Running commit counters."""

    batches: int = 0
    events_applied: int = 0
    retries: int = 0
    rollbacks: int = 0
    events_rolled_back: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "batches": self.batches,
            "events_applied": self.events_applied,
            "retries": self.retries,
            "rollbacks": self.rollbacks,
            "events_rolled_back": self.events_rolled_back,
        }


def _time_encode(ts: np.ndarray, dim: int) -> np.ndarray:
    """Deterministic sinusoidal encoding of timestamps into ``(n, dim)``.

    Used when events carry no payload (or the payload width does not
    match the store): the staged value is still a pure function of event
    content, preserving commit order-invariance.
    """
    freqs = 1.0 / np.power(10.0, 2.0 * np.arange(dim) / max(dim, 1))
    return np.cos(ts[:, None] * freqs[None, :]).astype(np.float32)


class StateCommitter:
    """Apply released event batches to memory/mailbox atomically.

    Args:
        memory: the node memory store to commit into.
        mailbox: optional mailbox receiving raw messages per endpoint.
        max_retries: transient-fault retry budget per batch.
        quarantine: optional callback ``(batch, detail)`` invoked when a
            poisoned batch is rolled back (typically
            :meth:`IngestPipeline.quarantine_batch`, keeping the event
            ledger balanced).
    """

    def __init__(
        self,
        memory,
        mailbox=None,
        max_retries: int = 2,
        quarantine=None,
    ):
        self.memory = memory
        self.mailbox = mailbox
        self.max_retries = int(max_retries)
        self.quarantine = quarantine
        self.stats = CommitStats()
        #: greatest event timestamp durably applied and validated.
        self.committed_watermark = -np.inf

    # ---- staging -----------------------------------------------------------------

    def _stage(self, batch: EventBatch):
        """Build ``(nodes, values, times)`` endpoint updates from *batch*.

        Both endpoints of each event receive the event's value row at the
        event's timestamp.  The value row is the payload when its width
        matches the memory dim, else a sinusoidal time encoding — either
        way purely content-derived.
        """
        nodes = np.concatenate([batch.src, batch.dst])
        times = np.concatenate([batch.ts, batch.ts])
        dim = self.memory.dim
        if batch.payload is not None and batch.payload.shape[1] == dim:
            rows = batch.payload
        else:
            rows = _time_encode(batch.ts, dim)
        values = np.concatenate([rows, rows])
        return nodes, values, times

    # ---- commit ------------------------------------------------------------------

    def _snapshot(self) -> None:
        self.memory.backup()
        if self.mailbox is not None:
            self.mailbox.backup()

    def _rollback(self) -> None:
        self.memory.restore()
        if self.mailbox is not None:
            self.mailbox.restore()

    def _validate(self, max_time: float) -> List[str]:
        errs = list(self.memory.validate(max_time=max_time))
        if self.mailbox is not None:
            errs += [f"mailbox: {e}" for e in self.mailbox.validate()]
        return errs

    def commit(self, batch: EventBatch) -> CommitResult:
        """Apply *batch* atomically; returns whether it stuck.

        On a validation failure after application, state is restored to
        the pre-batch snapshot and the batch is quarantined (via the
        ``quarantine`` callback) — the caller observes ``applied=False``
        with the violations, never a partially updated store.
        """
        if not len(batch):
            return CommitResult(applied=True, events=0)
        self.stats.batches += 1
        batch_max = float(batch.ts.max())
        retries = 0
        while True:
            self._snapshot()
            try:
                _poke("serve.commit")  # transient-fault injection site
                nodes, values, times = self._stage(batch)
                # Poison injection site: corrupts staged values in place so
                # the post-apply validation (and rollback) path is testable.
                _poke("serve.poison", values=values)
                self.memory.update(nodes, values, times)
                if self.mailbox is not None:
                    self.mailbox.store(nodes, values, times)
            except TransientKernelError:
                self._rollback()
                if retries < self.max_retries:
                    retries += 1
                    self.stats.retries += 1
                    continue
                raise
            violations = self._validate(max_time=batch_max)
            if violations:
                self._rollback()
                self.stats.rollbacks += 1
                self.stats.events_rolled_back += len(batch)
                if self.quarantine is not None:
                    self.quarantine(batch, "; ".join(violations))
                return CommitResult(
                    applied=False, events=len(batch),
                    retries=retries, violations=tuple(violations),
                )
            self.stats.events_applied += len(batch)
            self.committed_watermark = max(self.committed_watermark, batch_max)
            return CommitResult(applied=True, events=len(batch), retries=retries)

    def __repr__(self) -> str:
        return (
            f"StateCommitter(watermark={self.committed_watermark:g}, "
            f"applied={self.stats.events_applied}, rollbacks={self.stats.rollbacks})"
        )
