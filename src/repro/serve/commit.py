"""Watermarked state commits with snapshot-rollback atomicity.

Releasing events from ingestion is only half the story — they still have
to be applied to the node :class:`~repro.core.memory.Memory` and
:class:`~repro.core.mailbox.Mailbox`, and a poisoned batch (NaN payload
slipping past validation, a transient kernel fault mid-write) must never
leave state *partially* updated.  :class:`StateCommitter` makes each
batch apply-all-or-nothing:

1. snapshot memory + mailbox (``backup()``);
2. stage the endpoint updates (pure function of event content, so any
   permutation of the same events stages the same rows);
3. apply through ``Memory.update`` / ``Mailbox.store`` (whose
   last-event-wins duplicate semantics keep the result order-invariant);
4. re-validate the stores; violations roll the snapshot back and send
   the whole batch to quarantine as ``POISONED_BATCH``.

Transient faults from the ``serve.commit`` injection site are retried
after rollback; the committed watermark only advances past batches that
were applied and validated.

**Durability (WAL-then-apply).**  With a
:class:`~repro.durable.store.DurableStateStore` attached, every released
batch is logged to the write-ahead log *before* step 3 applies it, and a
batch rolled back by validation gets an abort record.  A process killed
at any byte offset therefore recovers — via
:func:`recover_serve_state` — to a state bit-identical to a clean replay
of the committed log prefix: a batch whose log record is durable but
whose abort is not is simply re-committed cleanly (its content was
valid; the rollback came from transient in-flight corruption), and a
batch torn out of the log tail was never acknowledged.  Periodic
snapshots (``snapshot_every``) bound recovery time and let the log
compact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..durable.codec import KIND_BATCH
from ..resilience.errors import TransientKernelError
from ..resilience.hooks import poke as _poke
from .events import EventBatch

__all__ = [
    "CommitResult",
    "CommitStats",
    "StateCommitter",
    "stage_updates",
    "serve_state_arrays",
    "load_serve_state_arrays",
    "recover_serve_state",
]


@dataclass(frozen=True)
class CommitResult:
    """Outcome of one batch commit."""

    applied: bool
    events: int
    retries: int = 0
    violations: tuple = ()


@dataclass
class CommitStats:
    """Running commit counters."""

    batches: int = 0
    events_applied: int = 0
    retries: int = 0
    rollbacks: int = 0
    events_rolled_back: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "batches": self.batches,
            "events_applied": self.events_applied,
            "retries": self.retries,
            "rollbacks": self.rollbacks,
            "events_rolled_back": self.events_rolled_back,
        }


def _time_encode(ts: np.ndarray, dim: int) -> np.ndarray:
    """Deterministic sinusoidal encoding of timestamps into ``(n, dim)``.

    Used when events carry no payload (or the payload width does not
    match the store): the staged value is still a pure function of event
    content, preserving commit order-invariance.
    """
    freqs = 1.0 / np.power(10.0, 2.0 * np.arange(dim) / max(dim, 1))
    return np.cos(ts[:, None] * freqs[None, :]).astype(np.float32)


def stage_updates(batch: EventBatch, dim: int):
    """Build ``(nodes, values, times)`` endpoint updates from *batch*.

    Both endpoints of each event receive the event's value row at the
    event's timestamp.  The value row is the payload when its width
    matches the memory dim, else a sinusoidal time encoding — either way
    purely content-derived, so live commits and durable-log replay stage
    bit-identical rows from the same events.
    """
    nodes = np.concatenate([batch.src, batch.dst])
    times = np.concatenate([batch.ts, batch.ts])
    if batch.payload is not None and batch.payload.shape[1] == dim:
        rows = batch.payload
    else:
        rows = _time_encode(batch.ts, dim)
    values = np.concatenate([rows, rows])
    return nodes, values, times


class StateCommitter:
    """Apply released event batches to memory/mailbox atomically.

    Args:
        memory: the node memory store to commit into.
        mailbox: optional mailbox receiving raw messages per endpoint.
        max_retries: transient-fault retry budget per batch.
        quarantine: optional callback ``(batch, detail)`` invoked when a
            poisoned batch is rolled back (typically
            :meth:`IngestPipeline.quarantine_batch`, keeping the event
            ledger balanced).
        store: optional :class:`~repro.durable.store.DurableStateStore`;
            when set, every batch is WAL-logged *before* application and
            validation rollbacks append abort records.
        snapshot_every: with a store attached, write a full state
            snapshot (and compact the log) after every this many
            successfully applied batches; ``None`` disables periodic
            snapshots.
    """

    def __init__(
        self,
        memory,
        mailbox=None,
        max_retries: int = 2,
        quarantine=None,
        store=None,
        snapshot_every: Optional[int] = None,
    ):
        self.memory = memory
        self.mailbox = mailbox
        self.max_retries = int(max_retries)
        self.quarantine = quarantine
        self.store = store
        self.snapshot_every = None if snapshot_every is None else int(snapshot_every)
        if self.snapshot_every is not None and self.snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self._applied_since_snapshot = 0
        self.stats = CommitStats()
        #: greatest event timestamp durably applied and validated.
        self.committed_watermark = -np.inf

    # ---- staging -----------------------------------------------------------------

    def _stage(self, batch: EventBatch):
        return stage_updates(batch, self.memory.dim)

    # ---- commit ------------------------------------------------------------------

    def _snapshot(self) -> None:
        self.memory.backup()
        if self.mailbox is not None:
            self.mailbox.backup()

    def _rollback(self) -> None:
        self.memory.restore()
        if self.mailbox is not None:
            self.mailbox.restore()

    def _validate(self, max_time: float) -> List[str]:
        errs = list(self.memory.validate(max_time=max_time))
        if self.mailbox is not None:
            errs += [f"mailbox: {e}" for e in self.mailbox.validate()]
        return errs

    def commit(self, batch: EventBatch) -> CommitResult:
        """Apply *batch* atomically; returns whether it stuck.

        On a validation failure after application, state is restored to
        the pre-batch snapshot and the batch is quarantined (via the
        ``quarantine`` callback) — the caller observes ``applied=False``
        with the violations, never a partially updated store.
        """
        if not len(batch):
            return CommitResult(applied=True, events=0)
        self.stats.batches += 1
        batch_max = float(batch.ts.max())
        # WAL-then-apply: the batch delta is durable before any store row
        # changes.  Logged once — transient retries below re-apply the
        # same logged record, they do not re-log it.
        lsn = None
        if self.store is not None:
            lsn = self.store.log_batch(
                batch.to_arrays(), {"watermark": batch_max}
            )
        retries = 0
        while True:
            self._snapshot()
            try:
                _poke("serve.commit")  # transient-fault injection site
                nodes, values, times = self._stage(batch)
                # Poison injection site: corrupts staged values in place so
                # the post-apply validation (and rollback) path is testable.
                _poke("serve.poison", values=values)
                self.memory.update(nodes, values, times)
                if self.mailbox is not None:
                    self.mailbox.store(nodes, values, times)
            except TransientKernelError:
                self._rollback()
                if retries < self.max_retries:
                    retries += 1
                    self.stats.retries += 1
                    continue
                raise
            violations = self._validate(max_time=batch_max)
            if violations:
                self._rollback()
                self.stats.rollbacks += 1
                self.stats.events_rolled_back += len(batch)
                if lsn is not None:
                    self.store.log_abort(lsn, "; ".join(violations))
                if self.quarantine is not None:
                    self.quarantine(batch, "; ".join(violations))
                return CommitResult(
                    applied=False, events=len(batch),
                    retries=retries, violations=tuple(violations),
                )
            self.stats.events_applied += len(batch)
            self.committed_watermark = max(self.committed_watermark, batch_max)
            if self.store is not None and self.snapshot_every is not None:
                self._applied_since_snapshot += 1
                if self._applied_since_snapshot >= self.snapshot_every:
                    self.write_snapshot()
            return CommitResult(applied=True, events=len(batch), retries=retries)

    def write_snapshot(self) -> Optional[str]:
        """Persist the full applied state to the durable store now."""
        if self.store is None:
            return None
        path = self.store.snapshot(
            serve_state_arrays(self.memory, self.mailbox),
            {"watermark": float(self.committed_watermark)},
        )
        self._applied_since_snapshot = 0
        return path

    def __repr__(self) -> str:
        return (
            f"StateCommitter(watermark={self.committed_watermark:g}, "
            f"applied={self.stats.events_applied}, rollbacks={self.stats.rollbacks})"
        )


# ---- durable serve-state image + recovery ------------------------------------------


def serve_state_arrays(memory, mailbox=None) -> Dict[str, np.ndarray]:
    """Full serve-state image as a flat array dict (snapshot payload)."""
    arrays = {
        "memory/data": memory.data.data,
        "memory/time": memory.time,
    }
    if mailbox is not None:
        arrays["mailbox/mail"] = mailbox.mail.data
        arrays["mailbox/time"] = mailbox.time
        if mailbox._next_slot is not None:
            arrays["mailbox/cursor"] = mailbox._next_slot
    return arrays


def load_serve_state_arrays(arrays: Dict[str, np.ndarray], memory, mailbox=None) -> None:
    """Inverse of :func:`serve_state_arrays`: write the image in place."""
    memory.data.data[...] = arrays["memory/data"]
    memory.time[...] = arrays["memory/time"]
    if mailbox is not None and "mailbox/mail" in arrays:
        mailbox.mail.data[...] = arrays["mailbox/mail"]
        mailbox.time[...] = arrays["mailbox/time"]
        if mailbox._next_slot is not None and "mailbox/cursor" in arrays:
            mailbox._next_slot[...] = arrays["mailbox/cursor"]


def recover_serve_state(store, memory, mailbox=None) -> Dict[str, object]:
    """Rebuild memory/mailbox from a durable store after a crash.

    Loads the newest intact snapshot (or resets the stores for a clean
    start), then replays the committed, non-aborted ``KIND_BATCH`` suffix
    through the same :func:`stage_updates` + ``Memory.update`` /
    ``Mailbox.store`` path live commits use — so the recovered state is
    bit-identical to a clean replay of the committed log prefix.
    Idempotent: recovering the same directory twice yields the same
    state.
    """
    state = store.recover()
    if state.snapshot_arrays is not None:
        load_serve_state_arrays(state.snapshot_arrays, memory, mailbox)
    else:
        memory.reset()
        if mailbox is not None:
            mailbox.reset()
    watermark = float(state.snapshot_meta.get("watermark", -np.inf))
    replayed = 0
    for record in state.records:
        if record.kind != KIND_BATCH:
            continue
        batch = EventBatch.from_arrays(record.arrays)
        if not len(batch):
            continue
        nodes, values, times = stage_updates(batch, memory.dim)
        memory.update(nodes, values, times)
        if mailbox is not None:
            mailbox.store(nodes, values, times)
        watermark = max(watermark, float(record.meta.get("watermark", batch.ts.max())))
        replayed += 1
    return {
        "batches_replayed": replayed,
        "aborted_skipped": state.aborted,
        "watermark": watermark,
        "snapshot_lsn": state.snapshot_lsn,
        "last_lsn": state.last_lsn,
    }
