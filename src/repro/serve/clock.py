"""Simulated wall clock driving the online serving runtime.

Every latency-sensitive decision in :mod:`repro.serve` — token-bucket
refill, deadline budgets, the degradation ladder's cost comparisons, and
the reported p50/p99 latencies — reads one logical clock instead of
``time.perf_counter()``.  That keeps replay runs deterministic (the same
stream and configuration produce bit-identical decisions on any machine)
and lets the benchmark suite model 16x offered load without actually
waiting for it.
"""

from __future__ import annotations

__all__ = ["SimClock"]


class SimClock:
    """A monotone simulated clock measured in seconds.

    Args:
        start: initial reading.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward by *seconds*; returns the new reading."""
        if seconds < 0:
            raise ValueError(f"cannot advance the clock by {seconds} (negative)")
        self._now += float(seconds)
        return self._now

    def advance_to(self, t: float) -> float:
        """Move the clock forward to *t* (no-op if *t* is in the past)."""
        if t > self._now:
            self._now = float(t)
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6g})"
