"""Stream synthesis, poisoning, and deterministic replay harness.

Shared by the ``serve`` CLI subcommand, the serving tests, and the
throughput benchmark:

* :func:`build_stream` — a clean, time-sorted synthetic event stream;
* :func:`poison_stream` — the same stream plus the failure modes a live
  feed exhibits: malformed junk events, at-least-once redeliveries, and
  bounded out-of-order arrival.  Crucially, poisoning only *adds* garbage
  and *permutes* within a bounded window — it never alters a clean
  event — so a hardened runtime must recover the exact clean state
  (the poisoned-stream equivalence criterion);
* :func:`replay` — drives a :class:`~repro.serve.runtime.ServeRuntime`
  at a chosen offered-load multiple of its full-quality service rate on
  the simulated clock.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .events import EventBatch

__all__ = ["build_stream", "poison_stream", "split_batches", "replay"]


def build_stream(
    num_nodes: int,
    num_events: int,
    payload_dim: Optional[int] = None,
    seed: int = 0,
    mean_gap: float = 1.0,
) -> EventBatch:
    """A clean synthetic stream: sorted times, valid ids, finite payload."""
    rng = np.random.default_rng(seed)
    ts = np.cumsum(rng.exponential(mean_gap, size=num_events))
    src = rng.integers(0, num_nodes, size=num_events)
    dst = rng.integers(0, num_nodes, size=num_events)
    payload = (
        rng.standard_normal((num_events, payload_dim)).astype(np.float32)
        if payload_dim is not None
        else None
    )
    return EventBatch(np.arange(num_events), src, dst, ts, payload)


def poison_stream(
    stream: EventBatch,
    num_nodes: int,
    seed: int = 0,
    junk_frac: float = 0.05,
    dup_frac: float = 0.05,
    shuffle_window: int = 8,
) -> Tuple[EventBatch, float, Dict[str, int]]:
    """Inject stream pathologies without touching any clean event.

    Adds ``junk_frac`` malformed events (non-finite/negative timestamps,
    out-of-range/negative node ids, non-finite payload — cycled evenly)
    with fresh event ids, re-delivers ``dup_frac`` clean events verbatim
    (same event id: at-least-once duplicates), then permutes arrival
    order within consecutive windows of ``shuffle_window`` events.

    Returns ``(poisoned, required_lateness, injected)`` where
    ``required_lateness`` is the reordering slack an
    :class:`~repro.serve.ingest.IngestPipeline` needs to absorb the
    shuffle without quarantining any clean event as late, and
    ``injected`` counts each pathology added.
    """
    rng = np.random.default_rng(seed)
    n = len(stream)
    lo = float(stream.ts.min()) if n else 0.0
    hi = float(stream.ts.max()) if n else 1.0
    pdim = None if stream.payload is None else stream.payload.shape[1]

    # --- junk events (fresh eids; each malformed in exactly one way) ---
    n_junk = int(round(junk_frac * n))
    kinds = ["nan_ts", "neg_ts", "node_range", "neg_node"]
    if pdim is not None:
        kinds.append("nan_payload")
    junk_eids = n + 1_000_000 + np.arange(n_junk)
    junk_src = rng.integers(0, num_nodes, size=n_junk)
    junk_dst = rng.integers(0, num_nodes, size=n_junk)
    junk_ts = rng.uniform(lo, hi, size=n_junk)
    junk_payload = (
        rng.standard_normal((n_junk, pdim)).astype(np.float32)
        if pdim is not None
        else None
    )
    injected: Dict[str, int] = {k: 0 for k in kinds}
    for i in range(n_junk):
        kind = kinds[i % len(kinds)]
        injected[kind] += 1
        if kind == "nan_ts":
            junk_ts[i] = np.nan
        elif kind == "neg_ts":
            junk_ts[i] = -abs(junk_ts[i]) - 1.0
        elif kind == "node_range":
            junk_src[i] = num_nodes + 1 + (i % 7)
        elif kind == "neg_node":
            junk_dst[i] = -1 - (i % 3)
        else:  # nan_payload
            junk_payload[i, 0] = np.inf
    junk = EventBatch(junk_eids, junk_src, junk_dst, junk_ts, junk_payload)

    # --- at-least-once redeliveries (verbatim copies, same eid) ---
    n_dup = int(round(dup_frac * n))
    dup_idx = rng.choice(n, size=n_dup, replace=False) if n_dup else np.empty(0, int)
    dups = stream.take(np.sort(dup_idx))
    injected["redelivered"] = n_dup

    merged = EventBatch.concat([stream, junk, dups])
    # Place junk/dups near their timestamps so the shuffle bound holds
    # for everything, then permute within bounded windows.
    order = np.argsort(merged.ts, kind="stable")
    # NaN timestamps sort last; scatter them back uniformly so junk is
    # interleaved with the stream rather than trailing it.
    nan_at = np.flatnonzero(~np.isfinite(merged.ts[order]))
    if len(nan_at):
        dest = rng.choice(len(order), size=len(nan_at), replace=False)
        moved = order[nan_at]
        kept = np.delete(order, nan_at)
        out = np.empty_like(order)
        mask = np.zeros(len(order), dtype=bool)
        mask[dest] = True
        out[mask] = moved
        out[~mask] = kept
        order = out
    merged = merged.take(order)

    m = len(merged)
    w = max(1, int(shuffle_window))
    perm = np.arange(m)
    for start in range(0, m, w):
        block = perm[start : start + w]
        rng.shuffle(block)
    shuffled = merged.take(perm)

    # Lateness bound: the widest finite-timestamp span inside any window.
    required_lateness = 0.0
    for start in range(0, m, w):
        span = merged.ts[start : start + w]
        span = span[np.isfinite(span)]
        if len(span) > 1:
            required_lateness = max(required_lateness, float(span.max() - span.min()))
    return shuffled, required_lateness, injected


def split_batches(stream: EventBatch, batch_size: int) -> List[EventBatch]:
    """Chop a stream into consecutive request batches of *batch_size*."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    return [
        stream.take(np.arange(start, min(start + batch_size, len(stream))))
        for start in range(0, len(stream), batch_size)
    ]


def replay(runtime, batches: List[EventBatch], load: float = 1.0,
           deadline: Optional[float] = None, on_result=None) -> List:
    """Offer *batches* at ``load`` times the full-quality service rate.

    Arrival spacing is the full-rung cost estimate divided by *load*: at
    1x the runtime keeps up serving every request at full quality; at 16x
    requests arrive sixteen times faster than they can be fully served,
    and only the degradation ladder plus admission control keep the
    runtime available.  One request is served per arrival slot; the
    simulated clock carries the queueing delay.  Returns the runtime's
    results after draining.

    ``on_result(runtime, result)`` is invoked once per
    :class:`~repro.serve.runtime.RequestResult` as it is produced (shed
    results included), in order — the hook point where a tailing
    continual learner polls the WAL and hot-swaps the model between
    requests.  The callback must not submit requests of its own.
    """
    if load <= 0:
        raise ValueError("load must be positive")
    cost = runtime.ladder.cost_model
    arrivals = []
    t = runtime.clock.now()
    for batch in batches:
        arrivals.append((t, batch))
        t += cost.estimate("full", len(batch)) / load
    i = 0
    notified = 0

    def _notify():
        nonlocal notified
        if on_result is None:
            return
        while notified < len(runtime.results):
            result = runtime.results[notified]
            notified += 1
            on_result(runtime, result)

    # Event-driven single-server loop: deliver every arrival whose
    # scheduled time has passed (backdated, so queueing delay eats the
    # deadline budget), then serve one request; idle-advance otherwise.
    while i < len(arrivals) or runtime.admission.depth:
        now = runtime.clock.now()
        while i < len(arrivals) and arrivals[i][0] <= now:
            at, batch = arrivals[i]
            i += 1
            runtime.submit(batch, deadline=deadline, arrival=at)
        if runtime.admission.depth:
            runtime.step()
            _notify()
        elif i < len(arrivals):
            runtime.clock.advance_to(arrivals[i][0])
    results = runtime.drain()
    _notify()
    return results
