"""Event batches and validation for the streaming ingestion pipeline.

An :class:`EventBatch` is a struct-of-arrays view of interaction events —
``(eid, src, dst, ts, payload)`` — the wire format of the serving path.
Unlike the offline datasets (pre-sorted, deduplicated, clean), a live
stream interleaves malformed, duplicated, and out-of-order events;
:func:`validate_events` classifies each event with a structured reject
reason so the ingestion pipeline can quarantine rather than crash.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["EventBatch", "RejectReason", "validate_events"]


class RejectReason:
    """Structured reject-reason vocabulary for quarantined events."""

    NON_FINITE_TIME = "non_finite_timestamp"
    NEGATIVE_TIME = "negative_timestamp"
    NEGATIVE_NODE = "negative_node_id"
    NODE_OUT_OF_RANGE = "node_id_out_of_range"
    NON_FINITE_PAYLOAD = "non_finite_payload"
    DUPLICATE_EID = "duplicate_event_id"
    LATE_EVENT = "late_event_below_watermark"
    POISONED_BATCH = "poisoned_commit_batch"
    DEADLINE = "deadline_exceeded"

    #: every reason the ingestion path itself can assign, in check order.
    VALIDATION_ORDER = (
        NON_FINITE_TIME,
        NEGATIVE_TIME,
        NEGATIVE_NODE,
        NODE_OUT_OF_RANGE,
        NON_FINITE_PAYLOAD,
    )


@dataclass
class EventBatch:
    """A batch of interaction events in struct-of-arrays form.

    Args:
        eids: int64 globally unique event ids (the idempotency key).
        src: int64 source node ids.
        dst: int64 destination node ids.
        ts: float64 event timestamps.
        payload: optional float32 ``(n, d)`` per-event feature rows (edge
            features / raw message content); ``None`` means payload-free
            events.
    """

    eids: np.ndarray
    src: np.ndarray
    dst: np.ndarray
    ts: np.ndarray
    payload: Optional[np.ndarray] = None

    def __post_init__(self):
        self.eids = np.asarray(self.eids, dtype=np.int64)
        self.src = np.asarray(self.src, dtype=np.int64)
        self.dst = np.asarray(self.dst, dtype=np.int64)
        self.ts = np.asarray(self.ts, dtype=np.float64)
        n = len(self.eids)
        if not (len(self.src) == len(self.dst) == len(self.ts) == n):
            raise ValueError("event arrays must have equal lengths")
        if self.payload is not None:
            self.payload = np.asarray(self.payload, dtype=np.float32)
            if len(self.payload) != n:
                raise ValueError(
                    f"payload rows {len(self.payload)} != events {n}"
                )

    def __len__(self) -> int:
        return len(self.eids)

    @classmethod
    def empty(cls, payload_dim: Optional[int] = None) -> "EventBatch":
        payload = (
            np.empty((0, payload_dim), dtype=np.float32)
            if payload_dim is not None
            else None
        )
        return cls(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            payload,
        )

    def take(self, index: np.ndarray) -> "EventBatch":
        """A new batch holding the events selected by *index* (mask or ids)."""
        return EventBatch(
            self.eids[index],
            self.src[index],
            self.dst[index],
            self.ts[index],
            None if self.payload is None else self.payload[index],
        )

    def sorted_by_time(self) -> "EventBatch":
        """Events in canonical ``(ts, eid)`` order.

        The tie-break on event id makes the order a total one, so any
        bounded shuffle of the same events sorts back to an identical
        sequence — the property the poisoned-stream equivalence guarantee
        rests on.
        """
        order = np.lexsort((self.eids, self.ts))
        return self.take(order)

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Flat array dict for durable-log serialization (see ``from_arrays``)."""
        arrays = {"eids": self.eids, "src": self.src, "dst": self.dst, "ts": self.ts}
        if self.payload is not None:
            arrays["payload"] = self.payload
        return arrays

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray]) -> "EventBatch":
        """Inverse of :meth:`to_arrays` (used by durable-log recovery)."""
        return cls(
            arrays["eids"],
            arrays["src"],
            arrays["dst"],
            arrays["ts"],
            arrays.get("payload"),
        )

    @staticmethod
    def concat(batches: Sequence["EventBatch"]) -> "EventBatch":
        batches = [b for b in batches if len(b)]
        if not batches:
            return EventBatch.empty()
        payload = None
        if batches[0].payload is not None:
            payload = np.concatenate([b.payload for b in batches])
        return EventBatch(
            np.concatenate([b.eids for b in batches]),
            np.concatenate([b.src for b in batches]),
            np.concatenate([b.dst for b in batches]),
            np.concatenate([b.ts for b in batches]),
            payload,
        )

    def __repr__(self) -> str:
        span = (
            f", t=[{self.ts.min():.6g}, {self.ts.max():.6g}]" if len(self) else ""
        )
        return f"EventBatch(n={len(self)}{span})"


def validate_events(
    batch: EventBatch, num_nodes: int
) -> Tuple[np.ndarray, Dict[int, str]]:
    """Classify each event as acceptable or rejected with a reason.

    Returns ``(ok_mask, reasons)`` where ``reasons`` maps the index of
    each rejected event (position within *batch*) to the first
    :class:`RejectReason` it failed, checked in ``VALIDATION_ORDER``.
    Purely vectorized: one boolean mask per reason, combined by priority.
    """
    n = len(batch)
    ok = np.ones(n, dtype=bool)
    reasons: Dict[int, str] = {}
    if n == 0:
        return ok, reasons

    finite_ts = np.isfinite(batch.ts)
    checks: List[Tuple[str, np.ndarray]] = [
        (RejectReason.NON_FINITE_TIME, ~finite_ts),
        (RejectReason.NEGATIVE_TIME, finite_ts & (batch.ts < 0)),
        (RejectReason.NEGATIVE_NODE, (batch.src < 0) | (batch.dst < 0)),
        (
            RejectReason.NODE_OUT_OF_RANGE,
            (batch.src >= num_nodes) | (batch.dst >= num_nodes),
        ),
    ]
    if batch.payload is not None:
        checks.append(
            (RejectReason.NON_FINITE_PAYLOAD, ~np.isfinite(batch.payload).all(axis=1))
        )
    for reason, bad in checks:
        fresh = bad & ok
        ok &= ~bad
        for i in np.flatnonzero(fresh):
            reasons[int(i)] = reason
    return ok, reasons
