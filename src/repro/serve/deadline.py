"""Per-request deadline budgets and the serving degradation ladder.

Each admitted request carries a deadline on the simulated clock.  When
the remaining budget cannot pay for full-quality inference, the ladder
degrades the request one rung at a time instead of missing the deadline:

====================  =====================================================
rung                  what is served
====================  =====================================================
``full``              full-fanout temporal attention neighborhood
``reduced``           same pipeline with the sampler fanout shrunk
``cache``             embedding-cache rows (the FeatureStore's hot
                      memoization tier); misses fall back to raw memory
                      rows
``memory``            memory-only cold predictions (no sampling, no cache)
``timeout``           nothing — even the cheapest rung cannot make the
                      deadline; the request is answered with a shed status
====================  =====================================================

The ladder composes with the training-path circuit breaker
(:meth:`TContext.record_kernel_fault`): a context that has degraded
``kernel.cache`` has no trustworthy cache tables, so the ``cache`` rung is
skipped outright; a degraded ``kernel.sample`` makes sampling rungs pay
the slower reference-path cost, which the cost model surfaces as an
inflated estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["LadderDecision", "CostModel", "DegradationLadder", "LEVELS"]

#: ladder rungs from least to most degraded.
LEVELS = ("full", "reduced", "cache", "memory")


@dataclass(frozen=True)
class LadderDecision:
    """Outcome of one ladder descent for one request."""

    level: str
    fanout: int
    estimated_cost: float
    reason: str = ""


@dataclass
class CostModel:
    """Modeled per-event service cost (simulated seconds) per rung.

    The defaults mirror the relative kernel costs measured by the Fig-7
    breakdown: sampling dominates, cache lookups are cheap, raw memory
    reads are nearly free.  ``reference_penalty`` multiplies sampling
    rungs when ``kernel.sample`` is degraded to the loop-reference path.
    """

    per_event: Dict[str, float] = field(
        default_factory=lambda: {
            "full": 1.0e-4,
            "reduced": 4.0e-5,
            "cache": 1.0e-5,
            "memory": 2.0e-6,
        }
    )
    fixed: float = 1.0e-4
    reference_penalty: float = 5.0

    def estimate(self, level: str, n_events: int, ctx=None,
                 fetch_seconds: float = 0.0) -> float:
        """Estimated simulated seconds to serve *n_events* at *level*.

        ``fetch_seconds`` is the modeled stall to gather this request's
        feature rows from the tiered store (zero when everything is hot
        or a prefetch already staged it).  Only the sampling rungs pay
        it — they are the rungs that must touch raw features — so a
        prefetch miss pushes the decision down to the ``cache`` rung,
        which serves from already-resident embedding rows.
        """
        cost = self.fixed + self.per_event[level] * n_events
        if level in ("full", "reduced"):
            cost += max(0.0, float(fetch_seconds))
            if ctx is not None and ctx.is_degraded("kernel.sample"):
                cost *= self.reference_penalty
        return cost


class DegradationLadder:
    """Deadline-driven rung selection for one serving context.

    Args:
        full_fanout: sampler fanout at the ``full`` rung.
        reduced_fanout: shrunk fanout at the ``reduced`` rung.
        cost_model: per-rung service-cost estimates.
        headroom: safety multiplier on estimates (an estimate within
            ``headroom * cost`` of the remaining budget is treated as
            unaffordable, absorbing modeling error).
    """

    def __init__(
        self,
        full_fanout: int = 10,
        reduced_fanout: int = 2,
        cost_model: Optional[CostModel] = None,
        headroom: float = 1.0,
    ):
        if not 1 <= reduced_fanout <= full_fanout:
            raise ValueError("need 1 <= reduced_fanout <= full_fanout")
        self.full_fanout = int(full_fanout)
        self.reduced_fanout = int(reduced_fanout)
        self.cost_model = cost_model or CostModel()
        self.headroom = float(headroom)
        #: requests served per rung (plus 'timeout'), for ctx.stats().
        self.decisions: Dict[str, int] = {}

    def fanout(self, level: str) -> int:
        if level == "full":
            return self.full_fanout
        if level == "reduced":
            return self.reduced_fanout
        return 0

    def decide(self, remaining_budget: float, n_events: int,
               ctx=None, fetch_seconds: float = 0.0) -> LadderDecision:
        """Pick the least-degraded affordable rung for one request.

        ``fetch_seconds`` (the tiered store's modeled feature-gather
        stall, see :meth:`CostModel.estimate`) inflates the sampling
        rungs only, so an un-prefetched request maps to the
        embedding-cache rung rather than blowing its deadline on a
        cold-tier read.
        """
        for level in LEVELS:
            if level == "cache" and ctx is not None and (
                ctx.is_degraded("kernel.cache") or getattr(ctx, "cache_limit", 1) <= 0
            ):
                continue  # no trustworthy cache tables to serve from
            cost = self.cost_model.estimate(
                level, n_events, ctx, fetch_seconds=fetch_seconds
            )
            if cost * self.headroom <= remaining_budget:
                self.decisions[level] = self.decisions.get(level, 0) + 1
                reason = "" if level == "full" else (
                    f"budget {remaining_budget:.3g}s cannot afford "
                    f"{LEVELS[max(0, LEVELS.index(level) - 1)]}"
                )
                return LadderDecision(level, self.fanout(level), cost, reason)
        self.decisions["timeout"] = self.decisions.get("timeout", 0) + 1
        return LadderDecision(
            "timeout", 0, 0.0,
            f"budget {remaining_budget:.3g}s below cheapest rung",
        )

    @property
    def degraded_serves(self) -> int:
        """Requests answered below the ``full`` rung (incl. timeouts)."""
        return sum(v for k, v in self.decisions.items() if k != "full")
