"""Robust online serving runtime for continuous-time temporal GNNs.

The training-side framework assumes clean, pre-sorted, deduplicated
datasets; a deployed TGNN faces none of those guarantees.  This package
is the hardened streaming front end that restores them at runtime:

* :mod:`~repro.serve.clock` — the simulated clock every latency decision
  reads (deterministic replay, no wall-clock flakiness);
* :mod:`~repro.serve.events` — the event wire format plus structured
  validation (:class:`RejectReason`);
* :mod:`~repro.serve.ingest` — validation/quarantine, idempotent replay
  dedup, and bounded out-of-order reordering with watermark semantics;
* :mod:`~repro.serve.admission` — token-bucket rate limiting, a bounded
  request queue, and reject-new / drop-oldest load shedding;
* :mod:`~repro.serve.deadline` — per-request deadline budgets and the
  degradation ladder (full → reduced fanout → cache → memory-only);
* :mod:`~repro.serve.commit` — watermarked all-or-nothing state commits
  into ``Memory``/``Mailbox`` with snapshot-rollback, optionally
  write-ahead logged through :mod:`repro.durable` (WAL-then-apply with
  prefix-consistent crash recovery via :func:`recover_serve_state`);
* :mod:`~repro.serve.runtime` — :class:`ServeRuntime`, the loop gluing
  the above into request-in / prediction-out serving;
* :mod:`~repro.serve.replay` — stream synthesis, poisoning, and the
  offered-load replay harness shared by the CLI, tests, and benchmarks.

The load-bearing guarantee is **poisoned-stream equivalence**: for any
stream that adds malformed events, duplicates deliveries, and reorders
arrivals within the configured lateness bound, the final committed
``Memory``/``Mailbox`` state is bit-identical to replaying the clean
stream — and every rejected event is accounted for in quarantine stats.
"""

from .admission import AdmissionController, AdmissionStats, TokenBucket
from .clock import SimClock
from .commit import (
    CommitResult,
    CommitStats,
    StateCommitter,
    recover_serve_state,
    serve_state_arrays,
    stage_updates,
)
from .deadline import LEVELS, CostModel, DegradationLadder, LadderDecision
from .events import EventBatch, RejectReason, validate_events
from .ingest import IngestPipeline, IngestStats, QuarantinedEvent
from .replay import build_stream, poison_stream, replay, split_batches
from .runtime import Request, RequestResult, ServeRuntime

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "TokenBucket",
    "SimClock",
    "CommitResult",
    "CommitStats",
    "StateCommitter",
    "stage_updates",
    "serve_state_arrays",
    "recover_serve_state",
    "CostModel",
    "DegradationLadder",
    "LadderDecision",
    "LEVELS",
    "EventBatch",
    "RejectReason",
    "validate_events",
    "IngestPipeline",
    "IngestStats",
    "QuarantinedEvent",
    "build_stream",
    "poison_stream",
    "replay",
    "split_batches",
    "Request",
    "RequestResult",
    "ServeRuntime",
]
