"""Recurrent cells used by memory-based TGNN models (TGN, JODIE, APAN).

The memory-update function ``mem`` in Eq. (11) of the paper is a GRU cell
for TGN and a vanilla RNN cell for JODIE; both consume a mailbox message as
input and the node's previous memory as hidden state.
"""

from __future__ import annotations

import math

import numpy as np

from ..tensor import Tensor, cat
from . import init
from .module import Module, Parameter

__all__ = ["GRUCell", "RNNCell"]


class GRUCell(Module):
    """Gated recurrent unit cell: ``h' = GRU(x, h)``."""

    def __init__(self, input_size: int, hidden_size: int, bias: bool = True):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        # Gate order follows torch: reset, update, new.
        self.weight_ih = Parameter(np.empty((3 * hidden_size, input_size), dtype=np.float32))
        self.weight_hh = Parameter(np.empty((3 * hidden_size, hidden_size), dtype=np.float32))
        bound = 1.0 / math.sqrt(hidden_size)
        init.uniform_(self.weight_ih, -bound, bound)
        init.uniform_(self.weight_hh, -bound, bound)
        if bias:
            self.bias_ih = Parameter(np.empty((3 * hidden_size,), dtype=np.float32))
            self.bias_hh = Parameter(np.empty((3 * hidden_size,), dtype=np.float32))
            init.uniform_(self.bias_ih, -bound, bound)
            init.uniform_(self.bias_hh, -bound, bound)
        else:
            self.bias_ih = None
            self.bias_hh = None

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        gi = x.matmul(self.weight_ih.T)
        gh = h.matmul(self.weight_hh.T)
        if self.bias_ih is not None:
            gi = gi + self.bias_ih
            gh = gh + self.bias_hh
        n = self.hidden_size
        i_r, i_z, i_n = gi[:, :n], gi[:, n : 2 * n], gi[:, 2 * n :]
        h_r, h_z, h_n = gh[:, :n], gh[:, n : 2 * n], gh[:, 2 * n :]
        reset = (i_r + h_r).sigmoid()
        update = (i_z + h_z).sigmoid()
        new = (i_n + reset * h_n).tanh()
        return new + update * (h - new)


class RNNCell(Module):
    """Vanilla tanh RNN cell: ``h' = tanh(W_ih x + W_hh h + b)``."""

    def __init__(self, input_size: int, hidden_size: int, bias: bool = True):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(np.empty((hidden_size, input_size), dtype=np.float32))
        self.weight_hh = Parameter(np.empty((hidden_size, hidden_size), dtype=np.float32))
        bound = 1.0 / math.sqrt(hidden_size)
        init.uniform_(self.weight_ih, -bound, bound)
        init.uniform_(self.weight_hh, -bound, bound)
        if bias:
            self.bias = Parameter(np.empty((hidden_size,), dtype=np.float32))
            init.uniform_(self.bias, -bound, bound)
        else:
            self.bias = None

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        out = x.matmul(self.weight_ih.T) + h.matmul(self.weight_hh.T)
        if self.bias is not None:
            out = out + self.bias
        return out.tanh()
