"""Core neural layers: Linear, LayerNorm, Dropout, activations, MLP."""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..tensor import Tensor, dropout_mask, zeros
from . import init
from .module import Module, Parameter

__all__ = [
    "Linear",
    "LayerNorm",
    "Dropout",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "LeakyReLU",
    "MLP",
    "Identity",
]


class Linear(Module):
    """Affine transform ``y = x W^T + b`` with Kaiming-uniform init."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(np.empty((out_features, in_features), dtype=np.float32))
        init.kaiming_uniform_(self.weight)
        if bias:
            bound = 1.0 / math.sqrt(in_features) if in_features > 0 else 0.0
            self.bias = Parameter(np.empty((out_features,), dtype=np.float32))
            init.uniform_(self.bias, -bound, bound)
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight.T)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={self.bias is not None})"


class LayerNorm(Module):
    """Layer normalization over the trailing feature dimension."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5, elementwise_affine: bool = True):
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        if elementwise_affine:
            self.weight = Parameter(np.ones((normalized_shape,), dtype=np.float32))
            self.bias = Parameter(np.zeros((normalized_shape,), dtype=np.float32))
        else:
            self.weight = None
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(dim=-1, keepdim=True)
        centered = x - mu
        # Re-center: a near-constant float32 row leaves a mean-rounding
        # residual that 1/sqrt(var + eps) would amplify when var ~ 0.
        centered = centered - centered.mean(dim=-1, keepdim=True)
        var = (centered * centered).mean(dim=-1, keepdim=True)
        normed = centered / (var + self.eps).sqrt()
        if self.weight is not None:
            normed = normed * self.weight + self.bias
        return normed


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        return x * dropout_mask(x.shape, self.p, device=x.device)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class MLP(Module):
    """Two-layer feed-forward network with ReLU, as used in edge predictors."""

    def __init__(self, in_features: int, hidden_features: int, out_features: int, dropout: float = 0.0):
        super().__init__()
        self.fc1 = Linear(in_features, hidden_features)
        self.fc2 = Linear(hidden_features, out_features)
        self.drop = Dropout(dropout)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(self.drop(self.fc1(x).relu()))
