"""The TimeEncode module: Eq. (8) of the paper.

``Phi(dt) = cos(omega * dt + phi)`` maps a scalar time delta to a
``dim``-dimensional vector.  Following TGAT, the frequencies are initialized
to a geometric progression ``1 / 10^(k * alpha)`` spanning several decades,
and the bias starts at zero.  The module is trainable by default but can be
frozen, which is what enables the paper's *time-precomputation* optimization
(precomputed tables stay valid as long as the weights do not change; TGLite
invalidates its tables when training updates them — see
:mod:`repro.core.op.precompute`).
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor
from .module import Module, Parameter

__all__ = ["TimeEncode"]


class TimeEncode(Module):
    """Cosine time encoder with geometric frequency init.

    Args:
        dim: dimensionality of the output time vector.
        trainable: whether omega/phi receive gradients.
    """

    def __init__(self, dim: int, trainable: bool = True):
        super().__init__()
        self.dim = dim
        freqs = 1.0 / (10.0 ** np.linspace(0.0, 9.0, dim, dtype=np.float32))
        self.weight = Parameter(freqs, requires_grad=trainable)
        self.bias = Parameter(np.zeros(dim, dtype=np.float32), requires_grad=trainable)
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic counter bumped whenever the weights change.

        Precomputed-time caches key on this to stay semantically valid.
        """
        return self._version

    def mark_updated(self) -> None:
        """Signal that weight values changed (called after optimizer steps)."""
        self._version += 1

    def forward(self, deltas: Tensor) -> Tensor:
        """Encode time deltas.

        Args:
            deltas: tensor of shape ``(N,)`` or ``(N, 1)`` of time deltas.

        Returns:
            tensor of shape ``(N, dim)``.
        """
        if deltas.ndim == 1:
            deltas = deltas.unsqueeze(1)
        return (deltas * self.weight + self.bias).cos()

    def encode_raw(self, deltas: np.ndarray) -> np.ndarray:
        """Non-autograd fast path for inference-time precomputation."""
        deltas = np.asarray(deltas, dtype=np.float32).reshape(-1, 1)
        return np.cos(deltas * self.weight.data + self.bias.data)
