"""Gradient-descent optimizers (SGD with momentum, Adam)."""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from ..resilience.hooks import poke as _poke
from ..tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer holding a list of parameters."""

    def __init__(self, params: Iterable[Tensor], lr: float):
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def _pre_step(self) -> None:
        """Fault-injection site: gradients may be poisoned here (no-op
        unless a FaultInjector is armed)."""
        _poke("optim.step", optimizer=self)

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params, lr: float, momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._pre_step()
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                vel = self._velocity.get(id(p))
                if vel is None:
                    vel = np.zeros_like(p.data)
                vel = self.momentum * vel + grad
                self._velocity[id(p)] = vel
                grad = vel
            p.data -= self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        params,
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._pre_step()
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m = self._m.get(id(p))
            v = self._v.get(id(p))
            if m is None:
                m = np.zeros_like(p.data)
                v = np.zeros_like(p.data)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
            self._m[id(p)] = m
            self._v[id(p)] = v
            m_hat = m / bc1
            v_hat = v / bc2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
