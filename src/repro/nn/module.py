"""Module system: parameters, submodule registration, train/eval modes.

A intentionally small re-creation of ``torch.nn.Module`` — enough for the
TGNN models in this repo: automatic parameter/submodule discovery through
attribute assignment, recursive ``parameters()``/``named_parameters()``,
``train()``/``eval()`` mode flags, ``state_dict`` round-tripping, and
device movement.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..tensor import Tensor
from ..tensor.device import Device, get_device

__all__ = ["Parameter", "Module", "ModuleList", "Sequential"]


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter of a Module."""

    def __init__(self, data, requires_grad: bool = True, device=None):
        if isinstance(data, Tensor):
            data = data.data
        super().__init__(data, requires_grad=requires_grad, device=device)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.shape}, device='{self.device}')"


class Module:
    """Base class for neural network modules.

    Subclasses define ``forward`` and assign :class:`Parameter` and
    sub-:class:`Module` instances as attributes; both are auto-registered.
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    # ---- attribute-based registration -------------------------------------

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._modules.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, tensor: Optional[Tensor]) -> None:
        """Register a non-trainable tensor that is part of the module state."""
        self._buffers[name] = tensor
        object.__setattr__(self, name, tensor)

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ---- traversal ----------------------------------------------------------

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        for name, buf in self._buffers.items():
            if buf is not None:
                yield (f"{prefix}{name}", buf)
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{name}.")

    # ---- modes ---------------------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ---- gradients & state -----------------------------------------------------

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[name] = buf.data.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        own.update(dict(self.named_buffers()))
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, value in state.items():
            if own[name].data.shape != value.shape:
                raise ValueError(f"shape mismatch for {name}: {own[name].data.shape} vs {value.shape}")
            own[name].data[...] = value

    def to(self, device: Union[str, Device]) -> "Module":
        """Move all parameters and buffers to *device* (in place)."""
        target = get_device(device)
        for _, param in self.named_parameters():
            if param.device is not target:
                moved = param.to(target)
                param.data = moved.data
                object.__setattr__(param, "device", target)
        for module in self.modules():
            for name, buf in list(module._buffers.items()):
                if buf is not None and buf.device is not target:
                    module.register_buffer(name, buf.to(target))
        return self

    # ---- call ------------------------------------------------------------------

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child = ", ".join(self._modules)
        return f"{type(self).__name__}({child})"


class ModuleList(Module):
    """Hold submodules in a list, registering each for parameter discovery."""

    def __init__(self, modules=()):
        super().__init__()
        self._list: List[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self.add_module(str(len(self._list)), module)
        self._list.append(module)
        return self

    def __getitem__(self, idx: int) -> Module:
        return self._list[idx]

    def __len__(self) -> int:
        return len(self._list)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._list)


class Sequential(Module):
    """Chain modules, feeding each output into the next."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._list: List[Module] = []
        for module in modules:
            self.add_module(str(len(self._list)), module)
            self._list.append(module)

    def forward(self, x):
        for module in self._list:
            x = module(x)
        return x

    def __getitem__(self, idx: int) -> Module:
        return self._list[idx]

    def __len__(self) -> int:
        return len(self._list)
