"""Neural-network substrate: modules, layers, cells, losses, optimizers.

Stands in for ``torch.nn`` + ``torch.optim``; also hosts the
:class:`TimeEncode` module that the paper ships under ``tg.nn``.
"""

from . import init
from .layers import (
    MLP,
    Dropout,
    Identity,
    LayerNorm,
    LeakyReLU,
    Linear,
    ReLU,
    Sigmoid,
    Tanh,
)
from .loss import BCEWithLogitsLoss, MSELoss, bce_with_logits
from .module import Module, ModuleList, Parameter, Sequential
from .optim import SGD, Adam, Optimizer
from .rnn import GRUCell, RNNCell
from .time_encode import TimeEncode

__all__ = [
    "init",
    "Module",
    "ModuleList",
    "Sequential",
    "Parameter",
    "Linear",
    "LayerNorm",
    "Dropout",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "LeakyReLU",
    "Identity",
    "MLP",
    "GRUCell",
    "RNNCell",
    "BCEWithLogitsLoss",
    "MSELoss",
    "bce_with_logits",
    "Optimizer",
    "SGD",
    "Adam",
    "TimeEncode",
]
