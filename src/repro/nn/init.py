"""Parameter initialization schemes (Xavier/Kaiming/constant)."""

from __future__ import annotations

import math

import numpy as np

from ..tensor import Tensor
from ..tensor.random import default_generator

__all__ = [
    "zeros_",
    "ones_",
    "constant_",
    "uniform_",
    "normal_",
    "xavier_uniform_",
    "xavier_normal_",
    "kaiming_uniform_",
]


def _fan_in_out(tensor: Tensor):
    shape = tensor.shape
    if len(shape) < 2:
        fan_in = fan_out = shape[0] if shape else 1
    else:
        receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    return fan_in, fan_out


def zeros_(tensor: Tensor) -> Tensor:
    tensor.data[...] = 0.0
    return tensor


def ones_(tensor: Tensor) -> Tensor:
    tensor.data[...] = 1.0
    return tensor


def constant_(tensor: Tensor, value: float) -> Tensor:
    tensor.data[...] = value
    return tensor


def uniform_(tensor: Tensor, low: float = 0.0, high: float = 1.0) -> Tensor:
    rng = default_generator()
    tensor.data[...] = rng.uniform(low, high, size=tensor.shape).astype(tensor.dtype)
    return tensor


def normal_(tensor: Tensor, mean: float = 0.0, std: float = 1.0) -> Tensor:
    rng = default_generator()
    tensor.data[...] = (mean + std * rng.standard_normal(tensor.shape)).astype(tensor.dtype)
    return tensor


def xavier_uniform_(tensor: Tensor, gain: float = 1.0) -> Tensor:
    fan_in, fan_out = _fan_in_out(tensor)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return uniform_(tensor, -bound, bound)


def xavier_normal_(tensor: Tensor, gain: float = 1.0) -> Tensor:
    fan_in, fan_out = _fan_in_out(tensor)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return normal_(tensor, 0.0, std)


def kaiming_uniform_(tensor: Tensor, a: float = math.sqrt(5)) -> Tensor:
    fan_in, _ = _fan_in_out(tensor)
    gain = math.sqrt(2.0 / (1 + a * a))
    bound = gain * math.sqrt(3.0 / fan_in)
    return uniform_(tensor, -bound, bound)
