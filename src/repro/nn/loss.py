"""Loss functions for link-prediction training."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor
from .module import Module

__all__ = ["BCEWithLogitsLoss", "MSELoss", "bce_with_logits"]


def bce_with_logits(logits: Tensor, targets: Tensor, reduction: str = "mean") -> Tensor:
    """Numerically-stable binary cross entropy on raw logits.

    Uses the identity ``max(x, 0) - x*y + log(1 + exp(-|x|))``.
    """
    zeros_clamped = logits.clamp(min=0.0)
    loss = zeros_clamped - logits * targets + (1.0 + (-logits.abs()).exp()).log()
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    if reduction == "none":
        return loss
    raise ValueError(f"unknown reduction: {reduction!r}")


class BCEWithLogitsLoss(Module):
    """Module wrapper over :func:`bce_with_logits`."""

    def __init__(self, reduction: str = "mean"):
        super().__init__()
        self.reduction = reduction

    def forward(self, logits: Tensor, targets: Tensor) -> Tensor:
        return bce_with_logits(logits, targets, reduction=self.reduction)


class MSELoss(Module):
    def __init__(self, reduction: str = "mean"):
        super().__init__()
        self.reduction = reduction

    def forward(self, pred: Tensor, target: Tensor) -> Tensor:
        diff = pred - target
        loss = diff * diff
        if self.reduction == "mean":
            return loss.mean()
        if self.reduction == "sum":
            return loss.sum()
        return loss
