"""Deterministic, seedable fault injection.

A :class:`FaultInjector` simulates the fault classes a production
temporal-GNN trainer must survive — transient kernel exceptions, cache
corruption, NaN gradients, crashed/straggling data-parallel workers,
checkpoint writes killed mid-flight, and hard process kills — by
answering :func:`repro.resilience.hooks.poke` calls placed at the
corresponding production code sites.

Two properties make injected runs reproducible and recoverable:

* **Determinism** — whether a fault fires at stream position
  ``(epoch, batch)`` is a pure function of ``(seed, site, epoch, batch)``
  (a splitmix64 hash compared against the site's rate) or an explicit
  schedule.  Two injectors with the same seed and configuration fire
  identically; retries and rollback-replays do not perturb the pattern
  because no RNG stream is consumed.
* **Transience** — each fault fires at most once per injector instance
  per ``(site, epoch, batch[, replica])``, so a retried batch or a
  replayed stream segment passes.  This is the recoverable half of the
  fault model; see DESIGN.md for what counts as fatal.

Use as a context manager to install the hooks::

    inj = FaultInjector(seed=3, kernel_fault_rate=0.05,
                        nan_grad_batches={(0, 4)})
    with inj:
        trainer.train(...)
    print(inj.log)          # every fault that actually fired
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

import numpy as np

from . import hooks
from .errors import CheckpointWriteAborted, SimulatedProcessKill, TransientKernelError

__all__ = ["DECISIONS", "FaultEvent", "FaultInjector"]

#: Every fault decision the injector can make, mapped to the
#: :data:`repro.resilience.hooks.SITES` entry it fires at.  A site like
#: ``disk.write`` multiplexes several corruption kinds, so decisions are
#: the finer-grained vocabulary; configuration (constructor kwargs plus
#: the generic ``rates=``/``schedules=`` dicts) is validated against this
#: map at construction time.
DECISIONS: Dict[str, str] = {
    "kernel.sample": "kernel.sample",
    "kernel.cache": "kernel.cache",
    "cache.corrupt": "cache.corrupt",
    "nan_grad": "optim.step",
    "worker.crash": "worker.crash",
    "worker.straggler": "worker.straggler",
    "checkpoint.kill": "checkpoint.kill",
    "process.kill": "trainer.batch",
    "serve.ingest": "serve.ingest",
    "serve.commit": "serve.commit",
    "serve.poison": "serve.poison",
    "disk.write.torn": "disk.write",
    "disk.write.flip": "disk.write",
    "disk.write.dup": "disk.write",
    "disk.fsync.lost": "disk.fsync",
    "disk.read.flip": "disk.read",
    "rpc.send.drop": "rpc.send",
    "rpc.recv.drop": "rpc.recv",
    "shard.crash": "shard.crash",
    "shard.stall": "shard.stall",
    "heartbeat.drop": "heartbeat.drop",
    "repl.ship.drop": "repl.ship",
    "repl.ack.drop": "repl.ack",
    "repl.promote.delay": "repl.promote",
    "mem.flip": "mem.flip",
    "scrub.skip": "scrub.skip",
}

_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """One splitmix64 round (pure-python, 64-bit wrapping)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _hash_decision(seed: int, site: str, epoch: int, batch: int, extra: int) -> float:
    """Deterministic uniform in [0, 1) for one (site, position) decision."""
    h = _splitmix64(seed & _MASK64)
    for token in site.encode():
        h = _splitmix64(h ^ token)
    h = _splitmix64(h ^ (epoch & _MASK64))
    h = _splitmix64(h ^ (batch & _MASK64))
    h = _splitmix64(h ^ (extra & _MASK64))
    return h / float(1 << 64)


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired."""

    site: str
    epoch: int
    batch: int
    detail: str = ""


class FaultInjector:
    """Deterministic fault source consulted by the production hook sites.

    Faults are configured either by *rate* (probability per batch, decided
    by a seed-keyed hash of the stream position — no RNG state, so replays
    are stable) or by explicit *schedules* of stream positions.

    Args:
        seed: keys every rate-based decision.
        kernel_fault_rate: per-batch probability of a transient sampling
            kernel exception (site ``kernel.sample``).
        kernel_fault_batches: explicit ``(epoch, batch)`` positions for
            sampling-kernel faults (unioned with the rate).
        cache_fault_rate: per-batch probability of a transient embedding
            cache kernel exception (site ``kernel.cache``).
        cache_fault_batches: explicit positions for cache-kernel faults.
        cache_corrupt_batches: positions at which a stored cache row is
            silently overwritten with NaN (caught by state validation).
        nan_grad_rate: per-batch probability that gradients turn NaN just
            before the optimizer step (site ``optim.step``).
        nan_grad_batches: explicit positions for NaN gradients.
        worker_crash_rate: per-(batch, replica) probability that a
            data-parallel replica crashes before its shard runs; at least
            one replica always survives.
        worker_crashes: explicit ``(epoch, batch, replica)`` crash triples.
        straggler_rate: per-(batch, replica) probability that a replica
            straggles (its simulated shard time is multiplied).
        straggler_factor: slowdown multiplier for stragglers.
        checkpoint_kill_batches: positions whose checkpoint write is
            killed mid-flight (tmp file truncated, write aborted).
        process_kill_at: optional ``(epoch, batch)`` at which the whole
            training process is hard-killed (``SimulatedProcessKill``).
        serve_ingest_fault_rate: per-ingest-batch probability of a
            transient fault inside the serving ingestion pipeline (site
            ``serve.ingest``; the serve runtime advances the cursor to
            ``(0, batch_seq)`` per ingest batch).
        serve_ingest_fault_batches: explicit positions for ingest faults.
        serve_commit_fault_rate: per-commit probability of a transient
            fault mid state-commit, after partial application (site
            ``serve.commit``; exercises snapshot rollback).
        serve_commit_fault_batches: explicit positions for commit faults.
        serve_poison_batches: positions at which the in-flight commit
            payload is silently corrupted with NaN (site ``serve.poison``;
            caught by post-commit validation, which rolls back and
            quarantines the batch).
        disk_torn_write_batches: positions at which a write-ahead-log
            record append is torn — only a deterministic byte prefix
            reaches the file before a :class:`SimulatedDiskCrash`
            (site ``disk.write``).
        disk_torn_write_rate: per-position probability of a torn write.
        disk_flip_write_batches: positions at which one bit of an
            appended WAL record is silently flipped on the way to disk
            (no crash; caught by per-record CRC on replay).
        disk_dup_write_batches: positions at which an appended WAL record
            is written twice (duplicated tail; replay must deduplicate).
        disk_lost_fsync_batches: positions at which a WAL fsync is lost:
            bytes buffered since the last durable fsync are dropped and a
            :class:`SimulatedDiskCrash` follows (site ``disk.fsync``).
        disk_flip_read_batches: positions at which one bit of a WAL
            record is flipped while *reading* it back (site ``disk.read``;
            models media corruption discovered at recovery).
        disk_flip_read_rate: per-position probability of a read flip.
        rpc_send_drop_rate / rpc_recv_drop_rate: per-attempt probability
            that a cluster RPC request / reply leg is dropped on the wire
            (sites ``rpc.send`` / ``rpc.recv``; the channel retries and
            hedges around the loss — a dropped reply still executed).
        shard_crash_rate / shard_crashes: probability (or explicit
            ``(epoch, batch)`` / ``(epoch, batch, shard)`` positions) at
            which a serving shard's process dies between requests (site
            ``shard.crash``; triggers heartbeat failover + WAL replay).
        shard_stall_rate / shard_stalls: probability (or positions) at
            which a shard enters a stall window multiplying its RPC
            service time by ``shard_stall_factor`` (site ``shard.stall``).
        shard_stall_factor: slowdown multiplier for stalled shards.
        heartbeat_drop_rate / heartbeat_drops: probability (or positions)
            at which one shard heartbeat is lost (site ``heartbeat.drop``;
            enough accumulated losses make the detector declare a live
            shard dead — a spurious failover the cluster must absorb).
        repl_ship_drop_rate / repl_ship_drops: probability (or positions)
            at which the log-shipping leg from a replica-group primary to
            one follower is dropped (site ``repl.ship``; the record parks
            in that follower's in-order queue and is redelivered).
        repl_ack_drop_rate / repl_ack_drops: probability (or positions)
            at which a follower's append acknowledgement is lost on the
            way back (site ``repl.ack``; the follower *did* append — the
            commit may fall under quorum without ever diverging).
        repl_promote_delay_rate / repl_promote_delays: probability (or
            positions) at which one promotion attempt is delayed by a
            tick (site ``repl.promote``; the supervisor retries, bounding
            the window in which reads fail over to followers).
        mem_flip_rate / mem_flips: probability (or explicit
            ``(epoch, batch)`` / ``(epoch, batch, extra)`` positions,
            ``extra = shard + num_shards * member``) at which one bit of
            a replica member's live state flips *outside* the write path
            (site ``mem.flip``; only the integrity scrubber can catch
            it).  Which state rots is picked by ``mem_flip_tier``.
        mem_flip_tier: what a ``mem.flip`` corrupts — ``"memory"``
            (node-memory table), ``"mailbox"``, ``"wal"`` (a durable
            segment's on-disk bytes), or ``"cold"`` (feature-store cold
            rows).
        scrub_skip_rate / scrub_skips: probability per scrub cycle (or
            explicit cycle numbers) at which one due anti-entropy scrub
            cycle is suppressed (site ``scrub.skip``; widens the window
            a flipped bit can sit undetected, exercising read-repair).
        rates: extra ``{decision name: probability}`` entries (see
            :data:`DECISIONS`); unknown names raise ``ValueError``.
        schedules: extra ``{decision name: positions}`` entries; unknown
            names raise ``ValueError``.
        transient: if True (default), each fault fires at most once per
            position so retries/replays succeed; if False, faults fire on
            every encounter (for testing retry exhaustion).
    """

    def __init__(
        self,
        seed: int = 0,
        kernel_fault_rate: float = 0.0,
        kernel_fault_batches: Iterable[Tuple[int, int]] = (),
        cache_fault_rate: float = 0.0,
        cache_fault_batches: Iterable[Tuple[int, int]] = (),
        cache_corrupt_batches: Iterable[Tuple[int, int]] = (),
        nan_grad_rate: float = 0.0,
        nan_grad_batches: Iterable[Tuple[int, int]] = (),
        worker_crash_rate: float = 0.0,
        worker_crashes: Iterable[Tuple[int, int, int]] = (),
        straggler_rate: float = 0.0,
        straggler_factor: float = 3.0,
        checkpoint_kill_batches: Iterable[Tuple[int, int]] = (),
        process_kill_at: Optional[Tuple[int, int]] = None,
        serve_ingest_fault_rate: float = 0.0,
        serve_ingest_fault_batches: Iterable[Tuple[int, int]] = (),
        serve_commit_fault_rate: float = 0.0,
        serve_commit_fault_batches: Iterable[Tuple[int, int]] = (),
        serve_poison_batches: Iterable[Tuple[int, int]] = (),
        disk_torn_write_batches: Iterable[Tuple[int, int]] = (),
        disk_torn_write_rate: float = 0.0,
        disk_flip_write_batches: Iterable[Tuple[int, int]] = (),
        disk_dup_write_batches: Iterable[Tuple[int, int]] = (),
        disk_lost_fsync_batches: Iterable[Tuple[int, int]] = (),
        disk_flip_read_batches: Iterable[Tuple[int, int]] = (),
        disk_flip_read_rate: float = 0.0,
        rpc_send_drop_rate: float = 0.0,
        rpc_recv_drop_rate: float = 0.0,
        shard_crash_rate: float = 0.0,
        shard_crashes: Iterable[Tuple[int, ...]] = (),
        shard_stall_rate: float = 0.0,
        shard_stalls: Iterable[Tuple[int, ...]] = (),
        shard_stall_factor: float = 8.0,
        heartbeat_drop_rate: float = 0.0,
        heartbeat_drops: Iterable[Tuple[int, ...]] = (),
        repl_ship_drop_rate: float = 0.0,
        repl_ship_drops: Iterable[Tuple[int, ...]] = (),
        repl_ack_drop_rate: float = 0.0,
        repl_ack_drops: Iterable[Tuple[int, ...]] = (),
        repl_promote_delay_rate: float = 0.0,
        repl_promote_delays: Iterable[Tuple[int, ...]] = (),
        mem_flip_rate: float = 0.0,
        mem_flips: Iterable[Tuple[int, ...]] = (),
        mem_flip_tier: str = "memory",
        scrub_skip_rate: float = 0.0,
        scrub_skips: Iterable[int] = (),
        rates: Optional[Dict[str, float]] = None,
        schedules: Optional[Dict[str, Iterable[Tuple[int, ...]]]] = None,
        transient: bool = True,
    ):
        self.seed = int(seed)
        self.rates: Dict[str, float] = {
            "kernel.sample": float(kernel_fault_rate),
            "kernel.cache": float(cache_fault_rate),
            "nan_grad": float(nan_grad_rate),
            "worker.crash": float(worker_crash_rate),
            "worker.straggler": float(straggler_rate),
            "serve.ingest": float(serve_ingest_fault_rate),
            "serve.commit": float(serve_commit_fault_rate),
            "disk.write.torn": float(disk_torn_write_rate),
            "disk.read.flip": float(disk_flip_read_rate),
            "rpc.send.drop": float(rpc_send_drop_rate),
            "rpc.recv.drop": float(rpc_recv_drop_rate),
            "shard.crash": float(shard_crash_rate),
            "shard.stall": float(shard_stall_rate),
            "heartbeat.drop": float(heartbeat_drop_rate),
            "repl.ship.drop": float(repl_ship_drop_rate),
            "repl.ack.drop": float(repl_ack_drop_rate),
            "repl.promote.delay": float(repl_promote_delay_rate),
            "mem.flip": float(mem_flip_rate),
            "scrub.skip": float(scrub_skip_rate),
        }
        self.schedules: Dict[str, Set[Tuple[int, ...]]] = {
            "kernel.sample": {tuple(p) for p in kernel_fault_batches},
            "kernel.cache": {tuple(p) for p in cache_fault_batches},
            "cache.corrupt": {tuple(p) for p in cache_corrupt_batches},
            "nan_grad": {tuple(p) for p in nan_grad_batches},
            "worker.crash": {tuple(p) for p in worker_crashes},
            "checkpoint.kill": {tuple(p) for p in checkpoint_kill_batches},
            "serve.ingest": {tuple(p) for p in serve_ingest_fault_batches},
            "serve.commit": {tuple(p) for p in serve_commit_fault_batches},
            "serve.poison": {tuple(p) for p in serve_poison_batches},
            "disk.write.torn": {tuple(p) for p in disk_torn_write_batches},
            "disk.write.flip": {tuple(p) for p in disk_flip_write_batches},
            "disk.write.dup": {tuple(p) for p in disk_dup_write_batches},
            "disk.fsync.lost": {tuple(p) for p in disk_lost_fsync_batches},
            "disk.read.flip": {tuple(p) for p in disk_flip_read_batches},
            "shard.crash": {tuple(p) for p in shard_crashes},
            "shard.stall": {tuple(p) for p in shard_stalls},
            "heartbeat.drop": {tuple(p) for p in heartbeat_drops},
            "repl.ship.drop": {tuple(p) for p in repl_ship_drops},
            "repl.ack.drop": {tuple(p) for p in repl_ack_drops},
            "repl.promote.delay": {tuple(p) for p in repl_promote_delays},
            "mem.flip": {tuple(p) for p in mem_flips},
        }
        for name, rate in (rates or {}).items():
            self._check_decision(name)
            self.rates[name] = float(rate)
        for name, positions in (schedules or {}).items():
            self._check_decision(name)
            self.schedules.setdefault(name, set()).update(
                tuple(p) for p in positions
            )
        for name in list(self.rates) + list(self.schedules):
            self._check_decision(name)
        if mem_flip_tier not in ("memory", "mailbox", "wal", "cold"):
            raise ValueError(
                f"mem_flip_tier {mem_flip_tier!r} not one of "
                "'memory', 'mailbox', 'wal', 'cold'"
            )
        self.mem_flip_tier = mem_flip_tier
        self.scrub_skips: Set[int] = {int(c) for c in scrub_skips}
        self.straggler_factor = float(straggler_factor)
        self.shard_stall_factor = float(shard_stall_factor)
        self.process_kill_at = tuple(process_kill_at) if process_kill_at else None
        self.transient = transient
        self.epoch = 0
        self.batch = 0
        #: every fault that actually fired, in order.
        self.log: list = []
        self._fired: Set[Tuple] = set()

    # ---- lifecycle --------------------------------------------------------------

    def __enter__(self) -> "FaultInjector":
        hooks.install(self)
        return self

    def __exit__(self, *exc) -> None:
        hooks.uninstall(self)

    def advance(self, epoch: int, batch: int) -> None:
        """Move the stream cursor (called by the trainer at each batch)."""
        self.epoch = int(epoch)
        self.batch = int(batch)

    @staticmethod
    def _check_decision(name: str) -> None:
        """Reject configuration naming an unknown fault decision/site."""
        if name not in DECISIONS:
            known = ", ".join(sorted(DECISIONS))
            raise ValueError(
                f"unknown fault decision {name!r}: it maps to no injection "
                f"site and would silently never fire (known: {known})"
            )
        site = DECISIONS[name]
        if site not in hooks.SITES:
            raise ValueError(
                f"fault decision {name!r} maps to site {site!r} which is "
                "missing from repro.resilience.hooks.SITES (registry drift)"
            )

    # ---- decisions --------------------------------------------------------------

    def would_fire(self, site: str, epoch: int, batch: int, extra: int = 0) -> bool:
        """Pure decision function: does *site* fault at this position?

        Ignores the once-per-position transience bookkeeping — this is
        the underlying deterministic pattern.
        """
        if (epoch, batch) in self.schedules.get(site, ()):
            return True
        if (epoch, batch, extra) in self.schedules.get(site, ()):
            return True
        rate = self.rates.get(site, 0.0)
        return rate > 0.0 and _hash_decision(self.seed, site, epoch, batch, extra) < rate

    def _fires(self, site: str, extra: int = 0, detail: str = "") -> bool:
        """Decide + record one (possibly transient) fault at the cursor."""
        if not self.would_fire(site, self.epoch, self.batch, extra):
            return False
        key = (site, self.epoch, self.batch, extra)
        if self.transient and key in self._fired:
            return False
        self._fired.add(key)
        self.log.append(FaultEvent(site, self.epoch, self.batch, detail))
        return True

    # ---- site handlers ----------------------------------------------------------

    def poke(self, site: str, **info):
        if site == "kernel.sample":
            if self._fires("kernel.sample"):
                raise TransientKernelError(
                    f"injected transient sampling-kernel fault at "
                    f"(epoch {self.epoch}, batch {self.batch})",
                    site="kernel.sample",
                )
        elif site == "kernel.cache":
            if self._fires("kernel.cache"):
                raise TransientKernelError(
                    f"injected transient cache-kernel fault at "
                    f"(epoch {self.epoch}, batch {self.batch})",
                    site="kernel.cache",
                )
        elif site == "cache.corrupt":
            cache = info.get("cache")
            if cache is not None and self._fires("cache.corrupt"):
                self._corrupt_cache(cache)
        elif site == "serve.ingest":
            if self._fires("serve.ingest"):
                raise TransientKernelError(
                    f"injected transient ingestion fault at "
                    f"(epoch {self.epoch}, batch {self.batch})",
                    site="serve.ingest",
                )
        elif site == "serve.commit":
            if self._fires("serve.commit"):
                raise TransientKernelError(
                    f"injected transient state-commit fault at "
                    f"(epoch {self.epoch}, batch {self.batch})",
                    site="serve.commit",
                )
        elif site == "serve.poison":
            values = info.get("values")
            if values is not None and len(values) and self._fires("serve.poison"):
                # Corrupt a full column so the poison survives any
                # last-event-wins coalescing of duplicate rows.
                values[..., 0] = np.nan
        elif site == "disk.write":
            return self._disk_write_directive(
                int(info.get("size", 0)), str(info.get("path", ""))
            )
        elif site == "disk.fsync":
            if self._fires("disk.fsync.lost", detail=str(info.get("path", ""))):
                return ("lost",)
        elif site == "disk.read":
            size = int(info.get("size", 0))
            if size > 0 and self._fires(
                "disk.read.flip", detail=str(info.get("path", ""))
            ):
                return ("flip",) + self._flip_position("disk.read.flip", size)
        elif site == "rpc.send":
            if self._fires(
                "rpc.send.drop", extra=int(info.get("extra", 0)),
                detail=f"shard {info.get('shard')}",
            ):
                return ("drop",)
        elif site == "rpc.recv":
            if self._fires(
                "rpc.recv.drop", extra=int(info.get("extra", 0)),
                detail=f"shard {info.get('shard')}",
            ):
                return ("drop",)
        elif site == "shard.crash":
            shard = int(info.get("shard", 0))
            # The decision key is the caller's `extra` (shard + num_shards
            # * member under replication) so a scheduled kill can target
            # one specific group member; factor-1 callers pass extra=shard.
            extra = int(info.get("extra", shard))
            if self._fires("shard.crash", extra=extra, detail=f"shard {shard}"):
                return True
        elif site == "shard.stall":
            shard = int(info.get("shard", 0))
            extra = int(info.get("extra", shard))
            if self._fires("shard.stall", extra=extra, detail=f"shard {shard}"):
                return self.shard_stall_factor
        elif site == "repl.ship":
            if self._fires(
                "repl.ship.drop", extra=int(info.get("extra", 0)),
                detail=f"shard {info.get('shard')} member {info.get('member')}",
            ):
                return ("drop",)
        elif site == "repl.ack":
            if self._fires(
                "repl.ack.drop", extra=int(info.get("extra", 0)),
                detail=f"shard {info.get('shard')} member {info.get('member')}",
            ):
                return ("drop",)
        elif site == "repl.promote":
            if self._fires(
                "repl.promote.delay", extra=int(info.get("extra", 0)),
                detail=f"shard {info.get('shard')}",
            ):
                return True
        elif site == "mem.flip":
            # Decision key is the caller's `extra` (shard + num_shards *
            # member) so a scheduled flip targets one group member; the
            # caller mods the byte index by the actual state size.
            extra = int(info.get("extra", 0))
            if self._fires(
                "mem.flip", extra=extra,
                detail=f"tier {self.mem_flip_tier} extra {extra}",
            ):
                return ("flip", self.mem_flip_tier) + self._flip_position(
                    "mem.flip", 1 << 30
                )
        elif site == "scrub.skip":
            # Keyed by scrub cycle, not the stream cursor: the scrubber
            # runs on its own cadence and a schedule of cycle numbers
            # must hit regardless of which batch is in flight.
            cycle = int(info.get("cycle", 0))
            rate = self.rates.get("scrub.skip", 0.0)
            hit = cycle in self.scrub_skips or (
                rate > 0.0
                and _hash_decision(self.seed, "scrub.skip", 0, cycle, 0) < rate
            )
            if hit:
                key = ("scrub.skip", 0, cycle, 0)
                if not (self.transient and key in self._fired):
                    self._fired.add(key)
                    self.log.append(
                        FaultEvent(
                            "scrub.skip", self.epoch, self.batch,
                            f"cycle {cycle}",
                        )
                    )
                    return True
        elif site == "heartbeat.drop":
            if self._fires(
                "heartbeat.drop", extra=int(info.get("extra", 0)),
                detail=f"shard {info.get('shard')}",
            ):
                return True
        elif site == "optim.step":
            optimizer = info.get("optimizer")
            if optimizer is not None and self._fires("nan_grad"):
                self._poison_gradients(optimizer)
        elif site == "worker.crash":
            return self._crashed_replicas(int(info.get("num_replicas", 1)))
        elif site == "worker.straggler":
            return self._stragglers(int(info.get("num_replicas", 1)))
        elif site == "checkpoint.kill":
            if self._fires("checkpoint.kill", detail=str(info.get("path", ""))):
                self._kill_checkpoint_write(info.get("path"))
        elif site == "trainer.batch":
            if self.process_kill_at == (self.epoch, self.batch):
                key = ("process.kill", self.epoch, self.batch, 0)
                if not (self.transient and key in self._fired):
                    self._fired.add(key)
                    self.log.append(FaultEvent("process.kill", self.epoch, self.batch))
                    raise SimulatedProcessKill(
                        f"simulated process kill at (epoch {self.epoch}, batch {self.batch})",
                        epoch=self.epoch,
                        batch=self.batch,
                    )
        return None

    # ---- fault effects ----------------------------------------------------------

    def _flip_position(self, decision: str, size: int) -> Tuple[int, int]:
        """Deterministic (byte index, bit index) for a one-bit flip."""
        u = _hash_decision(self.seed, decision + "#byte", self.epoch, self.batch, 1)
        v = _hash_decision(self.seed, decision + "#bit", self.epoch, self.batch, 2)
        return min(int(u * size), size - 1), min(int(v * 8), 7)

    def _disk_write_directive(self, size: int, path: str):
        """Decide how (whether) to corrupt one WAL record append.

        Returns ``None`` (write cleanly), ``("torn", nbytes)`` (write only
        a prefix then crash), ``("flip", byte, bit)`` (silent one-bit
        corruption), or ``("dup",)`` (write the record twice).
        """
        if size <= 0:
            return None
        if self._fires("disk.write.torn", detail=path):
            u = _hash_decision(
                self.seed, "disk.write.torn#offset", self.epoch, self.batch, 1
            )
            # Always lose at least the final byte, or the write isn't torn.
            return ("torn", min(int(u * size), size - 1))
        if self._fires("disk.write.flip", detail=path):
            return ("flip",) + self._flip_position("disk.write.flip", size)
        if self._fires("disk.write.dup", detail=path):
            return ("dup",)
        return None

    @staticmethod
    def _corrupt_cache(cache) -> None:
        """Overwrite one resident cache row with NaN (silent corruption)."""
        values = getattr(cache, "_values", None)
        nslots = getattr(cache, "_nslots", 0)
        if values is not None and nslots > 0:
            values[0, :] = np.nan

    @staticmethod
    def _poison_gradients(optimizer) -> None:
        """Turn the first live gradient into NaN, as a bad kernel would."""
        for p in optimizer.params:
            if p.grad is not None:
                grad = np.asarray(p.grad, dtype=np.float64).copy()
                grad[...] = np.nan
                p.grad = grad.astype(p.data.dtype, copy=False)
                return

    def _crashed_replicas(self, num_replicas: int) -> FrozenSet[int]:
        crashed = set()
        for replica in range(num_replicas):
            if len(crashed) >= num_replicas - 1:
                break  # at least one survivor, always
            if self._fires("worker.crash", extra=replica, detail=f"replica {replica}"):
                crashed.add(replica)
        return frozenset(crashed)

    def _stragglers(self, num_replicas: int) -> Dict[int, float]:
        factors: Dict[int, float] = {}
        for replica in range(num_replicas):
            if self._fires("worker.straggler", extra=replica, detail=f"replica {replica}"):
                factors[replica] = self.straggler_factor
        return factors

    @staticmethod
    def _kill_checkpoint_write(tmp_path) -> None:
        """Truncate the half-written tmp file and abort before the rename."""
        if tmp_path and os.path.exists(tmp_path):
            size = os.path.getsize(tmp_path)
            with open(tmp_path, "r+b") as fh:
                fh.truncate(max(1, size // 2))
        raise CheckpointWriteAborted(
            f"checkpoint write killed mid-flight (tmp file {tmp_path!r} truncated)"
        )

    def __repr__(self) -> str:
        active = {k: v for k, v in self.rates.items() if v} or {
            k: sorted(v) for k, v in self.schedules.items() if v
        }
        return f"FaultInjector(seed={self.seed}, {active})"
