"""State-invariant validation for the training runtime.

A fault-tolerant trainer must never checkpoint (or keep training on)
corrupted state.  :func:`validate_state` sweeps every stateful component
hanging off a :class:`~repro.core.graph.TGraph` /
:class:`~repro.core.context.TContext` pair and returns a list of
human-readable violations (empty = healthy):

* **Memory** — finite vectors, finite non-negative last-update times that
  never exceed the stream horizon (times are monotone under the update
  protocol, so the horizon bound is the checkable invariant).
* **Mailbox** — finite mail/delivery times, ring cursors in ``[0, slots)``.
* **Temporal CSR** — monotone ``indptr`` matching the buffer lengths,
  node/edge ids in range, per-node edge times ascending.
* **Kernel cache tables** — each per-layer
  :class:`~repro.core.kernels.cache.NodeTimeCache` self-checks (finite
  rows, cursor in range, hash-table/slot agreement).

The trainer runs this at checkpoint boundaries (a violation vetoes the
checkpoint and triggers rollback); :func:`assert_valid_state` is the
on-demand form that raises :class:`StateValidationError`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .errors import StateValidationError

__all__ = ["validate_state", "assert_valid_state"]


def _check_csr(g, out: List[str]) -> None:
    csr = g.csr()
    indptr = csr.indptr
    if len(indptr) != g.num_nodes + 1:
        out.append(f"csr: indptr length {len(indptr)} != num_nodes+1 {g.num_nodes + 1}")
        return
    if len(indptr) and indptr[0] != 0:
        out.append("csr: indptr does not start at 0")
    if np.any(np.diff(indptr) < 0):
        out.append("csr: indptr is not non-decreasing")
        return
    total = int(indptr[-1]) if len(indptr) else 0
    if total != len(csr.indices) or total != len(csr.eids) or total != len(csr.etimes):
        out.append(
            f"csr: indptr total {total} disagrees with buffer lengths "
            f"({len(csr.indices)}, {len(csr.eids)}, {len(csr.etimes)})"
        )
        return
    if total:
        if csr.indices.min() < 0 or csr.indices.max() >= g.num_nodes:
            out.append("csr: neighbor node id out of range")
        if csr.eids.min() < 0 or csr.eids.max() >= g.num_edges:
            out.append("csr: edge id out of range")
        if not np.isfinite(csr.etimes).all():
            out.append("csr: non-finite edge times")
        elif total > 1:
            # Ascending edge times within each node segment: ignore the
            # diffs that straddle a segment boundary.
            diffs = np.diff(csr.etimes)
            boundary = indptr[1:-1] - 1
            keep = np.ones(total - 1, dtype=bool)
            keep[boundary[(boundary >= 0) & (boundary < total - 1)]] = False
            if np.any(diffs[keep] < 0):
                out.append("csr: per-node edge times are not ascending")


def _check_caches(ctx, out: List[str]) -> None:
    for layer, cache in getattr(ctx, "_embed_caches", {}).items():
        validator = getattr(cache, "validate", None)
        if validator is None:
            continue
        for violation in validator():
            out.append(f"cache[layer {layer}]: {violation}")


def validate_state(g, ctx: Optional[object] = None) -> List[str]:
    """Check all runtime state invariants; return violations (empty = ok).

    Args:
        g: the :class:`~repro.core.graph.TGraph` whose attached state
            (memory, mailbox, temporal CSR) is validated.
        ctx: optional :class:`~repro.core.context.TContext`; when given,
            its kernel cache tables are validated too.  Defaults to
            ``g.ctx`` when the graph carries a context back-reference.
    """
    out: List[str] = []
    max_time = float(g.max_time) if g.num_edges else None
    if g.mem is not None:
        out.extend(f"memory: {v}" for v in g.mem.validate(max_time=max_time))
    if g.mailbox is not None:
        out.extend(f"mailbox: {v}" for v in g.mailbox.validate())
    _check_csr(g, out)
    if ctx is None:
        ctx = getattr(g, "ctx", None)
    if ctx is not None:
        _check_caches(ctx, out)
    return out


def assert_valid_state(g, ctx: Optional[object] = None) -> None:
    """Raise :class:`StateValidationError` if any invariant is violated."""
    violations = validate_state(g, ctx)
    if violations:
        raise StateValidationError(violations)
