"""Fault tolerance for the training runtime.

This package provides the pieces a production deployment needs to survive
the faults the paper's evaluation assumes away:

* :class:`FaultInjector` — deterministic, seedable fault injection
  (transient kernel exceptions, cache corruption, NaN gradients, worker
  crashes/stragglers, killed checkpoint writes, hard process kills),
  installed as a context manager over hook points in ``core.kernels``,
  ``nn.optim``, ``distributed.data_parallel``, and the checkpoint writer.
* :func:`validate_state` / :func:`assert_valid_state` — state-invariant
  validation over memory, mailbox, temporal CSR, and kernel cache tables.
* the exception taxonomy in :mod:`repro.resilience.errors` separating
  transient (retry / rollback) from fatal faults.

The recovery loop itself lives in
:class:`repro.bench.resilient.ResilientTrainer`, which combines these
with atomic checkpoints (RNG state + stream cursor) for bit-exact
retry/rollback/resume.
"""

from .errors import (
    CheckpointWriteAborted,
    DivergenceError,
    SimulatedDiskCrash,
    SimulatedProcessKill,
    StateValidationError,
    TransientKernelError,
)
from .faults import DECISIONS, FaultEvent, FaultInjector
from .hooks import SITES
from .validate import assert_valid_state, validate_state

__all__ = [
    "CheckpointWriteAborted",
    "DivergenceError",
    "SimulatedDiskCrash",
    "SimulatedProcessKill",
    "StateValidationError",
    "TransientKernelError",
    "DECISIONS",
    "SITES",
    "FaultEvent",
    "FaultInjector",
    "assert_valid_state",
    "validate_state",
]
