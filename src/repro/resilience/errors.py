"""Exception taxonomy of the fault model.

The resilience runtime distinguishes **transient** faults — safe to retry
or roll back from — from **fatal** ones that must surface to the caller:

* transient: :class:`TransientKernelError` (retry the batch),
  :class:`DivergenceError` (roll back to the last good checkpoint and
  replay), :class:`CheckpointWriteAborted` (keep the previous checkpoint).
* fatal: :class:`StateValidationError` with no checkpoint to roll back
  to, a :class:`TransientKernelError` that exhausted its retry budget,
  and :class:`SimulatedProcessKill` (models SIGKILL: nothing in-process
  may catch it; recovery happens on the next run via ``resume``).

See the "Fault model" note in DESIGN.md.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = [
    "TransientKernelError",
    "DivergenceError",
    "StateValidationError",
    "CheckpointWriteAborted",
    "SimulatedProcessKill",
    "SimulatedDiskCrash",
]


class TransientKernelError(RuntimeError):
    """A kernel failed in a way that is expected to succeed on retry.

    Models transient GPU faults (ECC hiccups, launch timeouts, OOM races)
    the way production trainers see them: the operation raises, state
    before the operation is intact, and an identical re-issue succeeds.
    """

    def __init__(self, message: str, site: str = "kernel"):
        super().__init__(message)
        self.site = site


class DivergenceError(FloatingPointError):
    """Training state went non-finite (NaN/Inf loss, gradients, or params).

    Retrying the batch cannot help once parameters or optimizer moments
    are poisoned; recovery is rollback to the last good checkpoint.
    """


class StateValidationError(RuntimeError):
    """State invariants are violated (see :func:`repro.resilience.validate_state`)."""

    def __init__(self, violations: List[str]):
        self.violations = list(violations)
        super().__init__(
            "state validation failed:\n  - " + "\n  - ".join(self.violations)
        )


class CheckpointWriteAborted(RuntimeError):
    """A checkpoint write was killed mid-flight (simulated).

    The write is atomic (tmp file + rename), so the previous checkpoint
    at the target path is untouched and remains loadable.
    """


class SimulatedProcessKill(BaseException):
    """Simulated hard process kill (SIGKILL) at a batch boundary.

    Derives from ``BaseException`` so no recovery logic inside the
    trainer can swallow it — exactly like a real kill.  Tests catch it at
    top level and restart training with ``resume=True``.
    """

    def __init__(self, message: str, epoch: Optional[int] = None, batch: Optional[int] = None):
        super().__init__(message)
        self.epoch = epoch
        self.batch = batch


class SimulatedDiskCrash(BaseException):
    """Simulated process crash in the middle of a durable-log disk write.

    Raised by the write-ahead log when the ``disk.write`` / ``disk.fsync``
    injection sites decide this write is torn (only a byte prefix reaches
    the file) or this fsync is lost (buffered bytes are dropped).  Derives
    from ``BaseException`` for the same reason as
    :class:`SimulatedProcessKill`: a real ``kill -9`` mid-write cannot be
    caught in-process; recovery happens by re-opening the store.
    """

    def __init__(self, message: str, path: Optional[str] = None, offset: Optional[int] = None):
        super().__init__(message)
        self.path = path
        self.offset = offset
