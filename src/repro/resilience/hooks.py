"""Fault-injection hook registry (dependency-free).

Production hot paths call :func:`poke` at their injection sites; the call
is a no-op unless a :class:`~repro.resilience.faults.FaultInjector` is
installed (normally via ``with injector:``).  Keeping this module free of
any ``repro`` imports lets low-level packages (``repro.core.kernels``,
``repro.nn.optim``, ``repro.distributed``) reference it without creating
an import cycle with the resilience subsystem built on top of them.

Sites currently poked by production code are listed in :data:`SITES`
(the authoritative registry — ``FaultInjector`` validates its configured
site names against it at construction time):

===================  ==========================================  =========
site                 where                                       returns
===================  ==========================================  =========
``kernel.sample``    ``core.kernels.sample.temporal_sample``     ``None``
``kernel.cache``     ``NodeTimeCache.lookup`` / ``store``        ``None``
``cache.corrupt``    end of ``NodeTimeCache.store``              ``None``
``optim.step``       ``nn.optim.SGD.step`` / ``Adam.step``       ``None``
``worker.crash``     ``SimulatedDataParallel.train_step``        crashed replica ids
``worker.straggler`` ``SimulatedDataParallel.train_step``        replica -> slowdown
``checkpoint.kill``  ``bench.checkpoint.save_checkpoint``        ``None``
``trainer.batch``    ``bench.resilient.ResilientTrainer``        ``None``
``serve.ingest``     ``serve.ingest.IngestPipeline.push``        ``None``
``serve.commit``     ``serve.commit.StateCommitter.commit``      ``None``
``serve.poison``     ``serve.commit`` payload staging            ``None``
``disk.write``       ``durable.wal`` record append               directive
``disk.fsync``       ``durable.wal`` fsync                       directive
``disk.read``        ``durable.wal`` replay / cold-tier read     directive
``rpc.send``         ``cluster.rpc.SimRpc`` request leg          directive
``rpc.recv``         ``cluster.rpc.SimRpc`` reply leg            directive
``shard.crash``      ``cluster.coordinator.ServeCluster.step``   bool
``shard.stall``      ``cluster.coordinator.ServeCluster.step``   factor
``heartbeat.drop``   ``cluster.supervisor.Supervisor.tick``      bool
``repl.ship``        ``cluster.replication.ReplicaGroup.ship``   directive
``repl.ack``         ``cluster.replication.ReplicaGroup.ship``   directive
``repl.promote``     ``cluster.supervisor`` promotion attempt    bool
``mem.flip``         ``cluster.coordinator`` chaos step          directive
``scrub.skip``       ``integrity.scrubber.Scrubber.maybe_scrub`` bool
===================  ==========================================  =========

A site either returns a value (crash/straggler queries, disk-corruption
directives interpreted by the write-ahead log) or raises one of the
:mod:`repro.resilience.errors` exceptions to simulate the fault.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = ["SITES", "install", "uninstall", "active", "poke"]

#: Authoritative registry of injection sites compiled into production
#: code, mapping site name -> where it is poked.  ``FaultInjector``
#: rejects configuration naming a site absent from this registry, so a
#: misspelled site fails loudly instead of silently never firing.
SITES: Dict[str, str] = {
    "kernel.sample": "core.kernels.sample.temporal_sample",
    "kernel.cache": "core.kernels.cache.NodeTimeCache.lookup/store",
    "cache.corrupt": "core.kernels.cache.NodeTimeCache.store (end)",
    "optim.step": "nn.optim.SGD.step / Adam.step",
    "worker.crash": "distributed.SimulatedDataParallel.train_step",
    "worker.straggler": "distributed.SimulatedDataParallel.train_step",
    "checkpoint.kill": "bench.checkpoint.save_checkpoint",
    "trainer.batch": "bench.resilient.ResilientTrainer.train",
    "serve.ingest": "serve.ingest.IngestPipeline.push",
    "serve.commit": "serve.commit.StateCommitter.commit",
    "serve.poison": "serve.commit.StateCommitter.commit (staging)",
    "disk.write": "durable.wal.WriteAheadLog.append",
    "disk.fsync": "durable.wal.WriteAheadLog.sync",
    "disk.read": "durable.wal segment replay / store.tiers.ColdTier.read",
    "rpc.send": "cluster.rpc.SimRpc.call (request leg)",
    "rpc.recv": "cluster.rpc.SimRpc.call (reply leg)",
    "shard.crash": "cluster.coordinator.ServeCluster.step",
    "shard.stall": "cluster.coordinator.ServeCluster.step",
    "heartbeat.drop": "cluster.supervisor.Supervisor.tick",
    "repl.ship": "cluster.replication.ReplicaGroup.ship (follower leg)",
    "repl.ack": "cluster.replication.ReplicaGroup.ship (follower ack leg)",
    "repl.promote": "cluster.supervisor.Supervisor promotion attempt",
    "mem.flip": "cluster.coordinator.ServeCluster.step (silent state flip)",
    "scrub.skip": "integrity.scrubber.Scrubber.maybe_scrub",
}

_ACTIVE: Optional[Any] = None


def install(injector: Any) -> None:
    """Install *injector* as the process-wide fault source."""
    global _ACTIVE
    if _ACTIVE is not None and _ACTIVE is not injector:
        raise RuntimeError("another FaultInjector is already installed")
    _ACTIVE = injector


def uninstall(injector: Any) -> None:
    """Remove *injector* (no-op if it is not the installed one)."""
    global _ACTIVE
    if _ACTIVE is injector:
        _ACTIVE = None


def active() -> Optional[Any]:
    """The currently installed injector, or ``None``."""
    return _ACTIVE


def poke(site: str, **info: Any) -> Any:
    """Consult the installed injector at an injection *site*.

    Returns whatever the injector's handler returns (``None`` when no
    injector is installed); may raise a simulated fault.
    """
    if _ACTIVE is None:
        return None
    return _ACTIVE.poke(site, **info)
