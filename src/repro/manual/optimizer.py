"""The hand-rolled optimization helper of Listing 1 (regions A, C, F).

In the pre-framework world, redundancy-aware optimizations are applied by
an application-level ``Optimizer`` class the programmer has to thread
through the model: explicit ``dedup_filter``/``dedup_invert`` pairs, manual
``cache_lookup``/``cache_store`` bookkeeping, and a hand-managed
precomputed-time table.  (In the paper these call into a C++ extension; in
this substrate they call the same numpy kernels TGLite uses — the point of
the comparison is the *programming model*, not the kernel.)
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..core.kernels import NodeTimeCache, unique_node_times
from ..nn import TimeEncode

__all__ = ["ManualOptimizer"]


class ManualOptimizer:
    """Application-managed dedup/cache/time-precompute (Listing 1, C)."""

    def __init__(self, cache_capacity: int = 20000):
        self.cache_capacity = cache_capacity
        self._cache: Dict[int, NodeTimeCache] = {}
        self._time_tables: Dict[int, Dict[float, np.ndarray]] = {}
        self.enabled_dedup = True
        self.enabled_cache = True
        self.enabled_time = True

    # ---- dedup: explicit filter + invert pair the caller must match ---------

    def dedup_filter(self, nids: np.ndarray, times: np.ndarray):
        """Shrink to unique (node, time) pairs; caller keeps the inverse."""
        if not self.enabled_dedup:
            return nids, times, None
        un, ut, inv = unique_node_times(nids, times)
        if len(un) == len(nids):
            return nids, times, None
        return un, ut, inv

    @staticmethod
    def dedup_invert(embs, inv: Optional[np.ndarray]):
        """Re-expand outputs; forgetting this call silently corrupts results
        (the failure mode hooks exist to prevent)."""
        if inv is None:
            return embs
        return embs[inv]

    # ---- cache: manual hit/miss bookkeeping (Listing 1, region C) -------------

    def _layer_cache(self, layer: int) -> NodeTimeCache:
        cache = self._cache.get(layer)
        if cache is None:
            cache = NodeTimeCache(self.cache_capacity)
            self._cache[layer] = cache
        return cache

    def cache_lookup(self, layer: int, nids: np.ndarray, times: np.ndarray):
        """Returns ``(hit_mask, rows)``; rows is None when nothing cached.

        Dispatches to the shared array kernel — the manual style here is
        the *bookkeeping* the caller must thread, not the row loop.
        """
        if not self.enabled_cache:
            return np.zeros(len(nids), dtype=bool), None
        return self._layer_cache(layer).lookup(nids, times)

    def cache_store(self, layer: int, embs: np.ndarray, nids: np.ndarray, times: np.ndarray) -> None:
        if not self.enabled_cache or len(nids) == 0:
            return
        self._layer_cache(layer).store(nids, times, np.asarray(embs, dtype=np.float32))

    def clear_cache(self) -> None:
        self._cache.clear()

    # ---- time precomputation (Listing 1, region I + E) --------------------------

    def time_embs(self, encoder: TimeEncode, deltas: np.ndarray) -> np.ndarray:
        """Encode deltas through a manually managed per-encoder table."""
        deltas = np.asarray(deltas, dtype=np.float32).reshape(-1)
        if not self.enabled_time:
            return encoder.encode_raw(deltas)
        table = self._time_tables.setdefault(id(encoder), {})
        uniq = np.unique(deltas)
        missing = [v for v in uniq if float(v) not in table]
        if missing:
            encoded = encoder.encode_raw(np.asarray(missing, dtype=np.float32))
            for value, row in zip(missing, encoded):
                table[float(value)] = row
        return np.stack([table[float(v)] for v in deltas])

    def time_zeros(self, encoder: TimeEncode, n: int) -> np.ndarray:
        """Phi(0) tiled n times, via the same manual table."""
        return self.time_embs(encoder, np.zeros(n, dtype=np.float32))

    def invalidate_time_tables(self) -> None:
        """Must be called by the *application* after every weight update —
        another piece of bookkeeping TGLite's version counter automates."""
        self._time_tables.clear()
