"""The ad-hoc NeighborFinder of the paper's Listing 1 (region E).

Before frameworks, every TGNN implementation carried a one-off data
structure for temporal adjacency and sampling — "implementations often
have one-off data structures (e.g. NeighborFinder) that has to be repeated
for other implementations and projects" (§3.1).  This module reproduces
that style: a self-contained class that builds its own per-node sorted
adjacency arrays from raw edge arrays, independent of (and redundant
with) the framework's TGraph/CSR.

Sampling itself dispatches through the shared vectorized kernel layer
(:mod:`repro.core.kernels.sample`) — in the paper both the manual
baseline and TGLite call equivalent C++ samplers, so kernel parity keeps
the comparison about the *programming model*, not the sampler.
``sample_flat`` exposes the kernel's :class:`SampleResult` directly;
``sample_recent`` converts it to the fixed-size zero-padded layout
Listing 1's recursive ``embeds()`` consumes.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.kernels import SampleResult, sample_recent

__all__ = ["NeighborFinder"]


class NeighborFinder:
    """One-off temporal adjacency + most-recent sampling (Listing 1, E).

    Args:
        src, dst, ts: raw temporal edge arrays (any order).
        num_nodes: node count.
    """

    def __init__(self, src: np.ndarray, dst: np.ndarray, ts: np.ndarray, num_nodes: int):
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        ts = np.asarray(ts, dtype=np.float64)
        eids = np.arange(len(src), dtype=np.int64)
        # Build flat per-node time-sorted incidence arrays (a hand-rolled CSR).
        endpoints = np.concatenate([src, dst])
        partners = np.concatenate([dst, src])
        all_eids = np.concatenate([eids, eids])
        all_ts = np.concatenate([ts, ts])
        order = np.lexsort((all_ts, endpoints))
        self.nbrs = partners[order]
        self.eids = all_eids[order]
        self.ts = all_ts[order]
        self.indptr = np.searchsorted(endpoints[order], np.arange(num_nodes + 1)).astype(np.int64)

    def sample_flat(self, n_nbr: int, nids: np.ndarray, times: np.ndarray) -> SampleResult:
        """Most-recent temporal sampling as flat kernel-layer rows."""
        return sample_recent(
            self.indptr, self.nbrs, self.eids, self.ts,
            np.asarray(nids, dtype=np.int64), np.asarray(times, dtype=np.float64), n_nbr,
        )

    def sample_recent(
        self, n_nbr: int, nids: np.ndarray, times: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Most-recent temporal sampling with fixed-size zero padding.

        Returns padded ``(nbrs, eids, nbr_ts, mask)`` arrays of shape
        ``(len(nids), n_nbr)`` — the layout Listing 1's recursive
        ``embeds()`` consumes.
        """
        n = len(nids)
        res = self.sample_flat(n_nbr, nids, times)
        nbrs = np.zeros((n, n_nbr), dtype=np.int64)
        eids = np.zeros((n, n_nbr), dtype=np.int64)
        nbr_ts = np.zeros((n, n_nbr), dtype=np.float64)
        mask = np.zeros((n, n_nbr), dtype=bool)
        counts = np.bincount(res.dstindex, minlength=n)
        starts = np.cumsum(counts) - counts
        within = np.arange(res.num_rows, dtype=np.int64) - starts[res.dstindex]
        nbrs[res.dstindex, within] = res.srcnodes
        eids[res.dstindex, within] = res.eids
        nbr_ts[res.dstindex, within] = res.etimes
        mask[res.dstindex, within] = True
        return nbrs, eids, nbr_ts, mask
