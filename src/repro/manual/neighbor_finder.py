"""The ad-hoc NeighborFinder of the paper's Listing 1 (region E).

Before frameworks, every TGNN implementation carried a one-off data
structure for temporal adjacency and sampling — "implementations often
have one-off data structures (e.g. NeighborFinder) that has to be repeated
for other implementations and projects" (§3.1).  This module reproduces
that style: a self-contained class that builds its own per-node sorted
adjacency lists from raw edge arrays and exposes a ``sample_recent``
method, independent of (and redundant with) the framework's TGraph/CSR.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = ["NeighborFinder"]


class NeighborFinder:
    """One-off temporal adjacency + most-recent sampling (Listing 1, E).

    Args:
        src, dst, ts: raw temporal edge arrays (any order).
        num_nodes: node count.
    """

    def __init__(self, src: np.ndarray, dst: np.ndarray, ts: np.ndarray, num_nodes: int):
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        ts = np.asarray(ts, dtype=np.float64)
        eids = np.arange(len(src), dtype=np.int64)
        # Build per-node time-sorted incidence lists the hand-rolled way.
        self.nbr_list: List[np.ndarray] = []
        self.eid_list: List[np.ndarray] = []
        self.ts_list: List[np.ndarray] = []
        endpoints = np.concatenate([src, dst])
        partners = np.concatenate([dst, src])
        all_eids = np.concatenate([eids, eids])
        all_ts = np.concatenate([ts, ts])
        order = np.lexsort((all_ts, endpoints))
        endpoints = endpoints[order]
        partners = partners[order]
        all_eids = all_eids[order]
        all_ts = all_ts[order]
        bounds = np.searchsorted(endpoints, np.arange(num_nodes + 1))
        for v in range(num_nodes):
            lo, hi = bounds[v], bounds[v + 1]
            self.nbr_list.append(partners[lo:hi])
            self.eid_list.append(all_eids[lo:hi])
            self.ts_list.append(all_ts[lo:hi])

    def sample_recent(
        self, n_nbr: int, nids: np.ndarray, times: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Most-recent temporal sampling with fixed-size zero padding.

        Returns padded ``(nbrs, eids, nbr_ts, mask)`` arrays of shape
        ``(len(nids), n_nbr)`` — the layout Listing 1's recursive
        ``embeds()`` consumes.
        """
        n = len(nids)
        nbrs = np.zeros((n, n_nbr), dtype=np.int64)
        eids = np.zeros((n, n_nbr), dtype=np.int64)
        nbr_ts = np.zeros((n, n_nbr), dtype=np.float64)
        mask = np.zeros((n, n_nbr), dtype=bool)
        for i in range(n):
            node_ts = self.ts_list[nids[i]]
            cut = np.searchsorted(node_ts, times[i], side="left")
            take = min(cut, n_nbr)
            if take == 0:
                continue
            sel = slice(cut - take, cut)
            nbrs[i, :take] = self.nbr_list[nids[i]][sel]
            eids[i, :take] = self.eid_list[nids[i]][sel]
            nbr_ts[i, :take] = node_ts[sel]
            mask[i, :take] = True
        return nbrs, eids, nbr_ts, mask
