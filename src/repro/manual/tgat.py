"""TGAT implemented the pre-framework way (the paper's Listing 1).

This is the motivating counter-example of §3.1: a self-contained TGAT
whose every concern — temporal adjacency, recursive message flow, manual
dedup filter/invert pairs, manual cache hit/miss bookkeeping, manual time
tables, dense masked attention — is application code.  It produces the
same math as :class:`repro.models.TGAT` (verified by tests), but look at
what the programmer has to carry:

* a one-off :class:`~repro.manual.neighbor_finder.NeighborFinder`;
* a recursive ``compute``/``embeds`` pair where dedup/caching pre/post
  steps must be manually matched (region A/C of Listing 1);
* explicit time-feature orchestration (region E);
* the intricate padded bmm + masked-softmax attention (region H);
* remembering to invalidate time tables after each weight update.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..nn import Dropout, LayerNorm, Linear, Module, ModuleList, TimeEncode
from ..models.predictor import EdgePredictor
from ..tensor import Tensor, cat, index_put, is_grad_enabled
from .neighbor_finder import NeighborFinder
from .optimizer import ManualOptimizer

__all__ = ["ManualTGAT", "ManualAttnLayer"]


class ManualAttnLayer(Module):
    """Dense padded temporal attention (Listing 1, region H)."""

    def __init__(self, num_heads, dim_node, dim_edge, dim_time, dim_out, dropout=0.0):
        super().__init__()
        if dim_out % num_heads != 0:
            raise ValueError("dim_out must be divisible by num_heads")
        self.num_heads = num_heads
        self.dim_out = dim_out
        self.dim_edge = dim_edge
        self.time_encoder = TimeEncode(dim_time)
        self.w_q = Linear(dim_node + dim_time, dim_out)
        self.w_k = Linear(dim_node + dim_edge + dim_time, dim_out)
        self.w_v = Linear(dim_node + dim_edge + dim_time, dim_out)
        self.w_out = Linear(dim_node + dim_out, dim_out)
        self.layer_norm = LayerNorm(dim_out)
        self.dropout = Dropout(dropout)

    def forward(self, feat, tfeat, nbr_ft, nbr_e, nbr_t, mask) -> Tensor:
        n, k = mask.shape
        zq = cat([feat, tfeat], dim=1)
        if nbr_e is not None and self.dim_edge:
            zk = cat([nbr_ft, nbr_e, nbr_t], dim=2)
        else:
            zk = cat([nbr_ft, nbr_t], dim=2)
        heads, d_head = self.num_heads, self.dim_out // self.num_heads
        q = self.w_q(zq).reshape(n, 1, heads, d_head)
        key = self.w_k(zk).reshape(n, k, heads, d_head)
        value = self.w_v(zk).reshape(n, k, heads, d_head)
        attn = (q * key).sum(dim=3) * (1.0 / math.sqrt(d_head))
        attn = attn.masked_fill(~mask[:, :, None], -1e10)
        attn = attn.softmax(dim=1)
        attn = attn * Tensor(mask[:, :, None].astype(np.float32), device=feat.device)
        out = (value * attn.unsqueeze(3)).sum(dim=1).reshape(n, self.dim_out)
        out = self.w_out(cat([out, feat], dim=1))
        return self.layer_norm(self.dropout(out.relu()))


class ManualTGAT(Module):
    """Listing-1-style TGAT over raw arrays (no framework objects).

    Args:
        src/dst/ts: raw temporal edge arrays.
        nfeat/efeat: raw feature matrices (numpy).
        num_nodes: node count.
        remaining args mirror :class:`repro.models.TGAT`.
    """

    def __init__(
        self,
        src,
        dst,
        ts,
        nfeat: np.ndarray,
        efeat: Optional[np.ndarray],
        num_nodes: int,
        dim_time: int = 100,
        dim_embed: int = 100,
        num_layers: int = 2,
        num_heads: int = 2,
        num_nbrs: int = 10,
        dropout: float = 0.0,
    ):
        super().__init__()
        self.num_layers = num_layers
        self.num_nbrs = num_nbrs
        self.nfeat = nfeat
        self.efeat = efeat
        dim_node = nfeat.shape[1]
        dim_edge = efeat.shape[1] if efeat is not None else 0
        self.finder = NeighborFinder(src, dst, ts, num_nodes)  # region E
        self.opt = ManualOptimizer()  # region C
        layers = []
        for i in range(num_layers):
            layers.append(
                ManualAttnLayer(
                    num_heads,
                    dim_node=dim_node if i == 0 else dim_embed,
                    dim_edge=dim_edge,
                    dim_time=dim_time,
                    dim_out=dim_embed,
                    dropout=dropout,
                )
            )
        # layers[0] consumes raw features (the innermost recursion level).
        self.layers = ModuleList(layers)
        self.edge_predictor = EdgePredictor(dim_embed)

    # ---- Listing 1 region A: dedup wrapper ------------------------------------

    def compute(self, nids: np.ndarray, ts: np.ndarray, layer: int) -> Tensor:
        nids2, ts2, inv = self.opt.dedup_filter(nids, ts)
        embs = self.embeds(nids2, ts2, layer)
        return ManualOptimizer.dedup_invert(embs, inv)

    # ---- Listing 1 regions B/C/D: recursive embedding computation ---------------

    def lookup_nfeats(self, nids: np.ndarray) -> Tensor:
        return Tensor(self.nfeat[nids])

    def _use_inference_opts(self) -> bool:
        return not self.training and not is_grad_enabled()

    def embeds(self, nids: np.ndarray, ts: np.ndarray, layer: int) -> Tensor:
        if layer == 0:
            return self.lookup_nfeats(nids)  # base case (region B)

        attn = self.layers[layer - 1]
        inference = self._use_inference_opts()
        if inference:
            hit, rows = self.opt.cache_lookup(layer, nids, ts)
        else:
            hit, rows = np.zeros(len(nids), dtype=bool), None
        miss_idx = np.flatnonzero(~hit)
        if len(miss_idx) == 0:
            return Tensor(rows)
        m_nids, m_ts = nids[miss_idx], ts[miss_idx]

        # Sample temporal neighbors and recursively embed them (region D).
        nbr, eids, nbr_ts, mask = self.finder.sample_recent(self.num_nbrs, m_nids, m_ts)
        k = self.num_nbrs
        nbr_ft = self.compute(nbr.reshape(-1), nbr_ts.reshape(-1), layer - 1)
        nbr_ft = nbr_ft.reshape(len(m_nids), k, nbr_ft.shape[1])
        feats = self.embeds(m_nids, m_ts, layer - 1)

        # Time features, manually orchestrated (region E).
        deltas = (m_ts[:, None] - nbr_ts) * mask
        if inference:
            nbr_tf = Tensor(self.opt.time_embs(attn.time_encoder, deltas.reshape(-1)))
            tf = Tensor(self.opt.time_zeros(attn.time_encoder, len(m_nids)))
        else:
            nbr_tf = attn.time_encoder(Tensor(deltas.reshape(-1).astype(np.float32)))
            tf = attn.time_encoder(Tensor(np.zeros(len(m_nids), dtype=np.float32)))
        nbr_tf = nbr_tf.reshape(len(m_nids), k, nbr_tf.shape[1])

        nbr_e = None
        if self.efeat is not None:
            nbr_e = Tensor(self.efeat[eids.reshape(-1)]).reshape(
                len(m_nids), k, self.efeat.shape[1]
            ) * Tensor(mask[:, :, None].astype(np.float32))

        res = attn(feats, tf, nbr_ft, nbr_e, nbr_tf, mask)
        if inference:
            self.opt.cache_store(layer, res.data, m_nids, m_ts)
        if len(miss_idx) == len(nids):
            return res
        full = Tensor(rows)
        return index_put(full, miss_idx, res)

    # ---- trainer-facing interface ------------------------------------------------

    def reset_state(self) -> None:
        self.opt.clear_cache()
        self.opt.invalidate_time_tables()

    def forward(self, batch):
        nids = batch.nodes()
        ts = batch.times()
        embeds = self.compute(nids, ts, self.num_layers)
        return self.edge_predictor.score_batch(embeds, len(batch))
