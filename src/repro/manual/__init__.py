"""Pre-framework baseline: TGAT written as self-contained application code.

Reproduces the paper's Listing 1 — the manual implementation style TGLite
exists to replace: ad-hoc data structures, recursive message flow, and
hand-threaded optimization bookkeeping.  Used by the tests to verify that
the framework abstractions are computation-preserving, and by the docs to
quantify the programmability gap.
"""

from .neighbor_finder import NeighborFinder
from .optimizer import ManualOptimizer
from .tgat import ManualAttnLayer, ManualTGAT

__all__ = ["NeighborFinder", "ManualOptimizer", "ManualAttnLayer", "ManualTGAT"]
