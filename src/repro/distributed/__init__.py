"""Simulated distributed training extensions (paper §7 future work)."""

from .data_parallel import ShardResult, SimulatedDataParallel, StepResult

__all__ = ["ShardResult", "SimulatedDataParallel", "StepResult"]
