"""Simulated multi-GPU data-parallel training (§7 future work).

The paper defers multi-GPU support; this module implements the standard
synchronous data-parallel scheme on the simulated device model so the
design (and its scaling behaviour) can be explored without hardware:

* a batch's edges are split into ``num_replicas`` contiguous shards;
* each shard's forward/backward runs against the shared parameters, with
  per-shard wall time recorded;
* gradients are averaged (the all-reduce), charging the interconnect cost
  of a ring all-reduce — ``2 (N-1)/N x param_bytes / bandwidth`` — to the
  simulated clock;
* the optimizer steps once on the synchronized gradients.

Because shards execute sequentially on one host, *measured* wall time is
the serial sum; the **simulated parallel step time** is
``max(shard times) + all-reduce time``, which is what a real N-GPU
deployment would see for balanced shards.  Numerical results are exactly
those of synchronous large-batch SGD, which the tests verify against
single-replica training.

Memory-based models (TGN/JODIE/APAN) additionally mutate global state
per shard; data-parallel semantics for them require partitioned memory
servers (out of scope here, as in the paper) — the trainer therefore
accepts any model but documents that staleness applies.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..core import TBatch, TGraph, iter_batches
from ..data import NegativeSampler
from ..nn import Optimizer, bce_with_logits
from ..resilience.hooks import poke as _poke
from ..tensor import Tensor

__all__ = ["ShardResult", "StepResult", "SimulatedDataParallel"]


@dataclass
class ShardResult:
    """Timing/loss for one replica's shard within a step."""

    replica: int
    edges: int
    seconds: float
    loss: float
    #: True when this shard's replica crashed and the work was
    #: redistributed to the surviving replicas (fault simulation).
    redistributed: bool = False


@dataclass
class StepResult:
    """One synchronous data-parallel step."""

    shards: List[ShardResult] = field(default_factory=list)
    allreduce_seconds: float = 0.0

    @property
    def serial_seconds(self) -> float:
        return sum(s.seconds for s in self.shards)

    @property
    def crashed_replicas(self) -> List[int]:
        """Replicas that crashed this step (their shards were redistributed)."""
        return [s.replica for s in self.shards if s.redistributed]

    @property
    def redistribution_seconds(self) -> float:
        """Simulated extra step time from re-running crashed shards.

        Each crashed shard's work is split evenly across the survivors,
        so the parallel clock is charged ``crashed_time / num_survivors``
        on top of the surviving critical path.
        """
        crashed = sum(s.seconds for s in self.shards if s.redistributed)
        if crashed == 0.0:
            return 0.0
        survivors = max(1, sum(1 for s in self.shards if not s.redistributed))
        return crashed / survivors

    @property
    def simulated_parallel_seconds(self) -> float:
        longest = max((s.seconds for s in self.shards if not s.redistributed), default=0.0)
        return longest + self.redistribution_seconds + self.allreduce_seconds

    @property
    def loss(self) -> float:
        total = sum(s.edges for s in self.shards)
        if total == 0:
            return 0.0
        return sum(s.loss * s.edges for s in self.shards) / total


class SimulatedDataParallel:
    """Synchronous data-parallel driver over the simulated device model.

    Args:
        model: a trainer-compatible model (``forward(batch)->(pos,neg)``).
        optimizer: optimizer over the model's parameters.
        num_replicas: simulated GPU count (shards per batch).
        interconnect_bandwidth: modeled all-reduce bytes/second (NVLink-ish
            values are much higher than the PCIe host-transfer model).
    """

    def __init__(
        self,
        model,
        optimizer: Optimizer,
        num_replicas: int,
        interconnect_bandwidth: float = 1.0e9,
    ):
        if num_replicas < 1:
            raise ValueError("need at least one replica")
        self.model = model
        self.optimizer = optimizer
        self.num_replicas = num_replicas
        self.interconnect_bandwidth = interconnect_bandwidth
        self._param_bytes = sum(p.data.nbytes for p in model.parameters())

    # ---- cost model -----------------------------------------------------------

    def allreduce_seconds(self) -> float:
        """Ring all-reduce transfer time for one gradient synchronization."""
        if self.num_replicas == 1:
            return 0.0
        volume = 2.0 * (self.num_replicas - 1) / self.num_replicas * self._param_bytes
        return volume / self.interconnect_bandwidth

    # ---- stepping --------------------------------------------------------------

    def _shard_ranges(self, batch: TBatch) -> List[Tuple[int, int]]:
        bounds = np.linspace(batch.start, batch.stop, self.num_replicas + 1).astype(int)
        return [(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:]) if b > a]

    def train_step(self, batch: TBatch, neg_sampler: NegativeSampler) -> StepResult:
        """One synchronous step over a batch split into replica shards.

        Crashed replicas (fault injection via the ``worker.crash`` site)
        have their shard redistributed to the survivors: the shard still
        executes — on this serial substrate, execution *is* the
        redistribution — producing bit-identical gradients, while the
        simulated parallel clock is charged the survivors' extra work
        (see :attr:`StepResult.redistribution_seconds`).  Stragglers
        (``worker.straggler``) inflate their shard's simulated time.
        """
        self.model.train()
        self.optimizer.zero_grad()
        result = StepResult()
        g = batch.g
        shards = self._shard_ranges(batch)
        crashed = _poke("worker.crash", num_replicas=len(shards)) or frozenset()
        stragglers = _poke("worker.straggler", num_replicas=len(shards)) or {}
        for replica, (lo, hi) in enumerate(shards):
            shard = TBatch(g, lo, hi)
            shard.neg_nodes = neg_sampler.sample(len(shard))
            t0 = time.perf_counter()
            pos, neg = self.model(shard)
            loss = bce_with_logits(
                pos, Tensor(np.ones(len(shard), dtype=np.float32), device=pos.device)
            ) + bce_with_logits(
                neg, Tensor(np.zeros(len(shard), dtype=np.float32), device=neg.device)
            )
            # Scale so accumulated gradients equal the shard-size-weighted
            # average — the semantics of synchronous all-reduce SGD.
            (loss * (len(shard) / len(batch))).backward()
            seconds = time.perf_counter() - t0
            seconds *= stragglers.get(replica, 1.0)
            result.shards.append(
                ShardResult(replica, len(shard), seconds, loss.item(),
                            redistributed=replica in crashed)
            )
        result.allreduce_seconds = self.allreduce_seconds()
        self.optimizer.step()
        return result

    def train_epoch(
        self,
        g: TGraph,
        neg_sampler: NegativeSampler,
        batch_size: int,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> Tuple[float, float, float]:
        """Train over an edge range.

        Returns ``(serial_seconds, simulated_parallel_seconds, mean_loss)``.
        """
        neg_sampler.reset()
        serial = parallel = 0.0
        losses = []
        for batch in iter_batches(g, batch_size, start=start, stop=stop):
            step = self.train_step(batch, neg_sampler)
            serial += step.serial_seconds
            parallel += step.simulated_parallel_seconds
            losses.append(step.loss)
        return serial, parallel, float(np.mean(losses)) if losses else 0.0

    def scaling_efficiency(self, step: StepResult) -> float:
        """Parallel efficiency of a step: serial / (N * simulated parallel)."""
        denom = self.num_replicas * step.simulated_parallel_seconds
        return step.serial_seconds / denom if denom > 0 else 0.0
