"""Canonical content digests and chunked merkle summaries over state tables.

The cluster's replication guarantee (PR 8/9) is *bit-identity by
construction*: every member of a replica group applies the same committed
sub-batches through the same deterministic kernels.  This module turns
that property into something checkable at runtime:

* :func:`array_digest` — a stable sha256 over canonically-encoded arrays
  (dtype tag + shape + C-contiguous bytes), so two states hash equal iff
  they are bit-identical.  ``Memory.state_digest()`` and
  ``Mailbox.state_digest()`` are thin wrappers over it.
* :class:`ChunkedDigest` — per-chunk digests over fixed row ranges of a
  state table, *maintained* on the write path: after each filtered apply
  the touched chunks are re-hashed (O(dirty rows)), so the maintained
  digests always record what the WAL-then-apply protocol produced.  A
  later recompute that disagrees with the maintained digest is evidence
  of out-of-band mutation (a flipped bit, rotted RAM) — the maintained
  digests are tamper-evident because silent corruption by definition
  bypasses the write path that updates them.
* :func:`merkle_root` / :func:`merkle_diff` — roll chunk digests into a
  merkle tree so a scrubber can compare two summaries root-first and
  descend only into differing subtrees to localize divergence to a chunk.

No imports from the rest of the package: ``repro.core`` and
``repro.store`` may depend on this module freely.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "array_digest",
    "canonical_bytes",
    "ChunkedDigest",
    "merkle_root",
    "merkle_diff",
]

#: digest of an empty leaf list (a zero-row table still has a root).
_EMPTY_ROOT = hashlib.sha256(b"merkle:empty").hexdigest()


def canonical_bytes(array: np.ndarray) -> bytes:
    """Canonical encoding of one array: dtype tag, shape, then raw bytes.

    The dtype string pins byte order and width and the shape prefix keeps
    ``(2, 3)`` and ``(3, 2)`` tables with equal bytes from colliding, so
    equal encodings imply bit-identical arrays.
    """
    arr = np.ascontiguousarray(array)
    head = f"{arr.dtype.str}|{','.join(str(s) for s in arr.shape)}|".encode()
    return head + arr.tobytes()


def array_digest(*arrays: np.ndarray) -> str:
    """Stable sha256 hex digest over canonically-encoded *arrays*."""
    h = hashlib.sha256()
    for arr in arrays:
        h.update(canonical_bytes(np.asarray(arr)))
    return h.hexdigest()


def merkle_root(leaves: Sequence[str]) -> str:
    """Root of the binary merkle tree over hex-digest *leaves*."""
    return _levels(leaves)[-1][0].hex() if leaves else _EMPTY_ROOT


def _levels(leaves: Sequence[str]) -> List[List[bytes]]:
    """All tree levels, leaves first (an odd node is paired with itself)."""
    level = [bytes.fromhex(leaf) for leaf in leaves]
    levels = [level]
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level), 2):
            right = level[i + 1] if i + 1 < len(level) else level[i]
            nxt.append(hashlib.sha256(level[i] + right).digest())
        level = nxt
        levels.append(level)
    return levels


def merkle_diff(a: Sequence[str], b: Sequence[str]) -> List[int]:
    """Leaf indices where *a* and *b* disagree, found by merkle descent.

    Builds both trees and walks from the roots, descending only into
    subtrees whose node hashes differ — the scrubber's localization step:
    one corrupt chunk costs O(log n) comparisons below the root instead
    of a full leaf-by-leaf sweep.  Length mismatches (a re-sharded member
    mid-hand-off) report every leaf of the shorter summary as suspect.
    """
    if len(a) != len(b):
        return list(range(min(len(a), len(b)) or max(len(a), len(b))))
    if not a:
        return []
    la, lb = _levels(a), _levels(b)
    out: List[int] = []
    stack: List[Tuple[int, int]] = [(len(la) - 1, 0)]
    while stack:
        lvl, idx = stack.pop()
        if la[lvl][idx] == lb[lvl][idx]:
            continue
        if lvl == 0:
            out.append(idx)
            continue
        below = len(la[lvl - 1])
        for child in (2 * idx, 2 * idx + 1):
            if child < below:
                stack.append((lvl - 1, child))
    return sorted(out)


class ChunkedDigest:
    """Maintained per-chunk sha256 digests over row ranges of a table.

    Args:
        reader: ``reader(lo, hi)`` returns the array slices covering rows
            ``[lo, hi)`` of the table (e.g. memory vectors + update
            times).  Called at refresh time, so it must read the *live*
            backing arrays, not a snapshot.
        num_rows: table height; chunk ``c`` covers rows
            ``[c * chunk_rows, min(num_rows, (c + 1) * chunk_rows))``.
        chunk_rows: rows per chunk (the divergence-localization grain).

    :attr:`digests` holds the **maintained** (expected) digests: callers
    refresh the touched chunks immediately after every legitimate write
    (:meth:`record_rows`), which keeps maintenance O(dirty rows).
    :meth:`compute` re-hashes the live arrays without touching the
    maintained digests; :meth:`diverged` compares the two.
    """

    def __init__(
        self,
        reader: Callable[[int, int], Iterable[np.ndarray]],
        num_rows: int,
        chunk_rows: int = 32,
    ):
        self._reader = reader
        self.num_rows = int(num_rows)
        self.chunk_rows = max(1, int(chunk_rows))
        self.num_chunks = -(-self.num_rows // self.chunk_rows) if self.num_rows else 0
        self.digests: List[str] = [self._chunk_digest(c) for c in range(self.num_chunks)]

    # ---- geometry ------------------------------------------------------------------

    def rows_of(self, chunk: int) -> Tuple[int, int]:
        """``[lo, hi)`` row range chunk *chunk* covers."""
        lo = chunk * self.chunk_rows
        return lo, min(self.num_rows, lo + self.chunk_rows)

    def chunks_of(self, rows: np.ndarray) -> np.ndarray:
        """Sorted unique chunk indices containing local row indices *rows*."""
        rows = np.asarray(rows, dtype=np.int64)
        return np.unique(rows // self.chunk_rows)

    # ---- hashing -------------------------------------------------------------------

    def _chunk_digest(self, chunk: int) -> str:
        lo, hi = self.rows_of(chunk)
        h = hashlib.sha256(f"chunk|{chunk}|{lo}|{hi}|".encode())
        for arr in self._reader(lo, hi):
            h.update(canonical_bytes(np.asarray(arr)))
        return h.hexdigest()

    def record_rows(self, rows: np.ndarray) -> np.ndarray:
        """Re-hash the chunks containing *rows* after a legitimate write."""
        chunks = self.chunks_of(rows)
        for c in chunks:
            self.digests[int(c)] = self._chunk_digest(int(c))
        return chunks

    def record_all(self) -> None:
        """Re-hash every chunk (wholesale state replacement)."""
        self.digests = [self._chunk_digest(c) for c in range(self.num_chunks)]

    def compute(self, chunks: Optional[Iterable[int]] = None) -> List[str]:
        """Fresh digests of the live arrays; maintained digests untouched.

        With *chunks* given, returns digests for exactly those chunks (in
        the given order); otherwise for all of them.
        """
        targets = range(self.num_chunks) if chunks is None else chunks
        return [self._chunk_digest(int(c)) for c in targets]

    def diverged(self, live: Optional[Sequence[str]] = None) -> List[int]:
        """Chunks whose live content no longer matches the maintained digest.

        A non-empty result is proof of out-of-band mutation: every write
        through the owning replica's apply path refreshed its chunks.
        *live* (a precomputed :meth:`compute` result) avoids re-hashing.
        """
        fresh = self.compute() if live is None else list(live)
        if merkle_root(fresh) == self.root():
            return []
        return merkle_diff(fresh, self.digests)

    def root(self) -> str:
        """Merkle root over the maintained chunk digests."""
        return merkle_root(self.digests)
