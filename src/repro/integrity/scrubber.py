"""Anti-entropy scrubbing and quorum repair over replica groups.

The :class:`Scrubber` turns the cluster's bit-identity guarantee into a
continuously enforced invariant.  On the simulated clock it periodically
walks every :class:`~repro.cluster.replication.ReplicaGroup` and, per
serving member, runs the corruption lifecycle:

1. **detect** — recompute the live chunk digests of each state table and
   compare them (root first) against the member's *maintained* digests,
   which only the WAL-then-apply write path refreshes.  A mismatch is
   proof of out-of-band mutation: a flipped bit, rotted RAM.
2. **localize** — merkle descent narrows the divergence to chunks.
3. **arbitrate** — pick a trustworthy source for the damaged rows:
   a digest **quorum** of members whose maintained digests agree (factor
   >= 3 requires a majority), falling back to **primary-authority** at
   factor < 3, falling back to the member's own **durable evidence**
   (snapshot + committed WAL suffix — a read-only shadow replay) when no
   self-consistent peer holds the same logical state.
4. **repair** — re-ship the arbitrated rows over the damaged chunks
   (peer row copy or WAL-suffix resync), in place.
5. **verify** — recompute the repaired chunks; anything still divergent
   raises :class:`~repro.integrity.errors.IntegrityUnrepairable` instead
   of silently serving bad rows.

The same pass self-checks each member's WAL segments (CRC/frame parse)
and re-anchors a damaged log on digest-verified live state, cross-checks
maintained digests *between* settled members (a logically diverged
member is repaired from the quorum/primary), and scrubs registered
feature-store cold tiers through their per-row checksums.

Fault sites: ``scrub.skip`` lets chaos runs suppress whole cycles (the
window a flip would normally hide in); while a cycle has been skipped,
scatter-gather reads go through :meth:`Scrubber.guard_read`, which
verifies just the touched chunks and read-repairs before any row is
served.
"""

from __future__ import annotations

import time
from collections import Counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..resilience.hooks import poke as _poke
from .digest import ChunkedDigest, merkle_diff
from .errors import IntegrityUnrepairable

__all__ = ["Scrubber"]

_COUNTER_KEYS = (
    "cycles",
    "skipped_cycles",
    "chunks_scrubbed",
    "divergences",
    "rows_repaired",
    "peer_repairs",
    "quorum_repairs",
    "authority_repairs",
    "wal_resyncs",
    "wal_segment_repairs",
    "wal_segments_dropped",
    "read_repairs",
    "cold_rows_checked",
    "cold_rows_repaired",
    "cold_rows_dropped",
)


def _chunk_rows(cd: ChunkedDigest, chunks: Sequence[int]) -> np.ndarray:
    """All local row indices the given chunks cover, ascending."""
    if not len(chunks):
        return np.empty(0, dtype=np.int64)
    return np.concatenate(
        [np.arange(*cd.rows_of(int(c)), dtype=np.int64) for c in chunks]
    )


def _table_rows(memory, mailbox, component: str, rows: np.ndarray):
    """Row tuples of a (possibly shadow) Memory/Mailbox pair."""
    if component == "memory":
        return (memory.data.data[rows], memory.time[rows])
    out = [mailbox.mail.data[rows], mailbox.time[rows]]
    if mailbox._next_slot is not None:
        out.append(mailbox._next_slot[rows])
    return tuple(out)


class Scrubber:
    """Background anti-entropy scrubber over a cluster's replica groups.

    Args:
        groups: the cluster's replica groups (scrubbed in shard order).
        clock: simulated clock (``clock.now()``); cycles are due every
            *interval* simulated seconds.
        interval: scrub period in simulated seconds; ``None`` or ``<= 0``
            disables periodic cycles (explicit :meth:`scrub_now` still
            works).
        count: optional ``count(key, n)`` sink (``TContext.count``) —
            every integer counter is mirrored there under ``integrity:*``.
    """

    def __init__(
        self,
        groups: Sequence,
        clock,
        interval: Optional[float] = 0.25,
        count: Optional[Callable[[str, int], None]] = None,
    ):
        self.groups = groups
        self.clock = clock
        self.interval = None if interval is None or interval <= 0 else float(interval)
        self._count_sink = count
        self.counters: Dict[str, float] = {k: 0 for k in _COUNTER_KEYS}
        self.counters["scrub_seconds"] = 0.0
        #: True after a skipped cycle: reads verify their touched chunks
        #: (read-repair) until the next completed cycle clears it.
        self.suspect_window = False
        self._next_due = clock.now() + self.interval if self.interval else np.inf
        self._cold: List[Dict] = []

    # ---- bookkeeping ---------------------------------------------------------------

    def _bump(self, key: str, n: float = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + n
        if self._count_sink is not None and key != "scrub_seconds":
            self._count_sink(f"integrity:{key}", int(n))

    def add_cold_tier(self, tier, source=None, authority: bool = False,
                      label: str = "cold") -> None:
        """Register a feature-store cold tier for checksum scrubbing.

        *source*, when given, is ``source(nodes, times) -> rows`` — the
        deeper authority corrupt rows are rewritten from.  Without one, a
        cache tier's corrupt entries are dropped (safe: the next read
        faults through to the authority) and an ``authority=True`` tier
        raises :class:`IntegrityUnrepairable` (there is nothing deeper).
        """
        self._cold.append(
            {"tier": tier, "source": source, "authority": bool(authority),
             "label": label}
        )

    def stats(self) -> Dict[str, object]:
        out: Dict[str, object] = {}
        for key, val in self.counters.items():
            out[f"integrity:{key}"] = (
                round(float(val), 6) if key == "scrub_seconds" else int(val)
            )
        return out

    # ---- scheduling ----------------------------------------------------------------

    def maybe_scrub(self) -> bool:
        """Run one cycle if it is due on the simulated clock.

        The ``scrub.skip`` fault site can suppress the due cycle — the
        counters record the miss and the suspect window opens so reads
        self-protect until a later cycle completes.
        """
        if self.interval is None or self.clock.now() < self._next_due:
            return False
        self._next_due = self.clock.now() + self.interval
        cycle = int(self.counters["cycles"] + self.counters["skipped_cycles"])
        if _poke("scrub.skip", cycle=cycle) is not None:
            self._bump("skipped_cycles")
            self.suspect_window = True
            return False
        self.scrub_now()
        return True

    def scrub_now(self) -> Dict[str, int]:
        """One full scrub cycle over every group and registered cold tier.

        Returns what this cycle found/fixed; cumulative totals live in
        :attr:`counters`.  ``scrub_seconds`` accumulates the real (wall)
        cost of scrubbing — the overhead the benchmark gates on.
        """
        t0 = time.perf_counter()
        before = dict(self.counters)
        for gi, group in enumerate(self.groups):
            self._scrub_group(gi, group)
        for entry in self._cold:
            self._scrub_cold(entry)
        self.suspect_window = False
        self._bump("cycles")
        self._bump("scrub_seconds", time.perf_counter() - t0)
        return {
            k: int(self.counters[k] - before.get(k, 0))
            for k in ("chunks_scrubbed", "divergences", "rows_repaired")
        }

    # ---- group scrubbing -----------------------------------------------------------

    def _scrub_group(self, gi: int, group) -> None:
        for m, rep in enumerate(group.members):
            if not group.serving(m) or rep.digests is None:
                continue
            for comp, cd in rep.digests.components():
                live = cd.compute()
                self._bump("chunks_scrubbed", len(live))
                bad = cd.diverged(live)
                if not bad:
                    continue
                self._bump("divergences", len(bad))
                self._repair_chunks(gi, group, m, rep, comp, cd, bad)
            damaged = rep.verify_wal()
            if damaged:
                self._bump("divergences", len(damaged))
                dropped = rep.reanchor_wal()
                self._bump("wal_segment_repairs")
                self._bump("wal_segments_dropped", dropped)
                if rep.verify_wal():
                    raise IntegrityUnrepairable(
                        f"shard {gi} member {m}: WAL still damaged after "
                        "re-anchoring on verified live state",
                        component="wal", shard=gi, member=m,
                    )
        self._cross_check(gi, group)

    def _component(self, rep, comp: str) -> Optional[ChunkedDigest]:
        if rep.digests is None:
            return None
        return dict(rep.digests.components()).get(comp)

    def _repair_chunks(
        self, gi: int, group, m: int, rep, comp: str, cd: ChunkedDigest,
        chunks: List[int],
    ) -> None:
        """Arbitrate + repair + verify self-inconsistent *chunks* of one member.

        The member's maintained digests are the record of what it applied
        (they match its peers'), so arbitration looks for a donor that
        (a) holds the same logical state on those chunks and (b) passes
        its own live-vs-maintained check there.  Factor >= 3 additionally
        requires the logical state to be the majority one (digest
        quorum); factor 2 is the primary-authority regime — in practice
        the surviving peer, whichever side of the primacy it is on.  With
        no such peer the member's own durable evidence repairs it
        (WAL-suffix resync); evidence that is missing or short raises.
        """
        rows = _chunk_rows(cd, chunks)
        donor = None
        matching = 1  # the member's own maintained digests vote for its state
        for d in range(len(group.members)):
            if d == m:
                continue
            dcd = self._component(group.members[d], comp)
            if dcd is None or dcd.num_chunks != cd.num_chunks:
                continue
            if any(dcd.digests[int(c)] != cd.digests[int(c)] for c in chunks):
                continue  # holds a different logical state: cannot donate
            matching += 1
            if donor is None and group.serving(d) and dcd.compute(chunks) == [
                dcd.digests[int(c)] for c in chunks
            ]:
                donor = d
        factor = len(group.members)
        quorum_ok = factor < 3 or matching > factor // 2
        if donor is not None and quorum_ok:
            drep = group.members[donor]
            rep.overwrite_rows(comp, rows, drep.read_rows(comp, rows))
            self._bump("peer_repairs")
            if factor >= 3:
                self._bump("quorum_repairs")
            elif donor == group.primary_idx or m == group.primary_idx:
                self._bump("authority_repairs")
        else:
            self._wal_resync(gi, m, rep, comp, rows)
        self._bump("rows_repaired", len(rows))
        self._verify_chunks(gi, m, rep, comp, cd, chunks)

    def _wal_resync(self, gi: int, m: int, rep, comp: str,
                    rows: np.ndarray) -> None:
        """Repair rows from the member's own snapshot + WAL suffix."""
        # One retry: a transient injected read flip perturbs a single
        # (path, position) once; the second replay reads clean bytes.
        shadow = rep.shadow_state() or rep.shadow_state()
        if shadow is None:
            raise IntegrityUnrepairable(
                f"shard {gi} member {m}: {comp} corrupt with no "
                "arbitrable peer and durable evidence missing, damaged, "
                "or short of the applied sequence",
                component=comp, shard=gi, member=m, rows=len(rows),
            )
        smem, smail, _ = shadow
        rep.overwrite_rows(comp, rows, _table_rows(smem, smail, comp, rows))
        self._bump("wal_resyncs")

    def _verify_chunks(self, gi: int, m: int, rep, comp: str,
                       cd: ChunkedDigest, chunks: List[int]) -> None:
        still = [
            int(c)
            for c, lv in zip(chunks, cd.compute(chunks))
            if lv != cd.digests[int(c)]
        ]
        if still:
            raise IntegrityUnrepairable(
                f"shard {gi} member {m}: {comp} chunks {still} still "
                "divergent after repair",
                component=comp, shard=gi, member=m, chunks=still,
            )

    def _cross_check(self, gi: int, group) -> None:
        """Compare maintained digests *between* settled members.

        The self-checks above catch bit rot; this net catches logical
        divergence — a member whose maintained digests honestly describe
        its tables, but whose tables are not what the group committed.
        Arbitration: majority maintained digest at factor >= 3 (quorum),
        the primary's at factor < 3 (primary-authority).
        """
        settled = [
            m for m in range(len(group.members))
            if group.member_settled(m) and group.members[m].digests is not None
        ]
        if len(settled) < 2:
            return
        for comp in ("memory", "mailbox"):
            cds = {
                m: self._component(group.members[m], comp) for m in settled
            }
            cds = {m: cd for m, cd in cds.items() if cd is not None}
            if len(cds) < 2:
                continue
            roots = {m: cd.root() for m, cd in cds.items()}
            if len(set(roots.values())) <= 1:
                continue
            winner = self._arbitrate_winner(gi, group, comp, cds, roots)
            wcd = cds[winner]
            wrep = group.members[winner]
            for m, cd in cds.items():
                if m == winner or roots[m] == roots[winner]:
                    continue
                chunks = merkle_diff(cd.digests, wcd.digests)
                self._bump("divergences", len(chunks))
                rows = _chunk_rows(wcd, chunks)
                rep = group.members[m]
                rep.overwrite_rows(
                    comp, rows, wrep.read_rows(comp, rows), record=True
                )
                self._bump("rows_repaired", len(rows))
                self._verify_chunks(gi, m, rep, comp, cd, chunks)

    def _arbitrate_winner(self, gi: int, group, comp: str,
                          cds: Dict[int, ChunkedDigest],
                          roots: Dict[int, str]) -> int:
        factor = len(group.members)
        tally = Counter(roots.values())
        top_root, votes = tally.most_common(1)[0]
        if factor >= 3 and votes > len(roots) // 2:
            self._bump("quorum_repairs")
            candidates = [m for m in sorted(roots) if roots[m] == top_root]
        elif group.primary_idx in roots:
            self._bump("authority_repairs")
            candidates = [group.primary_idx]
        else:
            raise IntegrityUnrepairable(
                f"shard {gi}: settled members disagree on {comp} with no "
                "digest quorum and no settled primary to arbitrate",
                component=comp, shard=gi,
            )
        for m in candidates:
            if not cds[m].diverged():
                return m
        raise IntegrityUnrepairable(
            f"shard {gi}: every arbitration candidate for {comp} fails "
            "its own live-digest check",
            component=comp, shard=gi,
        )

    # ---- read repair ---------------------------------------------------------------

    def guard_read(self, gi: int, group, member_idx: int,
                   nodes: np.ndarray) -> None:
        """Verify + repair the chunks a scatter-gather read touches.

        Only active during a suspect window (a skipped scrub cycle): the
        periodic detector missed its slot, so reads take over for exactly
        the rows about to be served.  Must run *before* the gather.
        """
        if not self.suspect_window:
            return
        rep = group.members[member_idx]
        if rep.digests is None or not group.serving(member_idx):
            return
        local = rep._local[np.asarray(nodes, dtype=np.int64)]
        local = local[local >= 0]
        if not len(local):
            return
        repaired = False
        for comp, cd in rep.digests.components():
            chunks = cd.chunks_of(local)
            bad = [
                int(c)
                for c, lv in zip(chunks, cd.compute(chunks))
                if lv != cd.digests[int(c)]
            ]
            if bad:
                self._bump("divergences", len(bad))
                self._repair_chunks(gi, group, member_idx, rep, comp, cd, bad)
                repaired = True
        if repaired:
            self._bump("read_repairs")

    # ---- cold tiers ----------------------------------------------------------------

    def _scrub_cold(self, entry: Dict) -> None:
        res = entry["tier"].scrub(
            source=entry["source"], authority=entry["authority"]
        )
        self._bump("cold_rows_checked", res["checked"])
        if res["corrupt"]:
            self._bump("divergences", res["corrupt"])
            self._bump("cold_rows_repaired", res["repaired"])
            self._bump("cold_rows_dropped", res["dropped"])
            self._bump("rows_repaired", res["repaired"] + res["dropped"])
