"""End-to-end state integrity: digests, anti-entropy scrubbing, repair.

``repro.integrity`` makes the replication layer's bit-identity guarantee
self-checking at runtime:

* :mod:`~repro.integrity.digest` — canonical sha256 array digests,
  maintained per-chunk digests (O(dirty rows) on write), merkle rollup
  and descent.
* :mod:`~repro.integrity.scrubber` — the background :class:`Scrubber`
  that detects, localizes, arbitrates, repairs, and verifies divergence
  across replica groups, WAL segments, and feature-store cold tiers.
* :mod:`~repro.integrity.errors` — structured
  :class:`IntegrityUnrepairable` raised when no trustworthy repair
  source exists.
"""

from .digest import ChunkedDigest, array_digest, canonical_bytes, merkle_diff, merkle_root
from .errors import IntegrityError, IntegrityUnrepairable
from .scrubber import Scrubber

__all__ = [
    "ChunkedDigest",
    "IntegrityError",
    "IntegrityUnrepairable",
    "Scrubber",
    "array_digest",
    "canonical_bytes",
    "merkle_diff",
    "merkle_root",
]
