"""Structured integrity errors.

Separate from the scrubber so low layers (``repro.store``) can raise
:class:`IntegrityUnrepairable` without importing cluster-facing code.
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = ["IntegrityError", "IntegrityUnrepairable"]


class IntegrityError(RuntimeError):
    """Base class for state-integrity failures."""


class IntegrityUnrepairable(IntegrityError):
    """Corruption was detected but no trustworthy repair source exists.

    Raised instead of silently serving (or re-replicating) bad rows when
    arbitration fails: no digest quorum, the primary-authority fallback
    is itself the corrupted member, and the member's own durable evidence
    (snapshot + WAL suffix) is missing, damaged, or short of its applied
    sequence.  The structured fields say exactly what could not be fixed.
    """

    def __init__(
        self,
        message: str,
        *,
        component: str = "",
        shard: Optional[int] = None,
        member: Optional[int] = None,
        chunks: Sequence[int] = (),
        rows: int = 0,
    ):
        super().__init__(message)
        self.component = component
        self.shard = shard
        self.member = member
        self.chunks = tuple(int(c) for c in chunks)
        self.rows = int(rows)
