"""Train-on-serve-log continual learning: the serve→train closed loop.

The serving runtime write-ahead logs every committed
:class:`~repro.serve.EventBatch` (``repro.durable``).  The
:class:`ContinualLearner` tails that log with a prefix-consistent
:class:`~repro.durable.WALCursor`, converts committed records back into
training edges, and fine-tunes a link model online through
:meth:`~repro.bench.ResilientTrainer.fine_tune` — then hot-swaps the
updated embedding table into the server
(:meth:`~repro.serve.ServeRuntime.swap_model`).

**Staleness budget.**  Retraining is triggered by *model staleness*: the
gap (in event time) between the server's committed watermark and the
newest event the published model was trained through.  ``budget=0``
retrains on every sync that sees new committed data; a larger budget
batches more events per fine-tune (cheaper, staler); ``budget=inf``
never retrains — the frozen baseline.  The learner only ever reads
*committed, non-aborted* records (cursor guarantee), so a quarantined or
rolled-back batch can never train the model.

:func:`run_closed_loop` is the harness the tests, the ``scenarios`` CLI
subcommand, and the drift benchmark share: it pretrains a base model on
a warmup prefix of a :class:`~repro.scenarios.base.LabeledStream`, then
replays the rest through a durable :class:`~repro.serve.ServeRuntime`
in one of three modes — ``frozen`` (no learner), ``continual`` (WAL
tail + hot swap), ``oracle`` (offline retraining on the whole stream
before serving, the upper bound) — and scores the served predictions
against the stream's ground-truth labels.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from typing import Dict, List, Optional

import numpy as np

from ..bench.resilient import ResilientResult, ResilientTrainer
from ..core import Mailbox, Memory, TContext, TGraph, TSampler
from ..data import NegativeSampler, derive_rng
from ..durable import KIND_BATCH, WALCursor
from ..nn import Adam, Module, Parameter
from ..serve import EventBatch, ServeRuntime, replay, split_batches
from ..tensor import manual_seed
from .base import LabeledStream
from .score import accuracy_under_drift

__all__ = [
    "EmbeddingLinkModel",
    "ContinualLearner",
    "run_closed_loop",
    "oracle_scores",
    "serve_state_digest",
]


class EmbeddingLinkModel(Module):
    """Minimal trainer-compatible link model: one embedding table.

    Scores a pair as the dot product of its node embeddings.  Small
    enough to fine-tune in milliseconds inside the serving loop, and its
    single parameter *is* the table :meth:`~repro.serve.ServeRuntime.swap_model`
    installs — the model the learner trains is literally the model the
    server serves.
    """

    def __init__(self, num_nodes: int, dim: int = 16, seed: int = 0,
                 init_scale: float = 0.1):
        super().__init__()
        self.num_nodes = int(num_nodes)
        self.dim = int(dim)
        rng = derive_rng(seed, "continual", "model-init")
        self.emb = Parameter(
            (rng.standard_normal((num_nodes, dim)) * init_scale).astype(np.float32)
        )

    def forward(self, batch):
        src = np.asarray(batch.src)
        dst = np.asarray(batch.dst)
        neg = np.asarray(batch.neg_nodes)
        e_src = self.emb[src]
        pos = (e_src * self.emb[dst]).sum(dim=1)
        neg_scores = (e_src * self.emb[neg]).sum(dim=1)
        return pos, neg_scores

    def reset_state(self) -> None:
        """No recurrent state — the table is the whole model."""

    def embeddings(self) -> np.ndarray:
        """A float32 copy of the table, ready for ``swap_model``."""
        return np.array(self.emb.data, dtype=np.float32, copy=True)

    def score_pairs(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Offline sigmoid-dot scores (no serving path involved)."""
        table = np.asarray(self.emb.data, dtype=np.float32)
        logits = np.sum(table[src] * table[dst], axis=1)
        return (1.0 / (1.0 + np.exp(-logits))).astype(np.float32)


class ContinualLearner:
    """Tails a serving WAL and fine-tunes the model under a staleness budget.

    Args:
        model: the :class:`EmbeddingLinkModel` (shared with the server
            via hot swaps).
        optimizer: optimizer over the model's parameters (its moments
            persist across syncs — fine-tuning continues one trajectory).
        neg_sampler: negative sampler for the fine-tuning loss.
        wal_dir: the serving runtime's ``durable_dir`` to tail.
        num_nodes: node-id space of the training graph.
        checkpoint_dir: home of the fine-tuner's rolling checkpoint.
        staleness_budget: retrain when
            ``server_watermark - published_watermark`` exceeds this (in
            event-time units); ``0`` retrains on any new data, ``inf``
            never (frozen).
        batch_size: fine-tuning window size (edges per optimizer step).
        passes: sweeps over each new-edge window per retrain.
        initial_watermark: newest event time the starting model was
            pretrained through.
        cursor_name: WAL cursor identity (so a restarted learner
            resumes its own position).
    """

    def __init__(
        self,
        model,
        optimizer,
        neg_sampler: NegativeSampler,
        wal_dir: str,
        num_nodes: int,
        checkpoint_dir: str,
        staleness_budget: float = 0.0,
        batch_size: int = 64,
        passes: int = 1,
        initial_watermark: float = float("-inf"),
        cursor_name: str = "learner",
        injector=None,
    ):
        self.model = model
        self.optimizer = optimizer
        self.neg_sampler = neg_sampler
        self.num_nodes = int(num_nodes)
        self.checkpoint_dir = checkpoint_dir
        self.staleness_budget = float(staleness_budget)
        self.batch_size = int(batch_size)
        self.passes = int(passes)
        self.injector = injector
        os.makedirs(checkpoint_dir, exist_ok=True)
        self.cursor = WALCursor(wal_dir, name=cursor_name)
        self._batches: List[EventBatch] = []
        self._num_events = 0
        self.trained_end = 0
        self.server_watermark = float("-inf")
        self.published_watermark = float(initial_watermark)
        self.trainer: Optional[ResilientTrainer] = None
        self.fine_tunes: List[ResilientResult] = []
        self.syncs = 0
        self.swaps = 0

    # ---- the tail → train → swap loop --------------------------------------------

    def sync(self, runtime: ServeRuntime, final: bool = False) -> bool:
        """Poll the WAL once; retrain + hot-swap if over budget.

        Called between served requests (the ``replay`` ``on_result``
        hook).  Returns True when a model swap happened.
        """
        self.syncs += 1
        for rec in self.cursor.poll(final=final):
            if rec.kind != KIND_BATCH:
                continue
            batch = EventBatch.from_arrays(rec.arrays)
            if not len(batch):
                continue
            self._batches.append(batch)
            self._num_events += len(batch)
            watermark = float(rec.meta.get("watermark", batch.ts.max()))
            self.server_watermark = max(self.server_watermark, watermark)
        if self._num_events <= self.trained_end:
            return False
        staleness = self.server_watermark - self.published_watermark
        if staleness <= self.staleness_budget:
            return False
        self._retrain(runtime)
        return True

    def _retrain(self, runtime: ServeRuntime) -> None:
        events = EventBatch.concat(self._batches)
        g = TGraph(events.src, events.dst, events.ts, num_nodes=self.num_nodes)
        if self.trainer is None:
            self.trainer = ResilientTrainer(
                self.model,
                g,
                self.optimizer,
                self.neg_sampler,
                self.batch_size,
                checkpoint_dir=self.checkpoint_dir,
                checkpoint_every=1_000_000,  # one anchor per fine-tune call
                injector=self.injector,
            )
            result = self.trainer.fine_tune(
                self.trained_end, self._num_events, passes=self.passes
            )
        else:
            result = self.trainer.fine_tune(
                self.trained_end, self._num_events, passes=self.passes, graph=g
            )
        self.fine_tunes.append(result)
        self.trained_end = self._num_events
        self.published_watermark = self.server_watermark
        runtime.swap_model(
            self.model.embeddings(), watermark=self.published_watermark
        )
        self.swaps += 1

    def stats(self) -> Dict:
        return {
            "syncs": self.syncs,
            "swaps": self.swaps,
            "events_seen": self._num_events,
            "events_trained": self.trained_end,
            "server_watermark": self.server_watermark,
            "published_watermark": self.published_watermark,
            "staleness": max(
                0.0, self.server_watermark - self.published_watermark
            ),
            "cursor": self.cursor.position(),
        }

    def close(self) -> None:
        if self.trainer is not None:
            self.trainer.close()


def serve_state_digest(runtime: ServeRuntime) -> str:
    """SHA-256 over every committed-state byte of a runtime.

    Covers node memory and the mailbox — everything the commit path
    mutates.  Used to prove model hot-swaps leave serve state
    bit-identical to a swap-free replay.
    """
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(runtime.memory.data.data).tobytes())
    h.update(np.ascontiguousarray(runtime.memory.time).tobytes())
    if runtime.mailbox is not None:
        mb = runtime.mailbox
        h.update(np.ascontiguousarray(mb.mail.data).tobytes())
        h.update(np.ascontiguousarray(mb.time).tobytes())
        if mb._next_slot is not None:
            h.update(np.ascontiguousarray(mb._next_slot).tobytes())
    return h.hexdigest()


def run_closed_loop(
    stream: LabeledStream,
    mode: str = "continual",
    staleness_budget: float = 0.0,
    warmup_frac: float = 0.25,
    dim: int = 16,
    lr: float = 0.05,
    batch_size: int = 64,
    request_size: int = 50,
    passes: int = 2,
    pretrain_passes: int = 4,
    seed: int = 0,
    workdir: Optional[str] = None,
    load: float = 1.0,
    num_windows: int = 10,
    feature_store: bool = False,
    store=None,
) -> Dict:
    """Serve a scenario stream end to end and score it against ground truth.

    The first ``warmup_frac`` of the stream is the historical log: the
    model pretrains on it offline, and those events are never served.
    The rest replays through a durable :class:`ServeRuntime` whose
    per-request scores are collected back onto the stream's event
    positions.

    Modes:
        * ``'frozen'`` — the pretrained model serves unchanged.
        * ``'continual'`` — a :class:`ContinualLearner` tails the
          serving WAL between requests and hot-swaps under
          *staleness_budget*.
        * ``'oracle'`` — the model additionally trains offline over the
          *entire* stream (drift included) before serving: the
          hindsight upper bound.

    ``feature_store=True`` routes the runtime's scoring-row gathers
    through the context's tiered store with head-of-queue prefetch (see
    :class:`ServeRuntime`); scores are unchanged — only the ``store:*``
    accounting appears in ``stats``.  ``store`` optionally carries a
    :class:`~repro.store.StoreConfig` with the tier budgets.

    Returns a dict with per-event ``scores`` (NaN for warmup/unserved),
    the :func:`accuracy_under_drift` ``summary``, the runtime ``stats``,
    the committed-state ``state_digest``, and learner stats when present.
    Deterministic per ``(stream, mode, seed)``.
    """
    if mode not in ("frozen", "continual", "oracle"):
        raise ValueError(f"mode must be frozen|continual|oracle, got {mode!r}")
    manual_seed(seed)
    if workdir is None:
        workdir = tempfile.mkdtemp(prefix=f"closed-loop-{mode}-")
    spec = stream.spec
    ev = stream.events
    n = len(stream)
    num_nodes = spec.num_nodes
    warmup_end = int(n * warmup_frac)
    if not 0 < warmup_end < n:
        raise ValueError(f"warmup [0, {warmup_end}) must split the stream")

    model = EmbeddingLinkModel(num_nodes, dim=dim, seed=seed)
    optimizer = Adam(model.parameters(), lr=lr)
    items_lo = int(stream.meta.get("items_lo", 0))
    neg_sampler = NegativeSampler(
        np.arange(items_lo, num_nodes, dtype=np.int64), seed=spec.seed + 1
    )
    graph = TGraph(ev.src, ev.dst, ev.ts, num_nodes=num_nodes)
    trainer = ResilientTrainer(
        model, graph, optimizer, neg_sampler, batch_size,
        checkpoint_dir=os.path.join(workdir, "pretrain"),
        checkpoint_every=1_000_000,
    )
    pretrain = trainer.fine_tune(0, warmup_end, passes=pretrain_passes)
    if mode == "oracle":
        trainer.fine_tune(warmup_end, n, passes=passes)
    trainer.close()

    ctx = TContext(graph, store=store)
    memory = Memory(num_nodes, dim)
    mailbox = Mailbox(num_nodes, dim)
    sampler = TSampler(8, seed=5)
    wal_dir = os.path.join(workdir, "serve-wal")
    runtime = ServeRuntime(
        graph, ctx, memory, sampler, mailbox=mailbox,
        deadline=1.0e9, max_queue=1 << 30,
        durable_dir=wal_dir, durable_fsync="always", snapshot_every=None,
        feature_store=feature_store,
    )
    pretrain_watermark = float(ev.ts[warmup_end - 1])
    runtime.swap_model(model.embeddings(), watermark=pretrain_watermark)

    learner = None
    on_result = None
    if mode == "continual":
        learner = ContinualLearner(
            model, optimizer, neg_sampler,
            wal_dir=wal_dir, num_nodes=num_nodes,
            checkpoint_dir=os.path.join(workdir, "learner"),
            staleness_budget=staleness_budget,
            batch_size=batch_size, passes=passes,
            initial_watermark=pretrain_watermark,
        )

        def on_result(rt, _result):
            learner.sync(rt)

    serve_stream = ev.take(np.arange(warmup_end, n))
    batches = split_batches(serve_stream, request_size)
    results = replay(runtime, batches, load=load, on_result=on_result)
    if learner is not None:
        learner.sync(runtime, final=True)
        learner.close()

    scores = np.full(n, np.nan, dtype=np.float64)
    for result in results:
        if result.scores is None:
            continue
        lo = warmup_end + result.rid * request_size
        hi = min(lo + request_size, n)
        scores[lo:hi] = np.asarray(result.scores, dtype=np.float64)

    summary = accuracy_under_drift(stream, scores, num_windows=num_windows)
    out = {
        "mode": mode,
        "staleness_budget": staleness_budget,
        "warmup_end": warmup_end,
        "scores": scores,
        "summary": summary,
        "stats": runtime.stats(),
        "state_digest": serve_state_digest(runtime),
        "model_version": runtime.model_version,
        "pretrain_loss": pretrain.epochs[-1].train_loss if pretrain.epochs else None,
        "results": len(results),
        "learner": learner.stats() if learner is not None else None,
    }
    runtime.close()
    return out


def oracle_scores(stream: LabeledStream, **kwargs) -> Dict:
    """Convenience wrapper: :func:`run_closed_loop` in ``'oracle'`` mode."""
    kwargs.pop("mode", None)
    return run_closed_loop(stream, mode="oracle", **kwargs)
