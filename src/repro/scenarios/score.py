"""Accuracy-under-drift scoring for scenario streams.

The unit of measurement is a *scored stream*: per-event model scores
aligned with a :class:`~repro.scenarios.base.LabeledStream`'s
ground-truth labels (1 = genuine, 0 = noise/spam).  Windowed average
precision turns that into a curve over stream time — the quantity the
scenario matrix regresses on — and :func:`gap_recovered` condenses a
frozen/continual/oracle comparison into the single acceptance number
(share of the frozen→oracle AP gap that continual learning closes).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..bench.metrics import average_precision
from .base import LabeledStream

__all__ = [
    "windowed_ap",
    "accuracy_under_drift",
    "phase_ap",
    "gap_recovered",
]


def _clean(labels: np.ndarray, scores: np.ndarray):
    labels = np.asarray(labels, dtype=np.int64).reshape(-1)
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    if labels.shape != scores.shape:
        raise ValueError(
            f"labels ({labels.shape}) and scores ({scores.shape}) must align"
        )
    keep = np.isfinite(scores)
    return labels[keep], scores[keep]


def _window_ap(labels: np.ndarray, scores: np.ndarray) -> float:
    """AP of one window; NaN when the window has only one class."""
    if labels.sum() in (0, len(labels)):
        return float("nan")
    return average_precision(labels, scores)


def windowed_ap(
    labels: np.ndarray, scores: np.ndarray, num_windows: int = 10
) -> List[Dict]:
    """AP over equal-count windows of the stream, in order.

    Returns one ``{"window", "start", "stop", "ap", "positives"}`` dict
    per window; events with non-finite scores (e.g. not yet served) are
    dropped before windowing.  A single-class window reports ``ap=nan``.
    """
    labels, scores = _clean(labels, scores)
    n = len(labels)
    bounds = np.linspace(0, n, num_windows + 1).astype(int)
    out: List[Dict] = []
    for w in range(num_windows):
        lo, hi = bounds[w], bounds[w + 1]
        out.append(
            {
                "window": w,
                "start": int(lo),
                "stop": int(hi),
                "ap": _window_ap(labels[lo:hi], scores[lo:hi]),
                "positives": int(labels[lo:hi].sum()),
            }
        )
    return out


def accuracy_under_drift(
    stream: LabeledStream, scores: np.ndarray, num_windows: int = 10
) -> Dict:
    """The scenario-matrix summary for one scored stream.

    Returns overall AP, the :func:`windowed_ap` curve, per-phase AP, and
    the minimum windowed AP (the depth of the drift dip).
    """
    windows = windowed_ap(stream.labels, scores, num_windows=num_windows)
    labels, clean_scores = _clean(stream.labels, scores)
    finite = [w["ap"] for w in windows if np.isfinite(w["ap"])]
    return {
        "scenario": stream.spec.name,
        "seed": stream.spec.seed,
        "num_events": len(stream),
        "overall_ap": _window_ap(labels, clean_scores),
        "min_window_ap": min(finite) if finite else float("nan"),
        "windows": windows,
        "phases": phase_ap(stream, scores),
    }


def phase_ap(stream: LabeledStream, scores: np.ndarray) -> Dict[int, float]:
    """AP restricted to each scenario phase (pre/during/post ...)."""
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    out: Dict[int, float] = {}
    for p in np.unique(stream.phase):
        mask = (stream.phase == p) & np.isfinite(scores)
        if not mask.any():
            out[int(p)] = float("nan")
            continue
        out[int(p)] = _window_ap(stream.labels[mask], scores[mask])
    return out


def gap_recovered(frozen_ap: float, continual_ap: float, oracle_ap: float) -> float:
    """Fraction of the frozen→oracle AP gap the continual learner closed.

    1.0 = matched the oracle, 0.0 = no better than frozen; can exceed
    1.0 (beat the oracle) or go negative (made things worse).  When the
    oracle fails to beat frozen (gap <= 0) there is nothing to recover —
    returns 1.0 if continual at least matched frozen, else 0.0.
    """
    gap = oracle_ap - frozen_ap
    if gap <= 1e-9:
        return 1.0 if continual_ap >= frozen_ap - 1e-9 else 0.0
    return float((continual_ap - frozen_ap) / gap)
