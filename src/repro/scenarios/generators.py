"""The five built-in streaming scenario generators.

All generators share one *preference world*: the node space splits into
users and items, users belong to ``num_groups`` groups (``u % g``), the
items partition into ``g`` contiguous blocks, and in preference state
``s`` group ``k`` favours block ``(k + s) % g``.  A **genuine** event
(label 1) is a user interacting uniformly inside its preferred block; a
**noise** event (label 0) is a uniform random user-item pair.  A model
that has learned the current group→block table separates the two —
which is exactly what drift, floods, and churn disturb, so per-window
average precision over the labels measures accuracy under the scenario,
not just survival of it.

Every random draw comes from a named :func:`~repro.scenarios.base.stream_rng`
stream, so generators are deterministic per seed and mutually
decorrelated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..serve.events import EventBatch
from .base import LabeledStream, ScenarioSpec, register, stream_rng

__all__ = [
    "PreferenceWorld",
    "build_world",
    "flash_crowd",
    "spam_flood",
    "cold_start",
    "distribution_drift",
    "node_churn",
]


@dataclass(frozen=True)
class PreferenceWorld:
    """Users, items, and the group/block structure of one spec."""

    users: np.ndarray
    items: np.ndarray
    num_groups: int
    #: first item id of each block, and each block's length.
    block_start: np.ndarray
    block_len: np.ndarray

    def groups_of(self, users: np.ndarray) -> np.ndarray:
        return users % self.num_groups

    def preferred_block(self, users: np.ndarray, shift) -> np.ndarray:
        """Block index each user favours under preference state *shift*."""
        return (self.groups_of(users) + shift) % self.num_groups


def build_world(spec: ScenarioSpec) -> PreferenceWorld:
    num_users = max(spec.num_groups, int(round(spec.num_nodes * spec.user_frac)))
    num_users = min(num_users, spec.num_nodes - spec.num_groups)
    users = np.arange(num_users, dtype=np.int64)
    items = np.arange(num_users, spec.num_nodes, dtype=np.int64)
    bounds = np.linspace(0, len(items), spec.num_groups + 1).astype(np.int64)
    return PreferenceWorld(
        users=users,
        items=items,
        num_groups=spec.num_groups,
        block_start=items[0] + bounds[:-1],
        block_len=np.diff(bounds),
    )


def _dst_in_blocks(
    rng: np.random.Generator, world: PreferenceWorld, block_idx: np.ndarray
) -> np.ndarray:
    """One uniform item per event from each event's block index."""
    u = rng.random(len(block_idx))
    return (
        world.block_start[block_idx]
        + np.floor(u * world.block_len[block_idx]).astype(np.int64)
    )


def _genuine(
    rng: np.random.Generator,
    world: PreferenceWorld,
    n: int,
    shift,
    users: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """*n* preference-consistent ``(src, dst)`` pairs under state *shift*."""
    pool = world.users if users is None else users
    src = pool[rng.integers(0, len(pool), n)]
    dst = _dst_in_blocks(rng, world, world.preferred_block(src, shift))
    return src, dst


def _noise(
    rng: np.random.Generator, world: PreferenceWorld, n: int
) -> Tuple[np.ndarray, np.ndarray]:
    src = world.users[rng.integers(0, len(world.users), n)]
    dst = world.items[rng.integers(0, len(world.items), n)]
    return src, dst


def _mix_noise(
    rng: np.random.Generator,
    world: PreferenceWorld,
    src: np.ndarray,
    dst: np.ndarray,
    labels: np.ndarray,
    noise_frac: float,
    eligible: Optional[np.ndarray] = None,
) -> None:
    """Overwrite a *noise_frac* subset of events with label-0 noise, in place.

    *eligible* restricts which positions may be turned into noise (e.g.
    spam events stay spam).
    """
    mask = rng.random(len(src)) < noise_frac
    if eligible is not None:
        mask &= eligible
    k = int(mask.sum())
    if not k:
        return
    nsrc, ndst = _noise(rng, world, k)
    src[mask] = nsrc
    dst[mask] = ndst
    labels[mask] = 0


def _assemble(
    spec: ScenarioSpec,
    world: PreferenceWorld,
    src: np.ndarray,
    dst: np.ndarray,
    labels: np.ndarray,
    phase: np.ndarray,
    rate: Optional[np.ndarray] = None,
    meta: Optional[Dict] = None,
) -> LabeledStream:
    """Attach timestamps (+optional payload) and wrap as a LabeledStream.

    *rate* is the per-event arrival intensity: gaps are exponential with
    mean ``1/rate``, then the cumulative time is rescaled to ``t_max``,
    preserving relative rates (a rate-6 window is 6x denser than rate-1
    surroundings).
    """
    n = spec.num_events
    rng_t = stream_rng(spec, "time")
    gaps = rng_t.exponential(1.0, n)
    if rate is not None:
        gaps = gaps / np.maximum(np.asarray(rate, dtype=np.float64), 1e-9)
    ts = np.cumsum(gaps)
    ts = ts / ts[-1] * spec.t_max
    payload = None
    if spec.payload_dim:
        payload = (
            stream_rng(spec, "payload")
            .standard_normal((n, spec.payload_dim))
            .astype(np.float32)
        )
    events = EventBatch(np.arange(n, dtype=np.int64), src, dst, ts, payload)
    world_meta = {
        "num_users": len(world.users),
        "items_lo": int(world.items[0]),
        "num_groups": world.num_groups,
    }
    world_meta.update(meta or {})
    return LabeledStream(
        spec=spec,
        events=events,
        labels=labels,
        phase=phase,
        meta=world_meta,
    )


def _window(spec: ScenarioSpec, start_key: str, end_key: str, lo: float, hi: float):
    n = spec.num_events
    start = int(n * float(spec.knob(start_key, lo)))
    end = int(n * float(spec.knob(end_key, hi)))
    if not 0 <= start <= end <= n:
        raise ValueError(f"bad window [{start}, {end}) for {spec.name}")
    return start, end


@register("flash_crowd", "burst of genuine traffic piling onto a hot item set")
def flash_crowd(spec: ScenarioSpec) -> LabeledStream:
    """Arrival rate jumps ``amplitude``-fold inside the burst window and
    burst traffic concentrates on ``hot_items`` destinations (label 1 —
    a flash crowd is genuine demand).  Knobs: ``burst_start`` /
    ``burst_end`` (event fractions), ``amplitude``, ``hot_items``,
    ``hot_share``."""
    world = build_world(spec)
    n = spec.num_events
    start, end = _window(spec, "burst_start", "burst_end", 0.4, 0.6)
    amplitude = float(spec.knob("amplitude", 6.0))
    hot_items = int(spec.knob("hot_items", 8))
    hot_share = float(spec.knob("hot_share", 0.8))

    rng = stream_rng(spec, "events")
    src, dst = _genuine(rng, world, n, shift=0)
    labels = np.ones(n, dtype=np.int64)
    phase = np.zeros(n, dtype=np.int64)
    phase[start:end] = 1
    phase[end:] = 2

    hot = world.items[
        stream_rng(spec, "hot").choice(len(world.items), hot_items, replace=False)
    ]
    in_burst = np.zeros(n, dtype=bool)
    in_burst[start:end] = True
    goes_hot = in_burst & (stream_rng(spec, "hot_pick").random(n) < hot_share)
    k = int(goes_hot.sum())
    if k:
        dst[goes_hot] = hot[stream_rng(spec, "hot_dst").integers(0, hot_items, k)]

    _mix_noise(
        stream_rng(spec, "noise"), world, src, dst, labels, spec.noise_frac,
        eligible=~goes_hot,
    )
    rate = np.where(in_burst, amplitude, 1.0)
    return _assemble(
        spec, world, src, dst, labels, phase, rate=rate,
        meta={"hot": hot, "burst": (start, end), "amplitude": amplitude},
    )


@register("spam_flood", "adversarial spammers flooding random targets")
def spam_flood(spec: ScenarioSpec) -> LabeledStream:
    """Inside the flood window a ``spam_frac`` share of events comes from
    ``num_spammers`` source accounts spraying uniform destinations
    (label 0).  Knobs: ``flood_start`` / ``flood_end``, ``spam_frac``,
    ``num_spammers``."""
    world = build_world(spec)
    n = spec.num_events
    start, end = _window(spec, "flood_start", "flood_end", 0.35, 0.65)
    spam_frac = float(spec.knob("spam_frac", 0.6))
    num_spammers = int(spec.knob("num_spammers", 6))

    rng = stream_rng(spec, "events")
    src, dst = _genuine(rng, world, n, shift=0)
    labels = np.ones(n, dtype=np.int64)
    phase = np.zeros(n, dtype=np.int64)
    phase[start:end] = 1
    phase[end:] = 2

    spammers = world.users[
        stream_rng(spec, "spammers").choice(
            len(world.users), num_spammers, replace=False
        )
    ]
    in_flood = np.zeros(n, dtype=bool)
    in_flood[start:end] = True
    is_spam = in_flood & (stream_rng(spec, "spam_pick").random(n) < spam_frac)
    k = int(is_spam.sum())
    if k:
        rng_s = stream_rng(spec, "spam")
        src[is_spam] = spammers[rng_s.integers(0, num_spammers, k)]
        dst[is_spam] = world.items[rng_s.integers(0, len(world.items), k)]
        labels[is_spam] = 0

    _mix_noise(
        stream_rng(spec, "noise"), world, src, dst, labels, spec.noise_frac,
        eligible=~is_spam,
    )
    return _assemble(
        spec, world, src, dst, labels, phase,
        meta={"spammers": spammers, "flood": (start, end), "spam_frac": spam_frac},
    )


@register("cold_start", "user waves that only begin interacting mid-stream")
def cold_start(spec: ScenarioSpec) -> LabeledStream:
    """Users arrive in ``num_waves`` contiguous cohorts; wave ``w``
    produces no events before its activation point ``w/num_waves`` of
    the stream.  Phase = number of active waves minus one."""
    world = build_world(spec)
    n = spec.num_events
    num_waves = int(spec.knob("num_waves", 4))
    num_users = len(world.users)
    #: contiguous user chunks, orthogonal to the modulo group structure.
    wave_of = (world.users * num_waves) // num_users
    activation = np.array([int(n * w / num_waves) for w in range(num_waves)])

    rng = stream_rng(spec, "events")
    src = np.empty(n, dtype=np.int64)
    phase = np.searchsorted(activation, np.arange(n), side="right") - 1
    for w in range(num_waves):
        lo = activation[w]
        hi = activation[w + 1] if w + 1 < num_waves else n
        active_users = world.users[wave_of <= w]
        src[lo:hi] = active_users[rng.integers(0, len(active_users), hi - lo)]
    dst = _dst_in_blocks(rng, world, world.preferred_block(src, 0))
    labels = np.ones(n, dtype=np.int64)

    _mix_noise_cold(spec, world, wave_of, phase, src, dst, labels)
    return _assemble(
        spec, world, src, dst, labels, phase,
        meta={"wave_of": wave_of, "activation": activation, "num_waves": num_waves},
    )


def _mix_noise_cold(spec, world, wave_of, phase, src, dst, labels) -> None:
    """Noise for cold start must respect activations: a noise event's
    source is drawn from the users already active at that point."""
    rng = stream_rng(spec, "noise")
    mask = rng.random(len(src)) < spec.noise_frac
    idx = np.flatnonzero(mask)
    if not len(idx):
        return
    for i in idx:
        active_users = world.users[wave_of <= phase[i]]
        src[i] = active_users[rng.integers(0, len(active_users))]
        dst[i] = world.items[rng.integers(0, len(world.items))]
    labels[idx] = 0


@register("distribution_drift", "group→block preference flip, abrupt or gradual")
def distribution_drift(spec: ScenarioSpec) -> LabeledStream:
    """The preference table shifts by one block at ``drift_start``.
    ``mode='abrupt'`` flips instantly; ``'gradual'`` ramps the share of
    new-preference events linearly until ``drift_end``.  Phase 0 =
    pre-drift, 1 = transition (empty when abrupt), 2 = post-drift."""
    world = build_world(spec)
    n = spec.num_events
    mode = str(spec.knob("mode", "abrupt"))
    if mode not in ("abrupt", "gradual"):
        raise ValueError(f"drift mode must be 'abrupt' or 'gradual', got {mode!r}")
    start = int(n * float(spec.knob("drift_start", 0.5)))
    end = start if mode == "abrupt" else int(n * float(spec.knob("drift_end", 0.75)))
    if not 0 <= start <= end <= n:
        raise ValueError(f"bad drift window [{start}, {end})")

    idx = np.arange(n)
    if end > start:
        ramp = np.clip((idx - start) / (end - start), 0.0, 1.0)
    else:
        ramp = (idx >= start).astype(np.float64)
    shift = (stream_rng(spec, "ramp").random(n) < ramp).astype(np.int64)

    rng = stream_rng(spec, "events")
    src = world.users[rng.integers(0, len(world.users), n)]
    dst = _dst_in_blocks(rng, world, world.preferred_block(src, shift))
    labels = np.ones(n, dtype=np.int64)
    phase = np.zeros(n, dtype=np.int64)
    phase[(idx >= start) & (idx < end)] = 1
    phase[idx >= end] = 2

    _mix_noise(stream_rng(spec, "noise"), world, src, dst, labels, spec.noise_frac)
    return _assemble(
        spec, world, src, dst, labels, phase,
        meta={"drift": (start, end), "mode": mode, "shift": shift},
    )


@register("node_churn", "per-interval rotation of each block's active items")
def node_churn(spec: ScenarioSpec) -> LabeledStream:
    """Each block exposes an active subset (``active_frac``); every
    interval, ``churn_rate`` of each block's active items rotate out for
    dormant ones.  Genuine traffic targets active preferred items only.
    Phase = interval index; ``meta['active_sets']`` records the sets."""
    world = build_world(spec)
    n = spec.num_events
    num_intervals = int(spec.knob("num_intervals", 8))
    active_frac = float(spec.knob("active_frac", 0.5))
    churn_rate = float(spec.knob("churn_rate", 0.3))

    rng_c = stream_rng(spec, "churn")
    blocks = [
        np.arange(s, s + l, dtype=np.int64)
        for s, l in zip(world.block_start, world.block_len)
    ]
    active: List[np.ndarray] = []
    for block in blocks:
        k = max(1, int(round(len(block) * active_frac)))
        active.append(np.sort(rng_c.choice(block, k, replace=False)))

    rng = stream_rng(spec, "events")
    src = np.empty(n, dtype=np.int64)
    dst = np.empty(n, dtype=np.int64)
    phase = np.empty(n, dtype=np.int64)
    bounds = np.linspace(0, n, num_intervals + 1).astype(int)
    active_sets: List[np.ndarray] = []
    for k in range(num_intervals):
        lo, hi = bounds[k], bounds[k + 1]
        m = hi - lo
        phase[lo:hi] = k
        active_sets.append(np.sort(np.concatenate(active)))
        s = world.users[rng.integers(0, len(world.users), m)]
        pref = world.preferred_block(s, 0)
        src[lo:hi] = s
        for b in range(world.num_groups):
            sel = np.flatnonzero(pref == b)
            if len(sel):
                pool = active[b]
                dst[lo + sel] = pool[rng.integers(0, len(pool), len(sel))]
        # rotate each block's active set for the next interval
        for b, block in enumerate(blocks):
            out_n = int(round(len(active[b]) * churn_rate))
            dormant = np.setdiff1d(block, active[b], assume_unique=False)
            out_n = min(out_n, len(dormant))
            if not out_n:
                continue
            leaving = rng_c.choice(active[b], out_n, replace=False)
            joining = rng_c.choice(dormant, out_n, replace=False)
            active[b] = np.sort(
                np.concatenate([np.setdiff1d(active[b], leaving), joining])
            )
    labels = np.ones(n, dtype=np.int64)
    _mix_noise(stream_rng(spec, "noise"), world, src, dst, labels, spec.noise_frac)
    return _assemble(
        spec, world, src, dst, labels, phase,
        meta={
            "active_sets": active_sets,
            "num_intervals": num_intervals,
            "churn_rate": churn_rate,
        },
    )
