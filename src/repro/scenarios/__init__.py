"""Streaming scenario suite + train-on-serve-log continual learning.

This package closes ROADMAP item 4's loop between the serving runtime
and the resilient trainer:

* :mod:`~repro.scenarios.base` — :class:`ScenarioSpec`,
  :class:`LabeledStream` (events + ground-truth labels + phases), and
  the generator registry;
* :mod:`~repro.scenarios.generators` — the five built-in scenarios
  (``flash_crowd``, ``spam_flood``, ``cold_start``,
  ``distribution_drift``, ``node_churn``), all deterministic per seed;
* :mod:`~repro.scenarios.score` — windowed average precision,
  accuracy-under-drift summaries, and the frozen/continual/oracle
  gap-recovery metric;
* :mod:`~repro.scenarios.continual` — :class:`ContinualLearner`, which
  tails the serving WAL with prefix-consistent reads
  (:class:`repro.durable.WALCursor`), fine-tunes online through
  :class:`repro.bench.ResilientTrainer`, and hot-swaps the serving
  model under a staleness budget; plus the frozen/continual/oracle
  closed-loop harness :func:`run_closed_loop`.
"""

from .base import (
    LabeledStream,
    ScenarioSpec,
    available_scenarios,
    get_scenario,
    make_stream,
    register,
    stream_rng,
)
from .continual import (
    ContinualLearner,
    EmbeddingLinkModel,
    oracle_scores,
    run_closed_loop,
)
from .generators import (
    PreferenceWorld,
    build_world,
    cold_start,
    distribution_drift,
    flash_crowd,
    node_churn,
    spam_flood,
)
from .score import accuracy_under_drift, gap_recovered, phase_ap, windowed_ap

__all__ = [
    "ScenarioSpec",
    "LabeledStream",
    "register",
    "get_scenario",
    "available_scenarios",
    "make_stream",
    "stream_rng",
    "PreferenceWorld",
    "build_world",
    "flash_crowd",
    "spam_flood",
    "cold_start",
    "distribution_drift",
    "node_churn",
    "windowed_ap",
    "accuracy_under_drift",
    "phase_ap",
    "gap_recovered",
    "ContinualLearner",
    "EmbeddingLinkModel",
    "oracle_scores",
    "run_closed_loop",
]
