"""Scenario specs, labeled event streams, and the generator registry.

A *scenario* is a deterministic, seedable generator of a streaming
workload that the static JODIE-shaped datasets cannot express: bursts,
floods, cold starts, drift, churn.  Each generator is a function
``(spec) -> LabeledStream`` registered under a name; the stream's events
are a plain :class:`repro.serve.EventBatch` (directly replayable through
the serving runtime) and every event carries a ground-truth label so
accuracy-under-drift is measurable, not just throughput.

All randomness flows through :func:`repro.data.derive_rng` keyed by
``(seed, "scenario", name, stream)``, so two scenarios sharing a seed —
or a scenario composed with a synthetic dataset — never share or
perturb each other's random streams, and the same spec always yields a
byte-identical stream (tested via :meth:`LabeledStream.digest`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..data.synthetic import derive_rng
from ..serve.events import EventBatch

__all__ = [
    "ScenarioSpec",
    "LabeledStream",
    "register",
    "get_scenario",
    "available_scenarios",
    "make_stream",
    "stream_rng",
]


@dataclass(frozen=True)
class ScenarioSpec:
    """Recipe for one scenario stream.

    Attributes:
        name: registry name of the generator.
        num_nodes: total node-id space (users + items).
        num_events: stream length.
        payload_dim: per-event feature rows of this width (0 = none).
        seed: master seed; all streams derive from it via
            :func:`repro.data.derive_rng`.
        noise_frac: fraction of label-0 background noise events mixed
            into phases that have genuine traffic.
        user_frac: fraction of the node space acting as sources.
        num_groups: user groups == item blocks in the preference world.
        t_max: timestamp span of the stream.
        knobs: generator-specific parameters (burst window, drift mode,
            churn rate, ...); unknown keys are an error in the generator.
    """

    name: str
    num_nodes: int = 160
    num_events: int = 2400
    payload_dim: int = 0
    seed: int = 17
    noise_frac: float = 0.1
    user_frac: float = 0.5
    num_groups: int = 4
    t_max: float = 10_000.0
    knobs: Dict = field(default_factory=dict)

    def knob(self, key: str, default):
        return self.knobs.get(key, default)


@dataclass
class LabeledStream:
    """A scenario's output: events plus per-event ground truth.

    Attributes:
        spec: the spec that generated this stream.
        events: time-sorted :class:`EventBatch` with sequential eids.
        labels: int64, 1 = genuine (preference-consistent) interaction,
            0 = noise/spam — the positive class for AP scoring.
        phase: int64 per-event phase id (generator-defined: pre/during/
            post burst, drift stage, churn interval, user wave...).
        meta: generator-specific ground truth for shape assertions
            (burst window, spammer set, preference tables, ...).
    """

    spec: ScenarioSpec
    events: EventBatch
    labels: np.ndarray
    phase: np.ndarray
    meta: Dict = field(default_factory=dict)

    def __post_init__(self):
        self.labels = np.asarray(self.labels, dtype=np.int64)
        self.phase = np.asarray(self.phase, dtype=np.int64)
        n = len(self.events)
        if not (len(self.labels) == len(self.phase) == n):
            raise ValueError("labels/phase must match event count")

    def __len__(self) -> int:
        return len(self.events)

    def digest(self) -> str:
        """SHA-256 over every array byte — the determinism fingerprint."""
        h = hashlib.sha256()
        for arr in (
            self.events.eids,
            self.events.src,
            self.events.dst,
            self.events.ts,
            self.labels,
            self.phase,
        ):
            h.update(np.ascontiguousarray(arr).tobytes())
        if self.events.payload is not None:
            h.update(np.ascontiguousarray(self.events.payload).tobytes())
        return h.hexdigest()

    def take(self, index: np.ndarray) -> "LabeledStream":
        """Sub-stream selected by *index* (mask or positions)."""
        return LabeledStream(
            spec=self.spec,
            events=self.events.take(index),
            labels=self.labels[index],
            phase=self.phase[index],
            meta=self.meta,
        )

    def slice(self, start: int, stop: int) -> "LabeledStream":
        return self.take(np.arange(start, stop))

    def phase_bounds(self) -> List[Tuple[int, int, int]]:
        """``(phase_id, start, stop)`` runs of the phase array, in order."""
        out: List[Tuple[int, int, int]] = []
        if not len(self):
            return out
        start = 0
        for i in range(1, len(self) + 1):
            if i == len(self) or self.phase[i] != self.phase[start]:
                out.append((int(self.phase[start]), start, i))
                start = i
        return out


#: name -> (generator fn, one-line description)
_REGISTRY: Dict[str, Tuple[Callable[[ScenarioSpec], LabeledStream], str]] = {}


def register(name: str, description: str):
    """Decorator: register a ``(spec) -> LabeledStream`` generator."""

    def deco(fn):
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} already registered")
        _REGISTRY[name] = (fn, description)
        fn.scenario_name = name
        return fn

    return deco


def get_scenario(name: str) -> Callable[[ScenarioSpec], LabeledStream]:
    try:
        return _REGISTRY[name][0]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_scenarios() -> Dict[str, str]:
    """``{name: description}`` for every registered generator."""
    return {name: desc for name, (_, desc) in sorted(_REGISTRY.items())}


def make_stream(name: str, spec: Optional[ScenarioSpec] = None, **overrides) -> LabeledStream:
    """Build the named scenario's stream.

    ``make_stream("spam_flood", num_events=500, seed=3)`` constructs a
    default :class:`ScenarioSpec` with the overrides applied; passing an
    explicit *spec* re-targets it to *name* first.
    """
    fn = get_scenario(name)
    if spec is None:
        spec = ScenarioSpec(name=name, **overrides)
    else:
        spec = replace(spec, name=name, **overrides)
    stream = fn(spec)
    _check_stream(stream)
    return stream


def _check_stream(stream: LabeledStream) -> None:
    ev = stream.events
    if len(ev) != stream.spec.num_events:
        raise AssertionError(
            f"{stream.spec.name}: generated {len(ev)} events, "
            f"spec says {stream.spec.num_events}"
        )
    if len(ev) and not (np.diff(ev.ts) >= 0).all():
        raise AssertionError(f"{stream.spec.name}: timestamps not sorted")
    if len(ev) and not np.array_equal(ev.eids, np.arange(len(ev))):
        raise AssertionError(f"{stream.spec.name}: eids not sequential")


def stream_rng(spec: ScenarioSpec, stream: str) -> np.random.Generator:
    """The scenario-local RNG for one named random stream of *spec*."""
    return derive_rng(spec.seed, "scenario", spec.name, stream)
