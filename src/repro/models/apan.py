"""APAN on TGLite: asynchronous propagation attention network.

Mirrors the paper's Listing 6.  APAN inverts the usual order: embeddings
are generated *first* from messages already sitting in each node's mailbox
(size 10), then the batch's new messages are pushed outward to sampled
neighbors' mailboxes via the push-style ``propagate`` operator — no
neighborhood sampling sits on the embedding critical path, which is what
makes APAN suitable for real-time serving.

Components: attention over mailbox slots (with time encoding of message
staleness), GRU memory updates, and scatter-mean mail delivery.
"""

from __future__ import annotations

from typing import Optional  # noqa: F401 (used in signatures)

import numpy as np

from ..core import TBatch, TBlock, TContext, TSampler
from ..core import op as tgop
from ..nn import GRUCell, Linear, TimeEncode
from ..tensor import Tensor, cat, no_grad
from .base import OptFlags, TGNNModel

__all__ = ["APAN"]


class APAN(TGNNModel):
    """APAN (Wang et al.) built on TGLite.

    The graph needs ``Memory`` of width *dim_mem* and a ``Mailbox`` with
    *mailbox_slots* slots of width ``2 * dim_mem + dim_edge``.
    """

    def __init__(
        self,
        ctx: TContext,
        dim_node: int,
        dim_edge: int,
        dim_time: int = 100,
        dim_embed: int = 100,
        dim_mem: int = 100,
        num_heads: int = 2,
        num_nbrs: int = 10,
        mailbox_slots: int = 10,
        sampling: str = "recent",
        opt: Optional[OptFlags] = None,
    ):
        super().__init__(ctx, dim_embed, opt)
        if dim_embed % num_heads != 0:
            raise ValueError("dim_embed must be divisible by num_heads")
        self.dim_edge = dim_edge
        self.dim_mem = dim_mem
        self.dim_embed = dim_embed
        self.num_heads = num_heads
        self.mailbox_slots = mailbox_slots
        self.sampler = TSampler(num_nbrs, sampling)
        self.time_encoder = TimeEncode(dim_time)
        mail_dim = self.required_mailbox_dim(dim_mem, dim_edge)
        self.w_q = Linear(dim_mem, dim_embed)
        self.w_k = Linear(mail_dim + dim_time, dim_embed)
        self.w_v = Linear(mail_dim + dim_time, dim_embed)
        self.w_out = Linear(dim_mem + dim_embed, dim_embed)
        self.gru_cell = GRUCell(mail_dim + dim_time, dim_mem)
        self.feat_linear = Linear(dim_node, dim_mem) if dim_node else None

    @staticmethod
    def required_mailbox_dim(dim_mem: int, dim_edge: int) -> int:
        return 2 * dim_mem + dim_edge

    # ---- embedding via mailbox attention ----------------------------------------------

    def _slot_time_feat(self, deltas: np.ndarray) -> Tensor:
        flat = deltas.reshape(-1)
        if self.opt.time_precompute:
            enc = tgop.precomputed_times(self.ctx, self.time_encoder, flat)
        else:
            enc = self.time_encoder(Tensor(flat.astype(np.float32), device=self.ctx.device))
        return enc.reshape(deltas.shape[0], deltas.shape[1], enc.shape[1])

    def attention(
        self,
        nodes: np.ndarray,
        times: np.ndarray,
        mem: Optional[Tensor] = None,
        mail: Optional[Tensor] = None,
    ) -> Tensor:
        """Attend over each node's mailbox slots to produce embeddings.

        ``mem``/``mail`` may be passed in when the caller already fetched
        them (the memory update touches the same rows), avoiding a second
        host-to-device transfer.
        """
        g = self.g
        if mem is None:
            mem = self.fetch_rows(g.mem.data, nodes)
        if self.feat_linear is not None and g.nfeat is not None:
            feat = self.fetch_rows(g.nfeat, nodes)
            mem = mem + self.feat_linear(feat)
        if mail is None:
            mail = self.fetch_rows(g.mailbox.mail, nodes)
        mail_ts = g.mailbox.time[nodes]  # (n, slots)
        deltas = times[:, None] - mail_ts
        tfeat = self._slot_time_feat(deltas)

        n, slots = mail.shape[0], mail.shape[1]
        heads, d_head = self.num_heads, self.dim_embed // self.num_heads
        kv_in = cat([mail, tfeat], dim=2)
        q = self.w_q(mem).reshape(n, 1, heads, d_head)
        k = self.w_k(kv_in).reshape(n, slots, heads, d_head)
        v = self.w_v(kv_in).reshape(n, slots, heads, d_head)
        scores = (q * k).sum(dim=3) * (1.0 / np.sqrt(d_head))  # (n, slots, heads)
        attn = scores.softmax(dim=1)
        out = (v * attn.unsqueeze(3)).sum(dim=1)  # (n, heads, d_head)
        out = out.reshape(n, heads * d_head)
        return self.w_out(cat([mem, out], dim=1)).relu()

    # ---- memory update & mail propagation -------------------------------------------------

    def update_memory(self, nodes: np.ndarray, times: np.ndarray):
        """GRU-update memory from the mean of each node's mailbox slots.

        Returns ``(new_memory, mail)`` so the attention step can reuse the
        already-fetched rows.
        """
        g = self.g
        mail = self.fetch_rows(g.mailbox.mail, nodes)
        mail_mean = mail.mean(dim=1)
        mail_ts = g.mailbox.time[nodes].max(axis=1)
        delta = mail_ts - g.mem.time[nodes]
        tfeat = self.time_encoder(Tensor(delta.astype(np.float32), device=self.ctx.device))
        prev = self.fetch_rows(g.mem.data, nodes)
        mem = self.gru_cell(cat([mail_mean, tfeat], dim=1), prev)
        fresh = mail_ts > g.mem.time[nodes]
        if fresh.any():
            idx = np.flatnonzero(fresh)
            g.mem.update(
                nodes[idx],
                self.to_storage(mem.detach()[idx], g.mem.device),
                mail_ts[idx],
            )
        return mem, mail

    def create_mails(self, batch: TBatch, blk: TBlock) -> None:
        """Build per-endpoint mails from current memory and edge features."""
        with no_grad():
            g = self.g
            mem_src = self.fetch_rows(g.mem.data, batch.src)
            mem_dst = self.fetch_rows(g.mem.data, batch.dst)
            if g.efeat is not None and self.dim_edge:
                ef = self.fetch_rows(g.efeat, batch.eids)
                mail_s = cat([mem_src, mem_dst, ef], dim=1)
                mail_d = cat([mem_dst, mem_src, ef], dim=1)
            else:
                mail_s = cat([mem_src, mem_dst], dim=1)
                mail_d = cat([mem_dst, mem_src], dim=1)
            blk.dstdata["mail"] = cat([mail_s, mail_d], dim=0)

    def send_mails(self, blk: TBlock) -> None:
        """Scatter-mean each block's mails onto its unique source nodes."""
        if blk.num_src == 0 or "mail" not in blk.dstdata:
            return
        with no_grad():
            mail = blk.dstdata["mail"][blk.dstindex]
            mail = tgop.src_scatter(blk, mail, op="mean")
            ts_rows = Tensor(
                blk.dsttimes[blk.dstindex].astype(np.float32).reshape(-1, 1),
                device=self.ctx.device,
            )
            mail_ts = tgop.src_scatter(blk, ts_rows, op="mean")
            uniq = blk.uniq_src()[0]
            store_mail = self.to_storage(mail, self.g.mailbox.device)
            self.g.mailbox.store(uniq, store_mail, mail_ts.data.reshape(-1))

    # ---- forward ------------------------------------------------------------------------------

    def compute_embeddings(self, batch: TBatch) -> Tensor:
        nodes = batch.nodes()
        times = batch.times()
        mem, mail = self.update_memory(nodes, times)
        embeds = self.attention(nodes, times, mem=mem, mail=mail)

        # Propagate this batch's messages outward (to endpoints' neighbors
        # *and* the endpoints themselves, which see their own interaction).
        endpoints = np.concatenate([batch.src, batch.dst])
        ep_times = np.tile(batch.ts, 2).astype(np.float64)
        blk = TBlock(self.ctx, 0, endpoints, ep_times)
        self.sampler.sample(blk)
        # Deliver each endpoint's mail to itself by appending self-rows.
        self_rows = np.arange(len(endpoints), dtype=np.int64)
        blk.set_nbrs(
            np.concatenate([blk.srcnodes, endpoints]),
            np.concatenate([blk.eids, np.tile(batch.eids, 2)]),
            np.concatenate([blk.etimes, ep_times]),
            np.concatenate([blk.dstindex, self_rows]),
        )
        self.create_mails(batch, blk)
        tgop.propagate(blk, self.send_mails)
        return embeds
