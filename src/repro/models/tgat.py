"""TGAT on TGLite: multi-hop temporal attention with time encoding.

Mirrors the paper's Listing 2: the model iteratively creates a chain of
TBlocks (one per layer), applies optimization operators to each block
before sampling (``dedup``/``cache``), samples temporal neighbors,
optionally preloads the chain's data through pinned memory, seeds the tail
with raw node features, and runs pull-style ``aggregate`` through the
temporal attention layers.
"""

from __future__ import annotations

from typing import Optional

from ..core import TBatch, TContext, TSampler
from ..core import op as tgop
from ..store import ops as store_ops
from ..nn import ModuleList
from ..tensor import Tensor
from .attention import TemporalAttnLayer
from .base import OptFlags, TGNNModel

__all__ = ["TGAT"]


class TGAT(TGNNModel):
    """Temporal Graph Attention Network (Xu et al.) built on TGLite.

    Args:
        ctx: TGLite context.
        dim_node: raw node feature width.
        dim_edge: raw edge feature width.
        dim_time: time-encoding width.
        dim_embed: embedding width (all layers).
        num_layers: attention hops (paper evaluates 2).
        num_heads: attention heads.
        num_nbrs: temporal neighbors sampled per hop (paper evaluates 10).
        dropout: output dropout within attention layers.
        sampling: ``'recent'`` or ``'uniform'``.
        opt: which optimization operators to apply (see :class:`OptFlags`).
    """

    def __init__(
        self,
        ctx: TContext,
        dim_node: int,
        dim_edge: int,
        dim_time: int = 100,
        dim_embed: int = 100,
        num_layers: int = 2,
        num_heads: int = 2,
        num_nbrs: int = 10,
        dropout: float = 0.1,
        sampling: str = "recent",
        opt: Optional[OptFlags] = None,
    ):
        super().__init__(ctx, dim_embed, opt)
        self.num_layers = num_layers
        self.num_nbrs = num_nbrs
        self.sampler = TSampler(num_nbrs, sampling)
        layers = []
        for i in range(num_layers):
            layers.append(
                TemporalAttnLayer(
                    ctx,
                    num_heads=num_heads,
                    dim_node=dim_node if i == 0 else dim_embed,
                    dim_edge=dim_edge,
                    dim_time=dim_time,
                    dim_out=dim_embed,
                    dropout=dropout,
                    opt_time_precompute=self.opt.time_precompute,
                )
            )
        # layers[0] consumes raw features (applied at the tail block).
        self.attn_layers = ModuleList(layers)

    def compute_embeddings(self, batch: TBatch) -> Tensor:
        head = batch.block(self.ctx)
        tail = head
        for i in range(self.num_layers):
            if i > 0:
                tail = tail.next_block()
            if self.opt.dedup:
                tail = tgop.dedup(tail)
            if self.opt.cache:
                tail = store_ops.memoize(self.ctx, tail)
            tail = self.sampler.sample(tail)
        if self.opt.preload:
            store_ops.preload(head, use_pin=self.opt.pin_memory)
        tail.dstdata["h"] = tail.dstfeat()
        tail.srcdata["h"] = tail.srcfeat()
        return tgop.aggregate(head, list(self.attn_layers), key="h")
