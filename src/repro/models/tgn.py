"""TGN on TGLite: temporal attention combined with GRU node memory.

Mirrors the paper's Listing 4.  Per batch:

1. build the block chain exactly like TGAT;
2. ``update_memory`` — consume each involved node's mailbox message (from
   *earlier* batches, avoiding information leakage) through a time-encoded
   GRU, persisting the new memory and returning it for embedding use;
3. seed the tail with ``linear(features) + memory`` and aggregate;
4. ``save_raw_msgs`` — build this batch's raw messages from current memory
   and edge features, ``coalesce`` to the latest message per node, and
   store them in the mailbox for the next batch.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core import TBatch, TBlock, TContext, TSampler
from ..core import op as tgop
from ..store import ops as store_ops
from ..nn import GRUCell, Linear, ModuleList, TimeEncode
from ..tensor import Tensor, cat, no_grad
from .attention import TemporalAttnLayer
from .base import OptFlags, TGNNModel

__all__ = ["TGN"]


class TGN(TGNNModel):
    """Temporal Graph Network (Rossi et al.) built on TGLite.

    The graph must have ``Memory`` of width *dim_mem* and a single-slot
    ``Mailbox`` of width ``2 * dim_mem + dim_edge`` attached (see
    :meth:`required_mailbox_dim`).
    """

    def __init__(
        self,
        ctx: TContext,
        dim_node: int,
        dim_edge: int,
        dim_time: int = 100,
        dim_embed: int = 100,
        dim_mem: int = 100,
        num_layers: int = 2,
        num_heads: int = 2,
        num_nbrs: int = 10,
        dropout: float = 0.1,
        sampling: str = "recent",
        opt: Optional[OptFlags] = None,
    ):
        super().__init__(ctx, dim_embed, opt)
        self.num_layers = num_layers
        self.dim_mem = dim_mem
        self.dim_edge = dim_edge
        self.sampler = TSampler(num_nbrs, sampling)
        self.mem_time_encoder = TimeEncode(dim_time)
        mail_dim = self.required_mailbox_dim(dim_mem, dim_edge)
        self.gru_cell = GRUCell(mail_dim + dim_time, dim_mem)
        self.feat_linear = Linear(dim_node, dim_mem) if dim_node else None
        layers = []
        for i in range(num_layers):
            layers.append(
                TemporalAttnLayer(
                    ctx,
                    num_heads=num_heads,
                    dim_node=dim_mem if i == 0 else dim_embed,
                    dim_edge=dim_edge,
                    dim_time=dim_time,
                    dim_out=dim_embed,
                    dropout=dropout,
                    opt_time_precompute=self.opt.time_precompute,
                )
            )
        self.attn_layers = ModuleList(layers)

    @staticmethod
    def required_mailbox_dim(dim_mem: int, dim_edge: int) -> int:
        """Mailbox message width: [own memory, peer memory, edge features]."""
        return 2 * dim_mem + dim_edge

    # ---- memory machinery -----------------------------------------------------------

    def update_memory(self, blk: TBlock) -> Tensor:
        """GRU-update memory for the block's nodes from mailbox messages.

        Implements Eqs. (9-11): the stored raw message plus a time encoding
        of (delivery time - last update time) drive a GRU whose hidden
        state is the node's previous memory.  New values are persisted
        (detached) and returned (attached) for use in the embeddings, which
        is how memory modules receive gradients through the batch loss.
        """
        nodes = blk.allnodes()
        mail = blk.mail()
        mail_ts = blk.mail_ts()
        delta = mail_ts - self.g.mem.time[nodes]
        tfeat = tgop.precomputed_times(self.ctx, self.mem_time_encoder, delta) \
            if self.opt.time_precompute \
            else self.mem_time_encoder(Tensor(delta.astype(np.float32), device=self.ctx.device))
        gru_input = cat([mail, tfeat], dim=1)
        mem = self.gru_cell(gru_input, blk.mem_data())
        self.g.mem.update(
            nodes, self.to_storage(mem.detach(), self.g.mem.device), mail_ts
        )
        return mem

    def save_raw_msgs(self, batch: TBatch) -> None:
        """Store this batch's raw messages for consumption by later batches."""
        blk = batch.block_adj(self.ctx)
        blk = tgop.coalesce(blk, by="latest")  # latest message per node
        with no_grad():
            own = self.fetch_rows(self.g.mem.data, blk.dstnodes)
            peer = self.fetch_rows(self.g.mem.data, blk.srcnodes)
            if self.g.efeat is not None and self.dim_edge:
                mail = cat([own, peer, blk.efeat()], dim=1)
            else:
                mail = cat([own, peer], dim=1)
            store_mail = self.to_storage(mail, self.g.mailbox.device)
            self.g.mailbox.store(blk.dstnodes, store_mail, blk.etimes)

    # ---- forward ----------------------------------------------------------------------

    def compute_embeddings(self, batch: TBatch) -> Tensor:
        head = batch.block(self.ctx)
        tail = head
        for i in range(self.num_layers):
            if i > 0:
                tail = tail.next_block()
            if self.opt.dedup:
                tail = tgop.dedup(tail)
            # cache() is not applied for TGN: memory updates invalidate
            # cached embeddings every batch (Appendix A of the paper).
            tail = self.sampler.sample(tail)
        if self.opt.preload:
            store_ops.preload(head, use_pin=self.opt.pin_memory)

        mem = self.update_memory(tail)
        if self.feat_linear is not None:
            h_all = self.feat_linear(tail.nfeat()) + mem
        else:
            h_all = mem
        tail.dstdata["h"] = h_all[: tail.num_dst]
        tail.srcdata["h"] = h_all[tail.num_dst :]
        embeds = tgop.aggregate(head, list(self.attn_layers), key="h")
        self.save_raw_msgs(batch)
        return embeds
