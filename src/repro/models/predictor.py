"""Link-prediction head shared by all four TGNN models.

Follows TGL's ``EdgePredictor``: project source and destination embeddings
separately, combine with ReLU, and emit a scalar logit per candidate edge.
"""

from __future__ import annotations

from typing import Tuple

from ..nn import Linear, Module
from ..tensor import Tensor

__all__ = ["EdgePredictor"]


class EdgePredictor(Module):
    """Score candidate edges from endpoint embeddings.

    Args:
        dim: embedding dimensionality of each endpoint.
        dim_hidden: hidden width of the combiner (defaults to ``dim``).
    """

    def __init__(self, dim: int, dim_hidden: int = None):
        super().__init__()
        hidden = dim if dim_hidden is None else dim_hidden
        self.src_fc = Linear(dim, hidden)
        self.dst_fc = Linear(dim, hidden)
        self.out_fc = Linear(hidden, 1)

    def forward(self, h_src: Tensor, h_dst: Tensor) -> Tensor:
        """Logits of shape ``(n,)`` for each (src, dst) embedding pair."""
        h = (self.src_fc(h_src) + self.dst_fc(h_dst)).relu()
        return self.out_fc(h).squeeze(1)

    def score_batch(self, embeds: Tensor, batch_size: int) -> Tuple[Tensor, Tensor]:
        """Split stacked ``[src, dst, neg]`` embeddings and score pos/neg pairs.

        Args:
            embeds: ``(3 * batch_size, dim)`` embeddings laid out as the
                head block of a batch produces them.
            batch_size: number of positive edges in the batch.

        Returns:
            ``(pos_logits, neg_logits)``, each of shape ``(batch_size,)``.
        """
        h_src = embeds[:batch_size]
        h_dst = embeds[batch_size : 2 * batch_size]
        h_neg = embeds[2 * batch_size :]
        return self.forward(h_src, h_dst), self.forward(h_src, h_neg)
