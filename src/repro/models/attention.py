"""Temporal multi-head attention layer over a TBlock (Eqs. 4-7).

The layer expresses TGAT's temporal self-attention "edge-wise": per source
row it computes an attention score against the row's destination query,
normalizes with :func:`~repro.core.op.edge_softmax` within each
destination's neighbor group, and reduces weighted values with
:func:`~repro.core.op.edge_reduce` — the natural TBlock formulation the
paper contrasts against batched-matmul/masked-softmax gymnastics.
"""

from __future__ import annotations

import math

import numpy as np

from ..core import TBlock, TContext
from ..core import op as tgop
from ..nn import Dropout, LayerNorm, Linear, Module, TimeEncode
from ..tensor import Tensor, cat

__all__ = ["TemporalAttnLayer"]


class TemporalAttnLayer(Module):
    """One hop of temporal attention aggregation.

    Args:
        ctx: TGLite context (placement + precompute scratch).
        num_heads: attention heads.
        dim_node: width of the incoming ``dstdata['h']``/``srcdata['h']``.
        dim_edge: edge feature width (0 if the graph has none).
        dim_time: time-encoding width.
        dim_out: output embedding width.
        dropout: dropout on the output.
        opt_time_precompute: when True, query time vectors from the
            context's precomputed tables in inference mode (the paper's
            ``precomputed_zeros``/``precomputed_times`` operators);
            when False, always encode through the TimeEncode module.
    """

    def __init__(
        self,
        ctx: TContext,
        num_heads: int,
        dim_node: int,
        dim_edge: int,
        dim_time: int,
        dim_out: int,
        dropout: float = 0.1,
        opt_time_precompute: bool = False,
    ):
        super().__init__()
        if dim_out % num_heads != 0:
            raise ValueError("dim_out must be divisible by num_heads")
        self.ctx = ctx
        self.num_heads = num_heads
        self.dim_node = dim_node
        self.dim_time = dim_time
        self.dim_out = dim_out
        self.opt_time_precompute = opt_time_precompute
        self.time_encoder = TimeEncode(dim_time)
        self.w_q = Linear(dim_node + dim_time, dim_out)
        self.w_k = Linear(dim_node + dim_edge + dim_time, dim_out)
        self.w_v = Linear(dim_node + dim_edge + dim_time, dim_out)
        self.w_out = Linear(dim_node + dim_out, dim_out)
        self.layer_norm = LayerNorm(dim_out)
        self.dropout = Dropout(dropout)

    def _zero_time(self, n: int) -> Tensor:
        if self.opt_time_precompute:
            return tgop.precomputed_zeros(self.ctx, self.time_encoder, n)
        return self.time_encoder(Tensor(np.zeros(n, dtype=np.float32), device=self.ctx.device))

    def _nbr_time(self, deltas: np.ndarray) -> Tensor:
        if self.opt_time_precompute:
            return tgop.precomputed_times(self.ctx, self.time_encoder, deltas)
        return self.time_encoder(Tensor(deltas.astype(np.float32), device=self.ctx.device))

    def forward(self, blk: TBlock) -> Tensor:
        """Compute destination embeddings ``(num_dst, dim_out)`` for *blk*."""
        h_dst = blk.dstdata["h"]
        if blk.num_src == 0:
            # No temporal neighbors anywhere: output reduces to the FFN of
            # the destination features with a zero aggregate.
            zeros = Tensor(
                np.zeros((blk.num_dst, self.dim_out), dtype=np.float32),
                device=self.ctx.device,
            )
            out = self.w_out(cat([zeros, h_dst], dim=1))
            return self.layer_norm(self.dropout(out.relu()))

        h_src = blk.srcdata["h"]
        tfeat_dst = self._zero_time(blk.num_dst)  # Phi(0), Eq. (4)
        tfeat_src = self._nbr_time(blk.time_deltas())  # Phi(t - t_j), Eq. (5)

        zq = cat([h_dst, tfeat_dst], dim=1)
        if blk.g.efeat is not None:
            zk = cat([h_src, blk.efeat(), tfeat_src], dim=1)
        else:
            zk = cat([h_src, tfeat_src], dim=1)

        heads = self.num_heads
        d_head = self.dim_out // heads
        q = self.w_q(zq).reshape(blk.num_dst, heads, d_head)
        k = self.w_k(zk).reshape(blk.num_src, heads, d_head)
        v = self.w_v(zk).reshape(blk.num_src, heads, d_head)

        # Edge-wise attention logits: dot(Q_dst, K_src) per head.
        q_rows = q[blk.dstindex]  # (num_src, heads, d_head)
        scores = (q_rows * k).sum(dim=2) * (1.0 / math.sqrt(d_head))
        attn = tgop.edge_softmax(blk, scores)  # Eq. (6)
        weighted = v * attn.unsqueeze(2)
        reduced = tgop.edge_reduce(blk, weighted.reshape(blk.num_src, self.dim_out), op="sum")

        out = self.w_out(cat([reduced, h_dst], dim=1))  # Eq. (7)
        return self.layer_norm(self.dropout(out.relu()))
