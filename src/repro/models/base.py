"""Shared scaffolding for the TGLite-based model implementations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..core import TBatch, TContext
from ..nn import Module
from ..tensor import Tensor
from .predictor import EdgePredictor

__all__ = ["OptFlags", "TGNNModel"]


@dataclass
class OptFlags:
    """Which TGLite optimization operators a model applies.

    Matches the paper's settings: ``TGLite`` = only ``preload`` (data
    movement), ``TGLite+opt`` = all applicable operators, with ``cache``
    and the precomputed-time operators taking effect at inference only
    (the operators themselves are training-aware).
    """

    dedup: bool = False
    cache: bool = False
    time_precompute: bool = False
    preload: bool = False
    pin_memory: bool = True

    @classmethod
    def none(cls) -> "OptFlags":
        """No optimization operators (pure baseline semantics)."""
        return cls()

    @classmethod
    def preload_only(cls) -> "OptFlags":
        """The paper's plain ``TGLite`` setting."""
        return cls(preload=True)

    @classmethod
    def all(cls) -> "OptFlags":
        """The paper's ``TGLite+opt`` setting."""
        return cls(dedup=True, cache=True, time_precompute=True, preload=True)


class TGNNModel(Module):
    """Base class: holds the context, predictor, and scoring helper."""

    def __init__(self, ctx: TContext, dim_embed: int, opt: Optional[OptFlags] = None):
        super().__init__()
        self.ctx = ctx
        self.opt = opt if opt is not None else OptFlags.none()
        self.edge_predictor = EdgePredictor(dim_embed)

    @property
    def g(self):
        return self.ctx.graph

    def fetch_rows(self, store: Tensor, idx) -> Tensor:
        """Gather rows from a graph-level store onto the compute device.

        Honors the ``preload`` optimization: host-resident rows are staged
        through the context's pinned pool (pinned DMA bandwidth) instead of
        paying pageable rates — the same data-movement policy TBlock
        accessors apply under ``op.preload()``.
        """
        rows = store.data[idx]
        if (
            self.opt.preload
            and self.opt.pin_memory
            and store.device.is_cpu
            and self.ctx.device.is_cuda
        ):
            return self.ctx.stage_pinned(rows).to(self.ctx.device)
        return Tensor(rows, device=store.device).to(self.ctx.device)

    def to_storage(self, tensor: Tensor, device) -> Tensor:
        """Move a computed tensor back to a storage device (e.g. mailbox).

        Device-to-host write-back goes through pinned staging when the
        ``preload`` optimization is on.
        """
        pinned_route = self.opt.preload and self.opt.pin_memory
        return tensor.to(device, via_pinned=pinned_route)

    def train(self, mode: bool = True) -> "TGNNModel":
        super().train(mode)
        self.ctx.train(mode)
        return self

    def reset_state(self) -> None:
        """Zero any persistent state (memory/mailbox) before an epoch."""
        self.g.reset_state()
        self.ctx.clear_embed_cache()

    def compute_embeddings(self, batch: TBatch) -> Tensor:
        """Embeddings for the batch's [src, dst, neg] targets."""
        raise NotImplementedError

    def forward(self, batch: TBatch) -> Tuple[Tensor, Tensor]:
        """Positive and negative edge logits for a batch.

        Requires ``batch.neg_nodes`` to be attached by the caller.
        """
        if batch.neg_nodes is None:
            raise ValueError("batch has no negative samples attached")
        embeds = self.compute_embeddings(batch)
        return self.edge_predictor.score_batch(embeds, len(batch))
