"""TGLite-based implementations of the four TGNN models from the paper.

* :class:`TGAT` — time-encoding + multi-hop temporal attention.
* :class:`TGN` — TGAT-style attention combined with GRU node memory.
* :class:`JODIE` — RNN memory with time-projected embeddings (no sampling).
* :class:`APAN` — mailbox attention with asynchronous push propagation.

All models share the :class:`EdgePredictor` head and the
:class:`OptFlags` switchboard selecting which TGLite optimization
operators (``dedup``/``cache``/``preload``/time precompute) are applied.
"""

from .apan import APAN
from .attention import TemporalAttnLayer
from .base import OptFlags, TGNNModel
from .jodie import JODIE
from .predictor import EdgePredictor
from .tgat import TGAT
from .tgn import TGN

__all__ = [
    "APAN",
    "JODIE",
    "TGAT",
    "TGN",
    "TGNNModel",
    "OptFlags",
    "EdgePredictor",
    "TemporalAttnLayer",
]
