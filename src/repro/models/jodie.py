"""JODIE on TGLite: RNN memory updates with time-projected embeddings.

Mirrors the paper's Listing 5.  JODIE performs no neighborhood sampling or
aggregation: each node's embedding is a time-aware projection of its
memory, which an RNN cell updates from mailbox messages.  Because of this
simplicity no further optimization operators apply (the paper skips the
``TGLite+opt`` setting for JODIE).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core import TBatch, TContext
from ..core import op as tgop
from ..nn import Linear, RNNCell, TimeEncode
from ..tensor import Tensor, cat, no_grad
from .base import OptFlags, TGNNModel

__all__ = ["JODIE"]


class JODIE(TGNNModel):
    """JODIE (Kumar et al.) built on TGLite.

    The graph needs ``Memory`` of width *dim_mem* and a single-slot
    ``Mailbox`` of width ``dim_mem + dim_edge``.
    """

    def __init__(
        self,
        ctx: TContext,
        dim_node: int,
        dim_edge: int,
        dim_time: int = 100,
        dim_embed: int = 100,
        dim_mem: int = 100,
        opt: Optional[OptFlags] = None,
    ):
        super().__init__(ctx, dim_embed, opt)
        self.dim_edge = dim_edge
        self.dim_mem = dim_mem
        self.time_encoder = TimeEncode(dim_time)
        self.rnn_cell = RNNCell(dim_mem + dim_edge + dim_time, dim_mem)
        self.feat_linear = Linear(dim_node, dim_mem) if dim_node else None
        # Time-projected embedding: emb = W([mem', Phi(t - t_mem)]).
        self.embed_linear = Linear(dim_mem + dim_time, dim_embed)

    @staticmethod
    def required_mailbox_dim(dim_mem: int, dim_edge: int) -> int:
        return dim_mem + dim_edge

    def update_memory(self, nodes: np.ndarray):
        """RNN-update memory for *nodes* from their mailbox messages.

        Returns ``(new_memory, mail_ts)``; new values are persisted
        detached, and only for nodes whose mail is newer than their last
        memory update (so repeated reads never double-apply a message).
        """
        g = self.g
        mem_ts = g.mem.time[nodes]
        mail_ts = g.mailbox.time[nodes]
        delta = mail_ts - mem_ts
        tfeat = self.time_encoder(Tensor(delta.astype(np.float32), device=self.ctx.device))
        mail = self.fetch_rows(g.mailbox.mail, nodes)
        prev_mem = self.fetch_rows(g.mem.data, nodes)
        rnn_input = cat([mail, tfeat], dim=1)
        mem = self.rnn_cell(rnn_input, prev_mem)
        fresh = mail_ts > mem_ts
        if fresh.any():
            idx = np.flatnonzero(fresh)
            g.mem.update(
                nodes[idx],
                self.to_storage(mem.detach()[idx], g.mem.device),
                mail_ts[idx],
            )
        return mem, mail_ts

    def save_raw_msgs(self, batch: TBatch) -> None:
        """Store batch messages (peer memory + edge features) in the mailbox."""
        blk = batch.block_adj(self.ctx)
        blk = tgop.coalesce(blk, by="latest")
        with no_grad():
            peer = self.fetch_rows(self.g.mem.data, blk.srcnodes)
            if self.g.efeat is not None and self.dim_edge:
                mail = cat([peer, blk.efeat()], dim=1)
            else:
                mail = peer
            store_mail = self.to_storage(mail, self.g.mailbox.device)
            self.g.mailbox.store(blk.dstnodes, store_mail, blk.etimes)

    def compute_embeddings(self, batch: TBatch) -> Tensor:
        nodes = batch.nodes()
        times = batch.times()
        mem, _ = self.update_memory(nodes)
        if self.feat_linear is not None and self.g.nfeat is not None:
            mem = mem + self.feat_linear(self.fetch_rows(self.g.nfeat, nodes))
        # Project memory forward to the query time.
        proj_delta = times - self.g.mem.time[nodes]
        proj_tfeat = self.time_encoder(Tensor(proj_delta.astype(np.float32), device=self.ctx.device))
        embeds = self.embed_linear(cat([mem, proj_tfeat], dim=1))
        self.save_raw_msgs(batch)
        return embeds
