"""The `FeatureStore` API: one interface over every feature/embedding cache.

Historically the codebase grew three divergent ways to cache and move
feature rows — ``TContext``'s per-layer embedding caches (``cache_limit``),
the ``op.cache()`` / ``op.preload()`` operators, and the raw
:class:`~repro.core.kernels.cache.NodeTimeCache` kernel — and every new
consumer (trainer, serving ladder, continual learner) re-wired them by
hand.  This module defines the one interface they all now route through:

* :class:`FeatureStore` — the protocol (``get`` / ``put`` / ``prefetch``
  / ``evict`` / ``stats``) any tiered row store implements.
* :class:`StoreConfig` — the knobs (hot capacity & eviction policy,
  staging size, cold directory, prefetch depth, modeled bandwidths),
  shared verbatim by the ``--store-hot-mb`` / ``--store-cold-dir`` /
  ``--prefetch-depth`` CLI flags of every ``python -m repro.bench``
  subcommand.
* :class:`TierStats` / :class:`StoreStats` — first-class accounting:
  bytes moved per tier and stall seconds paid vs saved by prefetch,
  surfaced through ``ctx.stats().store`` and the benchmark tables.

The concrete implementation is
:class:`~repro.store.tiered.TieredFeatureStore`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

import numpy as np

try:  # pragma: no cover - typing fallback for very old Pythons
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object

    def runtime_checkable(cls):
        return cls


__all__ = ["StoreConfig", "TierStats", "StoreStats", "StoreClock", "FeatureStore"]

#: tier names, hottest first (the demotion chain runs left to right).
TIERS = ("hot", "staging", "cold")


@dataclass
class StoreConfig:
    """Configuration shared by every tiered feature store and CLI surface.

    Capacities may be given in rows (exact) or in MiB (``*_mb``; resolved
    to rows once a space's row width is known — MiB wins when both are
    set).  Bandwidths are modeled bytes/second on the simulated clock,
    scaled for the numpy substrate like
    :mod:`repro.bench.experiments`'s PCIe bandwidths.
    """

    #: hot-tier capacity in rows per space (the embedding-cache size the
    #: legacy ``TContext(cache_limit=...)`` knob used to set).
    hot_capacity: int = 20000
    #: hot-tier budget in MiB (overrides ``hot_capacity`` when set).
    hot_mb: Optional[float] = None
    #: hot-tier eviction policy: ``'reuse'`` (reuse-distance-aware,
    #: default) or ``'fifo'`` (the legacy ring).
    hot_policy: str = "reuse"
    #: pinned staging-tier capacity in rows per space.
    staging_rows: int = 4096
    #: staging-tier budget in MiB (overrides ``staging_rows`` when set).
    staging_mb: Optional[float] = None
    #: directory for the mmap-backed cold tier; ``None`` keeps demoted
    #: rows in anonymous host memory (same accounting, no file).
    cold_dir: Optional[str] = None
    #: batches of sampler lookahead the prefetcher keeps in flight;
    #: ``0`` disables prefetching entirely.
    prefetch_depth: int = 1
    #: neighbor fanout of the one-batch sampler lookahead.
    prefetch_fanout: int = 10
    #: modeled cold-tier (disk/mmap) bandwidth, bytes/second.
    disk_bandwidth: float = 8.0e6
    #: modeled staging->device (pinned) bandwidth, bytes/second; ``None``
    #: reads the live :data:`repro.tensor.device.runtime` setting.
    pinned_bandwidth: Optional[float] = None
    #: modeled compute seconds per consumed row — the overlap window a
    #: prefetched transfer can hide behind.
    compute_seconds_per_row: float = 2.0e-6

    def __post_init__(self):
        # The prefetch scheduler currently keeps exactly one batch in
        # flight; depths beyond 1 would be silently served as depth 1,
        # so reject them until multi-depth scheduling lands (ROADMAP
        # item 3) instead of quietly under-delivering.
        if self.prefetch_depth > 1:
            raise ValueError(
                f"prefetch_depth={self.prefetch_depth} is not supported "
                "yet: the prefetcher schedules at most one batch of "
                "lookahead, so depths > 1 would silently behave as 1. "
                "Use prefetch_depth=1 (or 0 to disable)."
            )

    def resolve_rows(self, budget_mb: Optional[float], rows: int,
                     dim: Optional[int]) -> int:
        """Rows for a ``budget_mb``/``rows`` pair given a row width."""
        if budget_mb is None or dim is None or dim <= 0:
            return int(rows)
        return max(1, int(budget_mb * (1 << 20) / (4 * dim)))

    def hot_rows(self, dim: Optional[int]) -> int:
        return self.resolve_rows(self.hot_mb, self.hot_capacity, dim)

    def staging_capacity(self, dim: Optional[int]) -> int:
        return self.resolve_rows(self.staging_mb, self.staging_rows, dim)

    def with_overrides(self, **kwargs) -> "StoreConfig":
        """A copy with the given fields replaced (``None`` values kept)."""
        return replace(self, **{k: v for k, v in kwargs.items() if v is not None})


@dataclass
class TierStats:
    """Row/byte accounting for one tier of the hierarchy."""

    hits: int = 0
    misses: int = 0
    #: bytes that landed in this tier (from a colder one, or fresh puts).
    bytes_in: int = 0
    #: bytes read out of this tier toward a hotter one / the consumer.
    bytes_out: int = 0
    #: resident entries displaced from this tier.
    evictions: int = 0
    #: displaced entries demoted *into* this tier from a hotter one.
    demotions: int = 0
    #: injected/detected faults while reading this tier (cold: disk.read).
    faults: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits, "misses": self.misses,
            "bytes_in": self.bytes_in, "bytes_out": self.bytes_out,
            "evictions": self.evictions, "demotions": self.demotions,
            "faults": self.faults,
        }


@dataclass
class StoreStats:
    """One snapshot of a feature store's accounting.

    ``stall_seconds`` is the simulated time consumers spent blocked on
    transfers; ``stall_saved_seconds`` is the transfer time the async
    prefetcher absorbed (the stall a no-prefetch store would have paid
    minus what was actually paid).  Both are first-class benchmark rows.
    """

    tiers: Dict[str, TierStats] = field(default_factory=dict)
    prefetch_issued: int = 0
    #: prefetched rows consumed after their transfer completed (stall 0).
    prefetch_hits: int = 0
    #: prefetched rows consumed before the transfer finished (partial stall).
    prefetch_late: int = 0
    #: prefetched rows dropped without ever being consumed.
    prefetch_unused: int = 0
    stall_seconds: float = 0.0
    stall_saved_seconds: float = 0.0

    @property
    def bytes_moved(self) -> int:
        """Total bytes moved between tiers (sum of per-tier inflow)."""
        return sum(t.bytes_in for t in self.tiers.values())

    @property
    def stall_recovered_fraction(self) -> float:
        """Fraction of would-be stall time the prefetcher recovered."""
        would_be = self.stall_seconds + self.stall_saved_seconds
        return self.stall_saved_seconds / would_be if would_be > 0 else 0.0

    def as_dict(self) -> Dict[str, float]:
        flat: Dict[str, float] = {}
        for tier, t in self.tiers.items():
            for k, v in t.as_dict().items():
                flat[f"{tier}:{k}"] = v
        flat.update(
            prefetch_issued=self.prefetch_issued,
            prefetch_hits=self.prefetch_hits,
            prefetch_late=self.prefetch_late,
            prefetch_unused=self.prefetch_unused,
            stall_seconds=self.stall_seconds,
            stall_saved_seconds=self.stall_saved_seconds,
        )
        return flat


class StoreClock:
    """Minimal monotone simulated clock (seconds).

    Interface-compatible with :class:`repro.serve.clock.SimClock`; the
    serving runtime passes its own clock in so store stalls and ladder
    costs share one timeline.  Defined here (not imported) to keep
    ``repro.store`` importable from ``repro.core`` without cycles.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError(f"cannot advance the clock by {seconds} (negative)")
        self._now += float(seconds)
        return self._now

    def __repr__(self) -> str:
        return f"StoreClock(now={self._now:.6g})"


@runtime_checkable
class FeatureStore(Protocol):
    """The one interface every feature/embedding cache front-end uses.

    Implementations are keyed by *space* (a named row universe such as
    ``'nfeat'``, ``'mem'``, or ``'embed:0'``) and by ``(node, time)``
    within a space (``times=None`` means time-invariant node rows).
    """

    def get(self, nodes: np.ndarray, times: Optional[np.ndarray] = None,
            space: str = "nfeat") -> np.ndarray:
        """Resolve rows through the tiers, paying (and recording) stalls."""
        ...  # pragma: no cover - protocol

    def put(self, nodes: np.ndarray, times: Optional[np.ndarray],
            rows: np.ndarray, space: str = "nfeat") -> None:
        """Insert rows into the hot tier (evictions demote down the chain)."""
        ...  # pragma: no cover - protocol

    def prefetch(self, nodes: np.ndarray, times: Optional[np.ndarray] = None,
                 space: str = "nfeat") -> int:
        """Schedule async cold->staging transfers; returns rows issued."""
        ...  # pragma: no cover - protocol

    def evict(self, space: Optional[str] = None) -> None:
        """Drop cached tiers, spills included (source authorities survive)."""
        ...  # pragma: no cover - protocol

    def stats(self) -> StoreStats:
        """Snapshot of per-tier bytes moved and prefetch effectiveness."""
        ...  # pragma: no cover - protocol
