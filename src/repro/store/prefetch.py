"""Async prefetcher: one-batch sampler lookahead on the simulated clock.

While the consumer computes batch *N*, the pipeline predicts batch
*N+1*'s working set — its endpoint nodes plus a most-recent-``k``
neighbor sample over the temporal CSR, the same prediction the real
sampler will make — and issues :meth:`TieredFeatureStore.prefetch` for
the spaces that batch will gather.  Batch *N*'s modeled compute time
then advances the clock, so by the time *N+1* executes its transfers
have (partially) completed and its gathers stall less.  The recovered
stall shows up as ``stall_saved_seconds`` in the store's stats.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from ..core.kernels.sample import temporal_sample
from .tiered import TieredFeatureStore

__all__ = ["BatchPipeline", "attach_graph_sources"]


def attach_graph_sources(store: TieredFeatureStore, graph) -> tuple:
    """Register the graph's bulk arrays as the store's source spaces.

    Backs ``'nfeat'`` with the node-feature table and ``'mem'`` with the
    node-memory table (each only when the graph has one), so lookahead
    prefetch and demand gathers resolve against the live authorities.
    Returns the tuple of spaces registered.
    """
    spaces = []
    if getattr(graph, "nfeat", None) is not None:
        feat = graph.nfeat
        store.register_source(
            "nfeat", lambda nodes: feat.data[nodes], dim=int(feat.shape[1])
        )
        spaces.append("nfeat")
    if getattr(graph, "mem", None) is not None:
        mem = graph.mem
        store.register_source(
            "mem", lambda nodes: mem.data.data[nodes], dim=int(mem.data.shape[1])
        )
        spaces.append("mem")
    return tuple(spaces)


class BatchPipeline:
    """Wraps a batch iterator with lookahead-driven prefetch.

    Args:
        store: the tiered store transfers are issued against.
        graph: the :class:`~repro.core.graph.TGraph` batches come from
            (its CSR drives the neighbor lookahead).
        spaces: store spaces to prefetch for each predicted batch;
            spaces the store has never seen are skipped.
        fanout: neighbor fanout of the lookahead sample; defaults to the
            store config's ``prefetch_fanout``.

    Use :meth:`batches` as a drop-in transform::

        for batch in pipeline.batches(iter_batches(g, size)):
            ...train on batch...
    """

    def __init__(self, store: TieredFeatureStore, graph,
                 spaces: Sequence[str] = ("nfeat", "mem"),
                 fanout: Optional[int] = None):
        self.store = store
        self.graph = graph
        self.spaces = tuple(spaces)
        self.fanout = int(fanout if fanout is not None
                          else store.config.prefetch_fanout)
        #: predicted rows prefetched per space (diagnostic).
        self.issued = 0

    # ---- working-set prediction ---------------------------------------------------

    def predict_nodes(self, batch) -> np.ndarray:
        """Batch endpoints + their most-recent-k temporal neighbors."""
        nodes = np.asarray(batch.nodes(), dtype=np.int64)
        if len(nodes) == 0:
            return nodes
        out = [nodes]
        if self.fanout > 0:
            csr = self.graph.csr()
            res = temporal_sample(csr.indptr, csr.indices, csr.eids,
                                  csr.etimes, nodes, batch.times(),
                                  self.fanout, strategy="recent")
            if len(res.srcnodes):
                out.append(res.srcnodes)
        return np.unique(np.concatenate(out))

    def prefetch_batch(self, batch) -> int:
        """Issue prefetches for one upcoming batch; returns rows issued."""
        if self.store.config.prefetch_depth <= 0:
            return 0
        nodes = self.predict_nodes(batch)
        if len(nodes) == 0:
            return 0
        issued = 0
        for space in self.spaces:
            if space in self.store.spaces():
                issued += self.store.prefetch(nodes, None, space=space)
        self.issued += issued
        return issued

    def consume_batch(self, batch) -> int:
        """Gather one batch's working set through the store.

        Models the data-load the consumer performs for *batch*: rows an
        earlier prefetch already staged are consumed (crediting
        ``stall_saved_seconds``), everything else pays the demand stall.
        Returns the number of rows gathered.
        """
        nodes = self.predict_nodes(batch)
        if len(nodes) == 0:
            return 0
        rows = 0
        for space in self.spaces:
            if space in self.store.spaces():
                found, _ = self.store.lookup(nodes, None, space=space)
                rows += int(found.sum())
        return rows

    # ---- clock modeling -----------------------------------------------------------

    def compute_seconds(self, batch) -> float:
        """Modeled compute time of one batch (the overlap window)."""
        rows = len(batch.nodes()) * (1 + self.fanout)
        return rows * self.store.config.compute_seconds_per_row

    def advance(self, batch) -> None:
        """Advance the simulated clock past *batch*'s compute."""
        self.store.clock.advance(self.compute_seconds(batch))

    # ---- the pipeline -------------------------------------------------------------

    def batches(self, iterable: Iterable) -> Iterator:
        """Yield batches while prefetching one batch ahead.

        Lookahead depth follows ``config.prefetch_depth`` (0 disables
        prefetch; the clock still advances so timing stays comparable).
        """
        depth = max(0, int(self.store.config.prefetch_depth))
        it = iter(iterable)
        window: list = []
        # Prime: the head batch runs immediately (nothing can be ahead of
        # it); the `depth` batches behind it are prefetched at clock zero
        # so their transfers overlap the head's compute.
        for batch in it:
            window.append(batch)
            if len(window) > 1:
                self.prefetch_batch(batch)
            if len(window) >= depth + 1:
                break
        while window:
            batch = window.pop(0)
            self.consume_batch(batch)
            yield batch
            self.advance(batch)
            nxt = next(it, None)
            if nxt is not None:
                if depth > 0:
                    self.prefetch_batch(nxt)
                window.append(nxt)
