"""Tier building blocks: pinned staging pool and the cold row store.

The hot and staging tiers of :class:`~repro.store.tiered.TieredFeatureStore`
are both :class:`~repro.core.kernels.cache.NodeTimeCache` rings (batched
open-addressing kernels, explicit eviction surfacing); this module holds
the remaining pieces:

* :class:`PinnedPool` — reusable pinned host staging buffers (moved here
  from ``repro.core.context``; ``TContext`` re-exports it for
  compatibility).
* :class:`SourceTier` — a cold tier backed by an authoritative in-memory
  array (raw node features, memory vectors): always resolvable, never
  written to.
* :class:`ColdTier` — a spill tier of checksummed float32 rows, backed by
  an mmap'ed file when a directory is configured (anonymous host memory
  otherwise).  Reads go through the ``disk.read`` fault-injection site —
  an injected bit flip is caught by the per-row checksum and repaired by
  a single re-read, surfacing as a counted fault instead of silent
  corruption.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from ..integrity.errors import IntegrityUnrepairable
from ..resilience.hooks import poke as _poke
from ..tensor import Tensor
from ..tensor.device import CPU

__all__ = ["PinnedPool", "SourceTier", "ColdTier"]


class PinnedPool:
    """Reusable pinned staging buffers, keyed by trailing row shape + dtype.

    Mirrors TGLite's pre-allocated pinned-memory pool: staging copies
    gathered feature rows into a pooled buffer so the (simulated) DMA
    engine can transfer at pinned bandwidth without per-batch allocation.
    """

    def __init__(self):
        self._buffers: Dict[Tuple[Tuple[int, ...], str], np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def stage(self, rows: np.ndarray) -> Tensor:
        """Copy *rows* into a pooled pinned host buffer and return it."""
        key = (rows.shape[1:], rows.dtype.str)
        buf = self._buffers.get(key)
        if buf is None or buf.shape[0] < rows.shape[0]:
            capacity = max(rows.shape[0], 2 * (buf.shape[0] if buf is not None else 0))
            buf = np.empty((capacity,) + rows.shape[1:], dtype=rows.dtype)
            self._buffers[key] = buf
            self.misses += 1
        else:
            self.hits += 1
        view = buf[: rows.shape[0]]
        np.copyto(view, rows)
        staged = Tensor(view, device=CPU, pinned=True)
        return staged

    def clear(self) -> None:
        self._buffers.clear()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0


class SourceTier:
    """Cold tier over an authoritative array (or gather callable).

    Node-keyed: query times are ignored, matching raw feature / memory
    semantics where the row is the per-node ground truth.
    """

    def __init__(self, source: Union[np.ndarray, Callable[[np.ndarray], np.ndarray]],
                 dim: Optional[int] = None):
        self._fetch: Callable[[np.ndarray], np.ndarray]
        if callable(source):
            if dim is None:
                raise ValueError("dim is required for a callable source")
            self._fetch = source
            self.dim = int(dim)
        else:
            arr = np.asarray(source)
            self._fetch = lambda nodes: arr[nodes]
            self.dim = int(arr.shape[1])

    def rebind(self, source: Union[np.ndarray, Callable[[np.ndarray], np.ndarray]]) -> None:
        """Point the tier at a fresh authority (e.g. after a model swap)."""
        if callable(source):
            self._fetch = source
        else:
            arr = np.asarray(source)
            if int(arr.shape[1]) != self.dim:
                raise ValueError(
                    f"rebind changes row width {self.dim} -> {arr.shape[1]}")
            self._fetch = lambda nodes: arr[nodes]

    def contains(self, nodes: np.ndarray, times: Optional[np.ndarray]) -> np.ndarray:
        return np.ones(len(nodes), dtype=bool)

    def read(self, nodes: np.ndarray, times: Optional[np.ndarray]) -> np.ndarray:
        rows = np.asarray(self._fetch(np.asarray(nodes, dtype=np.int64)))
        return rows.astype(np.float32, copy=False)


def _row_checksums(rows: np.ndarray) -> np.ndarray:
    """One uint64 additive checksum per float32 row (vectorized)."""
    flat = np.ascontiguousarray(rows, dtype=np.float32)
    return flat.view(np.uint32).astype(np.uint64).sum(axis=1)


class ColdTier:
    """Spill store of checksummed float32 rows, optionally mmap-backed.

    Keys are (node, time) pairs; rows are written on demotion from the
    staging tier and read back on promotion.  With a ``directory`` the
    rows live in an mmap'ed ``<space>.cold.f32`` file that grows by
    doubling; without one they live in anonymous host memory with
    identical accounting.  Every read verifies per-row checksums after
    passing the raw bytes through the ``disk.read`` injection site; a
    mismatch (injected or real) is repaired by one clean re-read and
    counted in :attr:`faults`.
    """

    def __init__(self, dim: int, directory: Optional[str] = None,
                 space: str = "cold"):
        self.dim = int(dim)
        self.path: Optional[str] = None
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            safe = space.replace("/", "_").replace(":", "_")
            self.path = os.path.join(directory, f"{safe}.cold.f32")
        self.faults = 0
        self._index: Dict[Tuple[int, float], int] = {}
        self._rows: Optional[np.ndarray] = None
        self._sums = np.zeros(0, dtype=np.uint64)
        self._nrows = 0

    # ---- capacity -----------------------------------------------------------------

    @property
    def num_entries(self) -> int:
        return len(self._index)

    @property
    def nbytes(self) -> int:
        return self._nrows * self.dim * 4

    def _ensure(self, needed: int) -> None:
        have = 0 if self._rows is None else self._rows.shape[0]
        if needed <= have:
            return
        cap = max(64, needed, 2 * have)
        if self.path is None:
            grown = np.zeros((cap, self.dim), dtype=np.float32)
            if self._rows is not None:
                grown[:have] = self._rows
            self._rows = grown
        else:
            # Extend the backing file, then remap: prior bytes persist, so
            # the old view's contents carry over without an explicit copy.
            if self._rows is not None:
                self._rows.flush()
                del self._rows
            with open(self.path, "ab") as fh:
                fh.truncate(cap * self.dim * 4)
            self._rows = np.memmap(self.path, dtype=np.float32, mode="r+",
                                   shape=(cap, self.dim))
        grown_sums = np.zeros(cap, dtype=np.uint64)
        grown_sums[: len(self._sums)] = self._sums
        self._sums = grown_sums

    # ---- keys ---------------------------------------------------------------------

    def _slots(self, nodes: np.ndarray, times: Optional[np.ndarray],
               create: bool) -> np.ndarray:
        n = len(nodes)
        out = np.full(n, -1, dtype=np.int64)
        index = self._index
        for i in range(n):
            key = (int(nodes[i]), float(times[i]) if times is not None else 0.0)
            slot = index.get(key)
            if slot is None and create:
                slot = self._nrows
                index[key] = slot
                self._nrows += 1
            out[i] = -1 if slot is None else slot
        return out

    def contains(self, nodes: np.ndarray, times: Optional[np.ndarray]) -> np.ndarray:
        return self._slots(nodes, times, create=False) >= 0

    # ---- I/O ----------------------------------------------------------------------

    def write(self, nodes: np.ndarray, times: Optional[np.ndarray],
              rows: np.ndarray) -> int:
        """Store rows (last write wins per key); returns bytes written."""
        if len(nodes) == 0:
            return 0
        rows = np.ascontiguousarray(rows, dtype=np.float32)
        slots = self._slots(nodes, times, create=True)
        self._ensure(self._nrows)
        self._rows[slots] = rows
        self._sums[slots] = _row_checksums(rows)
        return rows.nbytes

    def read(self, nodes: np.ndarray, times: Optional[np.ndarray]) -> np.ndarray:
        """Read resident rows back, checksum-verified; raises KeyError on absent keys."""
        slots = self._slots(nodes, times, create=False)
        if (slots < 0).any():
            raise KeyError(
                f"{int((slots < 0).sum())} of {len(slots)} keys absent from cold tier")
        raw = np.array(self._rows[slots], dtype=np.float32)
        if raw.size:
            directive = _poke("disk.read", path=self.path or "<anon-cold>",
                              size=raw.nbytes)
            if directive is not None and directive[0] == "flip":
                flat = raw.view(np.uint8).reshape(-1)
                flat[directive[1] % len(flat)] ^= np.uint8(1 << directive[2])
        bad = _row_checksums(raw) != self._sums[slots]
        if bad.any():
            # Injected (or real) corruption: repair with one clean re-read
            # and surface the incident instead of returning garbage.
            self.faults += int(bad.sum())
            raw[bad] = self._rows[slots[bad]]
            # Re-verify: when the backing rows themselves rotted, the
            # re-read returns the same bad bytes — the preferred repair
            # source is degraded, and serving them silently is the one
            # thing an integrity layer must never do.
            still = _row_checksums(raw[bad]) != self._sums[slots[bad]]
            if still.any():
                raise IntegrityUnrepairable(
                    f"cold tier {self.path or '<anon-cold>'}: "
                    f"{int(still.sum())} row(s) fail checksum after re-read "
                    "(backing store corrupt, no deeper repair source)",
                    component="cold", rows=int(still.sum()),
                )
        return raw

    def scrub(self, source=None, authority: bool = False) -> Dict[str, int]:
        """Checksum-verify every resident row; repair, drop, or raise.

        Corrupt rows are rewritten from *source* (``source(nodes, times)
        -> rows`` — the deeper authority) when one is given.  Without
        one, a spill *cache* drops the corrupt entries so the next read
        faults through to the authority, while ``authority=True`` (these
        rows are the only copy) raises :class:`IntegrityUnrepairable`.
        Returns ``{"checked", "corrupt", "repaired", "dropped"}``.
        """
        if self._nrows == 0:
            return {"checked": 0, "corrupt": 0, "repaired": 0, "dropped": 0}
        live = _row_checksums(np.asarray(self._rows[: self._nrows]))
        bad_slots = set(np.flatnonzero(live != self._sums[: self._nrows]).tolist())
        checked = self._nrows
        if not bad_slots:
            return {"checked": checked, "corrupt": 0, "repaired": 0, "dropped": 0}
        bad_keys = [k for k, slot in self._index.items() if slot in bad_slots]
        corrupt = len(bad_keys)
        # Orphaned slots (entries dropped by an earlier scrub) carry no
        # data anyone can read: resign their checksums so they stop
        # re-flagging every cycle.
        orphans = np.array(
            sorted(bad_slots - set(self._index.values())), dtype=np.int64
        )
        if len(orphans):
            self._sums[orphans] = live[orphans]
        if source is not None and bad_keys:
            nodes = np.array([k[0] for k in bad_keys], dtype=np.int64)
            times = np.array([k[1] for k in bad_keys], dtype=np.float64)
            rows = np.ascontiguousarray(source(nodes, times), dtype=np.float32)
            slots = np.array([self._index[k] for k in bad_keys], dtype=np.int64)
            self._rows[slots] = rows
            self._sums[slots] = _row_checksums(rows)
            self.faults += corrupt
            return {"checked": checked, "corrupt": corrupt,
                    "repaired": corrupt, "dropped": 0}
        if authority:
            raise IntegrityUnrepairable(
                f"cold tier {self.path or '<anon-cold>'}: {corrupt} "
                "authoritative row(s) corrupt with no repair source",
                component="cold", rows=corrupt,
            )
        for key in bad_keys:
            slot = self._index.pop(key)
            self._sums[slot] = live[slot]
        self.faults += corrupt
        return {"checked": checked, "corrupt": corrupt, "repaired": 0,
                "dropped": corrupt}

    def clear(self) -> None:
        """Forget all rows (the backing file, if any, is left for reuse)."""
        self._index.clear()
        self._nrows = 0
        self._sums = np.zeros(0, dtype=np.uint64)
        if self.path is None:
            self._rows = None
