"""`repro.store`: the tiered feature store behind every cache front-end.

Hierarchy (hottest first)::

    hot (device-resident ring, reuse-distance eviction)
      -> staging (pinned host rows: demotions + prefetched transfers)
        -> cold (authoritative source array, or checksummed mmap spill)

One implementation — :class:`TieredFeatureStore` — serves every
front-end: ``TContext`` embedding caches, ``op.cache``/``op.preload``
(now deprecation shims over :mod:`repro.store.ops`), the TGL baseline's
feature gathers, the trainer (via :class:`BatchPipeline` sampler
lookahead), and the serving degradation ladder (via
``estimate_fetch_seconds``).  Bytes moved per tier and stall time
saved by async prefetch are first-class outputs (``store.stats()``,
``ctx.stats().store``, benchmark tables).
"""

from .api import FeatureStore, StoreClock, StoreConfig, StoreStats, TierStats
from .prefetch import BatchPipeline
from .tiered import TieredFeatureStore
from .tiers import ColdTier, PinnedPool, SourceTier
from . import ops

__all__ = [
    "FeatureStore",
    "StoreClock",
    "StoreConfig",
    "StoreStats",
    "TierStats",
    "TieredFeatureStore",
    "BatchPipeline",
    "ColdTier",
    "PinnedPool",
    "SourceTier",
    "ops",
]
