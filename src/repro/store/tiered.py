"""`TieredFeatureStore`: hot cache -> pinned staging -> cold tier.

The concrete :class:`~repro.store.api.FeatureStore`.  Rows live in named
*spaces* — ``'nfeat'`` / ``'mem'`` style spaces backed by an authoritative
source array (always resolvable), and memoization spaces such as
``'embed:0'`` holding computed embeddings (resolvable only while cached).
Each space owns a three-level hierarchy:

* **hot** — a :class:`~repro.core.kernels.cache.NodeTimeCache` ring
  (reuse-distance eviction by default); hits are device-resident and
  free.
* **staging** — a FIFO :class:`NodeTimeCache` of pinned host rows fed by
  hot-tier demotions and by the prefetcher; hits pay only the pinned
  host->device leg.
* **cold** — the authority: a :class:`~repro.store.tiers.SourceTier`
  view of the raw feature array, or a checksummed
  :class:`~repro.store.tiers.ColdTier` spill file for demoted
  embeddings; reads pay the cold leg (serialized disk bandwidth for
  spill files, pageable bandwidth for in-memory sources) plus the
  pinned leg.

Evictions cascade down the chain through ``on_evict`` callbacks
(hot -> staging -> cold), so nothing is silently dropped while a colder
tier can hold it.  All movement is charged to the simulated
device-transfer model (:data:`repro.tensor.device.runtime`) tagged with
the tier it crossed, and stall time is modeled against the store's
simulated clock — :meth:`prefetch` completes transfers in the
background, so rows consumed after their ready time cost nothing and
the difference is booked as ``stall_saved_seconds``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from ..core.kernels.cache import NodeTimeCache
from ..core.kernels.dedup import unique_node_times
from ..tensor.device import runtime as _device_runtime
from .api import StoreConfig, StoreStats, TierStats, StoreClock
from .tiers import ColdTier, PinnedPool, SourceTier

__all__ = ["TieredFeatureStore"]


def _times_or_zero(nodes: np.ndarray, times: Optional[np.ndarray]) -> np.ndarray:
    if times is None:
        return np.zeros(len(nodes), dtype=np.float64)
    return np.asarray(times, dtype=np.float64) + 0.0  # canonical -0.0 -> +0.0


class _Space:
    """One named row universe and its three tiers."""

    def __init__(self, name: str, store: "TieredFeatureStore"):
        self.name = name
        self.store = store
        self.dim: Optional[int] = None
        cfg = store.config
        self.hot = NodeTimeCache(
            cfg.hot_rows(None), timer=store._timer, policy=cfg.hot_policy,
            on_evict=self._demote_to_staging,
        )
        self.staging = NodeTimeCache(
            cfg.staging_capacity(None), timer=store._timer, policy="fifo",
            on_evict=self._demote_to_cold,
        )
        self.cold: Optional[Union[SourceTier, ColdTier]] = None
        if cfg.cold_dir is not None:
            self.cold = None  # created lazily once the row width is known
        #: prefetched keys in flight:
        #: (node, time) -> (ready_time, per-key cold-leg share, group leg)
        self.inflight: Dict[Tuple[int, float], Tuple[float, float, float]] = {}

    # ---- demotion chain -----------------------------------------------------------

    def _demote_to_staging(self, nodes: np.ndarray, times: np.ndarray,
                           rows: np.ndarray) -> None:
        st = self.store
        st._tiers["hot"].evictions += len(nodes)
        if not self.staging.enabled:
            self._spill(nodes, times, rows)  # staging disabled: skip the hop
            return
        st._tiers["staging"].demotions += len(nodes)
        st._tiers["staging"].bytes_in += rows.nbytes
        _device_runtime.transfer(rows.nbytes, pinned=True, tier="staging")
        self.staging.store(nodes, times, rows)

    def _demote_to_cold(self, nodes: np.ndarray, times: np.ndarray,
                        rows: np.ndarray) -> None:
        st = self.store
        st._tiers["staging"].evictions += len(nodes)
        for i in range(len(nodes)):
            if self.inflight.pop((int(nodes[i]), float(times[i])), None) is not None:
                st._prefetch_unused += 1
        self._spill(nodes, times, rows)

    def _spill(self, nodes: np.ndarray, times: np.ndarray,
               rows: np.ndarray) -> None:
        st = self.store
        if isinstance(self.cold, SourceTier):
            return  # the authority already holds these rows; nothing to spill
        if self.cold is None:
            if st.config.cold_dir is None:
                return  # no spill tier configured: recomputable rows drop
            self._ensure_cold(rows.shape[1])
        st._tiers["cold"].demotions += len(nodes)
        st._tiers["cold"].bytes_in += rows.nbytes
        _device_runtime.transfer(rows.nbytes, pinned=False, tier="cold")
        self.cold.write(nodes, times, rows)

    def _ensure_cold(self, dim: int) -> None:
        if self.cold is None:
            self.cold = ColdTier(dim, directory=self.store.config.cold_dir,
                                 space=self.name)


class TieredFeatureStore:
    """The one tiering/eviction implementation behind every cache front-end.

    Args:
        config: knobs shared with the CLI surface (see
            :class:`~repro.store.api.StoreConfig`); defaults apply.
        clock: simulated clock stalls are modeled against; accepts the
            serving runtime's ``SimClock`` so store transfers and ladder
            deadlines share one timeline.  A private
            :class:`~repro.store.api.StoreClock` is used if omitted.
        timer: optional ``(name, seconds)`` wall-time callback threaded
            into the tier kernels (``TContext.add_kernel_time``).
    """

    def __init__(self, config: Optional[StoreConfig] = None, clock=None,
                 timer: Optional[Callable[[str, float], None]] = None):
        self.config = config if config is not None else StoreConfig()
        self.clock = clock if clock is not None else StoreClock()
        self._timer = timer
        self.pinned_pool = PinnedPool()
        self._spaces: Dict[str, _Space] = {}
        self._tiers: Dict[str, TierStats] = {
            "hot": TierStats(), "staging": TierStats(), "cold": TierStats(),
        }
        self._prefetch_issued = 0
        self._prefetch_hits = 0
        self._prefetch_late = 0
        self._prefetch_unused = 0
        self._stall_seconds = 0.0
        self._stall_saved = 0.0
        #: completion horizon of the serialized cold-read queue (spill
        #: files model one disk head; in-memory sources are not queued).
        self._disk_free = 0.0

    # ---- spaces -------------------------------------------------------------------

    def space(self, name: str) -> _Space:
        sp = self._spaces.get(name)
        if sp is None:
            sp = _Space(name, self)
            self._spaces[name] = sp
        return sp

    def spaces(self) -> Tuple[str, ...]:
        return tuple(self._spaces)

    def register_source(self, name: str,
                        source: Union[np.ndarray, Callable[[np.ndarray], np.ndarray]],
                        dim: Optional[int] = None) -> _Space:
        """Back *name* with an authoritative array (raw features, memory).

        Source spaces are node-keyed (query times are ignored by the
        authority) and always resolvable through :meth:`get`.
        """
        sp = self.space(name)
        sp.cold = SourceTier(source, dim=dim)
        self._set_dim(sp, sp.cold.dim)
        return sp

    def _set_dim(self, sp: _Space, dim: int) -> None:
        """First sight of a space's row width: resolve MiB budgets to rows.

        The tier caches were sized by row counts at space creation; once
        the width is known any ``hot_mb``/``staging_mb`` budget takes
        precedence.  Both caches are still empty at this point (a space
        has no width until its first rows arrive), so re-creating them
        loses nothing.
        """
        if sp.dim is not None:
            return
        sp.dim = int(dim)
        cfg = self.config
        if cfg.hot_mb is not None:
            sp.hot = NodeTimeCache(cfg.hot_rows(sp.dim), timer=self._timer,
                                   policy=cfg.hot_policy,
                                   on_evict=sp._demote_to_staging)
        if cfg.staging_mb is not None:
            sp.staging = NodeTimeCache(cfg.staging_capacity(sp.dim),
                                       timer=self._timer, policy="fifo",
                                       on_evict=sp._demote_to_cold)

    def rebind_source(self, name: str,
                      source: Union[np.ndarray, Callable[[np.ndarray], np.ndarray]]) -> None:
        """Swap a source space's authority (model hot-swap); drops the
        cached tiers so stale rows cannot be served."""
        sp = self.space(name)
        if not isinstance(sp.cold, SourceTier):
            raise ValueError(f"space {name!r} is not source-backed")
        sp.cold.rebind(source)
        self.evict(name)

    def refresh(self, nodes: np.ndarray, space: str = "nfeat",
                times: Optional[np.ndarray] = None) -> int:
        """Re-store fresh authority rows for resident keys (invalidation).

        Called after a state commit mutates source rows: resident keys
        keep their tier slot but take the new value, so the cache never
        serves pre-commit data.  ``times`` selects which time coordinate
        the resident keys were stored under (callers that key rows by a
        version stamp pass it here; the default zeros match rows stored
        with no explicit times).  Returns the number of rows refreshed.
        """
        sp = self._spaces.get(space)
        if sp is None or not isinstance(sp.cold, SourceTier):
            return 0
        nodes = np.asarray(nodes, dtype=np.int64)
        tq = _times_or_zero(nodes, times)
        nodes, tq, _ = unique_node_times(nodes, tq)
        refreshed = 0
        for tier in (sp.hot, sp.staging):
            mask = tier.contains(nodes, tq)
            if mask.any():
                rows = sp.cold.read(nodes[mask], None)
                tier.store(nodes[mask], tq[mask], rows)
                refreshed += int(mask.sum())
        for i in range(len(nodes)):
            sp.inflight.pop((int(nodes[i]), float(tq[i])), None)
        return refreshed

    # ---- bandwidths ---------------------------------------------------------------

    def _pinned_bw(self) -> float:
        bw = self.config.pinned_bandwidth
        return bw if bw is not None else _device_runtime.pinned_bandwidth

    def _cold_bw(self, sp: _Space) -> float:
        if isinstance(sp.cold, SourceTier):
            return _device_runtime.pageable_bandwidth
        return self.config.disk_bandwidth

    # ---- core resolution ----------------------------------------------------------

    def lookup(self, nodes: np.ndarray, times: Optional[np.ndarray] = None,
               space: str = "nfeat") -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Resolve rows through the tiers; ``(hit_mask, rows)`` like the
        flat cache — misses stay False for the caller to compute.

        Rows found below the hot tier are promoted into it; every
        transfer is charged per tier and stalls are modeled against the
        clock (prefetched rows whose transfer already completed stall
        nothing, and the avoided cold leg is booked as saved).
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        tq = _times_or_zero(nodes, times)
        n = len(nodes)
        sp = self.space(space)
        hot_hit, rows = sp.hot.lookup(nodes, tq)
        hot = self._tiers["hot"]
        hot.hits += int(hot_hit.sum())
        hot.misses += n - int(hot_hit.sum())
        if hot_hit.all() and n:
            return hot_hit, rows
        out = rows if rows is not None else None
        miss = np.flatnonzero(~hot_hit)
        found = hot_hit.copy()

        # --- staging: pinned rows pay only the host->device leg --------------
        stg_hit, stg_rows = sp.staging.lookup(nodes[miss], tq[miss])
        stg = self._tiers["staging"]
        stg.hits += int(stg_hit.sum())
        stg.misses += len(miss) - int(stg_hit.sum())
        if stg_hit.any():
            idx = miss[stg_hit]
            got = stg_rows[stg_hit]
            nbytes = got.nbytes
            stg.bytes_out += nbytes
            _device_runtime.transfer(nbytes, pinned=True, tier="staging")
            self._consume_staged(sp, nodes[idx], tq[idx], nbytes)
            if out is None:
                out = np.zeros((n, got.shape[1]), dtype=np.float32)
            out[idx] = got
            found[idx] = True
            sp.hot.store(nodes[idx], tq[idx], got)
            hot.bytes_in += nbytes
            miss = miss[~stg_hit]

        # --- cold: authority / spill file ------------------------------------
        if len(miss) and sp.cold is not None:
            resident = sp.cold.contains(nodes[miss], tq[miss])
            if resident.any():
                idx = miss[resident]
                got = sp.cold.read(nodes[idx], tq[idx])
                nbytes = got.nbytes
                cold = self._tiers["cold"]
                cold.hits += int(resident.sum())
                cold.bytes_out += nbytes
                _device_runtime.transfer(nbytes, pinned=False, tier="cold")
                self._stall_cold_read(sp, nbytes)
                # the rows pass through staging buffers on their way up
                stg.bytes_in += nbytes
                _device_runtime.transfer(nbytes, pinned=True, tier="staging")
                if out is None:
                    out = np.zeros((n, got.shape[1]), dtype=np.float32)
                out[idx] = got
                found[idx] = True
                sp.hot.store(nodes[idx], tq[idx], got)
                hot.bytes_in += nbytes
            self._tiers["cold"].misses += int((~resident).sum())

        if sp.dim is None and out is not None:
            sp.dim = out.shape[1]
        return found, out

    def get(self, nodes: np.ndarray, times: Optional[np.ndarray] = None,
            space: str = "nfeat") -> np.ndarray:
        """Fully resolve rows (source-backed spaces); KeyError on a miss."""
        found, rows = self.lookup(nodes, times, space)
        if len(nodes) and not found.all():
            raise KeyError(
                f"{int((~found).sum())} of {len(found)} keys unresolvable in "
                f"space {space!r} (memoization spaces only hold computed rows)")
        if rows is None:
            rows = np.zeros((0, self.space(space).dim or 0), dtype=np.float32)
        return rows

    def put(self, nodes: np.ndarray, times: Optional[np.ndarray],
            rows: np.ndarray, space: str = "nfeat") -> None:
        """Insert computed rows into the hot tier (overflow demotes down)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        rows = np.ascontiguousarray(rows, dtype=np.float32)
        sp = self.space(space)
        self._set_dim(sp, rows.shape[1])
        self._tiers["hot"].bytes_in += rows.nbytes
        sp.hot.store(nodes, _times_or_zero(nodes, times), rows)

    # ---- prefetch -----------------------------------------------------------------

    def prefetch(self, nodes: np.ndarray, times: Optional[np.ndarray] = None,
                 space: str = "nfeat") -> int:
        """Start async cold->staging transfers for keys not yet resident.

        The rows land in the staging tier immediately with a modeled
        *ready time*; a later :meth:`lookup`/:meth:`get` consuming them
        after that time pays no cold-leg stall (the saving is recorded),
        before it pays only the remainder.  Returns rows issued.
        """
        if self.config.prefetch_depth <= 0:
            return 0
        nodes = np.asarray(nodes, dtype=np.int64)
        tq = _times_or_zero(nodes, times)
        sp = self.space(space)
        if sp.cold is None:
            return 0
        # unique keys not already resident anywhere nor in flight
        un, ut, _ = unique_node_times(nodes, tq)
        fresh = ~sp.hot.contains(un, ut) & ~sp.staging.contains(un, ut)
        fresh &= sp.cold.contains(un, ut)
        for i in np.flatnonzero(fresh):
            if (int(un[i]), float(ut[i])) in sp.inflight:
                fresh[i] = False
        if not fresh.any():
            return 0
        kn, kt = un[fresh], ut[fresh]
        rows = sp.cold.read(kn, kt)
        nbytes = rows.nbytes
        cold = self._tiers["cold"]
        cold.hits += len(kn)
        cold.bytes_out += nbytes
        self._tiers["staging"].bytes_in += nbytes
        _device_runtime.transfer(nbytes, pinned=False, tier="cold")
        now = self.clock.now()
        leg = nbytes / self._cold_bw(sp)
        if isinstance(sp.cold, ColdTier):
            start = max(now, self._disk_free)
            ready = start + leg
            self._disk_free = ready
        else:
            ready = now + leg
        per_key = leg / len(kn)
        for i in range(len(kn)):
            sp.inflight[(int(kn[i]), float(kt[i]))] = (ready, per_key, leg)
        sp.staging.store(kn, kt, rows)
        self._prefetch_issued += len(kn)
        return int(len(kn))

    def _consume_staged(self, sp: _Space, nodes: np.ndarray, times: np.ndarray,
                        nbytes: int) -> None:
        """Stall accounting for rows served out of the staging tier."""
        now = self.clock.now()
        stall = nbytes / self._pinned_bw()  # the pinned leg is always paid
        for i in range(len(nodes)):
            entry = sp.inflight.pop((int(nodes[i]), float(times[i])), None)
            if entry is None:
                continue  # demoted row: already staged, no cold leg pending
            ready, cost, group_leg = entry
            late = max(0.0, ready - now)
            # A group's keys transfer together: each key pays only its
            # share of the group's remaining leg, so paid + saved == cost
            # per key and a batch consumed early never out-stalls the
            # demand read it replaced.
            share = cost * (late / group_leg) if group_leg > 0 else 0.0
            stall += share
            self._stall_saved += cost - share
            if late > 0:
                self._prefetch_late += 1
            else:
                self._prefetch_hits += 1
        self._stall_seconds += stall

    def _stall_cold_read(self, sp: _Space, nbytes: int) -> None:
        """Stall accounting for a demand (non-prefetched) cold read."""
        now = self.clock.now()
        leg = nbytes / self._cold_bw(sp)
        if isinstance(sp.cold, ColdTier):
            start = max(now, self._disk_free)
            done = start + leg
            self._disk_free = done
            stall = done - now
        else:
            stall = leg
        self._stall_seconds += stall + nbytes / self._pinned_bw()

    def estimate_fetch_seconds(self, nodes: np.ndarray,
                               times: Optional[np.ndarray] = None,
                               space: str = "nfeat") -> float:
        """Stall a :meth:`get` issued *now* would pay — side-effect-free.

        Used by the serve degradation ladder to price the fetch penalty
        of a prefetch miss without perturbing any statistics.
        """
        sp = self._spaces.get(space)
        if sp is None or sp.dim is None or len(nodes) == 0:
            return 0.0
        nodes = np.asarray(nodes, dtype=np.int64)
        tq = _times_or_zero(nodes, times)
        in_hot = sp.hot.contains(nodes, tq)
        miss = ~in_hot
        if not miss.any():
            return 0.0
        row_bytes = sp.dim * 4
        now = self.clock.now()
        seconds = 0.0
        staged = sp.staging.contains(nodes[miss], tq[miss])
        n_staged = int(staged.sum())
        if n_staged:
            seconds += n_staged * row_bytes / self._pinned_bw()
            for i in np.flatnonzero(miss)[staged]:
                entry = sp.inflight.get((int(nodes[i]), float(tq[i])))
                if entry is not None and entry[2] > 0:
                    seconds += max(0.0, entry[0] - now) * entry[1] / entry[2]
        deeper = int(miss.sum()) - n_staged
        if deeper > 0 and sp.cold is not None:
            nbytes = deeper * row_bytes
            leg = nbytes / self._cold_bw(sp)
            if isinstance(sp.cold, ColdTier):
                leg += max(0.0, self._disk_free - now)
            seconds += leg + nbytes / self._pinned_bw()
        return seconds

    # ---- lifecycle / stats --------------------------------------------------------

    def evict(self, space: Optional[str] = None) -> None:
        """Drop cached contents: hot, staging, and cold *spills*.

        Spill files hold demoted cache copies, so they are dropped too —
        an invalidation (e.g. weights changed under a memoization space)
        must not let stale rows resurface through a cold promotion.
        Source-backed authorities survive, naturally.
        """
        targets = [self.space(space)] if space is not None else list(self._spaces.values())
        for sp in targets:
            self._prefetch_unused += len(sp.inflight)
            sp.inflight.clear()
            sp.hot.clear()
            sp.staging.clear()
            if isinstance(sp.cold, ColdTier):
                sp.cold.clear()

    def stats(self) -> StoreStats:
        tiers = {
            name: TierStats(**t.as_dict()) for name, t in self._tiers.items()
        }
        tiers["cold"].faults = sum(
            sp.cold.faults for sp in self._spaces.values()
            if isinstance(sp.cold, ColdTier)
        )
        return StoreStats(
            tiers=tiers,
            prefetch_issued=self._prefetch_issued,
            prefetch_hits=self._prefetch_hits,
            prefetch_late=self._prefetch_late,
            prefetch_unused=self._prefetch_unused,
            stall_seconds=self._stall_seconds,
            stall_saved_seconds=self._stall_saved,
        )

    def reset_stats(self) -> None:
        for t in self._tiers.values():
            t.__init__()
        self._prefetch_issued = 0
        self._prefetch_hits = 0
        self._prefetch_late = 0
        self._prefetch_unused = 0
        self._stall_seconds = 0.0
        self._stall_saved = 0.0
        self.pinned_pool.reset_stats()
        for sp in self._spaces.values():
            sp.hot.reset_stats()
            sp.staging.reset_stats()
            if isinstance(sp.cold, ColdTier):
                sp.cold.faults = 0

    def clear(self) -> None:
        """Drop everything cached and forget memoization spaces.

        Source-backed spaces keep their registration (they are wiring,
        not scratch) but lose their cached tiers; memo spaces disappear
        entirely, as if never used.
        """
        for name in list(self._spaces):
            sp = self._spaces[name]
            sp.inflight.clear()
            sp.hot.clear()
            sp.staging.clear()
            if isinstance(sp.cold, ColdTier):
                sp.cold.clear()
            if not isinstance(sp.cold, SourceTier):
                del self._spaces[name]
        self._disk_free = 0.0

    def __repr__(self) -> str:
        return (f"TieredFeatureStore(spaces={list(self._spaces)}, "
                f"policy={self.config.hot_policy!r}, "
                f"prefetch_depth={self.config.prefetch_depth})")
