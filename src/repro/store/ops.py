"""Canonical cache/preload operators over the `FeatureStore`.

These are the implementations behind the legacy front-ends — ``op.cache``
and ``op.preload`` are thin deprecation shims that forward here, and the
TGL baseline's gathers route through :func:`gather` — so there is exactly
one tiering/eviction code path no matter which API a model uses.

Blocks and contexts are duck-typed (``ctx.training`` / ``ctx.store`` /
``block.dstnodes`` ...) rather than imported: ``repro.core.context``
imports this package, so importing block/context modules here would
cycle.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor, index_put

__all__ = ["embed_space", "memoize", "preload", "gather"]


def embed_space(layer: int) -> str:
    """Store-space name of one layer's embedding memoization cache."""
    return f"embed:{int(layer)}"


def memoize(ctx, block, layer: Optional[int] = None):
    """Filter a block's destinations to embedding-cache misses, in place.

    The TGOpt ``cache()`` optimization: previously computed time-aware
    embeddings are reused while the weights are frozen, so this only
    engages in inference mode.  Resolution goes through the tiered store
    (space ``'embed:<layer>'``), so rows evicted from the hot ring can
    still be served from the staging/cold tiers instead of being
    recomputed.

    Args:
        ctx: context owning the store (``ctx.training`` gates engagement).
        block: target block (before sampling).
        layer: cache namespace; defaults to the block's layer id.

    Returns the block (mutated in place when there are cache hits).
    """
    if ctx.training:
        return block
    if ctx.is_degraded("kernel.cache"):
        # Repeated cache-kernel faults downgraded this context to the
        # uncached path: skip memoization entirely (results unchanged,
        # recomputation cost returns; visible via ctx.stats().degraded).
        return block
    if block.has_nbrs:
        raise RuntimeError("cache must be applied before sampling neighbors")
    store = ctx.store
    space = embed_space(block.layer_id if layer is None else layer)
    nodes, times = block.dstnodes, block.dsttimes
    hit_mask, hit_rows = store.lookup(nodes, times, space=space)
    num_hits = int(hit_mask.sum())

    if num_hits == 0:
        def store_hook(blk, output: Tensor) -> Tensor:
            store.put(nodes, times, output.data, space=space)
            return output

        block.register_hook(store_hook)
        return block

    # hit_rows is full-size (n, dim) with misses zero-filled, exactly the
    # merge target index_put overwrites at miss_idx.
    miss_idx = np.flatnonzero(~hit_mask)
    miss_nodes = nodes[miss_idx]
    miss_times = times[miss_idx]
    block.set_dst(miss_nodes, miss_times)

    def merge_hook(blk, output: Tensor) -> Tensor:
        store.put(miss_nodes, miss_times, output.data, space=space)
        full = Tensor(hit_rows.astype(output.data.dtype, copy=True),
                      device=output.device)
        return index_put(full, miss_idx, output)

    block.register_hook(merge_hook)
    return block


def preload(head, use_pin: bool = True):
    """Load feature/memory/mail data for every block in a chain.

    Walks the linked list from *head* to tail and stages each block's
    gathered host rows through the pinned pool before transfer, so the
    (simulated) DMA engine runs at pinned bandwidth.  Loaded tensors
    land in each block's cache, making subsequent ``dstfeat()`` /
    ``srcfeat()`` / ``efeat()`` / ``mem_data()`` / ``mail()`` calls free.

    Args:
        head: the first block of the chain (traversal follows ``next``).
        use_pin: stage host rows through the pinned-memory pool.

    Returns the head block.
    """
    blk = head
    g = head.g
    while blk is not None:
        # Edge features feed the attention computation of every hop.
        if g.efeat is not None and blk.has_nbrs:
            blk.efeat(pin=use_pin)
        if blk.next is None:
            # Only the tail block consumes raw node features / memory /
            # mail (inner hops receive computed embeddings from
            # aggregate()), so loading them elsewhere would only waste
            # transfer bandwidth.
            if g.nfeat is not None:
                # One combined gather covers dstfeat()/srcfeat()/nfeat().
                blk.nfeat(pin=use_pin)
            if g.mem is not None:
                blk.mem_data(pin=use_pin)
            if g.mailbox is not None:
                blk.mail(pin=use_pin)
        blk = blk.next
    return head


def gather(store, nodes: np.ndarray, space: str = "nfeat",
           dtype=None) -> np.ndarray:
    """Gather node-keyed rows through the tiers (the TGL baseline's path).

    Equivalent to indexing the authoritative array, but hot rows are
    served from the cache and every byte moved is attributed to the tier
    it crossed.  Returns a host ndarray (cast to *dtype* if given).
    """
    rows = store.get(np.asarray(nodes, dtype=np.int64), None, space=space)
    if dtype is not None and rows.dtype != dtype:
        rows = rows.astype(dtype)
    return rows
