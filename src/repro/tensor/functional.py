"""Module-level tensor creation and combination functions.

These mirror the ``torch.*`` free functions that TGNN model code leans on:
``cat``, ``stack``, ``where``, ``zeros``/``ones``/``randn``, plus a
differentiable ``index_put`` used by the deduplication/caching operators to
merge computed embeddings back into full-size outputs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from .device import Device, get_device
from .random import default_generator
from .tensor import Tensor, _unbroadcast

__all__ = [
    "tensor",
    "as_tensor",
    "zeros",
    "zeros_like",
    "ones",
    "ones_like",
    "full",
    "empty",
    "arange",
    "eye",
    "rand",
    "randn",
    "randint",
    "from_numpy",
    "cat",
    "stack",
    "where",
    "maximum",
    "minimum",
    "index_put",
    "scatter_rows",
    "one_hot",
    "unique",
    "sort_by",
    "dropout_mask",
]


def tensor(data, dtype=None, requires_grad: bool = False, device=None) -> Tensor:
    """Create a tensor from array-like *data* (floats default to float32)."""
    arr = np.array(data.data if isinstance(data, Tensor) else data)
    if dtype is not None:
        arr = arr.astype(dtype)
    elif arr.dtype == np.float64:
        arr = arr.astype(np.float32)
    return Tensor(arr, requires_grad=requires_grad, device=device)


def as_tensor(data, dtype=None, device=None) -> Tensor:
    """Like :func:`tensor` but avoids copying when possible."""
    if isinstance(data, Tensor) and dtype is None and (device is None or get_device(device) is data.device):
        return data
    arr = np.asarray(data.data if isinstance(data, Tensor) else data)
    if dtype is not None:
        arr = arr.astype(dtype, copy=False)
    return Tensor(arr, device=device)


def zeros(*shape, dtype=np.float32, requires_grad: bool = False, device=None) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad, device=device)


def zeros_like(t: Tensor, dtype=None) -> Tensor:
    return Tensor(np.zeros_like(t.data, dtype=dtype), device=t.device)


def ones(*shape, dtype=np.float32, requires_grad: bool = False, device=None) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad, device=device)


def ones_like(t: Tensor, dtype=None) -> Tensor:
    return Tensor(np.ones_like(t.data, dtype=dtype), device=t.device)


def full(shape, fill_value, dtype=np.float32, device=None) -> Tensor:
    return Tensor(np.full(shape, fill_value, dtype=dtype), device=device)


def empty(*shape, dtype=np.float32, device=None) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.empty(shape, dtype=dtype), device=device)


def arange(*args, dtype=np.int64, device=None) -> Tensor:
    return Tensor(np.arange(*args, dtype=dtype), device=device)


def eye(n: int, dtype=np.float32, device=None) -> Tensor:
    return Tensor(np.eye(n, dtype=dtype), device=device)


def rand(*shape, requires_grad: bool = False, device=None, generator=None) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    rng = generator if generator is not None else default_generator()
    return Tensor(
        rng.random(shape, dtype=np.float32), requires_grad=requires_grad, device=device
    )


def randn(*shape, requires_grad: bool = False, device=None, generator=None) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    rng = generator if generator is not None else default_generator()
    return Tensor(
        rng.standard_normal(shape).astype(np.float32),
        requires_grad=requires_grad,
        device=device,
    )


def randint(low: int, high: int, shape, device=None, generator=None) -> Tensor:
    rng = generator if generator is not None else default_generator()
    return Tensor(rng.integers(low, high, size=shape, dtype=np.int64), device=device)


def from_numpy(arr: np.ndarray, device=None) -> Tensor:
    return Tensor(arr, device=device)


def cat(tensors: Sequence[Tensor], dim: int = 0) -> Tensor:
    """Concatenate tensors along *dim* (differentiable)."""
    tensors = list(tensors)
    if not tensors:
        raise ValueError("cat expects a non-empty sequence")
    device = tensors[0].device
    for t in tensors:
        if t.device is not device:
            raise RuntimeError("cat requires all tensors on the same device")
    out_data = np.concatenate([t.data for t in tensors], axis=dim)
    sizes = [t.data.shape[dim] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        moved = np.moveaxis(grad, dim, 0)
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                piece = np.moveaxis(moved[start:stop], 0, dim)
                t._accumulate(np.ascontiguousarray(piece))

    return Tensor._make(out_data, tensors, backward, device)


def stack(tensors: Sequence[Tensor], dim: int = 0) -> Tensor:
    """Stack tensors along a new axis *dim* (differentiable)."""
    tensors = [t.unsqueeze(dim) for t in tensors]
    return cat(tensors, dim=dim)


def where(cond: Union[Tensor, np.ndarray], a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select: ``a`` where *cond* else ``b`` (differentiable)."""
    mask = cond.data if isinstance(cond, Tensor) else np.asarray(cond)
    mask = mask.astype(bool)
    out_data = np.where(mask, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(np.where(mask, grad, 0.0), a.data.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(np.where(mask, 0.0, grad), b.data.shape))

    return Tensor._make(out_data, (a, b), backward, a.device)


def maximum(a: Tensor, b: Tensor) -> Tensor:
    mask = a.data >= b.data
    out_data = np.where(mask, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(np.where(mask, grad, 0.0), a.data.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(np.where(mask, 0.0, grad), b.data.shape))

    return Tensor._make(out_data, (a, b), backward, a.device)


def minimum(a: Tensor, b: Tensor) -> Tensor:
    mask = a.data <= b.data
    out_data = np.where(mask, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(np.where(mask, grad, 0.0), a.data.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(np.where(mask, 0.0, grad), b.data.shape))

    return Tensor._make(out_data, (a, b), backward, a.device)


def index_put(base: Tensor, index: Union[Tensor, np.ndarray], values: Tensor) -> Tensor:
    """Differentiable row assignment: ``out = base; out[index] = values``.

    Rows of *base* selected by *index* are replaced by *values*; gradients
    flow to both *base* (for unreplaced rows) and *values*.
    """
    idx = index.data if isinstance(index, Tensor) else np.asarray(index)
    out_data = base.data.copy()
    out_data[idx] = values.data

    def backward(grad: np.ndarray) -> None:
        if base.requires_grad:
            gb = grad.copy()
            gb[idx] = 0.0
            base._accumulate(gb)
        if values.requires_grad:
            values._accumulate(grad[idx])

    return Tensor._make(out_data, (base, values), backward, base.device)


def scatter_rows(
    num_rows: int, index: Union[Tensor, np.ndarray], values: Tensor
) -> Tensor:
    """Build a ``(num_rows, *values.shape[1:])`` tensor with ``out[index] += values``."""
    idx = index.data if isinstance(index, Tensor) else np.asarray(index)
    out_data = np.zeros((num_rows,) + values.data.shape[1:], dtype=values.data.dtype)
    np.add.at(out_data, idx, values.data)

    def backward(grad: np.ndarray) -> None:
        if values.requires_grad:
            values._accumulate(grad[idx])

    return Tensor._make(out_data, (values,), backward, values.device)


def one_hot(index: Union[Tensor, np.ndarray], num_classes: int, device=None) -> Tensor:
    idx = index.data if isinstance(index, Tensor) else np.asarray(index)
    out = np.zeros((idx.shape[0], num_classes), dtype=np.float32)
    out[np.arange(idx.shape[0]), idx] = 1.0
    dev = index.device if isinstance(index, Tensor) else device
    return Tensor(out, device=dev)


def unique(t: Tensor, return_inverse: bool = False):
    """Sorted unique values (and optionally the inverse mapping)."""
    if return_inverse:
        vals, inv = np.unique(t.data, return_inverse=True)
        return Tensor(vals, device=t.device), Tensor(inv.astype(np.int64), device=t.device)
    return Tensor(np.unique(t.data), device=t.device)


def sort_by(key: np.ndarray, *arrays: np.ndarray, kind: str = "stable") -> Tuple[np.ndarray, ...]:
    """Sort *arrays* by *key* (stable), returning ``(sorted_key, *sorted_arrays)``."""
    order = np.argsort(key, kind=kind)
    return (key[order],) + tuple(arr[order] for arr in arrays)


def dropout_mask(shape, p: float, device=None, generator=None) -> Tensor:
    """Inverted-dropout mask: Bernoulli keep-mask scaled by ``1/(1-p)``."""
    rng = generator if generator is not None else default_generator()
    keep = (rng.random(shape) >= p).astype(np.float32) / max(1.0 - p, 1e-8)
    return Tensor(keep, device=device)
