"""Simulated device model for the tensor backend.

The paper's experiments distinguish *where* data lives (GPU device memory vs
CPU host memory) because host-to-device transfers dominate the CPU-to-GPU
training case, and because device memory is finite (TGL runs out of GPU
memory on the largest dataset).  This module provides the minimal device
semantics needed to reproduce both effects on a machine with no GPU:

* two device kinds, ``cpu`` and ``cuda``;
* a transfer-cost model: moving ``n`` bytes between devices busy-waits for
  ``n / bandwidth`` seconds, with pinned host memory enjoying a higher
  bandwidth than pageable memory (mirroring PCIe DMA behaviour);
* capacity accounting: when a capacity is configured for a device, every
  byte resident on it is tracked and an allocation that would exceed the
  capacity raises :class:`DeviceOutOfMemoryError`.

Both the cost model and the accounting are off by default so unit tests and
pure-algorithm benchmarks pay nothing for them.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

__all__ = [
    "Device",
    "DeviceOutOfMemoryError",
    "DeviceRuntime",
    "runtime",
    "get_device",
]


class DeviceOutOfMemoryError(RuntimeError):
    """Raised when an allocation would exceed a device's configured capacity."""


class Device:
    """A compute device identifier, e.g. ``Device('cpu')`` or ``Device('cuda')``.

    Instances are interned: ``Device('cpu') is Device('cpu')``.
    """

    _interned: Dict[str, "Device"] = {}
    _lock = threading.Lock()

    __slots__ = ("type",)

    def __new__(cls, type_: Union[str, "Device"]) -> "Device":
        if isinstance(type_, Device):
            return type_
        name = str(type_)
        if name not in ("cpu", "cuda"):
            raise ValueError(f"unknown device type: {name!r} (expected 'cpu' or 'cuda')")
        with cls._lock:
            dev = cls._interned.get(name)
            if dev is None:
                dev = object.__new__(cls)
                object.__setattr__(dev, "type", name)
                cls._interned[name] = dev
        return dev

    def __setattr__(self, key, value):  # pragma: no cover - defensive
        raise AttributeError("Device objects are immutable")

    def __repr__(self) -> str:
        return f"Device({self.type!r})"

    def __str__(self) -> str:
        return self.type

    def __eq__(self, other) -> bool:
        if isinstance(other, str):
            return self.type == other
        return self is other

    def __hash__(self) -> int:
        return hash(self.type)

    @property
    def is_cuda(self) -> bool:
        return self.type == "cuda"

    @property
    def is_cpu(self) -> bool:
        return self.type == "cpu"


CPU = Device("cpu")
CUDA = Device("cuda")


def get_device(dev: Union[str, Device, None]) -> Device:
    """Normalize a device argument (``None`` means CPU)."""
    if dev is None:
        return CPU
    return Device(dev)


@dataclass
class TransferStats:
    """Aggregate statistics for simulated host/device transfers.

    ``tier_bytes``/``tier_seconds`` break the totals down by the memory
    tier a transfer was attributed to (``'hot'``/``'staging'``/``'cold'``
    when issued by a :class:`repro.store.TieredFeatureStore`; untagged
    transfers land under ``'untiered'``).
    """

    count: int = 0
    bytes: int = 0
    pinned_bytes: int = 0
    simulated_seconds: float = 0.0
    tier_bytes: Dict[str, int] = field(default_factory=dict)
    tier_seconds: Dict[str, float] = field(default_factory=dict)

    def reset(self) -> None:
        self.count = 0
        self.bytes = 0
        self.pinned_bytes = 0
        self.simulated_seconds = 0.0
        self.tier_bytes.clear()
        self.tier_seconds.clear()


@dataclass
class DeviceRuntime:
    """Global runtime holding transfer-cost and capacity configuration.

    Attributes:
        simulate_transfer_cost: when True, cross-device copies busy-wait to
            model PCIe latency.
        pageable_bandwidth: modeled bytes/second for pageable host memory.
        pinned_bandwidth: modeled bytes/second for pinned host memory.
        capacities: optional per-device byte capacities; ``None`` disables
            accounting for that device.
    """

    simulate_transfer_cost: bool = False
    pageable_bandwidth: float = 2.0e9
    pinned_bandwidth: float = 6.0e9
    capacities: Dict[str, Optional[int]] = field(
        default_factory=lambda: {"cpu": None, "cuda": None}
    )
    used_bytes: Dict[str, int] = field(default_factory=lambda: {"cpu": 0, "cuda": 0})
    peak_bytes: Dict[str, int] = field(default_factory=lambda: {"cpu": 0, "cuda": 0})
    transfer_stats: TransferStats = field(default_factory=TransferStats)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    # ---- capacity accounting -------------------------------------------------

    def tracking(self, device: Device) -> bool:
        """Whether allocations on *device* are being tracked."""
        return self.capacities.get(device.type) is not None

    def set_capacity(self, device: Union[str, Device], capacity: Optional[int]) -> None:
        """Set (or clear, with ``None``) the byte capacity of a device."""
        dev = get_device(device)
        with self._lock:
            self.capacities[dev.type] = capacity
            self.used_bytes[dev.type] = 0

    def allocate(self, device: Device, nbytes: int) -> None:
        """Record *nbytes* of new residency on *device*; may raise OOM."""
        cap = self.capacities.get(device.type)
        if cap is None:
            return
        with self._lock:
            used = self.used_bytes[device.type] + int(nbytes)
            if used > cap:
                raise DeviceOutOfMemoryError(
                    f"simulated {device.type} out of memory: tried to allocate "
                    f"{nbytes} bytes ({used} > capacity {cap})"
                )
            self.used_bytes[device.type] = used
            if used > self.peak_bytes[device.type]:
                self.peak_bytes[device.type] = used

    def free(self, device: Device, nbytes: int) -> None:
        """Release *nbytes* previously recorded on *device*."""
        if self.capacities.get(device.type) is None:
            return
        with self._lock:
            self.used_bytes[device.type] = max(0, self.used_bytes[device.type] - int(nbytes))

    # ---- transfer cost model -------------------------------------------------

    def transfer(self, nbytes: int, pinned: bool = False,
                 tier: Optional[str] = None) -> None:
        """Account (and, if enabled, simulate the latency of) a transfer.

        ``tier`` attributes the bytes to a memory tier for the per-tier
        breakdown in :attr:`TransferStats.tier_bytes` (``None`` counts
        under ``'untiered'``).
        """
        stats = self.transfer_stats
        stats.count += 1
        stats.bytes += int(nbytes)
        if pinned:
            stats.pinned_bytes += int(nbytes)
        bandwidth = self.pinned_bandwidth if pinned else self.pageable_bandwidth
        seconds = nbytes / bandwidth
        stats.simulated_seconds += seconds
        key = tier if tier is not None else "untiered"
        stats.tier_bytes[key] = stats.tier_bytes.get(key, 0) + int(nbytes)
        stats.tier_seconds[key] = stats.tier_seconds.get(key, 0.0) + seconds
        if self.simulate_transfer_cost and seconds > 0:
            deadline = time.perf_counter() + seconds
            while time.perf_counter() < deadline:
                pass

    def reset(self) -> None:
        """Reset accounting and disable cost simulation and capacities."""
        with self._lock:
            self.simulate_transfer_cost = False
            self.pageable_bandwidth = 2.0e9
            self.pinned_bandwidth = 6.0e9
            self.capacities = {"cpu": None, "cuda": None}
            self.used_bytes = {"cpu": 0, "cuda": 0}
            self.peak_bytes = {"cpu": 0, "cuda": 0}
            self.transfer_stats.reset()


#: Process-global device runtime configuration.
runtime = DeviceRuntime()
