"""Seedable randomness shared across the tensor backend.

A single process-global :class:`numpy.random.Generator` backs parameter
initialization, dropout, and the synthetic dataset generators' *default*
randomness, so experiments are reproducible via :func:`manual_seed`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["manual_seed", "default_generator", "fork_generator"]

_GENERATOR = np.random.default_rng(0)


def manual_seed(seed: int) -> None:
    """Reset the process-global generator to a fixed seed."""
    global _GENERATOR
    _GENERATOR = np.random.default_rng(seed)


def default_generator() -> np.random.Generator:
    """Return the process-global generator."""
    return _GENERATOR


def fork_generator(seed: int) -> np.random.Generator:
    """Return an independent generator for a fixed *seed* (does not touch
    the global stream)."""
    return np.random.default_rng(seed)
