"""Segmented (per-destination-group) tensor operators.

TGLite's block operators ``edge_reduce`` and ``edge_softmax`` are segmented
computations: each destination node owns a contiguous-or-not group of edge
rows, identified by a segment-id vector, and a reduction or normalization is
applied within each group.  These kernels are the autograd-aware numpy
equivalents of the fused CUDA segment kernels the paper relies on.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .tensor import Tensor

__all__ = [
    "segment_sum",
    "segment_mean",
    "segment_max",
    "segment_count",
    "segment_softmax",
    "segment_argmax_by_key",
]


def _ids(segment_ids) -> np.ndarray:
    arr = segment_ids.data if isinstance(segment_ids, Tensor) else np.asarray(segment_ids)
    return arr.astype(np.int64, copy=False)


def segment_count(segment_ids, num_segments: int) -> np.ndarray:
    """Number of rows per segment, as an int64 array of length *num_segments*."""
    ids = _ids(segment_ids)
    return np.bincount(ids, minlength=num_segments).astype(np.int64)


def segment_sum(data: Tensor, segment_ids, num_segments: int) -> Tensor:
    """Sum rows of *data* within each segment. Differentiable."""
    ids = _ids(segment_ids)
    out_data = np.zeros((num_segments,) + data.data.shape[1:], dtype=data.data.dtype)
    np.add.at(out_data, ids, data.data)

    def backward(grad: np.ndarray) -> None:
        data._accumulate(grad[ids])

    return Tensor._make(out_data, (data,), backward, data.device)


def segment_mean(data: Tensor, segment_ids, num_segments: int) -> Tensor:
    """Average rows of *data* within each segment (empty segments give 0)."""
    ids = _ids(segment_ids)
    counts = segment_count(ids, num_segments).astype(data.data.dtype)
    counts = np.maximum(counts, 1)
    total = segment_sum(data, ids, num_segments)
    inv = (1.0 / counts).reshape((num_segments,) + (1,) * (data.data.ndim - 1))
    return total * Tensor(inv.astype(data.data.dtype), device=data.device)


def segment_max(data: Tensor, segment_ids, num_segments: int) -> Tensor:
    """Row-wise max within each segment (empty segments give 0)."""
    ids = _ids(segment_ids)
    neg_inf = np.finfo(data.data.dtype).min
    out_data = np.full((num_segments,) + data.data.shape[1:], neg_inf, dtype=data.data.dtype)
    np.maximum.at(out_data, ids, data.data)
    empty = segment_count(ids, num_segments) == 0
    out_data[empty] = 0.0
    # Gradient routes to the first row achieving the max within each segment.
    winners = data.data == out_data[ids]

    def backward(grad: np.ndarray) -> None:
        expanded = grad[ids] * winners
        # Normalize ties so gradient mass per segment is preserved.
        tie_counts = np.zeros_like(out_data)
        np.add.at(tie_counts, ids, winners.astype(out_data.dtype))
        tie_counts = np.maximum(tie_counts, 1.0)
        data._accumulate(expanded / tie_counts[ids])

    return Tensor._make(out_data, (data,), backward, data.device)


def segment_softmax(scores: Tensor, segment_ids, num_segments: int) -> Tensor:
    """Softmax over rows of *scores* within each segment. Differentiable.

    *scores* may be 1-D ``(E,)`` or 2-D ``(E, H)`` for multi-head attention;
    normalization is independent per trailing column.
    """
    ids = _ids(segment_ids)
    data = scores.data
    neg_inf = np.finfo(data.dtype).min
    maxes = np.full((num_segments,) + data.shape[1:], neg_inf, dtype=data.dtype)
    np.maximum.at(maxes, ids, data)
    shifted = data - maxes[ids]
    exp = np.exp(shifted)
    denom = np.zeros_like(maxes)
    np.add.at(denom, ids, exp)
    denom = np.maximum(denom, np.finfo(data.dtype).tiny)
    out_data = exp / denom[ids]

    def backward(grad: np.ndarray) -> None:
        # d softmax: s * (g - sum_seg(g * s))
        weighted = grad * out_data
        seg_dot = np.zeros_like(maxes)
        np.add.at(seg_dot, ids, weighted)
        scores._accumulate(out_data * (grad - seg_dot[ids]))

    return Tensor._make(out_data, (scores,), backward, scores.device)


def segment_argmax_by_key(
    keys: np.ndarray, segment_ids: Union[np.ndarray, Tensor], num_segments: int
) -> np.ndarray:
    """For each segment, the row index of the largest *key* (ties -> last row).

    Non-differentiable bookkeeping helper used by ``coalesce(by='latest')``
    to select, e.g., the most recent edge per destination node.  Segments
    with no rows map to -1.
    """
    ids = _ids(segment_ids)
    keys = np.asarray(keys)
    order = np.argsort(keys, kind="stable")
    result = np.full(num_segments, -1, dtype=np.int64)
    # Later assignment wins, so after iterating in ascending key order each
    # segment holds the row with its maximum key (last occurrence on ties).
    result[ids[order]] = order
    return result
