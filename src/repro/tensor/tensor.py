"""A numpy-backed tensor with reverse-mode automatic differentiation.

This module stands in for the PyTorch tensor backend that the paper pairs
TGLite with.  It implements the subset of tensor semantics that temporal GNN
models exercise: broadcasting arithmetic, (batched) matrix multiplication,
reductions, concatenation/reshaping, fancy indexing with gradients, masked
fills, and softmax.  Segmented operators used by TGLite's block operators
live in :mod:`repro.tensor.segment`.

The autograd design is a classic dynamic tape: each differentiable op
returns a new :class:`Tensor` holding a backward closure and references to
its parents; ``Tensor.backward()`` topologically sorts the graph and
accumulates gradients into ``.grad``.
"""

from __future__ import annotations

import contextlib
import weakref
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .device import CPU, Device, get_device, runtime

__all__ = [
    "Tensor",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient graph construction."""
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


@contextlib.contextmanager
def enable_grad():
    """Context manager that (re-)enables gradient graph construction."""
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = True
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


def is_grad_enabled() -> bool:
    """Return whether gradient graph construction is currently enabled."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce *grad* back to *shape* by summing over broadcasted axes."""
    if grad.shape == shape:
        return grad
    # Sum leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were size-1 in the original shape.
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    arr = np.asarray(value)
    if dtype is not None:
        arr = arr.astype(dtype, copy=False)
    elif arr.dtype == np.float64:
        arr = arr.astype(np.float32)
    return arr


class Tensor:
    """An n-dimensional array with optional autograd tracking.

    Args:
        data: array-like payload; python floats become float32.
        requires_grad: whether gradients should be accumulated into
            ``.grad`` during :meth:`backward`.
        device: simulated device placement (``'cpu'`` or ``'cuda'``).
        pinned: whether this (host) tensor lives in the pinned-memory pool,
            making simulated transfers to the device cheaper.
    """

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "device",
        "pinned",
        "_backward",
        "_prev",
        "__weakref__",
    )

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        device: Union[str, Device, None] = None,
        pinned: bool = False,
    ):
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        if self.requires_grad and not np.issubdtype(self.data.dtype, np.floating):
            raise TypeError("only floating-point tensors can require gradients")
        self.device = get_device(device)
        self.pinned = bool(pinned)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._prev: Tuple["Tensor", ...] = ()
        if self.device.is_cuda and runtime.tracking(self.device):
            nbytes = self.data.nbytes
            runtime.allocate(self.device, nbytes)
            weakref.finalize(self, runtime.free, self.device, nbytes)

    # ---- construction helpers ------------------------------------------------

    @classmethod
    def _make(
        cls,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Optional[Callable[[np.ndarray], None]],
        device: Device,
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = cls(data, requires_grad=False, device=device)
        if requires:
            out.requires_grad = True
            out._prev = tuple(parents)
            out._backward = backward
        return out

    # ---- basic properties ----------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def is_leaf(self) -> bool:
        return self._backward is None

    def numel(self) -> int:
        return int(self.data.size)

    def size(self, dim: Optional[int] = None):
        if dim is None:
            return self.data.shape
        return self.data.shape[dim]

    def dim(self) -> int:
        return self.data.ndim

    def item(self):
        return self.data.item()

    def numpy(self) -> np.ndarray:
        """Return the underlying array (host copy if on the simulated device)."""
        return self.data

    def tolist(self):
        return self.data.tolist()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad = ", requires_grad=True" if self.requires_grad else ""
        dev = f", device='{self.device}'" if self.device.is_cuda else ""
        return f"Tensor({self.data!r}{dev}{grad})"

    def __bool__(self) -> bool:
        return bool(self.data)

    # ---- device & memory management -------------------------------------------

    def to(
        self,
        device: Union[str, Device],
        non_blocking: bool = False,
        via_pinned: bool = False,
    ) -> "Tensor":
        """Move to *device*, paying the simulated transfer cost if crossing.

        Args:
            device: target device.
            non_blocking: accepted for API familiarity (no-op).
            via_pinned: charge the transfer at pinned bandwidth even if this
                tensor is not itself pinned — models use this for
                device-to-host stores routed through a pinned staging
                buffer (e.g. mailbox write-back under ``preload``).
        """
        target = get_device(device)
        if target is self.device:
            return self
        runtime.transfer(self.data.nbytes, pinned=self.pinned or via_pinned)
        out = Tensor(self.data.copy(), device=target)
        out.requires_grad = self.requires_grad
        if self.requires_grad and _GRAD_ENABLED:
            src = self

            def backward(grad: np.ndarray) -> None:
                src._accumulate(grad)

            out._prev = (self,)
            out._backward = backward
        return out

    def cpu(self) -> "Tensor":
        return self.to(CPU)

    def cuda(self) -> "Tensor":
        return self.to("cuda")

    def pin_memory(self) -> "Tensor":
        """Return a pinned copy of a host tensor (no-op for device tensors)."""
        if self.device.is_cuda:
            return self
        if self.pinned:
            return self
        out = Tensor(self.data.copy(), device=self.device, pinned=True)
        out.requires_grad = False
        return out

    def detach(self) -> "Tensor":
        """Return a view-like tensor sharing data but detached from the graph."""
        out = Tensor.__new__(Tensor)
        out.data = self.data
        out.grad = None
        out.requires_grad = False
        out.device = self.device
        out.pinned = self.pinned
        out._backward = None
        out._prev = ()
        return out

    def clone(self) -> "Tensor":
        out = Tensor._make(self.data.copy(), (self,), None, self.device)
        if out.requires_grad:
            src = self

            def backward(grad: np.ndarray) -> None:
                src._accumulate(grad)

            out._backward = backward
        return out

    def copy_(self, other: "Tensor") -> "Tensor":
        """In-place copy of *other*'s values (not differentiable)."""
        self.data[...] = other.data
        return self

    def float(self) -> "Tensor":
        return self.astype(np.float32)

    def long(self) -> "Tensor":
        return self.astype(np.int64)

    def bool(self) -> "Tensor":
        return self.astype(np.bool_)

    def astype(self, dtype) -> "Tensor":
        if self.data.dtype == dtype:
            return self
        out_data = self.data.astype(dtype)
        if self.requires_grad and np.issubdtype(np.dtype(dtype), np.floating):
            src = self

            def backward(grad: np.ndarray) -> None:
                src._accumulate(grad.astype(src.data.dtype))

            return Tensor._make(out_data, (self,), backward, self.device)
        out = Tensor(out_data, device=self.device)
        return out

    # ---- autograd engine -------------------------------------------------------

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: Optional[Union["Tensor", np.ndarray]] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Args:
            grad: seed gradient; defaults to 1 for scalar outputs.
        """
        if not self.requires_grad:
            raise RuntimeError("tensor does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            seed = np.ones_like(self.data)
        else:
            seed = grad.data if isinstance(grad, Tensor) else np.asarray(grad)
            if seed.shape != self.data.shape:
                raise RuntimeError("seed gradient shape mismatch")

        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(seed)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                # Intermediate gradients are not retained, matching the
                # torch default and keeping memory bounded.
                if node._prev:
                    node.grad = None

    def zero_grad(self) -> None:
        self.grad = None

    # ---- arithmetic -------------------------------------------------------------

    def _coerce(self, other) -> "Tensor":
        if isinstance(other, Tensor):
            if other.device is not self.device:
                raise RuntimeError(
                    f"device mismatch: {self.device} vs {other.device}"
                )
            return other
        return Tensor(np.asarray(other, dtype=self.data.dtype), device=self.device)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data
        a, b = self, other

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(_unbroadcast(grad, a.data.shape))
            if b.requires_grad:
                b._accumulate(_unbroadcast(grad, b.data.shape))

        return Tensor._make(out_data, (a, b), backward, self.device)

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data - other.data
        a, b = self, other

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(_unbroadcast(grad, a.data.shape))
            if b.requires_grad:
                b._accumulate(_unbroadcast(-grad, b.data.shape))

        return Tensor._make(out_data, (a, b), backward, self.device)

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) - self

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data
        a, b = self, other

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(_unbroadcast(grad * b.data, a.data.shape))
            if b.requires_grad:
                b._accumulate(_unbroadcast(grad * a.data, b.data.shape))

        return Tensor._make(out_data, (a, b), backward, self.device)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data
        a, b = self, other

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(_unbroadcast(grad / b.data, a.data.shape))
            if b.requires_grad:
                b._accumulate(_unbroadcast(-grad * a.data / (b.data * b.data), b.data.shape))

        return Tensor._make(out_data, (a, b), backward, self.device)

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __neg__(self) -> "Tensor":
        out_data = -self.data
        src = self

        def backward(grad: np.ndarray) -> None:
            src._accumulate(-grad)

        return Tensor._make(out_data, (self,), backward, self.device)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent
        src = self

        def backward(grad: np.ndarray) -> None:
            src._accumulate(grad * exponent * src.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward, self.device)

    # ---- comparisons (no grad) ----------------------------------------------------

    def __eq__(self, other):  # type: ignore[override]
        other_data = other.data if isinstance(other, Tensor) else other
        return Tensor(self.data == other_data, device=self.device)

    def __ne__(self, other):  # type: ignore[override]
        other_data = other.data if isinstance(other, Tensor) else other
        return Tensor(self.data != other_data, device=self.device)

    def __lt__(self, other):
        other_data = other.data if isinstance(other, Tensor) else other
        return Tensor(self.data < other_data, device=self.device)

    def __le__(self, other):
        other_data = other.data if isinstance(other, Tensor) else other
        return Tensor(self.data <= other_data, device=self.device)

    def __gt__(self, other):
        other_data = other.data if isinstance(other, Tensor) else other
        return Tensor(self.data > other_data, device=self.device)

    def __ge__(self, other):
        other_data = other.data if isinstance(other, Tensor) else other
        return Tensor(self.data >= other_data, device=self.device)

    def __hash__(self) -> int:
        return id(self)

    # ---- elementwise functions ------------------------------------------------------

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        src = self

        def backward(grad: np.ndarray) -> None:
            src._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward, self.device)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)
        src = self

        def backward(grad: np.ndarray) -> None:
            src._accumulate(grad / src.data)

        return Tensor._make(out_data, (self,), backward, self.device)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)
        src = self

        def backward(grad: np.ndarray) -> None:
            src._accumulate(grad * 0.5 / np.maximum(out_data, 1e-12))

        return Tensor._make(out_data, (self,), backward, self.device)

    def cos(self) -> "Tensor":
        out_data = np.cos(self.data)
        src = self

        def backward(grad: np.ndarray) -> None:
            src._accumulate(-grad * np.sin(src.data))

        return Tensor._make(out_data, (self,), backward, self.device)

    def sin(self) -> "Tensor":
        out_data = np.sin(self.data)
        src = self

        def backward(grad: np.ndarray) -> None:
            src._accumulate(grad * np.cos(src.data))

        return Tensor._make(out_data, (self,), backward, self.device)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        src = self

        def backward(grad: np.ndarray) -> None:
            src._accumulate(grad * (1.0 - out_data * out_data))

        return Tensor._make(out_data, (self,), backward, self.device)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))
        src = self

        def backward(grad: np.ndarray) -> None:
            src._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward, self.device)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask
        src = self

        def backward(grad: np.ndarray) -> None:
            src._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward, self.device)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        scale = np.where(mask, 1.0, negative_slope).astype(self.data.dtype)
        out_data = self.data * scale
        src = self

        def backward(grad: np.ndarray) -> None:
            src._accumulate(grad * scale)

        return Tensor._make(out_data, (self,), backward, self.device)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out_data = np.abs(self.data)
        src = self

        def backward(grad: np.ndarray) -> None:
            src._accumulate(grad * sign)

        return Tensor._make(out_data, (self,), backward, self.device)

    def clamp(self, min: Optional[float] = None, max: Optional[float] = None) -> "Tensor":
        out_data = np.clip(self.data, min, max)
        inside = np.ones_like(self.data, dtype=bool)
        if min is not None:
            inside &= self.data >= min
        if max is not None:
            inside &= self.data <= max
        src = self

        def backward(grad: np.ndarray) -> None:
            src._accumulate(grad * inside)

        return Tensor._make(out_data, (self,), backward, self.device)

    # ---- reductions ------------------------------------------------------------------

    def sum(self, dim: Optional[Union[int, Tuple[int, ...]]] = None, keepdim: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=dim, keepdims=keepdim)
        src = self
        shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            g = grad
            if dim is not None and not keepdim:
                axes = (dim,) if isinstance(dim, int) else tuple(dim)
                for ax in sorted(a % len(shape) for a in axes):
                    g = np.expand_dims(g, ax)
            src._accumulate(np.broadcast_to(g, shape).astype(src.data.dtype))

        return Tensor._make(np.asarray(out_data), (self,), backward, self.device)

    def mean(self, dim: Optional[Union[int, Tuple[int, ...]]] = None, keepdim: bool = False) -> "Tensor":
        if dim is None:
            count = self.data.size
        else:
            axes = (dim,) if isinstance(dim, int) else tuple(dim)
            count = 1
            for ax in axes:
                count *= self.data.shape[ax]
        return self.sum(dim=dim, keepdim=keepdim) * (1.0 / count)

    def var(self, dim: Optional[int] = None, keepdim: bool = False, unbiased: bool = False) -> "Tensor":
        mu = self.mean(dim=dim, keepdim=True)
        diff = self - mu
        sq = diff * diff
        if dim is None:
            count = self.data.size
        else:
            count = self.data.shape[dim]
        denom = count - 1 if unbiased else count
        return sq.sum(dim=dim, keepdim=keepdim) * (1.0 / denom)

    def max(self, dim: Optional[int] = None, keepdim: bool = False):
        """Max reduction; with a ``dim`` returns ``(values, indices)``."""
        if dim is None:
            out_data = np.asarray(self.data.max())
            mask = self.data == out_data
            src = self

            def backward(grad: np.ndarray) -> None:
                src._accumulate(grad * mask / max(mask.sum(), 1))

            return Tensor._make(out_data, (self,), backward, self.device)

        idx = self.data.argmax(axis=dim)
        out_data = np.take_along_axis(self.data, np.expand_dims(idx, dim), axis=dim)
        if not keepdim:
            out_data = np.squeeze(out_data, axis=dim)
        src = self

        def backward(grad: np.ndarray) -> None:
            g = grad if keepdim else np.expand_dims(grad, dim)
            full = np.zeros_like(src.data)
            np.put_along_axis(full, np.expand_dims(idx, dim), g, axis=dim)
            src._accumulate(full)

        values = Tensor._make(out_data, (self,), backward, self.device)
        return values, Tensor(idx.astype(np.int64), device=self.device)

    def min(self, dim: Optional[int] = None, keepdim: bool = False):
        if dim is None:
            return -((-self).max())
        values, idx = (-self).max(dim=dim, keepdim=keepdim)
        return -values, idx

    def norm(self, p: int = 2) -> "Tensor":
        if p != 2:
            raise NotImplementedError("only L2 norm is supported")
        return (self * self).sum().sqrt()

    # ---- shape ops -------------------------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        src = self
        orig_shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            src._accumulate(grad.reshape(orig_shape))

        return Tensor._make(out_data, (self,), backward, self.device)

    view = reshape

    def transpose(self, dim0: int, dim1: int) -> "Tensor":
        out_data = np.swapaxes(self.data, dim0, dim1)
        src = self

        def backward(grad: np.ndarray) -> None:
            src._accumulate(np.swapaxes(grad, dim0, dim1))

        return Tensor._make(out_data, (self,), backward, self.device)

    def permute(self, *dims) -> "Tensor":
        if len(dims) == 1 and isinstance(dims[0], (tuple, list)):
            dims = tuple(dims[0])
        out_data = np.transpose(self.data, dims)
        inverse = np.argsort(dims)
        src = self

        def backward(grad: np.ndarray) -> None:
            src._accumulate(np.transpose(grad, inverse))

        return Tensor._make(out_data, (self,), backward, self.device)

    @property
    def T(self) -> "Tensor":
        if self.ndim != 2:
            raise RuntimeError(".T expects a 2-D tensor")
        return self.transpose(0, 1)

    def squeeze(self, dim: Optional[int] = None) -> "Tensor":
        if dim is None:
            return self.reshape(tuple(s for s in self.shape if s != 1))
        if self.shape[dim] != 1:
            return self
        new_shape = list(self.shape)
        new_shape.pop(dim)
        return self.reshape(tuple(new_shape))

    def unsqueeze(self, dim: int) -> "Tensor":
        new_shape = list(self.shape)
        if dim < 0:
            dim = len(new_shape) + dim + 1
        new_shape.insert(dim, 1)
        return self.reshape(tuple(new_shape))

    def repeat_interleave(self, repeats: Union[int, "Tensor", np.ndarray], dim: int = 0) -> "Tensor":
        reps = repeats.data if isinstance(repeats, Tensor) else repeats
        out_data = np.repeat(self.data, reps, axis=dim)
        src = self
        if isinstance(reps, (int, np.integer)):
            index = np.repeat(np.arange(self.shape[dim]), reps)
        else:
            index = np.repeat(np.arange(self.shape[dim]), reps)

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(src.data)
            moved = np.moveaxis(grad, dim, 0)
            target = np.moveaxis(full, dim, 0)
            np.add.at(target, index, moved)
            src._accumulate(full)

        return Tensor._make(out_data, (self,), backward, self.device)

    def expand(self, *sizes) -> "Tensor":
        if len(sizes) == 1 and isinstance(sizes[0], (tuple, list)):
            sizes = tuple(sizes[0])
        sizes = tuple(
            self.shape[i - (len(sizes) - self.ndim)] if s == -1 else s
            for i, s in enumerate(sizes)
        )
        out_data = np.broadcast_to(self.data, sizes)
        src = self
        shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            src._accumulate(_unbroadcast(grad, shape))

        return Tensor._make(np.ascontiguousarray(out_data), (self,), backward, self.device)

    # ---- matmul ----------------------------------------------------------------------

    def matmul(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)
        out_data = np.matmul(self.data, other.data)
        a, b = self, other

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                if b.data.ndim == 1:
                    ga = np.multiply.outer(grad, b.data) if grad.ndim else grad * b.data
                elif b.data.ndim == 2 and grad.ndim > 2:
                    # N-D @ 2-D: contract directly instead of broadcasting b.
                    ga = np.matmul(grad, b.data.T)
                else:
                    ga = np.matmul(grad, np.swapaxes(b.data, -1, -2))
                a._accumulate(_unbroadcast(np.asarray(ga), a.data.shape))
            if b.requires_grad:
                if a.data.ndim == 1:
                    gb = np.multiply.outer(a.data, grad) if grad.ndim else a.data * grad
                elif b.data.ndim == 2 and a.data.ndim > 2:
                    # Avoid materializing a per-batch (.., k, n) gradient
                    # stack for a shared 2-D rhs: flatten the batch dims.
                    k = a.data.shape[-1]
                    n = grad.shape[-1]
                    gb = a.data.reshape(-1, k).T @ grad.reshape(-1, n)
                else:
                    gb = np.matmul(np.swapaxes(a.data, -1, -2), grad)
                b._accumulate(_unbroadcast(np.asarray(gb), b.data.shape))

        return Tensor._make(out_data, (a, b), backward, self.device)

    __matmul__ = matmul

    def bmm(self, other: "Tensor") -> "Tensor":
        if self.ndim != 3 or other.ndim != 3:
            raise RuntimeError("bmm expects 3-D tensors")
        return self.matmul(other)

    # ---- indexing --------------------------------------------------------------------

    def __getitem__(self, idx) -> "Tensor":
        key = idx.data if isinstance(idx, Tensor) else idx
        if isinstance(key, tuple):
            key = tuple(k.data if isinstance(k, Tensor) else k for k in key)
        out_data = self.data[key]
        src = self

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(src.data)
            np.add.at(full, key, grad)
            src._accumulate(full)

        return Tensor._make(np.ascontiguousarray(out_data), (self,), backward, self.device)

    def __setitem__(self, idx, value) -> None:
        """In-place element assignment (not differentiable).

        Use :func:`repro.tensor.functional.index_put` for a differentiable
        scatter-style update.
        """
        if self.requires_grad and not self.is_leaf:
            raise RuntimeError(
                "in-place assignment on a non-leaf tensor would corrupt the "
                "autograd graph; use F.index_put instead"
            )
        key = idx.data if isinstance(idx, Tensor) else idx
        val = value.data if isinstance(value, Tensor) else value
        self.data[key] = val

    def index_select(self, dim: int, index: Union["Tensor", np.ndarray]) -> "Tensor":
        idx = index.data if isinstance(index, Tensor) else np.asarray(index)
        out_data = np.take(self.data, idx, axis=dim)
        src = self

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(src.data)
            moved_full = np.moveaxis(full, dim, 0)
            np.add.at(moved_full, idx, np.moveaxis(grad, dim, 0))
            src._accumulate(full)

        return Tensor._make(out_data, (self,), backward, self.device)

    def masked_fill(self, mask: Union["Tensor", np.ndarray], value: float) -> "Tensor":
        m = mask.data if isinstance(mask, Tensor) else np.asarray(mask)
        m = np.broadcast_to(m.astype(bool), self.data.shape)
        out_data = np.where(m, np.asarray(value, dtype=self.data.dtype), self.data)
        src = self

        def backward(grad: np.ndarray) -> None:
            src._accumulate(np.where(m, 0.0, grad))

        return Tensor._make(out_data, (self,), backward, self.device)

    # ---- softmax ----------------------------------------------------------------------

    def softmax(self, dim: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=dim, keepdims=True)
        exp = np.exp(shifted)
        out_data = exp / exp.sum(axis=dim, keepdims=True)
        src = self

        def backward(grad: np.ndarray) -> None:
            dot = (grad * out_data).sum(axis=dim, keepdims=True)
            src._accumulate(out_data * (grad - dot))

        return Tensor._make(out_data, (self,), backward, self.device)

    def log_softmax(self, dim: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=dim, keepdims=True)
        logsumexp = np.log(np.exp(shifted).sum(axis=dim, keepdims=True))
        out_data = shifted - logsumexp
        soft = np.exp(out_data)
        src = self

        def backward(grad: np.ndarray) -> None:
            src._accumulate(grad - soft * grad.sum(axis=dim, keepdims=True))

        return Tensor._make(out_data, (self,), backward, self.device)
