"""Numpy-backed tensor backend with autograd and a simulated device model.

This package replaces the PyTorch dependency of the original TGLite release.
It exposes a ``torch``-like surface: :class:`Tensor`, creation functions
(:func:`zeros`, :func:`randn`, ...), combination functions (:func:`cat`,
:func:`stack`, :func:`where`), segmented kernels used by the graph
operators, and the :mod:`~repro.tensor.device` simulation used by the
CPU-to-GPU experiments.
"""

from .device import (
    CPU,
    CUDA,
    Device,
    DeviceOutOfMemoryError,
    get_device,
    runtime,
)
from .functional import (
    arange,
    as_tensor,
    cat,
    dropout_mask,
    empty,
    eye,
    from_numpy,
    full,
    index_put,
    maximum,
    minimum,
    one_hot,
    ones,
    ones_like,
    rand,
    randint,
    randn,
    scatter_rows,
    sort_by,
    stack,
    tensor,
    unique,
    where,
    zeros,
    zeros_like,
)
from .random import default_generator, fork_generator, manual_seed
from .segment import (
    segment_argmax_by_key,
    segment_count,
    segment_max,
    segment_mean,
    segment_softmax,
    segment_sum,
)
from .tensor import Tensor, enable_grad, is_grad_enabled, no_grad

__all__ = [
    "Tensor",
    "Device",
    "DeviceOutOfMemoryError",
    "CPU",
    "CUDA",
    "get_device",
    "runtime",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "manual_seed",
    "default_generator",
    "fork_generator",
    "tensor",
    "as_tensor",
    "zeros",
    "zeros_like",
    "ones",
    "ones_like",
    "full",
    "empty",
    "arange",
    "eye",
    "rand",
    "randn",
    "randint",
    "from_numpy",
    "cat",
    "stack",
    "where",
    "maximum",
    "minimum",
    "index_put",
    "scatter_rows",
    "one_hot",
    "unique",
    "sort_by",
    "dropout_mask",
    "segment_sum",
    "segment_mean",
    "segment_max",
    "segment_count",
    "segment_softmax",
    "segment_argmax_by_key",
]
