"""TBlock: the temporal block, TGLite's central data abstraction.

A TBlock captures the 1-hop message-flow dependencies between target
(destination) node-time pairs and their temporally sampled (source)
neighbors.  Three design choices distinguish it from DGL-style MFGs (§3.2
of the paper):

1. **Doubly-linked list** — blocks chain through ``prev``/``next`` so that
   multi-hop operators (``aggregate``, ``propagate``) can traverse the hop
   structure and pass data between layers without user bookkeeping.
2. **Optional neighbor information** — a block is created with only its
   destination node-time pairs; optimizations like ``dedup``/``cache``
   shrink the destination set *before* sampling fills in the sources.
3. **Hooks** — operators register post-processing callables on the block;
   the runtime (``aggregate``) invokes them after the block's computation,
   e.g. to invert deduplication or merge cached embeddings.

Blocks also cache gathered feature/memory/mail tensors so repeated access
does not pay data-movement costs twice.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..tensor import Tensor

if TYPE_CHECKING:  # pragma: no cover
    from .context import TContext
    from .graph import TGraph

__all__ = ["TBlock"]

Hook = Callable[["TBlock", Tensor], Tensor]


class TBlock:
    """One hop of temporal message flow.

    Args:
        ctx: runtime context (placement + scratch space).
        layer_id: distance from the head block (0 for the head).
        dstnodes: int64 array of destination node ids.
        dsttimes: float64 array of the time at which each destination
            embedding is requested (the ``<i, t>`` target pairs).
        prev: predecessor block in the chain, if any.
    """

    def __init__(
        self,
        ctx: "TContext",
        layer_id: int,
        dstnodes: np.ndarray,
        dsttimes: np.ndarray,
        prev: Optional["TBlock"] = None,
    ):
        self.ctx = ctx
        self.layer_id = layer_id
        self.dstnodes = np.asarray(dstnodes, dtype=np.int64)
        self.dsttimes = np.asarray(dsttimes, dtype=np.float64)
        if len(self.dstnodes) != len(self.dsttimes):
            raise ValueError("dstnodes and dsttimes must have equal length")

        self.srcnodes: Optional[np.ndarray] = None
        self.dstindex: Optional[np.ndarray] = None
        self.eids: Optional[np.ndarray] = None
        self.etimes: Optional[np.ndarray] = None

        self.prev = prev
        self.next: Optional["TBlock"] = None
        if prev is not None:
            prev.next = self

        self.dstdata: Dict[str, Tensor] = {}
        self.srcdata: Dict[str, Tensor] = {}
        self.edata: Dict[str, Tensor] = {}

        self._hooks: List[Hook] = []
        self._cache: Dict[str, Tensor] = {}
        self._uniq_src: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ---- structure ---------------------------------------------------------------

    @property
    def g(self) -> "TGraph":
        """The temporal graph this block draws data from."""
        return self.ctx.graph

    @property
    def num_dst(self) -> int:
        return len(self.dstnodes)

    @property
    def num_src(self) -> int:
        return len(self.srcnodes) if self.srcnodes is not None else 0

    @property
    def num_edges(self) -> int:
        return len(self.eids) if self.eids is not None else 0

    @property
    def has_nbrs(self) -> bool:
        """Whether neighbor (source) information has been filled in."""
        return self.srcnodes is not None

    def tail(self) -> "TBlock":
        """Follow ``next`` links to the last block in the chain."""
        blk = self
        while blk.next is not None:
            blk = blk.next
        return blk

    def head(self) -> "TBlock":
        """Follow ``prev`` links to the first block in the chain."""
        blk = self
        while blk.prev is not None:
            blk = blk.prev
        return blk

    def chain_length(self) -> int:
        count, blk = 1, self.head()
        while blk.next is not None:
            count += 1
            blk = blk.next
        return count

    def next_block(self, include_dst: bool = True) -> "TBlock":
        """Create and link the successor block for the next hop.

        The successor's destination set consists of this block's
        destinations (whose lower-layer embeddings the attention query
        needs) followed by its sampled sources at their edge timestamps.

        Args:
            include_dst: whether to carry this block's destinations into
                the successor (models that only need neighbor embeddings
                can drop them).
        """
        if not self.has_nbrs:
            raise RuntimeError("next_block requires sampled neighbors; call sample() first")
        if include_dst:
            nodes = np.concatenate([self.dstnodes, self.srcnodes])
            times = np.concatenate([self.dsttimes, self.etimes])
        else:
            nodes, times = self.srcnodes.copy(), self.etimes.copy()
        return TBlock(self.ctx, self.layer_id + 1, nodes, times, prev=self)

    # ---- mutation by operators ----------------------------------------------------------

    def set_dst(self, dstnodes: np.ndarray, dsttimes: np.ndarray) -> None:
        """Replace the destination set (used by dedup/cache before sampling).

        Invalid once neighbors exist, since source rows index into dst.
        """
        if self.has_nbrs:
            raise RuntimeError("cannot change destinations after sampling")
        self.dstnodes = np.asarray(dstnodes, dtype=np.int64)
        self.dsttimes = np.asarray(dsttimes, dtype=np.float64)
        self._invalidate("dstfeat", "allfeat", "mem", "mem_ts", "mail", "mail_ts")
        self.dstdata.clear()

    def set_nbrs(
        self,
        srcnodes: np.ndarray,
        eids: np.ndarray,
        etimes: np.ndarray,
        dstindex: np.ndarray,
    ) -> None:
        """Install sampled neighbor rows (called by samplers/coalesce).

        Args:
            srcnodes: neighbor node per sampled edge row.
            eids: edge id per row (indexes the graph's edge features).
            etimes: edge timestamp per row.
            dstindex: destination row each source row belongs to.
        """
        n = len(srcnodes)
        if not (len(eids) == len(etimes) == len(dstindex) == n):
            raise ValueError("neighbor arrays must have equal length")
        self.srcnodes = np.asarray(srcnodes, dtype=np.int64)
        self.eids = np.asarray(eids, dtype=np.int64)
        self.etimes = np.asarray(etimes, dtype=np.float64)
        self.dstindex = np.asarray(dstindex, dtype=np.int64)
        self._uniq_src = None
        self._invalidate("srcfeat", "efeat", "allfeat", "mem", "mem_ts", "mail", "mail_ts")
        self.srcdata.clear()
        self.edata.clear()

    # ---- hooks ----------------------------------------------------------------------------

    def register_hook(self, hook: Hook) -> None:
        """Register a post-processing hook run after this block's computation.

        Hooks receive ``(block, output)`` and return the transformed output.
        They run in LIFO order, so an operator applied *first* (whose
        transformation must be undone *last*) registers first.
        """
        self._hooks.append(hook)

    @property
    def hooks(self) -> Tuple[Hook, ...]:
        return tuple(self._hooks)

    def run_hooks(self, output: Tensor) -> Tensor:
        """Apply registered hooks (LIFO) to *output*; clears the hook list."""
        for hook in reversed(self._hooks):
            output = hook(self, output)
        self._hooks.clear()
        return output

    # ---- derived index info -----------------------------------------------------------------

    def uniq_src(self) -> Tuple[np.ndarray, np.ndarray]:
        """Unique source node ids and the inverse mapping of each src row."""
        if not self.has_nbrs:
            raise RuntimeError("block has no neighbors")
        if self._uniq_src is None:
            uniq, inverse = np.unique(self.srcnodes, return_inverse=True)
            self._uniq_src = (uniq, inverse.astype(np.int64))
        return self._uniq_src

    def allnodes(self) -> np.ndarray:
        """Destination node ids followed by source node ids."""
        if self.has_nbrs:
            return np.concatenate([self.dstnodes, self.srcnodes])
        return self.dstnodes

    def alltimes(self) -> np.ndarray:
        """Times aligned with :meth:`allnodes` (dst request times, src edge times)."""
        if self.has_nbrs:
            return np.concatenate([self.dsttimes, self.etimes])
        return self.dsttimes

    def time_deltas(self) -> np.ndarray:
        """Per-source-row time delta ``t_dst - t_edge`` (for the time encoder)."""
        if not self.has_nbrs:
            raise RuntimeError("block has no neighbors")
        return self.dsttimes[self.dstindex] - self.etimes

    # ---- cached data access ------------------------------------------------------------------

    def _invalidate(self, *keys: str) -> None:
        for key in keys:
            self._cache.pop(key, None)

    def clear_cache(self) -> None:
        """Flush cached feature/memory tensors; they reload lazily when needed."""
        self._cache.clear()
        self._uniq_src = None

    def _gather(self, store: Tensor, idx: np.ndarray, pin: bool = False) -> Tensor:
        """Gather rows from a (possibly host-resident) store onto ctx.device."""
        rows = store.data[idx]
        if pin and store.device.is_cpu and self.ctx.device.is_cuda:
            staged = self.ctx.stage_pinned(rows)
            return staged.to(self.ctx.device)
        gathered = Tensor(rows, device=store.device)
        return gathered.to(self.ctx.device)

    def _cached(self, key: str, loader: Callable[[], Tensor]) -> Tensor:
        value = self._cache.get(key)
        if value is None:
            value = loader()
            self._cache[key] = value
        return value

    def dstfeat(self, pin: bool = False) -> Tensor:
        """Node features of the destination nodes (cached).

        If a combined :meth:`nfeat` gather is already cached (e.g. by
        ``op.preload``), this slices it instead of re-fetching.
        """
        if self.g.nfeat is None:
            raise RuntimeError("graph has no node features")
        allfeat = self._cache.get("allfeat")
        if allfeat is not None:
            return allfeat[: self.num_dst]
        return self._cached("dstfeat", lambda: self._gather(self.g.nfeat, self.dstnodes, pin))

    def srcfeat(self, pin: bool = False) -> Tensor:
        """Node features of the source (neighbor) rows (cached).

        Reuses a cached combined :meth:`nfeat` gather when available.
        """
        if self.g.nfeat is None:
            raise RuntimeError("graph has no node features")
        if not self.has_nbrs:
            raise RuntimeError("block has no neighbors")
        allfeat = self._cache.get("allfeat")
        if allfeat is not None:
            return allfeat[self.num_dst :]
        return self._cached("srcfeat", lambda: self._gather(self.g.nfeat, self.srcnodes, pin))

    def efeat(self, pin: bool = False) -> Tensor:
        """Edge features of the sampled edge rows (cached)."""
        if self.g.efeat is None:
            raise RuntimeError("graph has no edge features")
        if not self.has_nbrs:
            raise RuntimeError("block has no neighbors")
        return self._cached("efeat", lambda: self._gather(self.g.efeat, self.eids, pin))

    def nfeat(self, pin: bool = False) -> Tensor:
        """Node features for :meth:`allnodes` (dst rows then src rows)."""
        if self.g.nfeat is None:
            raise RuntimeError("graph has no node features")
        return self._cached("allfeat", lambda: self._gather(self.g.nfeat, self.allnodes(), pin))

    def mem_data(self, pin: bool = False) -> Tensor:
        """Memory vectors for :meth:`allnodes` (cached, detached)."""
        if self.g.mem is None:
            raise RuntimeError("graph has no memory component")
        return self._cached("mem", lambda: self._gather(self.g.mem.data, self.allnodes(), pin))

    def mem_ts(self) -> np.ndarray:
        """Last-update timestamps of memory for :meth:`allnodes`."""
        if self.g.mem is None:
            raise RuntimeError("graph has no memory component")
        return self.g.mem.time[self.allnodes()]

    def mail(self, pin: bool = False) -> Tensor:
        """Mailbox messages for :meth:`allnodes` (cached, detached)."""
        if self.g.mailbox is None:
            raise RuntimeError("graph has no mailbox component")
        return self._cached("mail", lambda: self._gather(self.g.mailbox.mail, self.allnodes(), pin))

    def mail_ts(self) -> np.ndarray:
        """Mailbox delivery timestamps for :meth:`allnodes`."""
        if self.g.mailbox is None:
            raise RuntimeError("graph has no mailbox component")
        return self.g.mailbox.time[self.allnodes()]

    def __repr__(self) -> str:
        nbrs = self.num_src if self.has_nbrs else "unsampled"
        return f"TBlock(layer={self.layer_id}, dst={self.num_dst}, src={nbrs})"
