"""TBlock-based operators: computation, multi-block, and optimization.

Mirrors the operator surface of Table 1 in the paper:

================  =========================================================
``sample``         via :class:`~repro.core.sampler.TSampler` (single-block)
``coalesce``       re-arrange/reduce source rows per destination
``edge_reduce``    segmented reduction per destination
``edge_softmax``   segmented softmax per destination
``src_scatter``    push-style reduction onto unique source nodes
``aggregate``      pull-style multi-hop aggregation (multi-block)
``propagate``      push-style traversal toward the tail (multi-block)
``dedup``          unique (node, time) filtering (optimization)
``cache``          embedding memoization (optimization)
``preload``        pinned-memory batched loading (optimization)
``precomputed_zeros`` / ``precomputed_times``  time precomputation
================  =========================================================
"""

from .aggregate import aggregate, propagate
from .cache import cache
from .coalesce import coalesce
from .dedup import dedup, unique_node_times
from .precompute import precomputed_times, precomputed_zeros
from .preload import preload
from .scatter import edge_reduce, edge_softmax, src_scatter

__all__ = [
    "aggregate",
    "propagate",
    "cache",
    "coalesce",
    "dedup",
    "unique_node_times",
    "precomputed_times",
    "precomputed_zeros",
    "preload",
    "edge_reduce",
    "edge_softmax",
    "src_scatter",
]
