"""Deduplication optimization operator (semantic-preserving).

CTDG batches frequently request embeddings for the same (node, time) pair
multiple times — e.g. a hub node sampled as a neighbor of many targets at
the same interaction timestamp.  ``dedup()`` shrinks a block's destination
set to unique pairs *before* sampling (so the entire downstream subgraph
shrinks too) and registers a hook that re-expands the computed output with
the inverse index, preserving output semantics exactly.
"""

from __future__ import annotations

import time

import numpy as np

from ...tensor import Tensor
from ..block import TBlock
from ..kernels.dedup import unique_node_times

__all__ = ["dedup", "unique_node_times"]


def dedup(block: TBlock) -> TBlock:
    """Filter a block's destinations to unique (node, time) pairs, in place.

    Must be applied before sampling.  If every pair is already unique the
    block is untouched and no hook is registered.  Otherwise the
    destination set is replaced by the unique pairs and a post-processing
    hook re-expands computed outputs back to the original row order.
    """
    if block.has_nbrs:
        raise RuntimeError("dedup must be applied before sampling neighbors")
    nodes, times = block.dstnodes, block.dsttimes
    start = time.perf_counter()
    uniq_nodes, uniq_times, inverse = unique_node_times(nodes, times)
    block.ctx.add_kernel_time("dedup", time.perf_counter() - start)
    block.ctx.count("dedup_rows_in", len(nodes))
    block.ctx.count("dedup_rows_out", len(uniq_nodes))
    if len(uniq_nodes) == len(nodes):
        return block
    block.set_dst(uniq_nodes, uniq_times)

    def invert_hook(blk: TBlock, output: Tensor) -> Tensor:
        return output[inverse]

    block.register_hook(invert_hook)
    return block
