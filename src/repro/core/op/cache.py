"""Deprecated front-end of the embedding memoization operator.

The TGOpt-style ``cache()`` optimization now lives in
:func:`repro.store.ops.memoize`, where lookups resolve through the full
tiered feature store (hot ring -> pinned staging -> cold spill) instead
of one flat cache.  This module is a thin deprecation shim kept for the
historical ``tg.op.cache(ctx, block)`` spelling.
"""

from __future__ import annotations

import warnings

from ...store import ops as _store_ops
from ..block import TBlock
from ..context import TContext

__all__ = ["cache"]


def cache(ctx: TContext, block: TBlock, layer: int = None) -> TBlock:
    """Deprecated: use :func:`repro.store.ops.memoize` instead.

    Filters a block's destinations to embedding-cache misses, in place,
    by delegating to the tiered store (space ``'embed:<layer>'``).
    """
    warnings.warn(
        "op.cache() is deprecated; use repro.store.ops.memoize(ctx, block, "
        "layer) — same semantics, resolved through the tiered FeatureStore",
        DeprecationWarning,
        stacklevel=2,
    )
    return _store_ops.memoize(ctx, block, layer)
