"""Embedding memoization operator (the TGOpt ``cache()`` optimization).

Previously computed time-aware embeddings can be reused as long as the
model parameters have not changed, because an embedding is a pure function
of the (node, time) pair and the (frozen) weights.  ``cache()`` therefore
only engages in inference mode (``ctx.training`` false); during training it
is an inexpensive no-op, matching how the paper's models enable it only for
inference.

The operator looks up each destination pair in the context's per-layer
cache, shrinks the block to the misses, and registers a hook that merges
computed miss rows with cached hit rows (and stores the new rows).
"""

from __future__ import annotations

import numpy as np

from ...tensor import Tensor, index_put
from ..block import TBlock
from ..context import TContext

__all__ = ["cache"]


def cache(ctx: TContext, block: TBlock, layer: int = None) -> TBlock:
    """Filter a block's destinations to cache misses, in place.

    Args:
        ctx: context owning the embedding caches.
        block: target block (before sampling).
        layer: cache namespace; defaults to the block's layer id.

    Returns the block (mutated in place when there are cache hits).
    """
    if ctx.training:
        return block
    if ctx.is_degraded("kernel.cache"):
        # Repeated cache-kernel faults downgraded this context to the
        # uncached path: skip memoization entirely (results unchanged,
        # recomputation cost returns; visible via ctx.stats().degraded).
        return block
    if block.has_nbrs:
        raise RuntimeError("cache must be applied before sampling neighbors")
    store = ctx.embed_cache(block.layer_id if layer is None else layer)
    nodes, times = block.dstnodes, block.dsttimes
    hit_mask, hit_rows = store.lookup(nodes, times)
    num_hits = int(hit_mask.sum())

    if num_hits == 0:
        def store_hook(blk: TBlock, output: Tensor) -> Tensor:
            store.store(nodes, times, output.data)
            return output

        block.register_hook(store_hook)
        return block

    miss_idx = np.flatnonzero(~hit_mask)
    miss_nodes = nodes[miss_idx]
    miss_times = times[miss_idx]
    block.set_dst(miss_nodes, miss_times)

    def merge_hook(blk: TBlock, output: Tensor) -> Tensor:
        store.store(miss_nodes, miss_times, output.data)
        full = Tensor(hit_rows.astype(output.data.dtype, copy=True), device=output.device)
        return index_put(full, miss_idx, output)

    block.register_hook(merge_hook)
    return block
