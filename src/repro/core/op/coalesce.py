"""Coalesce operator: re-arrange/reduce source rows per destination node.

``coalesce(block, by='latest')`` collapses a block's source rows so that
each *unique destination node* keeps exactly one source row — the one with
the largest edge timestamp ('latest') or the smallest ('earliest').  This
expresses, in one line, the reduction memory-based models need to extract
"the most recent message per node in the batch" (the complex unique/perm
scatter sequence of TGL's Listing 3 region T).
"""

from __future__ import annotations

import numpy as np

from ...tensor.segment import segment_argmax_by_key
from ..block import TBlock

__all__ = ["coalesce"]


def coalesce(block: TBlock, by: str = "latest") -> TBlock:
    """Reduce to one source row per unique destination node, in place.

    Args:
        block: a sampled/adjacency block (e.g. from ``TBatch.block_adj``).
        by: ``'latest'`` keeps the row with the largest edge timestamp per
            destination node (ties resolved toward the later batch
            position); ``'earliest'`` keeps the smallest.

    After the call ``block.dstnodes`` holds unique node ids (sorted), times
    are the selected rows' edge timestamps, and exactly one source row
    aligns with each destination.
    """
    if not block.has_nbrs:
        raise RuntimeError("coalesce requires a block with neighbor rows")
    if by not in ("latest", "earliest"):
        raise ValueError(f"unknown coalesce mode: {by!r}")

    uniq_nodes, node_index = np.unique(block.dstnodes, return_inverse=True)
    keys = block.etimes if by == "latest" else -block.etimes
    # Map each source row to the unique-node segment of its destination row,
    # then pick the winning row per segment.
    seg = node_index[block.dstindex]
    winners = segment_argmax_by_key(keys, seg, len(uniq_nodes))
    present = winners >= 0  # unique nodes that had at least one source row
    kept = winners[present]  # winning row index, aligned with present nodes

    srcnodes = block.srcnodes[kept]
    eids = block.eids[kept]
    etimes = block.etimes[kept]

    block.srcnodes = None  # allow set_dst on an already-sampled block
    block.set_dst(uniq_nodes[present], etimes)
    block.set_nbrs(srcnodes, eids, etimes, np.arange(len(kept), dtype=np.int64))
    return block
