"""Time-precomputation operators (non-block optimization operators).

The cosine time encoder (Eq. 8) frequently re-encodes the same time deltas:
the delta 0 for every destination's self term, and a heavy-tailed but
highly repetitive distribution of neighbor deltas.  These operators
precompute time vectors and reuse them:

* :func:`precomputed_zeros` — specialized for the all-zeros delta case;
* :func:`precomputed_times` — general table of delta -> time vector.

Both are *semantic-preserving only while the encoder weights are fixed*, so
in training mode they transparently fall back to the differentiable encoder
(matching the paper's models, which enable them during inference).  The
tables key on the encoder's version counter and rebuild after any weight
update.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...nn.time_encode import TimeEncode
from ...tensor import Tensor
from ..context import TContext

__all__ = ["precomputed_zeros", "precomputed_times"]


def precomputed_zeros(ctx: TContext, encoder: TimeEncode, n: int) -> Tensor:
    """Time vectors for *n* zero deltas, ``Phi(0)`` tiled ``n`` times.

    In training mode, computes through the encoder so gradients flow.
    """
    if ctx.training:
        return encoder(Tensor(np.zeros(n, dtype=np.float32), device=ctx.device))
    slot = ctx.time_zero_slot(id(encoder))
    if slot is None or slot[0] != encoder.version:
        row = encoder.encode_raw(np.zeros(1, dtype=np.float32))[0]
        ctx.set_time_zero_slot(id(encoder), encoder.version, row)
    else:
        row = slot[1]
    return Tensor(np.broadcast_to(row, (n, encoder.dim)).copy(), device=ctx.device)


def precomputed_times(ctx: TContext, encoder: TimeEncode, deltas: np.ndarray) -> Tensor:
    """Time vectors for *deltas*, reusing a per-encoder lookup table.

    Args:
        ctx: context owning the tables (``ctx.time_window`` > 0 quantizes
            deltas to that resolution before lookup, trading a bounded
            approximation for a higher hit rate; 0 matches exactly).
        encoder: the TimeEncode module.
        deltas: float array of time deltas.

    In training mode, computes through the encoder so gradients flow.
    """
    deltas = np.asarray(deltas, dtype=np.float32).reshape(-1)
    if ctx.training:
        return encoder(Tensor(deltas, device=ctx.device))

    if ctx.time_window > 0:
        deltas = np.round(deltas / ctx.time_window) * np.float32(ctx.time_window)

    table = ctx.time_table(id(encoder))
    if table["version"] != encoder.version:
        table["version"] = encoder.version
        table["map"] = {}
        table["rows"] = []

    mapping = table["map"]
    rows = table["rows"]
    uniq, inverse = np.unique(deltas, return_inverse=True)
    missing = [v for v in uniq if float(v) not in mapping]
    if missing:
        encoded = encoder.encode_raw(np.asarray(missing, dtype=np.float32))
        for value, row in zip(missing, encoded):
            mapping[float(value)] = len(rows)
            rows.append(row)
    indices = np.fromiter(
        (mapping[float(v)] for v in uniq), count=len(uniq), dtype=np.int64
    )
    stacked = np.asarray(rows, dtype=np.float32)
    out = stacked[indices][inverse]
    return Tensor(out, device=ctx.device)
