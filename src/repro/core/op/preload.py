"""Deprecated front-end of the block-chain preload operator.

The pinned-memory preload now lives in :func:`repro.store.ops.preload`
(same walk, staging through the store's shared
:class:`~repro.store.tiers.PinnedPool`).  This module is a thin
deprecation shim kept for the historical ``tg.op.preload(head)``
spelling.
"""

from __future__ import annotations

import warnings

from ...store import ops as _store_ops
from ..block import TBlock

__all__ = ["preload"]


def preload(head: TBlock, use_pin: bool = True) -> TBlock:
    """Deprecated: use :func:`repro.store.ops.preload` instead."""
    warnings.warn(
        "op.preload() is deprecated; use repro.store.ops.preload(head, "
        "use_pin) — same semantics, staged through the store's pinned pool",
        DeprecationWarning,
        stacklevel=2,
    )
    return _store_ops.preload(head, use_pin)
