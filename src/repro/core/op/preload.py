"""Preload operator: batched, pinned-memory data movement for a block chain.

During CPU-to-GPU training, feature/memory/mail rows are gathered on the
host and copied to the device for every block of every batch.  ``preload()``
walks the linked list from *head* to tail and stages each block's data into
the context's pre-allocated pinned-memory pool before transferring, so the
(simulated) DMA engine runs at pinned bandwidth instead of pageable
bandwidth.  Loaded tensors land in each block's cache, making subsequent
``dstfeat()``/``srcfeat()``/``efeat()``/``mem_data()``/``mail()`` calls free.

When everything already resides on the device, the operator is a cheap
no-op (the paper's all-on-GPU case).
"""

from __future__ import annotations

from ..block import TBlock

__all__ = ["preload"]


def preload(head: TBlock, use_pin: bool = True) -> TBlock:
    """Load feature/memory/mail data for every block in the chain.

    Args:
        head: the first block of the chain (traversal follows ``next``).
        use_pin: stage host rows through the pinned-memory pool.

    Returns the head block.
    """
    blk = head
    g = head.g
    while blk is not None:
        # Edge features feed the attention computation of every hop.
        if g.efeat is not None and blk.has_nbrs:
            blk.efeat(pin=use_pin)
        if blk.next is None:
            # Only the tail block consumes raw node features / memory /
            # mail (inner hops receive computed embeddings from
            # aggregate()), so loading them elsewhere would only waste
            # transfer bandwidth.
            if g.nfeat is not None:
                # One combined gather covers dstfeat()/srcfeat()/nfeat().
                blk.nfeat(pin=use_pin)
            if g.mem is not None:
                blk.mem_data(pin=use_pin)
            if g.mailbox is not None:
                blk.mail(pin=use_pin)
        blk = blk.next
    return head
