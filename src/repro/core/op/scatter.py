"""Edge-wise computation operators: segmented reduce/softmax and scatter.

These let models express neighborhood computations "edge-wise" on a block
instead of via intricate batched-matmul/masked-softmax tensor manipulation
(the paper's Listing 1 region H vs Listing 2 region Q):

* :func:`edge_softmax` — softmax of per-source-row attention scores within
  each destination's neighbor group;
* :func:`edge_reduce` — segmented reduction of per-source-row values into
  per-destination rows;
* :func:`src_scatter` — push-style reduction of per-source-row values onto
  the block's *unique source nodes* (used by APAN's mail propagation).
"""

from __future__ import annotations

import numpy as np

from ...tensor import Tensor
from ...tensor.segment import segment_max, segment_mean, segment_softmax, segment_sum
from ..block import TBlock

__all__ = ["edge_softmax", "edge_reduce", "src_scatter"]

_REDUCERS = {"sum": segment_sum, "mean": segment_mean, "max": segment_max}


def edge_softmax(block: TBlock, scores: Tensor) -> Tensor:
    """Normalize attention *scores* within each destination's neighbor group.

    Args:
        block: a sampled block.
        scores: source-row-aligned tensor ``(num_src,)`` or ``(num_src, H)``
            for multi-head attention.

    Returns a tensor of the same shape whose entries sum to one within each
    destination segment (independently per head).
    """
    if not block.has_nbrs:
        raise RuntimeError("edge_softmax requires a sampled block")
    if scores.shape[0] != block.num_src:
        raise ValueError(f"scores rows {scores.shape[0]} != num_src {block.num_src}")
    return segment_softmax(scores, block.dstindex, block.num_dst)


def edge_reduce(block: TBlock, values: Tensor, op: str = "sum") -> Tensor:
    """Segmented reduction of source-row *values* per destination.

    Args:
        block: a sampled block.
        values: source-row-aligned tensor ``(num_src, ...)``.
        op: ``'sum'``, ``'mean'``, or ``'max'``.

    Returns a destination-aligned tensor ``(num_dst, ...)``; destinations
    with no neighbors get zeros.
    """
    if not block.has_nbrs:
        raise RuntimeError("edge_reduce requires a sampled block")
    if values.shape[0] != block.num_src:
        raise ValueError(f"values rows {values.shape[0]} != num_src {block.num_src}")
    reducer = _REDUCERS.get(op)
    if reducer is None:
        raise ValueError(f"unknown reduce op: {op!r}")
    return reducer(values, block.dstindex, block.num_dst)


def src_scatter(block: TBlock, values: Tensor, op: str = "mean") -> Tensor:
    """Reduce source-row *values* onto the block's unique source nodes.

    The row order of the result matches ``block.uniq_src()[0]``.  This is
    the push-direction primitive: e.g. APAN computes a mail per edge row
    and scatter-means them onto each neighbor's mailbox entry.
    """
    if not block.has_nbrs:
        raise RuntimeError("src_scatter requires a sampled block")
    if values.shape[0] != block.num_src:
        raise ValueError(f"values rows {values.shape[0]} != num_src {block.num_src}")
    reducer = _REDUCERS.get(op)
    if reducer is None:
        raise ValueError(f"unknown reduce op: {op!r}")
    uniq, inverse = block.uniq_src()
    return reducer(values, inverse, len(uniq))
