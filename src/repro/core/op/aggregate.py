"""Multi-block operators: pull-style aggregation and push-style propagation.

The doubly-linked block chain represents a multi-hop temporal subgraph.
:func:`aggregate` implements the pull pattern (classic message passing, as
in TGAT/TGN): computation starts at the tail (innermost hop, closest to raw
features) and each block's output is delivered to its predecessor's
``dstdata``/``srcdata`` until the head produces the final embeddings.
:func:`propagate` implements the push pattern used by APAN: a function is
applied from the given block toward the tail, pushing information outward.

``aggregate`` also runs each block's registered hooks on its output, which
is what lets optimization operators (dedup/cache) schedule their
post-processing without user intervention.
"""

from __future__ import annotations

from typing import Callable, Sequence, Union

from ...tensor import Tensor
from ..block import TBlock

__all__ = ["aggregate", "propagate"]

BlockFn = Callable[[TBlock], Tensor]


def aggregate(
    head: TBlock,
    fn: Union[BlockFn, Sequence[BlockFn]],
    key: str = "h",
) -> Tensor:
    """Pull-style multi-hop aggregation over the block chain.

    Args:
        head: first block of the chain; traversal starts at the tail.
        fn: a callable applied to every block, or a sequence of callables
            ordered input-side first — ``fn[0]`` runs on the tail block
            (raw features) and ``fn[-1]`` on the head.
        key: the ``dstdata``/``srcdata`` entry used to deliver each block's
            output to its predecessor.

    Returns the head block's (post-hook) output tensor.

    For each block from tail to head: the layer function computes a
    destination-aligned output; the block's hooks post-process it (cache
    merge, dedup inversion, ...); the output is then split into the
    predecessor's ``dstdata[key]`` (first ``num_dst`` rows) and
    ``srcdata[key]`` (remaining rows), matching the layout produced by
    ``TBlock.next_block``.
    """
    functions = None if callable(fn) else list(fn)
    tail = head.tail()
    if functions is not None and tail.layer_id - head.layer_id + 1 != len(functions):
        raise ValueError(
            f"got {len(functions)} layer functions for a chain of "
            f"{tail.layer_id - head.layer_id + 1} blocks"
        )
    blk = tail
    output: Tensor = None
    while blk is not None:
        layer_fn = fn if functions is None else functions[tail.layer_id - blk.layer_id]
        output = layer_fn(blk)
        output = blk.run_hooks(output)
        if blk is head:
            break
        prev = blk.prev
        if prev is not None:
            if output.shape[0] != prev.num_dst + prev.num_src:
                raise RuntimeError(
                    "block output rows do not match predecessor's dst+src "
                    f"({output.shape[0]} vs {prev.num_dst}+{prev.num_src}); "
                    "was the chain built with next_block(include_dst=True)?"
                )
            prev.dstdata[key] = output[: prev.num_dst]
            prev.srcdata[key] = output[prev.num_dst :]
        blk = prev
    return output


def propagate(block: TBlock, fn: Callable[[TBlock], None]) -> None:
    """Push-style traversal: apply *fn* from *block* toward the tail.

    Unlike :func:`aggregate` there is no return value to thread between
    hops; *fn* performs its own effects (e.g. storing mail into the
    graph's mailbox).  Hooks registered on visited blocks are not run —
    push-style functions produce no block output to post-process.
    """
    blk = block
    while blk is not None:
        fn(blk)
        blk = blk.next
