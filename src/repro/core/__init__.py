"""TGLite core: data abstractions and composable operators for CTDG models.

This package is the reproduction of the paper's primary contribution.  The
public surface mirrors the ``tglite`` module of the original release::

    import repro.core as tg

    g = tg.TGraph(src, dst, ts)
    ctx = tg.TContext(g)
    sampler = tg.TSampler(10, 'recent')
    for batch in tg.iter_batches(g, 600):
        head = batch.block(ctx)
        ...
        tail = tg.op.dedup(tail)
        tail = sampler.sample(tail)
        embs = tg.op.aggregate(head, layers, key='h')
"""

from . import kernels, op
from .batch import TBatch, iter_batches
from .block import TBlock
from .context import TContext
from .graph import TGraph, TemporalCSR, from_edges, to_networkx
from .kernels import SampleResult
from .mailbox import Mailbox
from .memory import Memory
from .sampler import TSampler
from .snapshot import SnapshotLoader, TSnapshot, snapshots

__all__ = [
    "kernels",
    "op",
    "SampleResult",
    "TBatch",
    "iter_batches",
    "TBlock",
    "TContext",
    "TGraph",
    "TemporalCSR",
    "from_edges",
    "to_networkx",
    "Mailbox",
    "Memory",
    "TSampler",
    "TSnapshot",
    "SnapshotLoader",
    "snapshots",
]
